// Dispatch hot-path scaling: the production build — indexed run queues (sched/rbs.h)
// plus the registry's hot-field slab columns (task/thread_slabs.h) — against the
// reference build (O(n) goodness scan over SimThread pointers, O(n) per-tick
// replenish sweep, no index maintenance, no slabs). Not a paper figure — the paper's
// machine runs tens of threads — but the ROADMAP's production-scale demand:
// thousands of pipeline threads dispatched as fast as the host allows. Both builds
// simulate the *identical* schedule (the farm trace pins and the fuzz battery's
// shadow + slab/pick-mode equivalence runs hold them bit-equal), so every ratio
// below is pure hot-path cost, not behavior drift.
//
// Two measurements:
//   1. Dispatcher primitive: PickNext throughput on one run queue holding 1024
//      threads (a handful runnable, the rest blocked — the farm steady state). The
//      reference scan touches every thread per pick; the indexed pick reads the head
//      of the ordered index. This is the >= 5x headline number, and the regression
//      gate CI checks against BENCH_dispatch_baseline.json.
//   2. End-to-end: wall-clock dispatch throughput of RunServerFarmScenario with the
//      production defaults (pick_mode = kAuto, slabs on) vs the reference build,
//      where pick cost is diluted by real work (grants, queues, controller) across
//      per-core run queues — the honest system-level win. Because the production
//      side runs kAuto, this table is also the tuning surface for
//      RbsConfig::auto_index_threshold: the low-density rows sit below the
//      threshold (slab win only), the high-density rows above it (slabs + index).
//
// The `DISPATCH_SCALE ...` line is machine-readable: scripts/check_dispatch_scale.py
// compares it against the committed BENCH_dispatch_baseline.json in CI and fails on
// a > 2x throughput regression at 1024 threads.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"
#include "sched/rbs.h"
#include "sim/simulator.h"
#include "task/registry.h"
#include "util/assert.h"
#include "workloads/misc_work.h"

namespace realrate {
namespace {

// The primitive A/B's two sides: production pins the indexed pick (no kAuto ramp in
// a microbench) on a slab-backed registry; reference is the pre-slab pointer-chase
// scan.
RbsConfig PickConfig(bool production) {
  RbsConfig config;
  config.use_indexed_pick = production;
  if (production) {
    config.pick_mode = PickMode::kIndexed;
  }
  return config;
}

// One run queue with `total` reserved threads, `runnable` of them dispatchable (the
// rest blocked), periods cycled so the rate-monotonic index carries many ranks.
struct PickRig {
  Simulator sim;
  ThreadRegistry threads;
  RbsScheduler rbs;

  PickRig(bool production, int total, int runnable)
      : threads(/*use_slabs=*/production), rbs(sim.cpu(), PickConfig(production)) {
    for (int i = 0; i < total; ++i) {
      SimThread* t = threads.Create("t" + std::to_string(i), std::make_unique<CpuHogWork>());
      rbs.AddThread(t);
      rbs.SetReservation(t, Proportion::Ppt(1), Duration::Millis(5 + i % 28), sim.Now());
      if (i >= runnable) {
        t->set_state(ThreadState::kBlocked);
        rbs.OnBlock(t, sim.Now());
      }
    }
  }
};

// PickNext calls per wall-second at `total` threads.
double MeasurePickThroughput(bool production, int total, int64_t iterations) {
  PickRig rig(production, total, /*runnable=*/32);
  const TimePoint now = rig.sim.Now();
  SimThread* witness = rig.rbs.PickNext(now);
  RR_CHECK(witness != nullptr);
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iterations; ++i) {
    benchmark::DoNotOptimize(rig.rbs.PickNext(now));
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(iterations) / wall;
}

// threads = 2 * pipelines + hogs; hogs keep every core busy so dispatch picks, not
// idle fast-forward, dominate the end-to-end measurement.
ServerFarmParams ParamsForThreads(int threads, int cpus, bool production) {
  ServerFarmParams params;
  params.num_cpus = cpus;
  params.num_hogs = cpus;
  params.num_pipelines = (threads - params.num_hogs) / 2;
  // Long enough that farm construction/teardown (equal on both sides, but counted
  // in wall time) stops diluting the measured ratio.
  params.run_for = Duration::Millis(1000);
  // Production = the defaults (pick_mode kAuto, slabs on); reference = the pre-slab
  // pointer-chase build with the O(n) scan.
  params.rbs.use_indexed_pick = production;
  params.thread_slabs = production;
  // High per-core densities need smaller reservations or admission control rejects
  // the farm (the cores' fixed budgets are finite).
  const int density = threads / cpus;
  if (density >= 1024) {
    params.producer_proportion = Proportion::Ppt(1);
  } else if (density >= 512) {
    params.producer_proportion = Proportion::Ppt(2);
  }
  return params;
}

struct Measured {
  ServerFarmResult result;
  double wall_s = 0.0;
  double dispatch_per_wsec() const {
    return static_cast<double>(result.total_dispatches) / wall_s;
  }
};

Measured Measure(const ServerFarmParams& params) {
  const auto start = std::chrono::steady_clock::now();
  Measured m;
  m.result = RunServerFarmScenario(params);
  m.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return m;
}

void PrintDispatchScale() {
  bench::PrintHeader(
      "Dispatch primitive: PickNext throughput on one run queue (32 runnable)\n"
      "production (indexed pick, slab registry) vs reference O(n) pointer-chase scan");
  std::printf("  %8s %18s %18s %9s\n", "threads", "indexed pick/ws", "reference pick/ws",
              "speedup");
  double pick_speedup_1024 = 0.0;
  double pick_indexed_1024 = 0.0;
  double pick_reference_1024 = 0.0;
  for (int total : {128, 256, 512, 1024, 2048}) {
    const double indexed = MeasurePickThroughput(true, total, 2'000'000);
    const double reference = MeasurePickThroughput(false, total, 200'000);
    std::printf("  %8d %18.0f %18.0f %8.2fx\n", total, indexed, reference,
                indexed / reference);
    if (total == 1024) {
      pick_speedup_1024 = indexed / reference;
      pick_indexed_1024 = indexed;
      pick_reference_1024 = reference;
    }
  }

  bench::PrintHeader(
      "End-to-end: server farm, 1 s virtual time, best of 3 interleaved trials\n"
      "production defaults (kAuto pick, slabs) vs reference (O(n) scan, no slabs)");
  std::printf("  %8s %18s %18s %9s %14s\n", "thrxcpu", "indexed disp/ws",
              "reference disp/ws", "speedup", "trace equal");
  double farm_speedup_1024 = 0.0;
  double farm_indexed_1024 = 0.0;
  for (const auto& [threads, cpus] :
       {std::pair{128, 8}, {512, 8}, {1024, 8}, {1024, 2}, {2048, 2}}) {
    ServerFarmParams indexed_params = ParamsForThreads(threads, cpus, /*production=*/true);
    ServerFarmParams reference_params = ParamsForThreads(threads, cpus, /*production=*/false);
    // Interleaved trials, per-side best: host interference (VM steal, other tenants)
    // only ever subtracts throughput, so each side's maximum over the trials is its
    // least-contaminated estimate, and their ratio is far more stable run to run
    // than any single paired trial.
    bool equal = true;
    double best_indexed = 0.0;
    double best_reference = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      const Measured reference = Measure(reference_params);
      const Measured indexed = Measure(indexed_params);
      equal = equal && indexed.result.trace_hash == reference.result.trace_hash;
      best_indexed = std::max(best_indexed, indexed.dispatch_per_wsec());
      best_reference = std::max(best_reference, reference.dispatch_per_wsec());
    }
    const double ratio = best_indexed / best_reference;
    std::printf("  %5dx%d %18.0f %18.0f %8.2fx %14s\n", threads, cpus, best_indexed,
                best_reference, ratio, equal ? "yes" : "NO!");
    if (threads == 1024 && cpus == 8) {
      farm_speedup_1024 = ratio;
      farm_indexed_1024 = best_indexed;
    }
  }

  std::printf("\n  1024-thread PickNext speedup: %.1fx; end-to-end farm speedup: %.2fx\n",
              pick_speedup_1024, farm_speedup_1024);
  // Machine-readable line for scripts/check_dispatch_scale.py (CI regression gate).
  std::printf("DISPATCH_SCALE threads=1024 pick_indexed_per_wsec=%.0f "
              "pick_reference_per_wsec=%.0f pick_speedup=%.2f "
              "farm_indexed_dispatch_per_wsec=%.0f farm_speedup=%.3f\n\n",
              pick_indexed_1024, pick_reference_1024, pick_speedup_1024,
              farm_indexed_1024, farm_speedup_1024);
}

template <bool kIndexed>
void BM_PickNext(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  PickRig rig(kIndexed, total, /*runnable=*/32);
  const TimePoint now = rig.sim.Now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.rbs.PickNext(now));
  }
  state.counters["threads"] = total;
}
void BM_PickNextIndexed(benchmark::State& state) { BM_PickNext<true>(state); }
void BM_PickNextReference(benchmark::State& state) { BM_PickNext<false>(state); }
BENCHMARK(BM_PickNextIndexed)->Arg(128)->Arg(1024)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_PickNextReference)->Arg(128)->Arg(1024)->Unit(benchmark::kNanosecond);

template <bool kIndexed>
void BM_DispatchScaleFarm(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ServerFarmParams params = ParamsForThreads(threads, 8, kIndexed);
  params.run_for = Duration::Millis(200);
  Measured last;
  for (auto _ : state) {
    last = Measure(params);
    benchmark::DoNotOptimize(last.result.total_dispatches);
  }
  state.counters["threads"] = threads;
  state.counters["dispatch_per_wsec"] = last.dispatch_per_wsec();
  state.counters["dispatch_per_vsec"] = last.result.dispatch_per_vsec;
}
void BM_FarmIndexed(benchmark::State& state) { BM_DispatchScaleFarm<true>(state); }
void BM_FarmReference(benchmark::State& state) { BM_DispatchScaleFarm<false>(state); }
BENCHMARK(BM_FarmIndexed)->Arg(128)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FarmReference)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintDispatchScale();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
