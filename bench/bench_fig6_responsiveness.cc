// Figure 6: "Controller Responsiveness" — a producer with a fixed reservation emits
// rate pulses (doubling bytes/cycle); the controller adjusts the consumer's allocation
// so its progress matches. The paper plots both progress rates (bytes/sec) and the
// queue fill level, and reports ~1/3 s to respond to the rate doubling.
#include <cstdlib>
#include <fstream>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"
#include "util/csv.h"

namespace realrate {
namespace {

void PrintFigure6() {
  bench::PrintHeader(
      "Figure 6: controller responsiveness on an otherwise idle system\n"
      "producer: fixed 50 ppt / 10 ms reservation; rate pulses double bytes/cycle\n"
      "consumer: real-rate, allocation owned by the feedback controller");

  PipelineParams params;  // The canonical Fig. 6 setup (see DESIGN.md).
  const PipelineResult r = RunPipelineScenario(params);

  std::printf("top graph: progress rates (bytes/sec); bottom: queue fill level [0,1]\n\n");
  bench::PrintAligned({&r.producer_rate, &r.consumer_rate, &r.fill_level},
                      Duration::Seconds(1));

  // Optional plotting output: REALRATE_CSV_DIR=/tmp ./bench_fig6_responsiveness
  if (const char* dir = std::getenv("REALRATE_CSV_DIR")) {
    const std::string path = std::string(dir) + "/fig6.csv";
    std::ofstream out(path);
    if (out) {
      WriteAlignedSeries(out, {&r.producer_rate, &r.consumer_rate, &r.fill_level});
      std::printf("\n  full-resolution series written to %s\n", path.c_str());
    }
  }

  std::printf("\n  response time to first rate doubling: %.3f s   (paper: ~1/3 s)\n",
              r.response_time_s);
  std::printf("  steady-state |fill - 1/2| deviation:  %.3f\n", r.fill_deviation);
  std::printf("  consumer deadline misses: %lld, quality exceptions: %lld\n\n",
              static_cast<long long>(r.consumer_deadline_misses),
              static_cast<long long>(r.quality_exceptions));
}

// Wall-clock: full closed-loop simulation throughput (45 simulated seconds per iter).
void BM_Fig6Scenario(benchmark::State& state) {
  for (auto _ : state) {
    PipelineParams params;
    params.run_for = Duration::Seconds(5);
    const PipelineResult r = RunPipelineScenario(params);
    benchmark::DoNotOptimize(r.trace_hash);
  }
}
BENCHMARK(BM_Fig6Scenario)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintFigure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
