// Figure 8: "Dispatch Overhead vs. Frequency" — the CPU available to a greedy user
// process as a function of dispatcher frequency, normalized to a 10 ms time slice
// (100 Hz). The paper reports a knee around 4000 Hz with ~2.7% overhead there.
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"

namespace realrate {
namespace {

void PrintFigure8() {
  bench::PrintHeader(
      "Figure 8: dispatch overhead vs dispatcher frequency\n"
      "paper: CPU available to user processes, normalized to a 10 ms time slice;\n"
      "knee around 4000 Hz, ~2.7% overhead at the knee");

  const std::vector<double> freqs = {100, 200, 500, 1000, 2000, 3000, 4000, 6000, 8000, 10000};
  std::vector<DispatchOverheadPoint> points;
  points.reserve(freqs.size());
  for (double f : freqs) {
    points.push_back(MeasureDispatchOverhead(f));
  }
  const double base = points.front().cpu_available;

  std::printf("  %12s %16s %16s %14s\n", "freq (Hz)", "cpu available", "normalized",
              "overhead");
  for (const auto& p : points) {
    std::printf("  %12.0f %16.4f %16.4f %13.2f%%\n", p.frequency_hz, p.cpu_available,
                p.cpu_available / base, (1.0 - p.cpu_available / base) * 100.0);
  }

  // Knee: the paper marks it where overhead reaches ~2.7%.
  for (const auto& p : points) {
    if (1.0 - p.cpu_available / base >= 0.027) {
      std::printf("\n  overhead crosses 2.7%% at %.0f Hz   (paper: knee around 4000 Hz)\n\n",
                  p.frequency_hz);
      break;
    }
  }
}

void BM_DispatchSweep(benchmark::State& state) {
  const double freq = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const DispatchOverheadPoint p = MeasureDispatchOverhead(freq, Duration::Seconds(1));
    benchmark::DoNotOptimize(p.cpu_available);
  }
  state.counters["freq_hz"] = freq;
}
BENCHMARK(BM_DispatchSweep)->Arg(100)->Arg(1000)->Arg(4000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintFigure8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
