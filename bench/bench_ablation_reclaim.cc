// Ablation A4: the "too generous" reclaim branch of the proportion-estimation law
// (Figure 4). A bursty interactive-style miscellaneous job holds allocation it rarely
// uses; without reclaim, the constant-pressure heuristic inflates its share and a
// competing hog is squished for nothing.
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/sampler.h"
#include "exp/system.h"
#include "workloads/misc_work.h"
#include "workloads/server.h"

namespace realrate {
namespace {

struct ReclaimOutcome {
  double interactive_alloc_ppt;  // Mean allocation held by the mostly-idle job.
  double interactive_used_cpu;   // CPU it actually consumed.
  double hog_cpu;                // Throughput of the competing hog.
};

ReclaimOutcome RunScenario(double reclaim_step) {
  SystemConfig config;
  config.controller.estimator.reclaim_step = reclaim_step;
  System system(config);

  TtyPort tty("console");
  system.machine().Attach(&tty);
  TypingProcess::Config typing;
  typing.mean_think = Duration::Millis(400);
  TypingProcess typist(system.sim(), &tty, typing);

  SimThread* interactive = system.Spawn(
      "interactive", std::make_unique<InteractiveWork>(&tty, /*cycles_per_event=*/200'000));
  SimThread* hog = system.Spawn("hog", std::make_unique<CpuHogWork>());
  system.controller().AddMiscellaneous(interactive);
  system.controller().AddMiscellaneous(hog);

  Sampler sampler(system.sim(), Duration::Millis(50));
  sampler.AddProbe("ia", [interactive] {
    return static_cast<double>(interactive->proportion().ppt());
  });

  const Duration run = Duration::Seconds(10);
  system.Start();
  typist.Start();
  sampler.Start();
  system.RunFor(run);

  const auto total = static_cast<double>(system.sim().cpu().DurationToCycles(run));
  ReclaimOutcome out;
  out.interactive_alloc_ppt =
      sampler.Series("ia").MeanOver(TimePoint::FromNanos(5'000'000'000), TimePoint::Max());
  out.interactive_used_cpu = static_cast<double>(interactive->total_cycles()) / total;
  out.hog_cpu = static_cast<double>(hog->total_cycles()) / total;
  return out;
}

void PrintAblation() {
  bench::PrintHeader(
      "Ablation A4: usage-based reclaim (Fig. 4 'too generous' branch)\n"
      "a mostly-idle interactive job vs a CPU hog; reclaim step C swept\n"
      "(C = 0 disables the branch entirely)");

  std::printf("  %-14s %18s %16s %12s\n", "reclaim C", "idle job alloc", "idle job used",
              "hog cpu");
  for (double step : {0.0, 0.01, 0.05, 0.10}) {
    const ReclaimOutcome r = RunScenario(step);
    std::printf("  %-14.2f %14.0f ppt %15.2f%% %11.1f%%\n", step, r.interactive_alloc_ppt,
                r.interactive_used_cpu * 100, r.hog_cpu * 100);
  }
  std::printf(
      "\n  with C = 0 the idle job's constant pressure inflates its held allocation\n"
      "  and the hog loses capacity it could use; larger C trims the idle job back\n"
      "  toward its true (tiny) usage.\n\n");
}

void BM_ReclaimScenario(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScenario(0.05).hog_cpu);
  }
}
BENCHMARK(BM_ReclaimScenario)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
