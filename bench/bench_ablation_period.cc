// Ablation A3: the period-estimation heuristic (§3.3), which the paper implements but
// disables in its experiments. Two workloads:
//   - a trickle consumer whose proportion is tiny: quantization error dominates, so the
//     heuristic should *grow* the period;
//   - a bursty pipeline whose fill level swings widely: jitter dominates, so the
//     heuristic should *shrink* the period.
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/sampler.h"
#include "exp/system.h"
#include "util/stats.h"
#include "workloads/producer_consumer.h"
#include "workloads/rate_schedule.h"

namespace realrate {
namespace {

struct PeriodOutcome {
  Duration final_period;
  double mean_fill_swing;
  int64_t deadline_misses;
};

PeriodOutcome RunTrickle(bool enable_estimation) {
  SystemConfig config;
  config.controller.enable_period_estimation = enable_estimation;
  System system(config);
  BoundedBuffer* q = system.CreateQueue("pipe", 100'000);
  // ~5 items/s of 100 bytes: the consumer needs ~0.125% CPU, far below a dispatchable
  // quantum at a 30 ms period.
  SimThread* producer = system.Spawn(
      "producer", std::make_unique<ProducerWork>(q, 4'000'000, RateSchedule(100.0)));
  SimThread* consumer = system.Spawn("consumer", std::make_unique<ConsumerWork>(q, 1'000));
  system.queues().Register(q, producer->id(), QueueRole::kProducer);
  system.queues().Register(q, consumer->id(), QueueRole::kConsumer);
  system.controller().AddRealTime(producer, Proportion::Ppt(50), Duration::Millis(10));
  system.controller().AddRealRate(consumer);
  system.Start();
  system.RunFor(Duration::Seconds(10));
  return {system.controller().PeriodOf(consumer->id()), 0.0, consumer->deadline_misses()};
}

PeriodOutcome RunBursty(bool enable_estimation) {
  SystemConfig config;
  config.controller.enable_period_estimation = enable_estimation;
  System system(config);
  // 1000-byte bursts into a 2500-byte queue: each burst moves the fill level by 40%.
  BoundedBuffer* q = system.CreateQueue("pipe", 2'500);
  SimThread* producer = system.Spawn(
      "producer", std::make_unique<ProducerWork>(q, 2'000'000, RateSchedule(1'000.0)));
  SimThread* consumer = system.Spawn("consumer", std::make_unique<ConsumerWork>(q, 2'000));
  system.queues().Register(q, producer->id(), QueueRole::kProducer);
  system.queues().Register(q, consumer->id(), QueueRole::kConsumer);
  system.controller().AddRealTime(producer, Proportion::Ppt(100), Duration::Millis(10));
  system.controller().AddRealRate(consumer);

  // Track the fill swing per 30 ms window as a jitter measure.
  RunningStats swing;
  TimeSeries fill("fill");
  Sampler sampler(system.sim(), Duration::Millis(5));
  sampler.AddProbe("fill", [q] { return q->FillFraction(); });
  system.Start();
  sampler.Start();
  system.RunFor(Duration::Seconds(10));
  const TimeSeries& f = sampler.Series("fill");
  for (int64_t t = 0; t < 10'000; t += 30) {
    swing.Add(f.OscillationOver(TimePoint::FromNanos(t * 1'000'000),
                                TimePoint::FromNanos((t + 30) * 1'000'000)));
  }
  return {system.controller().PeriodOf(consumer->id()), swing.mean(),
          consumer->deadline_misses()};
}

void PrintAblation() {
  bench::PrintHeader(
      "Ablation A3: period-estimation heuristic on/off (the paper implements it but\n"
      "disables it in all experiments; default period 30 ms)");

  std::printf("  %-28s %16s %16s\n", "workload", "estimation off", "estimation on");
  {
    const PeriodOutcome off = RunTrickle(false);
    const PeriodOutcome on = RunTrickle(true);
    std::printf("  %-28s %13lld ms %13lld ms\n", "trickle: final period",
                static_cast<long long>(off.final_period.millis()),
                static_cast<long long>(on.final_period.millis()));
  }
  {
    const PeriodOutcome off = RunBursty(false);
    const PeriodOutcome on = RunBursty(true);
    std::printf("  %-28s %13lld ms %13lld ms\n", "bursty: final period",
                static_cast<long long>(off.final_period.millis()),
                static_cast<long long>(on.final_period.millis()));
    std::printf("  %-28s %16.3f %16.3f\n", "bursty: mean fill swing/30ms",
                off.mean_fill_swing, on.mean_fill_swing);
  }
  std::printf(
      "\n  trickle: the tiny proportion triggers the quantization rule and the period\n"
      "  grows; bursty: large fill swings trigger the jitter rule and the period\n"
      "  shrinks toward the 5 ms floor.\n\n");
}

void BM_TricklePeriodEstimation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunTrickle(true).final_period);
  }
}
BENCHMARK(BM_TricklePeriodEstimation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
