// Ablation A6: the full scheduler comparison on a mixed workload — a real-rate
// pipeline, a CPU hog, and an interactive job — across the feedback allocator and the
// three baselines. Quantifies the paper's claimed benefits: rate tracking, low
// allocation variance, interactive responsiveness, and absence of starvation.
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"
#include "exp/system.h"
#include "sched/fixed_priority.h"
#include "sched/lottery.h"
#include "sched/mlfq.h"
#include "util/stats.h"
#include "workloads/misc_work.h"
#include "workloads/producer_consumer.h"
#include "workloads/rate_schedule.h"
#include "workloads/server.h"

namespace realrate {
namespace {

struct MixedResult {
  double rate_error = 0.0;        // Mean relative |consumer - target| progress rate.
  double consumer_share_sd = 0.0; // Stddev of consumer CPU share per 100 ms window.
  double interactive_p95_ms = 0.0;
  double hog_cpu = 0.0;
  int64_t consumer_starved_windows = 0;  // 100 ms windows with zero consumer progress.
};

constexpr double kTargetRate = 5000.0;  // bytes/sec, as in Fig. 6.

template <typename Rig>
MixedResult Measure(Rig& rig, Simulator& sim, SimThread* consumer, SimThread* hog,
                    TtyPort& tty, Duration run_for) {
  RunningStats share;
  RunningStats rate_err;
  int64_t starved = 0;
  int64_t last_progress = 0;
  Cycles last_cycles = 0;
  const int windows = static_cast<int>(run_for / Duration::Millis(100));
  for (int i = 0; i < windows; ++i) {
    rig.RunFor(Duration::Millis(100));
    const int64_t progress = consumer->progress_units();
    const Cycles cycles = consumer->total_cycles();
    const double rate = static_cast<double>(progress - last_progress) * 10.0;
    if (i >= 10) {  // Skip the first second of warm-up.
      rate_err.Add(std::abs(rate - kTargetRate) / kTargetRate);
      share.Add(static_cast<double>(cycles - last_cycles) / 40e6);
      if (progress == last_progress) {
        ++starved;
      }
    }
    last_progress = progress;
    last_cycles = cycles;
  }
  MixedResult out;
  out.rate_error = rate_err.mean();
  out.consumer_share_sd = share.stddev();
  SampleSet latencies;
  for (double l : tty.latencies()) {
    latencies.Add(l * 1000.0);
  }
  out.interactive_p95_ms = latencies.empty() ? -1.0 : latencies.Percentile(95);
  out.hog_cpu = static_cast<double>(hog->total_cycles()) /
                static_cast<double>(sim.cpu().DurationToCycles(run_for));
  out.consumer_starved_windows = starved;
  return out;
}

struct FeedbackRig {
  System system{};
  void RunFor(Duration d) { system.RunFor(d); }
};

MixedResult RunFeedback(Duration run_for) {
  FeedbackRig rig;
  System& system = rig.system;
  BoundedBuffer* q = system.CreateQueue("pipe", 4'000);
  // Isochronous 5000 B/s source: 100 bytes every 20 ms, 400k cycles of work per item.
  SimThread* producer = system.Spawn(
      "producer", std::make_unique<PacedProducerWork>(q, 100, Duration::Millis(20),
                                                      400'000));
  SimThread* consumer = system.Spawn("consumer", std::make_unique<ConsumerWork>(q, 2'000));
  SimThread* hog = system.Spawn("hog", std::make_unique<CpuHogWork>());
  TtyPort tty("console");
  system.machine().Attach(&tty);
  SimThread* editor =
      system.Spawn("editor", std::make_unique<InteractiveWork>(&tty, 400'000));
  TypingProcess typist(system.sim(), &tty, {.mean_think = Duration::Millis(300), .seed = 5});

  system.queues().Register(q, producer->id(), QueueRole::kProducer);
  system.queues().Register(q, consumer->id(), QueueRole::kConsumer);
  system.controller().AddRealTime(producer, Proportion::Ppt(100), Duration::Millis(10));
  system.controller().AddRealRate(consumer);
  system.controller().AddMiscellaneous(hog);
  system.controller().AddMiscellaneous(editor);

  system.Start();
  typist.Start();
  return Measure(rig, system.sim(), consumer, hog, tty, run_for);
}

struct BaselineMixedRig {
  Simulator sim;
  ThreadRegistry threads;
  QueueRegistry queues;
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<Machine> machine;
  // Through the Machine so idle-fast-forward catch-up settles before reads.
  void RunFor(Duration d) { machine->RunFor(d); }
};

MixedResult RunBaseline(SchedulerKind kind, Duration run_for) {
  BaselineMixedRig rig;
  switch (kind) {
    case SchedulerKind::kFixedPriority:
      rig.scheduler = std::make_unique<FixedPriorityScheduler>();
      break;
    case SchedulerKind::kMlfq:
      rig.scheduler = std::make_unique<MlfqScheduler>(rig.sim.cpu(), Duration::Millis(10));
      break;
    case SchedulerKind::kLottery:
      rig.scheduler = std::make_unique<LotteryScheduler>(99);
      break;
    case SchedulerKind::kFeedbackRbs:
      break;
  }
  rig.machine = std::make_unique<Machine>(rig.sim, *rig.scheduler, rig.threads);

  BoundedBuffer* q = rig.queues.CreateQueue("pipe", 4'000);
  rig.machine->Attach(q);
  SimThread* producer = rig.threads.Create(
      "producer", std::make_unique<PacedProducerWork>(q, 100, Duration::Millis(20),
                                                      400'000));
  SimThread* consumer =
      rig.threads.Create("consumer", std::make_unique<ConsumerWork>(q, 2'000));
  SimThread* hog = rig.threads.Create("hog", std::make_unique<CpuHogWork>());
  TtyPort tty("console");
  rig.machine->Attach(&tty);
  SimThread* editor =
      rig.threads.Create("editor", std::make_unique<InteractiveWork>(&tty, 400'000));
  TypingProcess typist(rig.sim, &tty, {.mean_think = Duration::Millis(300), .seed = 5});

  // Typical deployment: the pipeline and editor at normal priority, the hog "niced"
  // high by its owner (the abuse case priorities cannot defend against).
  producer->set_priority(10);
  consumer->set_priority(10);
  editor->set_priority(10);
  hog->set_priority(12);
  producer->set_tickets(100);
  consumer->set_tickets(100);
  editor->set_tickets(100);
  hog->set_tickets(200);

  for (SimThread* t : {producer, consumer, hog, editor}) {
    rig.machine->Attach(t);
  }
  rig.machine->Start();
  typist.Start();
  return Measure(rig, rig.sim, consumer, hog, tty, run_for);
}

void PrintComparison() {
  bench::PrintHeader(
      "Ablation A6: mixed workload across schedulers\n"
      "pipeline (5000 B/s target) + greedy hog (self-raised priority/tickets) +\n"
      "interactive editor. 15 s runs; first second excluded");

  std::printf("  %-16s %11s %12s %14s %10s %10s\n", "scheduler", "rate err",
              "share sd", "editor p95", "hog cpu", "starved");
  const Duration run = Duration::Seconds(15);
  for (SchedulerKind kind :
       {SchedulerKind::kFixedPriority, SchedulerKind::kMlfq, SchedulerKind::kLottery,
        SchedulerKind::kFeedbackRbs}) {
    const MixedResult r = kind == SchedulerKind::kFeedbackRbs
                              ? RunFeedback(run)
                              : RunBaseline(kind, run);
    std::printf("  %-16s %10.1f%% %12.4f %11.1f ms %9.1f%% %10lld\n", ToString(kind),
                r.rate_error * 100, r.consumer_share_sd, r.interactive_p95_ms,
                r.hog_cpu * 100, static_cast<long long>(r.consumer_starved_windows));
  }
  std::printf(
      "\n  fixed-priority: the self-important hog starves pipeline and editor.\n"
      "  mlfq/lottery: nobody starves, but only because the consumer may grab\n"
      "  arbitrarily more CPU than its rate requires — there is no isolation and the\n"
      "  hog's share is whatever the heuristic happens to leave.\n"
      "  feedback-rbs: the consumer is held at its true need (~25 ppt), the editor is\n"
      "  trimmed to its burst usage, and the hog absorbs exactly the measured slack —\n"
      "  fine-grain control none of the baselines provide.\n\n");
}

void BM_MixedFeedback(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunFeedback(Duration::Seconds(3)).rate_error);
  }
}
BENCHMARK(BM_MixedFeedback)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
