// Cluster scale-out sweep: the Flash-style web farm (workloads/web_farm.h)
// spread over M machines by the front-end router (src/cluster), at a fixed
// offered-load ratio of the CLUSTER's capacity. One table, three claims:
//
//   1. Goodput scales with machines: the per-cluster stream is 0.9x of M times
//      one node's saturation rate, so served requests must grow with M while
//      the load-imbalance ratio (max per-machine served over the perfect
//      share) stays near 1 under the feedback router.
//   2. The determinism contract is free to assert: each M's scenario runs
//      three times — twice single-threaded and once with every node's dispatch
//      rounds fanned over 4 host threads — and every per-machine trace hash
//      must match (RR_CHECK'd here, reported as trace_equal, gated by
//      scripts/check_cluster_scale.py). The M=1 row is additionally pinned
//      bit-identical to a bare RunWebFarmScenario (m1_equal_bare).
//   3. The layer costs nothing at degenerate scale: M=1 is the identity.
//
// A configuration smoke then builds a ~2M-simulated-thread cluster (512
// machines x 4096 real-rate workers) and runs a short horizon through it,
// proving construction, routing, and the per-node controllers stand up at
// that scale.
//
// The `CLUSTER machines=...` and `CLUSTER_SMOKE ...` lines are
// machine-readable: scripts/check_cluster_scale.py parses them and compares
// against the committed BENCH_cluster_baseline.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cluster/cluster_farm.h"
#include "util/assert.h"
#include "util/time.h"
#include "workloads/arrivals.h"
#include "workloads/web_farm.h"

namespace realrate {
namespace {

constexpr uint64_t kSeed = 99;
constexpr double kLoadRatio = 0.9;  // Of the whole cluster's saturation rate.

ClusterFarmParams SweepParams(int machines, int host_threads) {
  ClusterFarmParams params;
  params.num_machines = machines;
  params.farm.num_cpus = 2;
  params.farm.num_workers = 4;
  params.farm.host_threads = host_threads;
  params.farm.run_for = Duration::Millis(1000);
  params.farm.arrivals.seed = kSeed;
  params.farm.arrivals.requests_per_sec = kLoadRatio * ClusterFarmCapacityRps(params);
  return params;
}

struct Cell {
  ClusterFarmResult result;
  double wall_sec = 0.0;
  bool trace_equal = false;
  bool m1_equal_bare = true;  // Vacuously true for M > 1; checked at M = 1.
};

Cell Measure(int machines) {
  Cell cell;
  cell.wall_sec = 1e30;
  bool first = true;
  // Two sequential runs (determinism across runs) plus one 4-host-thread run
  // (the parallel engine is a wall-clock optimization, never a schedule change).
  for (const int host_threads : {1, 1, 4}) {
    const ClusterFarmParams params = SweepParams(machines, host_threads);
    const auto start = std::chrono::steady_clock::now();
    const ClusterFarmResult result = RunClusterFarmScenario(params);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (first) {
      first = false;
      cell.result = result;
      cell.wall_sec = wall;
    } else {
      RR_CHECK(result.machine_trace_hashes == cell.result.machine_trace_hashes);
      RR_CHECK(result.served == cell.result.served);
      RR_CHECK(result.rebalanced == cell.result.rebalanced);
      if (host_threads == 1) {
        cell.wall_sec = std::min(cell.wall_sec, wall);
      }
    }
  }
  cell.trace_equal = true;  // The RR_CHECKs above abort on divergence.
  if (machines == 1) {
    // The degenerate cluster is pinned bit-identical to a bare machine running
    // the identical farm: the layer may add only trace-free epoch fences.
    const WebFarmResult bare = RunWebFarmScenario(SweepParams(1, 1).farm);
    cell.m1_equal_bare = cell.result.machine_trace_hashes.size() == 1 &&
                         cell.result.machine_trace_hashes[0] == bare.trace_hash &&
                         cell.result.served == bare.served;
    RR_CHECK(cell.m1_equal_bare);
  }
  RR_CHECK(cell.result.served > 0);
  return cell;
}

void PrintClusterSweep() {
  const int host_cpus = static_cast<int>(std::thread::hardware_concurrency());
  bench::PrintHeader(
      "Cluster scale-out (2-core/4-worker nodes, feedback router, Poisson\n"
      "arrivals at 0.9x of the cluster's saturation rate, 1 s virtual) at\n"
      "M=1/4/16 machines; per-machine trace hashes RR_CHECK'd equal across\n"
      "re-runs and at 4 host threads, M=1 pinned to the bare machine");
  std::printf("  host cpus: %d\n\n", host_cpus);
  std::printf("  %8s %8s %8s %11s %10s %10s %9s %9s %11s %13s\n", "machines", "offered",
              "served", "goodput_rps", "imbalance", "rebalanced", "p50_ms", "p99_ms",
              "trace_equal", "m1_equal_bare");

  for (const int machines : {1, 4, 16}) {
    const Cell cell = Measure(machines);
    const ClusterFarmResult& r = cell.result;
    std::printf("  %8d %8lld %8lld %11.1f %10.3f %10lld %9.2f %9.2f %11s %13s\n",
                machines, static_cast<long long>(r.offered),
                static_cast<long long>(r.served), r.goodput_rps, r.imbalance_ratio,
                static_cast<long long>(r.rebalanced), r.p50_ms, r.p99_ms,
                cell.trace_equal ? "yes" : "NO", cell.m1_equal_bare ? "yes" : "NO");
    // Machine-readable row for scripts/check_cluster_scale.py (CI gate).
    std::printf("CLUSTER machines=%d host_cpus=%d offered=%lld served=%lld "
                "goodput_rps=%.1f imbalance=%.4f rebalanced=%lld listen_drops=%lld "
                "dispatch_drops=%lld p50_ms=%.3f p99_ms=%.3f cluster_hash=%llu "
                "trace_equal=%d m1_equal_bare=%d wall_ms=%.1f\n",
                machines, host_cpus, static_cast<long long>(r.offered),
                static_cast<long long>(r.served), r.goodput_rps, r.imbalance_ratio,
                static_cast<long long>(r.rebalanced),
                static_cast<long long>(r.listen_drops),
                static_cast<long long>(r.dispatch_drops), r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.cluster_hash), cell.trace_equal ? 1 : 0,
                cell.m1_equal_bare ? 1 : 0, cell.wall_sec * 1e3);
  }
  std::printf("\n");
}

// Configuration smoke: stand the cluster up at ~2M simulated threads and push
// a short burst through it. The scale is reached wide — 512 nodes x 4096
// workers — rather than deep, because a node's start-up transient (every
// fresh worker runs once before blocking on its empty queue) costs quadratic
// time in workers-per-machine but only linear in machines. The horizon is
// deliberately tiny: the claim is that construction, per-epoch routing across
// 512 nodes, and 512 independent controllers stand up at this scale, not that
// the run is long. Skippable via REALRATE_CLUSTER_SMOKE=0 (the sanitizer CI
// legs: instrumentation multiplies the smoke's memory and wall cost without
// adding coverage the sweep rows don't already have).
void PrintClusterSmoke() {
  const char* env = std::getenv("REALRATE_CLUSTER_SMOKE");
  if (env != nullptr && env[0] == '0') {
    std::printf("CLUSTER_SMOKE skipped=1\n\n");
    return;
  }
  ClusterFarmParams params;
  params.num_machines = 512;
  params.farm.num_cpus = 2;
  params.farm.num_workers = 4'096;
  params.farm.run_for = Duration::Millis(20);
  params.epoch = Duration::Millis(10);
  params.rebalance_interval = Duration::Zero();
  params.farm.arrivals.seed = kSeed;
  params.farm.arrivals.requests_per_sec = 100'000.0;
  const auto start = std::chrono::steady_clock::now();
  const ClusterFarmResult r = RunClusterFarmScenario(params);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  RR_CHECK(r.injected > 0);
  bench::PrintHeader("Configuration smoke: 512 machines x 4096 workers (~2M threads)");
  std::printf("  total simulated threads: %lld  injected: %lld  served: %lld  "
              "wall: %.1f s\n\n",
              static_cast<long long>(r.total_threads), static_cast<long long>(r.injected),
              static_cast<long long>(r.served), wall);
  std::printf("CLUSTER_SMOKE machines=%d total_threads=%lld injected=%lld served=%lld "
              "cluster_hash=%llu wall_ms=%.1f\n\n",
              r.num_machines, static_cast<long long>(r.total_threads),
              static_cast<long long>(r.injected), static_cast<long long>(r.served),
              static_cast<unsigned long long>(r.cluster_hash), wall * 1e3);
}

void BM_ClusterRoundtrip(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  ClusterFarmParams params = SweepParams(machines, 1);
  params.farm.run_for = Duration::Millis(100);
  params.farm.arrivals.requests_per_sec = kLoadRatio * ClusterFarmCapacityRps(params);
  for (auto _ : state) {
    const ClusterFarmResult result = RunClusterFarmScenario(params);
    benchmark::DoNotOptimize(result.cluster_hash);
  }
  state.counters["machines"] = static_cast<double>(machines);
}
BENCHMARK(BM_ClusterRoundtrip)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintClusterSweep();
  realrate::PrintClusterSmoke();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
