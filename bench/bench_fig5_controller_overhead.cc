// Figure 5: "Overhead of Controller" — controller CPU overhead versus the number of
// controlled processes. The paper reports a linear fit y = .00066x + .00057 with
// R^2 = .999 and 2.7% overhead at 40 processes, controller at a 10 ms period on a
// 400 MHz Pentium II.
//
// Part 1 reproduces the figure on the simulator's calibrated cost model.
// Part 2 measures the wall-clock cost of *our* controller's computation (RunOnce) with
// google-benchmark, demonstrating the same linear-in-N shape on real hardware.
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"
#include "exp/system.h"
#include "util/stats.h"
#include "workloads/misc_work.h"

namespace realrate {
namespace {

void PrintFigure5() {
  bench::PrintHeader(
      "Figure 5: controller overhead vs number of controlled processes\n"
      "paper: linear, y = .00066x + .00057, R^2 = .999; 2.7% of CPU at 40 processes");

  std::vector<double> xs;
  std::vector<double> ys;
  std::printf("  %10s %18s %18s\n", "processes", "overhead(sim)", "overhead(paper)");
  for (int n = 0; n <= 40; n += 5) {
    const ControllerOverheadPoint point = MeasureControllerOverhead(n);
    const double paper = 0.00066 * n + 0.00057;
    std::printf("  %10d %18.5f %18.5f\n", point.num_processes, point.overhead_fraction, paper);
    xs.push_back(n);
    ys.push_back(point.overhead_fraction);
  }
  const LinearFit fit = FitLine(xs, ys);
  std::printf("\n  fit: y = %.5fx + %.5f, R^2 = %.4f   (paper: y = .00066x + .00057, R^2=.999)\n",
              fit.slope, fit.intercept, fit.r_squared);
  std::printf("  overhead at 40 processes: %.2f%%            (paper: 2.7%%)\n\n",
              ys.back() * 100.0);
}

// Wall-clock cost of one controller iteration as a function of controlled threads.
void BM_ControllerIteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SystemConfig config;
  config.controller.charge_overhead = false;
  config.start_controller = false;
  System system(config);
  for (int i = 0; i < n; ++i) {
    SimThread* t = system.Spawn("dummy" + std::to_string(i), std::make_unique<IdleWork>());
    system.controller().AddMiscellaneous(t);
  }
  TimePoint now = TimePoint::Origin();
  for (auto _ : state) {
    now += Duration::Millis(10);
    system.controller().RunOnce(now);
    benchmark::DoNotOptimize(system.controller().invocations());
  }
  state.counters["threads"] = n;
}
BENCHMARK(BM_ControllerIteration)->Arg(0)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintFigure5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
