// SMP scaling: aggregate dispatch throughput and user work versus core count. Not a
// paper figure — the paper's prototype is a uniprocessor — but the scaling story the
// ROADMAP demands: the same pipeline workload spread over 1..8 cores by the Machine's
// least-loaded placement, with per-core proportion allocation (see
// docs/ARCHITECTURE.md, "sched" and "core" layers).
//
// Expected shape: total dispatches/virtual-second and aggregate user fraction both
// grow with core count while per-pipeline behaviour (queues near half-full, consumers
// at ~2.5% of a core) stays flat — dispatch is per-core work, so an N-core machine
// dispatches N times as often per virtual second.
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"

namespace realrate {
namespace {

SmpParams ParamsFor(int num_cpus) {
  SmpParams params;
  params.num_cpus = num_cpus;
  // Offered load grows with the machine so every core has pipelines to host: two
  // pipelines per core (each pair needs ~7.5% of a core) plus one hog per core to
  // soak the remaining capacity.
  params.num_pipelines = 2 * num_cpus;
  params.num_hogs = num_cpus;
  params.run_for = Duration::Seconds(5);
  return params;
}

void PrintSmpScale() {
  bench::PrintHeader(
      "SMP scale: dispatch throughput vs core count\n"
      "2 pipelines + 1 hog per core; dispatch interval 1 ms; 5 s virtual time");

  std::printf("  %6s %18s %16s %14s %12s %12s\n", "cores", "dispatch/vsec",
              "agg user frac", "consumed B", "migrations", "squishes");
  double base_throughput = 0.0;
  for (int cpus : {1, 2, 4, 8}) {
    const SmpResult r = RunSmpPipelinesScenario(ParamsFor(cpus));
    if (cpus == 1) {
      base_throughput = r.dispatch_throughput_per_vsec;
    }
    std::printf("  %6d %18.0f %16.3f %14lld %12lld %12lld\n", r.num_cpus,
                r.dispatch_throughput_per_vsec, r.aggregate_user_fraction,
                static_cast<long long>(r.total_consumed_bytes),
                static_cast<long long>(r.migrations),
                static_cast<long long>(r.squish_events));
    if (cpus == 4 && base_throughput > 0.0) {
      std::printf("         1 -> 4 core dispatch-throughput scaling: %.2fx\n",
                  r.dispatch_throughput_per_vsec / base_throughput);
    }
  }
  std::printf("\n");
}

void BM_SmpScale(benchmark::State& state) {
  const int cpus = static_cast<int>(state.range(0));
  SmpParams params = ParamsFor(cpus);
  params.run_for = Duration::Seconds(2);
  SmpResult last;
  for (auto _ : state) {
    last = RunSmpPipelinesScenario(params);
    benchmark::DoNotOptimize(last.total_dispatches);
  }
  state.counters["cores"] = cpus;
  state.counters["dispatch_per_vsec"] = last.dispatch_throughput_per_vsec;
  state.counters["agg_user_frac"] = last.aggregate_user_fraction;
}
BENCHMARK(BM_SmpScale)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintSmpScale();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
