// §4.4 "Benefits of Real-Rate Scheduling": priority inversion (the Mars Pathfinder
// scenario from §2), starvation, and the media pipeline whose decoder stage needs far
// more CPU than its peers. Compares our feedback allocator against fixed priorities,
// Linux-style MLFQ, and lottery scheduling.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"

namespace realrate {
namespace {

void PrintPathfinder() {
  bench::PrintHeader(
      "Priority inversion (Mars Pathfinder): high-priority periodic task shares a\n"
      "mutex with a low-priority task; a medium-priority hog competes");

  std::printf("  %-16s %14s %14s %9s %10s %10s %10s\n", "scheduler", "max wait",
              "steady wait", "blocked?", "high acq", "med cpu", "low cpu");
  for (SchedulerKind kind :
       {SchedulerKind::kFixedPriority, SchedulerKind::kMlfq, SchedulerKind::kLottery,
        SchedulerKind::kFeedbackRbs}) {
    const PathfinderResult r = RunPathfinderScenario(kind);
    std::printf("  %-16s %12.3f s %12.3f s %9s %10lld %9.1f%% %9.1f%%\n", ToString(kind),
                r.high_max_wait_s, r.high_max_wait_steady_s,
                r.high_still_blocked ? "YES" : "no",
                static_cast<long long>(r.high_acquisitions), r.medium_cpu * 100,
                r.low_cpu * 100);
  }
  std::printf(
      "\n  fixed-priority: the medium hog (arriving at t=1s) starves the lock-holding\n"
      "  low task, so the high task blocks on the mutex until the end of the run —\n"
      "  the unbounded inversion. The feedback allocator keeps every thread\n"
      "  progressing; after its ramp-up the high task's waits stay bounded.\n\n");
}

void PrintStarvation() {
  bench::PrintHeader(
      "Starvation: two CPU hogs, one favored (priority / tickets / importance 4:1).\n"
      "\"one process cannot keep the CPU from another process indefinitely simply\n"
      "because it is more important\"");

  std::printf("  %-16s %12s %12s %10s\n", "scheduler", "favored cpu", "lesser cpu",
              "starved?");
  for (SchedulerKind kind :
       {SchedulerKind::kFixedPriority, SchedulerKind::kMlfq, SchedulerKind::kLottery,
        SchedulerKind::kFeedbackRbs}) {
    const StarvationResult r = RunStarvationScenario(kind);
    std::printf("  %-16s %11.1f%% %11.1f%% %10s\n", ToString(kind), r.favored_cpu * 100,
                r.lesser_cpu * 100, r.lesser_starved ? "YES" : "no");
  }
  std::printf("\n");
}

void PrintMediaPipeline() {
  bench::PrintHeader(
      "Media pipeline: source -> parse -> decode -> render; the decoder costs 10x per\n"
      "byte. \"Our controller automatically identifies that one stage of the pipeline\n"
      "has vastly different CPU requirements than the others\"");

  const MediaPipelineResult r = RunMediaPipelineScenario();
  std::printf("  final allocations: parse %.0f ppt, decode %.0f ppt, render %.0f ppt\n",
              r.parse_ppt, r.decode_ppt, r.render_ppt);
  std::printf("  decode / parse allocation ratio: %.1fx (cost ratio per byte: 10x)\n",
              r.decode_ppt / r.parse_ppt);
  std::printf("  max |fill - 1/2| across stage queues: %.3f\n", r.max_fill_deviation);
  std::printf("  bytes rendered: %lld\n\n", static_cast<long long>(r.rendered_bytes));
}

void BM_PathfinderFeedback(benchmark::State& state) {
  for (auto _ : state) {
    const PathfinderResult r =
        RunPathfinderScenario(SchedulerKind::kFeedbackRbs, Duration::Seconds(2));
    benchmark::DoNotOptimize(r.high_max_wait_s);
  }
}
BENCHMARK(BM_PathfinderFeedback)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintPathfinder();
  realrate::PrintStarvation();
  realrate::PrintMediaPipeline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
