// Parallel dispatch engine scaling: the server farm end to end, at 1 / 2 / 4 host
// threads, across farm densities (128 / 512 / 1024 threads per core). Two claims,
// one table:
//
//   1. Correctness is free to assert: every cell's trace hash must equal the
//      host_threads = 1 reference run's hash for the same farm (RR_CHECK'd here,
//      and reported as the trace_equal column) — the parallel engine is a wall-clock
//      optimization, never a schedule change.
//   2. Throughput: hog-dominated rounds pass the independence gate nearly every
//      tick, so farm wall time should fall as host threads rise — near-linearly
//      when the host actually has the cores. On starved CI runners (1-2 CPUs) the
//      speedup column is noise; scripts/check_parallel_scale.py therefore gates it
//      only when host_cpus >= 4 and gates trace equality unconditionally.
//
// The `PARALLEL_SCALE ...` line is machine-readable: scripts/check_parallel_scale.py
// compares it against the committed BENCH_parallel_baseline.json in CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"
#include "util/assert.h"
#include "util/time.h"
#include "workloads/web_farm.h"

namespace realrate {
namespace {

constexpr int kCpus = 4;

// A pure-hog farm: every thread advertises round-local work, so the independence
// gate passes wall to wall and the table measures the engine, not the fallback.
ServerFarmParams FarmAt(int threads_per_core, int host_threads) {
  ServerFarmParams params;
  params.num_cpus = kCpus;
  params.num_pipelines = 0;
  params.num_hogs = threads_per_core * kCpus;
  params.host_threads = host_threads;
  params.run_for = Duration::Millis(150);
  return params;
}

struct Cell {
  double wall_sec = 0.0;
  uint64_t trace_hash = 0;
  int64_t parallel_rounds = 0;
  int64_t mailbox_rounds = 0;
};

// A queue-driven farm in the mailbox regime: matched-rate pipelines (producer
// 40 ppt at 24k cycles / 64 B item, consumer parity at 400 cycles/byte) whose
// per-tick staked traffic (~2.5 KB each way) is small against the 64 KB queues,
// plus a hog population dense enough that each fanned-out round carries real
// work. Before per-core epoch mailboxes the queue ops alone forced every one of
// these rounds down the sequential path (parallel_rounds == 0 here).
ServerFarmParams MailboxPipelineFarmAt(int host_threads) {
  ServerFarmParams params;
  params.num_cpus = kCpus;
  params.num_pipelines = 16;
  params.num_hogs = 512;
  params.queue_bytes = 64 * 1024;
  params.producer_proportion = Proportion::Ppt(40);
  params.producer_cycles_per_item = 24'000;
  params.bytes_per_item = 64.0;
  params.consumer_cycles_per_byte = 400;
  params.host_threads = host_threads;
  params.run_for = Duration::Millis(300);
  return params;
}

// The web farm at 85% of capacity: the acceptor's scatter and every worker's
// queue drain are staked through the mailbox, so admission/dispatch rounds fan
// out despite crossing the listen and per-worker queues.
WebFarmParams MailboxWebFarmAt(int host_threads) {
  WebFarmParams params;
  params.num_cpus = kCpus;
  params.num_workers = 8;
  params.num_acceptors = 1;
  params.host_threads = host_threads;
  params.run_for = Duration::Millis(600);
  params.arrivals.requests_per_sec = 0.85 * WebFarmCapacityRps(params);
  return params;
}

// Best-of-N wall time: host interference only ever adds wall time, so each cell's
// min is its least-contaminated estimate. Trials interleave across host-thread
// counts (the caller loops density-major), matching the other scaling benches.
template <typename RunFn>
Cell MeasureCell(RunFn&& run, int trials) {
  Cell cell;
  cell.wall_sec = 1e30;
  for (int trial = 0; trial < trials; ++trial) {
    const auto start = std::chrono::steady_clock::now();
    const Cell sample = run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    cell.wall_sec = std::min(cell.wall_sec, wall);
    if (trial == 0) {
      cell.trace_hash = sample.trace_hash;
      cell.parallel_rounds = sample.parallel_rounds;
      cell.mailbox_rounds = sample.mailbox_rounds;
    } else {
      // Determinism across trials too — a flaky hash would poison the baseline.
      RR_CHECK(sample.trace_hash == cell.trace_hash);
    }
  }
  return cell;
}

Cell Measure(int threads_per_core, int host_threads, int trials) {
  return MeasureCell(
      [&] {
        const ServerFarmResult result =
            RunServerFarmScenario(FarmAt(threads_per_core, host_threads));
        return Cell{0.0, result.trace_hash, result.parallel_rounds,
                    result.mailbox_rounds};
      },
      trials);
}

Cell MeasureMailboxPipeline(int host_threads, int trials) {
  return MeasureCell(
      [&] {
        const ServerFarmResult result =
            RunServerFarmScenario(MailboxPipelineFarmAt(host_threads));
        return Cell{0.0, result.trace_hash, result.parallel_rounds,
                    result.mailbox_rounds};
      },
      trials);
}

Cell MeasureMailboxWebFarm(int host_threads, int trials) {
  return MeasureCell(
      [&] {
        const WebFarmResult result = RunWebFarmScenario(MailboxWebFarmAt(host_threads));
        return Cell{0.0, result.trace_hash, result.parallel_rounds,
                    result.mailbox_rounds};
      },
      trials);
}

void PrintParallelScale() {
  const int host_cpus = static_cast<int>(std::thread::hardware_concurrency());
  bench::PrintHeader(
      "Server farm end to end (pure hogs, 4 simulated cores, 150 ms virtual)\n"
      "wall seconds at 1 / 2 / 4 host threads; every cell's trace is RR_CHECK'd\n"
      "equal to the single-threaded reference run's");
  std::printf("  host cpus: %d%s\n\n", host_cpus,
              host_cpus < kCpus ? "  (speedups below are starved; equality still binds)"
                                : "");
  std::printf("  %8s %10s %10s %10s %9s %9s %12s\n", "thr/core", "ht1 sec", "ht2 sec",
              "ht4 sec", "x2", "x4", "trace_equal");

  double wall1_512 = 0.0;
  double wall2_512 = 0.0;
  double wall4_512 = 0.0;
  int64_t rounds_512 = 0;
  bool all_equal = true;
  for (const int threads_per_core : {128, 512, 1024}) {
    const int trials = threads_per_core >= 1024 ? 2 : 3;
    const Cell c1 = Measure(threads_per_core, 1, trials);
    const Cell c2 = Measure(threads_per_core, 2, trials);
    const Cell c4 = Measure(threads_per_core, 4, trials);
    RR_CHECK(c1.parallel_rounds == 0);
    RR_CHECK(c2.parallel_rounds > 0);
    RR_CHECK(c4.parallel_rounds > 0);
    const bool equal = c2.trace_hash == c1.trace_hash && c4.trace_hash == c1.trace_hash;
    RR_CHECK(equal);
    all_equal = all_equal && equal;
    std::printf("  %8d %10.3f %10.3f %10.3f %8.2fx %8.2fx %12s\n", threads_per_core,
                c1.wall_sec, c2.wall_sec, c4.wall_sec, c1.wall_sec / c2.wall_sec,
                c1.wall_sec / c4.wall_sec, equal ? "yes" : "NO");
    if (threads_per_core == 512) {
      wall1_512 = c1.wall_sec;
      wall2_512 = c2.wall_sec;
      wall4_512 = c4.wall_sec;
      rounds_512 = c2.parallel_rounds;
    }
  }

  // Machine-readable line for scripts/check_parallel_scale.py (CI gate).
  std::printf("\nPARALLEL_SCALE threads_per_core=512 host_cpus=%d wall_ht1=%.4f "
              "wall_ht2=%.4f wall_ht4=%.4f speedup_ht2=%.3f speedup_ht4=%.3f "
              "parallel_rounds=%lld trace_equal=%d\n\n",
              host_cpus, wall1_512, wall2_512, wall4_512, wall1_512 / wall2_512,
              wall1_512 / wall4_512, static_cast<long long>(rounds_512),
              all_equal ? 1 : 0);
}

// Queue-driven rounds through the per-core epoch mailboxes: same table shape as
// above, but every fanned-out round stakes real BoundedBuffer push/pop traffic.
// Before the mailbox gate both rows below ran parallel_rounds == 0 wall to wall.
void PrintMailboxScale() {
  const int host_cpus = static_cast<int>(std::thread::hardware_concurrency());
  bench::PrintHeader(
      "Mailbox rounds end to end (queue-driven farms, 4 simulated cores)\n"
      "pipeline: 16 matched-rate pipelines + 512 hogs, 300 ms virtual\n"
      "webfarm:  8 workers / 1 acceptor at 85% capacity, 600 ms virtual");
  std::printf("  host cpus: %d%s\n\n", host_cpus,
              host_cpus < kCpus ? "  (speedups below are starved; equality still binds)"
                                : "");
  std::printf("  %8s %10s %10s %10s %9s %9s %9s %12s\n", "family", "ht1 sec", "ht2 sec",
              "ht4 sec", "x2", "x4", "mailbox", "trace_equal");

  struct Row {
    const char* family;
    Cell (*measure)(int host_threads, int trials);
  };
  constexpr Row kRows[] = {{"pipeline", MeasureMailboxPipeline},
                           {"webfarm", MeasureMailboxWebFarm}};
  for (const Row& row : kRows) {
    constexpr int kTrials = 2;
    const Cell c1 = row.measure(1, kTrials);
    const Cell c2 = row.measure(2, kTrials);
    const Cell c4 = row.measure(4, kTrials);
    // The sequential engine never counts mailbox rounds; the parallel runs must
    // stake some (else the equality below is vacuous) and reproduce the
    // reference trace bit for bit.
    RR_CHECK(c1.parallel_rounds == 0 && c1.mailbox_rounds == 0);
    RR_CHECK(c2.parallel_rounds > 0 && c2.mailbox_rounds > 0);
    RR_CHECK(c4.parallel_rounds > 0 && c4.mailbox_rounds > 0);
    const bool equal = c2.trace_hash == c1.trace_hash && c4.trace_hash == c1.trace_hash;
    RR_CHECK(equal);
    std::printf("  %8s %10.3f %10.3f %10.3f %8.2fx %8.2fx %9lld %12s\n", row.family,
                c1.wall_sec, c2.wall_sec, c4.wall_sec, c1.wall_sec / c2.wall_sec,
                c1.wall_sec / c4.wall_sec, static_cast<long long>(c4.mailbox_rounds),
                equal ? "yes" : "NO");
    // Machine-readable lines for scripts/check_parallel_scale.py (CI gate).
    std::printf("PARALLEL_SCALE_MAILBOX family=%s host_cpus=%d wall_ht1=%.4f "
                "wall_ht2=%.4f wall_ht4=%.4f speedup_ht2=%.3f speedup_ht4=%.3f "
                "parallel_rounds=%lld mailbox_rounds=%lld trace_equal=%d\n",
                row.family, host_cpus, c1.wall_sec, c2.wall_sec, c4.wall_sec,
                c1.wall_sec / c2.wall_sec, c1.wall_sec / c4.wall_sec,
                static_cast<long long>(c4.parallel_rounds),
                static_cast<long long>(c4.mailbox_rounds), equal ? 1 : 0);
  }
  std::printf("\n");
}

void BM_FarmRoundtrip(benchmark::State& state) {
  const int host_threads = static_cast<int>(state.range(0));
  ServerFarmParams params = FarmAt(/*threads_per_core=*/128, host_threads);
  params.run_for = Duration::Millis(40);
  for (auto _ : state) {
    const ServerFarmResult result = RunServerFarmScenario(params);
    benchmark::DoNotOptimize(result.trace_hash);
  }
  state.counters["host_threads"] = static_cast<double>(host_threads);
}
BENCHMARK(BM_FarmRoundtrip)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintParallelScale();
  realrate::PrintMailboxScale();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
