// Open-loop web farm under an offered-load sweep: a Flash-style acceptor/worker
// farm (workloads/web_farm.h) driven by a seeded Poisson arrival stream at 0.5x
// to 2x of the farm's saturation rate. One table, three claims:
//
//   1. Determinism is free to assert: each ratio's stream is materialized once,
//      then replayed three times — twice single-threaded and once at 4 host
//      threads — and every run must produce the same trace hash (RR_CHECK'd here,
//      reported as the trace_equal column, and gated by scripts/check_web_farm.py).
//   2. Overload shows up as admission drops, not collapse: the feedback allocator
//      targets half-full queues, so steady-state latency is pinned near the
//      half-queue backlog at every load while the drop fraction climbs with the
//      offered ratio and goodput saturates near capacity.
//   3. The tail columns (p50/p99/p999) are the paper's missing open-loop story:
//      the closed-loop fuzzer can never over-subscribe the farm, this sweep
//      always does at 1.5x and 2x.
//
// The `WEB_FARM ratio=...` lines are machine-readable: scripts/check_web_farm.py
// parses them and compares against the committed BENCH_web_farm_baseline.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "util/assert.h"
#include "util/time.h"
#include "workloads/arrivals.h"
#include "workloads/web_farm.h"

namespace realrate {
namespace {

constexpr uint64_t kSeed = 99;
constexpr int kCpus = 4;

WebFarmParams FarmParams(int host_threads) {
  WebFarmParams params;
  params.num_cpus = kCpus;
  params.num_workers = 8;
  params.host_threads = host_threads;
  params.run_for = Duration::Millis(1000);
  return params;
}

// One offered-load ratio's stream: the same seed at every ratio, so the sweep
// varies only the rate, never the shape of the randomness.
std::vector<RequestRecord> StreamAt(double ratio) {
  WebFarmParams sizing = FarmParams(1);
  ArrivalConfig config;
  config.seed = kSeed;
  config.requests_per_sec = ratio * WebFarmCapacityRps(sizing);
  return GenerateRequests(config, sizing.run_for);
}

struct Cell {
  WebFarmResult result;
  double wall_sec = 0.0;
  bool trace_equal = false;
};

Cell Measure(double ratio) {
  const std::vector<RequestRecord> stream = StreamAt(ratio);
  Cell cell;
  cell.wall_sec = 1e30;
  uint64_t reference_hash = 0;
  // Two sequential runs (determinism across runs) plus one 4-host-thread run
  // (the parallel engine is a wall-clock optimization, never a schedule change).
  for (const int host_threads : {1, 1, 4}) {
    WebFarmParams params = FarmParams(host_threads);
    params.replay = stream;
    const auto start = std::chrono::steady_clock::now();
    const WebFarmResult result = RunWebFarmScenario(params);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (reference_hash == 0) {
      reference_hash = result.trace_hash;
      cell.result = result;
      cell.wall_sec = wall;
    } else {
      RR_CHECK(result.trace_hash == reference_hash);
      RR_CHECK(result.served == cell.result.served);
      if (host_threads == 1) {
        cell.wall_sec = std::min(cell.wall_sec, wall);
      }
    }
  }
  cell.trace_equal = true;  // The RR_CHECKs above abort on divergence.
  RR_CHECK(cell.result.served > 0);
  return cell;
}

void PrintWebFarmSweep() {
  const int host_cpus = static_cast<int>(std::thread::hardware_concurrency());
  bench::PrintHeader(
      "Open-loop web farm (4 simulated cores, 8 workers, Poisson arrivals, 1 s\n"
      "virtual) swept from 0.5x to 2x of saturation; every row's trace hash is\n"
      "RR_CHECK'd equal across re-runs and at 4 host threads");
  std::printf("  host cpus: %d\n\n", host_cpus);
  std::printf("  %6s %8s %8s %7s %9s %9s %9s %9s %7s %11s\n", "ratio", "offered",
              "served", "drops", "drop_frac", "p50_ms", "p99_ms", "p999_ms", "user",
              "trace_equal");

  bool all_equal = true;
  for (const double ratio : {0.5, 0.75, 1.0, 1.5, 2.0}) {
    const Cell cell = Measure(ratio);
    const WebFarmResult& r = cell.result;
    const int64_t drops = r.listen_drops + r.dispatch_drops;
    const double drop_frac =
        r.offered > 0 ? static_cast<double>(drops) / static_cast<double>(r.offered) : 0.0;
    all_equal = all_equal && cell.trace_equal;
    std::printf("  %6.2f %8lld %8lld %7lld %9.3f %9.2f %9.2f %9.2f %7.3f %11s\n", ratio,
                static_cast<long long>(r.offered), static_cast<long long>(r.served),
                static_cast<long long>(drops), drop_frac, r.p50_ms, r.p99_ms, r.p999_ms,
                r.aggregate_user_fraction, cell.trace_equal ? "yes" : "NO");
    // Machine-readable row for scripts/check_web_farm.py (CI gate).
    std::printf("WEB_FARM ratio=%.2f host_cpus=%d offered=%lld served=%lld "
                "listen_drops=%lld dispatch_drops=%lld drop_frac=%.4f p50_ms=%.3f "
                "p99_ms=%.3f p999_ms=%.3f user_frac=%.3f trace_hash=%llu "
                "trace_equal=%d wall_ms=%.1f\n",
                ratio, host_cpus, static_cast<long long>(r.offered),
                static_cast<long long>(r.served), static_cast<long long>(r.listen_drops),
                static_cast<long long>(r.dispatch_drops), drop_frac, r.p50_ms, r.p99_ms,
                r.p999_ms, r.aggregate_user_fraction,
                static_cast<unsigned long long>(r.trace_hash), cell.trace_equal ? 1 : 0,
                cell.wall_sec * 1e3);
  }
  RR_CHECK(all_equal);
  std::printf("\n");
}

void BM_WebFarmRoundtrip(benchmark::State& state) {
  const int host_threads = static_cast<int>(state.range(0));
  WebFarmParams params = FarmParams(host_threads);
  params.run_for = Duration::Millis(100);
  params.arrivals.seed = kSeed;
  params.arrivals.requests_per_sec = WebFarmCapacityRps(params);
  for (auto _ : state) {
    const WebFarmResult result = RunWebFarmScenario(params);
    benchmark::DoNotOptimize(result.trace_hash);
  }
  state.counters["host_threads"] = static_cast<double>(host_threads);
}
BENCHMARK(BM_WebFarmRoundtrip)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintWebFarmSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
