// Ablation A5: controller execution frequency (§4.3: "we plan to lower the overhead of
// the controller in order to run it at a higher frequency ... a more responsive system
// without affecting its stability"). Sweeps the controller interval on the Fig. 6
// pipeline and reports responsiveness against controller overhead.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"
#include "exp/system.h"
#include "workloads/misc_work.h"

namespace realrate {
namespace {

void PrintAblation() {
  bench::PrintHeader(
      "Ablation A5: controller frequency vs responsiveness and overhead\n"
      "(Fig. 6 pipeline; overhead measured with 10 controlled dummy processes)");

  std::printf("  %-14s %14s %14s %16s\n", "interval", "frequency", "response(s)",
              "overhead@10proc");
  for (int64_t ms : {5, 10, 20, 50, 100}) {
    PipelineParams params;
    params.run_for = Duration::Seconds(15);
    params.controller.interval = Duration::Millis(ms);
    const PipelineResult r = RunPipelineScenario(params);

    // Overhead with this interval: same dummy-process setup as Fig. 5.
    SystemConfig config;
    config.controller.interval = Duration::Millis(ms);
    System system(config);
    for (int i = 0; i < 10; ++i) {
      SimThread* t = system.Spawn("d" + std::to_string(i), std::make_unique<IdleWork>());
      system.controller().AddMiscellaneous(t);
    }
    system.Start();
    system.RunFor(Duration::Seconds(2));
    const double overhead =
        static_cast<double>(system.sim().cpu().Used(CpuUse::kController)) /
        static_cast<double>(system.sim().cpu().DurationToCycles(Duration::Seconds(2)));

    std::printf("  %10lld ms %11.0f Hz %14.3f %15.3f%%\n", static_cast<long long>(ms),
                1000.0 / static_cast<double>(ms), r.response_time_s, overhead * 100);
  }
  std::printf(
      "\n  higher frequency responds faster but costs proportionally more controller\n"
      "  CPU — the trade-off that motivated the paper's planned in-kernel move.\n\n");
}

// §4.3: "we have plans to move the controller into the Linux kernel in order to reduce
// this overhead" — model the in-kernel controller as 10x cheaper per invocation (no
// user/kernel crossings, no metric copies) and show the affordable frequency shift.
void PrintInKernelProjection() {
  bench::PrintHeader(
      "Ablation A5b: user-level controller vs projected in-kernel controller\n"
      "(in-kernel modeled at one tenth of the per-invocation cost)");

  std::printf("  %-14s %20s %20s\n", "frequency", "user-level overhead",
              "in-kernel overhead");
  for (int64_t ms : {10, 5, 2, 1}) {
    double overheads[2];
    for (int variant = 0; variant < 2; ++variant) {
      SystemConfig config;
      config.controller.interval = Duration::Millis(ms);
      if (variant == 1) {
        config.cpu.controller_fixed_cycles /= 10;
        config.cpu.controller_per_thread_cycles /= 10;
      }
      System system(config);
      for (int i = 0; i < 10; ++i) {
        SimThread* t = system.Spawn("d" + std::to_string(i), std::make_unique<IdleWork>());
        system.controller().AddMiscellaneous(t);
      }
      system.Start();
      system.RunFor(Duration::Seconds(2));
      overheads[variant] =
          static_cast<double>(system.sim().cpu().Used(CpuUse::kController)) /
          static_cast<double>(system.sim().cpu().DurationToCycles(Duration::Seconds(2)));
    }
    std::printf("  %9.0f Hz %19.3f%% %19.3f%%\n", 1000.0 / static_cast<double>(ms),
                overheads[0] * 100, overheads[1] * 100);
  }
  std::printf(
      "\n  in-kernel, even a 1 kHz controller costs less than the prototype's 100 Hz\n"
      "  user-level one — the responsiveness headroom the paper anticipated.\n\n");
}

void BM_ControllerInterval(benchmark::State& state) {
  const int64_t ms = state.range(0);
  for (auto _ : state) {
    PipelineParams params;
    params.run_for = Duration::Seconds(3);
    params.controller.interval = Duration::Millis(ms);
    benchmark::DoNotOptimize(RunPipelineScenario(params).trace_hash);
  }
}
BENCHMARK(BM_ControllerInterval)->Arg(5)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintAblation();
  realrate::PrintInKernelProjection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
