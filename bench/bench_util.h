// Shared output helpers for the figure-reproduction benches.
#ifndef REALRATE_BENCH_BENCH_UTIL_H_
#define REALRATE_BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "util/time_series.h"

namespace realrate::bench {

inline void PrintRule() {
  std::printf("--------------------------------------------------------------------------\n");
}

inline void PrintHeader(const char* title) {
  PrintRule();
  std::printf("%s\n", title);
  PrintRule();
}

// Prints a series resampled to `bucket`, one row per bucket.
inline void PrintSeries(const TimeSeries& series, Duration bucket, const char* unit) {
  const TimeSeries rs = series.Resample(bucket);
  std::printf("  %-22s", series.name().c_str());
  for (const auto& p : rs.points()) {
    std::printf(" %7.4g", p.value);
  }
  std::printf("  [%s]\n", unit);
}

// Prints aligned columns of several series sharing a time axis.
inline void PrintAligned(const std::vector<const TimeSeries*>& series, Duration bucket) {
  std::vector<TimeSeries> resampled;
  resampled.reserve(series.size());
  for (const TimeSeries* s : series) {
    resampled.push_back(s->Resample(bucket));
  }
  std::printf("  %8s", "time_s");
  for (const TimeSeries* s : series) {
    std::printf(" %14s", s->name().c_str());
  }
  std::printf("\n");
  if (resampled.empty() || resampled[0].empty()) {
    return;
  }
  for (const auto& p : resampled[0].points()) {
    std::printf("  %8.1f", p.t.ToSeconds());
    for (const auto& rs : resampled) {
      std::printf(" %14.4g", rs.ValueAt(p.t));
    }
    std::printf("\n");
  }
}

}  // namespace realrate::bench

#endif  // REALRATE_BENCH_BENCH_UTIL_H_
