// Ablation A7: the RBS dispatch order. The paper implements rate-monotonic ordering
// through goodness but is explicitly mechanism-agnostic ("we could equally well have
// used other RBS mechanisms such as SMaRT, Rialto, or BERT"). This bench sweeps total
// utilization for a non-harmonic two-task set and counts deadline misses under
// rate-monotonic versus earliest-deadline-first ordering — the classical separation:
// RMS is guaranteed only to the Liu-Layland bound (82.8% for two tasks), EDF to 100%.
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sched/machine.h"
#include "sched/rbs.h"
#include "sim/simulator.h"
#include "task/registry.h"
#include "workloads/misc_work.h"

namespace realrate {
namespace {

struct MissCounts {
  int64_t fast = 0;
  int64_t slow = 0;
};

MissCounts RunTaskSet(DispatchOrder order, double utilization) {
  Simulator sim;
  ThreadRegistry threads;
  RbsScheduler rbs(sim.cpu(), RbsConfig{.order = order});
  Machine machine(sim, rbs, threads,
                  MachineConfig{.dispatch_interval = Duration::Millis(1),
                                .charge_overheads = false});
  // Split the utilization ~52/48 across non-harmonic periods (10 ms and 14 ms).
  const int fast_ppt = static_cast<int>(utilization * 1000.0 * 0.52);
  const int slow_ppt = static_cast<int>(utilization * 1000.0 * 0.48);
  SimThread* fast = threads.Create("fast", std::make_unique<CpuHogWork>());
  SimThread* slow = threads.Create("slow", std::make_unique<CpuHogWork>());
  machine.Attach(fast);
  machine.Attach(slow);
  rbs.SetReservation(fast, Proportion::Ppt(fast_ppt), Duration::Millis(10), sim.Now());
  rbs.SetReservation(slow, Proportion::Ppt(slow_ppt), Duration::Millis(14), sim.Now());
  machine.Start();
  sim.RunFor(Duration::Seconds(2));
  return {fast->deadline_misses(), slow->deadline_misses()};
}

void PrintAblation() {
  bench::PrintHeader(
      "Ablation A7: RBS dispatch order — rate-monotonic vs EDF\n"
      "two tasks, periods 10 ms / 14 ms (non-harmonic), utilization swept;\n"
      "misses per 2 s (Liu-Layland 2-task bound: 82.8%)");

  std::printf("  %-12s %16s %16s %16s %16s\n", "utilization", "RM fast misses",
              "RM slow misses", "EDF fast misses", "EDF slow misses");
  for (double u : {0.70, 0.80, 0.85, 0.90, 0.95, 0.99}) {
    const MissCounts rm = RunTaskSet(DispatchOrder::kRateMonotonic, u);
    const MissCounts edf = RunTaskSet(DispatchOrder::kEarliestDeadlineFirst, u);
    std::printf("  %10.0f%% %16lld %16lld %16lld %16lld\n", u * 100,
                static_cast<long long>(rm.fast), static_cast<long long>(rm.slow),
                static_cast<long long>(edf.fast), static_cast<long long>(edf.slow));
  }
  std::printf(
      "\n  below the Liu-Layland bound both orders are clean; above it RM shortchanges\n"
      "  the longer-period task while EDF stays feasible to ~100%%. The feedback\n"
      "  controller is agnostic to this choice — it only actuates proportion/period.\n\n");
}

void BM_EdfTaskSet(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunTaskSet(DispatchOrder::kEarliestDeadlineFirst, 0.95).slow);
  }
}
BENCHMARK(BM_EdfTaskSet)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
