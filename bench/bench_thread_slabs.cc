// Thread-slab scaling: the memory layout itself, isolated from the scheduler.
// Two measurements over the structures in task/thread_slabs.h, at farm densities
// (256 / 1024 / 4096 threads):
//
//   1. Churn: Release + Bind cycles — thread exit/spawn at steady state. Exercises
//      the LIFO slot free list, the dense id→slot map, and column seeding; must stay
//      O(1) per op, independent of how many threads are live.
//   2. Hot sweep: the placement-census read (sum granted ppt of live reserved
//      threads on one core) as a slab column scan vs the same predicate chasing
//      arena-allocated SimThread objects (the AoS layout every sweep used before
//      the slabs). The ratio is the cache-locality win the SoA columns exist for:
//      a column sweep streams the bytes it reads; the AoS sweep drags whole
//      ~200-byte thread records through L2.
//
// Both sides compute the identical sum (asserted) — the ratio is layout, not work.
//
// The `SLAB_SCALE ...` line is machine-readable: scripts/check_slab_scale.py
// compares it against the committed BENCH_slab_baseline.json in CI and fails on a
// > 2x throughput regression (churn or slab sweep) at 4096 threads.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "task/thread.h"
#include "task/thread_slabs.h"
#include "util/assert.h"
#include "util/time.h"
#include "util/types.h"
#include "workloads/misc_work.h"

namespace realrate {
namespace {

constexpr int kCores = 8;

// `total` arena-allocated threads bound to slabs, laid out like the farm steady
// state: reserved policy, ppt and periods cycled, cores round-robin, a quarter
// blocked (still live — sweeps must skip by predicate, not by absence).
// alignas pins the rig's stack placement: the sweep reads the column headers
// through this object, and an unpinned frame makes measured throughput swing
// ~30% with the parity of sizeof(ThreadSlabs) — layout luck, not layout cost.
struct alignas(64) SlabRig {
  ThreadArena arena;
  ThreadSlabs slabs;
  std::vector<SimThread*> threads;

  explicit SlabRig(int total) {
    threads.reserve(static_cast<size_t>(total));
    for (int i = 0; i < total; ++i) {
      SimThread* t = arena.Create(static_cast<ThreadId>(i), "t" + std::to_string(i),
                                  std::make_unique<CpuHogWork>());
      slabs.Bind(t);
      t->set_policy(SchedPolicy::kReservation);
      t->SetReservation(Proportion::Ppt(1 + i % 4), Duration::Millis(5 + i % 28));
      t->set_cpu(static_cast<CpuId>(i % kCores));
      t->set_state(i % 4 == 3 ? ThreadState::kBlocked : ThreadState::kRunnable);
      threads.push_back(t);
    }
  }
};

// The placement-census predicate (Machine::ReservedFractionOn), on the slab columns.
int64_t SweepColumns(const ThreadSlabs& slabs, CpuId core) {
  int64_t sum = 0;
  const int32_t n = slabs.slot_count();
  for (int32_t s = 0; s < n; ++s) {
    if (slabs.state(s) != ThreadState::kExited &&
        slabs.policy(s) == SchedPolicy::kReservation && slabs.cpu(s) == core) {
      sum += slabs.granted_ppt(s);
    }
  }
  return sum;
}

// The identical predicate chasing the thread records (the pre-slab layout).
int64_t SweepObjects(const std::vector<SimThread*>& threads, CpuId core) {
  int64_t sum = 0;
  for (const SimThread* t : threads) {
    if (!t->HasExited() && t->policy() == SchedPolicy::kReservation && t->cpu() == core) {
      sum += t->proportion().ppt();
    }
  }
  return sum;
}

double MeasureSweep(bool columns, const SlabRig& rig, int64_t iterations) {
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iterations; ++i) {
    const CpuId core = static_cast<CpuId>(i % kCores);
    const int64_t sum =
        columns ? SweepColumns(rig.slabs, core) : SweepObjects(rig.threads, core);
    benchmark::DoNotOptimize(sum);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(iterations) / wall;
}

// Release + re-Bind cycles per wall-second: each iteration churns a 64-thread batch
// at a rotating offset, so slot recycling runs against a full, live slab.
double MeasureChurn(SlabRig& rig, int64_t iterations) {
  const auto n = static_cast<int64_t>(rig.threads.size());
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iterations; ++i) {
    const int64_t base = (i * 64) % n;
    for (int64_t j = 0; j < 64; ++j) {
      rig.slabs.Release(rig.threads[static_cast<size_t>((base + j) % n)]);
    }
    for (int64_t j = 0; j < 64; ++j) {
      rig.slabs.Bind(rig.threads[static_cast<size_t>((base + j) % n)]);
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(iterations * 128) / wall;
}

void PrintSlabScale() {
  bench::PrintHeader(
      "Hot sweep: placement census (reserved ppt on one core) over every thread\n"
      "slab column scan vs AoS pointer chase over arena-allocated SimThreads");
  std::printf("  %8s %18s %18s %9s\n", "threads", "slab sweep/ws", "aos sweep/ws",
              "speedup");
  double slab_sweep_4096 = 0.0;
  double aos_sweep_4096 = 0.0;
  for (int total : {256, 1024, 4096}) {
    SlabRig rig(total);
    // Identical answers on every core, or the ratio below measures a bug.
    for (CpuId core = 0; core < kCores; ++core) {
      RR_CHECK(SweepColumns(rig.slabs, core) == SweepObjects(rig.threads, core));
    }
    const int64_t iters = 4'000'000 / total;
    // Interleaved trials, per-side best: host interference only ever subtracts
    // throughput, so each side's max is its least-contaminated estimate.
    double soa = 0.0;
    double aos = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
      soa = std::max(soa, MeasureSweep(/*columns=*/true, rig, iters * 4));
      aos = std::max(aos, MeasureSweep(/*columns=*/false, rig, iters));
    }
    std::printf("  %8d %18.0f %18.0f %8.2fx\n", total, soa, aos, soa / aos);
    if (total == 4096) {
      slab_sweep_4096 = soa;
      aos_sweep_4096 = aos;
    }
  }

  bench::PrintHeader(
      "Churn: Release + Bind (thread exit/spawn), 64-thread batches\n"
      "ops/wall-second; flat across densities <=> O(1) slot recycling");
  std::printf("  %8s %18s\n", "threads", "churn ops/ws");
  double churn_4096 = 0.0;
  for (int total : {256, 1024, 4096}) {
    SlabRig rig(total);
    const double churn = MeasureChurn(rig, 20'000);
    std::printf("  %8d %18.0f\n", total, churn);
    if (total == 4096) {
      churn_4096 = churn;
    }
  }

  std::printf("\n  4096-thread sweep speedup: %.1fx\n", slab_sweep_4096 / aos_sweep_4096);
  // Machine-readable line for scripts/check_slab_scale.py (CI regression gate).
  std::printf("SLAB_SCALE threads=4096 slab_sweep_per_wsec=%.0f aos_sweep_per_wsec=%.0f "
              "sweep_speedup=%.2f churn_per_wsec=%.0f\n\n",
              slab_sweep_4096, aos_sweep_4096, slab_sweep_4096 / aos_sweep_4096,
              churn_4096);
}

void BM_SlabSweep(benchmark::State& state) {
  SlabRig rig(static_cast<int>(state.range(0)));
  CpuId core = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SweepColumns(rig.slabs, core));
    core = (core + 1) % kCores;
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SlabSweep)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kNanosecond);

void BM_AosSweep(benchmark::State& state) {
  SlabRig rig(static_cast<int>(state.range(0)));
  CpuId core = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SweepObjects(rig.threads, core));
    core = (core + 1) % kCores;
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AosSweep)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kNanosecond);

void BM_SlabChurn(benchmark::State& state) {
  SlabRig rig(static_cast<int>(state.range(0)));
  const auto n = static_cast<int64_t>(rig.threads.size());
  int64_t i = 0;
  for (auto _ : state) {
    const auto idx = static_cast<size_t>((i * 7) % n);
    rig.slabs.Release(rig.threads[idx]);
    rig.slabs.Bind(rig.threads[idx]);
    ++i;
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SlabChurn)->Arg(256)->Arg(4096)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintSlabScale();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
