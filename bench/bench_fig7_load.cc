// Figure 7: "Controller Response Under Load" — the Fig. 6 pipeline plus a CPU hog
// (miscellaneous thread). Total desired allocation exceeds capacity, so the controller
// squishes the hog and consumer; the producer's fixed reservation is untouched. The
// paper highlights the high-frequency allocation oscillation between hog and consumer.
#include <cstdlib>
#include <fstream>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"
#include "util/csv.h"

namespace realrate {
namespace {

void PrintFigure7() {
  bench::PrintHeader(
      "Figure 7: controller response under competing load (CPU hog)\n"
      "graphs: consumer/producer allocation, hog allocation (ppt), production rate\n"
      "(bytes/Kcycle), queue fill level");

  PipelineParams params;
  params.with_hog = true;
  const PipelineResult r = RunPipelineScenario(params);

  bench::PrintAligned({&r.consumer_alloc_ppt, &r.producer_alloc_ppt, &r.hog_alloc_ppt,
                       &r.production_bytes_per_kcycle, &r.fill_level},
                      Duration::Seconds(1));

  // Optional plotting output: REALRATE_CSV_DIR=/tmp ./bench_fig7_load
  if (const char* dir = std::getenv("REALRATE_CSV_DIR")) {
    const std::string path = std::string(dir) + "/fig7.csv";
    std::ofstream out(path);
    if (out) {
      WriteAlignedSeries(out, {&r.consumer_alloc_ppt, &r.producer_alloc_ppt,
                               &r.hog_alloc_ppt, &r.production_bytes_per_kcycle,
                               &r.fill_level});
      std::printf("\n  full-resolution series written to %s\n", path.c_str());
    }
  }

  std::printf("\n  squish events: %lld (every controller tick under overload)\n",
              static_cast<long long>(r.squish_events));
  std::printf("  producer allocation pinned at 50 ppt (reservation, never squished): %s\n",
              r.producer_alloc_ppt.Stats().min() == 50 && r.producer_alloc_ppt.Stats().max() == 50
                  ? "yes"
                  : "NO");

  // The hog<->consumer oscillation the paper calls out: allocation stddev over the
  // steady tail.
  RunningStats hog_tail;
  for (const auto& p : r.hog_alloc_ppt.points()) {
    if (p.t >= TimePoint::FromNanos(30'000'000'000)) {
      hog_tail.Add(p.value);
    }
  }
  std::printf("  hog allocation over [30s,45s): mean %.0f ppt, stddev %.1f ppt "
              "(oscillation vs consumer)\n",
              hog_tail.mean(), hog_tail.stddev());
  std::printf("  consumer still tracks the producer: response time %.3f s\n\n",
              r.response_time_s);
}

void BM_Fig7Scenario(benchmark::State& state) {
  for (auto _ : state) {
    PipelineParams params;
    params.with_hog = true;
    params.run_for = Duration::Seconds(5);
    const PipelineResult r = RunPipelineScenario(params);
    benchmark::DoNotOptimize(r.trace_hash);
  }
}
BENCHMARK(BM_Fig7Scenario)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintFigure7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
