// Control-plane scaling: the controller's staged Sample→Estimate→Resolve→Actuate
// pipeline (core/controller.h) against the reference build (RunOnceReference — the
// original monolithic sweep with O(cores·n) budget scans, full linkage sweeps, and
// full-window evidence rescans every tick). Not a paper figure — the paper's machine
// controls tens of threads — but the ROADMAP's production-scale demand: PR 4 made
// *dispatch* scale to thousands of threads, which left the 100 Hz controller as the
// hot path at farm scale. Both builds compute the *identical* control decisions (the
// grants-equality column below, the golden farm mode-equivalence test, and the fuzz
// battery's per-tick shadow + whole-run trace-equality oracles hold them bit-equal),
// so every ratio is pure control-plane cost, not behavior drift.
//
// Two measurements:
//   1. Control primitive: RunOnce throughput on an 8-core rig with 256/1024/4096
//      controlled threads spanning all five paper classes, queues in steady state
//      (the farm's common case: most ticks find most queues unmoved, which is
//      exactly what the dirty-set sampler exploits). This is the >= 5x headline
//      number, and the regression gate CI checks against
//      BENCH_controller_baseline.json.
//   2. Grants equality: twin rigs run the same tick count under each mode, then
//      every thread's actuated proportion/period and the controller counters are
//      compared — the bench re-verifies the bit-equality claim it benchmarks.
//
// The `CONTROLLER_SCALE ...` line is machine-readable: scripts/check_controller_scale.py
// compares it against the committed BENCH_controller_baseline.json in CI and fails
// on a > 2x throughput regression, a speedup below the pinned 5x bar, or any
// grants-inequality — the sanitizer matrix runs the equality check alone.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/system.h"
#include "util/assert.h"
#include "workloads/misc_work.h"

namespace realrate {
namespace {

// An 8-core machine with `total` controlled threads: 50% real-rate (one registered
// queue each, held near half full), 20% miscellaneous, 15% real-time and 10%
// aperiodic real-time (1 ppt reservations, spread periods), 5% interactive. The
// machine is not ticked — the rig isolates RunOnce cost, like the Fig. 5 overhead
// bench — so queues sit in the steady state between controller ticks.
struct ControllerRig {
  std::unique_ptr<System> system;
  int64_t ticks_run = 0;

  explicit ControllerRig(bool use_pipeline, int total) {
    SystemConfig config;
    config.num_cpus = 8;
    config.start_controller = false;
    config.controller.use_pipeline = use_pipeline;
    // Isolate the controller's own arithmetic: no overhead charge-back into the
    // (idle) machine.
    config.controller.charge_overhead = false;
    system = std::make_unique<System>(config);
    for (int i = 0; i < total; ++i) {
      SimThread* t =
          system->Spawn("t" + std::to_string(i), std::make_unique<CpuHogWork>());
      switch (i % 20) {
        case 0: case 1: case 2:  // 15% real-time.
          RR_CHECK(system->controller().AddRealTime(t, Proportion::Ppt(1),
                                                    Duration::Millis(5 + i % 28)));
          break;
        case 3: case 4:  // 10% aperiodic real-time.
          RR_CHECK(system->controller().AddAperiodicRealTime(t, Proportion::Ppt(1)));
          break;
        case 5:  // 5% interactive.
          system->controller().AddInteractive(t);
          break;
        case 6: case 7: case 8: case 9:  // 20% miscellaneous.
          system->controller().AddMiscellaneous(t);
          break;
        default: {  // 50% real-rate, one half-full queue each.
          BoundedBuffer* q = system->CreateQueue("q" + std::to_string(i), 1'000);
          RR_CHECK(q->TryPush(500));
          system->queues().Register(q, t->id(), QueueRole::kConsumer);
          system->controller().AddRealRate(t);
          break;
        }
      }
    }
  }

  // One controller iteration at the next 10 ms grid point (virtual time does not
  // otherwise advance: the rig measures the controller, not the machine).
  void Tick() {
    ++ticks_run;
    system->controller().RunOnce(TimePoint::Origin() +
                                 Duration::Millis(10 * ticks_run));
  }
};

// RunOnce calls per wall-second, measured over a fixed wall budget after a warmup
// that fills the quality windows and settles the estimators (so the reference pays
// its steady-state full-window rescan, not a cheap growing one).
double MeasureRunOnceThroughput(bool use_pipeline, int total, double budget_s) {
  ControllerRig rig(use_pipeline, total);
  for (int i = 0; i < 300; ++i) {
    rig.Tick();
  }
  int64_t iterations = 0;
  const auto start = std::chrono::steady_clock::now();
  double wall = 0.0;
  do {
    for (int i = 0; i < 10; ++i) {
      rig.Tick();
    }
    iterations += 10;
    wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  } while (wall < budget_s);
  return static_cast<double>(iterations) / wall;
}

// Twin rigs, identical tick counts, both modes: every actuated grant, period, and
// controller counter must agree bit-for-bit.
bool GrantsEqualAfter(int total, int ticks) {
  ControllerRig pipeline(/*use_pipeline=*/true, total);
  ControllerRig reference(/*use_pipeline=*/false, total);
  for (int i = 0; i < ticks; ++i) {
    pipeline.Tick();
    reference.Tick();
  }
  FeedbackAllocator& p = pipeline.system->controller();
  FeedbackAllocator& r = reference.system->controller();
  if (p.squish_events() != r.squish_events() ||
      p.quality_exceptions() != r.quality_exceptions()) {
    return false;
  }
  const auto& threads = pipeline.system->threads().All();
  const auto& ref_threads = reference.system->threads().All();
  for (size_t i = 0; i < threads.size(); ++i) {
    const ThreadId id = threads[i]->id();
    if (threads[i]->proportion() != ref_threads[i]->proportion() ||
        threads[i]->period() != ref_threads[i]->period() ||
        p.GrantedFraction(id) != r.GrantedFraction(id) ||
        p.DesiredFraction(id) != r.DesiredFraction(id)) {
      return false;
    }
  }
  return true;
}

// `equality_only` (the sanitizer-matrix CI gate) skips the wall-clock throughput
// measurement — meaningless under ASan and expensive in the reference mode — and
// runs just the twin-rig grants comparison.
void PrintControllerScale(bool equality_only) {
  bench::PrintHeader(
      "Control plane: RunOnce throughput, 8-core rig, all five thread classes\n"
      "staged pipeline (ledger + dirty-set + O(1) evidence) vs reference sweep");
  std::printf("  %8s %18s %18s %9s %13s\n", "threads", "pipeline run/ws",
              "reference run/ws", "speedup", "grants equal");
  double speedup_4096 = 0.0;
  double pipeline_4096 = 0.0;
  double reference_4096 = 0.0;
  bool all_equal = true;
  for (const int total : {256, 1024, 4096}) {
    const double pipeline =
        equality_only ? 0.0 : MeasureRunOnceThroughput(true, total, /*budget_s=*/0.3);
    const double reference =
        equality_only ? 0.0 : MeasureRunOnceThroughput(false, total, /*budget_s=*/0.3);
    const bool equal = GrantsEqualAfter(total, /*ticks=*/350);
    all_equal = all_equal && equal;
    std::printf("  %8d %18.0f %18.0f %8.2fx %13s\n", total, pipeline, reference,
                reference > 0 ? pipeline / reference : 0.0, equal ? "yes" : "NO!");
    if (total == 4096) {
      speedup_4096 = reference > 0 ? pipeline / reference : 0.0;
      pipeline_4096 = pipeline;
      reference_4096 = reference;
    }
  }
  std::printf("\n  4096-thread RunOnce speedup: %.1fx\n", speedup_4096);
  // Machine-readable line for scripts/check_controller_scale.py (CI gate).
  std::printf("CONTROLLER_SCALE threads=4096 pipeline_runonce_per_wsec=%.0f "
              "reference_runonce_per_wsec=%.0f speedup=%.2f grants_equal=%d\n\n",
              pipeline_4096, reference_4096, speedup_4096, all_equal ? 1 : 0);
}

template <bool kPipeline>
void BM_ControllerRunOnce(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  ControllerRig rig(kPipeline, total);
  for (int i = 0; i < 300; ++i) {
    rig.Tick();
  }
  for (auto _ : state) {
    rig.Tick();
    benchmark::DoNotOptimize(rig.ticks_run);
  }
  state.counters["threads"] = total;
}
void BM_RunOncePipeline(benchmark::State& state) { BM_ControllerRunOnce<true>(state); }
void BM_RunOnceReference(benchmark::State& state) { BM_ControllerRunOnce<false>(state); }
BENCHMARK(BM_RunOncePipeline)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RunOnceReference)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  bool equality_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--equality-only") {
      equality_only = true;
      // Strip the flag so google-benchmark's Initialize doesn't reject it.
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  realrate::PrintControllerScale(equality_only);
  if (equality_only) {
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
