// Ablation A2: squish policy — plain fair share vs importance-weighted fair share.
// The paper: "importance determines the likelihood that a thread will get its desired
// allocation ... a more-important job cannot starve a less important job."
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/overload.h"
#include "exp/scenarios.h"

namespace realrate {
namespace {

void PrintClosedLoop() {
  bench::PrintHeader(
      "Ablation A2 (closed loop): two CPU hogs under the feedback allocator,\n"
      "importance ratio swept; the lesser hog must never starve");

  std::printf("  %-18s %14s %14s %14s %10s\n", "importance ratio", "favored cpu",
              "lesser cpu", "share ratio", "starved?");
  for (double ratio : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const StarvationResult r =
        RunStarvationScenario(SchedulerKind::kFeedbackRbs, ratio, Duration::Seconds(8));
    std::printf("  %-18.0f %13.1f%% %13.1f%% %14.2f %10s\n", ratio, r.favored_cpu * 100,
                r.lesser_cpu * 100, r.favored_cpu / r.lesser_cpu,
                r.lesser_starved ? "YES" : "no");
  }
  std::printf(
      "\n  the closed-loop share ratio exceeds the raw importance ratio because the\n"
      "  per-interval reductions compound; the floor still guarantees progress.\n\n");
}

void PrintOpenLoop() {
  bench::PrintHeader(
      "Ablation A2 (policy only): Squish() on three threads each desiring 90% of the\n"
      "CPU into 0.9 available, sweeping thread A's importance");

  std::printf("  %-14s %10s %10s %10s %12s\n", "A importance", "A grant", "B grant",
              "C grant", "sum");
  for (double w : {1.0, 2.0, 4.0, 8.0}) {
    const auto grants = Squish(
        {{0, 0.9, w, 0.005}, {1, 0.9, 1.0, 0.005}, {2, 0.9, 1.0, 0.005}}, 0.9);
    std::printf("  %-14.0f %10.3f %10.3f %10.3f %12.4f\n", w, grants[0].granted,
                grants[1].granted, grants[2].granted,
                grants[0].granted + grants[1].granted + grants[2].granted);
  }
  std::printf(
      "\n  w = 1 is the paper's plain proportional squish (equal shares); larger w\n"
      "  shifts share toward A while B and C keep non-zero floors.\n\n");
}

void BM_Squish64(benchmark::State& state) {
  std::vector<SquishRequest> requests;
  for (int i = 0; i < 64; ++i) {
    requests.push_back({i, 0.5 + (i % 5) * 0.08, 1.0 + (i % 3), 0.005});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Squish(requests, 0.9));
  }
}
BENCHMARK(BM_Squish64);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintClosedLoop();
  realrate::PrintOpenLoop();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
