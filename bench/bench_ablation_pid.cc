// Ablation A1: PID gain sensitivity. The paper (§3.3) uses a PID control law over the
// summed progress pressures; §4.3 notes responsiveness/stability trade-offs. This bench
// sweeps gain settings on the Fig. 6 pipeline and reports response time, steady-state
// fill deviation, and allocation jitter.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exp/scenarios.h"

namespace realrate {
namespace {

struct GainSetting {
  const char* name;
  double kp;
  double ki;
  double kd;
};

void PrintAblation() {
  bench::PrintHeader(
      "Ablation A1: PID gains on the Fig. 6 pipeline\n"
      "response = time to 90% of doubled rate; alloc stddev = allocation jitter (ppt)\n"
      "over the steady tail; fill dev = |fill - 1/2| before the first pulse");

  const GainSetting settings[] = {
      {"P only (no integral)", 0.3, 0.0, 0.0},
      {"PI low gain", 0.1, 0.5, 0.0},
      {"PI default", 0.3, 2.0, 0.0},
      {"PI hot", 0.6, 6.0, 0.0},
      {"PID (kd=0.02)", 0.3, 2.0, 0.02},
  };

  std::printf("  %-22s %12s %12s %12s %12s %10s\n", "gains", "response(s)", "settle(s)",
              "fill dev", "alloc sd", "quality");
  for (const GainSetting& g : settings) {
    PipelineParams params;
    params.run_for = Duration::Seconds(20);
    params.controller.estimator.gains.kp = g.kp;
    params.controller.estimator.gains.ki = g.ki;
    params.controller.estimator.gains.kd = g.kd;
    const PipelineResult r = RunPipelineScenario(params);

    RunningStats alloc_tail;
    for (const auto& p : r.consumer_alloc_ppt.points()) {
      if (p.t >= TimePoint::FromNanos(15'000'000'000)) {
        alloc_tail.Add(p.value);
      }
    }
    std::printf("  %-22s %12.3f %12.3f %12.3f %12.1f %10lld\n", g.name, r.response_time_s,
                r.settle_time_s, r.fill_deviation, alloc_tail.stddev(),
                static_cast<long long>(r.quality_exceptions));
  }
  std::printf(
      "\n  P-only never converges the fill level (no integral action to hold the\n"
      "  allocation); hotter gains respond faster at the cost of allocation jitter.\n\n");
}

void BM_PidStep(benchmark::State& state) {
  swift::PidController pid(swift::PidGains{.kp = 0.3, .ki = 2.0, .kd = 0.02,
                                           .derivative_filter_tau = 0.05});
  double e = 0.25;
  for (auto _ : state) {
    e = -e;
    benchmark::DoNotOptimize(pid.Step(e, 0.01));
  }
}
BENCHMARK(BM_PidStep);

}  // namespace
}  // namespace realrate

int main(int argc, char** argv) {
  realrate::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
