#!/usr/bin/env python3
"""CI regression gate for the controller's control-plane pipeline.

Runs bench_controller_scale, parses its machine-readable `CONTROLLER_SCALE ...`
line, and fails when any of:
  - the pipeline and reference sweeps disagreed on any grant/period/counter
    (grants_equal != 1) — a correctness failure, checked in every matrix;
  - pipeline RunOnce throughput at 4096 controlled threads fell more than 2x
    below the committed baseline (BENCH_controller_baseline.json); or
  - the pipeline-vs-reference RunOnce speedup at 4096 threads dropped below the
    5x bar the optimization is pinned to.

The perf thresholds only mean anything on an optimized build, so the sanitizer
matrix runs with --equality-only (grants equality alone). The 2x tolerance
absorbs CI-runner speed variance; a real algorithmic regression (the pipeline
degenerating back to per-tick sweeps) overshoots it by an order of magnitude.
Refresh the baseline with:
  scripts/check_controller_scale.py BUILD_DIR --write-baseline
"""
import json
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_controller_baseline.json"
MIN_SPEEDUP = 5.0
MAX_REGRESSION = 2.0


def run_bench(build_dir: pathlib.Path, equality_only: bool) -> dict:
    bench = build_dir / "bench" / "bench_controller_scale"
    if not bench.exists():
        sys.exit(f"error: {bench} not found — build bench_controller_scale first")
    # Equality-only skips the timed throughput sections inside the bench itself:
    # under ASan/UBSan they are minutes of wall time producing numbers this mode
    # never reads.
    cmd = [str(bench)]
    cmd += ["--equality-only"] if equality_only else ["--benchmark_min_time=0.01s"]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True).stdout
    match = re.search(r"^CONTROLLER_SCALE (.*)$", out, re.M)
    if not match:
        sys.exit("error: bench output has no CONTROLLER_SCALE line")
    fields = dict(kv.split("=", 1) for kv in match.group(1).split())
    return {k: float(v) for k, v in fields.items()}


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    build_dir = pathlib.Path(args[0]) if args else REPO / "build"
    measured = run_bench(build_dir, equality_only="--equality-only" in sys.argv)

    failures = []
    if measured["grants_equal"] != 1:
        failures.append("grants_equal != 1: pipeline and RunOnceReference diverged")

    if "--write-baseline" in sys.argv:
        if failures:
            sys.exit(f"refusing to write baseline: {failures[0]}")
        BASELINE.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
        print(f"[check_controller_scale] wrote {BASELINE}")
        return 0

    if "--equality-only" not in sys.argv:
        baseline = json.loads(BASELINE.read_text())
        key = "pipeline_runonce_per_wsec"
        floor = baseline[key] / MAX_REGRESSION
        if measured[key] < floor:
            failures.append(
                f"{key} = {measured[key]:.0f} is more than {MAX_REGRESSION}x below the "
                f"baseline {baseline[key]:.0f} (floor {floor:.0f})")
        if measured["speedup"] < MIN_SPEEDUP:
            failures.append(
                f"speedup = {measured['speedup']:.2f}x at 4096 threads is below the "
                f"pinned {MIN_SPEEDUP}x bar")
        print(f"[check_controller_scale] baseline: {baseline}")

    print(f"[check_controller_scale] measured: {measured}")
    if failures:
        for failure in failures:
            print(f"[check_controller_scale] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[check_controller_scale] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
