#!/usr/bin/env python3
"""Fails on dead relative links in the repository's Markdown files.

Scans every *.md outside build directories for inline links/images
([text](target)), resolves relative targets against the containing file, and
reports targets that do not exist. External schemes (http/https/mailto) and
pure in-page anchors (#...) are ignored; a #fragment on a relative target is
stripped before the existence check.

Usage: scripts/check_links.py [repo_root]
"""
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", "third_party"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    dead = []
    checked = 0
    for md in markdown_files(root):
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(md), path))
            checked += 1
            if not os.path.exists(resolved):
                dead.append((os.path.relpath(md, root), target))
    if dead:
        print(f"check_links: {len(dead)} dead relative link(s):")
        for md, target in dead:
            print(f"  {md}: {target}")
        return 1
    print(f"check_links: OK ({checked} relative links resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
