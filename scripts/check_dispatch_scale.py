#!/usr/bin/env python3
"""CI regression gate for the dispatch hot path.

Runs bench_dispatch_scale, parses its machine-readable `DISPATCH_SCALE ...` line,
and fails when either:
  - indexed PickNext throughput at 1024 threads fell more than 2x below the
    committed baseline (BENCH_dispatch_baseline.json), or
  - the indexed-vs-reference PickNext speedup at 1024 threads dropped below the
    5x bar the optimization is pinned to.

The 2x tolerance absorbs CI-runner speed variance; a real algorithmic regression
(the indexed pick degenerating back to a scan) overshoots it by orders of
magnitude. Refresh the baseline with:
  scripts/check_dispatch_scale.py BUILD_DIR --write-baseline
"""
import json
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_dispatch_baseline.json"
MIN_SPEEDUP = 5.0
MAX_REGRESSION = 2.0


def run_bench(build_dir: pathlib.Path) -> dict:
    bench = build_dir / "bench" / "bench_dispatch_scale"
    if not bench.exists():
        sys.exit(f"error: {bench} not found — build bench_dispatch_scale first")
    out = subprocess.run([str(bench), "--benchmark_min_time=0.01s"],
                         check=True, capture_output=True, text=True).stdout
    match = re.search(r"^DISPATCH_SCALE (.*)$", out, re.M)
    if not match:
        sys.exit("error: bench output has no DISPATCH_SCALE line")
    fields = dict(kv.split("=", 1) for kv in match.group(1).split())
    return {k: float(v) for k, v in fields.items()}


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    build_dir = pathlib.Path(args[0]) if args else REPO / "build"
    measured = run_bench(build_dir)

    if "--write-baseline" in sys.argv:
        BASELINE.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
        print(f"[check_dispatch_scale] wrote {BASELINE}")
        return 0

    baseline = json.loads(BASELINE.read_text())
    failures = []
    key = "pick_indexed_per_wsec"
    floor = baseline[key] / MAX_REGRESSION
    if measured[key] < floor:
        failures.append(
            f"{key} = {measured[key]:.0f} is more than {MAX_REGRESSION}x below the "
            f"baseline {baseline[key]:.0f} (floor {floor:.0f})")
    if measured["pick_speedup"] < MIN_SPEEDUP:
        failures.append(
            f"pick_speedup = {measured['pick_speedup']:.2f}x at 1024 threads is below "
            f"the pinned {MIN_SPEEDUP}x bar")

    print(f"[check_dispatch_scale] measured: {measured}")
    print(f"[check_dispatch_scale] baseline: {baseline}")
    if failures:
        for failure in failures:
            print(f"[check_dispatch_scale] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[check_dispatch_scale] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
