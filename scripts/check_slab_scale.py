#!/usr/bin/env python3
"""CI regression gate for the thread-state slab layout.

Runs bench_thread_slabs, parses its machine-readable `SLAB_SCALE ...` line, and
fails when either:
  - the slab column sweep or the bind/release churn throughput at 4096 threads
    fell more than 2x below the committed baseline (BENCH_slab_baseline.json), or
  - the slab-vs-AoS sweep speedup dropped below 1.05x — the column layout must
    stay strictly cheaper to sweep than pointer-chasing thread records, on any
    host; a drop below that bar means the slab sweep regressed to per-record
    loads (or the mirror write-through got hot enough to poison the columns).

The 2x tolerance absorbs CI-runner speed variance; a real layout regression
(the sweep degenerating to the AoS pattern) lands at 1.0x and trips the
speedup bar regardless of host speed. Refresh the baseline with:
  scripts/check_slab_scale.py BUILD_DIR --write-baseline
"""
import json
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_slab_baseline.json"
MIN_SWEEP_SPEEDUP = 1.05
MAX_REGRESSION = 2.0


def run_bench(build_dir: pathlib.Path) -> dict:
    bench = build_dir / "bench" / "bench_thread_slabs"
    if not bench.exists():
        sys.exit(f"error: {bench} not found — build bench_thread_slabs first")
    out = subprocess.run([str(bench), "--benchmark_min_time=0.01s"],
                         check=True, capture_output=True, text=True).stdout
    match = re.search(r"^SLAB_SCALE (.*)$", out, re.M)
    if not match:
        sys.exit("error: bench output has no SLAB_SCALE line")
    fields = dict(kv.split("=", 1) for kv in match.group(1).split())
    return {k: float(v) for k, v in fields.items()}


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    build_dir = pathlib.Path(args[0]) if args else REPO / "build"
    measured = run_bench(build_dir)

    if "--write-baseline" in sys.argv:
        BASELINE.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
        print(f"[check_slab_scale] wrote {BASELINE}")
        return 0

    baseline = json.loads(BASELINE.read_text())
    failures = []
    for key in ("slab_sweep_per_wsec", "churn_per_wsec"):
        floor = baseline[key] / MAX_REGRESSION
        if measured[key] < floor:
            failures.append(
                f"{key} = {measured[key]:.0f} is more than {MAX_REGRESSION}x below "
                f"the baseline {baseline[key]:.0f} (floor {floor:.0f})")
    if measured["sweep_speedup"] < MIN_SWEEP_SPEEDUP:
        failures.append(
            f"sweep_speedup = {measured['sweep_speedup']:.2f}x at 4096 threads is "
            f"below the pinned {MIN_SWEEP_SPEEDUP}x bar")

    print(f"[check_slab_scale] measured: {measured}")
    print(f"[check_slab_scale] baseline: {baseline}")
    if failures:
        for failure in failures:
            print(f"[check_slab_scale] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[check_slab_scale] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
