#!/usr/bin/env python3
"""CI gate for the cluster scale-out sweep.

Runs bench_cluster, parses its machine-readable `CLUSTER machines=...` rows
(one per cluster width) and the `CLUSTER_SMOKE ...` line, and fails when any
of:
  - trace_equal != 1 on any row — a re-run or the 4-host-thread run diverged
    from the reference per-machine trace hashes. Gated UNCONDITIONALLY:
    determinism does not depend on how many CPUs the runner has. (The bench
    RR_CHECKs this too; the gate catches a build where asserts are compiled
    out.)
  - m1_equal_bare != 1 — the degenerate M=1 cluster diverged from a bare
    machine running the identical farm, breaking the layer's identity pin.
  - a row served nothing, or its percentile columns are out of order.
  - the sweep lost its scale-out shape: served requests must strictly grow
    with machines, reach at least 8x the M=1 goodput at M=16 (the offered
    stream scales with M, so flat goodput means the router or the nodes
    stopped absorbing it), and the feedback router's load-imbalance ratio must
    stay under 1.5 on every multi-machine row.
  - the ~2M-thread configuration smoke is missing, shrank below 2M simulated
    threads, or injected nothing.
  - a row's cluster hash differs from the committed baseline — the cluster
    schedule itself changed. Compared only when the baseline file exists,
    skipped (with an explicit SKIP) under --equality-only.
  - sweep wall time regressed more than MAX_REGRESSION over the baseline,
    gated ONLY when the host has >= 4 CPUs (explicit SKIP otherwise).

With --equality-only the baseline and wall-time comparisons are skipped and
the configuration smoke is not run at all (REALRATE_CLUSTER_SMOKE=0): the
sanitizer legs run this, where instrumentation multiplies the smoke's ~5 GB
footprint without adding coverage the sweep rows don't already have.

Refresh the baseline with:
  scripts/check_cluster_scale.py BUILD_DIR --write-baseline
"""
import json
import os
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_cluster_baseline.json"
MAX_REGRESSION = 2.0  # Wall-time keys may drift up to 2x across runner speeds.
SMOKE_MIN_THREADS = 2_000_000


def parse_fields(text: str) -> dict:
    fields = dict(kv.split("=", 1) for kv in text.split())
    # Hashes are full 64-bit values: a float would silently drop the low 11
    # bits and weaken the baseline pin to hash-prefix equality.
    return {k: (int(v) if k == "cluster_hash" else float(v))
            for k, v in fields.items()}


def run_bench(build_dir: pathlib.Path, smoke: bool) -> tuple[list[dict], dict | None]:
    bench = build_dir / "bench" / "bench_cluster"
    if not bench.exists():
        sys.exit(f"error: {bench} not found — build bench_cluster first")
    env = dict(os.environ)
    if not smoke:
        env["REALRATE_CLUSTER_SMOKE"] = "0"
    out = subprocess.run([str(bench), "--benchmark_min_time=0.01s"],
                         check=True, capture_output=True, text=True, env=env).stdout
    rows = [parse_fields(m.group(1)) for m in re.finditer(r"^CLUSTER (.*)$", out, re.M)]
    if not rows:
        sys.exit("error: bench output has no CLUSTER lines")
    smoke_row = None
    match = re.search(r"^CLUSTER_SMOKE (.*)$", out, re.M)
    if match and "skipped" not in match.group(1):
        smoke_row = parse_fields(match.group(1))
    return rows, smoke_row


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    build_dir = pathlib.Path(args[0]) if args else REPO / "build"
    equality_only = "--equality-only" in sys.argv
    rows, smoke = run_bench(build_dir, smoke=not equality_only)
    for row in rows:
        print(f"[check_cluster_scale] measured: {row}")
    if smoke is not None:
        print(f"[check_cluster_scale] smoke: {smoke}")

    failures = []
    for row in rows:
        machines = int(row["machines"])
        if row["trace_equal"] != 1:
            failures.append(f"M={machines}: trace_equal != 1 — a re-run or the "
                            "4-host-thread run diverged from the reference trace")
        if row["m1_equal_bare"] != 1:
            failures.append(f"M={machines}: the degenerate cluster diverged from "
                            "the bare machine (m1_equal_bare != 1)")
        if row["served"] <= 0:
            failures.append(f"M={machines}: served nothing")
        if row["p50_ms"] > row["p99_ms"]:
            failures.append(f"M={machines}: percentiles out of order "
                            f"(p50={row['p50_ms']} p99={row['p99_ms']})")
        if machines > 1 and row["imbalance"] > 1.5:
            failures.append(f"M={machines}: load imbalance {row['imbalance']} > 1.5 "
                            "— the feedback router stopped levelling the farm")

    by_m = {int(row["machines"]): row for row in rows}
    if sorted(by_m) != [1, 4, 16]:
        failures.append(f"expected M=1/4/16 rows, got {sorted(by_m)}")
    else:
        if not by_m[1]["served"] < by_m[4]["served"] < by_m[16]["served"]:
            failures.append(
                "goodput did not grow with machines: served "
                f"{by_m[1]['served']:.0f} / {by_m[4]['served']:.0f} / "
                f"{by_m[16]['served']:.0f} at M=1/4/16")
        if by_m[16]["served"] < 8 * by_m[1]["served"]:
            failures.append(
                f"scale-out collapsed: M=16 served {by_m[16]['served']:.0f} < 8x "
                f"the M=1 goodput {by_m[1]['served']:.0f}")

    if equality_only:
        print("[check_cluster_scale] SKIP: configuration smoke (--equality-only)")
    elif smoke is None:
        failures.append("no CLUSTER_SMOKE line — the configuration smoke vanished")
    else:
        if smoke["total_threads"] < SMOKE_MIN_THREADS:
            failures.append(f"configuration smoke shrank to "
                            f"{smoke['total_threads']:.0f} simulated threads "
                            f"(< {SMOKE_MIN_THREADS})")
        if smoke["injected"] <= 0:
            failures.append("configuration smoke injected nothing")

    if "--write-baseline" in sys.argv:
        if failures:
            for failure in failures:
                print(f"[check_cluster_scale] FAIL: {failure}", file=sys.stderr)
            return 1
        BASELINE.write_text(json.dumps({"sweep": rows, "smoke": smoke},
                                       indent=2, sort_keys=True) + "\n")
        print(f"[check_cluster_scale] wrote {BASELINE}")
        return 0

    if equality_only:
        print("[check_cluster_scale] SKIP: baseline and wall-time gates "
              "(--equality-only)")
    else:
        if BASELINE.exists():
            baseline = json.loads(BASELINE.read_text())
            pinned_sweep = {int(row["machines"]): row for row in baseline["sweep"]}
            for machines, row in sorted(by_m.items()):
                pinned = pinned_sweep.get(machines)
                if pinned is None:
                    failures.append(f"M={machines} missing from the baseline — "
                                    "refresh with --write-baseline")
                elif row["cluster_hash"] != pinned["cluster_hash"]:
                    failures.append(
                        f"M={machines}: cluster hash {row['cluster_hash']} != "
                        f"baseline {pinned['cluster_hash']} — the cluster schedule "
                        "changed (refresh the baseline if intended)")
            if smoke is not None and baseline.get("smoke") is not None:
                if smoke["cluster_hash"] != baseline["smoke"]["cluster_hash"]:
                    failures.append(
                        f"smoke: cluster hash {smoke['cluster_hash']} != baseline "
                        f"{baseline['smoke']['cluster_hash']} — the 2M-thread "
                        "schedule changed (refresh the baseline if intended)")
        host_cpus = int(rows[0]["host_cpus"])
        if host_cpus >= 4:
            if BASELINE.exists():
                baseline = json.loads(BASELINE.read_text())
                baseline_wall = sum(r["wall_ms"] for r in baseline["sweep"])
                measured_wall = sum(r["wall_ms"] for r in rows)
                if measured_wall > baseline_wall * MAX_REGRESSION:
                    failures.append(
                        f"sweep wall time {measured_wall:.1f} ms is more than "
                        f"{MAX_REGRESSION}x above the baseline {baseline_wall:.1f} ms")
        else:
            print(f"[check_cluster_scale] SKIP: wall-time gate (host has {host_cpus} "
                  "CPUs < 4); determinism and shape gates still bind")

    if failures:
        for failure in failures:
            print(f"[check_cluster_scale] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[check_cluster_scale] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
