#!/usr/bin/env python3
"""CI gate for the parallel dispatch engine.

Runs bench_parallel_engine, parses its machine-readable `PARALLEL_SCALE ...`
line, and fails when either:
  - trace_equal != 1 — the 2- and 4-host-thread farm runs did not reproduce the
    single-threaded reference trace bit for bit. This is gated UNCONDITIONALLY:
    determinism does not depend on how many CPUs the runner has. (The bench also
    RR_CHECKs this internally, so a divergence usually aborts before we get here;
    the gate catches a build where asserts are compiled out.)
  - the 4-host-thread end-to-end speedup at 512 threads/core fell below the bar,
    gated ONLY when the host actually has >= 4 CPUs — on starved runners the
    extra host threads just time-slice one core and the column is noise.

With --equality-only the speedup and baseline comparisons are skipped entirely
(the sanitizer legs run this: TSan serializes everything, so wall time is
meaningless there, but trace equality must still hold).

Refresh the baseline with:
  scripts/check_parallel_scale.py BUILD_DIR --write-baseline
"""
import json
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_parallel_baseline.json"
MIN_SPEEDUP_HT4 = 1.5   # The acceptance bar: >= 1.5x farm e2e at 4 host threads.
MAX_REGRESSION = 2.0    # Wall-time keys may drift up to 2x across runner speeds.


def run_bench(build_dir: pathlib.Path) -> dict:
    bench = build_dir / "bench" / "bench_parallel_engine"
    if not bench.exists():
        sys.exit(f"error: {bench} not found — build bench_parallel_engine first")
    out = subprocess.run([str(bench), "--benchmark_min_time=0.01s"],
                         check=True, capture_output=True, text=True).stdout
    match = re.search(r"^PARALLEL_SCALE (.*)$", out, re.M)
    if not match:
        sys.exit("error: bench output has no PARALLEL_SCALE line")
    fields = dict(kv.split("=", 1) for kv in match.group(1).split())
    return {k: float(v) for k, v in fields.items()}


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    build_dir = pathlib.Path(args[0]) if args else REPO / "build"
    measured = run_bench(build_dir)
    print(f"[check_parallel_scale] measured: {measured}")

    failures = []
    if measured["trace_equal"] != 1:
        failures.append("trace_equal != 1: parallel runs diverged from the "
                        "single-threaded reference trace")
    if measured["parallel_rounds"] <= 0:
        failures.append("parallel_rounds == 0: the engine never fanned a round out "
                        "(gate regression? the equality above would be vacuous)")

    if "--write-baseline" in sys.argv:
        if failures:
            for failure in failures:
                print(f"[check_parallel_scale] FAIL: {failure}", file=sys.stderr)
            return 1
        BASELINE.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
        print(f"[check_parallel_scale] wrote {BASELINE}")
        return 0

    if "--equality-only" not in sys.argv:
        host_cpus = int(measured["host_cpus"])
        if host_cpus >= 4:
            if measured["speedup_ht4"] < MIN_SPEEDUP_HT4:
                failures.append(
                    f"speedup_ht4 = {measured['speedup_ht4']:.2f}x at 512 threads/core "
                    f"is below the pinned {MIN_SPEEDUP_HT4}x bar (host has {host_cpus} "
                    f"CPUs)")
        else:
            print(f"[check_parallel_scale] SKIP: speedup gate (host has {host_cpus} "
                  "CPUs < 4); trace equality still binds")
        if BASELINE.exists():
            baseline = json.loads(BASELINE.read_text())
            print(f"[check_parallel_scale] baseline: {baseline}")
            floor = baseline["wall_ht1"] * MAX_REGRESSION
            if measured["wall_ht1"] > floor:
                failures.append(
                    f"wall_ht1 = {measured['wall_ht1']:.3f}s is more than "
                    f"{MAX_REGRESSION}x above the baseline {baseline['wall_ht1']:.3f}s "
                    f"— the sequential engine itself regressed")

    if failures:
        for failure in failures:
            print(f"[check_parallel_scale] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[check_parallel_scale] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
