#!/usr/bin/env python3
"""CI gate for the parallel dispatch engine.

Runs bench_parallel_engine and parses its machine-readable lines:
  - `PARALLEL_SCALE ...` — the pure-hog farm table (every round passes the
    independence gate with no queue traffic at all).
  - `PARALLEL_SCALE_MAILBOX family=... ...` — the queue-driven rows (matched-rate
    pipeline farm, web farm at 85% capacity) whose rounds stake real
    BoundedBuffer push/pop traffic through the per-core epoch mailboxes.

The gate fails when any of:
  - trace_equal != 1 on any row — a parallel run did not reproduce the
    single-threaded reference trace bit for bit. Gated UNCONDITIONALLY:
    determinism does not depend on how many CPUs the runner has. (The bench also
    RR_CHECKs this internally, so a divergence usually aborts before we get here;
    the gate catches a build where asserts are compiled out.)
  - parallel_rounds == 0 (hog farm) or mailbox_rounds == 0 (mailbox rows) — the
    engine never fanned the rounds out, so the equality above would be vacuous.
    Also gated unconditionally: the gate decision is deterministic.
  - a 4-host-thread end-to-end speedup fell below the bar, gated ONLY when the
    host actually has >= 4 CPUs — on starved runners the extra host threads just
    time-slice one core and the column is noise.

With --equality-only the speedup and baseline comparisons are skipped entirely
(the sanitizer legs run this: TSan serializes everything, so wall time is
meaningless there, but trace equality and round-count vacuity must still hold).

Refresh the baseline with:
  scripts/check_parallel_scale.py BUILD_DIR --write-baseline
"""
import json
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_parallel_baseline.json"
MIN_SPEEDUP_HT4 = 1.5   # The acceptance bar: >= 1.5x farm e2e at 4 host threads.
MAX_REGRESSION = 2.0    # Wall-time keys may drift up to 2x across runner speeds.
MAILBOX_FAMILIES = ("pipeline", "webfarm")


def parse_fields(blob: str) -> dict:
    fields = dict(kv.split("=", 1) for kv in blob.split())
    return {k: (v if k == "family" else float(v)) for k, v in fields.items()}


def run_bench(build_dir: pathlib.Path) -> dict:
    bench = build_dir / "bench" / "bench_parallel_engine"
    if not bench.exists():
        sys.exit(f"error: {bench} not found — build bench_parallel_engine first")
    out = subprocess.run([str(bench), "--benchmark_min_time=0.01s"],
                         check=True, capture_output=True, text=True).stdout
    match = re.search(r"^PARALLEL_SCALE (.*)$", out, re.M)
    if not match:
        sys.exit("error: bench output has no PARALLEL_SCALE line")
    measured = {"farm": parse_fields(match.group(1)), "mailbox": {}}
    for blob in re.findall(r"^PARALLEL_SCALE_MAILBOX (.*)$", out, re.M):
        fields = parse_fields(blob)
        measured["mailbox"][fields.pop("family")] = fields
    for family in MAILBOX_FAMILIES:
        if family not in measured["mailbox"]:
            sys.exit(f"error: bench output has no PARALLEL_SCALE_MAILBOX line "
                     f"for family={family}")
    return measured


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    build_dir = pathlib.Path(args[0]) if args else REPO / "build"
    measured = run_bench(build_dir)
    print(f"[check_parallel_scale] measured: {measured}")

    failures = []
    farm = measured["farm"]
    if farm["trace_equal"] != 1:
        failures.append("farm trace_equal != 1: parallel runs diverged from the "
                        "single-threaded reference trace")
    if farm["parallel_rounds"] <= 0:
        failures.append("farm parallel_rounds == 0: the engine never fanned a round "
                        "out (gate regression? the equality above would be vacuous)")
    for family, row in measured["mailbox"].items():
        if row["trace_equal"] != 1:
            failures.append(f"mailbox[{family}] trace_equal != 1: a staked round "
                            "diverged from the single-threaded reference trace")
        if row["mailbox_rounds"] <= 0:
            failures.append(f"mailbox[{family}] mailbox_rounds == 0: no round staked "
                            "queue ops through the mailbox gate (the equality above "
                            "would be vacuous for queue-driven rounds)")
        if row["parallel_rounds"] <= 0:
            failures.append(f"mailbox[{family}] parallel_rounds == 0: the engine "
                            "never fanned a round out at all")

    if "--write-baseline" in sys.argv:
        if failures:
            for failure in failures:
                print(f"[check_parallel_scale] FAIL: {failure}", file=sys.stderr)
            return 1
        BASELINE.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
        print(f"[check_parallel_scale] wrote {BASELINE}")
        return 0

    if "--equality-only" not in sys.argv:
        host_cpus = int(farm["host_cpus"])
        if host_cpus >= 4:
            if farm["speedup_ht4"] < MIN_SPEEDUP_HT4:
                failures.append(
                    f"farm speedup_ht4 = {farm['speedup_ht4']:.2f}x at 512 "
                    f"threads/core is below the pinned {MIN_SPEEDUP_HT4}x bar "
                    f"(host has {host_cpus} CPUs)")
            for family, row in measured["mailbox"].items():
                if row["speedup_ht4"] < MIN_SPEEDUP_HT4:
                    failures.append(
                        f"mailbox[{family}] speedup_ht4 = {row['speedup_ht4']:.2f}x "
                        f"is below the pinned {MIN_SPEEDUP_HT4}x bar (host has "
                        f"{host_cpus} CPUs)")
        else:
            print(f"[check_parallel_scale] SKIP: speedup gates (host has {host_cpus} "
                  "CPUs < 4); trace equality and round-count vacuity still bind")
        if BASELINE.exists():
            baseline = json.loads(BASELINE.read_text())
            print(f"[check_parallel_scale] baseline: {baseline}")
            if "farm" not in baseline:
                # Pre-mailbox flat baseline: only the farm keys existed.
                baseline = {"farm": baseline, "mailbox": {}}
            floor = baseline["farm"]["wall_ht1"] * MAX_REGRESSION
            if farm["wall_ht1"] > floor:
                failures.append(
                    f"farm wall_ht1 = {farm['wall_ht1']:.3f}s is more than "
                    f"{MAX_REGRESSION}x above the baseline "
                    f"{baseline['farm']['wall_ht1']:.3f}s — the sequential engine "
                    "itself regressed")
            for family, row in baseline.get("mailbox", {}).items():
                got = measured["mailbox"].get(family)
                if got is not None and got["wall_ht1"] > row["wall_ht1"] * MAX_REGRESSION:
                    failures.append(
                        f"mailbox[{family}] wall_ht1 = {got['wall_ht1']:.3f}s is more "
                        f"than {MAX_REGRESSION}x above the baseline "
                        f"{row['wall_ht1']:.3f}s — the sequential engine itself "
                        "regressed")

    if failures:
        for failure in failures:
            print(f"[check_parallel_scale] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[check_parallel_scale] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
