#!/usr/bin/env python3
"""CI gate for the open-loop web-farm sweep.

Runs bench_web_farm, parses its machine-readable `WEB_FARM ratio=...` rows
(one per offered-load ratio), and fails when any of:
  - trace_equal != 1 on any row — a re-run or the 4-host-thread run diverged
    from the reference trace. Gated UNCONDITIONALLY: determinism does not
    depend on how many CPUs the runner has. (The bench RR_CHECKs this too; the
    gate catches a build where asserts are compiled out.)
  - a row's percentile columns are out of order (p50 <= p99 <= p999) or it
    served nothing.
  - the sweep lost its overload shape: the drop fraction must rise from the
    0.5x row to the 2x row, and goodput must not fall (the feedback allocator
    targets half-full queues, so overload surfaces as admission drops while
    served requests saturate near capacity — see bench_web_farm.cc).
  - a row's trace hash differs from the committed baseline — the farm schedule
    itself changed. Compared only when the baseline file exists, skipped (with
    an explicit SKIP) under --equality-only.
  - total wall time regressed more than MAX_REGRESSION over the baseline,
    gated ONLY when the host has >= 4 CPUs (reported as an explicit SKIP
    otherwise — on starved runners wall time is noise, the shape gates above
    still bind).

With --equality-only the baseline and wall-time comparisons are skipped
entirely (the sanitizer legs run this: instrumentation inflates wall time, but
trace equality and the sweep's shape must still hold).

Refresh the baseline with:
  scripts/check_web_farm.py BUILD_DIR --write-baseline
"""
import json
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_web_farm_baseline.json"
MAX_REGRESSION = 2.0  # Wall-time keys may drift up to 2x across runner speeds.


def run_bench(build_dir: pathlib.Path) -> list[dict]:
    bench = build_dir / "bench" / "bench_web_farm"
    if not bench.exists():
        sys.exit(f"error: {bench} not found — build bench_web_farm first")
    out = subprocess.run([str(bench), "--benchmark_min_time=0.01s"],
                         check=True, capture_output=True, text=True).stdout
    rows = []
    for match in re.finditer(r"^WEB_FARM (.*)$", out, re.M):
        fields = dict(kv.split("=", 1) for kv in match.group(1).split())
        # trace_hash is a full 64-bit value: a float would silently drop its low
        # 11 bits and weaken the baseline pin to hash-prefix equality.
        rows.append({k: (int(v) if k == "trace_hash" else float(v))
                     for k, v in fields.items()})
    if not rows:
        sys.exit("error: bench output has no WEB_FARM lines")
    return rows


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    build_dir = pathlib.Path(args[0]) if args else REPO / "build"
    rows = run_bench(build_dir)
    for row in rows:
        print(f"[check_web_farm] measured: {row}")

    failures = []
    for row in rows:
        ratio = row["ratio"]
        if row["trace_equal"] != 1:
            failures.append(f"ratio {ratio}: trace_equal != 1 — re-run or parallel "
                            "run diverged from the reference trace")
        if not row["p50_ms"] <= row["p99_ms"] <= row["p999_ms"]:
            failures.append(f"ratio {ratio}: percentiles out of order "
                            f"(p50={row['p50_ms']} p99={row['p99_ms']} "
                            f"p999={row['p999_ms']})")
        if row["served"] <= 0:
            failures.append(f"ratio {ratio}: served nothing")

    by_ratio = {row["ratio"]: row for row in rows}
    low, high = min(by_ratio), max(by_ratio)
    if len(by_ratio) < 2:
        failures.append("sweep has fewer than two distinct ratios")
    else:
        if by_ratio[high]["drop_frac"] <= by_ratio[low]["drop_frac"]:
            failures.append(
                f"drop fraction did not rise with load: {by_ratio[low]['drop_frac']} "
                f"at {low}x vs {by_ratio[high]['drop_frac']} at {high}x")
        if by_ratio[high]["served"] < by_ratio[low]["served"]:
            failures.append(
                f"goodput fell under overload: served {by_ratio[high]['served']:.0f} "
                f"at {high}x vs {by_ratio[low]['served']:.0f} at {low}x")
        if by_ratio[high]["listen_drops"] + by_ratio[high]["dispatch_drops"] <= 0:
            failures.append(f"no admission drops at {high}x offered load — the sweep "
                            "never actually overloaded the farm")

    if "--write-baseline" in sys.argv:
        if failures:
            for failure in failures:
                print(f"[check_web_farm] FAIL: {failure}", file=sys.stderr)
            return 1
        BASELINE.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
        print(f"[check_web_farm] wrote {BASELINE}")
        return 0

    if "--equality-only" in sys.argv:
        print("[check_web_farm] SKIP: baseline and wall-time gates (--equality-only)")
    else:
        if BASELINE.exists():
            baseline = {row["ratio"]: row for row in json.loads(BASELINE.read_text())}
            for ratio, row in sorted(by_ratio.items()):
                pinned = baseline.get(ratio)
                if pinned is None:
                    failures.append(f"ratio {ratio} missing from the baseline — "
                                    "refresh with --write-baseline")
                elif row["trace_hash"] != pinned["trace_hash"]:
                    failures.append(
                        f"ratio {ratio}: trace hash {row['trace_hash']} != "
                        f"baseline {pinned['trace_hash']} — the farm schedule "
                        "changed (refresh the baseline if intended)")
        host_cpus = int(rows[0]["host_cpus"])
        if host_cpus >= 4:
            if BASELINE.exists():
                baseline_wall = sum(r["wall_ms"] for r in json.loads(BASELINE.read_text()))
                measured_wall = sum(r["wall_ms"] for r in rows)
                if measured_wall > baseline_wall * MAX_REGRESSION:
                    failures.append(
                        f"sweep wall time {measured_wall:.1f} ms is more than "
                        f"{MAX_REGRESSION}x above the baseline {baseline_wall:.1f} ms")
        else:
            print(f"[check_web_farm] SKIP: wall-time gate (host has {host_cpus} "
                  "CPUs < 4); determinism and shape gates still bind")

    if failures:
        for failure in failures:
            print(f"[check_web_farm] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[check_web_farm] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
