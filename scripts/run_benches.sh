#!/usr/bin/env bash
# Runs every bench program with JSON output and aggregates the results into
# one file, establishing/refreshing the repo's perf baseline.
#
#   scripts/run_benches.sh [BUILD_DIR] [OUT_JSON]
#
# Defaults: BUILD_DIR=build, OUT_JSON=BENCH_seed.json (repo root). The benches
# print their paper-figure tables to stdout before running google-benchmark,
# so JSON goes to a side file via --benchmark_out while the console output is
# kept in BUILD_DIR/bench_results/<name>.log.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
OUT_JSON="${2:-${REPO_ROOT}/BENCH_seed.json}"

BENCHES=(
  bench_ablation_ctrl_freq
  bench_ablation_dispatch_order
  bench_ablation_period
  bench_ablation_pid
  bench_ablation_reclaim
  bench_ablation_squish
  bench_baseline_comparison
  bench_benefits_comparison
  bench_cluster
  bench_controller_scale
  bench_dispatch_scale
  bench_fig5_controller_overhead
  bench_fig6_responsiveness
  bench_fig7_load
  bench_fig8_dispatch_overhead
  bench_parallel_engine
  bench_smp_scale
  bench_thread_slabs
  bench_web_farm
)

if [[ ! -x "${BUILD_DIR}/tools/bench_aggregate" ]]; then
  echo "error: ${BUILD_DIR}/tools/bench_aggregate not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

RESULTS_DIR="${BUILD_DIR}/bench_results"
mkdir -p "${RESULTS_DIR}"

AGGREGATE_ARGS=()
for bench in "${BENCHES[@]}"; do
  bin="${BUILD_DIR}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not found (incomplete build?)" >&2
    exit 1
  fi
  json="${RESULTS_DIR}/${bench}.json"
  log="${RESULTS_DIR}/${bench}.log"
  echo "[run_benches] ${bench}"
  "${bin}" --benchmark_format=json \
           --benchmark_out="${json}" --benchmark_out_format=json \
           >"${log}" 2>&1
  AGGREGATE_ARGS+=("${bench}=${json}")
done

"${BUILD_DIR}/tools/bench_aggregate" "${OUT_JSON}" "${AGGREGATE_ARGS[@]}"
echo "[run_benches] wrote ${OUT_JSON} (${#BENCHES[@]} benches; logs in ${RESULTS_DIR})"
