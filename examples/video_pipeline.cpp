// Video pipeline: the paper's motivating multimedia example (§4.4).
//
//   capture -> [q0] -> demux -> [q1] -> decode -> [q2] -> render
//
// The capture device is isochronous (a real-time reservation); the three downstream
// stages are real-rate threads whose requirements differ by an order of magnitude —
// the decoder dominates. "Our controller automatically identifies that one stage of
// the pipeline has vastly different CPU requirements than the others (the video
// decoder), even though all the processes have the same priority."
//
// Midway through, the stream switches to a heavier codec (decode cost doubles) to show
// the allocations re-converging without any reconfiguration.
#include <cstdio>
#include <memory>

#include "realrate.h"

using namespace realrate;

namespace {

// A decode stage whose per-byte cost can be switched at run time (codec change).
class SwitchableDecodeWork : public WorkModel {
 public:
  SwitchableDecodeWork(BoundedBuffer* in, BoundedBuffer* out, Cycles cycles_per_byte)
      : in_(in), out_(out), cycles_per_byte_(cycles_per_byte) {}

  void SetCyclesPerByte(Cycles c) { cycles_per_byte_ = c; }

  RunResult Run(TimePoint /*now*/, Cycles granted) override {
    Cycles used = 0;
    while (used < granted) {
      if (pending_out_ > 0) {
        if (!out_->TryPush(pending_out_)) {
          out_->WaitForSpace(self()->id());
          return RunResult::Blocked(used, out_->id());
        }
        pending_out_ = 0;
      }
      if (chunk_ == 0) {
        chunk_ = in_->TryPop(400);
        if (chunk_ == 0) {
          in_->WaitForData(self()->id());
          return RunResult::Blocked(used, in_->id());
        }
        into_chunk_ = 0;
      }
      const Cycles cost = chunk_ * cycles_per_byte_;
      const Cycles step = std::min(cost - into_chunk_, granted - used);
      used += step;
      into_chunk_ += step;
      if (into_chunk_ >= cost) {
        self()->AddProgress(chunk_);
        pending_out_ = chunk_;
        chunk_ = 0;
      }
    }
    return RunResult::Ran(used);
  }

 private:
  BoundedBuffer* const in_;
  BoundedBuffer* const out_;
  Cycles cycles_per_byte_;
  int64_t chunk_ = 0;
  int64_t pending_out_ = 0;
  Cycles into_chunk_ = 0;
};

}  // namespace

int main() {
  System system;

  BoundedBuffer* q0 = system.CreateQueue("captured", 8'000);
  BoundedBuffer* q1 = system.CreateQueue("demuxed", 8'000);
  BoundedBuffer* q2 = system.CreateQueue("frames", 8'000);

  // Capture: 80 kB/s isochronous source (400-byte packet every 5 ms).
  SimThread* capture = system.Spawn(
      "capture", std::make_unique<PacedProducerWork>(q0, 400, Duration::Millis(5),
                                                     /*cycles_per_item=*/100'000));
  SimThread* demux = system.Spawn(
      "demux", std::make_unique<PipelineStageWork>(q0, q1, /*cycles_per_byte=*/100,
                                                   /*amplification=*/1.0, /*chunk=*/400));
  auto decode_work = std::make_unique<SwitchableDecodeWork>(q1, q2, /*cycles_per_byte=*/1'000);
  SwitchableDecodeWork* decode_ctl = decode_work.get();
  SimThread* decode = system.Spawn("decode", std::move(decode_work));
  SimThread* render = system.Spawn(
      "render", std::make_unique<ConsumerWork>(q2, /*cycles_per_byte=*/100));

  system.queues().Register(q0, capture->id(), QueueRole::kProducer);
  system.queues().Register(q0, demux->id(), QueueRole::kConsumer);
  system.queues().Register(q1, demux->id(), QueueRole::kProducer);
  system.queues().Register(q1, decode->id(), QueueRole::kConsumer);
  system.queues().Register(q2, decode->id(), QueueRole::kProducer);
  system.queues().Register(q2, render->id(), QueueRole::kConsumer);

  if (!system.controller().AddRealTime(capture, Proportion::Ppt(60), Duration::Millis(5))) {
    std::fprintf(stderr, "capture reservation rejected\n");
    return 1;
  }
  system.controller().AddRealRate(demux);
  system.controller().AddRealRate(decode);
  system.controller().AddRealRate(render);

  system.Start();

  std::printf("all stages run with NO priorities and NO human-supplied proportions\n\n");
  std::printf("%6s %10s %10s %10s   %8s %8s %8s %12s\n", "t(s)", "demux", "decode",
              "render", "fill q0", "fill q1", "fill q2", "rendered B/s");
  int64_t last = 0;
  for (int second = 1; second <= 16; ++second) {
    if (second == 9) {
      // Codec switch: decoding becomes 2x as expensive per byte.
      decode_ctl->SetCyclesPerByte(2'000);
      std::printf("  --- stream switches to a heavier codec (decode cost 2x) ---\n");
    }
    system.RunFor(Duration::Seconds(1));
    const int64_t rendered = render->progress_units();
    std::printf("%6d %7d ppt %7d ppt %7d ppt   %8.2f %8.2f %8.2f %12lld\n", second,
                demux->proportion().ppt(), decode->proportion().ppt(),
                render->proportion().ppt(), q0->FillFraction(), q1->FillFraction(),
                q2->FillFraction(), static_cast<long long>(rendered - last));
    last = rendered;
  }

  std::printf(
      "\nThe controller found the decoder's outsized requirement automatically and\n"
      "re-converged within ~1 s of the codec switch.\n");
  return 0;
}
