// Mars Pathfinder: the priority-inversion story from the paper's motivation (§2),
// replayed twice — once under fixed real-time priorities (the failure NASA hit) and
// once under the feedback proportion allocator (which cannot invert, because progress,
// not priority, drives allocation).
//
//   low:    housekeeping task that takes the shared "information bus" mutex
//   medium: communications load, CPU-bound, arrives at t = 1 s
//   high:   periodic bus manager that needs the same mutex; resets the spacecraft if
//           it misses too many cycles (here: if a lock wait exceeds 1 s)
#include <cstdio>
#include <memory>

#include "realrate.h"

using namespace realrate;

namespace {

constexpr Cycles kLowHold = 2'000'000;   // 5 ms of work inside the critical section.
constexpr Cycles kHighHold = 200'000;    // 0.5 ms.
constexpr double kWatchdogSeconds = 1.0;

void Report(const char* label, const LockWork& high_work, const SimThread& medium,
            const SimThread& low, Simulator& sim, Duration ran) {
  double max_wait = high_work.MaxWaitSeconds();
  if (high_work.still_waiting()) {
    max_wait = std::max(max_wait, (sim.Now() - high_work.wait_start()).ToSeconds());
  }
  const auto total = static_cast<double>(sim.cpu().DurationToCycles(ran));
  std::printf("%s\n", label);
  std::printf("  bus manager acquisitions: %lld, worst lock wait: %.3f s\n",
              static_cast<long long>(high_work.acquisitions()), max_wait);
  std::printf("  cpu shares: medium %.1f%%, low %.1f%%\n",
              static_cast<double>(medium.total_cycles()) / total * 100,
              static_cast<double>(low.total_cycles()) / total * 100);
  if (max_wait > kWatchdogSeconds) {
    std::printf("  ** WATCHDOG RESET: priority inversion starved the bus manager **\n\n");
  } else {
    std::printf("  watchdog satisfied: every task kept making progress\n\n");
  }
}

void RunFixedPriority(Duration run_for) {
  Simulator sim;
  ThreadRegistry threads;
  FixedPriorityScheduler scheduler;
  Machine machine(sim, scheduler, threads);
  SimMutex bus("information-bus");
  machine.Attach(&bus);

  SimThread* low = threads.Create(
      "low", std::make_unique<LockWork>(&bus, kLowHold, Duration::Millis(1)));
  SimThread* medium = threads.Create(
      "medium",
      std::make_unique<DelayedHogWork>(TimePoint::Origin() + Duration::Seconds(1)));
  SimThread* high = threads.Create(
      "high", std::make_unique<LockWork>(&bus, kHighHold, Duration::Millis(50)));
  low->set_priority(1);
  medium->set_priority(5);
  high->set_priority(10);
  machine.Attach(low);
  machine.Attach(medium);
  machine.Attach(high);

  machine.Start();
  sim.RunFor(run_for);
  Report("[fixed real-time priorities]", static_cast<const LockWork&>(high->work()),
         *medium, *low, sim, run_for);
}

void RunFeedback(Duration run_for) {
  System system;
  SimMutex bus("information-bus");
  system.machine().Attach(&bus);

  SimThread* low = system.Spawn(
      "low", std::make_unique<LockWork>(&bus, kLowHold, Duration::Millis(1)));
  SimThread* medium = system.Spawn(
      "medium",
      std::make_unique<DelayedHogWork>(TimePoint::Origin() + Duration::Seconds(1)));
  SimThread* high = system.Spawn(
      "high", std::make_unique<LockWork>(&bus, kHighHold, Duration::Millis(50)));
  // Importance expresses that the bus manager matters most — but unlike priority it
  // cannot starve anyone.
  high->set_importance(8.0);
  medium->set_importance(2.0);

  system.controller().AddMiscellaneous(low);
  system.controller().AddMiscellaneous(medium);
  system.controller().AddMiscellaneous(high);

  system.Start();
  system.RunFor(run_for);
  Report("[feedback proportion allocator]", static_cast<const LockWork&>(high->work()),
         *medium, *low, system.sim(), run_for);
}

}  // namespace

int main() {
  const Duration run_for = Duration::Seconds(10);
  std::printf(
      "Mars Pathfinder scenario: high-priority bus manager shares a mutex with a\n"
      "low-priority housekeeping task; a medium-priority communications load arrives\n"
      "at t = 1 s and pins the CPU.\n\n");
  RunFixedPriority(run_for);
  RunFeedback(run_for);
  std::printf(
      "Under priorities the medium task starves the mutex holder and the high task\n"
      "waits unboundedly (the 1997 reset loop). Under the allocator every thread gets\n"
      "a non-zero proportion, so the holder finishes and the inversion cannot form.\n");
  return 0;
}
