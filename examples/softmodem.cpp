// Software modem: the isochronous real-time application from the paper's introduction
// ("software modems ... applications with specific rate or throughput requirements in
// which the rate is driven by real-world demands") and §3.3's real-time class
// ("isochronous software devices can bypass the adaptive scheduler by specifying their
// desired proportion and/or period").
//
// The modem's sample-processing thread has a hard 5 ms period and a known 12% CPU
// need — it takes a reservation. The rest of the machine runs an adaptive mix: a
// real-rate decoder consuming the modem's demodulated bytes, an interactive shell, and
// a compile job. The demo shows the reservation is honored (zero deadline misses) no
// matter what the adaptive classes do, and that admission control rejects a second
// modem that would not fit.
#include <cstdio>
#include <memory>

#include "realrate.h"

using namespace realrate;

int main() {
  System system;

  // The modem "hardware": samples arrive every 5 ms into the sample ring. The modem
  // thread must drain and process them each period or the line drops.
  BoundedBuffer* samples = system.CreateQueue("sample-ring", 8'192);
  BoundedBuffer* demod = system.CreateQueue("demodulated", 16'384);

  ArrivalProcess::Config line;
  line.bytes_per_arrival = 1'024;  // One 5 ms frame of samples.
  line.mean_interarrival = Duration::Millis(5);
  line.poisson = false;  // The line clock is exact.
  ArrivalProcess line_clock(system.sim(), samples, line);

  // Modem thread: consumes a frame (1024 samples), burns 240k cycles (12% of a 5 ms
  // period at 400 MHz), emits 256 demodulated bytes.
  SimThread* modem = system.Spawn(
      "modem", std::make_unique<PipelineStageWork>(samples, demod, /*cycles_per_byte=*/234,
                                                   /*amplification=*/0.25,
                                                   /*chunk_bytes=*/1'024));
  // Downstream decoder: real-rate, controller-managed.
  SimThread* decoder = system.Spawn(
      "decoder", std::make_unique<ConsumerWork>(demod, /*cycles_per_byte=*/2'000));
  // Background load: a compile job and an interactive shell.
  SimThread* compiler = system.Spawn("compiler", std::make_unique<CpuHogWork>());
  TtyPort console("console");
  system.machine().Attach(&console);
  SimThread* shell =
      system.Spawn("shell", std::make_unique<InteractiveWork>(&console, 200'000));
  TypingProcess typist(system.sim(), &console, {.mean_think = Duration::Millis(400)});

  system.queues().Register(demod, modem->id(), QueueRole::kProducer);
  system.queues().Register(demod, decoder->id(), QueueRole::kConsumer);

  // The isochronous device bypasses the adaptive scheduler: 130 ppt every 5 ms.
  if (!system.controller().AddRealTime(modem, Proportion::Ppt(130), Duration::Millis(5))) {
    std::fprintf(stderr, "modem reservation rejected!\n");
    return 1;
  }
  system.controller().AddRealRate(decoder);
  system.controller().AddMiscellaneous(compiler);
  system.controller().AddInteractive(shell);

  // A second modem would push reservations past the admission threshold only if it
  // asked for too much; a reasonable one fits.
  SimThread* modem2 = system.Spawn("modem2", std::make_unique<CpuHogWork>());
  const bool greedy_admitted = system.controller().AddRealTime(
      modem2, Proportion::Ppt(900), Duration::Millis(5));
  std::printf("admission control: 90%% second 'modem' %s\n",
              greedy_admitted ? "ADMITTED (bug!)" : "rejected (as it must be)");

  system.Start();
  line_clock.Start();
  typist.Start();

  std::printf("\n%6s %12s %12s %12s %12s %12s\n", "t(s)", "modem miss", "ring fill",
              "decoder ppt", "compiler ppt", "shell ppt");
  for (int second = 1; second <= 10; ++second) {
    system.RunFor(Duration::Seconds(1));
    std::printf("%6d %12lld %12.2f %12d %12d %12d\n", second,
                static_cast<long long>(modem->deadline_misses()), samples->FillFraction(),
                decoder->proportion().ppt(), compiler->proportion().ppt(),
                shell->proportion().ppt());
  }

  std::printf(
      "\nThe modem's reservation delivered every period (zero deadline misses) while\n"
      "the controller adapted everything else around it — reservations and real-rate\n"
      "scheduling in one uniform mechanism.\n");
  return modem->deadline_misses() == 0 ? 0 : 1;
}
