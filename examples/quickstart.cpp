// Quickstart: the smallest end-to-end use of the realrate library.
//
// Builds a simulated machine, connects a fixed-rate producer to a consumer through a
// bounded buffer (the paper's symbiotic interface), registers both with the feedback
// allocator, and watches the controller discover the consumer's correct CPU share with
// no human-provided reservation.
//
//   producer: real-time thread, 5% reservation, emits 5000 bytes/sec
//   consumer: real-rate thread, needs 2.5% of the CPU — but nobody tells the system
//             that; the controller infers it from the queue fill level.
#include <cstdio>
#include <memory>

#include "realrate.h"

using namespace realrate;

int main() {
  // 1. A simulated 400 MHz machine with the reservation scheduler and controller.
  System system;

  // 2. The symbiotic interface: a 4 kB bounded buffer.
  BoundedBuffer* queue = system.CreateQueue("pipe", 4'000);

  // 3. Two threads. The producer loops 400k cycles then enqueues a 100-byte item; the
  //    consumer spends 2000 cycles per byte it dequeues.
  SimThread* producer = system.Spawn(
      "producer", std::make_unique<ProducerWork>(queue, /*cycles_per_item=*/400'000,
                                                 RateSchedule(/*bytes_per_item=*/100.0)));
  SimThread* consumer = system.Spawn(
      "consumer", std::make_unique<ConsumerWork>(queue, /*cycles_per_byte=*/2'000));

  // 4. The meta-interface: tell the kernel who produces and who consumes.
  system.queues().Register(queue, producer->id(), QueueRole::kProducer);
  system.queues().Register(queue, consumer->id(), QueueRole::kConsumer);

  // 5. Classify the threads for the controller (paper Figure 2). The producer brings
  //    its own reservation; the consumer is real-rate: no proportion, no period, just
  //    a progress metric.
  if (!system.controller().AddRealTime(producer, Proportion::Ppt(50), Duration::Millis(10))) {
    std::fprintf(stderr, "admission control rejected the producer reservation\n");
    return 1;
  }
  system.controller().AddRealRate(consumer);

  // 6. Run and watch the allocation converge. The consumer needs
  //    5000 B/s * 2000 cyc/B = 10 Mcyc/s = 2.5% of the CPU (25 ppt).
  system.Start();
  std::printf("%6s %12s %14s %12s\n", "t(s)", "fill", "consumer ppt", "rate (B/s)");
  int64_t last_progress = 0;
  for (int second = 1; second <= 8; ++second) {
    system.RunFor(Duration::Seconds(1));
    const int64_t progress = consumer->progress_units();
    std::printf("%6d %12.3f %14d %12lld\n", second, queue->FillFraction(),
                consumer->proportion().ppt(),
                static_cast<long long>(progress - last_progress));
    last_progress = progress;
  }

  std::printf(
      "\nThe controller assigned the consumer ~25 ppt (2.5%%) and holds the queue at\n"
      "half-full — no human expert supplied either number.\n");
  return 0;
}
