// Quickstart: the smallest end-to-end use of the realrate library, written as a
// walkthrough of the layer map in docs/ARCHITECTURE.md
// (util → sim → task → queue → swift → sched → core → workloads → exp).
//
// Builds a simulated machine, connects a fixed-rate producer to a consumer through a
// bounded buffer (the paper's symbiotic interface), registers both with the feedback
// allocator, and watches the controller discover the consumer's correct CPU share with
// no human-provided reservation.
//
//   producer: real-time thread, 5% reservation, emits 5000 bytes/sec
//   consumer: real-rate thread, needs 2.5% of the CPU — but nobody tells the system
//             that; the controller infers it from the queue fill level.
#include <cstdio>
#include <memory>

#include "realrate.h"

using namespace realrate;

int main() {
  // 1. The exp layer: a System is one fully wired simulated machine — discrete-event
  //    Simulator with a 400 MHz CPU cost model (sim layer), one RbsScheduler run
  //    queue per core plus the dispatch Machine (sched layer), and the
  //    FeedbackAllocator, the paper's contribution (core layer). SystemConfig's
  //    num_cpus defaults to 1: the paper's uniprocessor. (Set it to 2-8 for an SMP
  //    machine with least-loaded placement and per-core proportion budgets.)
  System system;

  // 2. The queue layer: a 4 kB BoundedBuffer, the paper's symbiotic interface. The
  //    controller never looks deeper than fill/size/role — queue fill level IS the
  //    progress signal.
  BoundedBuffer* queue = system.CreateQueue("pipe", 4'000);

  // 3. The task + workloads layers: Spawn creates a SimThread wrapping a WorkModel
  //    and attaches it to the Machine, which places it on the least-loaded core.
  //    The producer loops 400k cycles then enqueues a 100-byte item; the consumer
  //    spends 2000 cycles per byte it dequeues.
  SimThread* producer = system.Spawn(
      "producer", std::make_unique<ProducerWork>(queue, /*cycles_per_item=*/400'000,
                                                 RateSchedule(/*bytes_per_item=*/100.0)));
  SimThread* consumer = system.Spawn(
      "consumer", std::make_unique<ConsumerWork>(queue, /*cycles_per_byte=*/2'000));

  // 4. The meta-interface (queue layer's QueueRegistry): register who produces into
  //    and who consumes from the queue. The controller walks these linkages to
  //    compute progress pressure (Figure 3): fill above 1/2 pushes the consumer's
  //    allocation up, below 1/2 pushes it down.
  system.queues().Register(queue, producer->id(), QueueRole::kProducer);
  system.queues().Register(queue, consumer->id(), QueueRole::kConsumer);

  // 5. The core layer: classify the threads (the paper's Figure 2 taxonomy). The
  //    producer is real-time — it brings its own proportion and period, subject to
  //    admission control against the core's budget. The consumer is real-rate: no
  //    proportion, no period, just the progress metric registered above; the
  //    proportion estimator (PID over filtered pressure, Figure 4) does the rest.
  if (!system.controller().AddRealTime(producer, Proportion::Ppt(50), Duration::Millis(10))) {
    std::fprintf(stderr, "admission control rejected the producer reservation\n");
    return 1;
  }
  system.controller().AddRealRate(consumer);

  // 6. Run and watch the allocation converge. The consumer needs
  //    5000 B/s * 2000 cyc/B = 10 Mcyc/s = 2.5% of the CPU (25 ppt). Every knob the
  //    convergence depends on — PID gains, pressure filter, controller interval — is
  //    documented with its measuring bench in docs/TUNING.md.
  system.Start();
  std::printf("%6s %12s %14s %12s\n", "t(s)", "fill", "consumer ppt", "rate (B/s)");
  int64_t last_progress = 0;
  for (int second = 1; second <= 8; ++second) {
    system.RunFor(Duration::Seconds(1));
    const int64_t progress = consumer->progress_units();
    std::printf("%6d %12.3f %14d %12lld\n", second, queue->FillFraction(),
                consumer->proportion().ppt(),
                static_cast<long long>(progress - last_progress));
    last_progress = progress;
  }

  std::printf(
      "\nThe controller assigned the consumer ~25 ppt (2.5%%) and holds the queue at\n"
      "half-full — no human expert supplied either number.\n");
  return 0;
}
