// Web server: the paper's server scenario. "Servers are essentially the consumer of a
// bounded buffer, where the producer may or may not be on the same machine."
//
// Requests arrive over a simulated network (an interrupt-driven arrival process) into
// a socket buffer; the server is a real-rate thread whose allocation must track the
// offered load — which ramps up, bursts, and falls. A background batch job
// (miscellaneous, lower importance) soaks up whatever the server does not need.
#include <cstdio>
#include <memory>

#include "realrate.h"

using namespace realrate;

int main() {
  System system;

  BoundedBuffer* socket = system.CreateQueue("socket", 64 * 512);  // 64-request ring.

  SimThread* server = system.Spawn(
      "httpd", std::make_unique<RequestServerWork>(socket, /*request_bytes=*/512,
                                                   /*cycles_per_request=*/2'000'000));
  SimThread* batch = system.Spawn("batch", std::make_unique<CpuHogWork>());
  server->set_importance(4.0);  // The site matters more than the batch job.
  batch->set_importance(1.0);

  system.queues().Register(socket, server->id(), QueueRole::kConsumer);
  system.controller().AddRealRate(server);
  system.controller().AddMiscellaneous(batch);

  // Offered load: 20 req/s for 5 s, then a 100 req/s spike, then 50 req/s.
  // (One request = 2 Mcyc = 0.5% CPU, so the spike needs 50% of the machine.)
  ArrivalProcess::Config slow;
  slow.bytes_per_arrival = 512;
  slow.mean_interarrival = Duration::Millis(50);
  slow.poisson = true;
  slow.seed = 17;
  ArrivalProcess load_slow(system.sim(), socket, slow);

  ArrivalProcess::Config spike = slow;
  spike.mean_interarrival = Duration::Millis(10);
  spike.seed = 18;
  ArrivalProcess load_spike(system.sim(), socket, spike);

  ArrivalProcess::Config medium = slow;
  medium.mean_interarrival = Duration::Millis(20);
  medium.seed = 19;
  ArrivalProcess load_medium(system.sim(), socket, medium);

  system.sim().ScheduleAt(TimePoint::Origin(), [&] { load_slow.Start(); });
  system.sim().ScheduleAt(TimePoint::Origin() + Duration::Seconds(5), [&] {
    load_slow.Stop();
    load_spike.Start();
  });
  system.sim().ScheduleAt(TimePoint::Origin() + Duration::Seconds(10), [&] {
    load_spike.Stop();
    load_medium.Start();
  });

  system.controller().SetQualityExceptionFn([&](const QualityException& e) {
    std::printf("  !! quality exception at t=%.2fs: %s saturated — shed load or "
                "renegotiate\n",
                e.when.ToSeconds(), e.queue->name().c_str());
  });

  system.Start();

  std::printf("%6s %12s %12s %12s %12s %10s\n", "t(s)", "served/s", "httpd ppt",
              "batch ppt", "backlog", "dropped");
  const auto& work = static_cast<const RequestServerWork&>(server->work());
  int64_t last_served = 0;
  for (int second = 1; second <= 15; ++second) {
    system.RunFor(Duration::Seconds(1));
    const int64_t served = work.requests_served();
    const int64_t dropped = load_slow.dropped_bytes() + load_spike.dropped_bytes() +
                            load_medium.dropped_bytes();
    std::printf("%6d %12lld %12d %12d %12lld %10lld\n", second,
                static_cast<long long>(served - last_served), server->proportion().ppt(),
                batch->proportion().ppt(), static_cast<long long>(socket->fill() / 512),
                static_cast<long long>(dropped / 512));
    last_served = served;
  }

  std::printf(
      "\nThe server's allocation follows the offered load (the real-world rate), and\n"
      "the batch job's importance-weighted share absorbs the slack — no priorities,\n"
      "no static partition.\n");
  return 0;
}
