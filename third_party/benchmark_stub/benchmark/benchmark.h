// Header-only fallback for <benchmark/benchmark.h>, used only when the real
// Google Benchmark package is not installed (see the root CMakeLists.txt).
// It implements just the API surface the bench/ programs use — State with
// range() and counters, BENCHMARK()->Arg()->Unit(), DoNotOptimize,
// Initialize, RunSpecifiedBenchmarks — and honours --benchmark_out=FILE with
// --benchmark_out_format=json so scripts/run_benches.sh keeps working.
// Timings are crude (fixed iteration count, one repetition); they keep the
// figure reproductions runnable offline, not publication-grade.
#ifndef REALRATE_THIRD_PARTY_BENCHMARK_STUB_H_
#define REALRATE_THIRD_PARTY_BENCHMARK_STUB_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

class State;
using BenchFn = std::function<void(State&)>;

namespace internal {

struct Registration {
  std::string name;
  BenchFn fn;
  std::vector<int64_t> args;  // empty → one run with no arg
  TimeUnit unit = kNanosecond;

  Registration* Arg(int64_t a) {
    args.push_back(a);
    return this;
  }
  Registration* Unit(TimeUnit u) {
    unit = u;
    return this;
  }
};

inline std::vector<Registration*>& Registry() {
  static std::vector<Registration*> registry;
  return registry;
}

inline Registration* Register(const char* name, BenchFn fn) {
  auto* reg = new Registration{name, std::move(fn), {}, kNanosecond};
  Registry().push_back(reg);
  return reg;
}

inline std::string& OutPath() {
  static std::string path;
  return path;
}

}  // namespace internal

class State {
 public:
  explicit State(int64_t arg, int64_t iterations)
      : arg_(arg), remaining_(iterations), iterations_(iterations) {}

  // The loop variable in `for (auto _ : state)` is deliberately unused; a
  // user-declared destructor keeps -Wunused-variable quiet about it.
  struct IterationToken {
    ~IterationToken() {}
  };

  struct Iterator {
    State* state;
    bool operator!=(const Iterator& other) const {
      return state != other.state;
    }
    void operator++() {
      if (--state->remaining_ <= 0) {
        state->Stop();
        state = nullptr;
      }
    }
    IterationToken operator*() const { return IterationToken{}; }
  };

  Iterator begin() {
    start_ = std::chrono::steady_clock::now();
    return Iterator{remaining_ > 0 ? this : nullptr};
  }
  Iterator end() { return Iterator{nullptr}; }

  int64_t range(int /*index*/ = 0) const { return arg_; }
  int64_t iterations() const { return iterations_; }
  double elapsed_seconds() const { return elapsed_; }

  std::map<std::string, double> counters;

 private:
  void Stop() {
    elapsed_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
                   .count();
  }

  int64_t arg_;
  int64_t remaining_;
  int64_t iterations_;
  std::chrono::steady_clock::time_point start_{};
  double elapsed_ = 0.0;
};

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

inline void Initialize(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--benchmark_out=", 16) == 0) {
      internal::OutPath() = arg + 16;
    } else if (std::strncmp(arg, "--benchmark_", 12) == 0) {
      // Recognised-and-ignored benchmark flag (format, filter, ...).
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

inline double ToUnit(double seconds, TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return seconds * 1e9;
    case kMicrosecond: return seconds * 1e6;
    case kMillisecond: return seconds * 1e3;
    case kSecond: return seconds;
  }
  return seconds;
}

inline const char* UnitName(TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return "ns";
    case kMicrosecond: return "us";
    case kMillisecond: return "ms";
    case kSecond: return "s";
  }
  return "ns";
}

inline int RunSpecifiedBenchmarks() {
  struct Result {
    std::string name;
    int64_t iterations;
    double time;
    TimeUnit unit;
    std::map<std::string, double> counters;
  };
  std::vector<Result> results;

  for (internal::Registration* reg : internal::Registry()) {
    std::vector<int64_t> args = reg->args.empty()
                                    ? std::vector<int64_t>{0}
                                    : reg->args;
    for (size_t i = 0; i < args.size(); ++i) {
      const int64_t iterations = 8;
      State state(args[i], iterations);
      reg->fn(state);
      std::string name = reg->name;
      if (!reg->args.empty()) {
        name += "/" + std::to_string(args[i]);
      }
      const double per_iter =
          ToUnit(state.elapsed_seconds() / static_cast<double>(iterations),
                 reg->unit);
      std::printf("%-48s %12.3f %s %10lld iterations [stub]\n", name.c_str(),
                  per_iter, UnitName(reg->unit),
                  static_cast<long long>(iterations));
      results.push_back(
          {std::move(name), iterations, per_iter, reg->unit, state.counters});
    }
  }

  if (!internal::OutPath().empty()) {
    std::FILE* out = std::fopen(internal::OutPath().c_str(), "w");
    if (out != nullptr) {
      std::fprintf(out, "{\n  \"context\": {\"library\": \"benchmark_stub\"},\n");
      std::fprintf(out, "  \"benchmarks\": [\n");
      for (size_t i = 0; i < results.size(); ++i) {
        const Result& r = results[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                     "\"iterations\": %lld, \"real_time\": %.6f, "
                     "\"cpu_time\": %.6f, \"time_unit\": \"%s\"",
                     r.name.c_str(), static_cast<long long>(r.iterations),
                     r.time, r.time, UnitName(r.unit));
        for (const auto& [key, value] : r.counters) {
          std::fprintf(out, ", \"%s\": %.6f", key.c_str(), value);
        }
        std::fprintf(out, "}%s\n", i + 1 < results.size() ? "," : "");
      }
      std::fprintf(out, "  ]\n}\n");
      std::fclose(out);
    }
  }
  return static_cast<int>(results.size());
}

}  // namespace benchmark

#define BENCHMARK_STUB_CONCAT2(a, b) a##b
#define BENCHMARK_STUB_CONCAT(a, b) BENCHMARK_STUB_CONCAT2(a, b)
#define BENCHMARK(fn)                                             \
  static ::benchmark::internal::Registration*                     \
      BENCHMARK_STUB_CONCAT(benchmark_stub_reg_, __LINE__) =      \
          ::benchmark::internal::Register(#fn, fn)

#endif  // REALRATE_THIRD_PARTY_BENCHMARK_STUB_H_
