// AdaptiveSourceWork: an isochronous source that can renegotiate its rate — the
// application side of the paper's quality-exception protocol. "Second, it can raise
// quality exceptions to notify the jobs of the overload and renegotiate the
// proportions" (§3.1); "allowing the application to adapt by lowering its resource
// requirements" (§4.2). A media source would drop to a lower bitrate; Degrade() halves
// the emission rate, Restore() returns to the original.
#ifndef REALRATE_WORKLOADS_ADAPTIVE_SOURCE_H_
#define REALRATE_WORKLOADS_ADAPTIVE_SOURCE_H_

#include "queue/bounded_buffer.h"
#include "task/work_model.h"

namespace realrate {

class AdaptiveSourceWork : public WorkModel {
 public:
  AdaptiveSourceWork(BoundedBuffer* out, int64_t item_bytes, Duration base_interval,
                     Cycles cycles_per_item);

  RunResult Run(TimePoint now, Cycles granted) override;

  // Halves the emission rate (doubles the interval). Repeated calls keep halving down
  // to 1/8 of the base rate.
  void Degrade();
  // Returns to the base rate.
  void Restore();

  int degradation_level() const { return level_; }
  Duration current_interval() const { return base_interval_ * (int64_t{1} << level_); }
  int64_t items_produced() const { return items_; }
  int64_t items_dropped() const { return dropped_; }

 private:
  BoundedBuffer* const out_;
  const int64_t item_bytes_;
  const Duration base_interval_;
  const Cycles cycles_per_item_;
  int level_ = 0;
  TimePoint next_item_time_;
  Cycles into_item_ = 0;
  int64_t items_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_WORKLOADS_ADAPTIVE_SOURCE_H_
