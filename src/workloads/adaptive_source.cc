#include "workloads/adaptive_source.h"

#include <algorithm>

#include "task/thread.h"
#include "util/assert.h"

namespace realrate {

AdaptiveSourceWork::AdaptiveSourceWork(BoundedBuffer* out, int64_t item_bytes,
                                       Duration base_interval, Cycles cycles_per_item)
    : out_(out),
      item_bytes_(item_bytes),
      base_interval_(base_interval),
      cycles_per_item_(cycles_per_item) {
  RR_EXPECTS(out != nullptr);
  RR_EXPECTS(item_bytes > 0);
  RR_EXPECTS(base_interval.IsPositive());
  RR_EXPECTS(cycles_per_item > 0);
}

void AdaptiveSourceWork::Degrade() { level_ = std::min(level_ + 1, 3); }

void AdaptiveSourceWork::Restore() { level_ = 0; }

RunResult AdaptiveSourceWork::Run(TimePoint now, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    if (now < next_item_time_) {
      return RunResult::Sleeping(used, next_item_time_);
    }
    const Cycles step = std::min(cycles_per_item_ - into_item_, granted - used);
    used += step;
    into_item_ += step;
    if (into_item_ < cycles_per_item_) {
      break;
    }
    into_item_ = 0;
    if (out_->TryPush(item_bytes_)) {
      ++items_;
      self()->AddProgress(item_bytes_);
    } else {
      ++dropped_;
    }
    next_item_time_ = std::max(next_item_time_ + current_interval(), now);
  }
  return RunResult::Ran(used);
}

}  // namespace realrate
