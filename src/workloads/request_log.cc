#include "workloads/request_log.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/assert.h"

namespace realrate {

namespace {

// Parses one strictly-formatted non-negative int64 token starting at *p, advancing
// *p past it. Returns false on missing token, sign, garbage, or overflow.
bool ParseToken(const char** p, int64_t* value) {
  while (**p == ' ' || **p == '\t') {
    ++*p;
  }
  if (**p < '0' || **p > '9') {
    return false;  // Empty, sign, or non-numeric: the format is unsigned decimal.
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(*p, &end, 10);
  if (errno == ERANGE || v < 0) {
    return false;
  }
  *p = end;
  *value = v;
  return true;
}

}  // namespace

std::string SerializeRequestLog(const std::vector<RequestRecord>& records) {
  std::string out = "# realrate request log v1\n# arrival_ns bytes service_cycles\n";
  char line[96];
  for (const RequestRecord& r : records) {
    std::snprintf(line, sizeof(line), "%lld %lld %lld\n",
                  static_cast<long long>(r.arrival.nanos()),
                  static_cast<long long>(r.bytes),
                  static_cast<long long>(r.service_cycles));
    out += line;
  }
  return out;
}

bool ParseRequestLog(const std::string& text, std::vector<RequestRecord>* out,
                     std::string* error) {
  RR_EXPECTS(out != nullptr);
  out->clear();
  auto fail = [&](int line_no, const char* what) {
    if (error != nullptr) {
      *error = "request log line " + std::to_string(line_no) + ": " + what;
    }
    out->clear();
    return false;
  };

  int line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    ++line_no;
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;

    const char* p = line.c_str();
    while (*p == ' ' || *p == '\t') {
      ++p;
    }
    if (*p == '\0' || *p == '#') {
      continue;  // Blank or comment.
    }
    int64_t arrival_ns = 0;
    int64_t bytes = 0;
    int64_t cycles = 0;
    if (!ParseToken(&p, &arrival_ns) || !ParseToken(&p, &bytes) ||
        !ParseToken(&p, &cycles)) {
      return fail(line_no, "expected `arrival_ns bytes service_cycles`");
    }
    while (*p == ' ' || *p == '\t') {
      ++p;
    }
    if (*p != '\0') {
      return fail(line_no, "trailing garbage after the three fields");
    }
    if (bytes <= 0 || cycles <= 0) {
      return fail(line_no, "bytes and service_cycles must be positive");
    }
    if (!out->empty() && Duration::Nanos(arrival_ns) < out->back().arrival) {
      return fail(line_no, "arrivals must be non-decreasing");
    }
    out->push_back({Duration::Nanos(arrival_ns), bytes, cycles});
  }
  return true;
}

}  // namespace realrate
