// Open-loop arrival processes: deterministic, seedable request streams for the
// Flash-style web-server farm (workloads/web_farm.h) and the trace replayer
// (tools/trace_replay). Unlike the closed-loop producers elsewhere in workloads/,
// the streams generated here do not respond to backpressure — requests arrive when
// the outside world says they arrive, which is what makes overload storms, flash
// crowds, and sustained over-subscription expressible at all.
//
// Everything is a pure function of an ArrivalConfig (plain data, embeddable in a
// WorkloadSpec) through util/rng, so any stream is replayable bit-for-bit from its
// config alone, and a materialized stream round-trips exactly through the request
// log format (workloads/request_log.h): all fields are integral.
#ifndef REALRATE_WORKLOADS_ARRIVALS_H_
#define REALRATE_WORKLOADS_ARRIVALS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "util/time.h"
#include "util/types.h"

namespace realrate {

// One request in an open-loop stream. `arrival` is the offset from the start of the
// run; `bytes` is the request's size in its queues; `service_cycles` is the CPU the
// worker spends on it. Integral fields only, so a stream serializes losslessly.
struct RequestRecord {
  Duration arrival = Duration::Zero();
  int64_t bytes = 0;
  Cycles service_cycles = 0;

  friend bool operator==(const RequestRecord&, const RequestRecord&) = default;
};

// One step of a piecewise-constant load multiplier (a diurnal curve or a flash
// crowd): from `start` until the next segment's start, the base arrival rate is
// multiplied by `multiplier`. Before the first segment the multiplier is 1.0.
// Segments must be sorted ascending by start.
struct LoadSegment {
  Duration start = Duration::Zero();
  double multiplier = 1.0;
};

// The multiplier in effect at offset `t` (the last segment whose start is <= t).
double LoadMultiplierAt(const std::vector<LoadSegment>& curve, Duration t);

// Configuration for a generated stream. Plain data: WorkloadSpec embeds one per
// open-loop farm and the seeded generator draws every field.
struct ArrivalConfig {
  enum class Kind {
    // Memoryless request arrivals at requests_per_sec (load-curve modulated).
    kPoisson,
    // Session churn: sessions arrive Poisson at sessions_per_sec (load-curve
    // modulated); each issues a Pareto(session_alpha)-distributed number of
    // requests spaced exponential(mean_think) apart. Sessions overlap and end
    // independently — the heavy tail means a few sessions are very long.
    kParetoSessions,
  };

  Kind kind = Kind::kPoisson;
  uint64_t seed = 1;

  // kPoisson: base mean request rate before the load curve multiplies it.
  double requests_per_sec = 1000.0;

  // Request shape. With *_alpha == 0 every request is identical; with alpha > 0 the
  // value is Pareto(xm = base, alpha)-distributed, clamped to the max.
  int64_t request_bytes = 256;
  double bytes_alpha = 0.0;
  int64_t max_request_bytes = 4096;
  Cycles service_cycles = 200'000;
  double service_alpha = 0.0;
  Cycles max_service_cycles = 20'000'000;

  // kParetoSessions parameters.
  double sessions_per_sec = 100.0;
  double session_alpha = 1.5;
  double session_min_requests = 2.0;
  double session_max_requests = 256.0;
  Duration mean_think = Duration::Millis(5);

  // Piecewise-constant multiplier over the arrival (or session-arrival) rate.
  std::vector<LoadSegment> load_curve;

  // Hard cap on the materialized stream (a runaway config is a bug; the generator
  // never comes close).
  int64_t max_requests = 2'000'000;
};

// Materializes the stream for [0, horizon): arrivals sorted non-decreasing,
// deterministic for a given (config, horizon). Piecewise-constant rate modulation is
// exact (the exponential gap is redrawn at each segment boundary, valid by
// memorylessness), not thinned.
std::vector<RequestRecord> GenerateRequests(const ArrivalConfig& config, Duration horizon);

// The mean of the per-request service demand implied by `config` (accounting for the
// Pareto tail when service_alpha > 1; alpha <= 1 has no finite mean, so the clamp cap
// dominates and the scale is returned as a floor). Used to size offered-load sweeps.
double MeanServiceCycles(const ArrivalConfig& config);

// Feeds a materialized stream into a sink at each record's arrival time, from
// simulator (kernel) context — the analogue of ArrivalProcess for explicit records.
// The sink typically pushes into a listen queue and counts drops; it must not assume
// a thread context.
class RequestInjector {
 public:
  using Sink = std::function<void(const RequestRecord&)>;

  // `records` must be sorted non-decreasing by arrival (GenerateRequests and
  // ParseRequestLog both guarantee it).
  RequestInjector(Simulator& sim, std::vector<RequestRecord> records, Sink sink);

  // Begins injecting; runs until the stream or the simulation ends (or Stop()).
  void Start();
  void Stop() { running_ = false; }

  int64_t injected() const { return injected_; }
  int64_t total() const { return static_cast<int64_t>(records_.size()); }

 private:
  void ScheduleNext();

  Simulator& sim_;
  std::vector<RequestRecord> records_;
  Sink sink_;
  size_t next_ = 0;
  bool running_ = false;
  int64_t injected_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_WORKLOADS_ARRIVALS_H_
