#include "workloads/server.h"

#include <algorithm>

#include "task/thread.h"
#include "util/assert.h"

namespace realrate {

RequestServerWork::RequestServerWork(BoundedBuffer* in, int64_t request_bytes,
                                     Cycles cycles_per_request)
    : in_(in), request_bytes_(request_bytes), cycles_per_request_(cycles_per_request) {
  RR_EXPECTS(in != nullptr);
  RR_EXPECTS(request_bytes > 0);
  RR_EXPECTS(cycles_per_request > 0);
}

RunResult RequestServerWork::Run(TimePoint /*now*/, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    if (!request_in_hand_) {
      if (!in_->TryPopExact(request_bytes_)) {
        in_->WaitForData(self()->id());
        return RunResult::Blocked(used, in_->id());
      }
      request_in_hand_ = true;
      into_request_ = 0;
    }
    const Cycles step = std::min(cycles_per_request_ - into_request_, granted - used);
    used += step;
    into_request_ += step;
    if (into_request_ >= cycles_per_request_) {
      request_in_hand_ = false;
      ++served_;
      self()->AddProgress(1);
    }
  }
  return RunResult::Ran(used);
}

TypingProcess::TypingProcess(Simulator& sim, TtyPort* tty, const Config& config)
    : sim_(sim), tty_(tty), config_(config), rng_(config.seed) {
  RR_EXPECTS(tty != nullptr);
  RR_EXPECTS(config.mean_think.IsPositive());
}

void TypingProcess::Start() {
  RR_EXPECTS(!running_);
  running_ = true;
  ScheduleNext();
}

void TypingProcess::ScheduleNext() {
  const Duration gap =
      Duration::FromSeconds(rng_.NextExponential(config_.mean_think.ToSeconds()));
  sim_.ScheduleAfter(std::max(gap, Duration::Micros(100)), [this] {
    if (!running_) {
      return;
    }
    ++keystrokes_;
    tty_->PushInput(sim_.Now());
    ScheduleNext();
  });
}

}  // namespace realrate
