// Server workloads: "Servers are essentially the consumer of a bounded buffer, where
// the producer may or may not be on the same machine." Requests arrive through an
// ArrivalProcess (network RX) into a bounded socket buffer; the server thread consumes
// one request at a time.
#ifndef REALRATE_WORKLOADS_SERVER_H_
#define REALRATE_WORKLOADS_SERVER_H_

#include "queue/bounded_buffer.h"
#include "queue/tty.h"
#include "sim/simulator.h"
#include "task/work_model.h"
#include "util/rng.h"

namespace realrate {

// Pops fixed-size requests and spends `cycles_per_request` on each. Blocks when no
// complete request is buffered.
class RequestServerWork : public WorkModel {
 public:
  RequestServerWork(BoundedBuffer* in, int64_t request_bytes, Cycles cycles_per_request);

  RunResult Run(TimePoint now, Cycles granted) override;

  int64_t requests_served() const { return served_; }

 private:
  BoundedBuffer* const in_;
  const int64_t request_bytes_;
  const Cycles cycles_per_request_;
  Cycles into_request_ = 0;
  bool request_in_hand_ = false;
  int64_t served_ = 0;
};

// A simulated human: injects tty input events at exponentially distributed intervals
// (think time). Drives InteractiveWork / SpinWaitWork experiments.
class TypingProcess {
 public:
  struct Config {
    Duration mean_think = Duration::Millis(500);
    uint64_t seed = 7;
  };

  TypingProcess(Simulator& sim, TtyPort* tty, const Config& config);

  void Start();
  void Stop() { running_ = false; }
  int64_t keystrokes() const { return keystrokes_; }

 private:
  void ScheduleNext();

  Simulator& sim_;
  TtyPort* const tty_;
  Config config_;
  Rng rng_;
  bool running_ = false;
  int64_t keystrokes_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_WORKLOADS_SERVER_H_
