#include "workloads/producer_consumer.h"

#include <algorithm>

#include "task/thread.h"
#include "util/assert.h"

namespace realrate {

ProducerWork::ProducerWork(BoundedBuffer* out, Cycles cycles_per_item,
                           RateSchedule bytes_per_item)
    : out_(out), cycles_per_item_(cycles_per_item), bytes_per_item_(std::move(bytes_per_item)) {
  RR_EXPECTS(out != nullptr);
  RR_EXPECTS(cycles_per_item > 0);
}

RunResult ProducerWork::Run(TimePoint now, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    const Cycles needed = cycles_per_item_ - into_item_;
    const Cycles step = std::min(needed, granted - used);
    used += step;
    into_item_ += step;
    if (into_item_ < cycles_per_item_) {
      break;  // Slice ended mid-item; resume next slice.
    }
    // Item complete: enqueue it.
    const auto bytes = std::max<int64_t>(1, static_cast<int64_t>(bytes_per_item_.ValueAt(now)));
    if (!out_->TryPush(bytes)) {
      // Queue full: block until the consumer makes room. The finished item stays
      // pending (into_item_ keeps its value) and is re-pushed on wake.
      into_item_ = cycles_per_item_;
      out_->WaitForSpace(self()->id());
      return RunResult::Blocked(used, out_->id());
    }
    into_item_ = 0;
    ++items_;
    self()->AddProgress(bytes);
  }
  return RunResult::Ran(used);
}

PacedProducerWork::PacedProducerWork(BoundedBuffer* out, int64_t item_bytes,
                                     Duration interval, Cycles cycles_per_item)
    : out_(out), item_bytes_(item_bytes), interval_(interval),
      cycles_per_item_(cycles_per_item) {
  RR_EXPECTS(out != nullptr);
  RR_EXPECTS(item_bytes > 0);
  RR_EXPECTS(interval.IsPositive());
  RR_EXPECTS(cycles_per_item > 0);
}

RunResult PacedProducerWork::Run(TimePoint now, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    if (now < next_item_time_) {
      return RunResult::Sleeping(used, next_item_time_);
    }
    const Cycles step = std::min(cycles_per_item_ - into_item_, granted - used);
    used += step;
    into_item_ += step;
    if (into_item_ < cycles_per_item_) {
      break;  // Slice ended mid-item.
    }
    into_item_ = 0;
    if (out_->TryPush(item_bytes_)) {
      ++items_;
      self()->AddProgress(item_bytes_);
    } else {
      ++dropped_;  // Overrun: the device cannot wait.
    }
    next_item_time_ = std::max(next_item_time_ + interval_, now);
  }
  return RunResult::Ran(used);
}

ConsumerWork::ConsumerWork(BoundedBuffer* in, Cycles cycles_per_byte)
    : in_(in), cycles_per_byte_(cycles_per_byte) {
  RR_EXPECTS(in != nullptr);
  RR_EXPECTS(cycles_per_byte > 0);
}

RunResult ConsumerWork::Run(TimePoint /*now*/, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    const Cycles affordable_bytes = (granted - used) / cycles_per_byte_;
    if (affordable_bytes == 0) {
      // Less than one byte's worth of cycles left; burn the remainder as partial work.
      used = granted;
      break;
    }
    const int64_t got = in_->TryPop(affordable_bytes);
    if (got == 0) {
      in_->WaitForData(self()->id());
      return RunResult::Blocked(used, in_->id());
    }
    used += got * cycles_per_byte_;
    bytes_ += got;
    self()->AddProgress(got);
  }
  return RunResult::Ran(used);
}

PipelineStageWork::PipelineStageWork(BoundedBuffer* in, BoundedBuffer* out,
                                     Cycles cycles_per_byte, double amplification,
                                     int64_t chunk_bytes)
    : in_(in),
      out_(out),
      cycles_per_byte_(cycles_per_byte),
      amplification_(amplification),
      chunk_bytes_(chunk_bytes) {
  RR_EXPECTS(in != nullptr);
  RR_EXPECTS(out != nullptr);
  RR_EXPECTS(cycles_per_byte > 0);
  RR_EXPECTS(amplification > 0);
  RR_EXPECTS(chunk_bytes > 0);
}

RunResult PipelineStageWork::Run(TimePoint /*now*/, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    // Flush any processed output waiting for space downstream.
    if (pending_out_ > 0) {
      if (!out_->TryPush(pending_out_)) {
        out_->WaitForSpace(self()->id());
        return RunResult::Blocked(used, out_->id());
      }
      pending_out_ = 0;
    }
    // Acquire input for the current chunk.
    if (chunk_in_flight_ == 0) {
      chunk_in_flight_ = in_->TryPop(chunk_bytes_);
      if (chunk_in_flight_ == 0) {
        in_->WaitForData(self()->id());
        return RunResult::Blocked(used, in_->id());
      }
      into_chunk_ = 0;
    }
    // Process the chunk.
    const Cycles chunk_cost = chunk_in_flight_ * cycles_per_byte_;
    const Cycles step = std::min(chunk_cost - into_chunk_, granted - used);
    used += step;
    into_chunk_ += step;
    if (into_chunk_ < chunk_cost) {
      break;  // Mid-chunk; resume next slice.
    }
    bytes_ += chunk_in_flight_;
    self()->AddProgress(chunk_in_flight_);
    pending_out_ =
        std::max<int64_t>(1, static_cast<int64_t>(chunk_in_flight_ * amplification_));
    chunk_in_flight_ = 0;
  }
  return RunResult::Ran(used);
}

}  // namespace realrate
