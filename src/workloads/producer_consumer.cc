#include "workloads/producer_consumer.h"

#include <algorithm>

#include "task/thread.h"
#include "util/assert.h"

namespace realrate {

ProducerWork::ProducerWork(BoundedBuffer* out, Cycles cycles_per_item,
                           RateSchedule bytes_per_item)
    : out_(out), cycles_per_item_(cycles_per_item), bytes_per_item_(std::move(bytes_per_item)) {
  RR_EXPECTS(out != nullptr);
  RR_EXPECTS(cycles_per_item > 0);
}

RunResult ProducerWork::Run(TimePoint now, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    const Cycles needed = cycles_per_item_ - into_item_;
    const Cycles step = std::min(needed, granted - used);
    used += step;
    into_item_ += step;
    if (into_item_ < cycles_per_item_) {
      break;  // Slice ended mid-item; resume next slice.
    }
    // Item complete: enqueue it.
    const auto bytes = std::max<int64_t>(1, static_cast<int64_t>(bytes_per_item_.ValueAt(now)));
    if (!out_->TryPush(bytes)) {
      // Queue full: block until the consumer makes room. The finished item stays
      // pending (into_item_ keeps its value) and is re-pushed on wake.
      into_item_ = cycles_per_item_;
      out_->WaitForSpace(self()->id());
      return RunResult::Blocked(used, out_->id());
    }
    into_item_ = 0;
    ++items_;
    self()->AddProgress(bytes);
  }
  return RunResult::Ran(used);
}

bool ProducerWork::PlanRoundQueueOps(TimePoint now, Cycles budget,
                                     std::vector<RoundQueueOp>* ops) {
  // Item j is pushed only if its cumulative completion cost fits the budget:
  // j * cycles_per_item - into_item <= budget. A previously blocked producer re-enters
  // with into_item == cycles_per_item (the pending item re-pushes at zero cost); the
  // same formula covers it. Item size is schedule(now), constant across this tick.
  const int64_t items = (into_item_ + budget) / cycles_per_item_;
  if (items > 0) {
    const auto bytes =
        std::max<int64_t>(1, static_cast<int64_t>(bytes_per_item_.ValueAt(now)));
    ops->push_back({out_, items * bytes, 0});
  }
  return true;
}

PacedProducerWork::PacedProducerWork(BoundedBuffer* out, int64_t item_bytes,
                                     Duration interval, Cycles cycles_per_item)
    : out_(out), item_bytes_(item_bytes), interval_(interval),
      cycles_per_item_(cycles_per_item) {
  RR_EXPECTS(out != nullptr);
  RR_EXPECTS(item_bytes > 0);
  RR_EXPECTS(interval.IsPositive());
  RR_EXPECTS(cycles_per_item > 0);
}

RunResult PacedProducerWork::Run(TimePoint now, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    if (now < next_item_time_) {
      return RunResult::Sleeping(used, next_item_time_);
    }
    const Cycles step = std::min(cycles_per_item_ - into_item_, granted - used);
    used += step;
    into_item_ += step;
    if (into_item_ < cycles_per_item_) {
      break;  // Slice ended mid-item.
    }
    into_item_ = 0;
    if (out_->TryPush(item_bytes_)) {
      ++items_;
      self()->AddProgress(item_bytes_);
    } else {
      ++dropped_;  // Overrun: the device cannot wait.
    }
    next_item_time_ = std::max(next_item_time_ + interval_, now);
  }
  return RunResult::Ran(used);
}

ConsumerWork::ConsumerWork(BoundedBuffer* in, Cycles cycles_per_byte)
    : in_(in), cycles_per_byte_(cycles_per_byte) {
  RR_EXPECTS(in != nullptr);
  RR_EXPECTS(cycles_per_byte > 0);
}

RunResult ConsumerWork::Run(TimePoint /*now*/, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    const Cycles affordable_bytes = (granted - used) / cycles_per_byte_;
    if (affordable_bytes == 0) {
      // Less than one byte's worth of cycles left; burn the remainder as partial work.
      used = granted;
      break;
    }
    const int64_t got = in_->TryPop(affordable_bytes);
    if (got == 0) {
      in_->WaitForData(self()->id());
      return RunResult::Blocked(used, in_->id());
    }
    used += got * cycles_per_byte_;
    bytes_ += got;
    self()->AddProgress(got);
  }
  return RunResult::Ran(used);
}

bool ConsumerWork::PlanRoundQueueOps(TimePoint /*now*/, Cycles budget,
                                     std::vector<RoundQueueOp>* ops) {
  // Each pop requests floor(remaining / cycles_per_byte) bytes, so total popped bytes
  // never exceed floor(budget / cycles_per_byte) (floor is superadditive). The gate's
  // `pop bound <= fill` admission check then guarantees every pop — in either engine —
  // returns its full request: fill only grows from other endpoints mid-round, and this
  // thread is the queue's sole popper.
  const int64_t bound = budget / cycles_per_byte_;
  if (bound > 0) {
    ops->push_back({in_, 0, bound});
  }
  return true;
}

PipelineStageWork::PipelineStageWork(BoundedBuffer* in, BoundedBuffer* out,
                                     Cycles cycles_per_byte, double amplification,
                                     int64_t chunk_bytes)
    : in_(in),
      out_(out),
      cycles_per_byte_(cycles_per_byte),
      amplification_(amplification),
      chunk_bytes_(chunk_bytes) {
  RR_EXPECTS(in != nullptr);
  RR_EXPECTS(out != nullptr);
  RR_EXPECTS(cycles_per_byte > 0);
  RR_EXPECTS(amplification > 0);
  RR_EXPECTS(chunk_bytes > 0);
}

RunResult PipelineStageWork::Run(TimePoint /*now*/, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    // Flush any processed output waiting for space downstream.
    if (pending_out_ > 0) {
      if (!out_->TryPush(pending_out_)) {
        out_->WaitForSpace(self()->id());
        return RunResult::Blocked(used, out_->id());
      }
      pending_out_ = 0;
    }
    // Acquire input for the current chunk.
    if (chunk_in_flight_ == 0) {
      chunk_in_flight_ = in_->TryPop(chunk_bytes_);
      if (chunk_in_flight_ == 0) {
        in_->WaitForData(self()->id());
        return RunResult::Blocked(used, in_->id());
      }
      into_chunk_ = 0;
    }
    // Process the chunk.
    const Cycles chunk_cost = chunk_in_flight_ * cycles_per_byte_;
    const Cycles step = std::min(chunk_cost - into_chunk_, granted - used);
    used += step;
    into_chunk_ += step;
    if (into_chunk_ < chunk_cost) {
      break;  // Mid-chunk; resume next slice.
    }
    bytes_ += chunk_in_flight_;
    self()->AddProgress(chunk_in_flight_);
    pending_out_ =
        std::max<int64_t>(1, static_cast<int64_t>(chunk_in_flight_ * amplification_));
    chunk_in_flight_ = 0;
  }
  return RunResult::Ran(used);
}

bool PipelineStageWork::PlanRoundQueueOps(TimePoint /*now*/, Cycles budget,
                                          std::vector<RoundQueueOp>* ops) {
  // Replay the slice machine symbolically. Flushing pending output and popping are
  // free; only processing burns cycles. Pop #k (k >= 1 new pops this round) is issued
  // at cumulative cost rem + (k-1) * chunk_cost, where rem finishes the in-flight
  // chunk, and is reachable iff that cost is strictly below the budget.
  const Cycles chunk_cost = chunk_bytes_ * cycles_per_byte_;
  const Cycles rem =
      chunk_in_flight_ > 0 ? chunk_in_flight_ * cycles_per_byte_ - into_chunk_ : 0;
  int64_t new_pops = 0;
  if (budget > rem) {
    new_pops = 1 + (budget - rem - 1) / chunk_cost;
  }
  // Data limit: every reachable pop must find a full chunk in the ROUND-START fill.
  // The single-popper rule makes fill monotone non-decreasing apart from our own
  // pops, so start-fill coverage implies full chunks at every pop in both engines.
  // Same-round upstream production could feed the sequential engine beyond that —
  // so an uncovered pop means the engines could diverge: fail, listing `in_` for
  // the gate's failure cache.
  if (new_pops * chunk_bytes_ > in_->fill()) {
    ops->push_back({in_, 0, 0});
    return false;
  }
  // Push bound: pending output flushes first, the in-flight chunk's output lands if
  // it can finish, and each completed new chunk emits its amplified size. Completion
  // at exactly the budget still pushes (the flush is free on the next iteration).
  int64_t push_bound = pending_out_;
  if (chunk_in_flight_ > 0 && rem <= budget) {
    push_bound += std::max<int64_t>(
        1, static_cast<int64_t>(chunk_in_flight_ * amplification_));
  }
  int64_t completed_new = budget >= rem ? (budget - rem) / chunk_cost : 0;
  completed_new = std::min(completed_new, new_pops);
  push_bound += completed_new *
                std::max<int64_t>(1, static_cast<int64_t>(chunk_bytes_ * amplification_));
  if (new_pops > 0) {
    ops->push_back({in_, 0, new_pops * chunk_bytes_});
  }
  if (push_bound > 0) {
    ops->push_back({out_, push_bound, 0});
  }
  return true;
}

}  // namespace realrate
