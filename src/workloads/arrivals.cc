#include "workloads/arrivals.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/rng.h"

namespace realrate {

namespace {

// The first segment boundary strictly after `t`, or `horizon` if none. Segments are
// few (a diurnal curve has a handful of steps), so a linear scan is fine.
Duration NextBoundaryAfter(const std::vector<LoadSegment>& curve, Duration t,
                           Duration horizon) {
  for (const LoadSegment& s : curve) {
    if (s.start > t && s.start < horizon) {
      return s.start;
    }
  }
  return horizon;
}

// Appends the arrival offsets of a Poisson process with base rate `per_sec`,
// modulated by the piecewise-constant curve. Exact (no thinning): within a segment
// the rate is constant so exponential gaps are exact, and at each segment boundary
// the in-flight gap is discarded and redrawn at the new rate — valid because the
// exponential is memoryless, deterministic because the draw sequence is a pure
// function of (seed, curve, horizon).
void AppendPoissonTimes(Rng& rng, double per_sec, const std::vector<LoadSegment>& curve,
                        Duration horizon, int64_t max_count, std::vector<Duration>& out) {
  RR_EXPECTS(per_sec > 0);
  Duration t = Duration::Zero();
  while (static_cast<int64_t>(out.size()) < max_count) {
    const double rate = per_sec * LoadMultiplierAt(curve, t);
    if (rate <= 0.0) {
      // Dead zone (multiplier 0): skip to the next boundary, if any remains.
      const Duration boundary = NextBoundaryAfter(curve, t, horizon);
      if (boundary >= horizon) {
        return;
      }
      t = boundary;
      continue;
    }
    const double gap_s = rng.NextExponential(1.0 / rate);
    const Duration gap =
        Duration::Nanos(std::max<int64_t>(1, static_cast<int64_t>(std::llround(gap_s * 1e9))));
    const Duration boundary = NextBoundaryAfter(curve, t, horizon);
    if (t + gap >= boundary) {
      if (boundary >= horizon) {
        return;
      }
      t = boundary;
      continue;
    }
    t = t + gap;
    out.push_back(t);
  }
}

int64_t DrawSize(Rng& rng, int64_t base, double alpha, int64_t cap) {
  if (alpha <= 0.0) {
    return std::min(base, cap);
  }
  const double v = rng.NextPareto(static_cast<double>(base), alpha);
  const auto drawn = static_cast<int64_t>(std::llround(v));
  return std::clamp<int64_t>(drawn, 1, cap);
}

}  // namespace

double LoadMultiplierAt(const std::vector<LoadSegment>& curve, Duration t) {
  double multiplier = 1.0;
  for (const LoadSegment& s : curve) {
    if (s.start <= t) {
      multiplier = s.multiplier;
    } else {
      break;
    }
  }
  return multiplier;
}

std::vector<RequestRecord> GenerateRequests(const ArrivalConfig& config, Duration horizon) {
  RR_EXPECTS(horizon.IsPositive());
  RR_EXPECTS(config.request_bytes > 0);
  RR_EXPECTS(config.service_cycles > 0);
  RR_EXPECTS(config.max_requests > 0);
  Rng rng(config.seed);
  std::vector<RequestRecord> records;

  auto emit = [&](Duration arrival) {
    RequestRecord r;
    r.arrival = arrival;
    r.bytes = DrawSize(rng, config.request_bytes, config.bytes_alpha, config.max_request_bytes);
    r.service_cycles =
        DrawSize(rng, config.service_cycles, config.service_alpha, config.max_service_cycles);
    records.push_back(r);
  };

  switch (config.kind) {
    case ArrivalConfig::Kind::kPoisson: {
      std::vector<Duration> times;
      AppendPoissonTimes(rng, config.requests_per_sec, config.load_curve, horizon,
                         config.max_requests, times);
      for (const Duration t : times) {
        emit(t);
      }
      break;
    }
    case ArrivalConfig::Kind::kParetoSessions: {
      RR_EXPECTS(config.sessions_per_sec > 0);
      RR_EXPECTS(config.session_min_requests >= 1.0);
      RR_EXPECTS(config.session_max_requests >= config.session_min_requests);
      RR_EXPECTS(config.mean_think.IsPositive());
      std::vector<Duration> starts;
      AppendPoissonTimes(rng, config.sessions_per_sec, config.load_curve, horizon,
                         config.max_requests, starts);
      for (const Duration start : starts) {
        if (static_cast<int64_t>(records.size()) >= config.max_requests) {
          break;
        }
        const double drawn =
            rng.NextPareto(config.session_min_requests, config.session_alpha);
        const auto count = static_cast<int64_t>(
            std::floor(std::min(drawn, config.session_max_requests)));
        Duration at = start;
        for (int64_t i = 0; i < count && at < horizon; ++i) {
          if (static_cast<int64_t>(records.size()) >= config.max_requests) {
            break;
          }
          emit(at);
          const double think_s = rng.NextExponential(config.mean_think.ToSeconds());
          at += Duration::Nanos(std::max<int64_t>(
              1, static_cast<int64_t>(std::llround(think_s * 1e9))));
        }
      }
      // Sessions interleave; restore global arrival order. stable_sort keeps the
      // (deterministic) generation order among simultaneous arrivals.
      std::stable_sort(records.begin(), records.end(),
                       [](const RequestRecord& a, const RequestRecord& b) {
                         return a.arrival < b.arrival;
                       });
      break;
    }
  }
  return records;
}

double MeanServiceCycles(const ArrivalConfig& config) {
  const auto scale = static_cast<double>(config.service_cycles);
  if (config.service_alpha <= 0.0) {
    return scale;
  }
  if (config.service_alpha > 1.0) {
    // Pareto mean; the clamp at max_service_cycles only trims the extreme tail.
    return std::min(scale * config.service_alpha / (config.service_alpha - 1.0),
                    static_cast<double>(config.max_service_cycles));
  }
  // alpha <= 1: no finite mean; the scale is a floor, which is all a sweep needs.
  return scale;
}

RequestInjector::RequestInjector(Simulator& sim, std::vector<RequestRecord> records,
                                 Sink sink)
    : sim_(sim), records_(std::move(records)), sink_(std::move(sink)) {
  RR_EXPECTS(sink_ != nullptr);
  for (size_t i = 1; i < records_.size(); ++i) {
    RR_EXPECTS(records_[i - 1].arrival <= records_[i].arrival);
  }
}

void RequestInjector::Start() {
  RR_EXPECTS(!running_);
  running_ = true;
  ScheduleNext();
}

void RequestInjector::ScheduleNext() {
  if (next_ >= records_.size()) {
    return;
  }
  // Call Start() before the run begins: arrivals are offsets from Origin and must
  // not land in the simulator's past.
  sim_.ScheduleAt(TimePoint::Origin() + records_[next_].arrival, [this] {
    if (!running_) {
      return;
    }
    const RequestRecord& r = records_[next_];
    ++next_;
    ++injected_;
    sink_(r);
    ScheduleNext();
  });
}

}  // namespace realrate
