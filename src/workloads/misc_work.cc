#include "workloads/misc_work.h"

#include <algorithm>
#include <limits>

#include "task/thread.h"
#include "util/assert.h"

namespace realrate {

RunResult IdleWork::Run(TimePoint now, Cycles /*granted*/) {
  return RunResult::Sleeping(0, now + Duration::Seconds(3600 * 24));
}

CpuHogWork::CpuHogWork(Cycles cycles_per_key) : cycles_per_key_(cycles_per_key) {
  RR_EXPECTS(cycles_per_key > 0);
}

RunResult CpuHogWork::Run(TimePoint /*now*/, Cycles granted) {
  into_key_ += granted;
  const int64_t keys = into_key_ / cycles_per_key_;
  into_key_ %= cycles_per_key_;
  self()->AddProgress(keys);
  return RunResult::Ran(granted);
}

RunResult DelayedHogWork::Run(TimePoint now, Cycles granted) {
  if (now < start_at_) {
    return RunResult::Sleeping(0, start_at_);
  }
  self()->AddProgress(granted);
  return RunResult::Ran(granted);
}

Cycles CpuHogWork::RoundLocalCycles(TimePoint /*now*/) const {
  return std::numeric_limits<Cycles>::max();
}

Cycles DelayedHogWork::RoundLocalCycles(TimePoint now) const {
  return now >= start_at_ ? std::numeric_limits<Cycles>::max() : 0;
}

SpinWaitWork::SpinWaitWork(TtyPort* tty) : tty_(tty) { RR_EXPECTS(tty != nullptr); }

RunResult SpinWaitWork::Run(TimePoint now, Cycles granted) {
  // Polls the tty but burns the entire slice regardless — a spin-wait.
  while (tty_->PopInput(now)) {
    ++serviced_;
    self()->AddProgress(1);
  }
  return RunResult::Ran(granted);
}

InteractiveWork::InteractiveWork(TtyPort* tty, Cycles cycles_per_event)
    : tty_(tty), cycles_per_event_(cycles_per_event) {
  RR_EXPECTS(tty != nullptr);
  RR_EXPECTS(cycles_per_event > 0);
}

RunResult InteractiveWork::Run(TimePoint now, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    if (!event_in_hand_) {
      if (!tty_->PopInput(now)) {
        tty_->WaitForInput(self()->id());
        return RunResult::Blocked(used, /*tag=*/-10);
      }
      event_in_hand_ = true;
      into_event_ = 0;
    }
    const Cycles step = std::min(cycles_per_event_ - into_event_, granted - used);
    used += step;
    into_event_ += step;
    if (into_event_ >= cycles_per_event_) {
      event_in_hand_ = false;
      ++serviced_;
      self()->AddProgress(1);
    }
  }
  return RunResult::Ran(used);
}

LockWork::LockWork(SimMutex* mutex, Cycles hold_cycles, Duration think_sleep)
    : mutex_(mutex), hold_cycles_(hold_cycles), think_sleep_(think_sleep) {
  RR_EXPECTS(mutex != nullptr);
  RR_EXPECTS(hold_cycles > 0);
  RR_EXPECTS(think_sleep.IsPositive());
}

void LockWork::OnWake(TimePoint now) {
  if (waiting_) {
    // SimMutex::Unlock hands ownership directly to the first waiter before waking it.
    waiting_ = false;
    lock_granted_on_wake_ = true;
    waits_.push_back((now - wait_start_).ToSeconds());
    wait_starts_.push_back(wait_start_);
  }
}

RunResult LockWork::Run(TimePoint now, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    switch (phase_) {
      case Phase::kAcquiring: {
        bool acquired = false;
        if (lock_granted_on_wake_) {
          lock_granted_on_wake_ = false;
          acquired = true;
        } else if (mutex_->TryLock(self()->id())) {
          waits_.push_back(0.0);
          wait_starts_.push_back(now);
          acquired = true;
        }
        if (!acquired) {
          waiting_ = true;
          wait_start_ = now;
          mutex_->WaitFor(self()->id());
          return RunResult::Blocked(used, /*tag=*/-20);
        }
        ++acquisitions_;
        phase_ = Phase::kHolding;
        into_phase_ = 0;
        break;
      }
      case Phase::kHolding: {
        const Cycles step = std::min(hold_cycles_ - into_phase_, granted - used);
        used += step;
        into_phase_ += step;
        if (into_phase_ >= hold_cycles_) {
          mutex_->Unlock(self()->id());
          self()->AddProgress(1);
          phase_ = Phase::kAcquiring;
          into_phase_ = 0;
          return RunResult::Sleeping(used, now + think_sleep_);
        }
        break;
      }
    }
  }
  return RunResult::Ran(used);
}

double LockWork::MaxWaitSeconds() const {
  double max_wait = 0.0;
  for (double w : waits_) {
    max_wait = std::max(max_wait, w);
  }
  return max_wait;
}

double LockWork::MaxWaitSecondsAfter(TimePoint after) const {
  double max_wait = 0.0;
  for (size_t i = 0; i < waits_.size(); ++i) {
    if (wait_starts_[i] >= after) {
      max_wait = std::max(max_wait, waits_[i]);
    }
  }
  return max_wait;
}

ArrivalProcess::ArrivalProcess(Simulator& sim, BoundedBuffer* queue, const Config& config)
    : sim_(sim), queue_(queue), config_(config), rng_(config.seed) {
  RR_EXPECTS(queue != nullptr);
  RR_EXPECTS(config.bytes_per_arrival > 0);
  RR_EXPECTS(config.mean_interarrival.IsPositive());
}

void ArrivalProcess::Start() {
  RR_EXPECTS(!running_);
  running_ = true;
  ScheduleNext();
}

void ArrivalProcess::ScheduleNext() {
  const Duration gap =
      config_.poisson
          ? Duration::FromSeconds(rng_.NextExponential(config_.mean_interarrival.ToSeconds()))
          : config_.mean_interarrival;
  sim_.ScheduleAfter(std::max(gap, Duration::Micros(1)), [this] {
    if (!running_) {
      return;
    }
    ++arrivals_;
    if (!queue_->TryPush(config_.bytes_per_arrival)) {
      // The rx ring overflowed: the packet/block is dropped, exactly what happens when
      // a consumer cannot keep up with an I/O producer.
      dropped_bytes_ += config_.bytes_per_arrival;
    }
    ScheduleNext();
  });
}

}  // namespace realrate
