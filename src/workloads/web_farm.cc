#include "workloads/web_farm.h"

#include <algorithm>
#include <utility>

#include "exp/system.h"
#include "task/thread.h"
#include "util/assert.h"

namespace realrate {

AcceptorWork::AcceptorWork(RequestStream* listen, std::vector<RequestStream*> workers,
                           Cycles accept_cycles)
    : listen_(listen), workers_(std::move(workers)), accept_cycles_(accept_cycles) {
  RR_EXPECTS(listen != nullptr);
  RR_EXPECTS(!workers_.empty());
  RR_EXPECTS(accept_cycles > 0);
}

void AcceptorWork::Dispatch() {
  // Strict round-robin with overflow scan: the cursor advances one worker per
  // request; a full target is skipped in favor of the next with room; when every
  // worker queue is full, the request is dropped (admission control — the farm's
  // observable response to sustained over-subscription).
  const size_t n = workers_.size();
  const size_t start = rr_;
  rr_ = (rr_ + 1) % n;
  for (size_t i = 0; i < n; ++i) {
    RequestStream* w = workers_[(start + i) % n];
    if (w->buffer->TryPush(current_.bytes)) {
      if (staging_) {
        // Staked round: the worker owning w may be running on another core right
        // now. Defer the side-band append to the barrier flush.
        staged_dispatches_.emplace_back(w, current_);
      } else {
        w->meta.push_back(current_);
      }
      ++accepted_;
      self()->AddProgress(1);
      return;
    }
  }
  ++dropped_;
}

bool AcceptorWork::PlanRoundQueueOps(TimePoint /*now*/, Cycles budget,
                                     std::vector<RoundQueueOp>* ops) {
  const size_t n = workers_.size();
  // request_in_hand_ implies into_accept_ < accept_cycles_ (a finished accept
  // dispatches within its own iteration), so the in-hand remainder r is positive
  // exactly when a request is in hand.
  const Cycles r = request_in_hand_ ? accept_cycles_ - into_accept_ : 0;
  const int64_t new_pops = budget > r ? 1 + (budget - r - 1) / accept_cycles_ : 0;
  if (new_pops > static_cast<int64_t>(listen_->meta.size())) {
    ops->push_back({listen_->buffer, 0, 0});
    return false;  // Data-limited: the budget outruns the round-start backlog.
  }
  int64_t pop_bytes = 0;
  for (int64_t k = 0; k < new_pops; ++k) {
    pop_bytes += listen_->meta[static_cast<size_t>(k)].bytes;
  }
  if (pop_bytes > 0) {
    ops->push_back({listen_->buffer, 0, pop_bytes});
  }
  // Dispatch d targets workers_[(rr_ + d) % n]: the gate's per-queue headroom check
  // means a planned push never fails, so the cursor advances without skips and the
  // actual dispatches form a prefix of this planned sequence. The in-hand request
  // completes iff r fits the budget; popped request #k completes at r + k * accept.
  per_worker_scratch_.assign(n, 0);
  int64_t d = 0;
  if (request_in_hand_ && r <= budget) {
    per_worker_scratch_[(rr_ + static_cast<size_t>(d)) % n] += current_.bytes;
    ++d;
  }
  int64_t completed_new = budget >= r ? (budget - r) / accept_cycles_ : 0;
  completed_new = std::min(completed_new, new_pops);
  for (int64_t k = 0; k < completed_new; ++k) {
    per_worker_scratch_[(rr_ + static_cast<size_t>(d)) % n] +=
        listen_->meta[static_cast<size_t>(k)].bytes;
    ++d;
  }
  for (size_t i = 0; i < n; ++i) {
    if (per_worker_scratch_[i] > 0) {
      ops->push_back({workers_[i]->buffer, per_worker_scratch_[i], 0});
    }
  }
  return true;
}

void AcceptorWork::FlushRoundEffects() {
  staging_ = false;
  for (auto& [stream, request] : staged_dispatches_) {
    stream->meta.push_back(request);
  }
  staged_dispatches_.clear();
}

RunResult AcceptorWork::Run(TimePoint /*now*/, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    if (!request_in_hand_) {
      if (listen_->meta.empty()) {
        listen_->buffer->WaitForData(self()->id());
        return RunResult::Blocked(used, listen_->buffer->id());
      }
      current_ = listen_->meta.front();
      // The side-band FIFO and the byte queue move in lock step (single-threaded
      // simulation), so the exact pop cannot fail while meta is non-empty.
      RR_CHECK(listen_->buffer->TryPopExact(current_.bytes));
      listen_->meta.pop_front();
      request_in_hand_ = true;
      into_accept_ = 0;
    }
    const Cycles step = std::min(accept_cycles_ - into_accept_, granted - used);
    used += step;
    into_accept_ += step;
    if (into_accept_ >= accept_cycles_) {
      Dispatch();
      request_in_hand_ = false;
    }
  }
  return RunResult::Ran(used);
}

WebWorkerWork::WebWorkerWork(RequestStream* in, double clock_hz, SampleSet* latencies)
    : in_(in), clock_hz_(clock_hz), latencies_(latencies) {
  RR_EXPECTS(in != nullptr);
  RR_EXPECTS(clock_hz > 0);
  RR_EXPECTS(latencies != nullptr);
}

RunResult WebWorkerWork::Run(TimePoint now, Cycles granted) {
  Cycles used = 0;
  while (used < granted) {
    if (!request_in_hand_) {
      if (in_->meta.empty()) {
        in_->buffer->WaitForData(self()->id());
        return RunResult::Blocked(used, in_->buffer->id());
      }
      current_ = in_->meta.front();
      RR_CHECK(in_->buffer->TryPopExact(current_.bytes));
      in_->meta.pop_front();
      request_in_hand_ = true;
      into_request_ = 0;
    }
    const Cycles step = std::min(current_.service_cycles - into_request_, granted - used);
    used += step;
    into_request_ += step;
    if (into_request_ >= current_.service_cycles) {
      // Completion time = slice start + cycles consumed so far this slice. `now` is
      // the dispatch time of this grant, so the sub-slice offset keeps latency exact
      // rather than quantized to the dispatch tick.
      const double completion_s = (now - TimePoint::Origin()).ToSeconds() +
                                  static_cast<double>(used) / clock_hz_;
      const double latency_s = completion_s - current_.arrival.ToSeconds();
      if (staging_) {
        // Staked round: the SampleSet is shared farm-wide. Stage and flush at the
        // barrier; the value itself is identical (now/used are deterministic).
        staged_latencies_.push_back(latency_s);
      } else {
        latencies_->Add(latency_s);
      }
      request_in_hand_ = false;
      ++served_;
      self()->AddProgress(1);
    }
  }
  return RunResult::Ran(used);
}

bool WebWorkerWork::PlanRoundQueueOps(TimePoint /*now*/, Cycles budget,
                                      std::vector<RoundQueueOp>* ops) {
  // Cumulative cost before pop #j = in-hand remainder + service of entries 0..j-1.
  // A pop is issued whenever that cost is strictly under the budget (starting a
  // request is itself free). Zero-service entries keep `spent` flat, so they drain
  // until the backlog runs out and the plan correctly fails as data-limited.
  Cycles spent = request_in_hand_ ? current_.service_cycles - into_request_ : 0;
  int64_t pop_bytes = 0;
  size_t j = 0;
  while (spent < budget) {
    if (j >= in_->meta.size()) {
      ops->push_back({in_->buffer, 0, 0});
      return false;  // Data-limited: the budget outruns the round-start backlog.
    }
    pop_bytes += in_->meta[j].bytes;
    spent += in_->meta[j].service_cycles;
    ++j;
  }
  if (pop_bytes > 0) {
    ops->push_back({in_->buffer, 0, pop_bytes});
  }
  return true;
}

void WebWorkerWork::FlushRoundEffects() {
  staging_ = false;
  for (double latency_s : staged_latencies_) {
    latencies_->Add(latency_s);
  }
  staged_latencies_.clear();
}

int64_t WebFarmInstance::accepted() const {
  int64_t total = 0;
  for (const AcceptorWork* a : acceptors) {
    total += a->accepted();
  }
  return total;
}

int64_t WebFarmInstance::dispatch_drops() const {
  int64_t total = 0;
  for (const AcceptorWork* a : acceptors) {
    total += a->dropped();
  }
  return total;
}

int64_t WebFarmInstance::served() const {
  int64_t total = 0;
  for (const WebWorkerWork* w : workers) {
    total += w->served();
  }
  return total;
}

std::unique_ptr<WebFarmInstance> BuildWebFarm(const WebFarmBuild& build, Simulator& sim,
                                              ThreadRegistry& threads,
                                              QueueRegistry& queues, Machine& machine,
                                              FeedbackAllocator* controller) {
  RR_EXPECTS(build.num_workers >= 1);
  RR_EXPECTS(build.num_acceptors >= 1);
  RR_EXPECTS(build.accept_cycles > 0);
  RR_EXPECTS(build.listen_queue_bytes > 0);
  RR_EXPECTS(build.worker_queue_bytes > 0);
  RR_EXPECTS(build.clock_hz > 0);

  auto farm = std::make_unique<WebFarmInstance>();
  farm->listen.buffer = queues.CreateQueue(build.tag + ".listen", build.listen_queue_bytes);
  machine.Attach(farm->listen.buffer);

  std::vector<RequestStream*> worker_ptrs;
  for (int i = 0; i < build.num_workers; ++i) {
    auto stream = std::make_unique<RequestStream>();
    stream->buffer =
        queues.CreateQueue(build.tag + ".w" + std::to_string(i), build.worker_queue_bytes);
    machine.Attach(stream->buffer);
    worker_ptrs.push_back(stream.get());
    farm->worker_streams.push_back(std::move(stream));
  }

  // AddRealRate requires the thread's queue metrics to exist, so decoration stops
  // at machine attachment; the controller registration happens after the per-thread
  // queues.Register calls below.
  auto decorate = [&](SimThread* t) {
    if (build.priority != 0) {
      t->set_priority(build.priority);
    }
    if (build.tickets != 0) {
      t->set_tickets(build.tickets);
    }
    machine.Attach(t);
  };
  auto add_real_rate = [&](SimThread* t) {
    if (controller != nullptr) {
      controller->AddRealRate(t);
    }
  };

  for (int i = 0; i < build.num_acceptors; ++i) {
    auto work =
        std::make_unique<AcceptorWork>(&farm->listen, worker_ptrs, build.accept_cycles);
    farm->acceptors.push_back(work.get());
    SimThread* t =
        threads.Create(build.tag + ".acceptor" + std::to_string(i), std::move(work));
    decorate(t);
    // Consumer of the listen queue only. Registering the acceptor as a producer on
    // every worker queue would sum num_workers negative fan-out terms against one
    // positive listen term, throttling it to the allocation floor exactly when the
    // listen queue is pegged. The acceptor is an admission-control stage, not a
    // paced producer: downstream overflow is handled by dispatch drops, so its
    // progress pressure is the listen fill alone.
    queues.Register(farm->listen.buffer, t->id(), QueueRole::kConsumer);
    add_real_rate(t);
    farm->acceptor_threads.push_back(t);
  }

  for (int i = 0; i < build.num_workers; ++i) {
    auto work =
        std::make_unique<WebWorkerWork>(worker_ptrs[static_cast<size_t>(i)],
                                        build.clock_hz, &farm->latencies);
    farm->workers.push_back(work.get());
    SimThread* t =
        threads.Create(build.tag + ".worker" + std::to_string(i), std::move(work));
    decorate(t);
    queues.Register(worker_ptrs[static_cast<size_t>(i)]->buffer, t->id(),
                    QueueRole::kConsumer);
    add_real_rate(t);
    farm->worker_threads.push_back(t);
  }

  // The injector clamps oversized records to the smallest queue so a hand-written
  // replay log can never violate the TryPush size contract.
  const int64_t clamp_bytes = std::min(build.listen_queue_bytes, build.worker_queue_bytes);
  WebFarmInstance* raw = farm.get();
  farm->injector = std::make_unique<RequestInjector>(
      sim, build.records, [raw, clamp_bytes](const RequestRecord& rec) {
        PendingRequest p;
        p.arrival = rec.arrival;
        p.bytes = std::clamp<int64_t>(rec.bytes, 1, clamp_bytes);
        p.service_cycles = rec.service_cycles;
        if (raw->listen.buffer->TryPush(p.bytes)) {
          raw->listen.meta.push_back(p);
        } else {
          ++raw->listen_drops;
        }
      });
  farm->injector->Start();
  return farm;
}

WebFarmResult RunWebFarmScenario(const WebFarmParams& params) {
  RR_EXPECTS(params.num_cpus >= 1);
  RR_EXPECTS(params.run_for.IsPositive());

  SystemConfig config;
  config.num_cpus = params.num_cpus;
  config.cpu.clock_hz = params.clock_hz;
  config.rbs = params.rbs;
  config.controller = params.controller;
  config.machine.idle_fast_forward = params.idle_fast_forward;
  config.machine.host_threads = params.host_threads;
  config.thread_slabs = params.thread_slabs;
  System system(config);
  system.sim().trace().SetEnabled(true);
  // Only the hash is read; at overload densities the farm records a lot of events.
  system.sim().trace().SetHashOnly(true);

  WebFarmBuild build;
  build.tag = "web";
  build.num_workers = params.num_workers;
  build.num_acceptors = params.num_acceptors;
  build.accept_cycles = params.accept_cycles;
  build.listen_queue_bytes = params.listen_queue_bytes;
  build.worker_queue_bytes = params.worker_queue_bytes;
  build.clock_hz = params.clock_hz;
  build.records = params.replay.empty() ? GenerateRequests(params.arrivals, params.run_for)
                                        : params.replay;
  const auto offered = static_cast<int64_t>(build.records.size());

  std::unique_ptr<WebFarmInstance> farm =
      BuildWebFarm(build, system.sim(), system.threads(), system.queues(),
                   system.machine(), &system.controller());

  system.Start();
  system.RunFor(params.run_for);

  WebFarmResult result;
  result.num_cpus = params.num_cpus;
  result.num_workers = params.num_workers;
  result.offered = offered;
  result.injected = farm->injector->injected();
  result.listen_drops = farm->listen_drops;
  result.accepted = farm->accepted();
  result.dispatch_drops = farm->dispatch_drops();
  result.served = farm->served();
  if (!farm->latencies.empty()) {
    result.p50_ms = farm->latencies.Percentile(50.0) * 1e3;
    result.p99_ms = farm->latencies.Percentile(99.0) * 1e3;
    result.p999_ms = farm->latencies.Percentile(99.9) * 1e3;
    result.mean_ms = farm->latencies.Mean() * 1e3;
    result.max_ms = farm->latencies.Percentile(100.0) * 1e3;
  }
  const auto per_core_capacity =
      static_cast<double>(system.sim().cpu().DurationToCycles(params.run_for));
  result.aggregate_user_fraction =
      static_cast<double>(system.sim().UsedAllCpus(CpuUse::kUser)) /
      (per_core_capacity * params.num_cpus);
  result.total_dispatches = system.machine().dispatches();
  result.parallel_rounds = system.machine().parallel_rounds();
  result.mailbox_rounds = system.machine().mailbox_rounds();
  result.squish_events = system.controller().squish_events();
  result.quality_exceptions = system.controller().quality_exceptions();
  result.trace_hash = system.sim().trace().Hash();
  return result;
}

double WebFarmCapacityRps(const WebFarmParams& params) {
  const double per_request =
      MeanServiceCycles(params.arrivals) + static_cast<double>(params.accept_cycles);
  return static_cast<double>(params.num_cpus) * params.clock_hz / per_request;
}

}  // namespace realrate
