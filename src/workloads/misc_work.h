// Miscellaneous work models: CPU hog, spin-waiter, interactive job, mutex-based
// critical-section worker, and a kernel-driven arrival process (models network RX or a
// disk-as-producer feeding a queue from interrupt context).
#ifndef REALRATE_WORKLOADS_MISC_WORK_H_
#define REALRATE_WORKLOADS_MISC_WORK_H_

#include <vector>

#include "queue/bounded_buffer.h"
#include "queue/sim_mutex.h"
#include "queue/tty.h"
#include "sim/simulator.h"
#include "task/work_model.h"
#include "util/rng.h"

namespace realrate {

// Consumes nothing: parks itself with a far-future sleep on first dispatch. Fig. 5's
// "dummy processes that consume no CPU but are scheduled, monitored, and controlled."
class IdleWork : public WorkModel {
 public:
  RunResult Run(TimePoint now, Cycles granted) override;
};

// Consumes every cycle it is given; never blocks. "a miscellaneous job (no
// progress-metric) that tries to consume as much CPU as it can" (Fig. 7's competing
// load). Progress counts "keys attempted" per §4.5's password-cracker example.
class CpuHogWork : public WorkModel {
 public:
  explicit CpuHogWork(Cycles cycles_per_key = 1000);
  RunResult Run(TimePoint now, Cycles granted) override;
  // Purely thread-local: consumes any grant, only bumps its own key counter.
  Cycles RoundLocalCycles(TimePoint now) const override;

 private:
  const Cycles cycles_per_key_;
  Cycles into_key_ = 0;
};

// A hog that sleeps until `start_at`, then consumes every cycle. Lets scenarios stage
// load arrival (e.g. the Pathfinder medium-priority load appearing while the low task
// holds the mutex).
class DelayedHogWork : public WorkModel {
 public:
  explicit DelayedHogWork(TimePoint start_at) : start_at_(start_at) {}
  RunResult Run(TimePoint now, Cycles granted) override;
  // Thread-local once started; before start_at_ the first Run sleeps (not local).
  Cycles RoundLocalCycles(TimePoint now) const override;

 private:
  const TimePoint start_at_;
};

// Burns CPU while polling a tty for input it never consumes cooperatively — the §2
// livelock example: "a job running at a (fixed) real-time priority that spin-waits on
// user input." Under fixed priorities this starves whatever produces the input.
class SpinWaitWork : public WorkModel {
 public:
  explicit SpinWaitWork(TtyPort* tty);
  RunResult Run(TimePoint now, Cycles granted) override;
  int64_t events_serviced() const { return serviced_; }

 private:
  TtyPort* const tty_;
  int64_t serviced_ = 0;
};

// Interactive job: blocks on a tty, services each input event with a burst of cycles,
// then blocks again — "interactive jobs are servers that listen to ttys."
class InteractiveWork : public WorkModel {
 public:
  InteractiveWork(TtyPort* tty, Cycles cycles_per_event);
  RunResult Run(TimePoint now, Cycles granted) override;
  int64_t events_serviced() const { return serviced_; }

 private:
  TtyPort* const tty_;
  const Cycles cycles_per_event_;
  Cycles into_event_ = 0;
  bool event_in_hand_ = false;
  int64_t serviced_ = 0;
};

// Repeatedly: lock -> hold (burn `hold_cycles` inside the critical section) -> unlock
// -> sleep `think_sleep`. With priorities assigned around it, this is the
// Mars-Pathfinder inversion scenario's building block. Records lock-acquisition waits.
class LockWork : public WorkModel {
 public:
  LockWork(SimMutex* mutex, Cycles hold_cycles, Duration think_sleep);
  RunResult Run(TimePoint now, Cycles granted) override;
  void OnWake(TimePoint now) override;

  int64_t acquisitions() const { return acquisitions_; }
  const std::vector<double>& wait_seconds() const { return waits_; }
  double MaxWaitSeconds() const;
  // Max over waits whose acquisition began at or after `after` (ignores warm-up).
  double MaxWaitSecondsAfter(TimePoint after) const;
  // A wait that never completed (blocked at simulation end) — the inversion signature.
  bool still_waiting() const { return waiting_; }
  TimePoint wait_start() const { return wait_start_; }

 private:
  enum class Phase { kAcquiring, kHolding };
  SimMutex* const mutex_;
  const Cycles hold_cycles_;
  const Duration think_sleep_;
  Phase phase_ = Phase::kAcquiring;
  Cycles into_phase_ = 0;
  TimePoint wait_start_;
  bool waiting_ = false;
  bool lock_granted_on_wake_ = false;
  int64_t acquisitions_ = 0;
  std::vector<double> waits_;
  std::vector<TimePoint> wait_starts_;
};

// Kernel-context arrival process: pushes `bytes_per_arrival` into a queue at intervals
// drawn from an exponential distribution (Poisson arrivals), optionally with bursts.
// Runs as simulator events, not as a thread — it models I/O producers (network RX ring,
// disk readahead) whose progress the scheduler can see only through the queue.
class ArrivalProcess {
 public:
  struct Config {
    int64_t bytes_per_arrival = 512;
    Duration mean_interarrival = Duration::Millis(5);
    // Deterministic arrivals if false (fixed spacing); Poisson if true.
    bool poisson = true;
    uint64_t seed = 42;
  };

  ArrivalProcess(Simulator& sim, BoundedBuffer* queue, const Config& config);

  // Begins injecting arrivals; runs until the simulation ends or Stop().
  void Start();
  void Stop() { running_ = false; }

  int64_t arrivals() const { return arrivals_; }
  int64_t dropped_bytes() const { return dropped_bytes_; }

 private:
  void ScheduleNext();

  Simulator& sim_;
  BoundedBuffer* const queue_;
  Config config_;
  Rng rng_;
  bool running_ = false;
  int64_t arrivals_ = 0;
  int64_t dropped_bytes_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_WORKLOADS_MISC_WORK_H_
