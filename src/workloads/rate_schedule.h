// Piecewise-constant rate schedules, used to drive the Fig. 6/7 pulse experiments:
// "The producer generated rising pulses of various widths, doubling its rate of
// production in bytes/cycle for a period of time before falling back ... After running
// for three rising pulses, the producer keeps its default rate high and generates three
// falling pulses."
#ifndef REALRATE_WORKLOADS_RATE_SCHEDULE_H_
#define REALRATE_WORKLOADS_RATE_SCHEDULE_H_

#include <vector>

#include "util/time.h"

namespace realrate {

class RateSchedule {
 public:
  // A constant schedule.
  explicit RateSchedule(double base_value) : base_(base_value) {}

  // Overrides the value to `value` during [start, start + width).
  RateSchedule& AddSegment(TimePoint start, Duration width, double value);

  double ValueAt(TimePoint t) const;
  double base() const { return base_; }

  // The paper's Fig. 6 stimulus: three rising pulses of widths `w1..w3` where the value
  // doubles, then the value stays doubled with three falling pulses back to base.
  static RateSchedule PaperPulses(double base, double doubled, TimePoint start,
                                  std::vector<Duration> rising_widths, Duration gap,
                                  std::vector<Duration> falling_widths);

 private:
  struct Segment {
    TimePoint start;
    TimePoint end;
    double value;
  };
  double base_;
  std::vector<Segment> segments_;  // Later segments override earlier ones.
};

}  // namespace realrate

#endif  // REALRATE_WORKLOADS_RATE_SCHEDULE_H_
