// Producer and consumer work models for bounded-buffer pipelines — the paper's
// canonical real-rate application. "Both the producer and consumer loop for some
// number of cycles before they enqueue or dequeue a block of data."
#ifndef REALRATE_WORKLOADS_PRODUCER_CONSUMER_H_
#define REALRATE_WORKLOADS_PRODUCER_CONSUMER_H_

#include "queue/bounded_buffer.h"
#include "task/work_model.h"
#include "workloads/rate_schedule.h"

namespace realrate {

// Loops `cycles_per_item` cycles, then enqueues one item of `schedule(t)` bytes.
// Production rate in bytes/cycle is schedule(t) / cycles_per_item; progress rate in
// bytes/sec is that times the thread's allocation (cycles/sec) — exactly the Fig. 6
// setup where the producer's reservation is fixed and its bytes/cycle is modulated.
class ProducerWork : public WorkModel {
 public:
  ProducerWork(BoundedBuffer* out, Cycles cycles_per_item, RateSchedule bytes_per_item);

  RunResult Run(TimePoint now, Cycles granted) override;
  // Pushes at most floor((into_item + budget) / cycles_per_item) items of the
  // current schedule size (a pure function of `now`, constant across one tick);
  // blocks only on a failed push, which the gate rules out. Always plannable.
  bool PlanRoundQueueOps(TimePoint now, Cycles budget,
                         std::vector<RoundQueueOp>* ops) override;

  int64_t items_produced() const { return items_; }

 private:
  BoundedBuffer* const out_;
  const Cycles cycles_per_item_;
  const RateSchedule bytes_per_item_;
  Cycles into_item_ = 0;  // Cycles already spent on the item under construction.
  int64_t items_ = 0;
};

// An isochronous source: every `interval` it spends `cycles_per_item` preparing an item
// of `item_bytes` bytes, pushes it, and sleeps until the next interval — a capture
// device or network feed whose offered load is fixed in wall-clock terms, independent
// of the scheduler. Items that do not fit are dropped (real devices overrun).
class PacedProducerWork : public WorkModel {
 public:
  PacedProducerWork(BoundedBuffer* out, int64_t item_bytes, Duration interval,
                    Cycles cycles_per_item);

  RunResult Run(TimePoint now, Cycles granted) override;

  int64_t items_produced() const { return items_; }
  int64_t items_dropped() const { return dropped_; }

 private:
  BoundedBuffer* const out_;
  const int64_t item_bytes_;
  const Duration interval_;
  const Cycles cycles_per_item_;
  TimePoint next_item_time_;
  Cycles into_item_ = 0;
  int64_t items_ = 0;
  int64_t dropped_ = 0;
};

// Dequeues data and spends `cycles_per_byte` on every byte (fixed consumption rate in
// bytes/cycle). Blocks when the queue is empty.
class ConsumerWork : public WorkModel {
 public:
  ConsumerWork(BoundedBuffer* in, Cycles cycles_per_byte);

  RunResult Run(TimePoint now, Cycles granted) override;
  // Pops at most floor(budget / cycles_per_byte) bytes; the gate's fill check turns
  // that bound into a full-request guarantee (every partial pop below it is covered
  // by floor superadditivity). Always plannable — data limits surface as gate
  // infeasibility, not a plan failure.
  bool PlanRoundQueueOps(TimePoint now, Cycles budget,
                         std::vector<RoundQueueOp>* ops) override;

  int64_t bytes_consumed() const { return bytes_; }

 private:
  BoundedBuffer* const in_;
  const Cycles cycles_per_byte_;
  int64_t bytes_ = 0;
};

// A pipeline stage: consumes from `in`, spends `cycles_per_byte` per byte, then pushes
// `amplification` output bytes per input byte to `out`. Blocks on empty input or full
// output. A video decoder is a stage with large cycles_per_byte and amplification > 1.
class PipelineStageWork : public WorkModel {
 public:
  PipelineStageWork(BoundedBuffer* in, BoundedBuffer* out, Cycles cycles_per_byte,
                    double amplification, int64_t chunk_bytes);

  RunResult Run(TimePoint now, Cycles granted) override;
  // Walks the slice machine against `budget`: finish the in-flight chunk, then
  // pop/process whole chunks as cycles allow. Pops are exact (chunk_bytes each), so
  // the plan is data-limited — if the reachable pop count exceeds the round-start
  // input fill, it returns false listing `in` (the sequential engine might see
  // same-round production we cannot). Pushes are bounded above by pending output
  // plus the outputs of every chunk that can complete within the budget.
  bool PlanRoundQueueOps(TimePoint now, Cycles budget,
                         std::vector<RoundQueueOp>* ops) override;

  int64_t bytes_processed() const { return bytes_; }

 private:
  BoundedBuffer* const in_;
  BoundedBuffer* const out_;
  const Cycles cycles_per_byte_;
  const double amplification_;
  const int64_t chunk_bytes_;
  int64_t pending_out_ = 0;  // Processed bytes awaiting space in `out`.
  Cycles into_chunk_ = 0;
  int64_t chunk_in_flight_ = 0;  // Input bytes already popped for the current chunk.
  int64_t bytes_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_WORKLOADS_PRODUCER_CONSUMER_H_
