// A Flash-style web-server farm (Pai et al.'s event-driven server, recast onto the
// paper's real-rate machinery): an open-loop RequestInjector pushes requests into a
// listen queue; acceptor threads pop them, pay a per-request accept cost, and
// round-robin dispatch into per-worker BoundedBuffers; worker threads drain their
// queue, spend each request's service demand, and record its end-to-end latency.
//
// Every thread is registered real-rate, so the feedback allocator sees the farm
// exactly as the paper intends: progress is queue drain, pressure is queue fill, and
// sustained over-subscription surfaces as admission drops and p99/p999 latency —
// the regimes the closed-loop fuzzer cannot reach (ROADMAP item 4).
//
// Determinism: the whole farm is a pure function of (params, request stream). The
// same seed — or the same replay log — produces a bit-identical trace at any
// host-thread count, pinned by tests/web_farm_test.cc and tools/trace_replay.
#ifndef REALRATE_WORKLOADS_WEB_FARM_H_
#define REALRATE_WORKLOADS_WEB_FARM_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "queue/bounded_buffer.h"
#include "queue/registry.h"
#include "sched/machine.h"
#include "sched/rbs.h"
#include "task/registry.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/types.h"
#include "workloads/arrivals.h"

namespace realrate {

// A request sitting in (or popped from) a farm queue. BoundedBuffer counts bytes
// only, so per-request identity (arrival time, service demand) rides in a side-band
// FIFO that the single-threaded simulation keeps exactly in step with the buffer.
struct PendingRequest {
  Duration arrival = Duration::Zero();  // Offset from the start of the run.
  int64_t bytes = 0;
  Cycles service_cycles = 0;
};

// A BoundedBuffer plus its side-band request FIFO. Invariant: buffer->fill() equals
// the sum of meta's bytes at every event boundary.
struct RequestStream {
  BoundedBuffer* buffer = nullptr;  // Owned by the QueueRegistry.
  std::deque<PendingRequest> meta;
};

// Pops requests off the listen stream, spends `accept_cycles` on each, then
// dispatches it to a worker queue: strict round-robin over the workers, scanning
// forward past full queues, dropping the request (admission control, counted) when
// every worker queue is full. Blocks on an empty listen queue.
class AcceptorWork : public WorkModel {
 public:
  AcceptorWork(RequestStream* listen, std::vector<RequestStream*> workers,
               Cycles accept_cycles);

  RunResult Run(TimePoint now, Cycles granted) override;
  // Pop #k off the listen stream is reachable at cumulative cost r + (k-1) *
  // accept_cycles (r = the in-hand remainder); a reachable pop beyond the
  // round-start backlog is data-limited (the sequential engine could see
  // same-round arrivals) and fails the plan. Dispatch targets are exact: a
  // planned push never fails, so the round-robin cursor never skips and dispatch
  // d lands on workers[(rr + d) % n] in both engines.
  bool PlanRoundQueueOps(TimePoint now, Cycles budget,
                         std::vector<RoundQueueOp>* ops) override;
  // Inside a staked round the side-band meta push_backs are cross-core-visible
  // (the target worker runs elsewhere), so they are staged here and flushed at
  // the barrier in core order — reproducing the sequential engine's per-thread
  // effect order (this acceptor is each entry's sole writer).
  void BeginRoundStaging() override { staging_ = true; }
  void FlushRoundEffects() override;

  int64_t accepted() const { return accepted_; }
  int64_t dropped() const { return dropped_; }

 private:
  // Hands current_ to a worker queue (or drops it when all are full).
  void Dispatch();

  RequestStream* const listen_;
  const std::vector<RequestStream*> workers_;
  const Cycles accept_cycles_;
  PendingRequest current_{};
  bool request_in_hand_ = false;
  Cycles into_accept_ = 0;
  size_t rr_ = 0;
  int64_t accepted_ = 0;
  int64_t dropped_ = 0;
  bool staging_ = false;  // True inside a staked parallel round.
  std::vector<std::pair<RequestStream*, PendingRequest>> staged_dispatches_;
  std::vector<int64_t> per_worker_scratch_;  // Plan-time push-byte sums per worker.
};

// Drains one worker queue: pops a request, spends its service_cycles, then records
// its end-to-end latency (arrival -> completion, in seconds) into the shared
// SampleSet. Progress (the real-rate signal) is one unit per served request.
class WebWorkerWork : public WorkModel {
 public:
  WebWorkerWork(RequestStream* in, double clock_hz, SampleSet* latencies);

  RunResult Run(TimePoint now, Cycles granted) override;
  // Walks the round-start backlog front to back: request j is popped iff the
  // cumulative service cost before it is strictly under the budget. If the budget
  // outruns the backlog (including the degenerate zero-service-cycle case, which
  // no cycle budget can bound), the plan fails data-limited listing the input
  // buffer — the sequential engine could serve same-round dispatches.
  bool PlanRoundQueueOps(TimePoint now, Cycles budget,
                         std::vector<RoundQueueOp>* ops) override;
  // Latency samples go to a farm-wide SampleSet shared across workers, so staked
  // rounds stage them and flush at the barrier. The flush preserves each worker's
  // internal order but serializes workers in core order rather than dispatch
  // order; the sample multiset is identical, so percentiles/min/max match the
  // sequential engine exactly (only the float summation order behind Mean() can
  // differ, and nothing pins that across engines).
  void BeginRoundStaging() override { staging_ = true; }
  void FlushRoundEffects() override;

  int64_t served() const { return served_; }

 private:
  RequestStream* const in_;
  const double clock_hz_;
  SampleSet* const latencies_;
  PendingRequest current_{};
  bool request_in_hand_ = false;
  Cycles into_request_ = 0;
  int64_t served_ = 0;
  bool staging_ = false;  // True inside a staked parallel round.
  std::vector<double> staged_latencies_;
};

// Construction inputs for one farm wired into an existing machine (the differential
// harness builds farms from an OpenLoopSpec; RunWebFarmScenario from WebFarmParams).
struct WebFarmBuild {
  std::string tag = "farm";  // Name prefix for queues and threads.
  int num_workers = 4;
  int num_acceptors = 1;
  Cycles accept_cycles = 10'000;
  int64_t listen_queue_bytes = 64 * 1024;
  int64_t worker_queue_bytes = 16 * 1024;
  double clock_hz = 400e6;  // For sub-slice completion offsets in latency records.
  std::vector<RequestRecord> records;
  // Baseline-scheduler attributes (harness runs under lottery/MLFQ/fixed-priority).
  int priority = 0;
  int64_t tickets = 0;
};

// The runtime state of one wired farm: streams, injector, latency samples, and the
// borrowed thread/work pointers the caller harvests results from. Must outlive the
// run. Threads and buffers are owned by the registries as usual.
class WebFarmInstance {
 public:
  int64_t listen_drops = 0;  // Arrivals that found the listen queue full.

  RequestStream listen;
  std::vector<std::unique_ptr<RequestStream>> worker_streams;
  std::unique_ptr<RequestInjector> injector;
  SampleSet latencies;

  std::vector<SimThread*> acceptor_threads;
  std::vector<SimThread*> worker_threads;
  std::vector<AcceptorWork*> acceptors;  // Borrowed from the threads' work models.
  std::vector<WebWorkerWork*> workers;

  int64_t accepted() const;
  int64_t dispatch_drops() const;
  int64_t served() const;
};

// Wires one farm into the machine: creates the listen and per-worker queues,
// spawns acceptors and workers (registered AddRealRate when `controller` is
// non-null, prioritized/ticketed for the baselines either way), registers every
// queue endpoint, and starts the injector. Oversized log records are clamped to
// the smallest queue capacity so hand-written logs can't violate the TryPush
// contract. Call before the machine starts.
std::unique_ptr<WebFarmInstance> BuildWebFarm(const WebFarmBuild& build, Simulator& sim,
                                              ThreadRegistry& threads,
                                              QueueRegistry& queues, Machine& machine,
                                              FeedbackAllocator* controller);

// Standalone scenario entry point (benches, tools/trace_replay, golden tests).
struct WebFarmParams {
  int num_cpus = 4;
  int num_workers = 8;
  int num_acceptors = 1;
  double clock_hz = 400e6;
  Cycles accept_cycles = 10'000;
  int64_t listen_queue_bytes = 64 * 1024;
  int64_t worker_queue_bytes = 16 * 1024;
  // The request stream: `replay` when non-empty (trace replay), otherwise generated
  // from `arrivals` over [0, run_for).
  ArrivalConfig arrivals;
  std::vector<RequestRecord> replay;
  Duration run_for = Duration::Seconds(2);
  int host_threads = 1;  // 1 = the sequential reference engine (Machine default).
  RbsConfig rbs;
  ControllerConfig controller;
  bool thread_slabs = true;
  bool idle_fast_forward = true;
};

struct WebFarmResult {
  int num_cpus = 0;
  int num_workers = 0;
  int64_t offered = 0;   // Requests in the stream (within the horizon).
  int64_t injected = 0;  // Arrived before the run ended.
  int64_t listen_drops = 0;
  int64_t accepted = 0;
  int64_t dispatch_drops = 0;  // Accepted but every worker queue was full.
  int64_t served = 0;
  // End-to-end request latency (arrival -> completion), milliseconds. Zero when
  // nothing was served.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double aggregate_user_fraction = 0.0;
  int64_t total_dispatches = 0;
  // Parallel-engine activity: rounds fanned out at all, and the subset admitted
  // through the mailbox gate (staked queue operations). Both 0 at host_threads = 1.
  int64_t parallel_rounds = 0;
  int64_t mailbox_rounds = 0;
  int64_t squish_events = 0;
  int64_t quality_exceptions = 0;
  uint64_t trace_hash = 0;
};

WebFarmResult RunWebFarmScenario(const WebFarmParams& params);

// The request rate (per second) at which the farm's CPUs are exactly saturated by
// mean service + accept demand — the 1.0x point of an offered-load sweep.
double WebFarmCapacityRps(const WebFarmParams& params);

}  // namespace realrate

#endif  // REALRATE_WORKLOADS_WEB_FARM_H_
