// The line-based request-log format behind tools/trace_replay: a captured or
// hand-written log replays deterministically through the web farm
// (workloads/web_farm.h), and a generated stream round-trips bit-exactly because
// every RequestRecord field is integral.
//
// Format (one request per line, whitespace-separated):
//
//   # comment — ignored, as are blank lines
//   <arrival_ns> <bytes> <service_cycles>
//
// arrival_ns is the offset from the start of the run in virtual nanoseconds, and
// must be non-decreasing down the file; bytes and service_cycles must be positive.
// SerializeRequestLog emits a `# realrate request log v1` header comment; the parser
// does not require it.
#ifndef REALRATE_WORKLOADS_REQUEST_LOG_H_
#define REALRATE_WORKLOADS_REQUEST_LOG_H_

#include <string>
#include <vector>

#include "workloads/arrivals.h"

namespace realrate {

std::string SerializeRequestLog(const std::vector<RequestRecord>& records);

// Parses `text` into `out` (replacing its contents). Returns false — with a
// line-numbered message in `*error` if non-null — on any malformed line,
// non-positive size, or out-of-order arrival; `out` is left empty on failure.
bool ParseRequestLog(const std::string& text, std::vector<RequestRecord>* out,
                     std::string* error);

}  // namespace realrate

#endif  // REALRATE_WORKLOADS_REQUEST_LOG_H_
