#include "workloads/rate_schedule.h"

#include "util/assert.h"

namespace realrate {

RateSchedule& RateSchedule::AddSegment(TimePoint start, Duration width, double value) {
  RR_EXPECTS(width.IsPositive());
  segments_.push_back({start, start + width, value});
  return *this;
}

double RateSchedule::ValueAt(TimePoint t) const {
  double value = base_;
  for (const Segment& s : segments_) {
    if (t >= s.start && t < s.end) {
      value = s.value;
    }
  }
  return value;
}

RateSchedule RateSchedule::PaperPulses(double base, double doubled, TimePoint start,
                                       std::vector<Duration> rising_widths, Duration gap,
                                       std::vector<Duration> falling_widths) {
  RateSchedule schedule(base);
  if (rising_widths.empty()) {
    return schedule;  // No pulse program: a constant-rate schedule.
  }
  TimePoint t = start;
  TimePoint last_end = start;
  // Rising pulses: base -> doubled -> base.
  for (Duration w : rising_widths) {
    schedule.AddSegment(t, w, doubled);
    last_end = t + w;
    t = last_end + gap;
  }
  // "the producer keeps its default rate high": the plateau begins where the last
  // rising pulse ended; falling pulses dip back to base.
  schedule.AddSegment(last_end, Duration::Seconds(3600), doubled);
  TimePoint f = last_end + gap;
  for (Duration w : falling_widths) {
    schedule.AddSegment(f, w, base);
    f += w + gap;
  }
  return schedule;
}

}  // namespace realrate
