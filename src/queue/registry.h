// QueueRegistry: the paper's meta-interface. "When an application initializes a
// symbiotic interface ... the interface creates a linkage to the kernel using a
// meta-interface system call that registers the queue and the application's use of that
// queue (producer or consumer)." The controller walks these linkages to compute
// progress pressure.
#ifndef REALRATE_QUEUE_REGISTRY_H_
#define REALRATE_QUEUE_REGISTRY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "queue/bounded_buffer.h"
#include "util/types.h"

namespace realrate {

// One end of a registered queue: which thread plays which role.
struct QueueLinkage {
  BoundedBuffer* queue = nullptr;
  ThreadId thread = kInvalidThreadId;
  QueueRole role = QueueRole::kProducer;
};

class QueueRegistry {
 public:
  QueueRegistry() = default;
  // Not movable: every owned buffer mirrors its fill into this object's aggregate
  // counter by address (SetFillAggregate), so a moved-from registry would leave
  // the buffers writing through a dangling pointer.
  QueueRegistry(QueueRegistry&&) = delete;
  QueueRegistry& operator=(QueueRegistry&&) = delete;

  // Creates a buffer owned by the registry.
  BoundedBuffer* CreateQueue(std::string name, int64_t capacity_bytes);

  // Registers `thread` as `role` of `queue` (the meta-interface system call). A thread
  // may be linked to several queues (pipeline stages are consumer of one, producer of
  // the next).
  void Register(BoundedBuffer* queue, ThreadId thread, QueueRole role);
  // Removes all linkages for `thread` (e.g. on exit).
  void Unregister(ThreadId thread);

  // All linkages for one thread, in registration order. O(1): served from a
  // per-thread index (the controller reads this for every controlled thread on every
  // iteration, so a scan over all linkages here is quadratic machine-wide). The
  // reference is invalidated by Register()/Unregister() for that thread.
  const std::vector<QueueLinkage>& LinkagesFor(ThreadId thread) const;
  // Whether the thread has any registered progress metric. O(1).
  bool HasMetrics(ThreadId thread) const;
  // Per-thread registration change epoch: bumped by every Register/Unregister for
  // `thread`. The controller's dirty-set sampler uses it (together with each queue's
  // BoundedBuffer::change_epoch) to prove a thread's linkage view unchanged since
  // the previous controller tick — and to revalidate any cached LinkagesFor
  // reference before following it. Monotone per thread; 0 = never registered.
  uint64_t linkage_epoch(ThreadId thread) const;

  BoundedBuffer* Find(QueueId id);
  size_t queue_count() const { return queues_.size(); }

  // --- Machine-wide pressure aggregate (the cluster router's queue signal) ---
  // Maintained as fill deltas mirrored by every owned buffer (SetFillAggregate,
  // installed at CreateQueue), so both reads are O(1) regardless of queue count.
  int64_t total_fill_bytes() const { return total_fill_bytes_; }
  int64_t total_capacity_bytes() const { return total_capacity_bytes_; }
  // Aggregate fill fraction in [0, 1]; 0 when the machine has no queues yet (a
  // queueless machine exerts no pressure either way on the cluster router).
  double AggregateFillFraction() const {
    return total_capacity_bytes_ == 0
               ? 0.0
               : static_cast<double>(total_fill_bytes_) / static_cast<double>(total_capacity_bytes_);
  }
  // O(1) reference to the registry's own pointer index (the invariant oracle sweeps
  // every queue once per tick round). Invalidated by CreateQueue().
  const std::vector<BoundedBuffer*>& AllQueues() const { return raw_queues_; }

 private:
  std::vector<std::unique_ptr<BoundedBuffer>> queues_;
  std::vector<BoundedBuffer*> raw_queues_;  // queues_[i].get(), kept by CreateQueue().
  int64_t total_fill_bytes_ = 0;      // Delta-maintained by every owned buffer.
  int64_t total_capacity_bytes_ = 0;  // Summed at CreateQueue (capacities are const).
  // The linkage store, indexed the way every reader reads it: per thread, in
  // registration order within a thread.
  std::unordered_map<ThreadId, std::vector<QueueLinkage>> linkages_by_thread_;
  // Registration epochs survive Unregister (a removed thread's epoch keeps
  // advancing) so stale cached references can never revalidate.
  std::unordered_map<ThreadId, uint64_t> linkage_epoch_;
};

}  // namespace realrate

#endif  // REALRATE_QUEUE_REGISTRY_H_
