// Pipe and socket symbiotic wrappers (§3.2): "Pipes and sockets are effectively queues
// managed by the kernel as part of the abstraction. By exposing the fill-level, size,
// and role of the application, the scheduler can determine the relative rate of
// progress of the application ... We have implemented a shared-queue library that
// performs this linkage automatically, and have extended the in-kernel pipe and socket
// implementation to provide this linkage."
//
// SimPipe is a unidirectional byte stream; SimSocket is a duplex pair of buffers. Both
// perform the meta-interface registration automatically when an endpoint attaches —
// the application never talks to the QueueRegistry itself.
#ifndef REALRATE_QUEUE_PIPE_H_
#define REALRATE_QUEUE_PIPE_H_

#include <string>

#include "queue/bounded_buffer.h"
#include "queue/registry.h"
#include "util/types.h"

namespace realrate {

// A unix-style pipe: one writer end, one reader end, automatic linkage.
class SimPipe {
 public:
  // Creates the underlying kernel buffer inside `registry`.
  SimPipe(QueueRegistry& registry, std::string name, int64_t capacity_bytes);

  // Endpoint attachment registers the linkage (the "meta-interface system call").
  // Each end may be attached once.
  void AttachWriter(ThreadId thread);
  void AttachReader(ThreadId thread);

  BoundedBuffer* buffer() { return buffer_; }
  ThreadId writer() const { return writer_; }
  ThreadId reader() const { return reader_; }

  // Convenience forwarding of the buffer operations.
  bool TryWrite(int64_t bytes) { return buffer_->TryPush(bytes); }
  int64_t TryRead(int64_t bytes) { return buffer_->TryPop(bytes); }

 private:
  QueueRegistry& registry_;
  BoundedBuffer* buffer_;
  ThreadId writer_ = kInvalidThreadId;
  ThreadId reader_ = kInvalidThreadId;
};

// A connected socket: two independent byte streams (a->b and b->a), each end
// registered as producer of its send direction and consumer of its receive direction.
class SimSocket {
 public:
  SimSocket(QueueRegistry& registry, std::string name, int64_t buffer_bytes);

  // Attaches the two endpoints; registers all four linkages.
  void AttachEndpointA(ThreadId thread);
  void AttachEndpointB(ThreadId thread);

  BoundedBuffer* a_to_b() { return a_to_b_; }
  BoundedBuffer* b_to_a() { return b_to_a_; }
  ThreadId endpoint_a() const { return a_; }
  ThreadId endpoint_b() const { return b_; }

 private:
  QueueRegistry& registry_;
  BoundedBuffer* a_to_b_;
  BoundedBuffer* b_to_a_;
  ThreadId a_ = kInvalidThreadId;
  ThreadId b_ = kInvalidThreadId;
};

}  // namespace realrate

#endif  // REALRATE_QUEUE_PIPE_H_
