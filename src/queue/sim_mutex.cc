#include "queue/sim_mutex.h"

#include "util/assert.h"

namespace realrate {

bool SimMutex::TryLock(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  RR_EXPECTS(owner_ != thread);  // No recursive locking in the model.
  if (owner_ == kInvalidThreadId) {
    owner_ = thread;
    return true;
  }
  return false;
}

void SimMutex::WaitFor(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  RR_EXPECTS(owner_ != kInvalidThreadId);
  waiters_.push_back(thread);
}

void SimMutex::Unlock(ThreadId thread) {
  RR_EXPECTS(owner_ == thread);
  if (waiters_.empty()) {
    owner_ = kInvalidThreadId;
    return;
  }
  // Direct handoff: the first waiter becomes the owner and is woken.
  owner_ = waiters_.front();
  waiters_.erase(waiters_.begin());
  if (wake_fn_) {
    wake_fn_(owner_);
  }
}

}  // namespace realrate
