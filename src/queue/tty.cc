#include "queue/tty.h"

#include "util/assert.h"

namespace realrate {

void TtyPort::PushInput(TimePoint now) {
  pending_.push_back(now);
  ++total_events_;
  if (!waiters_.empty()) {
    std::vector<ThreadId> to_wake;
    to_wake.swap(waiters_);
    if (wake_fn_) {
      for (ThreadId t : to_wake) {
        wake_fn_(t);
      }
    }
  }
}

bool TtyPort::PopInput(TimePoint now) {
  if (pending_.empty()) {
    return false;
  }
  const TimePoint arrival = pending_.front();
  pending_.pop_front();
  latencies_.push_back((now - arrival).ToSeconds());
  return true;
}

void TtyPort::WaitForInput(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  waiters_.push_back(thread);
}

}  // namespace realrate
