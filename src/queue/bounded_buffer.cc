#include "queue/bounded_buffer.h"

#include <algorithm>
#include <utility>

namespace realrate {

BoundedBuffer::BoundedBuffer(QueueId id, std::string name, int64_t capacity_bytes)
    : id_(id), name_(std::move(name)), capacity_(capacity_bytes) {
  RR_EXPECTS(capacity_bytes > 0);
}

bool BoundedBuffer::TryPush(int64_t bytes) {
  RR_EXPECTS(bytes > 0);
  // An item larger than the whole queue can never fit: a producer would block on
  // WaitForSpace forever waiting for room that cannot exist (silent livelock). Loud
  // contract violation instead — size items to the queue, not vice versa.
  RR_EXPECTS(bytes <= capacity_);
  ++change_epoch_;
  if (fill_ + bytes > capacity_) {
    ++full_hits_;
    return false;
  }
  ApplyFillDelta(bytes);
  total_pushed_ += bytes;
  WakeAll(waiting_consumers_);
  RR_ENSURES(fill_ <= capacity_);
  return true;
}

int64_t BoundedBuffer::TryPop(int64_t bytes) {
  RR_EXPECTS(bytes > 0);
  ++change_epoch_;
  const int64_t n = std::min(bytes, fill_);
  if (n == 0) {
    ++empty_hits_;
    return 0;
  }
  ApplyFillDelta(-n);
  total_popped_ += n;
  WakeAll(waiting_producers_);
  RR_ENSURES(fill_ >= 0);
  return n;
}

bool BoundedBuffer::TryPopExact(int64_t bytes) {
  RR_EXPECTS(bytes > 0);
  // Mirror of the TryPush contract: an exact pop larger than the whole queue can
  // never succeed, so a consumer would block on WaitForData forever.
  RR_EXPECTS(bytes <= capacity_);
  ++change_epoch_;
  if (fill_ < bytes) {
    ++empty_hits_;
    return false;
  }
  ApplyFillDelta(-bytes);
  total_popped_ += bytes;
  WakeAll(waiting_producers_);
  return true;
}

void BoundedBuffer::WaitForSpace(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  waiting_producers_.push_back(thread);
}

void BoundedBuffer::WaitForData(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  waiting_consumers_.push_back(thread);
}

void BoundedBuffer::WakeAll(std::vector<ThreadId>& waiters) {
  if (waiters.empty()) {
    return;
  }
  // Swap out first: a woken thread's work model may re-register during the callback.
  std::vector<ThreadId> to_wake;
  to_wake.swap(waiters);
  if (wake_fn_) {
    for (ThreadId t : to_wake) {
      wake_fn_(t);
    }
  }
}

}  // namespace realrate
