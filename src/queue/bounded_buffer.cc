#include "queue/bounded_buffer.h"

#include <algorithm>
#include <utility>

namespace realrate {

BoundedBuffer::BoundedBuffer(QueueId id, std::string name, int64_t capacity_bytes)
    : id_(id), name_(std::move(name)), capacity_(capacity_bytes) {
  RR_EXPECTS(capacity_bytes > 0);
}

bool BoundedBuffer::TryPush(int64_t bytes) {
  RR_EXPECTS(bytes > 0);
  // An item larger than the whole queue can never fit: a producer would block on
  // WaitForSpace forever waiting for room that cannot exist (silent livelock). Loud
  // contract violation instead — size items to the queue, not vice versa.
  RR_EXPECTS(bytes <= capacity_);
  if (round_push_ != nullptr) {
    // Staked round: the gate proved this push fits in every interleaving, so the op
    // is stake-local (no shared mutable state, no wake — there are no waiters by the
    // gate's admission rules). Exceeding the planned bound is a plan-contract bug.
    RR_CHECK(round_push_->staged_bytes + bytes <= round_push_->budget_bytes);
    round_push_->staged_bytes += bytes;
    ++round_push_->staged_ops;
    return true;
  }
  ++change_epoch_;
  if (fill_ + bytes > capacity_) {
    ++full_hits_;
    return false;
  }
  ApplyFillDelta(bytes);
  total_pushed_ += bytes;
  WakeAll(waiting_consumers_);
  RR_ENSURES(fill_ <= capacity_);
  return true;
}

int64_t BoundedBuffer::TryPop(int64_t bytes) {
  RR_EXPECTS(bytes > 0);
  if (round_pop_ != nullptr) {
    // The plan bounds total pop bytes by the round-start fill, so a staked pop
    // always returns its full request — exactly what the sequential engine would
    // return (fill can only be higher there: same-round pushes land, pops match).
    RR_CHECK(round_pop_->staged_bytes + bytes <= round_pop_->budget_bytes);
    round_pop_->staged_bytes += bytes;
    ++round_pop_->staged_ops;
    return bytes;
  }
  ++change_epoch_;
  const int64_t n = std::min(bytes, fill_);
  if (n == 0) {
    ++empty_hits_;
    return 0;
  }
  ApplyFillDelta(-n);
  total_popped_ += n;
  WakeAll(waiting_producers_);
  RR_ENSURES(fill_ >= 0);
  return n;
}

bool BoundedBuffer::TryPopExact(int64_t bytes) {
  RR_EXPECTS(bytes > 0);
  // Mirror of the TryPush contract: an exact pop larger than the whole queue can
  // never succeed, so a consumer would block on WaitForData forever.
  RR_EXPECTS(bytes <= capacity_);
  if (round_pop_ != nullptr) {
    RR_CHECK(round_pop_->staged_bytes + bytes <= round_pop_->budget_bytes);
    round_pop_->staged_bytes += bytes;
    ++round_pop_->staged_ops;
    return true;
  }
  ++change_epoch_;
  if (fill_ < bytes) {
    ++empty_hits_;
    return false;
  }
  ApplyFillDelta(-bytes);
  total_popped_ += bytes;
  WakeAll(waiting_producers_);
  return true;
}

void BoundedBuffer::InstallRoundStakes(RoundStake* push, RoundStake* pop) {
  RR_EXPECTS(round_push_ == nullptr && round_pop_ == nullptr);
  RR_EXPECTS(push != nullptr || pop != nullptr);
  // Admission sanity, mirroring the gate: the claimed bounds must fit the current
  // fill/headroom, and no waiter may be parked here (a staked op would have to wake
  // it mid-round — a cross-core effect the round contract forbids).
  RR_EXPECTS(push == nullptr || fill_ + push->budget_bytes <= capacity_);
  RR_EXPECTS(pop == nullptr || pop->budget_bytes <= fill_);
  RR_EXPECTS(waiting_producers_.empty() && waiting_consumers_.empty());
  round_push_ = push;
  round_pop_ = pop;
}

void BoundedBuffer::SettleRoundStakes() {
  // Applied pushes before pops so the transient fill never exceeds reality; the
  // settled state — fill (and the registry aggregate, via ApplyFillDelta), totals,
  // change epoch — equals the sequential engine's end-of-round state exactly. No
  // wakes: nothing was waiting (install-time invariant) and staked ops cannot block.
  if (round_push_ != nullptr && round_push_->staged_ops > 0) {
    ApplyFillDelta(round_push_->staged_bytes);
    total_pushed_ += round_push_->staged_bytes;
    change_epoch_ += static_cast<uint64_t>(round_push_->staged_ops);
  }
  if (round_pop_ != nullptr && round_pop_->staged_ops > 0) {
    ApplyFillDelta(-round_pop_->staged_bytes);
    total_popped_ += round_pop_->staged_bytes;
    change_epoch_ += static_cast<uint64_t>(round_pop_->staged_ops);
  }
  RR_ENSURES(fill_ >= 0 && fill_ <= capacity_);
  round_push_ = nullptr;
  round_pop_ = nullptr;
}

void BoundedBuffer::WaitForSpace(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  waiting_producers_.push_back(thread);
}

void BoundedBuffer::WaitForData(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  waiting_consumers_.push_back(thread);
}

void BoundedBuffer::WakeAll(std::vector<ThreadId>& waiters) {
  if (waiters.empty()) {
    return;
  }
  // Swap out first: a woken thread's work model may re-register during the callback.
  std::vector<ThreadId> to_wake;
  to_wake.swap(waiters);
  if (wake_fn_) {
    for (ThreadId t : to_wake) {
      wake_fn_(t);
    }
  }
}

}  // namespace realrate
