#include "queue/registry.h"

#include <utility>

#include "util/assert.h"

namespace realrate {

BoundedBuffer* QueueRegistry::CreateQueue(std::string name, int64_t capacity_bytes) {
  const auto id = static_cast<QueueId>(queues_.size());
  queues_.push_back(std::make_unique<BoundedBuffer>(id, std::move(name), capacity_bytes));
  raw_queues_.push_back(queues_.back().get());
  total_capacity_bytes_ += capacity_bytes;
  queues_.back()->SetFillAggregate(&total_fill_bytes_);
  return queues_.back().get();
}

void QueueRegistry::Register(BoundedBuffer* queue, ThreadId thread, QueueRole role) {
  RR_EXPECTS(queue != nullptr);
  RR_EXPECTS(thread != kInvalidThreadId);
  linkages_by_thread_[thread].push_back({queue, thread, role});
  ++linkage_epoch_[thread];
}

void QueueRegistry::Unregister(ThreadId thread) {
  linkages_by_thread_.erase(thread);
  ++linkage_epoch_[thread];
}

const std::vector<QueueLinkage>& QueueRegistry::LinkagesFor(ThreadId thread) const {
  static const std::vector<QueueLinkage> kNone;
  const auto it = linkages_by_thread_.find(thread);
  return it == linkages_by_thread_.end() ? kNone : it->second;
}

bool QueueRegistry::HasMetrics(ThreadId thread) const {
  const auto it = linkages_by_thread_.find(thread);
  return it != linkages_by_thread_.end() && !it->second.empty();
}

uint64_t QueueRegistry::linkage_epoch(ThreadId thread) const {
  const auto it = linkage_epoch_.find(thread);
  return it == linkage_epoch_.end() ? 0 : it->second;
}

BoundedBuffer* QueueRegistry::Find(QueueId id) {
  if (id < 0 || static_cast<size_t>(id) >= queues_.size()) {
    return nullptr;
  }
  return queues_[id].get();
}


}  // namespace realrate
