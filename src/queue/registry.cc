#include "queue/registry.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace realrate {

BoundedBuffer* QueueRegistry::CreateQueue(std::string name, int64_t capacity_bytes) {
  const auto id = static_cast<QueueId>(queues_.size());
  queues_.push_back(std::make_unique<BoundedBuffer>(id, std::move(name), capacity_bytes));
  return queues_.back().get();
}

void QueueRegistry::Register(BoundedBuffer* queue, ThreadId thread, QueueRole role) {
  RR_EXPECTS(queue != nullptr);
  RR_EXPECTS(thread != kInvalidThreadId);
  linkages_.push_back({queue, thread, role});
}

void QueueRegistry::Unregister(ThreadId thread) {
  linkages_.erase(std::remove_if(linkages_.begin(), linkages_.end(),
                                 [thread](const QueueLinkage& l) { return l.thread == thread; }),
                  linkages_.end());
}

std::vector<QueueLinkage> QueueRegistry::LinkagesFor(ThreadId thread) const {
  std::vector<QueueLinkage> out;
  for (const QueueLinkage& l : linkages_) {
    if (l.thread == thread) {
      out.push_back(l);
    }
  }
  return out;
}

bool QueueRegistry::HasMetrics(ThreadId thread) const {
  for (const QueueLinkage& l : linkages_) {
    if (l.thread == thread) {
      return true;
    }
  }
  return false;
}

BoundedBuffer* QueueRegistry::Find(QueueId id) {
  if (id < 0 || static_cast<size_t>(id) >= queues_.size()) {
    return nullptr;
  }
  return queues_[id].get();
}

std::vector<BoundedBuffer*> QueueRegistry::AllQueues() {
  std::vector<BoundedBuffer*> out;
  out.reserve(queues_.size());
  for (auto& q : queues_) {
    out.push_back(q.get());
  }
  return out;
}

}  // namespace realrate
