#include "queue/pipe.h"

#include <utility>

#include "util/assert.h"

namespace realrate {

SimPipe::SimPipe(QueueRegistry& registry, std::string name, int64_t capacity_bytes)
    : registry_(registry),
      buffer_(registry.CreateQueue(std::move(name), capacity_bytes)) {}

void SimPipe::AttachWriter(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  RR_EXPECTS(writer_ == kInvalidThreadId);
  writer_ = thread;
  registry_.Register(buffer_, thread, QueueRole::kProducer);
}

void SimPipe::AttachReader(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  RR_EXPECTS(reader_ == kInvalidThreadId);
  reader_ = thread;
  registry_.Register(buffer_, thread, QueueRole::kConsumer);
}

SimSocket::SimSocket(QueueRegistry& registry, std::string name, int64_t buffer_bytes)
    : registry_(registry),
      a_to_b_(registry.CreateQueue(name + ":a>b", buffer_bytes)),
      b_to_a_(registry.CreateQueue(name + ":b>a", buffer_bytes)) {}

void SimSocket::AttachEndpointA(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  RR_EXPECTS(a_ == kInvalidThreadId);
  a_ = thread;
  registry_.Register(a_to_b_, thread, QueueRole::kProducer);
  registry_.Register(b_to_a_, thread, QueueRole::kConsumer);
}

void SimSocket::AttachEndpointB(ThreadId thread) {
  RR_EXPECTS(thread != kInvalidThreadId);
  RR_EXPECTS(b_ == kInvalidThreadId);
  b_ = thread;
  registry_.Register(a_to_b_, thread, QueueRole::kConsumer);
  registry_.Register(b_to_a_, thread, QueueRole::kProducer);
}

}  // namespace realrate
