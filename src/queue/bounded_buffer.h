// BoundedBuffer: the canonical symbiotic interface of the paper. A byte-counted queue
// between a producer and a consumer that exposes exactly what the kernel-side monitor
// needs: fill level, size, and each endpoint's role. Models shared-memory queues, pipes
// and sockets uniformly (the controller never looks deeper than fill/size/role).
#ifndef REALRATE_QUEUE_BOUNDED_BUFFER_H_
#define REALRATE_QUEUE_BOUNDED_BUFFER_H_

#include <functional>
#include <string>
#include <vector>

#include "util/assert.h"
#include "util/types.h"

namespace realrate {

class BoundedBuffer {
 public:
  using WakeFn = std::function<void(ThreadId)>;

  // capacity_bytes must be positive: a zero-capacity queue has no well-defined fill
  // fraction (the controller's progress metric divides by capacity) and could never
  // carry data, so construction rejects it outright.
  BoundedBuffer(QueueId id, std::string name, int64_t capacity_bytes);

  QueueId id() const { return id_; }
  const std::string& name() const { return name_; }
  int64_t capacity() const { return capacity_; }
  int64_t fill() const { return fill_; }
  bool Empty() const { return fill_ == 0; }
  bool Full() const { return fill_ == capacity_; }

  // Fill level as a fraction in [0, 1].
  double FillFraction() const { return static_cast<double>(fill_) / static_cast<double>(capacity_); }

  // The paper's progress metric F = fill/size - 1/2, in [-1/2, +1/2] (Figure 3).
  double PressureMetric() const { return FillFraction() - 0.5; }

  // Installed by the machine so queue state changes can wake blocked threads.
  void SetWakeFn(WakeFn fn) { wake_fn_ = std::move(fn); }

  // Installed by the owning registry: every fill-level change is mirrored into
  // *aggregate as a delta, giving the registry a machine-wide fill sum that is O(1)
  // to read (the cluster router's queue-pressure signal) without a per-read sweep.
  void SetFillAggregate(int64_t* aggregate) {
    fill_aggregate_ = aggregate;
    if (fill_aggregate_ != nullptr) {
      *fill_aggregate_ += fill_;
    }
  }

  // Attempts to append `bytes` (0 < bytes <= capacity; an item that exceeds the whole
  // queue could never fit and would livelock a producer waiting for space, so it is a
  // contract violation). Returns false (and changes nothing) if it doesn't fit right
  // now — including the exactly-full case, where a push of precisely the remaining
  // space still succeeds. On success, wakes all waiting consumers.
  bool TryPush(int64_t bytes);
  // Attempts to remove up to `bytes`; returns the number removed (0 when empty).
  // On any removal, wakes all waiting producers.
  int64_t TryPop(int64_t bytes);
  // Removes exactly `bytes` or nothing (0 < bytes <= capacity — the mirror of the
  // TryPush contract: an exact request exceeding the whole queue could never be
  // satisfied and would livelock a consumer waiting for data). Returns whether it
  // removed.
  bool TryPopExact(int64_t bytes);

  // Registers the calling thread as waiting for space (producer) or data (consumer).
  // The machine marks the thread blocked; a later TryPush/TryPop wakes it.
  void WaitForSpace(ThreadId thread);
  void WaitForData(ThreadId thread);

  // Total bytes ever pushed/popped (progress counters for experiments).
  int64_t total_pushed() const { return total_pushed_; }
  int64_t total_popped() const { return total_popped_; }

  // Saturation evidence for the controller's quality-exception detector: number of
  // operations that found the queue too full (failed push) or too empty (pop that got
  // nothing / failed exact pop).
  int64_t full_hits() const { return full_hits_; }
  int64_t empty_hits() const { return empty_hits_; }

  // Change epoch: bumped by every TryPush/TryPop/TryPopExact (each mutates the fill
  // level or a saturation counter, so each changes what the controller could observe
  // here). The controller's dirty-set sampler skips its per-tick pressure and
  // saturation sweeps for threads whose linked queues all kept their epoch since the
  // previous tick.
  uint64_t change_epoch() const { return change_epoch_; }

  // --- Round reservation (the parallel engine's slot-reservation API) ---
  // One endpoint's pre-claimed slice of this queue for a single gated dispatch
  // round. The coordinator sizes `budget_bytes` from the owning thread's round queue
  // plan and installs the stake before forking; mid-round TryPush/TryPop/TryPopExact
  // against a staked endpoint touch ONLY the stake — no shared buffer state — so the
  // operating core stays lock-free and share-nothing. The gate has already proved
  // every staked op succeeds with its full request (no full/empty edge is reachable
  // in any interleaving), which is what makes the stake-local outcomes identical to
  // the sequential engine's.
  struct RoundStake {
    int64_t budget_bytes = 0;  // Upper bound claimed at round start.
    int64_t staged_bytes = 0;  // Bytes actually pushed/popped mid-round.
    int64_t staged_ops = 0;    // Operations performed (change-epoch bumps to replay).
  };

  // Installs the per-round stakes (either may be null: endpoint not planned).
  // Coordinator-only, outside the forked region; stake storage must not move while
  // installed. SettleRoundStakes applies the staged deltas — fill (through the
  // registry aggregate), totals, and the change epoch — and clears the pointers.
  // The settled state is bit-identical to the sequential engine's end-of-round state.
  void InstallRoundStakes(RoundStake* push, RoundStake* pop);
  void SettleRoundStakes();
  bool HasRoundStakes() const { return round_push_ != nullptr || round_pop_ != nullptr; }

  const std::vector<ThreadId>& waiting_producers() const { return waiting_producers_; }
  const std::vector<ThreadId>& waiting_consumers() const { return waiting_consumers_; }

  // Coordinator-only scratch for the mailbox gate's queue-table construction: marks
  // this buffer as seen during evaluation `stamp` and remembers its table slot, so
  // deduplicating plan entries is O(1) per op with no hash map. Never touched by
  // worker threads; meaningless outside one gate evaluation.
  bool PlanMark(uint64_t stamp, int32_t slot) {
    if (plan_stamp_ == stamp) {
      return false;  // Already in this evaluation's table.
    }
    plan_stamp_ = stamp;
    plan_slot_ = slot;
    return true;
  }
  int32_t plan_slot() const { return plan_slot_; }

 private:
  void WakeAll(std::vector<ThreadId>& waiters);
  // Plain (non-atomic) by design, unlike ThreadSlabs::runnable_count_, which must
  // take relaxed RMWs while a parallel round is in flight: fill_ and the registry
  // aggregate are never written during a staked round. The staked TryPush/TryPop
  // fast paths touch only their per-thread RoundStake (one writer each, by the
  // gate's single-pusher/single-popper rule), and SettleRoundStakes runs on the
  // coordinator after the round barrier — so every ApplyFillDelta call is in a
  // single-threaded phase. The TSan leg (web_farm_test, cluster_test, the
  // host-threads-4 fuzz smoke) enforces this mechanically.
  void ApplyFillDelta(int64_t delta) {
    fill_ += delta;
    if (fill_aggregate_ != nullptr) {
      *fill_aggregate_ += delta;
    }
  }

  const QueueId id_;
  const std::string name_;
  const int64_t capacity_;
  int64_t fill_ = 0;
  int64_t total_pushed_ = 0;
  int64_t total_popped_ = 0;
  int64_t full_hits_ = 0;
  int64_t empty_hits_ = 0;
  uint64_t change_epoch_ = 0;
  int64_t* fill_aggregate_ = nullptr;
  RoundStake* round_push_ = nullptr;  // Non-null only inside a staked parallel round.
  RoundStake* round_pop_ = nullptr;
  uint64_t plan_stamp_ = 0;  // Gate-evaluation scratch (see PlanMark).
  int32_t plan_slot_ = -1;
  WakeFn wake_fn_;
  std::vector<ThreadId> waiting_producers_;
  std::vector<ThreadId> waiting_consumers_;
};

}  // namespace realrate

#endif  // REALRATE_QUEUE_BOUNDED_BUFFER_H_
