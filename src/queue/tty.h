// TtyPort: event source for interactive jobs. "Interactive jobs are servers that
// listen to ttys instead of sockets." Modeled as an unbounded event queue fed by a
// simulated user; the interactive work model blocks on it between keystrokes. Also
// records input->service latency so experiments can quantify interactive response.
#ifndef REALRATE_QUEUE_TTY_H_
#define REALRATE_QUEUE_TTY_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "util/time.h"
#include "util/types.h"

namespace realrate {

class TtyPort {
 public:
  using WakeFn = std::function<void(ThreadId)>;

  explicit TtyPort(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void SetWakeFn(WakeFn fn) { wake_fn_ = std::move(fn); }

  // The simulated user types at time `now`; wakes the listener if blocked.
  void PushInput(TimePoint now);
  // The interactive job consumes one input event; records latency. Returns false when
  // no input is pending.
  bool PopInput(TimePoint now);
  bool HasInput() const { return !pending_.empty(); }

  void WaitForInput(ThreadId thread);

  // Observed input->service latencies (seconds), for response-time experiments.
  const std::vector<double>& latencies() const { return latencies_; }
  int64_t total_events() const { return total_events_; }

 private:
  const std::string name_;
  std::deque<TimePoint> pending_;
  std::vector<double> latencies_;
  std::vector<ThreadId> waiters_;
  WakeFn wake_fn_;
  int64_t total_events_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_QUEUE_TTY_H_
