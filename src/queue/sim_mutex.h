// A simulated mutex with FIFO waiters. Exists to reproduce the Mars Pathfinder
// priority-inversion scenario from the paper's motivation section under the baseline
// fixed-priority scheduler, and to show the feedback allocator avoids it.
#ifndef REALRATE_QUEUE_SIM_MUTEX_H_
#define REALRATE_QUEUE_SIM_MUTEX_H_

#include <functional>
#include <string>
#include <vector>

#include "util/types.h"

namespace realrate {

class SimMutex {
 public:
  using WakeFn = std::function<void(ThreadId)>;

  explicit SimMutex(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  bool IsHeld() const { return owner_ != kInvalidThreadId; }
  ThreadId owner() const { return owner_; }

  void SetWakeFn(WakeFn fn) { wake_fn_ = std::move(fn); }

  // Acquires if free; returns true. Otherwise returns false (caller should block and
  // call WaitFor).
  bool TryLock(ThreadId thread);
  // Registers `thread` as waiting; woken FIFO on unlock.
  void WaitFor(ThreadId thread);
  // Releases. Requires the caller to be the owner. Hands ownership to the first waiter
  // (if any) and wakes it.
  void Unlock(ThreadId thread);

  size_t waiter_count() const { return waiters_.size(); }

 private:
  const std::string name_;
  ThreadId owner_ = kInvalidThreadId;
  std::vector<ThreadId> waiters_;
  WakeFn wake_fn_;
};

}  // namespace realrate

#endif  // REALRATE_QUEUE_SIM_MUTEX_H_
