// SimThread: the schedulable entity. Carries the reservation attributes (proportion,
// period), the controller-facing classification and importance, usage accounting, and
// the thread's work model.
#ifndef REALRATE_TASK_THREAD_H_
#define REALRATE_TASK_THREAD_H_

#include <memory>
#include <string>

#include "task/work_model.h"
#include "util/assert.h"
#include "util/time.h"
#include "util/types.h"

namespace realrate {

enum class ThreadState : uint8_t {
  kRunnable,
  kRunning,
  kBlocked,   // Waiting on a queue/mutex/tty.
  kSleeping,  // Waiting on a timer (budget exhausted, next period, or voluntary).
  kExited,
};

const char* ToString(ThreadState state);

// The controller's taxonomy (paper Figure 2), plus the §3.2 interactive refinement.
enum class ThreadClass : uint8_t {
  kRealTime,          // Proportion and period specified: a reservation; never adapted.
  kAperiodicRealTime, // Proportion specified, period assigned by the controller.
  kRealRate,          // Progress metric visible; controller estimates both.
  kMiscellaneous,     // No information; constant-pressure heuristic.
  kInteractive,       // Tty listener: small period, proportion from burst measurement.
};

const char* ToString(ThreadClass cls);

class ThreadSlabs;

// Scheduling policies recognised by the dispatcher layer.
enum class SchedPolicy : uint8_t {
  kReservation,  // Under the RBS proportion/period policy.
  kOther,        // Default policy (used before registration and by baselines).
};

class SimThread {
 public:
  SimThread(ThreadId id, std::string name, std::unique_ptr<WorkModel> work);

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  ThreadId id() const { return id_; }
  const std::string& name() const { return name_; }
  WorkModel& work() { return *work_; }

  // Hot-field setters (state, class, policy, importance, affinity, reservation,
  // budget, period phase) write through to the bound slab columns, so they are
  // defined out of line in thread.cc — every other accessor stays inline.

  ThreadState state() const { return state_; }
  void set_state(ThreadState s);
  // When the thread last became runnable (wake from block/sleep; origin at creation).
  // The deadline-miss check uses it to ignore threads that only wanted CPU for part of
  // the period.
  TimePoint last_wake_time() const { return last_wake_time_; }
  void set_last_wake_time(TimePoint t) { last_wake_time_ = t; }
  bool IsRunnable() const { return state_ == ThreadState::kRunnable; }
  bool HasExited() const { return state_ == ThreadState::kExited; }

  // --- Classification / controller inputs ---
  ThreadClass thread_class() const { return class_; }
  void set_thread_class(ThreadClass c);
  SchedPolicy policy() const { return policy_; }
  void set_policy(SchedPolicy p);
  double importance() const { return importance_; }
  void set_importance(double w);

  // --- Core affinity (maintained by the Machine's placement/migration policy) ---
  // The core this thread dispatches on. A thread only ever runs on its assigned core;
  // the Machine moves it with Migrate(), never mid-dispatch.
  CpuId cpu() const { return cpu_; }
  void set_cpu(CpuId core);

  // --- Reservation attributes (actuated by the controller) ---
  Proportion proportion() const { return proportion_; }
  Duration period() const { return period_; }
  void SetReservation(Proportion proportion, Duration period);

  // --- Per-period budget bookkeeping (maintained by the RBS scheduler) ---
  Cycles budget_remaining() const { return budget_remaining_; }
  void set_budget_remaining(Cycles c);
  // Budget the thread was entitled to at the start of the current period. Deadline
  // misses are judged against this snapshot, so a controller raising the proportion
  // mid-period does not retroactively create "misses".
  Cycles period_entitlement() const { return period_entitlement_; }
  void set_period_entitlement(Cycles c) { period_entitlement_ = c; }
  TimePoint period_start() const { return period_start_; }
  void set_period_start(TimePoint t);
  int64_t deadline_misses() const { return deadline_misses_; }
  void CountDeadlineMiss() { ++deadline_misses_; }

  // --- Scheduler-private slot ---
  // Opaque per-thread state owned by the scheduler instance the thread is currently
  // enqueued on (set by its AddThread, cleared by its RemoveThread). Exists so the
  // dispatch hot path reaches its per-thread index node without a hash lookup; no
  // one but the owning scheduler may interpret it. See RbsScheduler::Node.
  void* sched_slot() const { return sched_slot_; }
  void set_sched_slot(void* slot) { sched_slot_ = slot; }

  // --- Hot-field slab binding (see task/thread_slabs.h) ---
  // The slab this thread's hot fields are mirrored into (null when unbound) and its
  // slot there. The slot is stable across migrations and other threads' lifecycle;
  // consumers may cache it for the binding's lifetime.
  ThreadSlabs* bound_slabs() const { return slabs_; }
  int32_t slab_slot() const { return slab_slot_; }

  // --- Baseline-scheduler bookkeeping ---
  int priority() const { return priority_; }
  void set_priority(int p) { priority_ = p; }
  int counter() const { return counter_; }
  void set_counter(int c) { counter_ = c; }
  int64_t tickets() const { return tickets_; }
  void set_tickets(int64_t t) { tickets_ = t; }

  // --- Usage accounting ---
  void OnRan(Cycles used) {
    RR_EXPECTS(used >= 0);
    total_cycles_ += used;
    window_cycles_ += used;
    cycles_this_period_ += used;
    burst_accum_ += used;
  }
  Cycles total_cycles() const { return total_cycles_; }
  Cycles cycles_this_period() const { return cycles_this_period_; }
  void ResetPeriodCycles() { cycles_this_period_ = 0; }
  // Controller sampling: cycles used since the previous sample.
  Cycles TakeWindowCycles() {
    const Cycles c = window_cycles_;
    window_cycles_ = 0;
    return c;
  }

  // --- Progress counter (bytes/items/keys processed), read by experiments ---
  void AddProgress(int64_t units) { progress_units_ += units; }
  int64_t progress_units() const { return progress_units_; }

  // --- Burst measurement (the §3.2 interactive heuristic: "estimating their
  // proportion by measuring the amount of time they typically run before blocking").
  // OnRan accumulates; the machine calls OnBurstEnd when the thread blocks or sleeps
  // voluntarily, folding the burst into an exponentially weighted average. ---
  void OnBurstEnd() {
    if (burst_accum_ > 0) {
      burst_ewma_ = burst_ewma_ == 0.0
                        ? static_cast<double>(burst_accum_)
                        : 0.7 * burst_ewma_ + 0.3 * static_cast<double>(burst_accum_);
      burst_accum_ = 0;
    }
  }
  double burst_ewma_cycles() const { return burst_ewma_; }

 private:
  friend class ThreadSlabs;  // Maintains slabs_/slab_slot_ on Bind/Release.

  const ThreadId id_;
  const std::string name_;
  std::unique_ptr<WorkModel> work_;

  ThreadSlabs* slabs_ = nullptr;
  int32_t slab_slot_ = -1;

  ThreadState state_ = ThreadState::kRunnable;
  ThreadClass class_ = ThreadClass::kMiscellaneous;
  SchedPolicy policy_ = SchedPolicy::kOther;
  double importance_ = 1.0;
  CpuId cpu_ = 0;

  Proportion proportion_ = Proportion::Zero();
  Duration period_ = Duration::Millis(30);  // Paper's default period.

  Cycles budget_remaining_ = 0;
  Cycles period_entitlement_ = 0;
  TimePoint period_start_;
  TimePoint last_wake_time_;
  int64_t deadline_misses_ = 0;

  void* sched_slot_ = nullptr;

  int priority_ = 0;
  int counter_ = 0;
  int64_t tickets_ = 100;

  Cycles total_cycles_ = 0;
  Cycles window_cycles_ = 0;
  Cycles cycles_this_period_ = 0;
  int64_t progress_units_ = 0;
  Cycles burst_accum_ = 0;
  double burst_ewma_ = 0.0;
};

}  // namespace realrate

#endif  // REALRATE_TASK_THREAD_H_
