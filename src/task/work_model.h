// WorkModel: how a simulated thread spends the CPU cycles the dispatcher grants it.
// Concrete models (producer, consumer, CPU hog, interactive, pipeline stage...) live in
// src/workloads.
#ifndef REALRATE_TASK_WORK_MODEL_H_
#define REALRATE_TASK_WORK_MODEL_H_

#include <cstdint>
#include <vector>

#include "util/time.h"
#include "util/types.h"

namespace realrate {

class BoundedBuffer;

// One planned queue operation for a gated parallel round: conservative upper bounds
// on the bytes this thread will push to / pop from `queue` over one dispatch tick.
// The Machine's mailbox gate sums these per queue and admits the round only when no
// interleaving can reach a full/empty edge (see Machine::RoundPlanIsFeasible).
struct RoundQueueOp {
  BoundedBuffer* queue = nullptr;
  int64_t push_bytes = 0;  // Upper bound on bytes pushed this tick (0 = no pushes).
  int64_t pop_bytes = 0;   // Upper bound on bytes popped this tick (0 = no pops).
};

// Outcome of one scheduling slice.
struct RunResult {
  enum class Next : uint8_t {
    // Consumed `used` cycles and remains runnable (used == granted unless it yielded).
    kRunnable,
    // Blocked on a wait object (queue full/empty, mutex, tty). The work model has
    // already registered the thread with the wait object; the machine only marks the
    // thread blocked. `block_tag` identifies the object for tracing.
    kBlocked,
    // Voluntarily sleeps until `wake_at` (e.g. an isochronous device waiting for its
    // next frame time).
    kSleeping,
    // Finished; the thread leaves the system.
    kExited,
  };

  Cycles used = 0;
  Next next = Next::kRunnable;
  int64_t block_tag = -1;
  TimePoint wake_at;

  static RunResult Ran(Cycles used) { return {used, Next::kRunnable, -1, TimePoint()}; }
  static RunResult Blocked(Cycles used, int64_t tag) {
    return {used, Next::kBlocked, tag, TimePoint()};
  }
  static RunResult Sleeping(Cycles used, TimePoint wake_at) {
    return {used, Next::kSleeping, -1, wake_at};
  }
  static RunResult Exited(Cycles used) { return {used, Next::kExited, -1, TimePoint()}; }
};

class SimThread;

class WorkModel {
 public:
  virtual ~WorkModel() = default;

  // Runs for up to `granted` cycles starting at virtual time `now`. Must consume
  // result.used <= granted cycles. Queue operations take effect immediately (the
  // simulator treats a slice's side effects as happening at slice start).
  virtual RunResult Run(TimePoint now, Cycles granted) = 0;

  // Notification that the thread was woken after blocking/sleeping.
  virtual void OnWake(TimePoint /*now*/) {}

  // How many cycles, starting at `now`, this model can consume with NO side effects
  // outside the owning thread — no queue/mutex/tty traffic, no blocking, no sleeping,
  // no exiting: every Run over the span returns kRunnable and touches only the
  // thread's own counters. The Machine's parallel engine runs a tick round across
  // host threads only when every runnable thread answers at least a full tick
  // (anything else falls back to the sequential reference path), so the conservative
  // default of 0 is always safe. Models that are provably thread-local (the CPU hogs)
  // override this to admit their rounds.
  virtual Cycles RoundLocalCycles(TimePoint /*now*/) const { return 0; }

  // Round queue plan: the mailbox gate's per-thread contract. Appends to `ops` one
  // entry per queue this model may touch during a dispatch tick at `now` in which it
  // receives at most `budget` cycles, with conservative upper bounds on the bytes
  // moved, and returns true — promising that, PROVIDED every listed push succeeds and
  // every listed pop returns its full request, any dispatch sequence totaling at most
  // `budget` cycles (i) touches no queue/mutex/tty other than the listed queues and
  // stays within the listed bounds, (ii) leaves the thread runnable throughout (no
  // block, sleep, or exit), and (iii) has no other cross-thread effects beyond what
  // round staging defers (BeginRoundStaging below). Models whose next ops depend on
  // data another thread could produce THIS round (e.g. a consumer whose budget
  // outruns the input present at round start) must return false — a data-limited
  // plan; list the limiting queue in `ops` (bounds ignored) so the gate's failure
  // cache can key on its change epoch. The default — return false, list nothing —
  // is always safe and takes the sequential path.
  virtual bool PlanRoundQueueOps(TimePoint /*now*/, Cycles /*budget*/,
                                 std::vector<RoundQueueOp>* /*ops*/) {
    return false;
  }

  // Round staging: bracketing hooks for models admitted to a mailbox round whose
  // side effects include non-queue shared state (a side-band meta FIFO another
  // core's thread pushes, a shared sample set). Between BeginRoundStaging and
  // FlushRoundEffects, Run must buffer such effects locally; FlushRoundEffects —
  // invoked by the coordinator at the epoch barrier, cores in ascending order —
  // applies them. Per shared structure at most one staging writer is admitted per
  // round (the gate's single-pusher rule), so the flushed order equals the
  // sequential engine's. Models with no such effects ignore both.
  virtual void BeginRoundStaging() {}
  virtual void FlushRoundEffects() {}

  // Called once by ThreadRegistry::Create to attach the owning thread. Work models use
  // it for wait registration (they need the thread id) and progress counters.
  void Bind(SimThread* self) { self_ = self; }

 protected:
  SimThread* self() const { return self_; }

 private:
  SimThread* self_ = nullptr;
};

}  // namespace realrate

#endif  // REALRATE_TASK_WORK_MODEL_H_
