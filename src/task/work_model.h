// WorkModel: how a simulated thread spends the CPU cycles the dispatcher grants it.
// Concrete models (producer, consumer, CPU hog, interactive, pipeline stage...) live in
// src/workloads.
#ifndef REALRATE_TASK_WORK_MODEL_H_
#define REALRATE_TASK_WORK_MODEL_H_

#include <cstdint>

#include "util/time.h"
#include "util/types.h"

namespace realrate {

// Outcome of one scheduling slice.
struct RunResult {
  enum class Next : uint8_t {
    // Consumed `used` cycles and remains runnable (used == granted unless it yielded).
    kRunnable,
    // Blocked on a wait object (queue full/empty, mutex, tty). The work model has
    // already registered the thread with the wait object; the machine only marks the
    // thread blocked. `block_tag` identifies the object for tracing.
    kBlocked,
    // Voluntarily sleeps until `wake_at` (e.g. an isochronous device waiting for its
    // next frame time).
    kSleeping,
    // Finished; the thread leaves the system.
    kExited,
  };

  Cycles used = 0;
  Next next = Next::kRunnable;
  int64_t block_tag = -1;
  TimePoint wake_at;

  static RunResult Ran(Cycles used) { return {used, Next::kRunnable, -1, TimePoint()}; }
  static RunResult Blocked(Cycles used, int64_t tag) {
    return {used, Next::kBlocked, tag, TimePoint()};
  }
  static RunResult Sleeping(Cycles used, TimePoint wake_at) {
    return {used, Next::kSleeping, -1, wake_at};
  }
  static RunResult Exited(Cycles used) { return {used, Next::kExited, -1, TimePoint()}; }
};

class SimThread;

class WorkModel {
 public:
  virtual ~WorkModel() = default;

  // Runs for up to `granted` cycles starting at virtual time `now`. Must consume
  // result.used <= granted cycles. Queue operations take effect immediately (the
  // simulator treats a slice's side effects as happening at slice start).
  virtual RunResult Run(TimePoint now, Cycles granted) = 0;

  // Notification that the thread was woken after blocking/sleeping.
  virtual void OnWake(TimePoint /*now*/) {}

  // How many cycles, starting at `now`, this model can consume with NO side effects
  // outside the owning thread — no queue/mutex/tty traffic, no blocking, no sleeping,
  // no exiting: every Run over the span returns kRunnable and touches only the
  // thread's own counters. The Machine's parallel engine runs a tick round across
  // host threads only when every runnable thread answers at least a full tick
  // (anything else falls back to the sequential reference path), so the conservative
  // default of 0 is always safe. Models that are provably thread-local (the CPU hogs)
  // override this to admit their rounds.
  virtual Cycles RoundLocalCycles(TimePoint /*now*/) const { return 0; }

  // Called once by ThreadRegistry::Create to attach the owning thread. Work models use
  // it for wait registration (they need the thread id) and progress counters.
  void Bind(SimThread* self) { self_ = self; }

 protected:
  SimThread* self() const { return self_; }

 private:
  SimThread* self_ = nullptr;
};

}  // namespace realrate

#endif  // REALRATE_TASK_WORK_MODEL_H_
