#include "task/thread.h"

#include <utility>

#include "task/thread_slabs.h"

namespace realrate {

const char* ToString(ThreadState state) {
  switch (state) {
    case ThreadState::kRunnable:
      return "runnable";
    case ThreadState::kRunning:
      return "running";
    case ThreadState::kBlocked:
      return "blocked";
    case ThreadState::kSleeping:
      return "sleeping";
    case ThreadState::kExited:
      return "exited";
  }
  return "?";
}

const char* ToString(ThreadClass cls) {
  switch (cls) {
    case ThreadClass::kRealTime:
      return "real-time";
    case ThreadClass::kAperiodicRealTime:
      return "aperiodic-real-time";
    case ThreadClass::kRealRate:
      return "real-rate";
    case ThreadClass::kMiscellaneous:
      return "miscellaneous";
    case ThreadClass::kInteractive:
      return "interactive";
  }
  return "?";
}

SimThread::SimThread(ThreadId id, std::string name, std::unique_ptr<WorkModel> work)
    : id_(id), name_(std::move(name)), work_(std::move(work)) {
  RR_EXPECTS(work_ != nullptr);
}

// --- Hot-field setters: canonical write, then write-through to the slab columns ---

void SimThread::set_state(ThreadState s) {
  state_ = s;
  if (slabs_ != nullptr) {
    slabs_->MirrorState(slab_slot_, s);
  }
}

void SimThread::set_thread_class(ThreadClass c) {
  class_ = c;
  if (slabs_ != nullptr) {
    slabs_->MirrorClass(slab_slot_, c);
  }
}

void SimThread::set_policy(SchedPolicy p) {
  policy_ = p;
  if (slabs_ != nullptr) {
    slabs_->MirrorPolicy(slab_slot_, p);
  }
}

void SimThread::set_importance(double w) {
  RR_EXPECTS(w > 0);
  importance_ = w;
  if (slabs_ != nullptr) {
    slabs_->MirrorImportance(slab_slot_, w);
  }
}

void SimThread::set_cpu(CpuId core) {
  RR_EXPECTS(core >= 0);
  cpu_ = core;
  if (slabs_ != nullptr) {
    slabs_->MirrorCpu(slab_slot_, core);
  }
}

void SimThread::SetReservation(Proportion proportion, Duration period) {
  RR_EXPECTS(proportion.ppt() >= 0 && proportion.ppt() <= Proportion::kFull);
  RR_EXPECTS(period.IsPositive());
  proportion_ = proportion;
  period_ = period;
  if (slabs_ != nullptr) {
    slabs_->MirrorReservation(slab_slot_, *this);
  }
}

void SimThread::set_budget_remaining(Cycles c) {
  budget_remaining_ = c;
  if (slabs_ != nullptr) {
    slabs_->MirrorBudget(slab_slot_, c);
  }
}

void SimThread::set_period_start(TimePoint t) {
  period_start_ = t;
  if (slabs_ != nullptr) {
    // Moving the period phase moves the deadline (and nothing else reservation-side).
    slabs_->MirrorReservation(slab_slot_, *this);
  }
}

}  // namespace realrate
