#include "task/thread.h"

#include <utility>

namespace realrate {

const char* ToString(ThreadState state) {
  switch (state) {
    case ThreadState::kRunnable:
      return "runnable";
    case ThreadState::kRunning:
      return "running";
    case ThreadState::kBlocked:
      return "blocked";
    case ThreadState::kSleeping:
      return "sleeping";
    case ThreadState::kExited:
      return "exited";
  }
  return "?";
}

const char* ToString(ThreadClass cls) {
  switch (cls) {
    case ThreadClass::kRealTime:
      return "real-time";
    case ThreadClass::kAperiodicRealTime:
      return "aperiodic-real-time";
    case ThreadClass::kRealRate:
      return "real-rate";
    case ThreadClass::kMiscellaneous:
      return "miscellaneous";
    case ThreadClass::kInteractive:
      return "interactive";
  }
  return "?";
}

SimThread::SimThread(ThreadId id, std::string name, std::unique_ptr<WorkModel> work)
    : id_(id), name_(std::move(name)), work_(std::move(work)) {
  RR_EXPECTS(work_ != nullptr);
}

}  // namespace realrate
