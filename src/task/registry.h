// Owns every SimThread in a simulation and allocates thread ids.
#ifndef REALRATE_TASK_REGISTRY_H_
#define REALRATE_TASK_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "task/thread.h"

namespace realrate {

class ThreadRegistry {
 public:
  // Creates a thread owned by the registry; returns a stable non-owning pointer.
  SimThread* Create(std::string name, std::unique_ptr<WorkModel> work);

  SimThread* Find(ThreadId id);
  const SimThread* Find(ThreadId id) const;
  SimThread* FindByName(const std::string& name);

  size_t size() const { return threads_.size(); }
  // Iteration in creation order (deterministic). Returns a reference to the
  // registry's own pointer index — O(1); the Machine walks this on hot paths
  // (placement, rebalancing, idle-suspension checks), so no per-call vector is
  // materialized. The reference is invalidated by Create().
  const std::vector<SimThread*>& All() const { return raw_; }

 private:
  std::vector<std::unique_ptr<SimThread>> threads_;
  std::vector<SimThread*> raw_;  // threads_[i].get(), maintained by Create().
};

}  // namespace realrate

#endif  // REALRATE_TASK_REGISTRY_H_
