// Owns every SimThread in a simulation and allocates thread ids.
#ifndef REALRATE_TASK_REGISTRY_H_
#define REALRATE_TASK_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "task/thread.h"
#include "task/thread_slabs.h"

namespace realrate {

// Thread records are allocated from a ThreadArena (contiguous chunks in creation
// order, stable addresses) and — unless constructed with use_slabs = false — bound to
// hot-field slabs at Create, so column sweeps cover exactly the registry's thread set
// in creation order. `use_slabs = false` builds the pre-slab AoS configuration the
// differential harness and bench_dispatch_scale compare against.
class ThreadRegistry {
 public:
  explicit ThreadRegistry(bool use_slabs = true) : use_slabs_(use_slabs) {}

  // Creates a thread owned by the registry; returns a stable non-owning pointer.
  SimThread* Create(std::string name, std::unique_ptr<WorkModel> work);

  SimThread* Find(ThreadId id);
  const SimThread* Find(ThreadId id) const;
  SimThread* FindByName(const std::string& name);

  size_t size() const { return raw_.size(); }
  // Iteration in creation order (deterministic). Returns a reference to the
  // registry's own pointer index — O(1); the Machine walks this on hot paths
  // (placement, rebalancing, idle-suspension checks), so no per-call vector is
  // materialized. The reference is invalidated by Create().
  const std::vector<SimThread*>& All() const { return raw_; }

  // The hot-field slabs every registry thread is bound to, or nullptr when this
  // registry was built without them. With the registry never releasing slots,
  // slot == id and slot order == creation order.
  ThreadSlabs* slabs() { return use_slabs_ ? &slabs_ : nullptr; }
  const ThreadSlabs* slabs() const { return use_slabs_ ? &slabs_ : nullptr; }

 private:
  const bool use_slabs_;
  ThreadArena arena_;
  std::vector<SimThread*> raw_;  // Indexed by ThreadId; maintained by Create().
  // Declared after arena_ so it is destroyed first: its destructor unbinds threads,
  // which must still be alive.
  ThreadSlabs slabs_;
};

}  // namespace realrate

#endif  // REALRATE_TASK_REGISTRY_H_
