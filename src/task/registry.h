// Owns every SimThread in a simulation and allocates thread ids.
#ifndef REALRATE_TASK_REGISTRY_H_
#define REALRATE_TASK_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "task/thread.h"

namespace realrate {

class ThreadRegistry {
 public:
  // Creates a thread owned by the registry; returns a stable non-owning pointer.
  SimThread* Create(std::string name, std::unique_ptr<WorkModel> work);

  SimThread* Find(ThreadId id);
  const SimThread* Find(ThreadId id) const;
  SimThread* FindByName(const std::string& name);

  size_t size() const { return threads_.size(); }
  // Iteration in creation order (deterministic).
  std::vector<SimThread*> All();
  std::vector<const SimThread*> All() const;

 private:
  std::vector<std::unique_ptr<SimThread>> threads_;
};

}  // namespace realrate

#endif  // REALRATE_TASK_REGISTRY_H_
