#include "task/thread_slabs.h"

#include <new>
#include <utility>

namespace realrate {

ThreadSlabs::~ThreadSlabs() {
  for (SimThread* t : thread_) {
    if (t != nullptr) {
      t->slabs_ = nullptr;
      t->slab_slot_ = kNoSlot;
    }
  }
}

void ThreadSlabs::SeedColumns(int32_t slot, const SimThread& t) {
  const size_t i = static_cast<size_t>(slot);
  state_[i] = t.state();
  class_[i] = t.thread_class();
  policy_[i] = t.policy();
  cpu_[i] = t.cpu();
  importance_[i] = t.importance();
  budget_[i] = t.budget_remaining();
  pressure_[i] = 0.0;
  MirrorReservation(slot, t);
}

int32_t ThreadSlabs::Bind(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(thread->slabs_ == nullptr);  // One binding at a time.
  int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slot_count();
    thread_.push_back(nullptr);
    state_.push_back(ThreadState::kExited);
    class_.push_back(ThreadClass::kMiscellaneous);
    policy_.push_back(SchedPolicy::kOther);
    cpu_.push_back(0);
    granted_ppt_.push_back(0);
    rm_rank_.push_back(0);
    deadline_nanos_.push_back(0);
    budget_.push_back(0);
    importance_.push_back(0.0);
    pressure_.push_back(0.0);
  }
  const size_t i = static_cast<size_t>(slot);
  thread_[i] = thread;
  SeedColumns(slot, *thread);
  if (state_[i] == ThreadState::kRunnable) {
    BumpRunnable(1);
  }
  ++live_count_;

  const ThreadId id = thread->id();
  RR_EXPECTS(id >= 0);
  if (static_cast<size_t>(id) >= slot_of_id_.size()) {
    slot_of_id_.resize(static_cast<size_t>(id) + 1, kNoSlot);
  }
  RR_EXPECTS(slot_of_id_[static_cast<size_t>(id)] == kNoSlot);
  slot_of_id_[static_cast<size_t>(id)] = slot;

  thread->slabs_ = this;
  thread->slab_slot_ = slot;
  return slot;
}

void ThreadSlabs::Release(SimThread* thread) {
  RR_EXPECTS(thread != nullptr && thread->slabs_ == this);
  const int32_t slot = thread->slab_slot_;
  const size_t i = static_cast<size_t>(slot);
  RR_EXPECTS(thread_[i] == thread);
  if (state_[i] == ThreadState::kRunnable) {
    BumpRunnable(-1);
  }
  --live_count_;
  // Inert values: sweeps (reserved filter, census, runnable checks) skip the hole
  // with the same comparisons they apply to live slots.
  thread_[i] = nullptr;
  state_[i] = ThreadState::kExited;
  class_[i] = ThreadClass::kMiscellaneous;
  policy_[i] = SchedPolicy::kOther;
  cpu_[i] = 0;
  granted_ppt_[i] = 0;
  rm_rank_[i] = 0;
  deadline_nanos_[i] = 0;
  budget_[i] = 0;
  importance_[i] = 0.0;
  pressure_[i] = 0.0;
  slot_of_id_[static_cast<size_t>(thread->id())] = kNoSlot;
  free_slots_.push_back(slot);
  thread->slabs_ = nullptr;
  thread->slab_slot_ = kNoSlot;
}

bool ThreadSlabs::MatchesObject(const SimThread& t) const {
  if (t.slabs_ != this || t.slab_slot_ == kNoSlot) {
    return false;
  }
  const size_t i = static_cast<size_t>(t.slab_slot_);
  return thread_[i] == &t && state_[i] == t.state() && class_[i] == t.thread_class() &&
         policy_[i] == t.policy() && cpu_[i] == t.cpu() &&
         granted_ppt_[i] == t.proportion().ppt() && rm_rank_[i] == PeriodRank(t.period()) &&
         deadline_nanos_[i] == (t.period_start() + t.period()).nanos() &&
         budget_[i] == t.budget_remaining() && importance_[i] == t.importance();
}

ThreadArena::~ThreadArena() {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    (*it)->~SimThread();
  }
}

SimThread* ThreadArena::Create(ThreadId id, std::string name, std::unique_ptr<WorkModel> work) {
  if (used_in_last_ == kRecordsPerChunk) {
    chunks_.push_back(std::make_unique<std::byte[]>(kRecordsPerChunk * sizeof(SimThread)));
    used_in_last_ = 0;
  }
  void* p = chunks_.back().get() + used_in_last_ * sizeof(SimThread);
  ++used_in_last_;
  SimThread* t = new (p) SimThread(id, std::move(name), std::move(work));
  records_.push_back(t);
  return t;
}

}  // namespace realrate
