#include "task/registry.h"

#include <utility>

#include "util/assert.h"

namespace realrate {

SimThread* ThreadRegistry::Create(std::string name, std::unique_ptr<WorkModel> work) {
  const auto id = static_cast<ThreadId>(threads_.size());
  threads_.push_back(std::make_unique<SimThread>(id, std::move(name), std::move(work)));
  SimThread* thread = threads_.back().get();
  raw_.push_back(thread);
  thread->work().Bind(thread);
  return thread;
}

SimThread* ThreadRegistry::Find(ThreadId id) {
  if (id < 0 || static_cast<size_t>(id) >= threads_.size()) {
    return nullptr;
  }
  return threads_[id].get();
}

const SimThread* ThreadRegistry::Find(ThreadId id) const {
  if (id < 0 || static_cast<size_t>(id) >= threads_.size()) {
    return nullptr;
  }
  return threads_[id].get();
}

SimThread* ThreadRegistry::FindByName(const std::string& name) {
  for (auto& t : threads_) {
    if (t->name() == name) {
      return t.get();
    }
  }
  return nullptr;
}


}  // namespace realrate
