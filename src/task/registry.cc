#include "task/registry.h"

#include <utility>

#include "util/assert.h"

namespace realrate {

SimThread* ThreadRegistry::Create(std::string name, std::unique_ptr<WorkModel> work) {
  const auto id = static_cast<ThreadId>(raw_.size());
  SimThread* thread = arena_.Create(id, std::move(name), std::move(work));
  raw_.push_back(thread);
  thread->work().Bind(thread);
  if (use_slabs_) {
    const int32_t slot = slabs_.Bind(thread);
    RR_ENSURES(slot == id);  // Registry threads are never released: slot == id.
  }
  return thread;
}

SimThread* ThreadRegistry::Find(ThreadId id) {
  if (id < 0 || static_cast<size_t>(id) >= raw_.size()) {
    return nullptr;
  }
  return raw_[static_cast<size_t>(id)];
}

const SimThread* ThreadRegistry::Find(ThreadId id) const {
  if (id < 0 || static_cast<size_t>(id) >= raw_.size()) {
    return nullptr;
  }
  return raw_[static_cast<size_t>(id)];
}

SimThread* ThreadRegistry::FindByName(const std::string& name) {
  for (SimThread* t : raw_) {
    if (t->name() == name) {
      return t;
    }
  }
  return nullptr;
}

}  // namespace realrate
