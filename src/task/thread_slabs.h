// Cache-conscious thread state: the hot fields the dispatch pick and the controller
// tick touch for *every* thread — run state, core affinity, reservation (granted ppt,
// period rank, period deadline), remaining budget, progress pressure — mirrored out
// of the SimThread heap objects into structure-of-arrays slabs, plus the arena the
// thread records themselves are allocated from.
//
// Why: at 4k threads/core the per-thread sweeps (goodness scan, replenish sweep,
// placement census, idle-suspension check, controller stages) chase one heap object
// per thread — ~200 bytes each, pointer-rich, allocator-scattered — and blow L2. The
// slab columns pack the same decisions into a few contiguous bytes per thread, so a
// sweep touches cachelines proportional to the *fields it reads*, not to sizeof
// (SimThread). The Corey lesson applied to our own hot paths.
//
// Ownership and coherence model:
//   - SimThread remains the canonical store. Every hot-field setter on SimThread
//     write-throughs to its bound slab (see task/thread.cc), so the columns are
//     coherent at every instant — not rebuilt per tick. Readers (RbsScheduler column
//     scans, Machine census/rebalance/idle checks, controller stages) never observe
//     staleness; shadow-check mode (RbsConfig/ControllerConfig) asserts
//     slab == object at every pick and controller tick.
//   - `pressure` is the one controller-owned column: the control pipeline's
//     Sample/Estimate stages write it (there is no SimThread field behind it).
//   - Slots are stable for the lifetime of a binding: registration and removal are
//     O(1) through a free list (released slots are recycled LIFO), and nothing —
//     migration, reservation churn, other threads exiting — ever moves a bound
//     thread's slot. The Machine moves *slots between cores* by rewriting the cpu
//     column, not by moving records.
//   - id → slot is the registry's dense ThreadId space: with the registry binding
//     every thread at Create and never releasing, slot == id and slot order == the
//     registry's creation order, which is what keeps column sweeps bit-identical
//     (including floating-point sum order) to the SimThread* sweeps they replace.
#ifndef REALRATE_TASK_THREAD_SLABS_H_
#define REALRATE_TASK_THREAD_SLABS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "task/thread.h"
#include "util/assert.h"
#include "util/time.h"
#include "util/types.h"

namespace realrate {

// The rate-monotonic period rank: periods-per-hour, so any realistic period (>= 1 ms)
// maps to a positive, strictly rate-ordered value. Shared by RbsScheduler::Goodness
// (the reference semantics), the pick index, and the slab's rm_rank column, so no two
// consumers can ever disagree on ordering.
inline int64_t PeriodRank(Duration period) { return Duration::Seconds(3600) / period; }

class ThreadSlabs {
 public:
  static constexpr int32_t kNoSlot = -1;

  ThreadSlabs() = default;
  ThreadSlabs(const ThreadSlabs&) = delete;
  ThreadSlabs& operator=(const ThreadSlabs&) = delete;
  ~ThreadSlabs();  // Unbinds every still-bound thread.

  // Binds `thread` (not currently bound anywhere) to a slot and seeds its columns
  // from the object. O(1): recycles the most recently freed slot, else appends one.
  int32_t Bind(SimThread* thread);
  // Releases `thread`'s slot back to the free list and clears its columns to inert
  // values (kExited, zero proportion), so sweeps skip the hole without a branch on a
  // separate liveness bit. Other threads' slots are untouched. O(1).
  void Release(SimThread* thread);

  // Slots ever allocated, including currently free ones. Column sweeps iterate
  // [0, slot_count()) in slot order.
  int32_t slot_count() const { return static_cast<int32_t>(thread_.size()); }
  int64_t live_count() const { return live_count_; }
  // Bound threads whose state column is kRunnable — the Machine's O(1)
  // idle-suspension check. Atomic (relaxed) because it is the one machine-wide
  // counter that state write-throughs touch from inside a parallel tick round,
  // where each host thread flips only its own core's threads; readers only run
  // at the epoch barrier, after the round's writes are already ordered.
  int64_t runnable_count() const { return runnable_count_.load(std::memory_order_relaxed); }

  // Concurrent-round mode: while true, runnable-count updates use an atomic RMW
  // (multiple host threads bump the counter from inside a fanned dispatch round);
  // while false — the sequential engine, and everything fenced to epoch
  // boundaries (Bind/Release, wakes, migrations) — they use a plain load+store,
  // which keeps the lock prefix out of the bind/release and dispatch hot loops.
  // The Machine toggles this around ParallelEngine::RunRound; the engine's
  // fork/join ordering publishes the flag to the workers. Const (with a mutable
  // flag) because it selects the counter-update instruction without changing
  // any observable column value — the Machine only holds a const view.
  void set_shared_mode(bool shared) const { shared_mode_ = shared; }

  // Back-pointers. thread_at is nullptr for a free slot.
  SimThread* thread_at(int32_t slot) const { return thread_[static_cast<size_t>(slot)]; }
  int32_t slot_of(ThreadId id) const {
    return id >= 0 && static_cast<size_t>(id) < slot_of_id_.size()
               ? slot_of_id_[static_cast<size_t>(id)]
               : kNoSlot;
  }

  // --- Column reads (free slots read as inert: kExited / zero / max deadline) ---
  ThreadState state(int32_t slot) const { return state_[static_cast<size_t>(slot)]; }
  SchedPolicy policy(int32_t slot) const { return policy_[static_cast<size_t>(slot)]; }
  ThreadClass cls(int32_t slot) const { return class_[static_cast<size_t>(slot)]; }
  CpuId cpu(int32_t slot) const { return cpu_[static_cast<size_t>(slot)]; }
  // The granted reservation, as the scheduler/controller actuated it.
  int32_t granted_ppt(int32_t slot) const { return granted_ppt_[static_cast<size_t>(slot)]; }
  int64_t rm_rank(int32_t slot) const { return rm_rank_[static_cast<size_t>(slot)]; }
  // End of the current period (period_start + period) in nanos: the EDF pick key and
  // the replenish due time.
  int64_t deadline_nanos(int32_t slot) const {
    return deadline_nanos_[static_cast<size_t>(slot)];
  }
  Cycles budget(int32_t slot) const { return budget_[static_cast<size_t>(slot)]; }
  double importance(int32_t slot) const { return importance_[static_cast<size_t>(slot)]; }

  // --- The controller-owned progress-pressure column ---
  double pressure(int32_t slot) const { return pressure_[static_cast<size_t>(slot)]; }
  void set_pressure(int32_t slot, double p) { pressure_[static_cast<size_t>(slot)] = p; }

  // Shadow-check mode: do `t`'s columns equal the object's canonical fields?
  // (Excludes `pressure`, which has no object-side field — the controller asserts it
  // against its own per-thread state.)
  bool MatchesObject(const SimThread& t) const;

 private:
  friend class SimThread;  // Write-through mirror hooks (task/thread.cc).

  void MirrorState(int32_t slot, ThreadState s) {
    const size_t i = static_cast<size_t>(slot);
    const int64_t delta =
        (s == ThreadState::kRunnable) - (state_[i] == ThreadState::kRunnable);
    if (delta != 0) {
      BumpRunnable(delta);
    }
    state_[i] = s;
  }
  void MirrorClass(int32_t slot, ThreadClass c) { class_[static_cast<size_t>(slot)] = c; }
  void MirrorPolicy(int32_t slot, SchedPolicy p) { policy_[static_cast<size_t>(slot)] = p; }
  void MirrorCpu(int32_t slot, CpuId core) { cpu_[static_cast<size_t>(slot)] = core; }
  void MirrorImportance(int32_t slot, double w) { importance_[static_cast<size_t>(slot)] = w; }
  void MirrorBudget(int32_t slot, Cycles c) { budget_[static_cast<size_t>(slot)] = c; }
  // Re-derives the reservation columns (granted ppt, rank, deadline) from the
  // object's current proportion/period/period_start.
  void MirrorReservation(int32_t slot, const SimThread& t) {
    const size_t i = static_cast<size_t>(slot);
    granted_ppt_[i] = t.proportion().ppt();
    rm_rank_[i] = PeriodRank(t.period());
    deadline_nanos_[i] = (t.period_start() + t.period()).nanos();
  }

  void SeedColumns(int32_t slot, const SimThread& t);

  // See set_shared_mode: RMW only while a parallel round is in flight; the
  // single-writer phases take the cheap non-RMW path.
  void BumpRunnable(int64_t delta) {
    if (shared_mode_) {
      runnable_count_.fetch_add(delta, std::memory_order_relaxed);
    } else {
      runnable_count_.store(runnable_count_.load(std::memory_order_relaxed) + delta,
                            std::memory_order_relaxed);
    }
  }

  // One entry per slot. Parallel vectors rather than a struct so each sweep streams
  // only the bytes it reads.
  std::vector<SimThread*> thread_;
  std::vector<ThreadState> state_;
  std::vector<ThreadClass> class_;
  std::vector<SchedPolicy> policy_;
  std::vector<CpuId> cpu_;
  std::vector<int32_t> granted_ppt_;
  std::vector<int64_t> rm_rank_;
  std::vector<int64_t> deadline_nanos_;
  std::vector<Cycles> budget_;
  std::vector<double> importance_;
  std::vector<double> pressure_;

  std::vector<int32_t> slot_of_id_;  // Dense ThreadId -> slot (kNoSlot when unbound).
  std::vector<int32_t> free_slots_;  // LIFO recycling.
  int64_t live_count_ = 0;
  std::atomic<int64_t> runnable_count_{0};
  mutable bool shared_mode_ = false;
};

// Bump allocator for SimThread records: fixed-size chunks, placement-new, stable
// addresses for the life of the arena (threads are never destroyed individually —
// exited threads keep their record, matching the registry's id -> thread contract).
// Replaces one heap allocation per thread with one per kRecordsPerChunk threads, and
// lays records out contiguously in creation order — the order every registry sweep
// walks them in.
class ThreadArena {
 public:
  ThreadArena() = default;
  ThreadArena(const ThreadArena&) = delete;
  ThreadArena& operator=(const ThreadArena&) = delete;
  ~ThreadArena();  // Destroys records in reverse creation order.

  SimThread* Create(ThreadId id, std::string name, std::unique_ptr<WorkModel> work);
  size_t size() const { return records_.size(); }

 private:
  static constexpr size_t kRecordsPerChunk = 256;

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  size_t used_in_last_ = kRecordsPerChunk;  // Forces a chunk on first Create.
  std::vector<SimThread*> records_;         // Creation order, for destruction.
};

}  // namespace realrate

#endif  // REALRATE_TASK_THREAD_SLABS_H_
