// RunClusterFarmScenario: the Flash-style web farm (workloads/web_farm.h) spread
// across a Cluster. One cluster-wide open-loop request stream is routed to M
// per-machine farms by the FrontEndRouter at every cluster epoch, and a
// cross-machine rebalancer mirrors the in-machine one: at rebalance boundaries
// it migrates queued (not yet accepted) requests from the deepest listen backlog
// to the shallowest — whole pending pipeline units, moved only at epoch fences,
// so every per-machine trace stays exactly what a standalone machine would
// produce.
//
// Determinism contract (tests/cluster_test.cc, scripts/check_cluster_scale.py):
// same params ⇒ bit-identical per-machine trace hashes at any host_threads; and
// num_machines = 1 is pinned bit-identical to RunWebFarmScenario with the same
// WebFarmParams. To keep the M = 1 pin exact, the degenerate cluster hands the
// whole stream to the node's own injector up front (routing to one machine is
// the identity, so pre-routing is semantics-preserving); M > 1 routes
// epoch-by-epoch from signal snapshots.
#ifndef REALRATE_CLUSTER_CLUSTER_FARM_H_
#define REALRATE_CLUSTER_CLUSTER_FARM_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/router.h"
#include "util/time.h"
#include "workloads/web_farm.h"

namespace realrate {

struct ClusterFarmParams {
  int num_machines = 4;
  // Per-node farm and machine shape. `farm.arrivals` (or `farm.replay`)
  // describes the CLUSTER-wide stream — offered load for the whole cluster, not
  // per machine.
  WebFarmParams farm;
  // Cluster epoch: router batch + signal refresh cadence.
  Duration epoch = Duration::Millis(10);
  RouterConfig router;
  // Cross-machine rebalancer cadence (rounded up to whole epochs; zero
  // disables). At each boundary the deepest listen backlog donates to the
  // shallowest when it exceeds rebalance_threshold times the recipient's
  // (+1 smoothing), capped at rebalance_max_moves requests per boundary.
  Duration rebalance_interval = Duration::Millis(100);
  double rebalance_threshold = 2.0;
  int rebalance_max_moves = 64;
};

struct ClusterFarmResult {
  int num_machines = 0;
  int64_t total_threads = 0;  // Simulated farm threads across the cluster.
  int64_t offered = 0;
  int64_t injected = 0;
  int64_t listen_drops = 0;
  int64_t accepted = 0;
  int64_t dispatch_drops = 0;
  int64_t served = 0;
  // End-to-end latency percentiles over every served request cluster-wide,
  // milliseconds. All-drop runs serve nothing: the columns stay at this
  // explicit zero instead of touching an empty SampleSet.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double goodput_rps = 0.0;  // served / horizon.
  // Routing quality: max per-machine served over the perfect-balance share
  // (served / M). 1.0 = perfectly level; M = everything landed on one machine.
  // 1.0 (vacuously level) when nothing was served.
  double imbalance_ratio = 1.0;
  int64_t rebalanced = 0;   // Requests the cross-machine rebalancer moved.
  int64_t epoch_fences = 0;  // Sum over machines.
  std::vector<int64_t> served_per_machine;
  std::vector<int64_t> routed_per_machine;
  // Per-machine trace hashes (the determinism contract), plus an FNV-1a fold
  // for single-column comparisons.
  std::vector<uint64_t> machine_trace_hashes;
  uint64_t cluster_hash = 0;
};

ClusterFarmResult RunClusterFarmScenario(const ClusterFarmParams& params);

// The cluster-wide saturation request rate: M machines' worth of
// WebFarmCapacityRps. The 1.0x point of a cluster offered-load sweep.
double ClusterFarmCapacityRps(const ClusterFarmParams& params);

}  // namespace realrate

#endif  // REALRATE_CLUSTER_CLUSTER_FARM_H_
