#include "cluster/cluster.h"

#include "util/assert.h"

namespace realrate {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  RR_EXPECTS(config.num_machines >= 1);
  RR_EXPECTS(config.epoch.IsPositive());
  nodes_.reserve(static_cast<size_t>(config.num_machines));
  for (int m = 0; m < config.num_machines; ++m) {
    nodes_.push_back(std::make_unique<System>(config.node));
  }
}

void Cluster::Start() {
  for (auto& node : nodes_) {
    node->Start();
  }
}

void Cluster::RunFor(Duration d) {
  RR_EXPECTS(!(d < Duration::Zero()));
  const TimePoint end = Now() + d;
  while (Now() < end) {
    const Duration remaining = end - Now();
    const Duration step = remaining < config_.epoch ? remaining : config_.epoch;
    // Fence first: every node settles idle fast-forward at the boundary and
    // asserts no dispatch round is in flight, so the hook's cross-machine reads
    // and mutations observe exactly the state a continuously ticking machine
    // would show.
    for (auto& node : nodes_) {
      node->machine().EpochFence(node->sim().Now());
    }
    if (epoch_hook_) {
      epoch_hook_(Now());
    }
    for (auto& node : nodes_) {
      node->RunFor(step);
    }
    ++epochs_;
  }
}

}  // namespace realrate
