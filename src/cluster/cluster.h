// Cluster: M fully wired machines (exp/system.h stacks) advanced in lockstep
// epochs — the substrate for the second-level feedback loop of ROADMAP item 2.
//
// Each node is an independent share-nothing System: its own Simulator (virtual
// clock), thread/queue registries, per-core RBS schedulers, Machine, and feedback
// controller. The cluster never reaches into a node mid-epoch; all cross-machine
// observation and mutation (the router's signal reads, request injection, the
// cross-machine rebalancer's migrations) happen at epoch boundaries, after every
// node's `Machine::EpochFence` has asserted quiescence and settled idle
// fast-forward. This is the parallel engine's round contract applied one level
// up: within an epoch a machine is alone in the world, so each node's trace is
// exactly the trace a standalone machine with the same inputs would produce —
// bit-identical at any `host_threads`, and (for M = 1) bit-identical to a bare
// Machine run of the same workload.
//
// The node clocks stay aligned by construction: every node starts at the origin
// and every node steps by the same epoch quantum.
#ifndef REALRATE_CLUSTER_CLUSTER_H_
#define REALRATE_CLUSTER_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "exp/system.h"
#include "util/time.h"

namespace realrate {

struct ClusterConfig {
  // Number of machines (1-64 are the tested range). M = 1 is the degenerate
  // cluster, pinned bit-identical to a bare Machine run.
  int num_machines = 4;
  // Per-node stack configuration; all nodes are identical (heterogeneous
  // clusters would only need a per-node vector here).
  SystemConfig node;
  // The lockstep step quantum: cross-machine signal reads, routing, and
  // migration happen only at multiples of this. Matches the controller's
  // default 100 Hz interval so cluster-level decisions see freshly resolved
  // grants.
  Duration epoch = Duration::Millis(10);
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_machines() const { return static_cast<int>(nodes_.size()); }
  System& node(int m) { return *nodes_.at(static_cast<size_t>(m)); }
  const ClusterConfig& config() const { return config_; }

  // Called once per epoch boundary (including t = 0, before the first step),
  // after every node's EpochFence and before any node advances. This is the
  // only legal point for cross-machine work; the farm layer hangs its router
  // batch and rebalancer off it.
  using EpochHook = std::function<void(TimePoint epoch_start)>;
  void SetEpochHook(EpochHook hook) { epoch_hook_ = std::move(hook); }

  // Starts every node (machine + controller). Call once, then RunFor().
  void Start();
  // Advances every node in lockstep `epoch` quanta (a final partial quantum
  // when `d` is not a multiple).
  void RunFor(Duration d);

  // --- Cluster-level feedback signals (O(1) reads; epoch-boundary fresh) ---
  // Clamped spare head-room of node `m` in ppt, summed over its cores: the
  // machine's progress signal for the cluster controller (the ledger maintains
  // it incrementally against the post-backoff admission threshold).
  int64_t SpareSignal(int m) { return node(m).controller().ledger().spare_ppt_total(); }
  // Aggregate queue fill fraction of node `m` in [0, 1]: the machine's pressure
  // signal (delta-maintained by every BoundedBuffer the node owns).
  double PressureSignal(int m) { return node(m).queues().AggregateFillFraction(); }

  // All node clocks are equal; node 0's is the cluster's.
  TimePoint Now() { return node(0).sim().Now(); }
  int64_t epochs() const { return epochs_; }

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<System>> nodes_;
  EpochHook epoch_hook_;
  int64_t epochs_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_CLUSTER_CLUSTER_H_
