#include "cluster/cluster_farm.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/assert.h"

namespace realrate {

namespace {

// FNV-1a fold of the per-machine hashes, for single-column comparisons.
uint64_t FoldHashes(const std::vector<uint64_t>& hashes) {
  uint64_t h = 14695981039346656037ull;
  for (uint64_t mh : hashes) {
    h ^= mh;
    h *= 1099511628211ull;
  }
  return h;
}

// The per-node stack, configured exactly as RunWebFarmScenario configures its
// single machine — the M = 1 bit-equality pin depends on this being identical.
SystemConfig NodeConfig(const WebFarmParams& params) {
  SystemConfig config;
  config.num_cpus = params.num_cpus;
  config.cpu.clock_hz = params.clock_hz;
  config.rbs = params.rbs;
  config.controller = params.controller;
  config.machine.idle_fast_forward = params.idle_fast_forward;
  config.machine.host_threads = params.host_threads;
  config.thread_slabs = params.thread_slabs;
  return config;
}

WebFarmBuild NodeBuild(const WebFarmParams& params, std::vector<RequestRecord> records) {
  WebFarmBuild build;
  build.tag = "web";
  build.num_workers = params.num_workers;
  build.num_acceptors = params.num_acceptors;
  build.accept_cycles = params.accept_cycles;
  build.listen_queue_bytes = params.listen_queue_bytes;
  build.worker_queue_bytes = params.worker_queue_bytes;
  build.clock_hz = params.clock_hz;
  build.records = std::move(records);
  return build;
}

}  // namespace

ClusterFarmResult RunClusterFarmScenario(const ClusterFarmParams& params) {
  RR_EXPECTS(params.num_machines >= 1);
  RR_EXPECTS(params.epoch.IsPositive());
  RR_EXPECTS(params.farm.run_for.IsPositive());
  RR_EXPECTS(params.rebalance_threshold >= 1.0);
  RR_EXPECTS(params.rebalance_max_moves >= 0);

  const int machines = params.num_machines;
  const Duration horizon = params.farm.run_for;
  const std::vector<RequestRecord> records =
      params.farm.replay.empty() ? GenerateRequests(params.farm.arrivals, horizon)
                                 : params.farm.replay;

  ClusterConfig cluster_config;
  cluster_config.num_machines = machines;
  cluster_config.node = NodeConfig(params.farm);
  cluster_config.epoch = params.epoch;
  Cluster cluster(cluster_config);

  // Oversized records clamp to the smallest queue, mirroring BuildWebFarm's
  // injector, so the router's epoch injection obeys the TryPush contract too.
  const int64_t clamp_bytes =
      std::min(params.farm.listen_queue_bytes, params.farm.worker_queue_bytes);

  std::vector<std::unique_ptr<WebFarmInstance>> farms;
  for (int m = 0; m < machines; ++m) {
    System& node = cluster.node(m);
    node.sim().trace().SetEnabled(true);
    node.sim().trace().SetHashOnly(true);
    // The degenerate cluster routes everything to its one machine, so the whole
    // stream goes to the node's own injector up front — the arrival events then
    // chain through the simulator exactly as a bare RunWebFarmScenario's do,
    // which is what keeps the M = 1 trace pin bit-exact. M > 1 injects
    // epoch-by-epoch from the router below.
    farms.push_back(BuildWebFarm(
        NodeBuild(params.farm, machines == 1 ? records : std::vector<RequestRecord>{}),
        node.sim(), node.threads(), node.queues(), node.machine(), &node.controller()));
  }

  FrontEndRouter router(params.router, machines);
  std::vector<std::unique_ptr<RequestInjector>> epoch_injectors;
  int64_t rebalanced = 0;
  size_t next_record = 0;
  int64_t epoch_index = 0;
  // Rebalance cadence in whole epochs (rounded up); 0 = disabled.
  const int64_t rebalance_every =
      params.rebalance_interval.IsPositive()
          ? std::max<int64_t>(1, (params.rebalance_interval + params.epoch -
                                  Duration::Nanos(1)) /
                                     params.epoch)
          : 0;

  cluster.SetEpochHook([&](TimePoint epoch_start) {
    if (machines == 1) {
      return;  // Identity routing, nothing to rebalance.
    }

    // --- Cross-machine rebalancer (before routing, so this boundary's router
    // weights see the post-migration pressure) ---
    if (rebalance_every > 0 && epoch_index > 0 && epoch_index % rebalance_every == 0) {
      int donor = 0;
      int recipient = 0;
      for (int m = 1; m < machines; ++m) {
        const size_t backlog = farms[static_cast<size_t>(m)]->listen.meta.size();
        if (backlog > farms[static_cast<size_t>(donor)]->listen.meta.size()) {
          donor = m;
        }
        if (backlog < farms[static_cast<size_t>(recipient)]->listen.meta.size()) {
          recipient = m;
        }
      }
      auto& from = farms[static_cast<size_t>(donor)]->listen;
      auto& to = farms[static_cast<size_t>(recipient)]->listen;
      int moves = 0;
      // Migrate newest-arrived pending requests (the back of the donor's FIFO —
      // untouched by its acceptors) until the backlogs level or the cap binds.
      // Queued requests are whole pipeline units: nothing mid-service ever moves,
      // and the migrated request keeps its original arrival stamp so end-to-end
      // latency stays honest.
      while (moves < params.rebalance_max_moves &&
             from.meta.size() >
                 static_cast<size_t>(params.rebalance_threshold *
                                     static_cast<double>(to.meta.size() + 1)) &&
             to.buffer->fill() + from.meta.back().bytes <= to.buffer->capacity()) {
        const PendingRequest moved = from.meta.back();
        from.meta.pop_back();
        RR_CHECK(from.buffer->TryPopExact(moved.bytes));
        RR_CHECK(to.buffer->TryPush(moved.bytes));
        to.meta.push_back(moved);
        ++moves;
      }
      rebalanced += moves;
    }

    // --- Router: assign this epoch's arrivals from fence-fresh signals ---
    std::vector<MachineSignals> signals(static_cast<size_t>(machines));
    for (int m = 0; m < machines; ++m) {
      signals[static_cast<size_t>(m)] = {cluster.SpareSignal(m), cluster.PressureSignal(m)};
    }
    router.UpdateSignals(signals);

    const Duration remaining = horizon - (epoch_start - TimePoint::Origin());
    const Duration step = remaining < params.epoch ? remaining : params.epoch;
    const Duration window_end = (epoch_start + step) - TimePoint::Origin();
    std::vector<std::vector<RequestRecord>> batches(static_cast<size_t>(machines));
    while (next_record < records.size() && records[next_record].arrival < window_end) {
      batches[static_cast<size_t>(router.Route())].push_back(records[next_record]);
      ++next_record;
    }
    for (int m = 0; m < machines; ++m) {
      auto& batch = batches[static_cast<size_t>(m)];
      if (batch.empty()) {
        continue;
      }
      WebFarmInstance* farm = farms[static_cast<size_t>(m)].get();
      epoch_injectors.push_back(std::make_unique<RequestInjector>(
          cluster.node(m).sim(), std::move(batch),
          [farm, clamp_bytes](const RequestRecord& rec) {
            PendingRequest p;
            p.arrival = rec.arrival;
            p.bytes = std::clamp<int64_t>(rec.bytes, 1, clamp_bytes);
            p.service_cycles = rec.service_cycles;
            if (farm->listen.buffer->TryPush(p.bytes)) {
              farm->listen.meta.push_back(p);
            } else {
              ++farm->listen_drops;
            }
          }));
      epoch_injectors.back()->Start();
    }
    ++epoch_index;
  });

  cluster.Start();
  cluster.RunFor(horizon);

  ClusterFarmResult result;
  result.num_machines = machines;
  result.total_threads =
      static_cast<int64_t>(machines) * (params.farm.num_acceptors + params.farm.num_workers);
  result.offered = static_cast<int64_t>(records.size());
  result.rebalanced = rebalanced;

  SampleSet all_latencies;
  int64_t max_served = 0;
  for (int m = 0; m < machines; ++m) {
    WebFarmInstance& farm = *farms[static_cast<size_t>(m)];
    result.injected += farm.injector->injected();
    result.listen_drops += farm.listen_drops;
    result.accepted += farm.accepted();
    result.dispatch_drops += farm.dispatch_drops();
    const int64_t served = farm.served();
    result.served += served;
    result.served_per_machine.push_back(served);
    max_served = std::max(max_served, served);
    for (double s : farm.latencies.samples()) {
      all_latencies.Add(s);
    }
    System& node = cluster.node(m);
    result.epoch_fences += node.machine().epoch_fences();
    result.machine_trace_hashes.push_back(node.sim().trace().Hash());
  }
  for (const auto& injector : epoch_injectors) {
    result.injected += injector->injected();
  }
  result.routed_per_machine = router.routed();
  result.cluster_hash = FoldHashes(result.machine_trace_hashes);

  // All-drop configurations serve nothing; the percentile columns stay at their
  // explicit zeros rather than touching the empty SampleSet (whose Percentile
  // requires at least one sample).
  if (!all_latencies.empty()) {
    result.p50_ms = all_latencies.Percentile(50.0) * 1e3;
    result.p99_ms = all_latencies.Percentile(99.0) * 1e3;
    result.p999_ms = all_latencies.Percentile(99.9) * 1e3;
    result.mean_ms = all_latencies.Mean() * 1e3;
    result.max_ms = all_latencies.Percentile(100.0) * 1e3;
  }
  result.goodput_rps = static_cast<double>(result.served) / horizon.ToSeconds();
  result.imbalance_ratio =
      result.served > 0
          ? static_cast<double>(max_served) /
                (static_cast<double>(result.served) / static_cast<double>(machines))
          : 1.0;
  return result;
}

double ClusterFarmCapacityRps(const ClusterFarmParams& params) {
  return static_cast<double>(params.num_machines) * WebFarmCapacityRps(params.farm);
}

}  // namespace realrate
