#include "cluster/router.h"

#include <algorithm>

#include "util/assert.h"

namespace realrate {

FrontEndRouter::FrontEndRouter(const RouterConfig& config, int num_machines)
    : config_(config),
      weights_(static_cast<size_t>(num_machines), 1.0 / num_machines),
      credits_(static_cast<size_t>(num_machines), 0.0),
      routed_(static_cast<size_t>(num_machines), 0) {
  RR_EXPECTS(num_machines >= 1);
  RR_EXPECTS(config.pressure_damping >= 0.0 && config.pressure_damping <= 1.0);
}

double FrontEndRouter::WeightOf(const MachineSignals& s) const {
  RR_EXPECTS(s.spare_ppt >= 0);
  // +1 keeps a fully committed machine routable (it may still be draining), and
  // keeps the all-overloaded cluster well-defined: weights degrade to uniform.
  const double fill = std::clamp(s.fill_fraction, 0.0, 1.0);
  return static_cast<double>(s.spare_ppt + 1) * (1.0 - config_.pressure_damping * fill);
}

void FrontEndRouter::UpdateSignals(const std::vector<MachineSignals>& signals) {
  if (config_.policy == RouterPolicy::kRoundRobin) {
    return;
  }
  RR_EXPECTS(signals.size() == weights_.size());
  double sum = 0.0;
  for (size_t m = 0; m < signals.size(); ++m) {
    weights_[m] = WeightOf(signals[m]);
    sum += weights_[m];
  }
  // WeightOf is >= (0 + 1) * (1 - damping) and damping <= 1; an all-zero sum can
  // only happen with damping == 1 and every machine pegged — fall back uniform.
  for (size_t m = 0; m < weights_.size(); ++m) {
    weights_[m] = sum > 0.0 ? weights_[m] / sum : 1.0 / static_cast<double>(weights_.size());
  }
}

int FrontEndRouter::Route() {
  if (config_.policy == RouterPolicy::kRoundRobin) {
    const size_t pick = rr_;
    rr_ = (rr_ + 1) % routed_.size();
    ++routed_[pick];
    return static_cast<int>(pick);
  }
  // Deficit apportionment: accrue each machine's normalized weight, serve the
  // largest accumulated credit. Strictly-greater comparison breaks ties toward
  // the lowest machine index — deterministic regardless of float equality.
  size_t pick = 0;
  for (size_t m = 0; m < credits_.size(); ++m) {
    credits_[m] += weights_[m];
    if (credits_[m] > credits_[pick]) {
      pick = m;
    }
  }
  credits_[pick] -= 1.0;
  ++routed_[pick];
  return static_cast<int>(pick);
}

}  // namespace realrate
