// FrontEndRouter: deterministic request-to-machine assignment driven by the
// cluster-level feedback signals. The paper's allocator steers proportions from
// progress pressure within one machine; the router applies the same idea one
// level up: each machine's clamped BudgetLedger spare-sum is its progress
// signal, its aggregate queue fill is its pressure signal, and new load flows
// toward head-room.
//
// Assignment is stride-style deficit apportionment: every machine accrues
// credit in proportion to its normalized weight, and each request goes to the
// machine with the largest accumulated credit (ties broken by lowest index).
// That makes a routing batch a pure function of (weights at the last update,
// request count) — no randomness, no wall-clock, so cluster runs replay
// bit-identically. Weights refresh only at cluster epoch boundaries; between
// updates the router works from the last snapshot, mirroring how a real
// front-end works from slightly stale load reports.
#ifndef REALRATE_CLUSTER_ROUTER_H_
#define REALRATE_CLUSTER_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace realrate {

enum class RouterPolicy {
  kRoundRobin,  // Signal-blind rotation: the baseline routing quality floor.
  kFeedback,    // Spare-ppt weighted, queue-pressure damped (the default).
};

struct RouterConfig {
  RouterPolicy policy = RouterPolicy::kFeedback;
  // How strongly a machine's aggregate queue fill discounts its spare weight:
  // weight = (spare_ppt + 1) * (1 - damping * fill). 0 routes on ledger spare
  // alone; 1 makes a queue-saturated machine weightless even with spare ppt.
  double pressure_damping = 0.5;
};

// One machine's signal snapshot, read at an epoch fence.
struct MachineSignals {
  int64_t spare_ppt = 0;      // BudgetLedger::spare_ppt_total() (clamped, >= 0).
  double fill_fraction = 0.0;  // QueueRegistry::AggregateFillFraction(), [0, 1].
};

class FrontEndRouter {
 public:
  FrontEndRouter(const RouterConfig& config, int num_machines);

  // Refreshes the weight snapshot (epoch boundaries). Size must equal
  // num_machines. A no-op under kRoundRobin.
  void UpdateSignals(const std::vector<MachineSignals>& signals);

  // Assigns the next request; deterministic given the construction config, the
  // signal-update history, and the call count.
  int Route();

  int num_machines() const { return static_cast<int>(routed_.size()); }
  // Requests routed to each machine since construction.
  const std::vector<int64_t>& routed() const { return routed_; }

 private:
  double WeightOf(const MachineSignals& s) const;

  RouterConfig config_;
  std::vector<double> weights_;  // Normalized to sum 1 when any weight > 0.
  std::vector<double> credits_;
  std::vector<int64_t> routed_;
  std::size_t rr_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_CLUSTER_ROUTER_H_
