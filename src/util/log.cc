#include "util/log.h"

#include <cstdio>

namespace realrate {
namespace {

LogLevel g_level = LogLevel::kNone;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogAt(LogLevel level, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", LevelTag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace realrate
