// Strong virtual-time types for the simulator. All times are integral nanoseconds so
// event ordering is exact and runs are bit-reproducible; doubles appear only at the
// presentation boundary (ToSeconds-style accessors).
#ifndef REALRATE_UTIL_TIME_H_
#define REALRATE_UTIL_TIME_H_

#include <compare>
#include <cstdint>
#include <string>

namespace realrate {

// A span of virtual time. Signed so control-law arithmetic (derivatives) is natural.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanos(int64_t ns) { return Duration(ns); }
  static constexpr Duration Micros(int64_t us) { return Duration(us * 1000); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000 * 1000); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000 * 1000 * 1000); }
  // Converts a floating-point second count; used by workload generators, never by the
  // scheduler core.
  static constexpr Duration FromSeconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / (1000 * 1000); }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool IsZero() const { return ns_ == 0; }
  constexpr bool IsPositive() const { return ns_ > 0; }

  constexpr Duration operator+(Duration other) const { return Duration(ns_ + other.ns_); }
  constexpr Duration operator-(Duration other) const { return Duration(ns_ - other.ns_); }
  constexpr Duration operator*(int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  constexpr int64_t operator/(Duration other) const { return ns_ / other.ns_; }
  constexpr Duration operator-() const { return Duration(-ns_); }
  constexpr Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

// An instant on the simulator's virtual clock. Epoch is simulation start.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint FromNanos(int64_t ns) { return TimePoint(ns); }
  static constexpr TimePoint Origin() { return TimePoint(0); }
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.nanos()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.nanos()); }
  constexpr Duration operator-(TimePoint other) const { return Duration::Nanos(ns_ - other.ns_); }
  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.nanos();
    return *this;
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  explicit constexpr TimePoint(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

// Rounds an instant down to a multiple of `period` (period boundaries since origin).
constexpr TimePoint AlignDown(TimePoint t, Duration period) {
  const int64_t p = period.nanos();
  return TimePoint::FromNanos((t.nanos() / p) * p);
}

std::string ToString(Duration d);
std::string ToString(TimePoint t);

}  // namespace realrate

#endif  // REALRATE_UTIL_TIME_H_
