// Minimal CSV emission for experiment output. Benches print figure data both as aligned
// text (for the terminal) and optionally as CSV files for plotting.
#ifndef REALRATE_UTIL_CSV_H_
#define REALRATE_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/time_series.h"

namespace realrate {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteHeader(const std::vector<std::string>& columns);
  void WriteRow(const std::vector<double>& values);
  void WriteRow(const std::vector<std::string>& values);

 private:
  std::ostream& out_;
};

// Writes several series on a shared time axis (union of timestamps, step-interpolated).
void WriteAlignedSeries(std::ostream& out, const std::vector<const TimeSeries*>& series);

}  // namespace realrate

#endif  // REALRATE_UTIL_CSV_H_
