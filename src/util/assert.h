// Lightweight contract-checking macros in the spirit of the C++ Core Guidelines'
// Expects()/Ensures(). Violations abort with a message; they are enabled in all build
// types because the simulator's correctness rests on these invariants.
#ifndef REALRATE_UTIL_ASSERT_H_
#define REALRATE_UTIL_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace realrate::detail {

[[noreturn]] inline void ContractFailure(const char* kind, const char* expr, const char* file,
                                         int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace realrate::detail

// Precondition check.
#define RR_EXPECTS(cond)                                                         \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::realrate::detail::ContractFailure("Precondition", #cond, __FILE__, __LINE__); \
    }                                                                            \
  } while (0)

// Postcondition check.
#define RR_ENSURES(cond)                                                          \
  do {                                                                            \
    if (!(cond)) {                                                                \
      ::realrate::detail::ContractFailure("Postcondition", #cond, __FILE__, __LINE__); \
    }                                                                             \
  } while (0)

// General invariant check.
#define RR_CHECK(cond)                                                         \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::realrate::detail::ContractFailure("Invariant", #cond, __FILE__, __LINE__); \
    }                                                                          \
  } while (0)

#endif  // REALRATE_UTIL_ASSERT_H_
