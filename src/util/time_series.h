// Timestamped series recording for experiments: allocation traces, fill levels,
// progress rates. Provides the reductions the paper's figures need.
#ifndef REALRATE_UTIL_TIME_SERIES_H_
#define REALRATE_UTIL_TIME_SERIES_H_

#include <string>
#include <vector>

#include "util/stats.h"
#include "util/time.h"

namespace realrate {

class TimeSeries {
 public:
  struct Point {
    TimePoint t;
    double value;
  };

  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void Add(TimePoint t, double value);
  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  // Value at or before `t` (step interpolation); `fallback` before the first point.
  double ValueAt(TimePoint t, double fallback = 0.0) const;

  // Mean of values with timestamps in [begin, end).
  double MeanOver(TimePoint begin, TimePoint end) const;
  // Max - min of values in [begin, end); 0 if no points. The paper's period-estimation
  // heuristic measures "the amount of change in fill-level over the course of a period".
  double OscillationOver(TimePoint begin, TimePoint end) const;
  // Stats over the full series.
  RunningStats Stats() const;

  // First time >= `after` at which the value crosses `threshold` in the given direction
  // (true = rising). Returns TimePoint::Max() if never.
  TimePoint FirstCrossing(TimePoint after, double threshold, bool rising) const;

  // Downsamples to one averaged point per `bucket` for compact printed output.
  TimeSeries Resample(Duration bucket) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace realrate

#endif  // REALRATE_UTIL_TIME_SERIES_H_
