#include "util/rng.h"

#include <cmath>

#include "util/assert.h"

namespace realrate {
namespace {

constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64: expands a single seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97f4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  RR_EXPECTS(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  RR_EXPECTS(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextExponential(double mean) {
  RR_EXPECTS(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::NextPareto(double xm, double alpha) {
  RR_EXPECTS(xm > 0);
  RR_EXPECTS(alpha > 0);
  // Inversion on the survival function: xm * u^(-1/alpha) with u uniform in (0, 1].
  double u = 1.0 - NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return xm * std::pow(u, -1.0 / alpha);
}

double Rng::NextNormal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace realrate
