// Core scalar types shared across the scheduler, controller, and simulator.
#ifndef REALRATE_UTIL_TYPES_H_
#define REALRATE_UTIL_TYPES_H_

#include <compare>
#include <cstdint>

#include "util/assert.h"

namespace realrate {

// CPU cycles. The simulated CPU's unit of work.
using Cycles = int64_t;

// Unique thread identifier within one simulation.
using ThreadId = int32_t;
inline constexpr ThreadId kInvalidThreadId = -1;

// Unique bounded-buffer identifier within one simulation.
using QueueId = int32_t;
inline constexpr QueueId kInvalidQueueId = -1;

// Index of a CPU core within one simulated machine. Core 0 always exists and is the
// "boot" core: it services the global timer interrupt and hosts the user-level
// controller's overhead charge.
using CpuId = int32_t;
inline constexpr CpuId kInvalidCpuId = -1;

// CPU proportion in parts-per-thousand, the unit the paper's scheduler interface uses
// ("a percentage, specified in parts-per-thousand"). 1000 == the whole CPU.
class Proportion {
 public:
  constexpr Proportion() = default;
  static constexpr Proportion Ppt(int32_t ppt) { return Proportion(ppt); }
  static constexpr Proportion Zero() { return Proportion(0); }
  static constexpr Proportion Full() { return Proportion(kFull); }
  // Conversion from a fraction in [0, 1]; rounds to nearest ppt.
  static constexpr Proportion FromFraction(double f) {
    return Proportion(static_cast<int32_t>(f * kFull + (f >= 0 ? 0.5 : -0.5)));
  }

  constexpr int32_t ppt() const { return ppt_; }
  constexpr double ToFraction() const { return static_cast<double>(ppt_) / kFull; }
  constexpr bool IsZero() const { return ppt_ == 0; }

  constexpr Proportion operator+(Proportion other) const { return Proportion(ppt_ + other.ppt_); }
  constexpr Proportion operator-(Proportion other) const { return Proportion(ppt_ - other.ppt_); }
  constexpr Proportion& operator+=(Proportion other) {
    ppt_ += other.ppt_;
    return *this;
  }
  constexpr Proportion& operator-=(Proportion other) {
    ppt_ -= other.ppt_;
    return *this;
  }
  constexpr auto operator<=>(const Proportion&) const = default;

  static constexpr int32_t kFull = 1000;

 private:
  explicit constexpr Proportion(int32_t ppt) : ppt_(ppt) {}
  int32_t ppt_ = 0;
};

// The role a thread plays with respect to a registered bounded buffer. Determines the
// sign flip R_t,i in the paper's progress-pressure equation (Figure 3).
enum class QueueRole : uint8_t {
  kProducer,  // R = -1: a full queue means the producer should slow down.
  kConsumer,  // R = +1: a full queue means the consumer should speed up.
};

constexpr int RoleSign(QueueRole role) { return role == QueueRole::kConsumer ? +1 : -1; }

constexpr const char* ToString(QueueRole role) {
  return role == QueueRole::kProducer ? "producer" : "consumer";
}

}  // namespace realrate

#endif  // REALRATE_UTIL_TYPES_H_
