// Fixed-capacity ring buffer. Used for windowed averages in the period-estimation
// heuristic and for the controller's derivative smoothing.
#ifndef REALRATE_UTIL_RING_BUFFER_H_
#define REALRATE_UTIL_RING_BUFFER_H_

#include <cstddef>
#include <type_traits>
#include <vector>

#include "util/assert.h"

namespace realrate {

template <typename T>
class RingBuffer {
  // std::vector<bool> is a packed specialization whose operator[] returns a proxy by
  // value; the const T& accessors below would dangle. Use uint8_t or char instead.
  static_assert(!std::is_same_v<T, bool>, "RingBuffer<bool> is unsupported");

 public:
  explicit RingBuffer(size_t capacity) : data_(capacity) { RR_EXPECTS(capacity > 0); }

  // Appends, evicting the oldest element once full.
  void Push(const T& value) {
    data_[head_] = value;
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) {
      ++size_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return data_.size(); }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == data_.size(); }

  // Index 0 is the oldest retained element.
  const T& operator[](size_t i) const {
    RR_EXPECTS(i < size_);
    return data_[(head_ + data_.size() - size_ + i) % data_.size()];
  }

  const T& Back() const {
    RR_EXPECTS(size_ > 0);
    return (*this)[size_ - 1];
  }

  const T& Front() const {
    RR_EXPECTS(size_ > 0);
    return (*this)[0];
  }

  void Clear() {
    size_ = 0;
    head_ = 0;
  }

 private:
  std::vector<T> data_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_UTIL_RING_BUFFER_H_
