// Tiny leveled logger. Off by default so tests and benches stay quiet; scenarios flip it
// on for debugging. Not thread-safe — the simulator is single-threaded by design.
#ifndef REALRATE_UTIL_LOG_H_
#define REALRATE_UTIL_LOG_H_

#include <cstdarg>

namespace realrate {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style. Evaluated lazily via the macro below.
void LogAt(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace realrate

#define RR_LOG(level, ...)                                \
  do {                                                    \
    if (::realrate::GetLogLevel() >= (level)) {           \
      ::realrate::LogAt((level), __VA_ARGS__);            \
    }                                                     \
  } while (0)

#define RR_LOG_ERROR(...) RR_LOG(::realrate::LogLevel::kError, __VA_ARGS__)
#define RR_LOG_INFO(...) RR_LOG(::realrate::LogLevel::kInfo, __VA_ARGS__)
#define RR_LOG_DEBUG(...) RR_LOG(::realrate::LogLevel::kDebug, __VA_ARGS__)

#endif  // REALRATE_UTIL_LOG_H_
