#include "util/time.h"

#include <cstdio>

namespace realrate {

std::string ToString(Duration d) {
  char buf[64];
  if (d.nanos() % (1000 * 1000) == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(d.millis()));
  } else if (d.nanos() % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(d.micros()));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d.nanos()));
  }
  return buf;
}

std::string ToString(TimePoint t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", t.ToSeconds());
  return buf;
}

}  // namespace realrate
