#include "util/time_series.h"

#include <algorithm>

#include "util/assert.h"

namespace realrate {

void TimeSeries::Add(TimePoint t, double value) {
  RR_EXPECTS(points_.empty() || t >= points_.back().t);
  points_.push_back({t, value});
}

double TimeSeries::ValueAt(TimePoint t, double fallback) const {
  // Binary search for the last point at or before t.
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](TimePoint lhs, const Point& rhs) { return lhs < rhs.t; });
  if (it == points_.begin()) {
    return fallback;
  }
  return std::prev(it)->value;
}

double TimeSeries::MeanOver(TimePoint begin, TimePoint end) const {
  double sum = 0.0;
  int64_t n = 0;
  for (const Point& p : points_) {
    if (p.t >= begin && p.t < end) {
      sum += p.value;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::OscillationOver(TimePoint begin, TimePoint end) const {
  bool any = false;
  double lo = 0.0;
  double hi = 0.0;
  for (const Point& p : points_) {
    if (p.t >= begin && p.t < end) {
      if (!any) {
        lo = hi = p.value;
        any = true;
      } else {
        lo = std::min(lo, p.value);
        hi = std::max(hi, p.value);
      }
    }
  }
  return any ? hi - lo : 0.0;
}

RunningStats TimeSeries::Stats() const {
  RunningStats stats;
  for (const Point& p : points_) {
    stats.Add(p.value);
  }
  return stats;
}

TimePoint TimeSeries::FirstCrossing(TimePoint after, double threshold, bool rising) const {
  for (const Point& p : points_) {
    if (p.t < after) {
      continue;
    }
    if (rising ? (p.value >= threshold) : (p.value <= threshold)) {
      return p.t;
    }
  }
  return TimePoint::Max();
}

TimeSeries TimeSeries::Resample(Duration bucket) const {
  RR_EXPECTS(bucket.IsPositive());
  TimeSeries out(name_);
  if (points_.empty()) {
    return out;
  }
  TimePoint bucket_start = AlignDown(points_.front().t, bucket);
  double sum = 0.0;
  int64_t n = 0;
  for (const Point& p : points_) {
    while (p.t >= bucket_start + bucket) {
      if (n > 0) {
        out.Add(bucket_start, sum / static_cast<double>(n));
      }
      bucket_start += bucket;
      sum = 0.0;
      n = 0;
    }
    sum += p.value;
    ++n;
  }
  if (n > 0) {
    out.Add(bucket_start, sum / static_cast<double>(n));
  }
  return out;
}

}  // namespace realrate
