// Deterministic pseudo-random number generation (xoshiro256**). The simulator must be
// bit-reproducible across platforms, so no std::random_device / distribution objects
// (libstdc++ distributions are not specified to be identical across versions).
#ifndef REALRATE_UTIL_RNG_H_
#define REALRATE_UTIL_RNG_H_

#include <cstdint>

namespace realrate {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextU64();
  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);
  // Uniform in [0, 1).
  double NextDouble();
  // Uniform in [lo, hi).
  double NextDouble(double lo, double hi);
  // Exponential with the given mean (> 0). Used for Poisson arrival processes.
  double NextExponential(double mean);
  // Pareto with scale xm (> 0) and shape alpha (> 0), via inversion: always >= xm,
  // heavy-tailed (infinite variance for alpha <= 2, infinite mean for alpha <= 1).
  // Used for session lengths and response-size distributions in open-loop workloads.
  double NextPareto(double xm, double alpha);
  // Standard normal via Box-Muller, then scaled.
  double NextNormal(double mean, double stddev);
  // Bernoulli with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace realrate

#endif  // REALRATE_UTIL_RNG_H_
