// Streaming and batch statistics used by the metrics pipeline and the benches.
#ifndef REALRATE_UTIL_STATS_H_
#define REALRATE_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace realrate {

// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance (n denominator); 0 when fewer than 2 samples.
  double variance() const;
  // Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Batch percentile computation. Keeps all samples; fine at simulation scale.
class SampleSet {
 public:
  // Invalidates the sort memo: interleaving Add and Percentile re-sorts lazily,
  // so percentiles always reflect every sample added so far.
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Raw samples, in unspecified order (the sort memo may or may not have run).
  // For cross-set aggregation (the cluster farm merges per-machine latency sets
  // before computing cluster-wide percentiles).
  const std::vector<double>& samples() const { return samples_; }

  // Linear-interpolated percentile, p in [0, 100]. Requires at least one sample.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double Mean() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

// Ordinary least squares over (x, y) pairs. Reproduces the paper's Figure 5 fit
// report: "linear, y = .00066x + .00057, with a coefficient of determination of .999".
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace realrate

#endif  // REALRATE_UTIL_STATS_H_
