#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace realrate {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Percentile(double p) const {
  RR_EXPECTS(!samples_.empty());
  RR_EXPECTS(p >= 0.0 && p <= 100.0);
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::Mean() const {
  RR_EXPECTS(!samples_.empty());
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys) {
  RR_EXPECTS(xs.size() == ys.size());
  RR_EXPECTS(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    return fit;  // Vertical line: slope undefined, report zeros.
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy == 0.0) {
    fit.r_squared = 1.0;  // All y equal: the fit is exact.
  } else {
    fit.r_squared = (sxy * sxy) / (sxx * syy);
  }
  return fit;
}

}  // namespace realrate
