#include "util/csv.h"

#include <algorithm>
#include <set>

namespace realrate {

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<double>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<std::string>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << values[i];
  }
  out_ << '\n';
}

void WriteAlignedSeries(std::ostream& out, const std::vector<const TimeSeries*>& series) {
  CsvWriter csv(out);
  std::vector<std::string> header = {"time_s"};
  for (const TimeSeries* s : series) {
    header.push_back(s->name());
  }
  csv.WriteHeader(header);

  std::set<TimePoint> times;
  for (const TimeSeries* s : series) {
    for (const auto& p : s->points()) {
      times.insert(p.t);
    }
  }
  for (TimePoint t : times) {
    std::vector<double> row = {t.ToSeconds()};
    for (const TimeSeries* s : series) {
      row.push_back(s->ValueAt(t));
    }
    csv.WriteRow(row);
  }
}

}  // namespace realrate
