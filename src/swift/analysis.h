// Step-response analysis for feedback circuits: closes a loop around a first-order
// plant and reports the classical control metrics (rise time, overshoot, settling
// time, steady-state error). Used by the PID tests and the gain ablation to
// characterize controller tunings quantitatively.
#ifndef REALRATE_SWIFT_ANALYSIS_H_
#define REALRATE_SWIFT_ANALYSIS_H_

#include "swift/component.h"

namespace realrate::swift {

struct StepResponse {
  // Time for the output to first reach 90% of the final setpoint change.
  double rise_time_s = -1.0;
  // Peak overshoot beyond the setpoint, as a fraction of the step size (0 = none).
  double overshoot = 0.0;
  // Time after which the output stays within +/-5% of the step size.
  double settling_time_s = -1.0;
  // |setpoint - output| at the end of the horizon, as a fraction of the step size.
  double steady_state_error = 0.0;
  // True if the output stayed within sane bounds (no divergence).
  bool stable = false;
};

struct PlantConfig {
  // First-order plant: d(output)/dt = gain * control - leak * output.
  // The default leak models the scheduling loop's operating point: holding the output
  // at the setpoint requires a nonzero steady control (like matching a producer's
  // rate), which only integral action can supply. leak * dt must stay well below 1
  // (explicit Euler).
  double gain = 50.0;
  double leak = 5.0;
  // Actuator saturation (allocation cannot exceed the machine).
  double control_min = 0.0;
  double control_max = 1.0;
};

// Drives `controller` (any Component mapping error -> control) against the plant with
// a unit step in the setpoint at t = 0. dt is the sampling interval; horizon the total
// simulated time.
StepResponse AnalyzeStepResponse(Component& controller, const PlantConfig& plant,
                                 double setpoint, double dt, double horizon_s);

}  // namespace realrate::swift

#endif  // REALRATE_SWIFT_ANALYSIS_H_
