// Standard SWiFT circuit elements: gain, integrator (with anti-windup), differentiator,
// first-order low-pass filter, clamp, and deadband.
#ifndef REALRATE_SWIFT_COMPONENTS_H_
#define REALRATE_SWIFT_COMPONENTS_H_

#include "swift/component.h"
#include "util/assert.h"

namespace realrate::swift {

class Gain : public Component {
 public:
  explicit Gain(double k) : k_(k) {}
  double Step(double input, double /*dt*/) override { return k_ * input; }
  void set_gain(double k) { k_ = k; }
  double gain() const { return k_; }

 private:
  double k_;
};

// Trapezoidal integrator with symmetric anti-windup clamping. Anti-windup matters in
// this system: during overload the actuator (allocation) saturates, and an unclamped
// integral would keep growing and overshoot massively when load disappears.
class Integrator : public Component {
 public:
  explicit Integrator(double windup_limit);
  double Step(double input, double dt) override;
  void Reset() override;
  double value() const { return value_; }
  // Overrides the accumulated state (clamped to the windup limit). Used for bumpless
  // transfer when an outer policy forces the actuator to a new operating point.
  void SetValue(double value);

 private:
  const double limit_;
  double value_ = 0.0;
  double prev_input_ = 0.0;
  bool has_prev_ = false;
};

// First difference scaled by 1/dt.
class Differentiator : public Component {
 public:
  double Step(double input, double dt) override;
  void Reset() override;

 private:
  double prev_ = 0.0;
  bool has_prev_ = false;
};

// First-order IIR low-pass with time constant tau (seconds). The paper: "Using a
// suitable low-pass filter, we can schedule jobs with reasonable responsiveness and low
// overhead while keeping the sampling rate reasonably high."
class LowPassFilter : public Component {
 public:
  explicit LowPassFilter(double tau_seconds);
  double Step(double input, double dt) override;
  void Reset() override;

 private:
  const double tau_;
  double value_ = 0.0;
  bool primed_ = false;
};

class Clamp : public Component {
 public:
  Clamp(double lo, double hi);
  double Step(double input, double /*dt*/) override;

 private:
  const double lo_;
  const double hi_;
};

// Passes zero for |input| < width; used to ignore progress-pressure noise around the
// half-full set point.
class Deadband : public Component {
 public:
  explicit Deadband(double width);
  double Step(double input, double /*dt*/) override;

 private:
  const double width_;
};

}  // namespace realrate::swift

#endif  // REALRATE_SWIFT_COMPONENTS_H_
