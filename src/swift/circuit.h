// A circuit is an owned chain of components applied in sequence — the SWiFT way of
// assembling a controller from reusable filters.
#ifndef REALRATE_SWIFT_CIRCUIT_H_
#define REALRATE_SWIFT_CIRCUIT_H_

#include <memory>
#include <utility>
#include <vector>

#include "swift/component.h"

namespace realrate::swift {

class Circuit : public Component {
 public:
  Circuit() = default;

  // Appends a stage; returns *this for fluent building.
  Circuit& Add(std::unique_ptr<Component> stage);

  template <typename T, typename... Args>
  Circuit& Emplace(Args&&... args) {
    return Add(std::make_unique<T>(std::forward<Args>(args)...));
  }

  double Step(double input, double dt) override;
  void Reset() override;
  size_t size() const { return stages_.size(); }

 private:
  std::vector<std::unique_ptr<Component>> stages_;
};

}  // namespace realrate::swift

#endif  // REALRATE_SWIFT_CIRCUIT_H_
