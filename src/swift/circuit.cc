#include "swift/circuit.h"

#include "util/assert.h"

namespace realrate::swift {

Circuit& Circuit::Add(std::unique_ptr<Component> stage) {
  RR_EXPECTS(stage != nullptr);
  stages_.push_back(std::move(stage));
  return *this;
}

double Circuit::Step(double input, double dt) {
  double value = input;
  for (auto& stage : stages_) {
    value = stage->Step(value, dt);
  }
  return value;
}

void Circuit::Reset() {
  for (auto& stage : stages_) {
    stage->Reset();
  }
}

}  // namespace realrate::swift
