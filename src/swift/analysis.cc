#include "swift/analysis.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.h"

namespace realrate::swift {

StepResponse AnalyzeStepResponse(Component& controller, const PlantConfig& plant,
                                 double setpoint, double dt, double horizon_s) {
  RR_EXPECTS(dt > 0);
  RR_EXPECTS(horizon_s > dt);
  RR_EXPECTS(setpoint != 0.0);
  RR_EXPECTS(plant.leak * dt < 0.9);  // Explicit Euler stability.

  const auto steps = static_cast<int>(horizon_s / dt);
  std::vector<double> outputs;
  outputs.reserve(steps);

  double output = 0.0;
  StepResponse response;
  double peak = 0.0;

  for (int i = 0; i < steps; ++i) {
    const double error = setpoint - output;
    const double control =
        std::clamp(controller.Step(error, dt), plant.control_min, plant.control_max);
    output += (plant.gain * control - plant.leak * output) * dt;
    outputs.push_back(output);

    const double t = (i + 1) * dt;
    if (response.rise_time_s < 0 && output >= 0.9 * setpoint) {
      response.rise_time_s = t;
    }
    peak = std::max(peak, output);
    if (std::abs(output) > std::abs(setpoint) * 100.0) {
      return response;  // Diverged; stable stays false.
    }
  }

  response.overshoot = std::max(0.0, (peak - setpoint) / std::abs(setpoint));
  response.steady_state_error = std::abs(setpoint - outputs.back()) / std::abs(setpoint);

  // Settling: last time the output was outside the +/-5% band.
  response.settling_time_s = 0.0;
  for (int i = steps - 1; i >= 0; --i) {
    if (std::abs(outputs[i] - setpoint) > 0.05 * std::abs(setpoint)) {
      response.settling_time_s = (i + 1) * dt;
      break;
    }
  }
  // Stable iff it ended inside the band.
  response.stable = response.steady_state_error <= 0.10;
  return response;
}

}  // namespace realrate::swift
