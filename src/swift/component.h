// Mini reimplementation of the SWiFT software-feedback toolkit (Goel et al., OGI
// CSE-98-009) that the paper's controller is built with: "the controller is a circuit
// that calculates a function based on its inputs ... and uses the function's output for
// actuation." Components are discrete-time scalar filters composed into circuits.
#ifndef REALRATE_SWIFT_COMPONENT_H_
#define REALRATE_SWIFT_COMPONENT_H_

namespace realrate::swift {

// A single-input single-output discrete-time component. `dt` is the controller
// sampling interval in seconds and is passed per step so circuits keep working when
// the controller's execution period is reconfigured at run time.
class Component {
 public:
  virtual ~Component() = default;

  // Processes one sample.
  virtual double Step(double input, double dt) = 0;

  // Clears internal state (integrators, filter memories).
  virtual void Reset() {}
};

}  // namespace realrate::swift

#endif  // REALRATE_SWIFT_COMPONENT_H_
