// PID controller: "A PID controller combines the magnitude of the summed pressures (P)
// with the integral (I) and with the first-derivative (D) of the function described by
// the summed progress pressures over time" (paper §3.3). Derivative is low-pass
// filtered, the standard remedy for sampled-noise amplification.
#ifndef REALRATE_SWIFT_PID_H_
#define REALRATE_SWIFT_PID_H_

#include "swift/components.h"

namespace realrate::swift {

struct PidGains {
  double kp = 1.0;
  double ki = 0.0;
  double kd = 0.0;
  // Anti-windup bound on the integral term's state.
  double integral_limit = 10.0;
  // Time constant of the derivative's smoothing filter (seconds). 0 = raw derivative.
  double derivative_filter_tau = 0.0;
};

class PidController {
 public:
  explicit PidController(const PidGains& gains);

  // One control step over the error signal. dt in seconds, > 0.
  double Step(double error, double dt);
  void Reset();

  const PidGains& gains() const { return gains_; }
  double integral_state() const { return integrator_.value(); }
  // Bumpless transfer: sets the integral state so that, at zero error, the controller
  // output equals `output` (requires ki != 0; no-op otherwise).
  void SetOutputState(double output);

 private:
  PidGains gains_;
  Integrator integrator_;
  Differentiator differentiator_;
  LowPassFilter derivative_filter_;
};

}  // namespace realrate::swift

#endif  // REALRATE_SWIFT_PID_H_
