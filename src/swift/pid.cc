#include "swift/pid.h"

namespace realrate::swift {

PidController::PidController(const PidGains& gains)
    : gains_(gains),
      integrator_(gains.integral_limit),
      derivative_filter_(gains.derivative_filter_tau) {}

double PidController::Step(double error, double dt) {
  RR_EXPECTS(dt > 0);
  const double p = gains_.kp * error;
  const double i = gains_.ki * integrator_.Step(error, dt);
  const double raw_d = differentiator_.Step(error, dt);
  const double d = gains_.kd * derivative_filter_.Step(raw_d, dt);
  return p + i + d;
}

void PidController::Reset() {
  integrator_.Reset();
  differentiator_.Reset();
  derivative_filter_.Reset();
}

void PidController::SetOutputState(double output) {
  if (gains_.ki != 0.0) {
    integrator_.SetValue(output / gains_.ki);
  }
}

}  // namespace realrate::swift
