#include "swift/components.h"

#include <algorithm>

namespace realrate::swift {

Integrator::Integrator(double windup_limit) : limit_(windup_limit) {
  RR_EXPECTS(windup_limit > 0);
}

double Integrator::Step(double input, double dt) {
  RR_EXPECTS(dt > 0);
  const double increment =
      has_prev_ ? 0.5 * (input + prev_input_) * dt : input * dt;  // Trapezoid rule.
  prev_input_ = input;
  has_prev_ = true;
  value_ = std::clamp(value_ + increment, -limit_, limit_);
  return value_;
}

void Integrator::Reset() {
  value_ = 0.0;
  prev_input_ = 0.0;
  has_prev_ = false;
}

void Integrator::SetValue(double value) { value_ = std::clamp(value, -limit_, limit_); }

double Differentiator::Step(double input, double dt) {
  RR_EXPECTS(dt > 0);
  const double out = has_prev_ ? (input - prev_) / dt : 0.0;
  prev_ = input;
  has_prev_ = true;
  return out;
}

void Differentiator::Reset() {
  prev_ = 0.0;
  has_prev_ = false;
}

LowPassFilter::LowPassFilter(double tau_seconds) : tau_(tau_seconds) {
  RR_EXPECTS(tau_seconds >= 0);
}

double LowPassFilter::Step(double input, double dt) {
  RR_EXPECTS(dt > 0);
  if (!primed_) {
    value_ = input;  // Start at the first sample instead of decaying up from zero.
    primed_ = true;
    return value_;
  }
  const double alpha = dt / (tau_ + dt);
  value_ += alpha * (input - value_);
  return value_;
}

void LowPassFilter::Reset() {
  value_ = 0.0;
  primed_ = false;
}

Clamp::Clamp(double lo, double hi) : lo_(lo), hi_(hi) { RR_EXPECTS(lo <= hi); }

double Clamp::Step(double input, double /*dt*/) { return std::clamp(input, lo_, hi_); }

Deadband::Deadband(double width) : width_(width) { RR_EXPECTS(width >= 0); }

double Deadband::Step(double input, double /*dt*/) {
  if (input > width_) {
    return input - width_;
  }
  if (input < -width_) {
    return input + width_;
  }
  return 0.0;
}

}  // namespace realrate::swift
