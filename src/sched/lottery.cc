#include "sched/lottery.h"

#include <algorithm>

#include "util/assert.h"

namespace realrate {

LotteryScheduler::LotteryScheduler(uint64_t seed) : rng_(seed) {}

void LotteryScheduler::AddThread(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(thread->tickets() > 0);
  threads_.push_back(thread);
}

void LotteryScheduler::RemoveThread(SimThread* thread) {
  threads_.erase(std::remove(threads_.begin(), threads_.end(), thread), threads_.end());
  if (tick_winner_ == thread) {
    tick_winner_ = nullptr;
  }
}

void LotteryScheduler::OnTick(TimePoint /*now*/) {
  drawn_this_tick_ = false;
  tick_winner_ = nullptr;
}

SimThread* LotteryScheduler::PickNext(TimePoint /*now*/) {
  // One draw per tick; redispatch within the tick (after a block) redraws.
  if (drawn_this_tick_ && tick_winner_ != nullptr && tick_winner_->IsRunnable()) {
    return tick_winner_;
  }
  int64_t total = 0;
  for (SimThread* t : threads_) {
    if (t->IsRunnable()) {
      total += t->tickets();
    }
  }
  if (total == 0) {
    return nullptr;
  }
  int64_t draw = static_cast<int64_t>(rng_.NextBounded(static_cast<uint64_t>(total)));
  for (SimThread* t : threads_) {
    if (!t->IsRunnable()) {
      continue;
    }
    draw -= t->tickets();
    if (draw < 0) {
      tick_winner_ = t;
      drawn_this_tick_ = true;
      return t;
    }
  }
  RR_CHECK(false);  // Unreachable: draw < total.
  return nullptr;
}

Cycles LotteryScheduler::MaxGrant(SimThread* /*thread*/, Cycles tick_remaining) {
  return tick_remaining;
}

void LotteryScheduler::OnRan(SimThread* /*thread*/, Cycles /*used*/, TimePoint /*now*/) {}

std::optional<TimePoint> LotteryScheduler::ThrottleUntil(SimThread* /*thread*/,
                                                         TimePoint /*now*/) {
  return std::nullopt;
}

}  // namespace realrate
