#include "sched/mlfq.h"

#include <algorithm>

#include "util/assert.h"

namespace realrate {

MlfqScheduler::MlfqScheduler(const Cpu& cpu, Duration tick, const MlfqConfig& config)
    : cpu_(cpu), tick_(tick), config_(config) {
  RR_EXPECTS(tick.IsPositive());
}

void MlfqScheduler::AddThread(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  if (thread->priority() == 0) {
    thread->set_priority(config_.default_priority);
  }
  thread->set_counter(thread->priority());
  threads_.push_back(thread);
}

void MlfqScheduler::RemoveThread(SimThread* thread) {
  threads_.erase(std::remove(threads_.begin(), threads_.end(), thread), threads_.end());
}

void MlfqScheduler::OnTick(TimePoint /*now*/) {}

int64_t MlfqScheduler::Goodness(const SimThread* thread) const {
  if (thread->counter() <= 0) {
    return 0;
  }
  return thread->counter() + thread->priority();
}

void MlfqScheduler::RecalculateCounters() {
  ++recalculations_;
  // Linux 2.x: "If all threads on the run-queue have a zero goodness value, Linux
  // recalculates goodness for all threads in the system."
  for (SimThread* t : threads_) {
    const int updated = t->counter() / 2 + t->priority();
    t->set_counter(std::min(updated, config_.max_counter));
  }
}

SimThread* MlfqScheduler::PickNext(TimePoint /*now*/) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    SimThread* best = nullptr;
    int64_t best_goodness = 0;
    bool any_runnable = false;
    for (SimThread* t : threads_) {
      if (!t->IsRunnable()) {
        continue;
      }
      any_runnable = true;
      const int64_t g = Goodness(t);
      if (g > best_goodness) {
        best = t;
        best_goodness = g;
      }
    }
    if (best != nullptr) {
      return best;
    }
    if (!any_runnable) {
      return nullptr;
    }
    RecalculateCounters();
  }
  return nullptr;  // All runnable threads have zero priority (degenerate config).
}

Cycles MlfqScheduler::MaxGrant(SimThread* thread, Cycles tick_remaining) {
  // A thread may run at most its remaining slice (counter ticks).
  const Cycles per_tick = cpu_.DurationToCycles(tick_);
  const Cycles accum = (thread == slice_owner_) ? run_accum_ : 0;
  const Cycles slice = static_cast<Cycles>(thread->counter()) * per_tick - accum;
  return std::clamp<Cycles>(slice, 0, tick_remaining);
}

void MlfqScheduler::OnRan(SimThread* thread, Cycles used, TimePoint /*now*/) {
  // Decrement the counter once per whole tick of accumulated run time. The accumulator
  // tracks a single slice owner; a different thread starts a fresh slice.
  if (thread != slice_owner_) {
    slice_owner_ = thread;
    run_accum_ = 0;
  }
  run_accum_ += used;
  const Cycles per_tick = cpu_.DurationToCycles(tick_);
  while (run_accum_ >= per_tick && thread->counter() > 0) {
    run_accum_ -= per_tick;
    thread->set_counter(thread->counter() - 1);
  }
  if (thread->counter() == 0) {
    run_accum_ = 0;
  }
}

std::optional<TimePoint> MlfqScheduler::ThrottleUntil(SimThread* /*thread*/, TimePoint /*now*/) {
  return std::nullopt;  // MLFQ never sleeps threads; exhausted slices just lose goodness.
}

}  // namespace realrate
