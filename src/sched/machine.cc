#include "sched/machine.h"

#include <algorithm>

#include "util/assert.h"
#include "util/log.h"

namespace realrate {

Machine::Machine(Simulator& sim, Scheduler& scheduler, ThreadRegistry& registry,
                 const MachineConfig& config)
    : sim_(sim), scheduler_(scheduler), registry_(registry), config_(config) {
  RR_EXPECTS(config.dispatch_interval.IsPositive());
  cycles_per_tick_ = sim_.cpu().DurationToCycles(config.dispatch_interval);
  RR_EXPECTS(cycles_per_tick_ > 0);
}

void Machine::Start() {
  RR_EXPECTS(!started_);
  started_ = true;
  sim_.ScheduleAfter(config_.dispatch_interval, [this] { Tick(); });
}

void Machine::Attach(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  scheduler_.AddThread(thread);
}

void Machine::Attach(BoundedBuffer* queue) {
  RR_EXPECTS(queue != nullptr);
  queue->SetWakeFn([this](ThreadId id) { Wake(id); });
}

void Machine::Attach(SimMutex* mutex) {
  RR_EXPECTS(mutex != nullptr);
  mutex->SetWakeFn([this](ThreadId id) { Wake(id); });
}

void Machine::Attach(TtyPort* tty) {
  RR_EXPECTS(tty != nullptr);
  tty->SetWakeFn([this](ThreadId id) { Wake(id); });
}

void Machine::Wake(ThreadId thread_id) {
  SimThread* thread = registry_.Find(thread_id);
  if (thread == nullptr || thread->state() != ThreadState::kBlocked) {
    return;  // Spurious or stale wake.
  }
  thread->set_state(ThreadState::kRunnable);
  thread->set_last_wake_time(sim_.Now());
  thread->work().OnWake(sim_.Now());
  scheduler_.OnWake(thread, sim_.Now());
  sim_.trace().Record(sim_.Now(), TraceKind::kWake, thread_id);
}

void Machine::SleepUntil(SimThread* thread, TimePoint wake_at) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(wake_at >= sim_.Now());
  thread->set_state(ThreadState::kSleeping);
  const uint64_t gen = next_generation_++;
  sleep_generation_[thread->id()] = gen;
  sleepers_.push({wake_at, gen, thread->id()});
}

void Machine::CancelSleep(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  if (thread->state() != ThreadState::kSleeping) {
    return;
  }
  sleep_generation_.erase(thread->id());  // The heap entry becomes stale.
  thread->set_state(ThreadState::kRunnable);
  thread->set_last_wake_time(sim_.Now());
  thread->work().OnWake(sim_.Now());
  scheduler_.OnWake(thread, sim_.Now());
  sim_.trace().Record(sim_.Now(), TraceKind::kWake, thread->id(), /*arg0=*/-2);
}

void Machine::StealCycles(CpuUse category, Cycles cycles) {
  RR_EXPECTS(cycles >= 0);
  sim_.cpu().Charge(category, cycles);
  if (config_.charge_overheads) {
    stolen_backlog_ += cycles;
  }
}

void Machine::RunFor(Duration d) { sim_.RunFor(d); }

void Machine::WakeExpiredSleepers(TimePoint now) {
  Cpu& cpu = sim_.cpu();
  bool any_expired = false;
  while (!sleepers_.empty() && sleepers_.top().wake_at <= now) {
    const SleepEntry entry = sleepers_.top();
    sleepers_.pop();
    auto it = sleep_generation_.find(entry.thread);
    if (it == sleep_generation_.end() || it->second != entry.generation) {
      continue;  // Stale entry: thread was re-slept or woken through another path.
    }
    sleep_generation_.erase(it);
    SimThread* thread = registry_.Find(entry.thread);
    if (thread == nullptr || thread->state() != ThreadState::kSleeping) {
      continue;
    }
    any_expired = true;
    if (config_.charge_overheads) {
      StealCycles(CpuUse::kTimer, cpu.config().timer_expired_cycles);
    }
    thread->set_state(ThreadState::kRunnable);
    thread->set_last_wake_time(now);
    thread->work().OnWake(now);
    scheduler_.OnWake(thread, now);
    sim_.trace().Record(now, TraceKind::kWake, entry.thread, /*arg0=*/-1);
  }
  // The cached next-expiry means an interrupt that finds nothing expired does near-zero
  // work ("this routine typically runs in constant time").
  if (!any_expired && config_.charge_overheads) {
    StealCycles(CpuUse::kTimer, cpu.config().timer_idle_cycles);
  }
}

void Machine::Tick() {
  const TimePoint now = sim_.Now();
  ++ticks_;

  WakeExpiredSleepers(now);
  scheduler_.OnTick(now);

  // Capacity of this tick, minus overhead backlog carried over (controller runs,
  // timer/dispatch costs that exceeded a previous tick).
  Cycles cycles_left = cycles_per_tick_;
  const Cycles absorbed = std::min(stolen_backlog_, cycles_left);
  cycles_left -= absorbed;
  stolen_backlog_ -= absorbed;

  DispatchLoop(now, cycles_left);

  sim_.ScheduleAfter(config_.dispatch_interval, [this] { Tick(); });
}

void Machine::DispatchLoop(TimePoint now, Cycles cycles_left) {
  Cpu& cpu = sim_.cpu();
  const Cycles dispatch_cost =
      config_.charge_overheads ? cpu.DispatchCostAt(dispatch_hz()) : 0;

  while (cycles_left > 0) {
    // schedule() runs at every dispatch point.
    ++dispatches_;
    if (config_.charge_overheads) {
      cpu.Charge(CpuUse::kDispatch, dispatch_cost);
      cycles_left -= std::min(dispatch_cost, cycles_left);
      if (cycles_left == 0) {
        break;
      }
    }

    SimThread* pick = scheduler_.PickNext(now);
    if (pick == nullptr) {
      cpu.Charge(CpuUse::kIdle, cycles_left);
      return;
    }

    if (pick != last_ran_) {
      ++context_switches_;
      if (config_.charge_overheads) {
        const Cycles cs = cpu.config().context_switch_cycles;
        cpu.Charge(CpuUse::kDispatch, cs);
        cycles_left -= std::min(cs, cycles_left);
        if (cycles_left == 0) {
          last_ran_ = pick;
          return;
        }
      }
      last_ran_ = pick;
    }

    const Cycles grant = scheduler_.MaxGrant(pick, cycles_left);
    RR_CHECK(grant > 0);

    pick->set_state(ThreadState::kRunning);
    const RunResult result = pick->work().Run(now, grant);
    RR_CHECK(result.used >= 0 && result.used <= grant);
    // A work model that consumes nothing must not claim to still be runnable, or the
    // dispatch loop would spin forever.
    RR_CHECK(result.used > 0 || result.next != RunResult::Next::kRunnable);

    pick->OnRan(result.used);
    cpu.Charge(CpuUse::kUser, result.used);
    cycles_left -= result.used;
    scheduler_.OnRan(pick, result.used, now);
    sim_.trace().Record(now, TraceKind::kDispatch, pick->id(), result.used);

    ApplyRunResult(pick, result, now);
  }
}

void Machine::ApplyRunResult(SimThread* thread, const RunResult& result, TimePoint now) {
  switch (result.next) {
    case RunResult::Next::kRunnable:
      thread->set_state(ThreadState::kRunnable);
      break;
    case RunResult::Next::kBlocked:
      thread->set_state(ThreadState::kBlocked);
      thread->OnBurstEnd();  // Ran-before-blocking measurement for interactive jobs.
      scheduler_.OnBlock(thread, now);
      sim_.trace().Record(now, TraceKind::kBlock, thread->id(), result.block_tag);
      return;  // Throttling is irrelevant once off the run queue.
    case RunResult::Next::kSleeping:
      thread->set_state(ThreadState::kRunnable);  // SleepUntil flips it to kSleeping.
      thread->OnBurstEnd();
      SleepUntil(thread, std::max(result.wake_at, now));
      scheduler_.OnBlock(thread, now);
      return;
    case RunResult::Next::kExited:
      thread->set_state(ThreadState::kExited);
      scheduler_.RemoveThread(thread);
      sim_.trace().Record(now, TraceKind::kExit, thread->id());
      if (last_ran_ == thread) {
        last_ran_ = nullptr;
      }
      return;
  }

  // Budget enforcement: "when a thread has used its allocation for its period, it is
  // put to sleep until its next period begins."
  if (const auto throttle_until = scheduler_.ThrottleUntil(thread, now)) {
    sim_.trace().Record(now, TraceKind::kBudgetExhausted, thread->id(),
                        thread->cycles_this_period());
    SleepUntil(thread, std::max(*throttle_until, now));
    scheduler_.OnBlock(thread, now);
  }
}

}  // namespace realrate
