#include "sched/machine.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"
#include "util/log.h"

namespace realrate {

Machine::Machine(Simulator& sim, Scheduler& scheduler, ThreadRegistry& registry,
                 const MachineConfig& config)
    : Machine(sim, std::vector<Scheduler*>{&scheduler}, registry, config) {}

Machine::Machine(Simulator& sim, std::vector<Scheduler*> schedulers, ThreadRegistry& registry,
                 const MachineConfig& config)
    : sim_(sim), registry_(registry), config_(config), slabs_(registry.slabs()) {
  RR_EXPECTS(!schedulers.empty());
  RR_EXPECTS(static_cast<int>(schedulers.size()) == sim.num_cpus());
  RR_EXPECTS(config.dispatch_interval.IsPositive());
  RR_EXPECTS(config.rebalance_threshold > 0);
  cores_.resize(schedulers.size());
  for (size_t i = 0; i < schedulers.size(); ++i) {
    RR_EXPECTS(schedulers[i] != nullptr);
    cores_[i].scheduler = schedulers[i];
  }
  cycles_per_tick_ = sim_.cpu().DurationToCycles(config.dispatch_interval);
  RR_EXPECTS(cycles_per_tick_ > 0);
  RR_EXPECTS(config.host_threads >= 1);
  // One host thread per simulated core at most; a 1-core machine never forks.
  const int host = std::min(config.host_threads, num_cpus());
  if (host > 1) {
    engine_ = std::make_unique<ParallelEngine>(host);
    lanes_.resize(cores_.size());
  }
}

int Machine::host_threads() const {
  return engine_ != nullptr ? engine_->host_threads() : 1;
}

EventQueue::Callback Machine::TickCallback(CpuId core) {
  // Under the parallel engine, core 0's clock drives the whole round; sibling cores
  // keep their own callbacks, which fire only when RoundTick could not pop them
  // (an interleaved same-timestamp event) — and then run the exact sequential tick.
  if (engine_ != nullptr && core == 0) {
    return [this] { RoundTick(); };
  }
  return [this, core] { Tick(core); };
}

void Machine::Start() {
  RR_EXPECTS(!started_);
  started_ = true;
  accounted_through_ = sim_.Now();
  for (CpuId c = 0; c < num_cpus(); ++c) {
    CoreAt(c).next_tick_event =
        sim_.ScheduleAfter(config_.dispatch_interval, TickCallback(c));
  }
  if (num_cpus() > 1 && config_.rebalance_interval.IsPositive()) {
    sim_.ScheduleAfter(config_.rebalance_interval, [this] { Rebalance(); });
  }
}

CpuId Machine::LeastLoadedCore(const SimThread* placing) const {
  CpuId best = 0;
  double best_load = ReservedFractionOn(0, placing);
  int best_count = ThreadCountOn(0, placing);
  for (CpuId c = 1; c < num_cpus(); ++c) {
    const double load = ReservedFractionOn(c, placing);
    const int count = ThreadCountOn(c, placing);
    if (load < best_load - 1e-12 ||
        (load < best_load + 1e-12 && count < best_count)) {
      best = c;
      best_load = load;
      best_count = count;
    }
  }
  return best;
}

double Machine::ReservedFractionOn(CpuId core, const SimThread* excluding) const {
  double sum = 0.0;
  if (UseColumns()) {
    // Slot order == registry creation order, so this double sum adds the exact same
    // terms in the exact same order as the pointer sweep — bit-identical result.
    const int32_t ex = excluding != nullptr ? excluding->slab_slot() : ThreadSlabs::kNoSlot;
    const int32_t n = slabs_->slot_count();
    for (int32_t s = 0; s < n; ++s) {
      if (s != ex && slabs_->cpu(s) == core && slabs_->state(s) != ThreadState::kExited &&
          slabs_->policy(s) == SchedPolicy::kReservation) {
        sum += Proportion::Ppt(slabs_->granted_ppt(s)).ToFraction();
      }
    }
    return sum;
  }
  for (const SimThread* t : registry_.All()) {
    if (t != excluding && t->cpu() == core && !t->HasExited() &&
        t->policy() == SchedPolicy::kReservation) {
      sum += t->proportion().ToFraction();
    }
  }
  return sum;
}

int Machine::ThreadCountOn(CpuId core, const SimThread* excluding) const {
  int count = 0;
  if (UseColumns()) {
    const int32_t ex = excluding != nullptr ? excluding->slab_slot() : ThreadSlabs::kNoSlot;
    const int32_t n = slabs_->slot_count();
    for (int32_t s = 0; s < n; ++s) {
      if (s != ex && slabs_->cpu(s) == core && slabs_->state(s) != ThreadState::kExited) {
        ++count;
      }
    }
    return count;
  }
  for (const SimThread* t : registry_.All()) {
    if (t != excluding && t->cpu() == core && !t->HasExited()) {
      ++count;
    }
  }
  return count;
}

uint64_t Machine::SleepGenOf(ThreadId id) const {
  if (slabs_ != nullptr) {
    return static_cast<size_t>(id) < sleep_gen_dense_.size()
               ? sleep_gen_dense_[static_cast<size_t>(id)]
               : 0;
  }
  const auto it = sleep_generation_.find(id);
  return it == sleep_generation_.end() ? 0 : it->second;
}

void Machine::SetSleepGen(ThreadId id, uint64_t gen) {
  if (slabs_ != nullptr) {
    if (static_cast<size_t>(id) >= sleep_gen_dense_.size()) {
      sleep_gen_dense_.resize(static_cast<size_t>(id) + 1, 0);
    }
    sleep_gen_dense_[static_cast<size_t>(id)] = gen;
    return;
  }
  sleep_generation_[id] = gen;
}

void Machine::ClearSleepGen(ThreadId id) {
  if (slabs_ != nullptr) {
    if (static_cast<size_t>(id) < sleep_gen_dense_.size()) {
      sleep_gen_dense_[static_cast<size_t>(id)] = 0;
    }
    return;
  }
  sleep_generation_.erase(id);
}

void Machine::Attach(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(!in_round_);  // Epoch contract: no attaches from inside a parallel round.
  InvalidateRoundGate();
  ResumeTicking();  // A newly attached thread is runnable: the idle span is over.
  // Exclude the thread itself from the load census: it is typically already in the
  // registry (with a default core-0 affinity) by the time it is attached.
  const CpuId core = LeastLoadedCore(thread);
  thread->set_cpu(core);
  CoreAt(core).scheduler->AddThread(thread);
}

void Machine::Migrate(SimThread* thread, CpuId core) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(core >= 0 && core < num_cpus());
  // Epoch contract: migrations happen between rounds (the rebalancer and the
  // controller both run as their own simulator events), never while per-core
  // dispatch loops are in flight — a mid-round move would hand a thread to a core
  // another host thread owns.
  RR_EXPECTS(!in_round_);
  const CpuId from = thread->cpu();
  if (from == core) {
    return;
  }
  RR_EXPECTS(thread->state() != ThreadState::kRunning);
  InvalidateRoundGate();
  // Settle catch-up before run-queue membership changes: the schedulers' bulk
  // OnTicksSkipped assumes a stable thread set across the skipped span.
  ResumeTicking();
  Core& old_core = CoreAt(from);
  old_core.scheduler->RemoveThread(thread);
  if (old_core.last_ran == thread) {
    old_core.last_ran = nullptr;  // Next pick on the old core is a context switch.
  }
  thread->set_cpu(core);
  CoreAt(core).scheduler->AddThread(thread);
  ++migrations_;
  if (migration_hook_) {
    migration_hook_(thread, from, core);
  }
  sim_.trace().Record(sim_.Now(), TraceKind::kMigrate, thread->id(), from, core);
}

void Machine::Attach(BoundedBuffer* queue) {
  RR_EXPECTS(queue != nullptr);
  queue->SetWakeFn([this](ThreadId id) { Wake(id); });
}

void Machine::Attach(SimMutex* mutex) {
  RR_EXPECTS(mutex != nullptr);
  mutex->SetWakeFn([this](ThreadId id) { Wake(id); });
}

void Machine::Attach(TtyPort* tty) {
  RR_EXPECTS(tty != nullptr);
  tty->SetWakeFn([this](ThreadId id) { Wake(id); });
}

void Machine::Wake(ThreadId thread_id) {
  if (slabs_ != nullptr) {
    // Registry slots are never released, so slot == id: the state column answers
    // the spurious-wake test without dragging the cold thread record into cache.
    // (Buffers wake every waiter on each operation, so most wakes are spurious.)
    const auto slot = static_cast<int32_t>(thread_id);
    if (slot < 0 || slot >= slabs_->slot_count() ||
        slabs_->state(slot) != ThreadState::kBlocked) {
      return;  // Spurious or stale wake.
    }
  }
  SimThread* thread = registry_.Find(thread_id);
  if (thread == nullptr || thread->state() != ThreadState::kBlocked) {
    return;  // Spurious or stale wake.
  }
  RR_EXPECTS(!in_round_);  // Gated rounds run only wake-free (round-local) work.
  InvalidateRoundGate();
  ResumeTicking();  // Before the transition: catch-up must see the idle-span state.
  thread->set_state(ThreadState::kRunnable);
  thread->set_last_wake_time(sim_.Now());
  thread->work().OnWake(sim_.Now());
  CoreAt(thread->cpu()).scheduler->OnWake(thread, sim_.Now());
  sim_.trace().Record(sim_.Now(), TraceKind::kWake, thread_id);
}

void Machine::SleepUntil(SimThread* thread, TimePoint wake_at) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(wake_at >= sim_.Now());
  RR_EXPECTS(!in_round_);  // In-round throttle sleeps are staged (see ApplyRunResult).
  InvalidateRoundGate();
  // Only a running/runnable thread can be put to sleep, so the machine cannot be
  // suspended here through the dispatch path — but a direct caller (tests) could add
  // a sleeper mid-suspension, which must re-arm the horizon. Resuming is the simple
  // exact answer: the next round re-suspends with the new sleeper accounted.
  ResumeTicking();
  thread->set_state(ThreadState::kSleeping);
  const uint64_t gen = next_generation_++;
  SetSleepGen(thread->id(), gen);
  PushSleeper(SleepEntry{wake_at, gen, thread->id()});
  CoreAt(thread->cpu()).scheduler->OnBlock(thread, sim_.Now());
}

void Machine::CancelSleep(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  if (thread->state() != ThreadState::kSleeping) {
    return;
  }
  RR_EXPECTS(!in_round_);
  InvalidateRoundGate();
  ResumeTicking();
  ClearSleepGen(thread->id());  // The heap entry becomes stale.
  thread->set_state(ThreadState::kRunnable);
  thread->set_last_wake_time(sim_.Now());
  thread->work().OnWake(sim_.Now());
  CoreAt(thread->cpu()).scheduler->OnWake(thread, sim_.Now());
  sim_.trace().Record(sim_.Now(), TraceKind::kWake, thread->id(), /*arg0=*/-2);
}

void Machine::StealCycles(CpuUse category, Cycles cycles, CpuId core) {
  RR_EXPECTS(cycles >= 0);
  RR_EXPECTS(!in_round_);  // Overhead charges land between rounds (timer, controller).
  if (config_.charge_overheads) {
    // The backlog must be absorbed by upcoming ticks, so a suspended machine resumes;
    // without backlog the charge is purely observational and needs no clock.
    ResumeTicking();
  }
  sim_.cpu(core).Charge(category, cycles);
  if (config_.charge_overheads) {
    CoreAt(core).stolen_backlog += cycles;
  }
}

void Machine::RunFor(Duration d) {
  sim_.RunFor(d);
  if (suspended_) {
    // Settle the elided span so post-run introspection (ticks, dispatches, idle
    // charges) reads as if every tick ran. A tick exactly at the end time would have
    // fired within RunUntil, hence inclusive.
    AccountSkippedTicks(sim_.Now(), /*inclusive=*/true);
  }
}

void Machine::SyncSkippedTicks(TimePoint now) {
  if (suspended_) {
    // Exclusive: an observer running at `now` precedes this timestamp's tick (ticks
    // are pushed one interval ahead, so they sort after any same-time event that was
    // scheduled earlier), and must not see its effects yet.
    AccountSkippedTicks(now, /*inclusive=*/false);
  }
}

void Machine::EpochFence(TimePoint now) {
  // Cross-machine mutation is only legal between dispatch rounds; a fence from
  // inside a fanned-out round would let another machine observe (or mutate) state
  // mid-round, breaking the share-nothing round contract.
  RR_EXPECTS(!in_round_);
  SyncSkippedTicks(now);
  ++epoch_fences_;
}

int64_t Machine::dispatches() const {
  int64_t total = 0;
  for (const Core& c : cores_) {
    total += c.dispatches;
  }
  return total;
}

int64_t Machine::context_switches() const {
  int64_t total = 0;
  for (const Core& c : cores_) {
    total += c.context_switches;
  }
  return total;
}

void Machine::PushSleeper(const SleepEntry& entry) {
  const int64_t interval = config_.dispatch_interval.nanos();
  const int64_t due_tick = entry.wake_at.nanos() / interval;
  if (sleep_wheel_cursor_ == kNoTick) {
    sleep_wheel_.resize(static_cast<size_t>(kSleepWheelTicks));
    sleep_wheel_cursor_ = sim_.Now().nanos() / interval;
  }
  // The cursor never exceeds floor(now / interval) and wake_at >= now, so due_tick
  // is always inside or past the window — never behind it.
  if (due_tick - sleep_wheel_cursor_ < kSleepWheelTicks) {
    sleep_wheel_[static_cast<size_t>(due_tick % kSleepWheelTicks)].push_back(entry);
    ++sleep_wheel_count_;
  } else {
    sleepers_.push(entry);
  }
}

void Machine::WakeExpiredSleepers(TimePoint now) {
  // The global timer interrupt is serviced by the boot core; its cost lands there.
  Cpu& cpu = sim_.cpu(0);
  bool any_expired = false;
  // Gather this tick's due sleepers from both levels, then sort the batch into the
  // (wake_at, generation) order the single heap used to pop in — stale entries are
  // filtered below and have no effects, so only the live ordering matters.
  wake_batch_.clear();
  if (sleep_wheel_count_ > 0) {
    const int64_t interval = config_.dispatch_interval.nanos();
    const int64_t now_tick = now.nanos() / interval;
    const int64_t last =
        std::min(now_tick, sleep_wheel_cursor_ + kSleepWheelTicks - 1);
    for (int64_t t = sleep_wheel_cursor_; t <= last; ++t) {
      auto& bucket = sleep_wheel_[static_cast<size_t>(t % kSleepWheelTicks)];
      if (bucket.empty()) {
        continue;
      }
      if (t < now_tick) {  // Whole bucket is due.
        wake_batch_.insert(wake_batch_.end(), bucket.begin(), bucket.end());
        sleep_wheel_count_ -= static_cast<int64_t>(bucket.size());
        bucket.clear();
      } else {  // The current tick's bucket: only entries at or before `now`.
        for (size_t i = 0; i < bucket.size();) {
          if (bucket[i].wake_at <= now) {
            wake_batch_.push_back(bucket[i]);
            bucket[i] = bucket.back();
            bucket.pop_back();
            --sleep_wheel_count_;
          } else {
            ++i;
          }
        }
      }
    }
  }
  if (sleep_wheel_cursor_ != kNoTick) {
    sleep_wheel_cursor_ =
        std::max(sleep_wheel_cursor_, now.nanos() / config_.dispatch_interval.nanos());
  }
  while (!sleepers_.empty() && sleepers_.top().wake_at <= now) {
    wake_batch_.push_back(sleepers_.top());
    sleepers_.pop();
  }
  std::sort(wake_batch_.begin(), wake_batch_.end(),
            [](const SleepEntry& a, const SleepEntry& b) {
              if (a.wake_at != b.wake_at) {
                return a.wake_at < b.wake_at;
              }
              return a.generation < b.generation;
            });
  for (const SleepEntry& entry : wake_batch_) {
    if (SleepGenOf(entry.thread) != entry.generation) {
      continue;  // Stale entry: thread was re-slept or woken through another path.
    }
    ClearSleepGen(entry.thread);
    if (slabs_ != nullptr) {
      // Slot == id (registry slots are never released): answer the not-sleeping
      // test from the state column before touching the thread record.
      const auto slot = static_cast<int32_t>(entry.thread);
      if (slot < 0 || slot >= slabs_->slot_count() ||
          slabs_->state(slot) != ThreadState::kSleeping) {
        continue;
      }
    }
    SimThread* thread = registry_.Find(entry.thread);
    if (thread == nullptr || thread->state() != ThreadState::kSleeping) {
      continue;
    }
    any_expired = true;
    if (config_.charge_overheads) {
      StealCycles(CpuUse::kTimer, cpu.config().timer_expired_cycles);
    }
    thread->set_state(ThreadState::kRunnable);
    thread->set_last_wake_time(now);
    thread->work().OnWake(now);
    CoreAt(thread->cpu()).scheduler->OnWake(thread, now);
    sim_.trace().Record(now, TraceKind::kWake, entry.thread, /*arg0=*/-1);
  }
  // The cached next-expiry means an interrupt that finds nothing expired does near-zero
  // work ("this routine typically runs in constant time").
  if (!any_expired && config_.charge_overheads) {
    StealCycles(CpuUse::kTimer, cpu.config().timer_idle_cycles);
  }
  if (any_expired) {
    InvalidateRoundGate();  // The runnable set grew; re-evaluate before forking.
  }
}

void Machine::Tick(CpuId core_id) { TickBody(core_id, sim_.Now()); }

void Machine::TickBody(CpuId core_id, TimePoint now) {
  Core& core = CoreAt(core_id);
  ++core.ticks;
  core.round_had_pick = false;
  accounted_through_ = now;

  if (core_id == 0) {
    WakeExpiredSleepers(now);
  }
  TickRest(core_id, now);
}

void Machine::TickRest(CpuId core_id, TimePoint now) {
  Core& core = CoreAt(core_id);
  core.scheduler->OnTick(now);

  // Capacity of this tick, minus overhead backlog carried over (controller runs,
  // timer/dispatch costs that exceeded a previous tick).
  Cycles cycles_left = cycles_per_tick_;
  const Cycles absorbed = std::min(core.stolen_backlog, cycles_left);
  cycles_left -= absorbed;
  core.stolen_backlog -= absorbed;

  DispatchLoop(core, core_id, now, cycles_left);

  if (checker_ != nullptr) {
    checker_->OnTickComplete(*this, core_id, now);
  }
  // The last core of the round decides whether the machine goes idle; everyone else
  // re-arms its clock (the suspension path cancels those if the round does suspend).
  if (core_id == num_cpus() - 1 && ShouldSuspend()) {
    Suspend();
    return;
  }
  core.next_tick_event =
      sim_.ScheduleAfter(config_.dispatch_interval, TickCallback(core_id));
}

bool Machine::RoundIsLocal(TimePoint now) {
  if (gate_cached_epoch_ == gate_epoch_) {
    return gate_cached_;
  }
  // Every runnable thread must be able to absorb a full tick with no side effects
  // outside its own record (WorkModel::RoundLocalCycles' contract). Sweeping the
  // state column (slot order) keeps the scan cache-friendly; the verdict is cached
  // until the runnable set changes, so steady farm phases pay it once.
  bool local = true;
  if (UseColumns()) {
    const int32_t n = slabs_->slot_count();
    for (int32_t s = 0; s < n && local; ++s) {
      if (slabs_->state(s) == ThreadState::kRunnable) {
        SimThread* t = slabs_->thread_at(s);
        local = t->work().RoundLocalCycles(now) >= cycles_per_tick_;
      }
    }
  } else {
    for (SimThread* t : registry_.All()) {
      if (!t->HasExited() && t->state() == ThreadState::kRunnable &&
          t->work().RoundLocalCycles(now) < cycles_per_tick_) {
        local = false;
        break;
      }
    }
  }
  gate_cached_epoch_ = gate_epoch_;
  gate_cached_ = local;
  return local;
}

void Machine::RecordPlanFailure() {
  plan_fail_valid_ = true;
  plan_fail_gate_epoch_ = gate_epoch_;
  plan_fail_queues_.clear();
  // Everything consulted so far: queues already in the claim table, plus the queues
  // the failing model listed (for a data-limited plan, the input whose refill would
  // make the plan succeed). A queue can appear in both; the duplicate check is
  // harmless and the vector stays small.
  for (const QueueClaim& claim : round_claims_) {
    plan_fail_queues_.emplace_back(claim.queue, claim.queue->change_epoch());
  }
  for (const RoundQueueOp& op : plan_ops_) {
    if (op.queue != nullptr) {
      plan_fail_queues_.emplace_back(op.queue, op.queue->change_epoch());
    }
  }
}

bool Machine::RoundPlanIsFeasible(TimePoint now) {
  // Fail-fast: the last failure stands while the runnable set and every consulted
  // queue's change epoch are unchanged — nothing that could flip the verdict has
  // moved. (A plan's byte bounds also depend on `now`, so a stale failure can in
  // principle outlive its cause on a machine whose queues go quiet; that only costs
  // parallelism — the sequential path is always correct — and any traffic on a
  // consulted queue re-opens the evaluation immediately.)
  if (plan_fail_valid_ && plan_fail_gate_epoch_ == gate_epoch_) {
    bool unchanged = true;
    for (const auto& [queue, epoch] : plan_fail_queues_) {
      if (queue->change_epoch() != epoch) {
        unchanged = false;
        break;
      }
    }
    if (unchanged) {
      return false;
    }
  }
  plan_fail_valid_ = false;
  round_claims_.clear();
  round_staged_.clear();
  const uint64_t stamp = ++plan_stamp_;

  // Classification sweep: every runnable thread must be a hog (full-tick
  // RoundLocalCycles) or produce a queue plan under its scheduler's cycle bound.
  // Claims aggregate per queue in sweep order; the single-pusher/single-popper rule
  // keeps each side-band FIFO's mid-round order equal to the sequential engine's.
  auto consider = [&](SimThread* t) -> bool {
    WorkModel& work = t->work();
    if (work.RoundLocalCycles(now) >= cycles_per_tick_) {
      return true;  // Hog: no queue ops, nothing to stage.
    }
    plan_ops_.clear();
    const Cycles bound = CoreAt(t->cpu()).scheduler->RoundCycleBound(t, cycles_per_tick_);
    if (bound <= 0 || !work.PlanRoundQueueOps(now, bound, &plan_ops_)) {
      RecordPlanFailure();
      return false;
    }
    for (const RoundQueueOp& op : plan_ops_) {
      RR_CHECK(op.queue != nullptr && op.push_bytes >= 0 && op.pop_bytes >= 0);
      if (op.queue->PlanMark(stamp, static_cast<int32_t>(round_claims_.size()))) {
        round_claims_.push_back(QueueClaim{op.queue, {}, {}, kInvalidThreadId,
                                           kInvalidThreadId});
      }
      QueueClaim& claim = round_claims_[static_cast<size_t>(op.queue->plan_slot())];
      if (op.push_bytes > 0) {
        if (claim.pusher != kInvalidThreadId && claim.pusher != t->id()) {
          RecordPlanFailure();
          return false;  // Second pusher: staged FIFO order would be ambiguous.
        }
        claim.pusher = t->id();
        claim.push.budget_bytes += op.push_bytes;
      }
      if (op.pop_bytes > 0) {
        if (claim.popper != kInvalidThreadId && claim.popper != t->id()) {
          RecordPlanFailure();
          return false;
        }
        claim.popper = t->id();
        claim.pop.budget_bytes += op.pop_bytes;
      }
    }
    round_staged_.emplace_back(t->cpu(), &work);
    return true;
  };

  bool ok = true;
  if (UseColumns()) {
    const int32_t n = slabs_->slot_count();
    for (int32_t s = 0; s < n && ok; ++s) {
      if (slabs_->state(s) == ThreadState::kRunnable) {
        ok = consider(slabs_->thread_at(s));
      }
    }
  } else {
    for (SimThread* t : registry_.All()) {
      if (!t->HasExited() && t->state() == ThreadState::kRunnable) {
        if (!consider(t)) {
          ok = false;
          break;
        }
      }
    }
  }
  if (!ok) {
    return false;
  }

  // Feasibility: with at most one pusher and one popper per queue, total pushes
  // fitting the free space and total pops covered by the round-start fill mean no
  // interleaving — including the sequential one — can reach a full or empty edge:
  // every op this round succeeds with its full request, and no wake can fire.
  // A parked waiter would need exactly such a wake, so any waiter fails the gate.
  for (const QueueClaim& claim : round_claims_) {
    const BoundedBuffer* q = claim.queue;
    if (!q->waiting_producers().empty() || !q->waiting_consumers().empty() ||
        q->fill() + claim.push.budget_bytes > q->capacity() ||
        claim.pop.budget_bytes > q->fill()) {
      plan_ops_.clear();  // Claims alone key the failure.
      RecordPlanFailure();
      return false;
    }
  }
  return true;
}

void Machine::Emit(CpuId core, TimePoint t, TraceKind kind, ThreadId thread, int64_t arg0,
                   int64_t arg1) {
  if (in_round_) {
    if (sim_.trace().enabled()) {
      lanes_[static_cast<size_t>(core)].events.push_back(
          TraceEvent{t, kind, thread, arg0, arg1});
    }
    return;
  }
  sim_.trace().Record(t, kind, thread, arg0, arg1);
}

void Machine::RoundTick() {
  const TimePoint now = sim_.Now();
  const int n = num_cpus();
  // Claim the round: the sibling cores' tick events are contiguous at the queue
  // head whenever no other event shares this timestamp (same-time events scheduled
  // earlier carry smaller ids and fired before core 0's tick; events created from
  // here on carry larger ids). Each successful pop consumes the event without
  // running its callback — this round runs the tick instead.
  int popped = 0;  // Cores 1..popped had their tick events claimed.
  while (popped + 1 < n && sim_.PopExpected(CoreAt(popped + 1).next_tick_event, now)) {
    ++popped;
  }
  if (popped + 1 < n || checker_ != nullptr) {
    // Partial round (an interleaved same-timestamp event) or an installed invariant
    // oracle: run the claimed ticks inline, in core order — the exact interleave the
    // one-queue engine produces. Unclaimed cores' events fire on their own.
    for (CpuId c = 0; c <= popped; ++c) {
      TickBody(c, now);
    }
    return;
  }

  // Whole round in hand. The shared prologue is bit-identical to each core running
  // its own (nothing reads the counters or accounted_through_ mid-round), and the
  // timer service must precede the gate: expired sleepers grow the runnable set.
  for (CpuId c = 0; c < n; ++c) {
    Core& core = CoreAt(c);
    ++core.ticks;
    core.round_had_pick = false;
  }
  accounted_through_ = now;
  WakeExpiredSleepers(now);

  bool staked = false;
  if (!RoundIsLocal(now)) {
    // Not all hogs: try the mailbox gate — pre-claimed queue stakes extend the
    // parallel path to pipeline- and farm-shaped rounds.
    staked = RoundPlanIsFeasible(now);
    if (!staked) {
      for (CpuId c = 0; c < n; ++c) {
        TickRest(c, now);
      }
      return;
    }
  }

  if (staked) {
    // Install the pre-claimed stakes (the claim table is final — stake pointers
    // stay put) and switch the planned models' cross-thread side effects (side-band
    // FIFO appends, shared sample sets) into staging mode, core-major flush order.
    for (QueueClaim& claim : round_claims_) {
      claim.queue->InstallRoundStakes(
          claim.pusher != kInvalidThreadId ? &claim.push : nullptr,
          claim.popper != kInvalidThreadId ? &claim.pop : nullptr);
    }
    std::stable_sort(round_staged_.begin(), round_staged_.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [core, model] : round_staged_) {
      model->BeginRoundStaging();
    }
  }

  // Parallel epoch. The schedulers' tick work stays on the coordinator — it is the
  // one in-round path with cross-core effects (the replenisher's deadline-miss hook
  // records to the trace and adjusts controller state) — with its records staged
  // into each core's lane, exactly where the sequential engine would emit them.
  TraceRecorder& trace = sim_.trace();
  for (CpuId c = 0; c < n; ++c) {
    Lane& lane = lanes_[static_cast<size_t>(c)];
    lane.events.clear();
    lane.sleeps.clear();
    trace.SetStage(&lane.events);
    CoreAt(c).scheduler->OnTick(now);
  }
  trace.SetStage(nullptr);

  in_round_ = true;
  if (slabs_ != nullptr) {
    slabs_->set_shared_mode(true);  // Runnable-count bumps go RMW for the round.
  }
  engine_->RunRound(n, [this, now](int c) { RoundDispatch(static_cast<CpuId>(c), now); });
  if (slabs_ != nullptr) {
    slabs_->set_shared_mode(false);
  }
  in_round_ = false;
  ++parallel_rounds_;

  // Epoch barrier: drain the per-core lanes in ascending core order. The merged
  // record stream and the throttle-sleeps' generation order reproduce the sequential
  // engine's exactly (core 0's whole tick before core 1's).
  for (CpuId c = 0; c < n; ++c) {
    Lane& lane = lanes_[static_cast<size_t>(c)];
    for (const TraceEvent& event : lane.events) {
      trace.RecordEvent(event);
    }
    for (const Lane::StagedSleep& staged : lane.sleeps) {
      const uint64_t gen = next_generation_++;
      SetSleepGen(staged.thread->id(), gen);
      PushSleeper(SleepEntry{staged.wake_at, gen, staged.thread->id()});
    }
  }

  if (staked) {
    // Merge the round's queue effects: per-queue fill deltas (flowing through the
    // registry's fill aggregate), totals, and change-epoch bumps settle to exactly
    // the sequential end-of-round state; staged side-band effects flush in core
    // order. Nothing observes queue state mid-round (the controller, the cluster
    // fence, and the checker all run between rounds), so settle order is free.
    ++mailbox_rounds_;
    for (QueueClaim& claim : round_claims_) {
      claim.queue->SettleRoundStakes();
    }
    for (const auto& [core, model] : round_staged_) {
      model->FlushRoundEffects();
    }
  }

  // Re-arm / suspend in the sequential engine's event-id order: cores 0..n-2 re-arm
  // unconditionally; the last core decides idleness (Suspend cancels the fresh
  // re-arms and arms the horizon, exactly as it would have sequentially).
  for (CpuId c = 0; c < n - 1; ++c) {
    CoreAt(c).next_tick_event =
        sim_.ScheduleAfter(config_.dispatch_interval, TickCallback(c));
  }
  if (ShouldSuspend()) {
    Suspend();
    return;
  }
  CoreAt(n - 1).next_tick_event =
      sim_.ScheduleAfter(config_.dispatch_interval, TickCallback(n - 1));
}

void Machine::RoundDispatch(CpuId core_id, TimePoint now) {
  Core& core = CoreAt(core_id);
  Cycles cycles_left = cycles_per_tick_;
  const Cycles absorbed = std::min(core.stolen_backlog, cycles_left);
  cycles_left -= absorbed;
  core.stolen_backlog -= absorbed;
  DispatchLoop(core, core_id, now, cycles_left);
}

bool Machine::ShouldSuspend() const {
  if (!config_.idle_fast_forward || !started_) {
    return false;
  }
  for (const Core& c : cores_) {
    // Any dispatch this round, or pending overhead backlog, keeps the clocks running:
    // the cheap per-core flags gate the registry sweep below.
    if (c.round_had_pick || c.stolen_backlog > 0) {
      return false;
    }
  }
  // A runnable thread — including a reserved one waiting out an exhausted budget,
  // whose replenishment at a period boundary must be observed on time — means
  // upcoming ticks are not no-ops. The slabs maintain the runnable census
  // incrementally, collapsing the per-round registry sweep to one comparison.
  if (UseColumns()) {
    return slabs_->runnable_count() == 0;
  }
  for (const SimThread* t : registry_.All()) {
    if (!t->HasExited() && t->state() == ThreadState::kRunnable) {
      return false;
    }
  }
  return true;
}

void Machine::Suspend() {
  suspended_ = true;
  ++idle_suspensions_;
  for (Core& core : cores_) {
    if (core.next_tick_event != kInvalidEventId) {
      sim_.Cancel(core.next_tick_event);  // Bounded: Cancel rejects non-pending ids.
      core.next_tick_event = kInvalidEventId;
    }
  }
  ArmHorizon();
}

void Machine::ArmHorizon() {
  // Drop stale far-heap entries so the horizon tracks the earliest *live* sleeper.
  while (!sleepers_.empty()) {
    const SleepEntry& top = sleepers_.top();
    if (SleepGenOf(top.thread) == top.generation) {
      break;
    }
    sleepers_.pop();
  }
  // Earliest live wake time across both sleeper levels. The wheel scan is bounded
  // by the window size and only runs at suspension, never on the tick path.
  bool have_wake = false;
  TimePoint earliest_wake;
  if (!sleepers_.empty()) {
    have_wake = true;
    earliest_wake = sleepers_.top().wake_at;
  }
  if (sleep_wheel_count_ > 0) {
    for (const auto& bucket : sleep_wheel_) {
      for (const SleepEntry& entry : bucket) {
        if (SleepGenOf(entry.thread) != entry.generation) {
          continue;
        }
        if (!have_wake || entry.wake_at < earliest_wake) {
          have_wake = true;
          earliest_wake = entry.wake_at;
        }
      }
    }
  }
  if (!have_wake) {
    return;  // Fully quiescent: only an external stimulus can resume the machine.
  }
  // The tick that services a sleeper is the first grid point at or after its wake
  // time — exactly when a continuously ticking core 0 would have woken it. The grid
  // is anchored at the machine's Start time (accounted_through_ is always on it),
  // not at simulator time zero: a machine started off-grid still wakes on its own
  // tick boundaries.
  const int64_t interval = config_.dispatch_interval.nanos();
  const int64_t after = earliest_wake.nanos() - accounted_through_.nanos();
  // The dispatch path cannot leave a due sleeper behind (the round that slept it had
  // a pick, and its core-0 tick woke anything already expired), but SleepUntil's
  // contract allows wake_at == Now(): a sleeper due at or before the last tick is
  // serviced at the next one, exactly as on an eagerly ticking machine.
  const int64_t ticks_ahead = std::max<int64_t>(1, (after + interval - 1) / interval);
  const TimePoint horizon = accounted_through_ + config_.dispatch_interval * ticks_ahead;
  horizon_event_ = sim_.Resched(horizon_event_, horizon, [this] {
    horizon_event_ = kInvalidEventId;
    ResumeTicking();
  });
}

void Machine::AccountIdleTick(CpuId core_id) {
  // Mirrors Tick() for a tick that provably dispatches nothing: same counter bumps,
  // same charge order (timer interrupt, backlog absorption, dispatcher cost, idle).
  Core& core = CoreAt(core_id);
  Cpu& cpu = sim_.cpu(core_id);
  ++core.ticks;
  if (core_id == 0 && config_.charge_overheads) {
    cpu.Charge(CpuUse::kTimer, cpu.config().timer_idle_cycles);
    core.stolen_backlog += cpu.config().timer_idle_cycles;
  }
  Cycles cycles_left = cycles_per_tick_;
  const Cycles absorbed = std::min(core.stolen_backlog, cycles_left);
  cycles_left -= absorbed;
  core.stolen_backlog -= absorbed;
  ++core.dispatches;
  if (config_.charge_overheads) {
    const Cycles dispatch_cost = cpu.DispatchCostAt(dispatch_hz());
    cpu.Charge(CpuUse::kDispatch, dispatch_cost);
    cycles_left -= std::min(dispatch_cost, cycles_left);
  }
  if (cycles_left > 0) {
    cpu.Charge(CpuUse::kIdle, cycles_left);
  }
}

void Machine::AccountSkippedTicks(TimePoint upto, bool inclusive) {
  const Duration interval = config_.dispatch_interval;
  int64_t count = (upto - accounted_through_) / interval;
  if (count > 0 && !inclusive && accounted_through_ + interval * count == upto) {
    --count;  // A tick exactly at `upto` has not run yet from the observer's view.
  }
  if (count <= 0) {
    return;
  }
  const TimePoint last = accounted_through_ + interval * count;
  // Every skipped tick is identical (the suspension invariant guarantees zero
  // backlog, and the boot core's timer-idle charge is absorbed within its own tick
  // whenever it fits the tick capacity), so the span settles with O(cores)
  // multiplications. The degenerate sub-timer-cost tick capacity falls back to a
  // literal per-tick replay, where backlog genuinely carries across ticks.
  const bool steady = !config_.charge_overheads ||
                      sim_.cpu(0).config().timer_idle_cycles <= cycles_per_tick_;
  for (CpuId c = 0; c < num_cpus(); ++c) {
    if (!steady) {
      for (int64_t i = 0; i < count; ++i) {
        AccountIdleTick(c);
      }
    } else {
      Core& core = CoreAt(c);
      Cpu& cpu = sim_.cpu(c);
      core.ticks += count;
      core.dispatches += count;
      Cycles cycles_left = cycles_per_tick_;  // Per-tick remainder after overheads.
      if (config_.charge_overheads) {
        if (c == 0) {
          const Cycles timer = cpu.config().timer_idle_cycles;
          cpu.Charge(CpuUse::kTimer, timer * count);
          cycles_left -= timer;  // Absorbed from the same tick's capacity.
        }
        const Cycles dispatch_cost = cpu.DispatchCostAt(dispatch_hz());
        cpu.Charge(CpuUse::kDispatch, dispatch_cost * count);
        cycles_left -= std::min(dispatch_cost, cycles_left);
      }
      if (cycles_left > 0) {
        cpu.Charge(CpuUse::kIdle, cycles_left * count);
      }
    }
    // Bulk scheduler catch-up: replenishments (and any per-tick bookkeeping) the
    // skipped ticks would have applied, collapsed into one call at the final grid.
    CoreAt(c).scheduler->OnTicksSkipped(count, last);
  }
  accounted_through_ = last;
}

void Machine::ResumeTicking() {
  if (!suspended_) {
    return;
  }
  suspended_ = false;
  if (horizon_event_ != kInvalidEventId) {
    sim_.Cancel(horizon_event_);
    horizon_event_ = kInvalidEventId;
  }
  // Ticks strictly before now already "happened" (they were idle by construction);
  // the clocks restart at the next grid point — which is `now` itself when the
  // trigger lands exactly on the grid, matching a tick event that would have been
  // scheduled one interval earlier and popped after the currently running event.
  AccountSkippedTicks(sim_.Now(), /*inclusive=*/false);
  const TimePoint first_tick = accounted_through_ + config_.dispatch_interval;
  for (CpuId c = 0; c < num_cpus(); ++c) {
    CoreAt(c).next_tick_event = sim_.ScheduleAt(first_tick, TickCallback(c));
  }
}

void Machine::DispatchLoop(Core& core, CpuId core_id, TimePoint now, Cycles cycles_left) {
  Cpu& cpu = sim_.cpu(core_id);
  const Cycles dispatch_cost =
      config_.charge_overheads ? cpu.DispatchCostAt(dispatch_hz()) : 0;

  while (cycles_left > 0) {
    // schedule() runs at every dispatch point.
    ++core.dispatches;
    if (config_.charge_overheads) {
      cpu.Charge(CpuUse::kDispatch, dispatch_cost);
      cycles_left -= std::min(dispatch_cost, cycles_left);
      if (cycles_left == 0) {
        break;
      }
    }

    SimThread* pick = core.scheduler->PickNext(now);
    if (pick == nullptr) {
      cpu.Charge(CpuUse::kIdle, cycles_left);
      return;
    }
    core.round_had_pick = true;
    if (checker_ != nullptr) {
      checker_->OnPicked(*this, core_id, pick, now);
    }

    if (pick != core.last_ran) {
      ++core.context_switches;
      if (config_.charge_overheads) {
        const Cycles cs = cpu.config().context_switch_cycles;
        cpu.Charge(CpuUse::kDispatch, cs);
        cycles_left -= std::min(cs, cycles_left);
        if (cycles_left == 0) {
          core.last_ran = pick;
          return;
        }
      }
      core.last_ran = pick;
    }

    const Cycles grant = core.scheduler->MaxGrant(pick, cycles_left);
    RR_CHECK(grant > 0);

    pick->set_state(ThreadState::kRunning);
    const RunResult result = pick->work().Run(now, grant);
    RR_CHECK(result.used >= 0 && result.used <= grant);
    // A work model that consumes nothing must not claim to still be runnable, or the
    // dispatch loop would spin forever.
    RR_CHECK(result.used > 0 || result.next != RunResult::Next::kRunnable);

    pick->OnRan(result.used);
    cpu.Charge(CpuUse::kUser, result.used);
    cycles_left -= result.used;
    core.scheduler->OnRan(pick, result.used, now);
    Emit(core_id, now, TraceKind::kDispatch, pick->id(), result.used);

    ApplyRunResult(core, core_id, pick, result, now);
  }
}

void Machine::ApplyRunResult(Core& core, CpuId core_id, SimThread* thread,
                             const RunResult& result, TimePoint now) {
  // Inside a parallel round the independence gate guarantees every slice stays
  // runnable (at most throttling afterwards) — anything else would be a cross-core
  // effect emitted from a worker thread.
  RR_CHECK(!in_round_ || result.next == RunResult::Next::kRunnable);
  switch (result.next) {
    case RunResult::Next::kRunnable:
      thread->set_state(ThreadState::kRunnable);
      break;
    case RunResult::Next::kBlocked:
      InvalidateRoundGate();
      thread->set_state(ThreadState::kBlocked);
      thread->OnBurstEnd();  // Ran-before-blocking measurement for interactive jobs.
      core.scheduler->OnBlock(thread, now);
      Emit(core_id, now, TraceKind::kBlock, thread->id(), result.block_tag);
      return;  // Throttling is irrelevant once off the run queue.
    case RunResult::Next::kSleeping:
      thread->set_state(ThreadState::kRunnable);  // SleepUntil flips it to kSleeping.
      thread->OnBurstEnd();
      SleepUntil(thread, std::max(result.wake_at, now));  // Notifies OnBlock itself.
      return;
    case RunResult::Next::kExited:
      InvalidateRoundGate();
      thread->set_state(ThreadState::kExited);
      core.scheduler->RemoveThread(thread);
      Emit(core_id, now, TraceKind::kExit, thread->id());
      if (core.last_ran == thread) {
        core.last_ran = nullptr;
      }
      return;
  }

  // Budget enforcement: "when a thread has used its allocation for its period, it is
  // put to sleep until its next period begins."
  if (const auto throttle_until = core.scheduler->ThrottleUntil(thread, now)) {
    Emit(core_id, now, TraceKind::kBudgetExhausted, thread->id(),
         thread->cycles_this_period());
    const TimePoint wake_at = std::max(*throttle_until, now);
    if (in_round_) {
      // Staged sleep: the state flip and run-queue exit are core-local and happen
      // now; the wheel insertion and generation assignment are cross-core state and
      // happen at the barrier, in core order — the order the sequential engine
      // issues generations in. (SleepUntil's ResumeTicking is a no-op here: the
      // machine cannot be suspended while a round is dispatching.)
      thread->set_state(ThreadState::kSleeping);
      core.scheduler->OnBlock(thread, now);
      lanes_[static_cast<size_t>(core_id)].sleeps.push_back(
          Lane::StagedSleep{thread, wake_at});
      return;
    }
    SleepUntil(thread, wake_at);  // Notifies OnBlock itself.
  }
}

void Machine::Rebalance() {
  // Deterministic greedy pass: while some core's reserved proportion exceeds the
  // over-subscription threshold, move its smallest reservation to the least-loaded
  // core — but only while each move strictly narrows the machine's load spread, so
  // the pass terminates and threads cannot ping-pong.
  const int n = num_cpus();
  for (int moves = 0; moves < 2 * n; ++moves) {
    CpuId hi = 0;
    CpuId lo = 0;
    double hi_load = -1.0;
    double lo_load = 0.0;
    for (CpuId c = 0; c < n; ++c) {
      const double load = ReservedFractionOn(c);
      if (load > hi_load + 1e-12) {
        hi = c;
        hi_load = load;
      }
      if (c == 0 || load < lo_load - 1e-12) {
        lo = c;
        lo_load = load;
      }
    }
    if (hi_load <= config_.rebalance_threshold || hi == lo) {
      break;
    }
    // Smallest positive reservation on the over-subscribed core (tie: lowest id).
    // The rebalancer selects and moves slots (slot order == id order), reading the
    // cpu/state/policy/ppt columns; only the chosen victim's record is touched.
    SimThread* victim = nullptr;
    double victim_fraction = 0.0;
    if (UseColumns()) {
      const int32_t slots = slabs_->slot_count();
      for (int32_t s = 0; s < slots; ++s) {
        const ThreadState state = slabs_->state(s);
        if (slabs_->cpu(s) != hi || state == ThreadState::kExited ||
            state == ThreadState::kRunning ||
            slabs_->policy(s) != SchedPolicy::kReservation) {
          continue;
        }
        const double f = Proportion::Ppt(slabs_->granted_ppt(s)).ToFraction();
        if (f <= 0.0) {
          continue;
        }
        if (victim == nullptr || f < victim_fraction - 1e-12) {
          victim = slabs_->thread_at(s);
          victim_fraction = f;
        }
      }
    } else {
      for (SimThread* t : registry_.All()) {
        if (t->cpu() != hi || t->HasExited() || t->policy() != SchedPolicy::kReservation ||
            t->state() == ThreadState::kRunning) {
          continue;
        }
        const double f = t->proportion().ToFraction();
        if (f <= 0.0) {
          continue;
        }
        if (victim == nullptr || f < victim_fraction - 1e-12) {
          victim = t;
          victim_fraction = f;
        }
      }
    }
    // Accept the move only if it strictly narrows the spread AND leaves the
    // destination under the over-subscription threshold — shifting a reservation
    // onto a nearly-full core would break the headroom admission control
    // guaranteed there.
    if (victim == nullptr || lo_load + victim_fraction >= hi_load - 1e-12 ||
        lo_load + victim_fraction > config_.rebalance_threshold + 1e-12) {
      break;
    }
    Migrate(victim, lo);
  }
  sim_.ScheduleAfter(config_.rebalance_interval, [this] { Rebalance(); });
}

}  // namespace realrate
