// Machine: the simulated kernel's dispatch engine, generalized to N CPUs. Each core
// owns a dispatch clock (the paper's 1 ms dispatch interval), a scheduler instance
// (its run queue), and its own overhead/backlog accounting; the Machine additionally
// owns the global timer subsystem (sleep list, serviced by core 0 — the boot core),
// the least-loaded placement policy for new threads, and the periodic rebalancer that
// migrates threads off proportion-over-subscribed cores.
//
// The paper's squish/overload logic operates within one core's 100% budget (see
// core/controller.h); the Machine is what turns N such budgets into one machine by
// deciding which core each thread's proportion is drawn from.
//
// Idle fast-forward (config.idle_fast_forward, on by default): when a dispatch round
// ends with no runnable thread anywhere and no overhead backlog, the Machine stops
// scheduling per-tick callbacks and suspends its dispatch clocks — the event-driven
// alternative to burning one simulator event per empty tick. The next machine-visible
// stimulus resumes them: a wake (queue/mutex/tty/timer), a new thread, a migration, or
// an overhead charge. Sleeper expiries are covered by a single "horizon" event armed
// at the tick that would service the earliest sleeper. On resume the skipped ticks are
// replayed in bulk — tick/dispatch counters, timer/dispatch/idle charges, and the
// schedulers' OnTicksSkipped catch-up — so counters, accounting, budgets, and the
// trace are bit-identical to a machine that ticked through the idle span (the
// differential harness cross-checks this equivalence over fuzz seeds). The only
// observable difference is that MachineChecker::OnTickComplete is not invoked for
// skipped ticks (there was, by construction, nothing to check). RunFor() settles the
// catch-up at the end of a run; callers driving the Simulator directly should prefer
// Machine::RunFor when they read tick-granularity introspection afterwards.
//
// Ownership: the Machine borrows the Simulator, the per-core Schedulers, and the
// ThreadRegistry — all must outlive it. It owns nothing but its per-core bookkeeping.
//
// Units: all externally visible quantities are either simulated Cycles (work,
// budgets, overheads) or virtual-time Duration/TimePoint (dispatch interval, sleep
// deadlines). dispatch_hz() is dispatches per virtual second. Nothing here is
// wall-clock.
//
// Thread-safety: the public API is single-(host-)threaded — like everything above the
// Simulator, it runs inside simulator events on the event-loop thread. With
// config.host_threads > 1 the Machine additionally runs *gated* dispatch rounds
// across a ParallelEngine: when every core's tick event is at the queue head and
// every runnable thread's work model is provably round-local (WorkModel::
// RoundLocalCycles covers the whole tick), the per-core dispatch loops run
// concurrently, one host thread per simulated core, staging trace records and
// throttle-sleeps into per-core lanes that the coordinator merges at the epoch
// barrier in ascending core order. Anything else — an installed checker, an
// interleaved event, a thread that might block/wake/migrate — falls back to the
// sequential reference path, so the schedule, the event-id sequence, and the trace
// are bit-identical at every host_threads value (tests/parallel_engine_test.cc and
// the fuzz battery's 1-vs-N equivalence pass pin this). See docs/ARCHITECTURE.md,
// "The parallel engine".
//
// Single-CPU compatibility: a Machine built with one scheduler (the legacy
// constructor) schedules exactly the same events, in the same order, with the same
// costs as the pre-SMP implementation, so cpus=1 traces are bit-identical to the
// original single-CPU machine (tests/smp_test.cc pins this).
#ifndef REALRATE_SCHED_MACHINE_H_
#define REALRATE_SCHED_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "queue/bounded_buffer.h"
#include "queue/sim_mutex.h"
#include "queue/tty.h"
#include "sched/scheduler.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "task/registry.h"

namespace realrate {

class Machine;

// Observation interface for runtime invariant oracles (src/harness). The Machine
// invokes an installed checker synchronously from inside the dispatch engine, so a
// checker sees every scheduling decision at the instant it is made. Checkers must be
// read-only observers: they may walk the machine, registry, and trace, but must not
// mutate simulation state — installing one must leave the schedule bit-identical.
// Ticks elided by idle fast-forward do not invoke OnTickComplete: they dispatched
// nothing, and their accounting is settled in bulk at resume time.
class MachineChecker {
 public:
  virtual ~MachineChecker() = default;
  // After `core`'s scheduler picked `pick` (never null) and before `pick` runs.
  virtual void OnPicked(const Machine& machine, CpuId core, const SimThread* pick,
                        TimePoint now) = 0;
  // After `core`'s dispatch tick completed.
  virtual void OnTickComplete(const Machine& machine, CpuId core, TimePoint now) = 0;
};

struct MachineConfig {
  // The dispatch interval (upper-bounded by the timer interval; 1 ms in the paper).
  Duration dispatch_interval = Duration::Millis(1);
  // If false, dispatch/context-switch/timer costs are not deducted from capacity
  // (useful for pure-policy unit tests that want exact cycle math).
  bool charge_overheads = true;
  // Skip runs of empty dispatch ticks instead of scheduling a callback per tick (see
  // the header comment). Behavior-preserving; disable only to A/B the event count or
  // to debug the catch-up path itself.
  bool idle_fast_forward = true;
  // --- SMP policy knobs (ignored on a 1-core machine) ---
  // How often the rebalancer looks for proportion-over-subscribed cores. Zero
  // disables rebalancing entirely.
  Duration rebalance_interval = Duration::Millis(100);
  // A core whose reserved-proportion sum exceeds this is over-subscribed: the
  // rebalancer migrates its smallest reservations to the least-loaded core for as
  // long as each move strictly reduces the machine's load spread. Defaults just
  // under the controller's 0.95 admission ceiling so a core pinned at the squish
  // ceiling counts as over-subscribed.
  double rebalance_threshold = 0.9;
  // Host OS threads driving the simulated cores. 1 (the default) is the reference
  // engine: every event runs on the caller's thread. N > 1 runs gated dispatch
  // rounds one-host-thread-per-core (clamped to the core count) with bit-identical
  // results — same schedule, same trace hash, same event ids — at any value.
  int host_threads = 1;
};

class Machine {
 public:
  // Single-core machine (the paper's uniprocessor): `scheduler` is core 0's run
  // queue. Requires a 1-CPU simulator.
  Machine(Simulator& sim, Scheduler& scheduler, ThreadRegistry& registry,
          const MachineConfig& config = MachineConfig{});
  // SMP machine: one scheduler (run queue) per core, in core-id order. Requires
  // schedulers.size() == sim.num_cpus().
  Machine(Simulator& sim, std::vector<Scheduler*> schedulers, ThreadRegistry& registry,
          const MachineConfig& config = MachineConfig{});

  // Schedules the first tick on every core (and the rebalancer on SMP machines).
  // Call once before Simulator::Run*.
  void Start();

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  Scheduler& scheduler(CpuId core = 0) { return *CoreAt(core).scheduler; }
  ThreadRegistry& registry() { return registry_; }
  const ThreadRegistry& registry() const { return registry_; }

  // Installs (or clears, with nullptr) the invariant-oracle hook. The checker is
  // borrowed and must outlive the machine or be cleared before destruction.
  void SetChecker(MachineChecker* checker) { checker_ = checker; }

  // Migration observer: invoked synchronously from every Migrate() (controller
  // steering and the rebalancer alike) after the thread's affinity moved. The
  // feedback controller installs one to keep its per-core BudgetLedger registered
  // with where each fixed reservation's proportion is drawn from. One observer at a
  // time; install nullptr to clear (the controller's destructor does). The hook must
  // not mutate machine state.
  using MigrationHook = std::function<void(SimThread*, CpuId from, CpuId to)>;
  void SetMigrationHook(MigrationHook hook) { migration_hook_ = std::move(hook); }
  const MachineConfig& config() const { return config_; }
  double dispatch_hz() const { return 1.0 / config_.dispatch_interval.ToSeconds(); }
  int num_cpus() const { return static_cast<int>(cores_.size()); }

  // Adds a thread to the machine (it must already be in the registry): places it on
  // the least-loaded core and enqueues it with that core's scheduler.
  void Attach(SimThread* thread);

  // Wires a wait object's wake callback to this machine.
  void Attach(BoundedBuffer* queue);
  void Attach(SimMutex* mutex);
  void Attach(TtyPort* tty);

  // Wakes a blocked thread (queue/mutex/tty callbacks land here) on its assigned
  // core. Waking a thread that is not blocked is a no-op (spurious wake).
  void Wake(ThreadId thread_id);

  // Puts `thread` (currently runnable) to sleep until `wake_at`.
  void SleepUntil(SimThread* thread, TimePoint wake_at);

  // Wakes a sleeping thread before its timer expires (e.g. the controller raised its
  // budget mid-period). No-op unless the thread is kSleeping.
  void CancelSleep(SimThread* thread);

  // Deducts external overhead (e.g. the user-level controller's computation) from the
  // capacity of `core`'s upcoming ticks and charges the given accounting category.
  // The user-level controller runs on the boot core, hence the default.
  void StealCycles(CpuUse category, Cycles cycles, CpuId core = 0);

  // Settles idle-fast-forward catch-up through (but excluding) a tick at `now`, so an
  // external observer running before this timestamp's tick — the controller, above
  // all — sees exactly the state a continuously ticking machine would show it.
  // No-op unless suspended. Does not resume the dispatch clocks.
  void SyncSkippedTicks(TimePoint now);

  // Cluster epoch fence: asserts the machine is quiescent for cross-machine
  // mutation (no parallel dispatch round in flight) and settles idle-fast-forward
  // catch-up at `now`, so the cluster layer's epoch-boundary reads (ledger spare,
  // queue pressure) and migrations observe exactly the state a continuously
  // ticking machine would show. The cluster rebalancer must call this before
  // touching any cross-machine state — the same epoch contract the parallel
  // engine enforces within one machine, one level up.
  void EpochFence(TimePoint now);
  int64_t epoch_fences() const { return epoch_fences_; }

  // --- Placement / migration (the SMP policy surface) ---
  // The core Attach would place a new thread on right now: smallest reserved
  // proportion, ties broken by fewest attached threads, then lowest core id.
  // `placing` (if non-null) is excluded from the census — pass the thread being
  // placed when it is already registered.
  CpuId LeastLoadedCore(const SimThread* placing = nullptr) const;
  // Moves `thread` to `core`: removes it from its current core's run queue, updates
  // its affinity, and enqueues it with the target scheduler. No-op if already there.
  // Must not be called for a thread that is currently on-CPU (mid-dispatch).
  void Migrate(SimThread* thread, CpuId core);
  // Sum of reserved proportions (fractions of one core) of threads assigned to
  // `core`, optionally excluding one thread.
  double ReservedFractionOn(CpuId core, const SimThread* excluding = nullptr) const;
  // Live (non-exited) threads assigned to `core`, optionally excluding one thread.
  int ThreadCountOn(CpuId core, const SimThread* excluding = nullptr) const;

  // Convenience: run the simulation for `d` of virtual time, then settle any pending
  // idle-fast-forward catch-up so counters and accounting read as if every tick ran.
  void RunFor(Duration d);

  // --- Introspection for tests and experiments ---
  // Machine-wide totals (sums over cores)...
  int64_t dispatches() const;
  int64_t context_switches() const;
  int64_t migrations() const { return migrations_; }
  // ...and per-core views. ticks() is per-core because cores tick in lockstep; core
  // 0's count is the machine's tick count.
  int64_t dispatches_on(CpuId core) const { return CoreAt(core).dispatches; }
  int64_t context_switches_on(CpuId core) const { return CoreAt(core).context_switches; }
  int64_t ticks() const { return CoreAt(0).ticks; }
  Cycles cycles_per_tick() const { return cycles_per_tick_; }
  // Observability for the fast-forward machinery: how many dispatch-clock
  // suspensions have begun, and whether one is in effect right now.
  int64_t idle_suspensions() const { return idle_suspensions_; }
  bool idle_suspended() const { return suspended_; }
  // Tick rounds that actually ran the per-core dispatch loops across host threads
  // (0 when host_threads == 1 or no round ever passed the independence gate).
  int64_t parallel_rounds() const { return parallel_rounds_; }
  // The subset of parallel_rounds() admitted through the mailbox gate — rounds whose
  // queue operations ran against pre-claimed BoundedBuffer stakes rather than the
  // hog-only RoundLocalCycles gate. The vacuity signal for the queue-round
  // equivalence passes: a pipeline/farm config that claims to exercise the parallel
  // path must show this > 0.
  int64_t mailbox_rounds() const { return mailbox_rounds_; }
  // Host threads the machine will use (config.host_threads clamped to the core
  // count; 1 when no ParallelEngine was created).
  int host_threads() const;

 private:
  struct SleepEntry {
    TimePoint wake_at;
    uint64_t generation;
    ThreadId thread;
    bool operator>(const SleepEntry& other) const {
      if (wake_at != other.wake_at) {
        return wake_at > other.wake_at;
      }
      return generation > other.generation;
    }
  };

  // True when the registry's hot-field slabs cover every registry thread, so the
  // machine-wide sweeps (census, rebalancer victim scan, idle-suspension check) can
  // read slab columns in slot order — which is registry creation order, preserving
  // even floating-point summation order — instead of chasing SimThread*.
  bool UseColumns() const {
    return slabs_ != nullptr && slabs_->live_count() == static_cast<int64_t>(registry_.size());
  }

  // Sleep-generation bookkeeping: which incarnation of "this thread is asleep" the
  // heap entries refer to (0 = not asleep). Slab-backed registries use a dense
  // ThreadId-indexed vector (the timer path is hot at farm scale); legacy registries
  // keep the unordered_map.
  uint64_t SleepGenOf(ThreadId id) const;
  void SetSleepGen(ThreadId id, uint64_t gen);
  void ClearSleepGen(ThreadId id);

  // Per-core dispatcher state: the run queue (scheduler) plus everything the
  // pre-SMP Machine kept as single members.
  struct Core {
    Scheduler* scheduler = nullptr;
    SimThread* last_ran = nullptr;
    Cycles stolen_backlog = 0;
    int64_t dispatches = 0;
    int64_t context_switches = 0;
    int64_t ticks = 0;
    EventId next_tick_event = kInvalidEventId;  // Pending Tick callback, if any.
    bool round_had_pick = false;  // Did this core dispatch anything this tick round?
  };

  Core& CoreAt(CpuId core) {
    RR_EXPECTS(core >= 0 && static_cast<size_t>(core) < cores_.size());
    return cores_[static_cast<size_t>(core)];
  }
  const Core& CoreAt(CpuId core) const {
    RR_EXPECTS(core >= 0 && static_cast<size_t>(core) < cores_.size());
    return cores_[static_cast<size_t>(core)];
  }

  void Tick(CpuId core);
  // Tick(core) minus the callback lookup: prologue (counters, core-0 timer service)
  // plus TickRest. The sequential engine's whole tick; the parallel engine's
  // fallback unit.
  void TickBody(CpuId core, TimePoint now);
  // Everything in a tick after the prologue: scheduler OnTick, backlog absorption,
  // the dispatch loop, checker hook, and the re-arm / suspend decision.
  void TickRest(CpuId core, TimePoint now);
  // host_threads > 1: core 0's dispatch-clock callback. Pops the sibling cores'
  // same-timestamp tick events off the queue head and runs the whole round — in
  // parallel when the independence gate passes, else as the exact sequential
  // interleave.
  void RoundTick();
  // The per-core body RunRound fans out: backlog absorption + dispatch loop only.
  void RoundDispatch(CpuId core, TimePoint now);
  // The dispatch clock callback for `core` under the current engine mode.
  EventQueue::Callback TickCallback(CpuId core);
  // True when every runnable thread's work model is round-local for a full tick
  // starting at `now` — the precondition for running dispatch loops concurrently.
  // The verdict is cached and invalidated by runnable-set changes (gate_epoch_).
  bool RoundIsLocal(TimePoint now);
  // The mailbox gate: when RoundIsLocal fails because runnable threads carry queue
  // work, collect every such thread's round queue plan (WorkModel::PlanRoundQueueOps,
  // budgeted by Scheduler::RoundCycleBound) into a per-queue claim table and admit
  // the round iff, for every planned queue: no thread is blocked on it, at most one
  // thread pushes and one pops (so side-band FIFOs keep sequential order), the push
  // bounds fit the current headroom, and the pop bounds fit the current fill. Under
  // those conditions no full/empty edge is reachable in ANY interleaving — every op
  // succeeds with its full request in both engines, no wake can fire — so the round
  // fans out with bit-identical results. On success round_claims_/round_staged_ hold
  // the table; on failure the verdict is cached at per-queue epoch granularity
  // (plan_fail_*): re-evaluation waits for a runnable-set change or a consulted
  // queue's change_epoch to move, keeping steady-state gate work O(runnable).
  bool RoundPlanIsFeasible(TimePoint now);
  // Remembers why the mailbox gate failed: the consulted queues' change epochs
  // (empty = runnable-set-keyed only), so the fail-fast path above stays sound.
  void RecordPlanFailure();
  // Invalidates the cached gate verdict. Called on every runnable-set change made
  // outside a parallel round; in-round transitions can only shrink the runnable set
  // (gated work never wakes anyone), which cannot falsify a true verdict.
  void InvalidateRoundGate() { ++gate_epoch_; }
  // Records a trace event from the dispatch path: directly when sequential, into
  // `core`'s lane when inside a parallel round (merged in core order at the barrier).
  void Emit(CpuId core, TimePoint t, TraceKind kind, ThreadId thread, int64_t arg0 = 0,
            int64_t arg1 = 0);
  void WakeExpiredSleepers(TimePoint now);
  // Files a sleeper into the timing wheel (short sleeps, the common case) or the
  // far heap (wakes beyond the wheel window).
  void PushSleeper(const SleepEntry& entry);
  // Runs work for up to `cycles_left` on `core`; one iteration of the intra-tick
  // dispatch loop.
  void DispatchLoop(Core& core, CpuId core_id, TimePoint now, Cycles cycles_left);
  void ApplyRunResult(Core& core, CpuId core_id, SimThread* thread, const RunResult& result,
                      TimePoint now);
  // One pass of the over-subscription rebalancer; reschedules itself.
  void Rebalance();

  // --- Idle fast-forward ---
  // True when the whole machine is provably idle going forward: no runnable thread
  // on any core and no overhead backlog to absorb.
  bool ShouldSuspend() const;
  // Stops the per-tick clocks (cancelling already-scheduled ticks) and arms the
  // sleeper-horizon event. Called at the end of the last core's tick in a round.
  void Suspend();
  // Arms (or re-arms) the horizon event at the tick that will service the earliest
  // live sleeper; no event if the sleep list is empty.
  void ArmHorizon();
  // Replays the accounting of one elided idle tick on `core_id`, exactly as the
  // skipped Tick would have charged it.
  void AccountIdleTick(CpuId core_id);
  // Replays all elided ticks at grid points in (accounted_through_, upto) — or
  // (..., upto] with `inclusive` — updating counters, charges, and scheduler state.
  void AccountSkippedTicks(TimePoint upto, bool inclusive);
  // Settles catch-up strictly before `now` and restarts the per-core tick clocks at
  // the next grid point. No-op unless suspended.
  void ResumeTicking();

  Simulator& sim_;
  ThreadRegistry& registry_;
  MachineConfig config_;
  std::vector<Core> cores_;
  Cycles cycles_per_tick_ = 0;

  const ThreadSlabs* slabs_ = nullptr;  // The registry's slabs (null when disabled).

  // Sleeper bookkeeping is a two-level structure. Short sleeps — the overwhelmingly
  // common case: one reservation period, a few dispatch ticks — go into a timing
  // wheel of per-tick buckets (O(1) push_back, one bucket append/clear per tick)
  // instead of sifting through a machine-wide binary heap on every block and wake.
  // Sleeps past the wheel window land in the far heap, which works exactly like the
  // original single heap. WakeExpiredSleepers merges both sources and sorts the due
  // batch by (wake_at, generation) — the order the single heap popped in — so wake
  // processing, and therefore the trace, is bit-identical to the one-heap machine.
  static constexpr int64_t kSleepWheelTicks = 128;
  static constexpr int64_t kNoTick = INT64_MIN;
  std::vector<std::vector<SleepEntry>> sleep_wheel_;  // Ring of kSleepWheelTicks buckets.
  int64_t sleep_wheel_cursor_ = kNoTick;  // First undrained tick index.
  int64_t sleep_wheel_count_ = 0;         // Entries currently in the wheel.
  std::vector<SleepEntry> wake_batch_;    // WakeExpiredSleepers's reused scratch.
  std::priority_queue<SleepEntry, std::vector<SleepEntry>, std::greater<SleepEntry>> sleepers_;
  std::unordered_map<ThreadId, uint64_t> sleep_generation_;  // Legacy (no-slab) path.
  std::vector<uint64_t> sleep_gen_dense_;                    // Slab-backed path.
  uint64_t next_generation_ = 1;

  // Fast-forward state: the last tick grid point whose effects (real or replayed)
  // are reflected in counters and accounting, and the armed sleeper-horizon event.
  TimePoint accounted_through_ = TimePoint::Origin();
  bool suspended_ = false;
  EventId horizon_event_ = kInvalidEventId;
  int64_t idle_suspensions_ = 0;
  int64_t epoch_fences_ = 0;

  int64_t migrations_ = 0;
  bool started_ = false;
  MachineChecker* checker_ = nullptr;
  MigrationHook migration_hook_;

  // --- Parallel engine (host_threads > 1) ---
  // Per-core mailbox for one round's cross-core-visible effects: trace records in
  // emission order, and throttle-sleeps whose wheel insertion (and generation
  // assignment) is deferred to the barrier. Cleared at round start; drained at the
  // barrier in ascending core order — the fixed drain order that makes the merged
  // stream equal the sequential engine's.
  struct Lane {
    struct StagedSleep {
      SimThread* thread;
      TimePoint wake_at;
    };
    std::vector<TraceEvent> events;
    std::vector<StagedSleep> sleeps;
  };

  std::unique_ptr<ParallelEngine> engine_;  // Null when host_threads == 1.
  std::vector<Lane> lanes_;                 // One per core; empty when engine_ is null.
  bool in_round_ = false;  // Dispatch loops currently fanned out across host threads.
  int64_t parallel_rounds_ = 0;
  // Independence-gate verdict cache: RoundIsLocal's scan only reruns after a
  // runnable-set change (wake, sleep, block, exit, attach, migrate) bumps the epoch.
  uint64_t gate_epoch_ = 1;
  uint64_t gate_cached_epoch_ = 0;
  bool gate_cached_ = false;

  // --- Mailbox (staked-queue) rounds ---
  // One planned queue's aggregated claim for the current round: the stake structs
  // the buffer's mid-round ops write into, and the single planned endpoint threads.
  struct QueueClaim {
    BoundedBuffer* queue = nullptr;
    BoundedBuffer::RoundStake push;
    BoundedBuffer::RoundStake pop;
    ThreadId pusher = kInvalidThreadId;
    ThreadId popper = kInvalidThreadId;
  };
  std::vector<QueueClaim> round_claims_;  // This round's queue table (coordinator-owned).
  // Planned models with their owning core, sorted into ascending-core order before
  // the FlushRoundEffects barrier — the core-major effect order the sequential
  // engine produces.
  std::vector<std::pair<CpuId, WorkModel*>> round_staged_;
  std::vector<RoundQueueOp> plan_ops_;  // Reused per-thread plan scratch.
  uint64_t plan_stamp_ = 0;             // Queue-table dedup stamp (BoundedBuffer::PlanMark).
  int64_t mailbox_rounds_ = 0;
  // Mailbox-gate failure cache (per-queue epoch granularity): the failure holds
  // while the runnable set and every consulted queue's change epoch are unchanged.
  bool plan_fail_valid_ = false;
  uint64_t plan_fail_gate_epoch_ = 0;
  std::vector<std::pair<BoundedBuffer*, uint64_t>> plan_fail_queues_;
};

}  // namespace realrate

#endif  // REALRATE_SCHED_MACHINE_H_
