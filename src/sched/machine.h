// Machine: the simulated kernel's dispatch engine. Owns the timer tick (the paper's
// 1 ms dispatch interval), runs the scheduler at every dispatch point, executes thread
// work models, applies blocking/sleeping/budget-throttling transitions, maintains the
// sorted sleep list with a cached next expiry (the paper's do_timers() optimization),
// and charges the CPU cost model for dispatch, context-switch and timer overheads so
// overhead experiments (Fig. 5, Fig. 8) measure real capacity loss.
#ifndef REALRATE_SCHED_MACHINE_H_
#define REALRATE_SCHED_MACHINE_H_

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "queue/bounded_buffer.h"
#include "queue/sim_mutex.h"
#include "queue/tty.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "task/registry.h"

namespace realrate {

struct MachineConfig {
  // The dispatch interval (upper-bounded by the timer interval; 1 ms in the paper).
  Duration dispatch_interval = Duration::Millis(1);
  // If false, dispatch/context-switch/timer costs are not deducted from capacity
  // (useful for pure-policy unit tests that want exact cycle math).
  bool charge_overheads = true;
};

class Machine {
 public:
  Machine(Simulator& sim, Scheduler& scheduler, ThreadRegistry& registry,
          const MachineConfig& config = MachineConfig{});

  // Schedules the first tick. Call once before Simulator::Run*.
  void Start();

  Simulator& sim() { return sim_; }
  Scheduler& scheduler() { return scheduler_; }
  ThreadRegistry& registry() { return registry_; }
  const MachineConfig& config() const { return config_; }
  double dispatch_hz() const { return 1.0 / config_.dispatch_interval.ToSeconds(); }

  // Adds a thread to the scheduler (it must already be in the registry).
  void Attach(SimThread* thread);

  // Wires a wait object's wake callback to this machine.
  void Attach(BoundedBuffer* queue);
  void Attach(SimMutex* mutex);
  void Attach(TtyPort* tty);

  // Wakes a blocked thread (queue/mutex/tty callbacks land here). Waking a thread that
  // is not blocked is a no-op (spurious wake).
  void Wake(ThreadId thread_id);

  // Puts `thread` (currently runnable) to sleep until `wake_at`.
  void SleepUntil(SimThread* thread, TimePoint wake_at);

  // Wakes a sleeping thread before its timer expires (e.g. the controller raised its
  // budget mid-period). No-op unless the thread is kSleeping.
  void CancelSleep(SimThread* thread);

  // Deducts external overhead (e.g. the user-level controller's computation) from the
  // capacity of upcoming ticks and charges the given accounting category.
  void StealCycles(CpuUse category, Cycles cycles);

  // Convenience: run the simulation for `d` of virtual time.
  void RunFor(Duration d);

  // --- Introspection for tests and experiments ---
  int64_t dispatches() const { return dispatches_; }
  int64_t context_switches() const { return context_switches_; }
  int64_t ticks() const { return ticks_; }
  Cycles cycles_per_tick() const { return cycles_per_tick_; }

 private:
  struct SleepEntry {
    TimePoint wake_at;
    uint64_t generation;
    ThreadId thread;
    bool operator>(const SleepEntry& other) const {
      if (wake_at != other.wake_at) {
        return wake_at > other.wake_at;
      }
      return generation > other.generation;
    }
  };

  void Tick();
  void WakeExpiredSleepers(TimePoint now);
  // Runs work for up to `cycles_left`; returns cycles actually consumed (work +
  // overheads). One iteration of the intra-tick dispatch loop.
  void DispatchLoop(TimePoint now, Cycles cycles_left);
  void ApplyRunResult(SimThread* thread, const RunResult& result, TimePoint now);

  Simulator& sim_;
  Scheduler& scheduler_;
  ThreadRegistry& registry_;
  MachineConfig config_;
  Cycles cycles_per_tick_ = 0;

  std::priority_queue<SleepEntry, std::vector<SleepEntry>, std::greater<SleepEntry>> sleepers_;
  std::unordered_map<ThreadId, uint64_t> sleep_generation_;
  uint64_t next_generation_ = 1;

  SimThread* last_ran_ = nullptr;
  Cycles stolen_backlog_ = 0;

  int64_t dispatches_ = 0;
  int64_t context_switches_ = 0;
  int64_t ticks_ = 0;
  bool started_ = false;
};

}  // namespace realrate

#endif  // REALRATE_SCHED_MACHINE_H_
