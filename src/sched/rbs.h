// RbsScheduler: the paper's reservation-based proportion/period scheduler (§3.1).
// Rate-monotonic ordering implemented through a goodness function, per-period cycle
// budgets, and sleep-until-next-period once a thread has used its allocation. Threads
// without a reservation fall back to round-robin behind all reserved threads, mirroring
// "our policy calculates goodness to ensure that threads it controls have higher
// goodness than jobs under other policies, and that jobs with shorter periods have
// higher goodness values."
//
// Dispatch hot path (see docs/ARCHITECTURE.md, "The dispatch hot path"): PickNext is
// O(log n) against indexed run queues rather than the original O(n) goodness scan.
//   - Reserved threads with remaining budget live in an ordered pick index keyed by
//     incrementally maintained period rank (rate-monotonic mode) or period deadline
//     (EDF mode), with the thread's admission sequence number as the tiebreaker —
//     exactly the tie order of the original scan, which resolved equal goodness by
//     position in the (arrival-ordered) thread vector.
//   - Period replenishment is driven by a due-heap keyed by period end, so OnTick
//     touches only the threads whose period actually closed instead of all n.
//   - Best-effort (and, in work-conserving mode, budget-exhausted) threads are
//     summarized by a secondary occupancy index — runnable counts that let PickNext
//     skip the round-robin fallback scan entirely in the common all-blocked case; the
//     scan itself is kept verbatim because its cursor semantics are positional.
// The original scan survives as PickNextReference(); RbsConfig::shadow_check makes
// every PickNext assert indexed pick == reference pick (the shadow-scheduler mode the
// fuzz harness runs), and RbsConfig::use_indexed_pick = false falls back to the
// reference scan wholesale (the bench_dispatch_scale comparison build).
#ifndef REALRATE_SCHED_RBS_H_
#define REALRATE_SCHED_RBS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.h"
#include "sim/cpu.h"

namespace realrate {

// Dispatch ordering among reserved threads with remaining budget. The paper implements
// rate-monotonic ordering via goodness but notes any reservation mechanism would do
// ("we could equally well have used other RBS mechanisms such as SMaRT, Rialto, or
// BERT"); EDF is provided as the classic alternative — it schedules feasible task sets
// up to 100% utilization where RMS is only guaranteed to the Liu-Layland bound.
enum class DispatchOrder : uint8_t {
  kRateMonotonic,
  kEarliestDeadlineFirst,
};

struct RbsConfig {
  // If true, threads with exhausted budgets may still run when the CPU would otherwise
  // idle (background mode). The paper's prototype is non-work-conserving: exhausted
  // threads sleep until their next period. Default matches the paper.
  bool work_conserving = false;
  DispatchOrder order = DispatchOrder::kRateMonotonic;
  // If false, the scheduler runs as the pre-index reference build: PickNext uses the
  // O(n) goodness scan, OnTick uses the O(n) per-tick replenish sweep, and no index
  // maintenance happens at all — the comparison baseline bench_dispatch_scale
  // measures against. Behavior (schedule, trace) is identical either way.
  bool use_indexed_pick = true;
  // Shadow-scheduler mode: every PickNext computes both the indexed pick and the
  // reference scan pick and asserts they are identical. Used by the fuzz harness
  // (RunOptions::rbs_shadow_check) to pin the indexed structures to the original
  // semantics across generated workloads.
  bool shadow_check = false;
};

// One element of a per-core actuation batch (ApplyReservations): the reservation a
// controller tick resolved for `thread`.
struct ReservationUpdate {
  SimThread* thread = nullptr;
  Proportion proportion = Proportion::Zero();
  Duration period = Duration::Zero();
};

class RbsScheduler : public Scheduler {
 public:
  RbsScheduler(const Cpu& cpu, const RbsConfig& config = RbsConfig{});
  ~RbsScheduler() override;  // Clears the sched_slot cache of still-enqueued threads.

  const char* name() const override { return "rbs"; }

  void AddThread(SimThread* thread) override;
  void RemoveThread(SimThread* thread) override;
  void OnTick(TimePoint now) override;
  void OnTicksSkipped(int64_t count, TimePoint now) override;
  SimThread* PickNext(TimePoint now) override;
  Cycles MaxGrant(SimThread* thread, Cycles tick_remaining) override;
  void OnRan(SimThread* thread, Cycles used, TimePoint now) override;
  std::optional<TimePoint> ThrottleUntil(SimThread* thread, TimePoint now) override;
  void OnWake(SimThread* thread, TimePoint now) override;
  void OnBlock(SimThread* thread, TimePoint now) override;

  // The original O(n) goodness/deadline scan, preserved verbatim as the reference
  // implementation the indexed pick is validated against (shadow_check) and the
  // baseline bench_dispatch_scale measures. Shares the round-robin cursor with
  // PickNext, so within one run use either entry point per dispatch, not both.
  SimThread* PickNextReference(TimePoint now);

  // Actuation entry point used by the controller: sets proportion/period and restarts
  // the thread's period from `now` with a fresh budget. "Very low overhead to change
  // proportion and period" — O(1) (plus O(log n) index maintenance).
  void SetReservation(SimThread* thread, Proportion proportion, Duration period, TimePoint now);

  // Batched actuation surface for the controller's Actuate stage: applies each
  // update exactly as SetReservation would, in order — one scheduler call per core
  // per controller tick instead of one per changed thread. Per-update index
  // maintenance inside SetReservation is unchanged (O(log n) each); the batch is
  // the call-granularity surface future deferred maintenance would hang off.
  // Every thread in the batch must be actuatable by this instance (enqueued here,
  // or enqueued nowhere — the SetReservation contract).
  void ApplyReservations(const std::vector<ReservationUpdate>& batch, TimePoint now);

  // The goodness function, exposed for tests. Higher runs first. Zero means "do not
  // run now".
  int64_t Goodness(const SimThread* thread) const;

  // Full budget (cycles) for one period of `thread`'s current reservation.
  Cycles PeriodBudget(const SimThread* thread) const;

  // Sum of reserved proportions over all scheduled threads (overload detection).
  Proportion TotalReserved() const;

  // Invoked when a reserved thread ends a period short of its budget while runnable.
  using DeadlineMissFn = std::function<void(SimThread*, Cycles shortfall, TimePoint)>;
  void SetDeadlineMissFn(DeadlineMissFn fn) { miss_fn_ = std::move(fn); }

  const std::vector<SimThread*>& threads() const { return threads_; }
  // Shadow-mode observability: picks that ran both implementations and agreed.
  int64_t shadow_checks() const { return shadow_checks_; }

 private:
  // Per-thread bookkeeping owned by this scheduler (not the thread): the admission
  // sequence number that reproduces the reference scan's tie order, the pick-index
  // membership/key snapshot, and the replenish-heap generation stamp.
  struct Node {
    RbsScheduler* owner = nullptr;  // Guards the SimThread::sched_slot cache.
    uint64_t seq = 0;
    bool in_pick_index = false;
    int64_t pick_primary = 0;       // Key snapshot while in the pick index.
    bool counted_runnable = false;  // Contributes to the occupancy counts below.
    bool counted_reserved = false;  // Which count it contributes to.
    uint64_t replenish_gen = 0;     // Current generation; stale heap entries mismatch.
  };

  // Ordered pick index element. Comparison is (rank desc | deadline asc, seq asc):
  // begin() is exactly the thread the reference scan would return.
  struct PickKey {
    int64_t primary = 0;  // -rm_rank, or the EDF deadline in nanos.
    uint64_t seq = 0;
    SimThread* thread = nullptr;
    bool operator<(const PickKey& other) const {
      if (primary != other.primary) {
        return primary < other.primary;
      }
      return seq < other.seq;
    }
  };

  // Replenish due-heap entry: period end of one reservation incarnation.
  struct DueEntry {
    TimePoint due;
    uint64_t seq = 0;
    uint64_t gen = 0;
    SimThread* thread = nullptr;
    bool operator>(const DueEntry& other) const {
      if (due != other.due) {
        return due > other.due;
      }
      return seq > other.seq;
    }
  };

  bool HasReservation(const SimThread* t) const {
    return t->policy() == SchedPolicy::kReservation && !t->proportion().IsZero();
  }
  void Replenish(SimThread* thread, TimePoint now);
  // Recomputes `thread`'s pick-index membership/key and occupancy counts from its
  // current state. Idempotent; every mutation hook funnels through it.
  void Reindex(SimThread* thread);
  Node* FindNode(SimThread* thread);
  // Pushes a fresh due-heap entry for `thread`'s current period (bumping the
  // generation so older entries die), or just invalidates when unreserved.
  void RearmReplenish(SimThread* thread, Node& node);
  // The two halves of the reference scan, side-effect-free and cursor-mutating
  // respectively; PickNext composes the indexed (or reference) reserved pick with the
  // shared fallback.
  SimThread* PickReservedReference(TimePoint now);
  SimThread* PickReservedIndexed();
  SimThread* PickFallbackRoundRobin();
  // Side-effect-free: would the round-robin fallback scan find a candidate? Used by
  // shadow mode to validate the occupancy counts that gate the scan.
  bool HasFallbackCandidate() const;

  const Cpu& cpu_;
  RbsConfig config_;
  std::vector<SimThread*> threads_;
  DeadlineMissFn miss_fn_;
  size_t rr_cursor_ = 0;  // Round-robin position among non-reserved threads.

  // --- Indexed hot-path state ---
  std::unordered_map<SimThread*, Node> nodes_;
  std::set<PickKey> pick_index_;  // Eligible reserved threads (runnable, budget > 0).
  std::priority_queue<DueEntry, std::vector<DueEntry>, std::greater<DueEntry>> due_;
  std::vector<DueEntry> due_now_;  // OnTick's reused due-batch buffer.
  // Secondary occupancy index for the round-robin fallback: how many runnable
  // threads are non-reserved, and how many are reserved at all. Runnable reserved
  // threads with exhausted budgets = counted_reserved_runnable - |pick_index_|,
  // which is what work-conserving mode scans for.
  int64_t runnable_unreserved_ = 0;
  int64_t runnable_reserved_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t next_gen_ = 1;
  int64_t shadow_checks_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_SCHED_RBS_H_
