// RbsScheduler: the paper's reservation-based proportion/period scheduler (§3.1).
// Rate-monotonic ordering implemented through a goodness function, per-period cycle
// budgets, and sleep-until-next-period once a thread has used its allocation. Threads
// without a reservation fall back to round-robin behind all reserved threads, mirroring
// "our policy calculates goodness to ensure that threads it controls have higher
// goodness than jobs under other policies, and that jobs with shorter periods have
// higher goodness values."
//
// Dispatch hot path (see docs/ARCHITECTURE.md, "The dispatch hot path"): PickNext is
// O(log n) against indexed run queues rather than the original O(n) goodness scan.
//   - Reserved threads with remaining budget live in a pick index keyed by
//     incrementally maintained period rank (rate-monotonic mode) or period deadline
//     (EDF mode), with the thread's admission sequence number as the tiebreaker —
//     exactly the tie order of the original scan, which resolved equal goodness by
//     position in the (arrival-ordered) thread vector. The index is a vector-backed
//     min-heap with lazy deletion (generation-stamped entries), so the block/wake
//     storm of a dense farm costs O(1) per eligibility exit and an allocation-free
//     O(log n) push per entry, with no tree nodes to chase.
//   - Period replenishment is driven by a due-heap keyed by period end, so OnTick
//     touches only the threads whose period actually closed instead of all n.
//   - Best-effort (and, in work-conserving mode, budget-exhausted) threads are
//     summarized by a secondary occupancy index — runnable counts that let PickNext
//     skip the round-robin fallback scan entirely in the common all-blocked case; the
//     scan itself is kept verbatim because its cursor semantics are positional.
// The original scan survives as PickNextReference(); RbsConfig::shadow_check makes
// every PickNext assert indexed pick == reference pick (the shadow-scheduler mode the
// fuzz harness runs), and RbsConfig::use_indexed_pick = false falls back to the
// reference scan wholesale (the bench_dispatch_scale comparison build).
//
// Pick modes (RbsConfig::pick_mode): the index wins big at high occupancy but its
// maintenance (Reindex on every state/budget mutation, due-heap churn) is pure
// overhead at a handful of threads per core, where the O(n) scan fits in a few
// cachelines. kAuto therefore runs maintenance-off below auto_index_threshold
// enqueued threads and switches the index on (rebuilding it from the thread vector,
// O(n log n) once) when the run queue grows past it, with 2x hysteresis on the way
// down. Both modes produce bit-identical schedules, so switching is trace-invariant.
//
// When every enqueued thread is bound to hot-field slabs (task/thread_slabs.h), the
// reference scan, the fallback gate, the per-tick replenish sweep, and TotalReserved
// read the slab columns instead of chasing SimThread* — same order, same ties, same
// result, a fraction of the cachelines.
#ifndef REALRATE_SCHED_RBS_H_
#define REALRATE_SCHED_RBS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.h"
#include "sim/cpu.h"
#include "task/thread_slabs.h"

namespace realrate {

// Dispatch ordering among reserved threads with remaining budget. The paper implements
// rate-monotonic ordering via goodness but notes any reservation mechanism would do
// ("we could equally well have used other RBS mechanisms such as SMaRT, Rialto, or
// BERT"); EDF is provided as the classic alternative — it schedules feasible task sets
// up to 100% utilization where RMS is only guaranteed to the Liu-Layland bound.
enum class DispatchOrder : uint8_t {
  kRateMonotonic,
  kEarliestDeadlineFirst,
};

// How PickNext finds the best reserved thread (see the header comment).
enum class PickMode : uint8_t {
  kAuto,       // Reference scan below auto_index_threshold, indexed above.
  kIndexed,    // Always maintain and use the indexed run queues.
  kReference,  // Always the O(n) scan; no index maintenance at all.
};

struct RbsConfig {
  // If true, threads with exhausted budgets may still run when the CPU would otherwise
  // idle (background mode). The paper's prototype is non-work-conserving: exhausted
  // threads sleep until their next period. Default matches the paper.
  bool work_conserving = false;
  DispatchOrder order = DispatchOrder::kRateMonotonic;
  // Legacy switch predating pick_mode: if false, the scheduler runs as the pre-index
  // reference build (pick_mode = kReference) — PickNext uses the O(n) goodness scan,
  // OnTick uses the O(n) per-tick replenish sweep, and no index maintenance happens
  // at all; the comparison baseline bench_dispatch_scale measures against. Behavior
  // (schedule, trace) is identical in every mode.
  bool use_indexed_pick = true;
  // Reference vs indexed selection (only consulted when use_indexed_pick is true).
  // kAuto is the production default: per-core occupancy decides.
  PickMode pick_mode = PickMode::kAuto;
  // kAuto's switch-on point: enqueued-thread count at which this core's scheduler
  // starts maintaining the indexed run queues. Tuned on bench_dispatch_scale so the
  // farm e2e never loses to the reference scan at low density and keeps the indexed
  // win at high density (crossover sits between 64 and 128 threads/core). Indexing
  // switches back off below half this (hysteresis against add/remove flapping).
  int auto_index_threshold = 96;
  // Shadow-scheduler mode: every PickNext computes both the indexed pick and the
  // reference scan pick and asserts they are identical. Used by the fuzz harness
  // (RunOptions::rbs_shadow_check) to pin the indexed structures to the original
  // semantics across generated workloads.
  bool shadow_check = false;
};

// One element of a per-core actuation batch (ApplyReservations): the reservation a
// controller tick resolved for `thread`.
struct ReservationUpdate {
  SimThread* thread = nullptr;
  Proportion proportion = Proportion::Zero();
  Duration period = Duration::Zero();
};

class RbsScheduler : public Scheduler {
 public:
  RbsScheduler(const Cpu& cpu, const RbsConfig& config = RbsConfig{});
  ~RbsScheduler() override;  // Clears the sched_slot cache of still-enqueued threads.

  const char* name() const override { return "rbs"; }

  void AddThread(SimThread* thread) override;
  void RemoveThread(SimThread* thread) override;
  void OnTick(TimePoint now) override;
  void OnTicksSkipped(int64_t count, TimePoint now) override;
  SimThread* PickNext(TimePoint now) override;
  Cycles MaxGrant(SimThread* thread, Cycles tick_remaining) override;
  Cycles RoundCycleBound(const SimThread* thread, Cycles tick_cycles) const override;
  void OnRan(SimThread* thread, Cycles used, TimePoint now) override;
  std::optional<TimePoint> ThrottleUntil(SimThread* thread, TimePoint now) override;
  void OnWake(SimThread* thread, TimePoint now) override;
  void OnBlock(SimThread* thread, TimePoint now) override;

  // The original O(n) goodness/deadline scan, preserved verbatim as the reference
  // implementation the indexed pick is validated against (shadow_check) and the
  // baseline bench_dispatch_scale measures. Shares the round-robin cursor with
  // PickNext, so within one run use either entry point per dispatch, not both.
  SimThread* PickNextReference(TimePoint now);

  // Actuation entry point used by the controller: sets proportion/period and restarts
  // the thread's period from `now` with a fresh budget. "Very low overhead to change
  // proportion and period" — O(1) (plus O(log n) index maintenance).
  void SetReservation(SimThread* thread, Proportion proportion, Duration period, TimePoint now);

  // Batched actuation surface for the controller's Actuate stage: applies each
  // update exactly as SetReservation would, in order — one scheduler call per core
  // per controller tick instead of one per changed thread. Per-update index
  // maintenance inside SetReservation is unchanged (O(log n) each); the batch is
  // the call-granularity surface future deferred maintenance would hang off.
  // Every thread in the batch must be actuatable by this instance (enqueued here,
  // or enqueued nowhere — the SetReservation contract).
  void ApplyReservations(const std::vector<ReservationUpdate>& batch, TimePoint now);

  // The goodness function, exposed for tests. Higher runs first. Zero means "do not
  // run now".
  int64_t Goodness(const SimThread* thread) const;

  // Full budget (cycles) for one period of `thread`'s current reservation.
  Cycles PeriodBudget(const SimThread* thread) const;

  // Sum of reserved proportions over all scheduled threads (overload detection).
  Proportion TotalReserved() const;

  // Invoked when a reserved thread ends a period short of its budget while runnable.
  using DeadlineMissFn = std::function<void(SimThread*, Cycles shortfall, TimePoint)>;
  void SetDeadlineMissFn(DeadlineMissFn fn) { miss_fn_ = std::move(fn); }

  const std::vector<SimThread*>& threads() const { return threads_; }
  // Shadow-mode observability: picks that ran both implementations and agreed.
  int64_t shadow_checks() const { return shadow_checks_; }
  // Pick-mode observability: is the indexed hot path being maintained right now?
  // Constant under kIndexed/kReference; under kAuto it tracks the occupancy
  // threshold.
  bool indexing_active() const { return indexing_on_; }

 private:
  // Per-thread bookkeeping owned by this scheduler (not the thread): the admission
  // sequence number that reproduces the reference scan's tie order, the pick-index
  // membership/key snapshot, and the replenish-heap generation stamp.
  struct Node {
    RbsScheduler* owner = nullptr;  // Guards the SimThread::sched_slot cache.
    uint64_t seq = 0;
    bool in_pick_index = false;
    int64_t pick_primary = 0;       // Key snapshot while in the pick index.
    uint64_t pick_gen = 0;          // Generation of the current pick-heap entry.
    int32_t pick_slot = ThreadSlabs::kNoSlot;  // Slab slot of that entry, if bound.
    bool counted_runnable = false;  // Contributes to the occupancy counts below.
    bool counted_reserved = false;  // Which count it contributes to.
    uint64_t replenish_gen = 0;     // Current generation; stale heap entries mismatch.
  };

  // Pick-index element. Ordering is (rank desc | deadline asc, seq asc): the heap
  // minimum is exactly the thread the reference scan would return. Entries are
  // lazily deleted — `gen` matches Node::pick_gen only while the entry is current;
  // eligibility changes just bump the node's generation (O(1)) and the dead entry
  // is discarded when it surfaces at the heap top.
  struct PickKey {
    int64_t primary = 0;  // -rm_rank, or the EDF deadline in nanos.
    uint64_t seq = 0;
    uint64_t gen = 0;     // Current iff == the owning Node's pick_gen.
    int32_t slot = ThreadSlabs::kNoSlot;  // Slab slot, for object-free stale checks.
    SimThread* thread = nullptr;
    bool operator>(const PickKey& other) const {
      if (primary != other.primary) {
        return primary > other.primary;
      }
      return seq > other.seq;
    }
  };

  // Replenish due-heap entry: period end of one reservation incarnation.
  struct DueEntry {
    TimePoint due;
    uint64_t seq = 0;
    uint64_t gen = 0;
    SimThread* thread = nullptr;
    bool operator>(const DueEntry& other) const {
      if (due != other.due) {
        return due > other.due;
      }
      return seq > other.seq;
    }
  };

  bool HasReservation(const SimThread* t) const {
    return t->policy() == SchedPolicy::kReservation && !t->proportion().IsZero();
  }
  void Replenish(SimThread* thread, TimePoint now);
  // Recomputes `thread`'s pick-index membership/key and occupancy counts from its
  // current state. Idempotent; every mutation hook funnels through it.
  void Reindex(SimThread* thread);
  Node* FindNode(SimThread* thread);
  // Pushes a fresh due-heap entry for `thread`'s current period (bumping the
  // generation so older entries die), or just invalidates when unreserved.
  void RearmReplenish(SimThread* thread, Node& node);
  // The two halves of the reference scan, side-effect-free and cursor-mutating
  // respectively; PickNext composes the indexed (or reference) reserved pick with the
  // shared fallback.
  SimThread* PickReservedReference(TimePoint now);
  SimThread* PickReservedIndexed();
  SimThread* PickFallbackRoundRobin();
  // Side-effect-free: would the round-robin fallback scan find a candidate? Used by
  // shadow mode to validate the occupancy counts that gate the scan.
  bool HasFallbackCandidate() const;
  // kAuto transitions. Activation rebuilds the pick index, occupancy counts, and
  // due-heap from the thread vector; deactivation tears them down. Neither changes
  // any thread's state, so the schedule is unaffected.
  void ActivateIndexing();
  void DeactivateIndexing();
  void MaybeSwitchIndexing();
  // Rebuilds pick_index_ without its stale entries when they outnumber live ones
  // 4:1, so lazy deletion cannot grow the heap unboundedly. Amortized O(1) per
  // logical erase.
  void CompactPickIndex();
  // Is this heap entry the current one for its thread (vs lazily deleted)?
  bool PickEntryCurrent(const PickKey& key);
  // True when every enqueued thread is slab-bound, so the reference scan, the
  // fallback gate, the replenish sweep, and TotalReserved can read columns.
  bool UseColumns() const { return slabs_ != nullptr && unbound_ == 0; }

  const Cpu& cpu_;
  RbsConfig config_;
  std::vector<SimThread*> threads_;
  // threads_[i]'s slab slot (ThreadSlabs::kNoSlot when unbound), kept index-aligned
  // with threads_ so column scans preserve scan order, ties, and the round-robin
  // cursor arithmetic.
  std::vector<int32_t> slots_;
  const ThreadSlabs* slabs_ = nullptr;  // The slab every bound thread belongs to.
  size_t unbound_ = 0;                  // Enqueued threads without a slab slot.
  DeadlineMissFn miss_fn_;
  size_t rr_cursor_ = 0;  // Round-robin position among non-reserved threads.
  bool indexing_on_ = false;  // Maintain/use the indexed structures right now?

  // --- Indexed hot-path state ---
  std::unordered_map<SimThread*, Node> nodes_;
  // Eligible reserved threads (runnable, budget > 0): a vector-backed binary
  // min-heap with lazy deletion — allocation-free pushes, O(1) logical erase —
  // instead of a node-based ordered set, because the farm transitions threads
  // in and out of eligibility millions of times per second. `pick_live_` counts
  // the current (non-stale) entries; CompactPickIndex() bounds the garbage.
  std::vector<PickKey> pick_index_;
  int64_t pick_live_ = 0;
  // Current pick generation per slab slot (0 = not in the index): lets the heap's
  // stale-entry test read one dense word instead of chasing the (cold) thread
  // record's sched_slot on every pick. Unbound threads fall back to FindNode.
  std::vector<uint64_t> pick_gen_by_slot_;
  std::priority_queue<DueEntry, std::vector<DueEntry>, std::greater<DueEntry>> due_;
  std::vector<DueEntry> due_now_;  // OnTick's reused due-batch buffer.
  // Secondary occupancy index for the round-robin fallback: how many runnable
  // threads are non-reserved, and how many are reserved at all. Runnable reserved
  // threads with exhausted budgets = counted_reserved_runnable - |pick_index_|,
  // which is what work-conserving mode scans for.
  int64_t runnable_unreserved_ = 0;
  int64_t runnable_reserved_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t next_gen_ = 1;
  int64_t shadow_checks_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_SCHED_RBS_H_
