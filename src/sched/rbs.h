// RbsScheduler: the paper's reservation-based proportion/period scheduler (§3.1).
// Rate-monotonic ordering implemented through a goodness function, per-period cycle
// budgets, and sleep-until-next-period once a thread has used its allocation. Threads
// without a reservation fall back to round-robin behind all reserved threads, mirroring
// "our policy calculates goodness to ensure that threads it controls have higher
// goodness than jobs under other policies, and that jobs with shorter periods have
// higher goodness values."
#ifndef REALRATE_SCHED_RBS_H_
#define REALRATE_SCHED_RBS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sched/scheduler.h"
#include "sim/cpu.h"

namespace realrate {

// Dispatch ordering among reserved threads with remaining budget. The paper implements
// rate-monotonic ordering via goodness but notes any reservation mechanism would do
// ("we could equally well have used other RBS mechanisms such as SMaRT, Rialto, or
// BERT"); EDF is provided as the classic alternative — it schedules feasible task sets
// up to 100% utilization where RMS is only guaranteed to the Liu-Layland bound.
enum class DispatchOrder : uint8_t {
  kRateMonotonic,
  kEarliestDeadlineFirst,
};

struct RbsConfig {
  // If true, threads with exhausted budgets may still run when the CPU would otherwise
  // idle (background mode). The paper's prototype is non-work-conserving: exhausted
  // threads sleep until their next period. Default matches the paper.
  bool work_conserving = false;
  DispatchOrder order = DispatchOrder::kRateMonotonic;
};

class RbsScheduler : public Scheduler {
 public:
  RbsScheduler(const Cpu& cpu, const RbsConfig& config = RbsConfig{});

  const char* name() const override { return "rbs"; }

  void AddThread(SimThread* thread) override;
  void RemoveThread(SimThread* thread) override;
  void OnTick(TimePoint now) override;
  SimThread* PickNext(TimePoint now) override;
  Cycles MaxGrant(SimThread* thread, Cycles tick_remaining) override;
  void OnRan(SimThread* thread, Cycles used, TimePoint now) override;
  std::optional<TimePoint> ThrottleUntil(SimThread* thread, TimePoint now) override;

  // Actuation entry point used by the controller: sets proportion/period and restarts
  // the thread's period from `now` with a fresh budget. "Very low overhead to change
  // proportion and period" — O(1).
  void SetReservation(SimThread* thread, Proportion proportion, Duration period, TimePoint now);

  // The goodness function, exposed for tests. Higher runs first. Zero means "do not
  // run now".
  int64_t Goodness(const SimThread* thread) const;

  // Full budget (cycles) for one period of `thread`'s current reservation.
  Cycles PeriodBudget(const SimThread* thread) const;

  // Sum of reserved proportions over all scheduled threads (overload detection).
  Proportion TotalReserved() const;

  // Invoked when a reserved thread ends a period short of its budget while runnable.
  using DeadlineMissFn = std::function<void(SimThread*, Cycles shortfall, TimePoint)>;
  void SetDeadlineMissFn(DeadlineMissFn fn) { miss_fn_ = std::move(fn); }

  const std::vector<SimThread*>& threads() const { return threads_; }

 private:
  bool HasReservation(const SimThread* t) const {
    return t->policy() == SchedPolicy::kReservation && !t->proportion().IsZero();
  }
  void Replenish(SimThread* thread, TimePoint now);

  const Cpu& cpu_;
  RbsConfig config_;
  std::vector<SimThread*> threads_;
  DeadlineMissFn miss_fn_;
  size_t rr_cursor_ = 0;  // Round-robin position among non-reserved threads.
};

}  // namespace realrate

#endif  // REALRATE_SCHED_RBS_H_
