#include "sched/fixed_priority.h"

#include <algorithm>

#include "util/assert.h"

namespace realrate {

void FixedPriorityScheduler::AddThread(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  threads_.push_back(thread);
}

void FixedPriorityScheduler::RemoveThread(SimThread* thread) {
  threads_.erase(std::remove(threads_.begin(), threads_.end(), thread), threads_.end());
}

void FixedPriorityScheduler::OnTick(TimePoint /*now*/) {
  // Rotate the round-robin cursor so equal-priority threads alternate tick by tick.
  if (!threads_.empty()) {
    rr_cursor_ = (rr_cursor_ + 1) % threads_.size();
  }
}

void FixedPriorityScheduler::OnTicksSkipped(int64_t count, TimePoint /*now*/) {
  // Closed form of `count` cursor rotations (the thread set cannot change while the
  // machine is suspended, so the modulus is stable across the whole skipped run).
  if (!threads_.empty()) {
    rr_cursor_ = (rr_cursor_ + static_cast<size_t>(count)) % threads_.size();
  }
}

SimThread* FixedPriorityScheduler::PickNext(TimePoint /*now*/) {
  SimThread* best = nullptr;
  const size_t n = threads_.size();
  for (size_t i = 0; i < n; ++i) {
    SimThread* t = threads_[(rr_cursor_ + i) % n];
    if (!t->IsRunnable()) {
      continue;
    }
    if (best == nullptr || t->priority() > best->priority()) {
      best = t;
    }
  }
  return best;
}

Cycles FixedPriorityScheduler::MaxGrant(SimThread* /*thread*/, Cycles tick_remaining) {
  return tick_remaining;
}

void FixedPriorityScheduler::OnRan(SimThread* /*thread*/, Cycles /*used*/, TimePoint /*now*/) {}

std::optional<TimePoint> FixedPriorityScheduler::ThrottleUntil(SimThread* /*thread*/,
                                                               TimePoint /*now*/) {
  return std::nullopt;  // Fixed priorities never throttle: that is exactly the problem.
}

}  // namespace realrate
