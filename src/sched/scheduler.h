// Scheduler: the dispatch-time policy interface. The Machine (machine.h) owns thread
// state transitions and the timeline; a Scheduler only orders runnable threads and
// accounts budgets. This split mirrors the paper's "dispatcher" (low-level, runs at
// dispatch time) versus policy distinction.
//
// Ownership: a Scheduler instance is one core's run queue. It does not own the
// SimThreads it orders (the ThreadRegistry does) and holds no reference to the
// Machine; on an SMP machine there is one instance per core, each seeing only the
// threads the Machine placed (or migrated) there.
//
// Units: all cycle quantities (MaxGrant, OnRan, tick_remaining) are simulated Cycles;
// all times are virtual TimePoints. Grants are clipped against per-period budgets
// derived from Proportion (parts-per-thousand of the owning core).
//
// Thread-safety: none — every method is invoked from single-threaded simulator
// events (the owning core's tick, or wake/block transitions routed by the Machine).
// Implementations must be deterministic: PickNext ties are broken by thread id.
#ifndef REALRATE_SCHED_SCHEDULER_H_
#define REALRATE_SCHED_SCHEDULER_H_

#include <optional>

#include "task/thread.h"
#include "util/time.h"
#include "util/types.h"

namespace realrate {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual const char* name() const = 0;

  virtual void AddThread(SimThread* thread) = 0;
  virtual void RemoveThread(SimThread* thread) = 0;

  // Called once at each timer tick before dispatching (replenish budgets, recalculate
  // counters...).
  virtual void OnTick(TimePoint now) = 0;

  // Idle fast-forward catch-up (see Machine): the machine skipped `count` ticks, all
  // of which would have found no runnable thread, and the last of which would have
  // run at `now`. Must leave the scheduler in the state `count` OnTick calls ending
  // at `now` would have, given that no thread was runnable throughout. The default
  // replays OnTick literally; implementations with cheaper closed forms override.
  virtual void OnTicksSkipped(int64_t count, TimePoint now) {
    for (int64_t i = 0; i < count; ++i) {
      OnTick(now);
    }
  }

  // The dispatch decision: the runnable thread with the highest goodness, or nullptr if
  // nothing is runnable. Must be deterministic.
  virtual SimThread* PickNext(TimePoint now) = 0;

  // Upper bound on the cycles `thread` may receive right now (budget clipping).
  // `tick_remaining` is the cycle budget left in the current dispatch interval.
  virtual Cycles MaxGrant(SimThread* thread, Cycles tick_remaining) = 0;

  // Upper bound on the TOTAL cycles `thread` could be granted across one whole
  // dispatch tick of `tick_cycles` capacity, robust to anything OnTick may do first
  // (budget replenishment above all). The Machine's mailbox gate sizes round queue
  // plans with this BEFORE the tick runs, so it must hold for the tick that follows.
  // The trivial bound — the full tick — is always correct; policies that clip grants
  // against per-period budgets override it to tighten the plans.
  virtual Cycles RoundCycleBound(const SimThread* /*thread*/, Cycles tick_cycles) const {
    return tick_cycles;
  }

  // Accounting after `thread` consumed `used` cycles.
  virtual void OnRan(SimThread* thread, Cycles used, TimePoint now) = 0;

  // After OnRan: if the policy wants the thread off the CPU until a future time (RBS
  // budget exhaustion -> sleep until next period), return that time.
  virtual std::optional<TimePoint> ThrottleUntil(SimThread* thread, TimePoint now) = 0;

  // State-change notifications.
  virtual void OnWake(SimThread* /*thread*/, TimePoint /*now*/) {}
  virtual void OnBlock(SimThread* /*thread*/, TimePoint /*now*/) {}
};

}  // namespace realrate

#endif  // REALRATE_SCHED_SCHEDULER_H_
