#include "sched/rbs.h"

#include <algorithm>

#include "util/assert.h"

namespace realrate {

namespace {
// Reserved threads always outrank non-reserved ones. The goodness of a reserved thread
// with remaining budget is this base plus a rate-monotonic bonus; non-reserved threads
// score in [1, kRmBase).
constexpr int64_t kRmBase = int64_t{1} << 40;

// The rate-monotonic bonus is PeriodRank (task/thread_slabs.h): periods-per-hour,
// shared by Goodness (the reference semantics), the pick index (the incrementally
// maintained key), and the slab rm_rank column, so no consumer can disagree on
// ordering.
int64_t RmRank(const SimThread* thread) { return PeriodRank(thread->period()); }
}  // namespace

RbsScheduler::RbsScheduler(const Cpu& cpu, const RbsConfig& config) : cpu_(cpu), config_(config) {
  // Normalize the mode: the legacy use_indexed_pick = false wins (the pre-index
  // reference build), and shadow mode must exercise the index it validates, so kAuto
  // hardens to kIndexed under shadow_check.
  if (!config_.use_indexed_pick) {
    config_.pick_mode = PickMode::kReference;
  } else if (config_.pick_mode == PickMode::kAuto && config_.shadow_check) {
    config_.pick_mode = PickMode::kIndexed;
  }
  indexing_on_ = config_.pick_mode == PickMode::kIndexed;
}

RbsScheduler::~RbsScheduler() {
  for (auto& [thread, node] : nodes_) {
    if (thread->sched_slot() == &node) {
      thread->set_sched_slot(nullptr);
    }
  }
}

RbsScheduler::Node* RbsScheduler::FindNode(SimThread* thread) {
  // The slot is a cache of &nodes_[thread], valid only when this instance owns the
  // thread's run-queue membership — one pointer read instead of a hash lookup on
  // every OnRan/OnBlock/OnWake along the dispatch hot path.
  auto* node = static_cast<Node*>(thread->sched_slot());
  return node != nullptr && node->owner == this ? node : nullptr;
}

void RbsScheduler::Reindex(SimThread* thread) {
  if (!indexing_on_) {
    return;  // Reference mode: no index to maintain (the A/B stays a fair fight).
  }
  Node* node = FindNode(thread);
  if (node == nullptr) {
    return;  // Not scheduled here (e.g. cross-core actuation); nothing to maintain.
  }
  const ThreadState state = thread->state();
  // kRunning is transient within one dispatch iteration; by the next PickNext the
  // thread is back to kRunnable or has left through an OnBlock/RemoveThread hook, so
  // counting it "active" keeps the index exact at every pick.
  const bool active = state == ThreadState::kRunnable || state == ThreadState::kRunning;
  const bool reserved = HasReservation(thread);

  if (node->counted_runnable) {
    --(node->counted_reserved ? runnable_reserved_ : runnable_unreserved_);
  }
  node->counted_runnable = active;
  node->counted_reserved = reserved;
  if (active) {
    ++(reserved ? runnable_reserved_ : runnable_unreserved_);
  }

  const bool eligible = active && reserved && thread->budget_remaining() > 0;
  int64_t primary = 0;
  if (eligible) {
    primary = config_.order == DispatchOrder::kEarliestDeadlineFirst
                  ? (thread->period_start() + thread->period()).nanos()
                  : -RmRank(thread);
  }
  if (node->in_pick_index) {
    if (eligible && primary == node->pick_primary) {
      return;  // Membership and key unchanged: the common OnRan case, O(1).
    }
    node->in_pick_index = false;  // The heap entry is now stale (generation mismatch).
    if (node->pick_slot != ThreadSlabs::kNoSlot) {
      pick_gen_by_slot_[static_cast<size_t>(node->pick_slot)] = 0;
    }
    --pick_live_;
  }
  if (eligible) {
    node->pick_gen = next_gen_++;
    const int32_t slot = slabs_ != nullptr && thread->bound_slabs() == slabs_
                             ? thread->slab_slot()
                             : ThreadSlabs::kNoSlot;
    node->pick_slot = slot;
    if (slot != ThreadSlabs::kNoSlot) {
      if (static_cast<size_t>(slot) >= pick_gen_by_slot_.size()) {
        pick_gen_by_slot_.resize(static_cast<size_t>(slot) + 1, 0);
      }
      pick_gen_by_slot_[static_cast<size_t>(slot)] = node->pick_gen;
    }
    pick_index_.push_back(PickKey{primary, node->seq, node->pick_gen, slot, thread});
    std::push_heap(pick_index_.begin(), pick_index_.end(), std::greater<PickKey>{});
    node->pick_primary = primary;
    node->in_pick_index = true;
    ++pick_live_;
  }
  if (pick_index_.size() > 64 &&
      pick_index_.size() > 4 * static_cast<size_t>(pick_live_)) {
    CompactPickIndex();
  }
}

void RbsScheduler::CompactPickIndex() {
  std::erase_if(pick_index_, [this](const PickKey& key) { return !PickEntryCurrent(key); });
  std::make_heap(pick_index_.begin(), pick_index_.end(), std::greater<PickKey>{});
  RR_CHECK(pick_index_.size() == static_cast<size_t>(pick_live_));
}

void RbsScheduler::RearmReplenish(SimThread* thread, Node& node) {
  node.replenish_gen = next_gen_++;  // Any older due-heap entry is now stale.
  // With full slab coverage OnTick replenishes off the deadline column instead of
  // the due-heap (see OnTick), so feeding the heap would only grow garbage.
  if (indexing_on_ && !UseColumns() && HasReservation(thread)) {
    due_.push(DueEntry{thread->period_start() + thread->period(), node.seq,
                       node.replenish_gen, thread});
  }
}

void RbsScheduler::ActivateIndexing() {
  // Rebuild the pick index, occupancy counts, and due-heap from the thread vector.
  // Reads only; no thread state changes, so the schedule is unaffected. The counts
  // are zero here: they are only maintained while indexing is on, and Deactivate
  // (or construction) zeroed them.
  indexing_on_ = true;
  for (SimThread* t : threads_) {
    Node* node = FindNode(t);
    RR_CHECK(node != nullptr);
    RearmReplenish(t, *node);
    Reindex(t);
  }
}

void RbsScheduler::DeactivateIndexing() {
  indexing_on_ = false;
  pick_index_.clear();
  pick_live_ = 0;
  std::fill(pick_gen_by_slot_.begin(), pick_gen_by_slot_.end(), 0);
  due_ = {};  // Entries would die by generation anyway; drop them wholesale.
  runnable_unreserved_ = 0;
  runnable_reserved_ = 0;
  for (auto& [thread, node] : nodes_) {
    node.in_pick_index = false;
    node.counted_runnable = false;
  }
}

void RbsScheduler::MaybeSwitchIndexing() {
  if (config_.pick_mode != PickMode::kAuto) {
    return;
  }
  const int n = static_cast<int>(threads_.size());
  if (!indexing_on_ && n >= config_.auto_index_threshold) {
    ActivateIndexing();
  } else if (indexing_on_ && n < config_.auto_index_threshold / 2) {
    DeactivateIndexing();
  }
}

void RbsScheduler::AddThread(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(std::find(threads_.begin(), threads_.end(), thread) == threads_.end());
  const bool had_columns = UseColumns();
  threads_.push_back(thread);
  const int32_t slot = thread->slab_slot();
  if (slot != ThreadSlabs::kNoSlot &&
      (slabs_ == nullptr || slabs_ == thread->bound_slabs())) {
    slabs_ = thread->bound_slabs();
    slots_.push_back(slot);
  } else {
    slots_.push_back(ThreadSlabs::kNoSlot);  // Unbound (or foreign slab): no columns.
    ++unbound_;
  }
  if (indexing_on_ && had_columns && !UseColumns()) {
    // This thread just broke column coverage: OnTick falls back to the due-heap,
    // which sat empty while the column sweep replenished. Re-arm every enqueued
    // thread so the heap has a current entry per reservation again.
    for (SimThread* t : threads_) {
      if (Node* n = FindNode(t)) {
        RearmReplenish(t, *n);
      }
    }
  }
  Node& node = nodes_[thread];  // Node-based container: the address is stable.
  node.owner = this;
  node.seq = next_seq_++;
  thread->set_sched_slot(&node);
  RearmReplenish(thread, node);
  Reindex(thread);
  MaybeSwitchIndexing();
}

void RbsScheduler::RemoveThread(SimThread* thread) {
  const auto it = std::find(threads_.begin(), threads_.end(), thread);
  if (it != threads_.end()) {
    const size_t idx = static_cast<size_t>(it - threads_.begin());
    if (slots_[idx] == ThreadSlabs::kNoSlot) {
      --unbound_;
    }
    threads_.erase(it);
    slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(idx));
  }
  Node* node = FindNode(thread);
  if (node == nullptr) {
    return;
  }
  if (node->in_pick_index) {
    node->in_pick_index = false;  // Heap entry dies lazily (and by FindNode below).
    if (node->pick_slot != ThreadSlabs::kNoSlot) {
      pick_gen_by_slot_[static_cast<size_t>(node->pick_slot)] = 0;
    }
    --pick_live_;
  }
  if (node->counted_runnable) {
    --(node->counted_reserved ? runnable_reserved_ : runnable_unreserved_);
  }
  thread->set_sched_slot(nullptr);
  nodes_.erase(thread);  // Orphaned due-heap entries die by generation mismatch.
  MaybeSwitchIndexing();
}

Cycles RbsScheduler::PeriodBudget(const SimThread* thread) const {
  return static_cast<Cycles>(thread->proportion().ToFraction() *
                             static_cast<double>(cpu_.DurationToCycles(thread->period())));
}

void RbsScheduler::Replenish(SimThread* thread, TimePoint now) {
  // Advance whole periods until `now` falls inside the current one.
  TimePoint start = thread->period_start();
  const Duration period = thread->period();
  if (now < start + period) {
    return;
  }
  // Deadline check for the period that just closed: a thread that was runnable for the
  // whole period (it did not wake mid-period) and is still runnable at the boundary
  // wanted more CPU than it received; if it also fell short of the budget it was
  // entitled to at the period's start, the scheduler failed to deliver the reservation.
  const Cycles entitled = thread->period_entitlement();
  if (thread->state() == ThreadState::kRunnable && thread->last_wake_time() <= start &&
      thread->cycles_this_period() < entitled) {
    thread->CountDeadlineMiss();
    if (miss_fn_) {
      miss_fn_(thread, entitled - thread->cycles_this_period(), now);
    }
  }
  while (now >= start + period) {
    start += period;
  }
  const Cycles budget = PeriodBudget(thread);
  thread->set_period_start(start);
  thread->set_budget_remaining(budget);
  thread->set_period_entitlement(budget);
  thread->ResetPeriodCycles();
  if (Node* node = FindNode(thread)) {
    RearmReplenish(thread, *node);
  }
  Reindex(thread);
}

void RbsScheduler::OnTick(TimePoint now) {
  if (!indexing_on_) {
    // Reference mode: the original per-tick O(n) replenish scan. With slab columns
    // the scan pre-filters on the deadline column — Replenish's own early-out
    // condition (now < period_start + period, i.e. now_ns < deadline_nanos) — so the
    // common not-due tick streams three small columns and touches no thread object.
    if (UseColumns()) {
      const int64_t now_ns = now.nanos();
      const size_t n = slots_.size();
      for (size_t i = 0; i < n; ++i) {
        const int32_t s = slots_[i];
        if (slabs_->policy(s) == SchedPolicy::kReservation && slabs_->granted_ppt(s) != 0 &&
            slabs_->deadline_nanos(s) <= now_ns) {
          Replenish(threads_[i], now);
        }
      }
      return;
    }
    for (SimThread* t : threads_) {
      if (HasReservation(t)) {
        Replenish(t, now);
      }
    }
    return;
  }
  if (UseColumns()) {
    // Indexed mode with full slab coverage: the deadline-column sweep replaces the
    // due-heap — one streaming pass over three small columns per tick instead of
    // two O(log n) heap sifts per thread-period. `threads_` order is admission
    // (seq) order — RemoveThread erases and AddThread appends with a fresh seq —
    // so the replenish order matches the due-heap path's seq sort exactly.
    const int64_t now_ns = now.nanos();
    const size_t n = slots_.size();
    for (size_t i = 0; i < n; ++i) {
      const int32_t s = slots_[i];
      if (slabs_->policy(s) == SchedPolicy::kReservation && slabs_->granted_ppt(s) != 0 &&
          slabs_->deadline_nanos(s) <= now_ns) {
        Replenish(threads_[i], now);
      }
    }
    return;
  }
  // Pop every due (and still-current) replenishment, then apply them in admission
  // order — the order the original per-tick scan over `threads_` replenished in, which
  // the deadline-miss callbacks can observe. `due_now_` is a reused member buffer so
  // the common tick allocates nothing.
  due_now_.clear();
  while (!due_.empty() && due_.top().due <= now) {
    const DueEntry entry = due_.top();
    due_.pop();
    const Node* node = FindNode(entry.thread);
    if (node == nullptr || node->replenish_gen != entry.gen) {
      continue;  // Stale: reservation changed or thread left since this was armed.
    }
    due_now_.push_back(entry);
  }
  std::sort(due_now_.begin(), due_now_.end(),
            [](const DueEntry& a, const DueEntry& b) { return a.seq < b.seq; });
  for (const DueEntry& entry : due_now_) {
    Replenish(entry.thread, now);
  }
}

void RbsScheduler::OnTicksSkipped(int64_t /*count*/, TimePoint now) {
  // Replenish is written to catch up across any number of elapsed periods, and the
  // deadline-miss check cannot fire while nothing is runnable, so one due-driven pass
  // at the final skipped tick reproduces `count` per-tick passes exactly.
  OnTick(now);
}

void RbsScheduler::OnWake(SimThread* thread, TimePoint /*now*/) { Reindex(thread); }

void RbsScheduler::OnBlock(SimThread* thread, TimePoint /*now*/) { Reindex(thread); }

int64_t RbsScheduler::Goodness(const SimThread* thread) const {
  if (!thread->IsRunnable() && thread->state() != ThreadState::kRunning) {
    return 0;
  }
  if (HasReservation(thread)) {
    if (thread->budget_remaining() <= 0) {
      return 0;  // Used its allocation; sleeps until next period.
    }
    // Rate-monotonic: shorter period => higher goodness.
    return kRmBase + RmRank(thread);
  }
  // Non-reserved: modest goodness so they run only when no reserved thread can.
  return 1;
}

SimThread* RbsScheduler::PickReservedReference(TimePoint /*now*/) {
  // The original O(n) scan. Reserved threads first. Rate-monotonic: highest goodness
  // (shortest period). EDF: earliest deadline, where a thread's deadline is the end of
  // its current period. Ties broken by scan position — arrival order — matching the
  // pick index's sequence-number tiebreak.
  //
  // Column variant: same scan, same order, same strict comparisons, reading the slab
  // columns (state, policy, ppt, budget, rank/deadline) instead of five scattered
  // SimThread cachelines per candidate.
  if (UseColumns()) {
    SimThread* best = nullptr;
    const size_t n = slots_.size();
    if (config_.order == DispatchOrder::kEarliestDeadlineFirst) {
      int64_t best_deadline = TimePoint::Max().nanos();
      for (size_t i = 0; i < n; ++i) {
        const int32_t s = slots_[i];
        if (slabs_->state(s) != ThreadState::kRunnable ||
            slabs_->policy(s) != SchedPolicy::kReservation || slabs_->granted_ppt(s) == 0 ||
            slabs_->budget(s) <= 0) {
          continue;
        }
        const int64_t deadline = slabs_->deadline_nanos(s);
        if (deadline < best_deadline) {
          best = threads_[i];
          best_deadline = deadline;
        }
      }
      return best;
    }
    int64_t best_rank = -1;  // Any reserved candidate (rank >= 0) beats "none".
    for (size_t i = 0; i < n; ++i) {
      const int32_t s = slots_[i];
      if (slabs_->state(s) != ThreadState::kRunnable ||
          slabs_->policy(s) != SchedPolicy::kReservation || slabs_->granted_ppt(s) == 0 ||
          slabs_->budget(s) <= 0) {
        continue;
      }
      const int64_t rank = slabs_->rm_rank(s);
      if (rank > best_rank) {
        best = threads_[i];
        best_rank = rank;
      }
    }
    return best;
  }
  SimThread* best = nullptr;
  if (config_.order == DispatchOrder::kEarliestDeadlineFirst) {
    TimePoint best_deadline = TimePoint::Max();
    for (SimThread* t : threads_) {
      if (!t->IsRunnable() || !HasReservation(t) || t->budget_remaining() <= 0) {
        continue;
      }
      const TimePoint deadline = t->period_start() + t->period();
      if (deadline < best_deadline) {
        best = t;
        best_deadline = deadline;
      }
    }
    return best;
  }
  int64_t best_goodness = 0;
  for (SimThread* t : threads_) {
    if (!t->IsRunnable()) {
      continue;
    }
    const int64_t g = Goodness(t);
    if (g > best_goodness) {
      best = t;
      best_goodness = g;
    }
  }
  return best_goodness >= kRmBase ? best : nullptr;
}

SimThread* RbsScheduler::PickReservedIndexed() {
  // Drain lazily deleted entries off the top; each is popped exactly once, so the
  // cost amortizes against the Reindex that staled it. The first current entry is
  // the (primary, seq) minimum over all current entries — identical to what the
  // ordered-set begin() returned.
  while (!pick_index_.empty()) {
    const PickKey top = pick_index_.front();
    if (PickEntryCurrent(top)) {
      // Index-integrity check: every mutation that can change eligibility must have
      // gone through a Reindex hook; a wrong entry here means a change bypassed them.
      RR_CHECK(top.thread->IsRunnable() && HasReservation(top.thread) &&
               top.thread->budget_remaining() > 0);
      return top.thread;
    }
    std::pop_heap(pick_index_.begin(), pick_index_.end(), std::greater<PickKey>{});
    pick_index_.pop_back();
  }
  return nullptr;
}

bool RbsScheduler::PickEntryCurrent(const PickKey& key) {
  if (key.slot != ThreadSlabs::kNoSlot) {
    // One dense word per slot instead of a pointer chase through the thread record.
    return pick_gen_by_slot_[static_cast<size_t>(key.slot)] == key.gen;
  }
  const Node* node = FindNode(key.thread);
  return node != nullptr && node->in_pick_index && node->pick_gen == key.gen;
}

bool RbsScheduler::HasFallbackCandidate() const {
  if (UseColumns()) {
    for (const int32_t s : slots_) {
      if (slabs_->state(s) != ThreadState::kRunnable) {
        continue;
      }
      const bool reserved =
          slabs_->policy(s) == SchedPolicy::kReservation && slabs_->granted_ppt(s) != 0;
      const bool exhausted_reserved = reserved && slabs_->budget(s) <= 0;
      if (exhausted_reserved && !config_.work_conserving) {
        continue;
      }
      if (!exhausted_reserved && reserved) {
        continue;
      }
      return true;
    }
    return false;
  }
  for (SimThread* t : threads_) {
    if (!t->IsRunnable()) {
      continue;
    }
    const bool exhausted_reserved = HasReservation(t) && t->budget_remaining() <= 0;
    if (exhausted_reserved && !config_.work_conserving) {
      continue;
    }
    if (!exhausted_reserved && HasReservation(t)) {
      continue;
    }
    return true;
  }
  return false;
}

SimThread* RbsScheduler::PickFallbackRoundRobin() {
  // No reserved thread can run: round-robin over the remaining runnables (non-reserved
  // threads, plus exhausted reserved threads when work-conserving). Verbatim from the
  // original scan — the cursor is positional, so this path stays O(n) but is gated by
  // the occupancy counts in PickNext and only runs when it will find work. slots_ is
  // index-aligned with threads_, so the column variant's cursor arithmetic and scan
  // order are identical to the pointer scan's.
  const size_t n = threads_.size();
  if (UseColumns()) {
    for (size_t i = 0; i < n; ++i) {
      const size_t idx = (rr_cursor_ + i) % n;
      const int32_t s = slots_[idx];
      if (slabs_->state(s) != ThreadState::kRunnable) {
        continue;
      }
      const bool reserved =
          slabs_->policy(s) == SchedPolicy::kReservation && slabs_->granted_ppt(s) != 0;
      const bool exhausted_reserved = reserved && slabs_->budget(s) <= 0;
      if (exhausted_reserved && !config_.work_conserving) {
        continue;
      }
      if (!exhausted_reserved && reserved) {
        continue;  // Has budget; already considered above.
      }
      rr_cursor_ = (idx + 1) % n;
      return threads_[idx];
    }
    return nullptr;
  }
  for (size_t i = 0; i < n; ++i) {
    SimThread* t = threads_[(rr_cursor_ + i) % n];
    if (!t->IsRunnable()) {
      continue;
    }
    const bool exhausted_reserved = HasReservation(t) && t->budget_remaining() <= 0;
    if (exhausted_reserved && !config_.work_conserving) {
      continue;
    }
    if (!exhausted_reserved && HasReservation(t)) {
      continue;  // Has budget; already considered above.
    }
    rr_cursor_ = (rr_cursor_ + i + 1) % n;
    return t;
  }
  return nullptr;
}

SimThread* RbsScheduler::PickNext(TimePoint now) {
  SimThread* pick = nullptr;
  if (indexing_on_) {
    pick = PickReservedIndexed();
    if (config_.shadow_check) {
      // Shadow-scheduler mode: the reference scan runs alongside (side-effect-free)
      // and must agree with the index at every dispatch; the pick's slab columns
      // must agree with its object fields.
      SimThread* reference = PickReservedReference(now);
      RR_CHECK(pick == reference);
      if (pick != nullptr && slabs_ != nullptr && pick->bound_slabs() == slabs_) {
        RR_CHECK(slabs_->MatchesObject(*pick));
      }
      ++shadow_checks_;
    }
  } else {
    pick = PickReservedReference(now);
  }
  if (pick != nullptr) {
    return pick;
  }
  if (indexing_on_) {
    // Secondary (occupancy) index: skip the positional fallback scan outright when no
    // round-robin candidate exists — the common case in a farm of blocked threads.
    // Reserved threads with budget are all in the (empty, or we would not be here)
    // pick index, so runnable_reserved_ now counts only exhausted ones.
    const bool have_unreserved = runnable_unreserved_ > 0;
    const bool have_exhausted = config_.work_conserving && runnable_reserved_ > 0;
    if (config_.shadow_check) {
      RR_CHECK((have_unreserved || have_exhausted) == HasFallbackCandidate());
    }
    if (!have_unreserved && !have_exhausted) {
      return nullptr;
    }
  }
  return PickFallbackRoundRobin();
}

SimThread* RbsScheduler::PickNextReference(TimePoint now) {
  SimThread* pick = PickReservedReference(now);
  if (pick != nullptr) {
    return pick;
  }
  return PickFallbackRoundRobin();
}

Cycles RbsScheduler::MaxGrant(SimThread* thread, Cycles tick_remaining) {
  if (HasReservation(thread) && thread->budget_remaining() > 0) {
    return std::min(tick_remaining, thread->budget_remaining());
  }
  return tick_remaining;
}

Cycles RbsScheduler::RoundCycleBound(const SimThread* thread, Cycles tick_cycles) const {
  // In work-conserving mode an exhausted reservation may still absorb the whole
  // tick, so only the non-work-conserving case can tighten the bound. MaxGrant clips
  // every grant against budget_remaining, but the gate evaluates BEFORE OnTick runs:
  // a period boundary inside the tick replenishes the budget to PeriodBudget, so the
  // sound per-tick ceiling is whichever of the two is larger (a replenishment resets
  // to exactly PeriodBudget; it never adds to a remainder).
  if (config_.work_conserving || !HasReservation(thread)) {
    return tick_cycles;
  }
  const Cycles ceiling = std::max(thread->budget_remaining(), PeriodBudget(thread));
  return std::min(tick_cycles, ceiling);
}

void RbsScheduler::OnRan(SimThread* thread, Cycles used, TimePoint /*now*/) {
  if (HasReservation(thread)) {
    thread->set_budget_remaining(std::max<Cycles>(0, thread->budget_remaining() - used));
    Reindex(thread);  // O(1) unless the budget just hit zero.
  }
}

std::optional<TimePoint> RbsScheduler::ThrottleUntil(SimThread* thread, TimePoint /*now*/) {
  if (!HasReservation(thread) || config_.work_conserving) {
    return std::nullopt;
  }
  if (thread->budget_remaining() > 0) {
    return std::nullopt;
  }
  // "When a thread has used its allocation for its period, it is put to sleep until its
  // next period begins."
  return thread->period_start() + thread->period();
}

void RbsScheduler::SetReservation(SimThread* thread, Proportion proportion, Duration period,
                                  TimePoint now) {
  RR_EXPECTS(thread != nullptr);
  // A thread enqueued on some scheduler must be actuated through that instance —
  // its indexed run-queue state lives there (route via the thread's core, as
  // FeedbackAllocator::SchedulerFor does). A thread enqueued nowhere may be actuated
  // by any instance (reservation state lives on the thread).
  RR_EXPECTS(thread->sched_slot() == nullptr || FindNode(thread) != nullptr);
  const bool was_reserved = HasReservation(thread);
  const bool fresh =
      thread->policy() != SchedPolicy::kReservation || thread->period() != period;
  thread->set_policy(SchedPolicy::kReservation);
  thread->SetReservation(proportion, period);
  if (fresh) {
    // New reservation or new period: start a fresh period at `now`.
    thread->set_period_start(now);
    thread->set_budget_remaining(PeriodBudget(thread));
    thread->set_period_entitlement(PeriodBudget(thread));
    thread->ResetPeriodCycles();
  } else {
    // Proportion-only change (the controller's common actuation): keep the current
    // period phase and recompute the remaining budget as if the new proportion had
    // applied all period — full new budget minus what was already consumed. Stateless
    // in the history of intra-period updates, so an oscillating controller cannot
    // accumulate a budget bias.
    thread->set_budget_remaining(
        std::max<Cycles>(0, PeriodBudget(thread) - thread->cycles_this_period()));
  }
  if (Node* node = FindNode(thread)) {
    // The due time (period_start + period) only moves on the fresh path; rearming on
    // proportion-only actuations would churn the due-heap once per controller run per
    // thread for nothing. A reservation appearing or vanishing (proportion zero <->
    // nonzero) changes whether a due entry should exist at all, so it rearms too.
    if (fresh || was_reserved != HasReservation(thread)) {
      RearmReplenish(thread, *node);
    }
    Reindex(thread);
  }
}

void RbsScheduler::ApplyReservations(const std::vector<ReservationUpdate>& batch,
                                     TimePoint now) {
  for (const ReservationUpdate& update : batch) {
    SetReservation(update.thread, update.proportion, update.period, now);
  }
}

Proportion RbsScheduler::TotalReserved() const {
  if (UseColumns()) {
    int32_t total_ppt = 0;
    for (const int32_t s : slots_) {
      if (slabs_->policy(s) == SchedPolicy::kReservation) {
        total_ppt += slabs_->granted_ppt(s);
      }
    }
    return Proportion::Ppt(total_ppt);
  }
  Proportion total = Proportion::Zero();
  for (const SimThread* t : threads_) {
    if (t->policy() == SchedPolicy::kReservation) {
      total += t->proportion();
    }
  }
  return total;
}

}  // namespace realrate
