#include "sched/rbs.h"

#include <algorithm>

#include "util/assert.h"

namespace realrate {

namespace {
// Reserved threads always outrank non-reserved ones. The goodness of a reserved thread
// with remaining budget is this base plus a rate-monotonic bonus; non-reserved threads
// score in [1, kRmBase).
constexpr int64_t kRmBase = int64_t{1} << 40;
}  // namespace

RbsScheduler::RbsScheduler(const Cpu& cpu, const RbsConfig& config) : cpu_(cpu), config_(config) {}

void RbsScheduler::AddThread(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(std::find(threads_.begin(), threads_.end(), thread) == threads_.end());
  threads_.push_back(thread);
}

void RbsScheduler::RemoveThread(SimThread* thread) {
  threads_.erase(std::remove(threads_.begin(), threads_.end(), thread), threads_.end());
}

Cycles RbsScheduler::PeriodBudget(const SimThread* thread) const {
  return static_cast<Cycles>(thread->proportion().ToFraction() *
                             static_cast<double>(cpu_.DurationToCycles(thread->period())));
}

void RbsScheduler::Replenish(SimThread* thread, TimePoint now) {
  // Advance whole periods until `now` falls inside the current one.
  TimePoint start = thread->period_start();
  const Duration period = thread->period();
  if (now < start + period) {
    return;
  }
  // Deadline check for the period that just closed: a thread that was runnable for the
  // whole period (it did not wake mid-period) and is still runnable at the boundary
  // wanted more CPU than it received; if it also fell short of the budget it was
  // entitled to at the period's start, the scheduler failed to deliver the reservation.
  const Cycles entitled = thread->period_entitlement();
  if (thread->state() == ThreadState::kRunnable && thread->last_wake_time() <= start &&
      thread->cycles_this_period() < entitled) {
    thread->CountDeadlineMiss();
    if (miss_fn_) {
      miss_fn_(thread, entitled - thread->cycles_this_period(), now);
    }
  }
  while (now >= start + period) {
    start += period;
  }
  const Cycles budget = PeriodBudget(thread);
  thread->set_period_start(start);
  thread->set_budget_remaining(budget);
  thread->set_period_entitlement(budget);
  thread->ResetPeriodCycles();
}

void RbsScheduler::OnTick(TimePoint now) {
  for (SimThread* t : threads_) {
    if (HasReservation(t)) {
      Replenish(t, now);
    }
  }
}

int64_t RbsScheduler::Goodness(const SimThread* thread) const {
  if (!thread->IsRunnable() && thread->state() != ThreadState::kRunning) {
    return 0;
  }
  if (HasReservation(thread)) {
    if (thread->budget_remaining() <= 0) {
      return 0;  // Used its allocation; sleeps until next period.
    }
    // Rate-monotonic: shorter period => higher goodness. The bonus is the period rank
    // expressed as periods-per-hour so that any realistic period (>= 1 ms) maps to a
    // positive, strictly rate-ordered value.
    const int64_t periods_per_hour = Duration::Seconds(3600) / thread->period();
    return kRmBase + periods_per_hour;
  }
  // Non-reserved: modest goodness so they run only when no reserved thread can.
  return 1;
}

SimThread* RbsScheduler::PickNext(TimePoint /*now*/) {
  // Reserved threads first. Rate-monotonic: highest goodness (shortest period). EDF:
  // earliest deadline, where a thread's deadline is the end of its current period.
  // Ties broken by id for determinism.
  SimThread* best = nullptr;
  if (config_.order == DispatchOrder::kEarliestDeadlineFirst) {
    TimePoint best_deadline = TimePoint::Max();
    for (SimThread* t : threads_) {
      if (!t->IsRunnable() || !HasReservation(t) || t->budget_remaining() <= 0) {
        continue;
      }
      const TimePoint deadline = t->period_start() + t->period();
      if (deadline < best_deadline) {
        best = t;
        best_deadline = deadline;
      }
    }
    if (best != nullptr) {
      return best;
    }
  } else {
    int64_t best_goodness = 0;
    for (SimThread* t : threads_) {
      if (!t->IsRunnable()) {
        continue;
      }
      const int64_t g = Goodness(t);
      if (g > best_goodness) {
        best = t;
        best_goodness = g;
      }
    }
    if (best != nullptr && best_goodness >= kRmBase) {
      return best;
    }
    best = nullptr;
  }
  // No reserved thread can run: round-robin over the remaining runnables (non-reserved
  // threads, plus exhausted reserved threads when work-conserving).
  const size_t n = threads_.size();
  for (size_t i = 0; i < n; ++i) {
    SimThread* t = threads_[(rr_cursor_ + i) % n];
    if (!t->IsRunnable()) {
      continue;
    }
    const bool exhausted_reserved = HasReservation(t) && t->budget_remaining() <= 0;
    if (exhausted_reserved && !config_.work_conserving) {
      continue;
    }
    if (!exhausted_reserved && HasReservation(t)) {
      continue;  // Has budget; already considered above.
    }
    rr_cursor_ = (rr_cursor_ + i + 1) % n;
    return t;
  }
  return best;  // nullptr, or a reserved thread found above (unreachable here).
}

Cycles RbsScheduler::MaxGrant(SimThread* thread, Cycles tick_remaining) {
  if (HasReservation(thread) && thread->budget_remaining() > 0) {
    return std::min(tick_remaining, thread->budget_remaining());
  }
  return tick_remaining;
}

void RbsScheduler::OnRan(SimThread* thread, Cycles used, TimePoint /*now*/) {
  if (HasReservation(thread)) {
    thread->set_budget_remaining(std::max<Cycles>(0, thread->budget_remaining() - used));
  }
}

std::optional<TimePoint> RbsScheduler::ThrottleUntil(SimThread* thread, TimePoint /*now*/) {
  if (!HasReservation(thread) || config_.work_conserving) {
    return std::nullopt;
  }
  if (thread->budget_remaining() > 0) {
    return std::nullopt;
  }
  // "When a thread has used its allocation for its period, it is put to sleep until its
  // next period begins."
  return thread->period_start() + thread->period();
}

void RbsScheduler::SetReservation(SimThread* thread, Proportion proportion, Duration period,
                                  TimePoint now) {
  RR_EXPECTS(thread != nullptr);
  const bool fresh =
      thread->policy() != SchedPolicy::kReservation || thread->period() != period;
  thread->set_policy(SchedPolicy::kReservation);
  thread->SetReservation(proportion, period);
  if (fresh) {
    // New reservation or new period: start a fresh period at `now`.
    thread->set_period_start(now);
    thread->set_budget_remaining(PeriodBudget(thread));
    thread->set_period_entitlement(PeriodBudget(thread));
    thread->ResetPeriodCycles();
  } else {
    // Proportion-only change (the controller's common actuation): keep the current
    // period phase and recompute the remaining budget as if the new proportion had
    // applied all period — full new budget minus what was already consumed. Stateless
    // in the history of intra-period updates, so an oscillating controller cannot
    // accumulate a budget bias.
    thread->set_budget_remaining(
        std::max<Cycles>(0, PeriodBudget(thread) - thread->cycles_this_period()));
  }
}

Proportion RbsScheduler::TotalReserved() const {
  Proportion total = Proportion::Zero();
  for (const SimThread* t : threads_) {
    if (t->policy() == SchedPolicy::kReservation) {
      total += t->proportion();
    }
  }
  return total;
}

}  // namespace realrate
