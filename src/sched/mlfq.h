// MlfqScheduler: the Linux 2.x multi-level-feedback baseline the paper builds on and
// argues against. One run queue; goodness = remaining time-slice counter + priority;
// when every runnable thread's counter reaches zero, counters for ALL threads are
// recalculated as counter = counter/2 + priority (so sleepers accumulate a boost —
// the classic "decrease the priority of CPU-bound jobs" kludge from §2).
#ifndef REALRATE_SCHED_MLFQ_H_
#define REALRATE_SCHED_MLFQ_H_

#include <optional>
#include <vector>

#include "sched/scheduler.h"
#include "sim/cpu.h"

namespace realrate {

struct MlfqConfig {
  // Default time slice in ticks (Linux 2.0: ~200 ms with 10 ms ticks => 20).
  int default_priority = 20;
  // Cap on the counter a long-time sleeper can accumulate.
  int max_counter = 2 * 20;
};

class MlfqScheduler : public Scheduler {
 public:
  MlfqScheduler(const Cpu& cpu, Duration tick, const MlfqConfig& config = MlfqConfig{});

  const char* name() const override { return "mlfq"; }

  void AddThread(SimThread* thread) override;
  void RemoveThread(SimThread* thread) override;
  void OnTick(TimePoint now) override;
  // OnTick is a no-op (recalculation happens lazily in PickNext), so skipped idle
  // ticks require no catch-up at all.
  void OnTicksSkipped(int64_t /*count*/, TimePoint /*now*/) override {}
  SimThread* PickNext(TimePoint now) override;
  Cycles MaxGrant(SimThread* thread, Cycles tick_remaining) override;
  void OnRan(SimThread* thread, Cycles used, TimePoint now) override;
  std::optional<TimePoint> ThrottleUntil(SimThread* thread, TimePoint now) override;

  // goodness(): counter-based; 0 when the slice is used up.
  int64_t Goodness(const SimThread* thread) const;
  int64_t recalculations() const { return recalculations_; }

 private:
  void RecalculateCounters();

  const Cpu& cpu_;
  const Duration tick_;
  MlfqConfig config_;
  std::vector<SimThread*> threads_;
  SimThread* slice_owner_ = nullptr;
  Cycles run_accum_ = 0;  // Cycles the current slice owner has consumed toward one tick.
  int64_t recalculations_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_SCHED_MLFQ_H_
