// FixedPriorityScheduler: POSIX-style fixed real-time priorities ("real-time"
// priorities in Linux/Solaris/NT, per the paper's related work). The highest-priority
// runnable thread always runs; equal priorities round-robin per tick. This is the
// baseline that livelocks on the spin-waiting example in §2 and starves low-priority
// threads — reproduced in bench_benefits_comparison.
#ifndef REALRATE_SCHED_FIXED_PRIORITY_H_
#define REALRATE_SCHED_FIXED_PRIORITY_H_

#include <optional>
#include <vector>

#include "sched/scheduler.h"

namespace realrate {

class FixedPriorityScheduler : public Scheduler {
 public:
  FixedPriorityScheduler() = default;

  const char* name() const override { return "fixed-priority"; }

  void AddThread(SimThread* thread) override;
  void RemoveThread(SimThread* thread) override;
  void OnTick(TimePoint now) override;
  void OnTicksSkipped(int64_t count, TimePoint now) override;
  SimThread* PickNext(TimePoint now) override;
  Cycles MaxGrant(SimThread* thread, Cycles tick_remaining) override;
  void OnRan(SimThread* thread, Cycles used, TimePoint now) override;
  std::optional<TimePoint> ThrottleUntil(SimThread* thread, TimePoint now) override;

 private:
  std::vector<SimThread*> threads_;
  size_t rr_cursor_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_SCHED_FIXED_PRIORITY_H_
