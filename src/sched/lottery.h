// LotteryScheduler: Waldspurger & Weihl's proportional-share baseline (related work
// [21]). Each tick holds a lottery among runnable threads weighted by tickets. Gives
// probabilistic proportional share — used in benches to contrast its allocation
// variance against the deterministic reservation scheduler (one of the paper's claimed
// benefits is "lower variance in the amount of cycles allocated to a thread").
#ifndef REALRATE_SCHED_LOTTERY_H_
#define REALRATE_SCHED_LOTTERY_H_

#include <optional>
#include <vector>

#include "sched/scheduler.h"
#include "util/rng.h"

namespace realrate {

class LotteryScheduler : public Scheduler {
 public:
  explicit LotteryScheduler(uint64_t seed);

  const char* name() const override { return "lottery"; }

  void AddThread(SimThread* thread) override;
  void RemoveThread(SimThread* thread) override;
  void OnTick(TimePoint now) override;
  // One OnTick is idempotent (it only clears the per-tick draw), so a skipped run of
  // idle ticks — during which no draw can have happened — collapses to a single call.
  void OnTicksSkipped(int64_t /*count*/, TimePoint now) override { OnTick(now); }
  SimThread* PickNext(TimePoint now) override;
  Cycles MaxGrant(SimThread* thread, Cycles tick_remaining) override;
  void OnRan(SimThread* thread, Cycles used, TimePoint now) override;
  std::optional<TimePoint> ThrottleUntil(SimThread* thread, TimePoint now) override;

 private:
  std::vector<SimThread*> threads_;
  Rng rng_;
  SimThread* tick_winner_ = nullptr;  // Winner drawn once per tick.
  bool drawn_this_tick_ = false;
};

}  // namespace realrate

#endif  // REALRATE_SCHED_LOTTERY_H_
