// ParallelEngine: the host-thread pool behind MachineConfig::host_threads — a
// reusable fork/join primitive for running one deterministic "round" of per-core
// work (the Machine's intra-tick dispatch loops) across N OS threads.
//
// Design (the Corey lesson from SNIPPETS.md applied to our own engine): workers
// share nothing during a round. Each item index (a simulated core) is owned by
// exactly one host thread for the round's duration; all cross-core effects are
// staged into per-core lanes by the caller and merged at the barrier on the
// coordinator thread, in fixed core order. The engine itself only provides the
// fork (round_seq_ bump) and the join (pending_ countdown) — both single atomics
// with C++20 atomic wait/notify, no mutexes, no per-item locks (Anderson's
// spin-lock results caution against anything contended in the hot loop).
//
// Determinism contract: RunRound(n, body) calls body(i) exactly once for every
// i in [0, n); the assignment of items to host threads is fixed (item i runs on
// thread i % host_threads), but body must not depend on which host thread runs
// it. The caller is responsible for body(i) touching only item-i-owned state.
//
// Thread-safety: RunRound must only be called from the thread that constructed
// the engine (the simulator's event-loop thread). Between rounds the workers are
// parked in atomic waits and touch nothing.
#ifndef REALRATE_SIM_PARALLEL_H_
#define REALRATE_SIM_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace realrate {

class ParallelEngine {
 public:
  // Spawns `host_threads - 1` workers (the caller's thread is the coordinator and
  // runs its share of every round). host_threads == 1 degenerates to inline
  // execution with no threads spawned.
  explicit ParallelEngine(int host_threads);
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;
  ~ParallelEngine();

  int host_threads() const { return host_threads_; }
  // Rounds that actually forked across threads (for tests/introspection).
  int64_t rounds_run() const { return rounds_run_; }

  // Runs body(0..num_items-1), each exactly once, returning after all complete
  // (the join is a full barrier: every worker's writes happen-before the return).
  // Runs inline when only one thread would participate.
  void RunRound(int num_items, const std::function<void(int)>& body);

 private:
  void WorkerMain(int participant);

  const int host_threads_;
  std::vector<std::thread> workers_;

  // Round handshake. Coordinator publishes {body_, num_items_} then bumps
  // round_seq_ (release); workers acquire it, run their strided share, and count
  // down pending_ (acq_rel); the coordinator's acquire load of pending_ == 0
  // completes the join.
  std::atomic<uint64_t> round_seq_{0};
  std::atomic<int> pending_{0};
  std::atomic<bool> stop_{false};
  const std::function<void(int)>* body_ = nullptr;
  int num_items_ = 0;
  int64_t rounds_run_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_SIM_PARALLEL_H_
