// Single-threaded discrete-event simulator: a virtual clock plus an event queue. All
// higher layers (dispatcher, controller, workloads) advance time only through this.
#ifndef REALRATE_SIM_SIMULATOR_H_
#define REALRATE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "sim/cpu.h"
#include "sim/event_queue.h"
#include "sim/trace.h"
#include "util/time.h"

namespace realrate {

class Simulator {
 public:
  explicit Simulator(const CpuConfig& cpu_config = CpuConfig{});

  TimePoint Now() const { return now_; }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  TraceRecorder& trace() { return trace_; }

  // Schedules `fn` at absolute time `t` (must not be in the past).
  EventId ScheduleAt(TimePoint t, EventQueue::Callback fn);
  // Schedules `fn` after `d` (must be non-negative).
  EventId ScheduleAfter(Duration d, EventQueue::Callback fn);
  bool Cancel(EventId id) { return events_.Cancel(id); }

  // Runs a single event; returns false if none pending.
  bool Step();
  // Runs all events with timestamps <= t, then sets the clock to t.
  void RunUntil(TimePoint t);
  void RunFor(Duration d) { RunUntil(now_ + d); }

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() { return events_.PendingCount(); }

 private:
  TimePoint now_ = TimePoint::Origin();
  EventQueue events_;
  Cpu cpu_;
  TraceRecorder trace_;
  uint64_t events_processed_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_SIM_SIMULATOR_H_
