// Single-threaded discrete-event simulator: a virtual clock plus an event queue. All
// higher layers (dispatcher, controller, workloads) advance time only through this.
//
// Ownership: the Simulator owns the virtual clock, the event queue, the trace
// recorder, and one Cpu accounting object per simulated core; everything else
// (Machine, schedulers, registries) borrows it by reference and must not outlive it.
//
// Units: TimePoint/Duration are virtual nanoseconds since TimePoint::Origin();
// nothing in the simulator reads wall-clock time. Cycles are converted to virtual
// time through Cpu::CyclesToDuration at the configured clock rate.
//
// Thread-safety: none — the whole simulation is single-(host-)threaded by design,
// which is what makes runs bit-for-bit deterministic. Multi-core machines are
// simulated by interleaving per-core dispatch events on this one event queue, not by
// host threads. Do not touch a Simulator from more than one host thread.
#ifndef REALRATE_SIM_SIMULATOR_H_
#define REALRATE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/cpu.h"
#include "sim/event_queue.h"
#include "sim/trace.h"
#include "util/time.h"

namespace realrate {

class Simulator {
 public:
  // A machine with `num_cpus` homogeneous cores (same CpuConfig each). The default is
  // the paper's uniprocessor.
  explicit Simulator(const CpuConfig& cpu_config = CpuConfig{}, int num_cpus = 1);

  TimePoint Now() const { return now_; }

  // Core accessors. `cpu()` with no argument is core 0 — the boot core — which keeps
  // every pre-SMP call site meaning exactly what it used to on a 1-core machine.
  Cpu& cpu(CpuId core = 0) {
    RR_EXPECTS(core >= 0 && static_cast<size_t>(core) < cpus_.size());
    return cpus_[static_cast<size_t>(core)];
  }
  const Cpu& cpu(CpuId core = 0) const {
    RR_EXPECTS(core >= 0 && static_cast<size_t>(core) < cpus_.size());
    return cpus_[static_cast<size_t>(core)];
  }
  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  // Cycles charged to `category` summed over every core.
  Cycles UsedAllCpus(CpuUse category) const;

  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  // Schedules `fn` at absolute time `t` (must not be in the past).
  EventId ScheduleAt(TimePoint t, EventQueue::Callback fn);
  // Schedules `fn` after `d` (must be non-negative).
  EventId ScheduleAfter(Duration d, EventQueue::Callback fn);
  bool Cancel(EventId id) { return events_.Cancel(id); }
  // Retires `id` (if still pending) and schedules `fn` at `t` in one call — the
  // decrease-key-free resched path for periodic clocks (dispatch ticks, timers).
  EventId Resched(EventId id, TimePoint t, EventQueue::Callback fn) {
    RR_EXPECTS(t >= now_);
    return events_.Resched(id, t, std::move(fn));
  }

  // Runs a single event; returns false if none pending.
  bool Step();
  // If the earliest pending event is exactly {id, t}, consumes it WITHOUT running its
  // callback (the caller runs the equivalent work itself) and returns true; otherwise
  // leaves the queue untouched and returns false. events_processed() counts a
  // consumed event like a stepped one, so the parallel engine's batched tick rounds
  // keep the same event accounting as the one-at-a-time reference engine.
  bool PopExpected(EventId id, TimePoint t);
  // Runs all events with timestamps <= t, then sets the clock to t.
  void RunUntil(TimePoint t);
  void RunFor(Duration d) { RunUntil(now_ + d); }

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() { return events_.PendingCount(); }

 private:
  TimePoint now_ = TimePoint::Origin();
  EventQueue events_;
  std::vector<Cpu> cpus_;
  TraceRecorder trace_;
  uint64_t events_processed_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_SIM_SIMULATOR_H_
