// Priority queue of timestamped events with stable FIFO ordering for equal timestamps
// and O(log n) cancellation (lazy deletion). The deterministic heart of the simulator.
#ifndef REALRATE_SIM_EVENT_QUEUE_H_
#define REALRATE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace realrate {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Enqueues `fn` to run at `when`. Events with equal `when` run in insertion order.
  EventId Push(TimePoint when, Callback fn);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a no-op and
  // returns false.
  bool Cancel(EventId id);

  bool Empty();
  // Timestamp of the earliest pending event. Requires !Empty().
  TimePoint PeekTime();
  // Removes and returns the earliest pending event. Requires !Empty().
  struct Popped {
    EventId id;
    TimePoint when;
    Callback fn;
  };
  Popped Pop();

  size_t PendingCount();

 private:
  struct Entry {
    TimePoint when;
    EventId id;  // Doubles as the FIFO tiebreaker: ids are issued monotonically.
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  // Drops cancelled entries from the heap top.
  void SkimCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
};

}  // namespace realrate

#endif  // REALRATE_SIM_EVENT_QUEUE_H_
