// Priority queue of timestamped events with stable FIFO ordering for equal timestamps
// and O(log n) cancellation (lazy deletion). The deterministic heart of the simulator.
//
// Cancellation cost is bounded: a live-id set distinguishes pending events from fired
// or unknown ones, so cancelling a stale id is a rejected no-op instead of an
// unbounded tombstone insertion, and PendingCount() is an O(1) read of the live set
// rather than a heap sweep. Resched() is the decrease-key-free path for periodic
// clocks (e.g. the Machine's per-core dispatch ticks): it retires the old entry by id
// and pushes a fresh one, costing one bounded tombstone instead of a heap rebuild.
#ifndef REALRATE_SIM_EVENT_QUEUE_H_
#define REALRATE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace realrate {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Enqueues `fn` to run at `when`. Events with equal `when` run in insertion order.
  EventId Push(TimePoint when, Callback fn);

  // Cancels a pending event. Cancelling an already-fired, already-cancelled, or
  // unknown id is a no-op and returns false — and, unlike a tombstone-only scheme,
  // costs no memory.
  bool Cancel(EventId id);

  // Cancels `id` (if still pending) and pushes `fn` at `when`, returning the new id.
  // The one-call resched path for periodic clocks: no decrease-key, no heap rebuild —
  // the retired entry becomes a single tombstone reclaimed at pop time.
  EventId Resched(EventId id, TimePoint when, Callback fn);

  bool Empty() const { return pending_.empty(); }
  // Timestamp of the earliest pending event. Requires !Empty().
  TimePoint PeekTime();
  // Id of the earliest pending event. Requires !Empty(). With PeekTime this lets a
  // caller test "is the head exactly the event I scheduled?" without popping — the
  // parallel engine's round detection (see Simulator::PopExpected).
  EventId PeekId();
  // Removes and returns the earliest pending event. Requires !Empty().
  struct Popped {
    EventId id;
    TimePoint when;
    Callback fn;
  };
  Popped Pop();

  // Number of pending (pushed, not yet fired or cancelled) events. O(1), and exact:
  // cancelled entries still buried in the heap are not counted.
  size_t PendingCount() const { return pending_.size(); }

 private:
  struct Entry {
    TimePoint when;
    EventId id;  // Doubles as the FIFO tiebreaker: ids are issued monotonically.
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  // Drops cancelled entries from the heap top.
  void SkimCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Live ids: pushed, not yet fired or cancelled. The authority for Empty/
  // PendingCount and the guard that keeps `cancelled_` bounded by the heap size.
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
};

}  // namespace realrate

#endif  // REALRATE_SIM_EVENT_QUEUE_H_
