#include "sim/trace.h"

#include <cstdio>

namespace realrate {

const char* ToString(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDispatch:
      return "dispatch";
    case TraceKind::kBlock:
      return "block";
    case TraceKind::kWake:
      return "wake";
    case TraceKind::kBudgetExhausted:
      return "budget-exhausted";
    case TraceKind::kDeadlineMiss:
      return "deadline-miss";
    case TraceKind::kAllocationSet:
      return "allocation-set";
    case TraceKind::kQualityException:
      return "quality-exception";
    case TraceKind::kAdmitted:
      return "admitted";
    case TraceKind::kRejected:
      return "rejected";
    case TraceKind::kExit:
      return "exit";
    case TraceKind::kMigrate:
      return "migrate";
  }
  return "?";
}

int64_t TraceRecorder::Count(TraceKind kind, ThreadId thread) const {
  int64_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind && (thread == kInvalidThreadId || e.thread == thread)) {
      ++n;
    }
  }
  return n;
}

uint64_t TraceRecorder::Hash() const {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const TraceEvent& e : events_) {
    mix(static_cast<uint64_t>(e.t.nanos()));
    mix(static_cast<uint64_t>(e.kind));
    mix(static_cast<uint64_t>(e.thread));
    mix(static_cast<uint64_t>(e.arg0));
    mix(static_cast<uint64_t>(e.arg1));
  }
  return h;
}

std::string TraceRecorder::ToString(size_t max_events) const {
  std::string out;
  char line[160];
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (n++ >= max_events) {
      out += "...\n";
      break;
    }
    std::snprintf(line, sizeof(line), "%10.6fs thread=%d %s arg0=%lld arg1=%lld\n",
                  e.t.ToSeconds(), e.thread, realrate::ToString(e.kind),
                  static_cast<long long>(e.arg0), static_cast<long long>(e.arg1));
    out += line;
  }
  return out;
}

}  // namespace realrate
