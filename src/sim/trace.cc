#include "sim/trace.h"

#include <cstdio>

namespace realrate {

const char* ToString(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDispatch:
      return "dispatch";
    case TraceKind::kBlock:
      return "block";
    case TraceKind::kWake:
      return "wake";
    case TraceKind::kBudgetExhausted:
      return "budget-exhausted";
    case TraceKind::kDeadlineMiss:
      return "deadline-miss";
    case TraceKind::kAllocationSet:
      return "allocation-set";
    case TraceKind::kQualityException:
      return "quality-exception";
    case TraceKind::kAdmitted:
      return "admitted";
    case TraceKind::kRejected:
      return "rejected";
    case TraceKind::kExit:
      return "exit";
    case TraceKind::kMigrate:
      return "migrate";
  }
  return "?";
}

int64_t TraceRecorder::Count(TraceKind kind, ThreadId thread) const {
  int64_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind && (thread == kInvalidThreadId || e.thread == thread)) {
      ++n;
    }
  }
  return n;
}

uint64_t TraceRecorder::HashScan() const {
  uint64_t h = kFnvOffset;
  for (const TraceEvent& e : events_) {
    MixEvent(h, e);
  }
  return h;
}

std::string TraceRecorder::WellFormedError(size_t from) const {
  char buf[160];
  auto describe = [&buf](size_t i, const TraceEvent& e, const char* what) {
    std::snprintf(buf, sizeof(buf), "trace event %zu (%s at %.6fs, thread %d): %s",
                  i, realrate::ToString(e.kind), e.t.ToSeconds(), e.thread, what);
    return std::string(buf);
  };
  for (size_t i = from; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0 && e.t < events_[i - 1].t) {
      return describe(i, e, "timestamp earlier than its predecessor");
    }
    if (e.thread < 0) {
      return describe(i, e, "invalid thread id");
    }
    switch (e.kind) {
      case TraceKind::kDispatch:
        // Zero is legitimate: a thread that blocks the instant it is dispatched (e.g.
        // a consumer finding its queue empty) consumes nothing.
        if (e.arg0 < 0) {
          return describe(i, e, "dispatch consumed a negative cycle count");
        }
        break;
      case TraceKind::kAllocationSet:
        if (e.arg0 < 0 || e.arg0 > Proportion::kFull) {
          return describe(i, e, "allocation outside [0, 1000] ppt");
        }
        if (e.arg1 <= 0) {
          return describe(i, e, "allocation with a non-positive period");
        }
        break;
      case TraceKind::kMigrate:
        if (e.arg0 < 0 || e.arg1 < 0 || e.arg0 == e.arg1) {
          return describe(i, e, "migration between invalid or identical cores");
        }
        break;
      default:
        break;
    }
  }
  return "";
}

std::string TraceRecorder::ToString(size_t max_events) const {
  std::string out;
  char line[160];
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (n++ >= max_events) {
      out += "...\n";
      break;
    }
    std::snprintf(line, sizeof(line), "%10.6fs thread=%d %s arg0=%lld arg1=%lld\n",
                  e.t.ToSeconds(), e.thread, realrate::ToString(e.kind),
                  static_cast<long long>(e.arg0), static_cast<long long>(e.arg1));
    out += line;
  }
  return out;
}

}  // namespace realrate
