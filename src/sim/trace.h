// Structured trace of scheduler-visible events. Tests assert on it; the determinism
// property tests hash it; examples can dump it for inspection.
#ifndef REALRATE_SIM_TRACE_H_
#define REALRATE_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"
#include "util/types.h"

namespace realrate {

enum class TraceKind : uint8_t {
  kDispatch,       // arg0 = cycles granted
  kBlock,          // arg0 = queue id
  kWake,           // arg0 = queue id or -1 (timer wake)
  kBudgetExhausted,  // arg0 = cycles used this period
  kDeadlineMiss,   // arg0 = cycles short
  kAllocationSet,  // arg0 = proportion ppt, arg1 = period ns
  kQualityException,  // arg0 = queue id
  kAdmitted,       // arg0 = proportion ppt
  kRejected,       // arg0 = requested ppt
  kExit,
  kMigrate,        // arg0 = from core, arg1 = to core
};

struct TraceEvent {
  TimePoint t;
  TraceKind kind;
  ThreadId thread;
  int64_t arg0;
  int64_t arg1;
};

class TraceRecorder {
 public:
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(TimePoint t, TraceKind kind, ThreadId thread, int64_t arg0 = 0, int64_t arg1 = 0) {
    if (enabled_) {
      events_.push_back({t, kind, thread, arg0, arg1});
    }
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  // Count events of `kind` for `thread` (any thread if thread == kInvalidThreadId).
  int64_t Count(TraceKind kind, ThreadId thread = kInvalidThreadId) const;

  // FNV-1a over the raw event stream; equal hashes <=> identical schedules.
  uint64_t Hash() const;

  // Validates events [from, size()): timestamps non-decreasing (each event is also
  // compared against its predecessor at from - 1), thread ids valid, dispatch cycle
  // counts non-negative, allocations within [0, kFull] ppt, migrations between
  // distinct cores.
  // Returns a description of the first malformed event, or "" when well-formed. The
  // invariant oracle calls this incrementally with the index it last validated up to.
  std::string WellFormedError(size_t from = 0) const;

  std::string ToString(size_t max_events = 100) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

const char* ToString(TraceKind kind);

}  // namespace realrate

#endif  // REALRATE_SIM_TRACE_H_
