// Structured trace of scheduler-visible events. Tests assert on it; the determinism
// property tests hash it; examples can dump it for inspection.
#ifndef REALRATE_SIM_TRACE_H_
#define REALRATE_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"
#include "util/types.h"

namespace realrate {

enum class TraceKind : uint8_t {
  kDispatch,       // arg0 = cycles granted
  kBlock,          // arg0 = queue id
  kWake,           // arg0 = queue id or -1 (timer wake)
  kBudgetExhausted,  // arg0 = cycles used this period
  kDeadlineMiss,   // arg0 = cycles short
  kAllocationSet,  // arg0 = proportion ppt, arg1 = period ns
  kQualityException,  // arg0 = queue id
  kAdmitted,       // arg0 = proportion ppt
  kRejected,       // arg0 = requested ppt
  kExit,
  kMigrate,        // arg0 = from core, arg1 = to core
};

struct TraceEvent {
  TimePoint t;
  TraceKind kind;
  ThreadId thread;
  int64_t arg0;
  int64_t arg1;
};

class TraceRecorder {
 public:
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Hash-only mode folds every event into the running hash but stores nothing: the
  // hash stays bit-identical to full mode while Record sheds the event vector's
  // memory traffic. For throughput scenarios (the server farm records millions of
  // events per run) whose results only read Hash(); events()/Count()/
  // WellFormedError() see an empty trace in this mode, so callers that inspect
  // events must leave it off.
  void SetHashOnly(bool hash_only) { hash_only_ = hash_only; }

  void Record(TimePoint t, TraceKind kind, ThreadId thread, int64_t arg0 = 0, int64_t arg1 = 0) {
    if (enabled_) {
      const TraceEvent event{t, kind, thread, arg0, arg1};
      if (stage_ != nullptr) {
        stage_->push_back(event);  // Deferred: folded later via RecordEvent.
        return;
      }
      MixEvent(running_hash_, event);
      if (!hash_only_) {
        events_.push_back(event);
      }
    }
  }

  // Staging: while a stage vector is installed, Record appends raw events to it
  // instead of folding them into the hash — the parallel engine captures each core's
  // records into a per-core lane, then replays the lanes in fixed core order through
  // RecordEvent at the epoch barrier, reproducing the reference engine's exact fold
  // order. Install nullptr to return to direct recording.
  void SetStage(std::vector<TraceEvent>* stage) { stage_ = stage; }

  // Folds one previously staged event exactly as a direct Record would have.
  void RecordEvent(const TraceEvent& event) {
    MixEvent(running_hash_, event);
    if (!hash_only_) {
      events_.push_back(event);
    }
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() {
    events_.clear();
    running_hash_ = kFnvOffset;
  }

  // Count events of `kind` for `thread` (any thread if thread == kInvalidThreadId).
  int64_t Count(TraceKind kind, ThreadId thread = kInvalidThreadId) const;

  // FNV-1a over the raw event stream; equal hashes <=> identical schedules. The fold
  // is maintained incrementally by Record, so reading the hash is O(1) no matter how
  // long the trace is (the farm benches read it once per run).
  uint64_t Hash() const { return running_hash_; }

  // Recomputes the hash by scanning the stored events — the pre-incremental
  // definition, kept as the oracle the running fold is validated against in tests.
  uint64_t HashScan() const;

  // Validates events [from, size()): timestamps non-decreasing (each event is also
  // compared against its predecessor at from - 1), thread ids valid, dispatch cycle
  // counts non-negative, allocations within [0, kFull] ppt, migrations between
  // distinct cores.
  // Returns a description of the first malformed event, or "" when well-formed. The
  // invariant oracle calls this incrementally with the index it last validated up to.
  std::string WellFormedError(size_t from = 0) const;

  std::string ToString(size_t max_events = 100) const;

 private:
  static constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
  static constexpr uint64_t kFnvPrime = 0x100000001b3ull;

  // Folds one event into `h`, byte by byte, little-endian, field order
  // (t, kind, thread, arg0, arg1) — exactly the HashScan fold.
  static void MixEvent(uint64_t& h, const TraceEvent& e) {
    auto mix = [&h](uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
      }
    };
    mix(static_cast<uint64_t>(e.t.nanos()));
    mix(static_cast<uint64_t>(e.kind));
    mix(static_cast<uint64_t>(e.thread));
    mix(static_cast<uint64_t>(e.arg0));
    mix(static_cast<uint64_t>(e.arg1));
  }

  bool enabled_ = false;
  bool hash_only_ = false;
  std::vector<TraceEvent>* stage_ = nullptr;  // Borrowed; see SetStage.
  std::vector<TraceEvent> events_;
  uint64_t running_hash_ = kFnvOffset;
};

const char* ToString(TraceKind kind);

}  // namespace realrate

#endif  // REALRATE_SIM_TRACE_H_
