// Simulated CPU core: clock-rate conversion between cycles and virtual time, plus the
// cost model for kernel overheads (dispatch, timer interrupts, context switches) and
// the user-level controller. Calibrated to the paper's 400 MHz Pentium II measurements.
//
// On a multi-core machine each core is its own Cpu instance (owned by the Simulator):
// conversion and the cost model are identical across cores (homogeneous SMP), but
// usage accounting (Charge/Used) is per-core, so experiments can observe per-core
// utilization and the dispatcher charges overheads to the core that incurred them.
#ifndef REALRATE_SIM_CPU_H_
#define REALRATE_SIM_CPU_H_

#include <cstdint>

#include "util/assert.h"
#include "util/time.h"
#include "util/types.h"

namespace realrate {

struct CpuConfig {
  // Paper testbed: "400 Mhz Pentium 2 with 128MB of memory".
  double clock_hz = 400e6;

  // Cost, in cycles, of a context switch between threads (register save/restore plus
  // immediate cache disturbance).
  Cycles context_switch_cycles = 400;

  // schedule(): base cost of one dispatcher run.
  Cycles dispatch_base_cycles = 500;

  // Cache-pollution term: at high dispatch frequency, each dispatch amortizes less
  // cached state, so the per-dispatch cost grows roughly linearly with frequency.
  // Expressed as extra cycles per kHz of dispatch frequency. Calibrated so the Fig. 8
  // sweep shows its knee near 4 kHz with ~2.7% total overhead there.
  double dispatch_cache_cycles_per_khz = 550.0;

  // do_timers(): cost of a timer interrupt that finds no expired timer (the common
  // case, thanks to the cached next-expiry) and of one that must do work.
  Cycles timer_idle_cycles = 60;
  Cycles timer_expired_cycles = 300;

  // User-level controller costs (Fig. 5): fixed cost per controller invocation plus a
  // per-controlled-thread cost (read metrics, compute, write allocation). Calibrated
  // from the paper's fit y = .00066x + .00057 at a 10 ms controller period:
  //   intercept .00057 * 10ms * 400MHz = 2280 cycles fixed,
  //   slope     .00066 * 10ms * 400MHz = 2640 cycles per thread.
  Cycles controller_fixed_cycles = 2280;
  Cycles controller_per_thread_cycles = 2640;
};

// Accounting categories for consumed CPU time.
enum class CpuUse : int {
  kUser = 0,        // Application work.
  kDispatch,        // schedule() and context switches.
  kTimer,           // do_timers().
  kController,      // The feedback controller's own computation.
  kIdle,            // Nothing runnable.
  kNumCategories,
};

class Cpu {
 public:
  explicit Cpu(const CpuConfig& config, CpuId id = 0) : config_(config), id_(id) {
    RR_EXPECTS(config.clock_hz > 0);
    RR_EXPECTS(id >= 0);
  }

  const CpuConfig& config() const { return config_; }
  // Which core of the machine this is (0-based; 0 is the boot core).
  CpuId id() const { return id_; }

  Duration CyclesToDuration(Cycles c) const {
    return Duration::Nanos(static_cast<int64_t>(static_cast<double>(c) / config_.clock_hz * 1e9));
  }
  Cycles DurationToCycles(Duration d) const {
    return static_cast<Cycles>(d.ToSeconds() * config_.clock_hz);
  }

  // Per-dispatch cost (cycles) when the dispatcher runs `dispatch_hz` times per second.
  Cycles DispatchCostAt(double dispatch_hz) const {
    return config_.dispatch_base_cycles +
           static_cast<Cycles>(config_.dispatch_cache_cycles_per_khz * dispatch_hz / 1000.0);
  }

  // Controller cost for one invocation controlling `num_threads` threads.
  Cycles ControllerCost(int num_threads) const {
    return config_.controller_fixed_cycles +
           config_.controller_per_thread_cycles * static_cast<Cycles>(num_threads);
  }

  void Charge(CpuUse category, Cycles cycles) {
    RR_EXPECTS(cycles >= 0);
    used_[static_cast<int>(category)] += cycles;
  }

  Cycles Used(CpuUse category) const { return used_[static_cast<int>(category)]; }

  Cycles TotalUsed() const {
    Cycles total = 0;
    for (Cycles c : used_) {
      total += c;
    }
    return total;
  }

  void ResetAccounting() {
    for (Cycles& c : used_) {
      c = 0;
    }
  }

 private:
  CpuConfig config_;
  CpuId id_ = 0;
  Cycles used_[static_cast<int>(CpuUse::kNumCategories)] = {};
};

}  // namespace realrate

#endif  // REALRATE_SIM_CPU_H_
