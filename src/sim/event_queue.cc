#include "sim/event_queue.h"

#include <utility>

#include "util/assert.h"

namespace realrate {

EventId EventQueue::Push(TimePoint when, Callback fn) {
  RR_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn)});
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) {
    return false;
  }
  // We cannot know cheaply whether the id is still pending; the cancelled set is
  // consulted (and cleaned) at pop time. Inserting an already-fired id is harmless
  // because fired ids are never reissued.
  return cancelled_.insert(id).second;
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::Empty() {
  SkimCancelled();
  return heap_.empty();
}

TimePoint EventQueue::PeekTime() {
  SkimCancelled();
  RR_EXPECTS(!heap_.empty());
  return heap_.top().when;
}

EventQueue::Popped EventQueue::Pop() {
  SkimCancelled();
  RR_EXPECTS(!heap_.empty());
  // priority_queue::top() returns const&; the callback must be moved out, so we cast.
  // Safe because we pop immediately afterwards.
  auto& top = const_cast<Entry&>(heap_.top());
  Popped out{top.id, top.when, std::move(top.fn)};
  heap_.pop();
  return out;
}

size_t EventQueue::PendingCount() {
  SkimCancelled();
  return heap_.size();
}

}  // namespace realrate
