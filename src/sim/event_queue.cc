#include "sim/event_queue.h"

#include <utility>

#include "util/assert.h"

namespace realrate {

EventId EventQueue::Push(TimePoint when, Callback fn) {
  RR_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // Only live ids are tombstoned: a fired, unknown, or already-cancelled id is
  // rejected outright, so `cancelled_` can never outgrow the heap it shadows.
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return false;
  }
  pending_.erase(it);
  cancelled_.insert(id);
  return true;
}

EventId EventQueue::Resched(EventId id, TimePoint when, Callback fn) {
  Cancel(id);  // Tolerates a stale id: the common "clock already fired" race.
  return Push(when, std::move(fn));
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

TimePoint EventQueue::PeekTime() {
  SkimCancelled();
  RR_EXPECTS(!heap_.empty());
  return heap_.top().when;
}

EventId EventQueue::PeekId() {
  SkimCancelled();
  RR_EXPECTS(!heap_.empty());
  return heap_.top().id;
}

EventQueue::Popped EventQueue::Pop() {
  SkimCancelled();
  RR_EXPECTS(!heap_.empty());
  // priority_queue::top() returns const&; the callback must be moved out, so we cast.
  // Safe because we pop immediately afterwards.
  auto& top = const_cast<Entry&>(heap_.top());
  Popped out{top.id, top.when, std::move(top.fn)};
  heap_.pop();
  pending_.erase(out.id);
  return out;
}

}  // namespace realrate
