#include "sim/parallel.h"

#include <algorithm>

#include "util/assert.h"

namespace realrate {

ParallelEngine::ParallelEngine(int host_threads) : host_threads_(host_threads) {
  RR_EXPECTS(host_threads >= 1);
  workers_.reserve(static_cast<size_t>(host_threads - 1));
  for (int p = 1; p < host_threads; ++p) {
    workers_.emplace_back([this, p] { WorkerMain(p); });
  }
}

ParallelEngine::~ParallelEngine() {
  stop_.store(true, std::memory_order_release);
  round_seq_.fetch_add(1, std::memory_order_release);
  round_seq_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ParallelEngine::RunRound(int num_items, const std::function<void(int)>& body) {
  RR_EXPECTS(num_items >= 0);
  const int participants = std::min(host_threads_, num_items);
  if (participants <= 1) {
    for (int i = 0; i < num_items; ++i) {
      body(i);
    }
    return;
  }
  body_ = &body;
  num_items_ = num_items;
  pending_.store(host_threads_ - 1, std::memory_order_release);
  round_seq_.fetch_add(1, std::memory_order_release);
  round_seq_.notify_all();
  // The coordinator is participant 0: it runs its strided share like any worker.
  for (int i = 0; i < num_items; i += host_threads_) {
    body(i);
  }
  // Join: every worker decrements pending_ once, even when its share was empty.
  for (int p = pending_.load(std::memory_order_acquire); p != 0;
       p = pending_.load(std::memory_order_acquire)) {
    pending_.wait(p, std::memory_order_acquire);
  }
  body_ = nullptr;
  ++rounds_run_;
}

void ParallelEngine::WorkerMain(int participant) {
  uint64_t seen = 0;
  for (;;) {
    while (round_seq_.load(std::memory_order_acquire) == seen) {
      round_seq_.wait(seen, std::memory_order_acquire);
    }
    seen = round_seq_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    const std::function<void(int)>& body = *body_;
    const int n = num_items_;
    for (int i = participant; i < n; i += host_threads_) {
      body(i);
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pending_.notify_one();
    }
  }
}

}  // namespace realrate
