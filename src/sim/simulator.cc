#include "sim/simulator.h"

#include <utility>

#include "util/assert.h"

namespace realrate {

Simulator::Simulator(const CpuConfig& cpu_config, int num_cpus) {
  RR_EXPECTS(num_cpus >= 1);
  cpus_.reserve(static_cast<size_t>(num_cpus));
  for (int i = 0; i < num_cpus; ++i) {
    cpus_.emplace_back(cpu_config, static_cast<CpuId>(i));
  }
}

Cycles Simulator::UsedAllCpus(CpuUse category) const {
  Cycles total = 0;
  for (const Cpu& c : cpus_) {
    total += c.Used(category);
  }
  return total;
}

EventId Simulator::ScheduleAt(TimePoint t, EventQueue::Callback fn) {
  RR_EXPECTS(t >= now_);
  return events_.Push(t, std::move(fn));
}

EventId Simulator::ScheduleAfter(Duration d, EventQueue::Callback fn) {
  RR_EXPECTS(d >= Duration::Zero());
  return events_.Push(now_ + d, std::move(fn));
}

bool Simulator::Step() {
  if (events_.Empty()) {
    return false;
  }
  auto event = events_.Pop();
  RR_CHECK(event.when >= now_);
  now_ = event.when;
  ++events_processed_;
  event.fn();
  return true;
}

bool Simulator::PopExpected(EventId id, TimePoint t) {
  if (id == kInvalidEventId || events_.Empty() || events_.PeekTime() != t ||
      events_.PeekId() != id) {
    return false;
  }
  auto event = events_.Pop();
  RR_CHECK(event.when == t && event.id == id);
  RR_CHECK(t >= now_);
  now_ = t;
  ++events_processed_;
  return true;
}

void Simulator::RunUntil(TimePoint t) {
  RR_EXPECTS(t >= now_);
  while (!events_.Empty() && events_.PeekTime() <= t) {
    Step();
  }
  now_ = t;
}

}  // namespace realrate
