// Sampler: records named scalar probes into TimeSeries on a fixed virtual-time period.
// The experiment harness's measurement instrument (fill levels, allocations, progress
// rates).
#ifndef REALRATE_EXP_SAMPLER_H_
#define REALRATE_EXP_SAMPLER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/time_series.h"

namespace realrate {

class Sampler {
 public:
  using Probe = std::function<double()>;

  Sampler(Simulator& sim, Duration period);

  // Registers a probe; its values land in the series of the same name.
  void AddProbe(std::string name, Probe probe);

  // Convenience: a probe reporting the rate of change of a monotone counter (units/sec
  // computed over the sampling period) — used for progress rates in bytes/sec.
  void AddRateProbe(std::string name, std::function<int64_t()> counter);

  void Start();

  const TimeSeries& Series(const std::string& name) const;
  std::vector<const TimeSeries*> AllSeries() const;

 private:
  struct Channel {
    std::string name;
    Probe probe;
    TimeSeries series;
  };
  struct RateState {
    int64_t last = 0;
    bool primed = false;
  };

  void SampleOnce();
  void ScheduleNext();

  Simulator& sim_;
  Duration period_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<RateState>> rate_states_;
  bool started_ = false;
};

}  // namespace realrate

#endif  // REALRATE_EXP_SAMPLER_H_
