#include "exp/scenarios.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "exp/sampler.h"
#include "exp/system.h"
#include "sched/fixed_priority.h"
#include "sched/lottery.h"
#include "sched/mlfq.h"
#include "util/assert.h"
#include "workloads/misc_work.h"
#include "workloads/producer_consumer.h"
#include "workloads/rate_schedule.h"

namespace realrate {

const char* ToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFeedbackRbs:
      return "feedback-rbs";
    case SchedulerKind::kFixedPriority:
      return "fixed-priority";
    case SchedulerKind::kMlfq:
      return "mlfq";
    case SchedulerKind::kLottery:
      return "lottery";
  }
  return "?";
}

std::unique_ptr<Scheduler> MakeBaselineScheduler(SchedulerKind kind, const Cpu& cpu,
                                                 uint64_t lottery_seed) {
  switch (kind) {
    case SchedulerKind::kFixedPriority:
      return std::make_unique<FixedPriorityScheduler>();
    case SchedulerKind::kMlfq:
      return std::make_unique<MlfqScheduler>(cpu, Duration::Millis(10));
    case SchedulerKind::kLottery:
      return std::make_unique<LotteryScheduler>(lottery_seed);
    case SchedulerKind::kFeedbackRbs:
      break;
  }
  RR_CHECK(false);  // Feedback rigs are built through System.
  return nullptr;
}

PipelineResult RunPipelineScenario(const PipelineParams& params) {
  SystemConfig config;
  config.cpu.clock_hz = params.clock_hz;
  config.controller = params.controller;
  System system(config);
  system.sim().trace().SetEnabled(true);  // Scenario results report the trace hash.

  BoundedBuffer* queue = system.CreateQueue("pipe", params.queue_bytes);

  RateSchedule schedule = RateSchedule::PaperPulses(
      params.base_bytes_per_item, params.doubled_bytes_per_item, params.pulses_start,
      params.rising_widths, params.pulse_gap, params.falling_widths);

  SimThread* producer = system.Spawn(
      "producer",
      std::make_unique<ProducerWork>(queue, params.producer_cycles_per_item, schedule));
  SimThread* consumer = system.Spawn(
      "consumer", std::make_unique<ConsumerWork>(queue, params.consumer_cycles_per_byte));
  consumer->set_importance(params.consumer_importance);

  system.queues().Register(queue, producer->id(), QueueRole::kProducer);
  system.queues().Register(queue, consumer->id(), QueueRole::kConsumer);

  RR_CHECK(system.controller().AddRealTime(producer, params.producer_proportion,
                                           params.producer_period));
  system.controller().AddRealRate(consumer);

  SimThread* hog = nullptr;
  if (params.with_hog) {
    hog = system.Spawn("hog", std::make_unique<CpuHogWork>());
    hog->set_importance(params.hog_importance);
    system.controller().AddMiscellaneous(hog);
  }

  Sampler sampler(system.sim(), params.sample_period);
  sampler.AddRateProbe("producer_rate", [producer] { return producer->progress_units(); });
  sampler.AddRateProbe("consumer_rate", [consumer] { return consumer->progress_units(); });
  sampler.AddProbe("fill_level", [queue] { return queue->FillFraction(); });
  sampler.AddProbe("producer_alloc",
                   [producer] { return static_cast<double>(producer->proportion().ppt()); });
  sampler.AddProbe("consumer_alloc",
                   [consumer] { return static_cast<double>(consumer->proportion().ppt()); });
  if (hog != nullptr) {
    sampler.AddProbe("hog_alloc",
                     [hog] { return static_cast<double>(hog->proportion().ppt()); });
  }
  sampler.AddProbe("production_bpk", [&schedule, &system, &params] {
    // bytes per Kcycle, the Fig. 7 third graph.
    return schedule.ValueAt(system.sim().Now()) /
           static_cast<double>(params.producer_cycles_per_item) * 1000.0;
  });

  system.Start();
  sampler.Start();
  system.RunFor(params.run_for);

  PipelineResult result;
  result.producer_rate = sampler.Series("producer_rate");
  result.consumer_rate = sampler.Series("consumer_rate");
  result.fill_level = sampler.Series("fill_level");
  result.producer_alloc_ppt = sampler.Series("producer_alloc");
  result.consumer_alloc_ppt = sampler.Series("consumer_alloc");
  if (hog != nullptr) {
    result.hog_alloc_ppt = sampler.Series("hog_alloc");
    result.hog_final_alloc_ppt = result.hog_alloc_ppt.points().back().value;
  }
  result.production_bytes_per_kcycle = sampler.Series("production_bpk");

  // Response time to the first rising pulse: time to reach 90% of the doubled
  // progress-rate target.
  const double producer_cps =
      params.producer_proportion.ToFraction() * params.clock_hz;  // cycles/sec.
  const double doubled_rate = producer_cps /
                              static_cast<double>(params.producer_cycles_per_item) *
                              params.doubled_bytes_per_item;
  const TimePoint hit =
      result.consumer_rate.FirstCrossing(params.pulses_start, 0.9 * doubled_rate,
                                         /*rising=*/true);
  result.response_time_s =
      hit == TimePoint::Max() ? -1.0 : (hit - params.pulses_start).ToSeconds();

  // Settling: first sample time after the pulse from which |fill - 1/2| stays within
  // 0.05 for at least 0.5 s.
  result.settle_time_s = -1.0;
  {
    const auto& pts = result.fill_level.points();
    for (size_t i = 0; i < pts.size(); ++i) {
      if (pts[i].t < params.pulses_start) {
        continue;
      }
      bool settled = true;
      bool window_complete = false;
      for (size_t j = i; j < pts.size(); ++j) {
        if (pts[j].t - pts[i].t > Duration::Millis(500)) {
          window_complete = true;
          break;
        }
        if (std::abs(pts[j].value - 0.5) > 0.05) {
          settled = false;
          break;
        }
      }
      if (settled && window_complete) {
        result.settle_time_s = (pts[i].t - params.pulses_start).ToSeconds();
        break;
      }
    }
  }

  result.quality_exceptions = system.controller().quality_exceptions();
  result.squish_events = system.controller().squish_events();
  result.consumer_deadline_misses = consumer->deadline_misses();
  result.trace_hash = system.sim().trace().Hash();
  result.consumer_final_alloc_ppt = result.consumer_alloc_ppt.points().back().value;

  // Steady-state fill deviation over the pre-pulse window [2 s, 5 s).
  double deviation = 0.0;
  int64_t n = 0;
  for (const auto& p : result.fill_level.points()) {
    if (p.t >= TimePoint::FromNanos(2'000'000'000) && p.t < params.pulses_start) {
      deviation += std::abs(p.value - 0.5);
      ++n;
    }
  }
  result.fill_deviation = n > 0 ? deviation / static_cast<double>(n) : 0.0;
  return result;
}

ControllerOverheadPoint MeasureControllerOverhead(int num_processes, Duration run_for) {
  RR_EXPECTS(num_processes >= 0);
  SystemConfig config;
  System system(config);
  for (int i = 0; i < num_processes; ++i) {
    SimThread* t = system.Spawn("dummy" + std::to_string(i), std::make_unique<IdleWork>());
    system.controller().AddMiscellaneous(t);
  }
  system.Start();
  system.RunFor(run_for);

  const Cycles total = system.sim().cpu().DurationToCycles(run_for);
  ControllerOverheadPoint point;
  point.num_processes = num_processes;
  point.overhead_fraction = static_cast<double>(system.sim().cpu().Used(CpuUse::kController)) /
                            static_cast<double>(total);
  return point;
}

DispatchOverheadPoint MeasureDispatchOverhead(double frequency_hz, Duration run_for) {
  RR_EXPECTS(frequency_hz > 0);
  SystemConfig config;
  config.machine.dispatch_interval =
      Duration::Nanos(static_cast<int64_t>(1e9 / frequency_hz));
  config.start_controller = false;
  System system(config);

  // "a program that attempts to use as much CPU as it can" — one unreserved hog.
  system.Spawn("grabber", std::make_unique<CpuHogWork>());

  system.Start();
  system.RunFor(run_for);

  const Cycles total = system.sim().cpu().DurationToCycles(run_for);
  DispatchOverheadPoint point;
  point.frequency_hz = frequency_hz;
  point.cpu_available = static_cast<double>(system.sim().cpu().Used(CpuUse::kUser)) /
                        static_cast<double>(total);
  return point;
}

namespace {

// Builds a machine around a baseline scheduler. The scheduler must not outlive the
// rig's simulator (MLFQ keeps a reference to the rig's Cpu), so the rig owns both and
// constructs them in order. `lottery_seed` is the injected engine seed for the one
// stochastic baseline; the caller owns it so runs are replayable.
struct BaselineRig {
  Simulator sim;
  ThreadRegistry threads;
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<Machine> machine;

  explicit BaselineRig(SchedulerKind kind, uint64_t lottery_seed = 1234)
      : scheduler(MakeBaselineScheduler(kind, sim.cpu(), lottery_seed)),
        machine(std::make_unique<Machine>(sim, *scheduler, threads)) {}
};

}  // namespace

namespace {

// Shared result extraction for both rig flavours. A wait still pending at simulation
// end (high blocked forever — the inversion signature) counts as lasting until the end.
PathfinderResult ExtractPathfinderResult(const Simulator& sim, SimThread* low,
                                         SimThread* medium, SimThread* high,
                                         Duration run_for) {
  const auto& low_work = static_cast<const LockWork&>(low->work());
  const auto& high_work = static_cast<const LockWork&>(high->work());
  const auto total = static_cast<double>(sim.cpu().DurationToCycles(run_for));
  const TimePoint steady_from = TimePoint::FromNanos(2'000'000'000);
  PathfinderResult result;
  result.high_max_wait_s = high_work.MaxWaitSeconds();
  result.high_max_wait_steady_s = high_work.MaxWaitSecondsAfter(steady_from);
  if (high_work.still_waiting()) {
    const double pending = (sim.Now() - high_work.wait_start()).ToSeconds();
    result.high_max_wait_s = std::max(result.high_max_wait_s, pending);
    // Flag only pathological pending waits; a routine in-flight acquisition at the
    // instant the simulation stops is not an inversion.
    result.high_still_blocked = pending > 0.5;
    if (high_work.wait_start() >= steady_from || sim.Now() > steady_from) {
      result.high_max_wait_steady_s =
          std::max(result.high_max_wait_steady_s,
                   (sim.Now() - std::max(high_work.wait_start(), steady_from)).ToSeconds());
    }
  }
  result.high_acquisitions = high_work.acquisitions();
  result.low_acquisitions = low_work.acquisitions();
  result.high_cpu = static_cast<double>(high->total_cycles()) / total;
  result.medium_cpu = static_cast<double>(medium->total_cycles()) / total;
  result.low_cpu = static_cast<double>(low->total_cycles()) / total;
  return result;
}

}  // namespace

PathfinderResult RunPathfinderScenario(SchedulerKind kind, Duration run_for,
                                       uint64_t lottery_seed) {
  // Threads: low-priority housekeeping task that takes a shared mutex; a CPU-bound
  // medium-priority load that arrives at t = 1 s (while the low task is likely inside
  // its critical section); a high-priority periodic task needing the same mutex.
  // Classic Mars Pathfinder: high blocks on low, low starved by medium.
  const Cycles kLowHold = 2'000'000;    // 5 ms at 400 MHz.
  const Duration kLowThink = Duration::Millis(1);
  const Cycles kHighHold = 200'000;     // 0.5 ms.
  const Duration kHighThink = Duration::Millis(50);
  const TimePoint kLoadArrival = TimePoint::FromNanos(1'000'000'000);

  if (kind == SchedulerKind::kFeedbackRbs) {
    System system{};
    SimMutex mutex("bus");
    system.machine().Attach(&mutex);

    SimThread* low =
        system.Spawn("low", std::make_unique<LockWork>(&mutex, kLowHold, kLowThink));
    SimThread* medium =
        system.Spawn("medium", std::make_unique<DelayedHogWork>(kLoadArrival));
    SimThread* high =
        system.Spawn("high", std::make_unique<LockWork>(&mutex, kHighHold, kHighThink));
    high->set_importance(8.0);
    medium->set_importance(2.0);

    system.controller().AddMiscellaneous(low);
    system.controller().AddMiscellaneous(medium);
    system.controller().AddMiscellaneous(high);

    system.Start();
    system.RunFor(run_for);
    return ExtractPathfinderResult(system.sim(), low, medium, high, run_for);
  }

  BaselineRig rig(kind, lottery_seed);
  SimMutex mutex("bus");
  rig.machine->Attach(&mutex);

  SimThread* low =
      rig.threads.Create("low", std::make_unique<LockWork>(&mutex, kLowHold, kLowThink));
  SimThread* medium =
      rig.threads.Create("medium", std::make_unique<DelayedHogWork>(kLoadArrival));
  SimThread* high =
      rig.threads.Create("high", std::make_unique<LockWork>(&mutex, kHighHold, kHighThink));
  low->set_priority(1);
  medium->set_priority(5);
  high->set_priority(10);
  low->set_tickets(10);
  medium->set_tickets(50);
  high->set_tickets(100);
  rig.machine->Attach(low);
  rig.machine->Attach(medium);
  rig.machine->Attach(high);

  rig.machine->Start();
  rig.machine->RunFor(run_for);
  return ExtractPathfinderResult(rig.sim, low, medium, high, run_for);
}

StarvationResult RunStarvationScenario(SchedulerKind kind, double importance_ratio,
                                       Duration run_for, uint64_t lottery_seed) {
  StarvationResult result;
  if (kind == SchedulerKind::kFeedbackRbs) {
    System system{};
    SimThread* favored = system.Spawn("favored", std::make_unique<CpuHogWork>());
    SimThread* lesser = system.Spawn("lesser", std::make_unique<CpuHogWork>());
    favored->set_importance(importance_ratio);
    lesser->set_importance(1.0);
    system.controller().AddMiscellaneous(favored);
    system.controller().AddMiscellaneous(lesser);
    system.Start();
    system.RunFor(run_for);
    const auto total = static_cast<double>(system.sim().cpu().DurationToCycles(run_for));
    result.favored_cpu = static_cast<double>(favored->total_cycles()) / total;
    result.lesser_cpu = static_cast<double>(lesser->total_cycles()) / total;
  } else {
    BaselineRig rig(kind, lottery_seed);
    SimThread* favored = rig.threads.Create("favored", std::make_unique<CpuHogWork>());
    SimThread* lesser = rig.threads.Create("lesser", std::make_unique<CpuHogWork>());
    favored->set_priority(10);
    lesser->set_priority(1);
    favored->set_tickets(static_cast<int64_t>(100 * importance_ratio));
    lesser->set_tickets(100);
    rig.machine->Attach(favored);
    rig.machine->Attach(lesser);
    rig.machine->Start();
    rig.machine->RunFor(run_for);
    const auto total = static_cast<double>(rig.sim.cpu().DurationToCycles(run_for));
    result.favored_cpu = static_cast<double>(favored->total_cycles()) / total;
    result.lesser_cpu = static_cast<double>(lesser->total_cycles()) / total;
  }
  result.lesser_starved = result.lesser_cpu < 0.001;
  return result;
}

SmpResult RunSmpPipelinesScenario(const SmpParams& params) {
  RR_EXPECTS(params.num_cpus >= 1);
  RR_EXPECTS(params.num_pipelines >= 1);
  SystemConfig config;
  config.num_cpus = params.num_cpus;
  config.cpu.clock_hz = params.clock_hz;
  System system(config);
  system.sim().trace().SetEnabled(true);

  std::vector<SimThread*> consumers;
  consumers.reserve(static_cast<size_t>(params.num_pipelines));
  for (int i = 0; i < params.num_pipelines; ++i) {
    const std::string tag = std::to_string(i);
    BoundedBuffer* queue = system.CreateQueue("pipe" + tag, params.queue_bytes);
    SimThread* producer = system.Spawn(
        "producer" + tag,
        std::make_unique<ProducerWork>(queue, params.producer_cycles_per_item,
                                       RateSchedule(params.bytes_per_item)));
    SimThread* consumer = system.Spawn(
        "consumer" + tag,
        std::make_unique<ConsumerWork>(queue, params.consumer_cycles_per_byte));
    system.queues().Register(queue, producer->id(), QueueRole::kProducer);
    system.queues().Register(queue, consumer->id(), QueueRole::kConsumer);
    RR_CHECK(system.controller().AddRealTime(producer, params.producer_proportion,
                                             params.producer_period));
    system.controller().AddRealRate(consumer);
    consumers.push_back(consumer);
  }
  for (int i = 0; i < params.num_hogs; ++i) {
    SimThread* hog = system.Spawn("hog" + std::to_string(i), std::make_unique<CpuHogWork>());
    system.controller().AddMiscellaneous(hog);
  }

  system.Start();
  system.RunFor(params.run_for);

  SmpResult result;
  result.num_cpus = params.num_cpus;
  result.total_dispatches = system.machine().dispatches();
  result.dispatch_throughput_per_vsec =
      static_cast<double>(result.total_dispatches) / params.run_for.ToSeconds();
  result.migrations = system.machine().migrations();
  const auto per_core_capacity =
      static_cast<double>(system.sim().cpu().DurationToCycles(params.run_for));
  result.aggregate_user_fraction =
      static_cast<double>(system.sim().UsedAllCpus(CpuUse::kUser)) /
      (per_core_capacity * params.num_cpus);
  for (CpuId c = 0; c < params.num_cpus; ++c) {
    result.core_user_fraction.push_back(
        static_cast<double>(system.sim().cpu(c).Used(CpuUse::kUser)) / per_core_capacity);
    result.core_reserved_fraction.push_back(system.machine().ReservedFractionOn(c));
  }
  for (const SimThread* consumer : consumers) {
    result.total_consumed_bytes += consumer->progress_units();
  }
  result.quality_exceptions = system.controller().quality_exceptions();
  result.squish_events = system.controller().squish_events();
  result.trace_hash = system.sim().trace().Hash();
  return result;
}

ServerFarmResult RunServerFarmScenario(const ServerFarmParams& params) {
  RR_EXPECTS(params.num_cpus >= 1);
  // A pure-hog farm (num_pipelines == 0) is a valid configuration: it is the
  // all-rounds-gated workload bench_parallel_engine uses to isolate the parallel
  // engine's scaling from pipeline wake traffic.
  RR_EXPECTS(params.num_pipelines >= 0);
  RR_EXPECTS(params.num_hogs >= 0);
  RR_EXPECTS(2 * params.num_pipelines + params.num_hogs >= 1);
  // Period spread: many distinct rate-monotonic ranks (and EDF deadlines) so the
  // indexed run queues are exercised with real ordering work, not one bucket.
  static constexpr int64_t kPeriodSpreadMs[] = {5, 8, 10, 12, 16, 20, 25, 32, 40};
  constexpr size_t kSpread = sizeof(kPeriodSpreadMs) / sizeof(kPeriodSpreadMs[0]);

  SystemConfig config;
  config.num_cpus = params.num_cpus;
  config.cpu.clock_hz = params.clock_hz;
  config.rbs = params.rbs;
  config.machine.idle_fast_forward = params.idle_fast_forward;
  config.machine.host_threads = params.host_threads;
  config.controller = params.controller;
  config.thread_slabs = params.thread_slabs;
  System system(config);
  system.sim().trace().SetEnabled(true);
  // The farm result only reads the trace hash; at production densities the farm
  // records millions of events, so skip storing them (the fold is bit-identical).
  system.sim().trace().SetHashOnly(true);

  std::vector<SimThread*> consumers;
  consumers.reserve(static_cast<size_t>(params.num_pipelines));
  for (int i = 0; i < params.num_pipelines; ++i) {
    const std::string tag = std::to_string(i);
    BoundedBuffer* queue = system.CreateQueue("farm" + tag, params.queue_bytes);
    SimThread* producer = system.Spawn(
        "producer" + tag,
        std::make_unique<ProducerWork>(queue, params.producer_cycles_per_item,
                                       RateSchedule(params.bytes_per_item)));
    SimThread* consumer = system.Spawn(
        "consumer" + tag,
        std::make_unique<ConsumerWork>(queue, params.consumer_cycles_per_byte));
    system.queues().Register(queue, producer->id(), QueueRole::kProducer);
    system.queues().Register(queue, consumer->id(), QueueRole::kConsumer);
    const Duration period =
        Duration::Millis(kPeriodSpreadMs[static_cast<size_t>(i) % kSpread]);
    RR_CHECK(system.controller().AddRealTime(producer, params.producer_proportion, period));
    system.controller().AddRealRate(consumer);
    consumers.push_back(consumer);
  }
  for (int i = 0; i < params.num_hogs; ++i) {
    SimThread* hog = system.Spawn("hog" + std::to_string(i), std::make_unique<CpuHogWork>());
    system.controller().AddMiscellaneous(hog);
  }

  system.Start();
  system.RunFor(params.run_for);

  ServerFarmResult result;
  result.num_cpus = params.num_cpus;
  result.num_threads = 2 * params.num_pipelines + params.num_hogs;
  result.total_dispatches = system.machine().dispatches();
  result.dispatch_per_vsec =
      static_cast<double>(result.total_dispatches) / params.run_for.ToSeconds();
  result.context_switches = system.machine().context_switches();
  result.migrations = system.machine().migrations();
  result.idle_suspensions = system.machine().idle_suspensions();
  result.parallel_rounds = system.machine().parallel_rounds();
  result.mailbox_rounds = system.machine().mailbox_rounds();
  const auto per_core_capacity =
      static_cast<double>(system.sim().cpu().DurationToCycles(params.run_for));
  result.aggregate_user_fraction =
      static_cast<double>(system.sim().UsedAllCpus(CpuUse::kUser)) /
      (per_core_capacity * params.num_cpus);
  for (const SimThread* consumer : consumers) {
    result.total_consumed_bytes += consumer->progress_units();
  }
  result.squish_events = system.controller().squish_events();
  result.quality_exceptions = system.controller().quality_exceptions();
  result.trace_hash = system.sim().trace().Hash();
  return result;
}

MediaPipelineResult RunMediaPipelineScenario(Duration run_for) {
  // source -> q0 -> parse -> q1 -> decode -> q2 -> render. The decoder costs 10x the
  // other stages per byte; "our controller automatically identifies that one stage of
  // the pipeline has vastly different CPU requirements than the others (the video
  // decoder), even though all the processes have the same priority."
  System system{};

  BoundedBuffer* q0 = system.CreateQueue("q0", 8'000);
  BoundedBuffer* q1 = system.CreateQueue("q1", 8'000);
  BoundedBuffer* q2 = system.CreateQueue("q2", 8'000);

  // Source: a real-time reservation producing a steady 80 kB/s compressed stream
  // (5% of the CPU at 100k cycles/item, 400 bytes/item). Stage needs: parse and render
  // 20 ppt each, decode 200 ppt — all above the allocation floor, so the controller's
  // estimates, not the floor, determine every allocation.
  RateSchedule steady(400.0);  // bytes per item.
  SimThread* source =
      system.Spawn("source", std::make_unique<ProducerWork>(q0, 100'000, steady));
  SimThread* parse =
      system.Spawn("parse", std::make_unique<PipelineStageWork>(q0, q1, /*cycles_per_byte=*/100,
                                                                /*amplification=*/1.0,
                                                                /*chunk_bytes=*/400));
  SimThread* decode =
      system.Spawn("decode", std::make_unique<PipelineStageWork>(q1, q2, /*cycles_per_byte=*/1'000,
                                                                 /*amplification=*/1.0,
                                                                 /*chunk_bytes=*/400));
  SimThread* render =
      system.Spawn("render", std::make_unique<ConsumerWork>(q2, /*cycles_per_byte=*/100));

  system.queues().Register(q0, source->id(), QueueRole::kProducer);
  system.queues().Register(q0, parse->id(), QueueRole::kConsumer);
  system.queues().Register(q1, parse->id(), QueueRole::kProducer);
  system.queues().Register(q1, decode->id(), QueueRole::kConsumer);
  system.queues().Register(q2, decode->id(), QueueRole::kProducer);
  system.queues().Register(q2, render->id(), QueueRole::kConsumer);

  RR_CHECK(system.controller().AddRealTime(source, Proportion::Ppt(50),
                                           Duration::Millis(10)));
  system.controller().AddRealRate(parse);
  system.controller().AddRealRate(decode);
  system.controller().AddRealRate(render);

  system.Start();
  system.RunFor(run_for);

  MediaPipelineResult result;
  const auto total = static_cast<double>(system.sim().cpu().DurationToCycles(run_for));
  result.parse_ppt = static_cast<double>(parse->total_cycles()) / total * 1000.0;
  result.decode_ppt = static_cast<double>(decode->total_cycles()) / total * 1000.0;
  result.render_ppt = static_cast<double>(render->total_cycles()) / total * 1000.0;
  result.max_fill_deviation =
      std::max({std::abs(q0->FillFraction() - 0.5), std::abs(q1->FillFraction() - 0.5),
                std::abs(q2->FillFraction() - 0.5)});
  result.rendered_bytes = render->progress_units();
  return result;
}

}  // namespace realrate
