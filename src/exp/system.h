// System: one fully wired simulated machine — simulator, registries, RBS scheduler,
// dispatch machine, and feedback controller. The standard entry point for examples,
// integration tests and benches.
#ifndef REALRATE_EXP_SYSTEM_H_
#define REALRATE_EXP_SYSTEM_H_

#include <memory>
#include <string>

#include "core/controller.h"
#include "queue/registry.h"
#include "sched/machine.h"
#include "sched/rbs.h"
#include "sim/simulator.h"
#include "task/registry.h"

namespace realrate {

struct SystemConfig {
  CpuConfig cpu;
  MachineConfig machine;
  RbsConfig rbs;
  ControllerConfig controller;
  // If false the controller is constructed but never scheduled (Fig. 8 measures the
  // dispatcher alone).
  bool start_controller = true;
};

class System {
 public:
  explicit System(const SystemConfig& config = SystemConfig{});

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  Simulator& sim() { return *sim_; }
  ThreadRegistry& threads() { return threads_; }
  QueueRegistry& queues() { return queues_; }
  RbsScheduler& rbs() { return *rbs_; }
  Machine& machine() { return *machine_; }
  FeedbackAllocator& controller() { return *controller_; }

  // Creates a queue and wires its wake callback to the machine.
  BoundedBuffer* CreateQueue(std::string name, int64_t capacity_bytes);

  // Creates a thread, registers it with the registry, and attaches it to the scheduler.
  SimThread* Spawn(std::string name, std::unique_ptr<WorkModel> work);

  // Starts machine (and controller unless disabled). Call once, then RunFor().
  void Start();
  void RunFor(Duration d) { sim_->RunFor(d); }

 private:
  std::unique_ptr<Simulator> sim_;
  ThreadRegistry threads_;
  QueueRegistry queues_;
  std::unique_ptr<RbsScheduler> rbs_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<FeedbackAllocator> controller_;
  bool start_controller_;
};

}  // namespace realrate

#endif  // REALRATE_EXP_SYSTEM_H_
