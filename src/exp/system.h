// System: one fully wired simulated machine — simulator, registries, per-core RBS
// schedulers, dispatch machine, and feedback controller. The standard entry point for
// examples, integration tests and benches. `num_cpus = 1` (the default) builds the
// paper's uniprocessor; larger values build an SMP machine with least-loaded
// placement, per-core proportion allocation, and periodic rebalancing.
#ifndef REALRATE_EXP_SYSTEM_H_
#define REALRATE_EXP_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "queue/registry.h"
#include "sched/machine.h"
#include "sched/rbs.h"
#include "sim/simulator.h"
#include "task/registry.h"

namespace realrate {

struct SystemConfig {
  // Number of simulated CPU cores (1-8 are the tested range). Drives the Simulator's
  // per-core accounting, one RbsScheduler per core, and the Machine's core count.
  int num_cpus = 1;
  CpuConfig cpu;
  MachineConfig machine;
  RbsConfig rbs;
  ControllerConfig controller;
  // If false the controller is constructed but never scheduled (Fig. 8 measures the
  // dispatcher alone).
  bool start_controller = true;
  // Hot-field slabs (task/thread_slabs.h): keep the registry's SoA columns and let
  // the dispatch/control layers scan them. Off = every layer falls back to the
  // SimThread pointer chase — the pre-slab memory layout, kept as the A/B reference
  // (bench_dispatch_scale) and the trace-equality oracle's other side.
  bool thread_slabs = true;
};

class System {
 public:
  explicit System(const SystemConfig& config = SystemConfig{});

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  Simulator& sim() { return *sim_; }
  ThreadRegistry& threads() { return threads_; }
  QueueRegistry& queues() { return queues_; }
  // Core `core`'s run queue; with no argument, core 0's (the only one on a
  // uniprocessor).
  RbsScheduler& rbs(CpuId core = 0) { return *rbs_cores_.at(static_cast<size_t>(core)); }
  Machine& machine() { return *machine_; }
  FeedbackAllocator& controller() { return *controller_; }
  int num_cpus() const { return static_cast<int>(rbs_cores_.size()); }

  // Creates a queue and wires its wake callback to the machine.
  BoundedBuffer* CreateQueue(std::string name, int64_t capacity_bytes);

  // Creates a thread, registers it with the registry, and attaches it to the machine
  // (least-loaded core placement).
  SimThread* Spawn(std::string name, std::unique_ptr<WorkModel> work);

  // Starts machine (and controller unless disabled). Call once, then RunFor().
  void Start();
  // Routed through the Machine so idle-fast-forward catch-up settles at the end of
  // each run segment (counters and accounting then read as if every tick ran).
  void RunFor(Duration d) { machine_->RunFor(d); }

 private:
  std::unique_ptr<Simulator> sim_;
  ThreadRegistry threads_;
  QueueRegistry queues_;
  std::vector<std::unique_ptr<RbsScheduler>> rbs_cores_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<FeedbackAllocator> controller_;
  bool start_controller_;
};

}  // namespace realrate

#endif  // REALRATE_EXP_SYSTEM_H_
