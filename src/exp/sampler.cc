#include "exp/sampler.h"

#include <utility>

#include "util/assert.h"

namespace realrate {

Sampler::Sampler(Simulator& sim, Duration period) : sim_(sim), period_(period) {
  RR_EXPECTS(period.IsPositive());
}

void Sampler::AddProbe(std::string name, Probe probe) {
  RR_EXPECTS(!started_);
  RR_EXPECTS(probe != nullptr);
  auto channel = std::make_unique<Channel>();
  channel->name = name;
  channel->probe = std::move(probe);
  channel->series = TimeSeries(std::move(name));
  channels_.push_back(std::move(channel));
}

void Sampler::AddRateProbe(std::string name, std::function<int64_t()> counter) {
  rate_states_.push_back(std::make_unique<RateState>());
  RateState* state = rate_states_.back().get();
  const double per_second = 1.0 / period_.ToSeconds();
  AddProbe(std::move(name), [state, counter = std::move(counter), per_second]() {
    const int64_t current = counter();
    if (!state->primed) {
      state->primed = true;
      state->last = current;
      return 0.0;
    }
    const int64_t delta = current - state->last;
    state->last = current;
    return static_cast<double>(delta) * per_second;
  });
}

void Sampler::Start() {
  RR_EXPECTS(!started_);
  started_ = true;
  ScheduleNext();
}

void Sampler::ScheduleNext() {
  sim_.ScheduleAfter(period_, [this] {
    SampleOnce();
    ScheduleNext();
  });
}

void Sampler::SampleOnce() {
  const TimePoint now = sim_.Now();
  for (auto& channel : channels_) {
    channel->series.Add(now, channel->probe());
  }
}

const TimeSeries& Sampler::Series(const std::string& name) const {
  for (const auto& channel : channels_) {
    if (channel->name == name) {
      return channel->series;
    }
  }
  RR_CHECK(false);  // Unknown series name.
  static const TimeSeries kEmpty;
  return kEmpty;
}

std::vector<const TimeSeries*> Sampler::AllSeries() const {
  std::vector<const TimeSeries*> out;
  out.reserve(channels_.size());
  for (const auto& channel : channels_) {
    out.push_back(&channel->series);
  }
  return out;
}

}  // namespace realrate
