#include "exp/system.h"

#include <utility>

namespace realrate {

System::System(const SystemConfig& config)
    : sim_(std::make_unique<Simulator>(config.cpu)),
      rbs_(std::make_unique<RbsScheduler>(sim_->cpu(), config.rbs)),
      machine_(std::make_unique<Machine>(*sim_, *rbs_, threads_, config.machine)),
      controller_(std::make_unique<FeedbackAllocator>(*machine_, *rbs_, queues_,
                                                      config.controller)),
      start_controller_(config.start_controller) {}

BoundedBuffer* System::CreateQueue(std::string name, int64_t capacity_bytes) {
  BoundedBuffer* q = queues_.CreateQueue(std::move(name), capacity_bytes);
  machine_->Attach(q);
  return q;
}

SimThread* System::Spawn(std::string name, std::unique_ptr<WorkModel> work) {
  SimThread* t = threads_.Create(std::move(name), std::move(work));
  machine_->Attach(t);
  return t;
}

void System::Start() {
  machine_->Start();
  if (start_controller_) {
    controller_->Start();
  }
}

}  // namespace realrate
