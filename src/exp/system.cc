#include "exp/system.h"

#include <utility>

#include "util/assert.h"

namespace realrate {

System::System(const SystemConfig& config)
    : sim_(std::make_unique<Simulator>(config.cpu, config.num_cpus)),
      threads_(config.thread_slabs),
      start_controller_(config.start_controller) {
  RR_EXPECTS(config.num_cpus >= 1);
  std::vector<Scheduler*> schedulers;
  schedulers.reserve(static_cast<size_t>(config.num_cpus));
  for (int i = 0; i < config.num_cpus; ++i) {
    rbs_cores_.push_back(
        std::make_unique<RbsScheduler>(sim_->cpu(static_cast<CpuId>(i)), config.rbs));
    schedulers.push_back(rbs_cores_.back().get());
  }
  machine_ = std::make_unique<Machine>(*sim_, std::move(schedulers), threads_, config.machine);
  controller_ = std::make_unique<FeedbackAllocator>(*machine_, *rbs_cores_[0], queues_,
                                                    config.controller);
  // The constructor wires core 0's deadline-miss feedback; wire the rest.
  for (size_t i = 1; i < rbs_cores_.size(); ++i) {
    controller_->WireScheduler(*rbs_cores_[i]);
  }
}

BoundedBuffer* System::CreateQueue(std::string name, int64_t capacity_bytes) {
  BoundedBuffer* q = queues_.CreateQueue(std::move(name), capacity_bytes);
  machine_->Attach(q);
  return q;
}

SimThread* System::Spawn(std::string name, std::unique_ptr<WorkModel> work) {
  SimThread* t = threads_.Create(std::move(name), std::move(work));
  machine_->Attach(t);
  return t;
}

void System::Start() {
  machine_->Start();
  if (start_controller_) {
    controller_->Start();
  }
}

}  // namespace realrate
