// Scenario builders reproducing the paper's experiments. Each returns the series and
// summary statistics the corresponding figure plots; benches print them, integration
// tests assert on them.
#ifndef REALRATE_EXP_SCENARIOS_H_
#define REALRATE_EXP_SCENARIOS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/controller.h"
#include "sched/scheduler.h"
#include "sim/cpu.h"
#include "util/time.h"
#include "util/time_series.h"
#include "util/types.h"

namespace realrate {

// ---------------------------------------------------------------------------
// Fig. 6 / Fig. 7: the pulse pipeline.
// ---------------------------------------------------------------------------

struct PipelineParams {
  double clock_hz = 400e6;  // 400 MHz Pentium II.

  // Producer: a real-time reservation (its allocation is fixed; only its bytes/cycle
  // production rate varies).
  Proportion producer_proportion = Proportion::Ppt(50);  // 5%.
  Duration producer_period = Duration::Millis(10);
  Cycles producer_cycles_per_item = 400'000;
  double base_bytes_per_item = 100.0;
  double doubled_bytes_per_item = 200.0;

  // Consumer: real-rate; the controller owns its allocation.
  Cycles consumer_cycles_per_byte = 2'000;

  int64_t queue_bytes = 4'000;

  // Fig. 7 adds a miscellaneous CPU hog competing for the remaining capacity.
  bool with_hog = false;
  double hog_importance = 1.0;
  double consumer_importance = 1.0;

  // Pulse program: start of first pulse, widths of rising then falling pulses, gap.
  TimePoint pulses_start = TimePoint::FromNanos(5'000'000'000);  // t = 5 s.
  std::vector<Duration> rising_widths = {Duration::Seconds(4), Duration::Seconds(2),
                                         Duration::Seconds(1)};
  std::vector<Duration> falling_widths = {Duration::Seconds(4), Duration::Seconds(2),
                                          Duration::Seconds(1)};
  Duration pulse_gap = Duration::Seconds(3);

  Duration run_for = Duration::Seconds(45);
  Duration sample_period = Duration::Millis(100);

  // Controller knobs (ablations override these).
  ControllerConfig controller;
};

struct PipelineResult {
  // The Fig. 6 top graph: progress rates in bytes/sec.
  TimeSeries producer_rate;
  TimeSeries consumer_rate;
  // The Fig. 6 bottom graph: queue fill level in [0, 1].
  TimeSeries fill_level;
  // The Fig. 7 graphs: allocations in parts-per-thousand and production rate in
  // bytes/Kcycle.
  TimeSeries producer_alloc_ppt;
  TimeSeries consumer_alloc_ppt;
  TimeSeries hog_alloc_ppt;
  TimeSeries production_bytes_per_kcycle;

  // Seconds for the consumer's progress rate to reach 90% of the doubled target after
  // the first rising pulse (the paper: "roughly 1/3 of a second").
  double response_time_s = 0.0;
  // Seconds for the fill level to return within +/-0.05 of the 1/2 set point (and stay
  // there for 0.5 s) after the first rising pulse. A stricter settling measure used by
  // the gain ablation.
  double settle_time_s = 0.0;

  int64_t quality_exceptions = 0;
  int64_t squish_events = 0;
  int64_t consumer_deadline_misses = 0;
  uint64_t trace_hash = 0;
  double consumer_final_alloc_ppt = 0.0;
  double hog_final_alloc_ppt = 0.0;
  // Mean absolute deviation of fill level from the 1/2 set point over the steady tail.
  double fill_deviation = 0.0;
};

PipelineResult RunPipelineScenario(const PipelineParams& params);

// ---------------------------------------------------------------------------
// Fig. 5: controller overhead vs number of controlled processes.
// ---------------------------------------------------------------------------

struct ControllerOverheadPoint {
  int num_processes = 0;
  double overhead_fraction = 0.0;  // Controller CPU / total CPU, 1 == 100%.
};

// Measures the controller overhead with `num_processes` controlled-but-idle dummy
// threads, controller at 10 ms period, over `run_for` of virtual time.
ControllerOverheadPoint MeasureControllerOverhead(int num_processes,
                                                  Duration run_for = Duration::Seconds(2));

// ---------------------------------------------------------------------------
// Fig. 8: dispatch overhead vs dispatcher frequency.
// ---------------------------------------------------------------------------

struct DispatchOverheadPoint {
  double frequency_hz = 0.0;
  double cpu_available = 0.0;  // Fraction of CPU a hog could grab.
};

DispatchOverheadPoint MeasureDispatchOverhead(double frequency_hz,
                                              Duration run_for = Duration::Seconds(3));

// ---------------------------------------------------------------------------
// §4.4 benefits: priority inversion (Mars Pathfinder) and starvation.
// ---------------------------------------------------------------------------

enum class SchedulerKind {
  kFeedbackRbs,     // Our system: RBS + feedback allocator.
  kFixedPriority,   // Fixed real-time priorities.
  kMlfq,            // Linux 2.x multi-level feedback.
  kLottery,         // Lottery scheduling.
};

const char* ToString(SchedulerKind kind);

// Builds one run-queue instance of a baseline scheduler (`kind` must not be
// kFeedbackRbs — feedback rigs are wired through System). `cpu` is the core the
// instance will serve (MLFQ reads its clock); `lottery_seed` feeds the lottery
// baseline's injected Rng. The single factory keeps the figure scenarios and the
// differential fuzz harness comparing identically configured baselines.
std::unique_ptr<Scheduler> MakeBaselineScheduler(SchedulerKind kind, const Cpu& cpu,
                                                 uint64_t lottery_seed);

struct PathfinderResult {
  // The high-"importance" periodic task's lock-acquisition waits.
  double high_max_wait_s = 0.0;
  // Max wait over acquisitions begun after t = 2 s, i.e. excluding the feedback
  // controller's allocation ramp-up.
  double high_max_wait_steady_s = 0.0;
  // True when the high task was still blocked on the mutex at simulation end — the
  // unbounded-inversion signature.
  bool high_still_blocked = false;
  int64_t high_acquisitions = 0;
  int64_t low_acquisitions = 0;
  // CPU fractions obtained by each thread.
  double high_cpu = 0.0;
  double medium_cpu = 0.0;
  double low_cpu = 0.0;
};

// `lottery_seed` feeds the lottery baseline's injected Rng (ignored by the other
// schedulers): every stochastic component in the tree draws from an explicitly
// seeded util/rng engine, so scenario runs are replayable from their parameters.
PathfinderResult RunPathfinderScenario(SchedulerKind kind,
                                       Duration run_for = Duration::Seconds(10),
                                       uint64_t lottery_seed = 1234);

struct StarvationResult {
  // Two CPU hogs; under priorities the lesser one starves, under the allocator both
  // make progress weighted by importance.
  double favored_cpu = 0.0;
  double lesser_cpu = 0.0;
  bool lesser_starved = false;  // Lesser thread received < 0.1% of the CPU.
};

StarvationResult RunStarvationScenario(SchedulerKind kind, double importance_ratio = 4.0,
                                       Duration run_for = Duration::Seconds(5),
                                       uint64_t lottery_seed = 1234);

// ---------------------------------------------------------------------------
// SMP: N producer/consumer pipelines spread across a multi-core machine.
// ---------------------------------------------------------------------------

// The paper's Fig. 6 pipeline, replicated: `num_pipelines` independent real-time
// producer → real-rate consumer pairs run on a `num_cpus`-core machine. Placement is
// the Machine's least-loaded policy; the controller allocates proportions within each
// core's budget; the rebalancer resolves any over-subscription. With
// num_cpus == num_pipelines == 1 this is exactly the Fig. 6 steady-state setup.
struct SmpParams {
  int num_cpus = 4;
  int num_pipelines = 4;
  double clock_hz = 400e6;

  // Per-pipeline shapes (same meaning as PipelineParams, steady rate, no pulses).
  Proportion producer_proportion = Proportion::Ppt(50);
  Duration producer_period = Duration::Millis(10);
  Cycles producer_cycles_per_item = 400'000;
  double bytes_per_item = 100.0;
  Cycles consumer_cycles_per_byte = 2'000;
  int64_t queue_bytes = 4'000;

  // Optional miscellaneous CPU hogs competing machine-wide.
  int num_hogs = 0;

  Duration run_for = Duration::Seconds(10);
};

struct SmpResult {
  int num_cpus = 0;
  // Aggregate dispatcher activity: schedule() invocations summed over cores, and the
  // same expressed per virtual second — the bench_smp_scale scaling metric.
  int64_t total_dispatches = 0;
  double dispatch_throughput_per_vsec = 0.0;
  int64_t migrations = 0;
  // User work as a fraction of the whole machine's capacity (all cores), plus the
  // per-core breakdown and each core's final reserved-proportion sum.
  double aggregate_user_fraction = 0.0;
  std::vector<double> core_user_fraction;
  std::vector<double> core_reserved_fraction;
  // End-to-end progress: bytes consumed summed over every pipeline's consumer.
  int64_t total_consumed_bytes = 0;
  int64_t quality_exceptions = 0;
  int64_t squish_events = 0;
  uint64_t trace_hash = 0;
};

SmpResult RunSmpPipelinesScenario(const SmpParams& params);

// ---------------------------------------------------------------------------
// Server farm: hundreds to thousands of pipeline threads on a few cores — the
// production-scale workload the indexed dispatch hot path (sched/rbs.h) and the
// Machine's idle fast-forward exist for.
// ---------------------------------------------------------------------------

// `num_pipelines` producer → consumer pairs plus `num_hogs` background soakers on a
// `num_cpus`-core machine. Producers hold small real-time reservations with periods
// cycled through a spread of values (so the rate-monotonic index carries many
// distinct ranks); consumers are real-rate under the feedback controller; hogs are
// miscellaneous. Thread count = 2 * num_pipelines + num_hogs. The default clock
// models a modern server core rather than the paper's 400 MHz testbed, keeping the
// per-10 ms controller pass (which is O(threads)) a realistic fraction of a core.
struct ServerFarmParams {
  int num_cpus = 4;
  int num_pipelines = 256;
  int num_hogs = 4;
  double clock_hz = 2.4e9;

  Proportion producer_proportion = Proportion::Ppt(4);
  Cycles producer_cycles_per_item = 60'000;
  double bytes_per_item = 64.0;
  Cycles consumer_cycles_per_byte = 400;
  int64_t queue_bytes = 2'048;
  // Producer period for pipeline i: kPeriodSpreadMs[i % spread] milliseconds.
  // (See scenarios.cc; 5..40 ms.)

  Duration run_for = Duration::Millis(500);

  // Scheduler/machine hot-path knobs, exposed so bench_dispatch_scale can A/B the
  // indexed pick against the reference scan (and fast-forward on/off) on the same
  // workload. Defaults are the production configuration.
  RbsConfig rbs;
  bool idle_fast_forward = true;
  // Control-plane knobs, exposed so bench_controller_scale (and the golden
  // mode-equivalence test) can A/B the staged pipeline against the reference sweep
  // on the same farm. Defaults are the production configuration.
  ControllerConfig controller;
  // Memory-layout knob (SystemConfig::thread_slabs): hot-field slab columns on
  // (production) vs the pre-slab SimThread pointer chase — bench_dispatch_scale's
  // A/B axis, and the golden slab-equivalence test's two sides.
  bool thread_slabs = true;
  // Host OS threads driving the simulated cores (MachineConfig::host_threads).
  // Any value produces the same trace hash — bench_parallel_engine's scaling axis
  // and the 1-vs-N equivalence tests' knob.
  int host_threads = 1;
};

struct ServerFarmResult {
  int num_cpus = 0;
  int num_threads = 0;
  // Aggregate dispatcher activity over the run: schedule() invocations, and the rate
  // per virtual second — the bench_dispatch_scale scaling metric.
  int64_t total_dispatches = 0;
  double dispatch_per_vsec = 0.0;
  int64_t context_switches = 0;
  int64_t migrations = 0;
  int64_t idle_suspensions = 0;
  // Tick rounds the parallel engine actually fanned out (0 at host_threads = 1).
  int64_t parallel_rounds = 0;
  // The subset of parallel_rounds admitted through the mailbox gate (rounds whose
  // queue operations ran against pre-reserved stakes rather than hog-only work).
  int64_t mailbox_rounds = 0;
  double aggregate_user_fraction = 0.0;
  int64_t total_consumed_bytes = 0;
  int64_t squish_events = 0;
  int64_t quality_exceptions = 0;
  uint64_t trace_hash = 0;
};

ServerFarmResult RunServerFarmScenario(const ServerFarmParams& params);

// ---------------------------------------------------------------------------
// §4.4: the media pipeline whose decoder stage needs far more CPU than the rest.
// ---------------------------------------------------------------------------

struct MediaPipelineResult {
  // Realized CPU shares of the three stages (ppt of the whole run) — the allocations
  // the controller converged on, free of sampling aliasing.
  double parse_ppt = 0.0;
  double decode_ppt = 0.0;
  double render_ppt = 0.0;
  // Whether every inter-stage queue settled near half-full.
  double max_fill_deviation = 0.0;
  int64_t rendered_bytes = 0;
};

MediaPipelineResult RunMediaPipelineScenario(Duration run_for = Duration::Seconds(20));

}  // namespace realrate

#endif  // REALRATE_EXP_SCENARIOS_H_
