#include "core/controller.h"

#include <algorithm>
#include <cmath>

#include "core/pressure.h"
#include "util/assert.h"
#include "util/log.h"

namespace realrate {

FeedbackAllocator::FeedbackAllocator(Machine& machine, RbsScheduler& rbs, QueueRegistry& queues,
                                     const ControllerConfig& config)
    : machine_(machine),
      rbs_(rbs),
      queues_(queues),
      config_(config),
      overload_threshold_(config.overload_threshold),
      ledger_(machine.num_cpus()),
      core_requests_(static_cast<size_t>(machine.num_cpus())),
      core_slots_(static_cast<size_t>(machine.num_cpus())),
      core_grants_(static_cast<size_t>(machine.num_cpus())) {
  RR_EXPECTS(config.interval.IsPositive());
  RR_EXPECTS(config.overload_threshold > 0 && config.overload_threshold <= 1.0);
  ledger_.SetThresholdPpt(Proportion::FromFraction(overload_threshold_).ppt());
  slabs_ = machine_.registry().slabs();
  WireScheduler(rbs_);
  // Keep the ledger registered with where each fixed reservation's proportion is
  // drawn from: the rebalancer (and PlaceAndAdmit's steering) migrate threads
  // between cores without going through this controller.
  machine_.SetMigrationHook([this](SimThread* thread, CpuId from, CpuId to) {
    const Controlled* c = Find(thread->id());
    if (c != nullptr && IsFixedClass(c->cls)) {
      ledger_.MoveFixed(from, to, c->fixed_ppt);
    }
  });
}

FeedbackAllocator::~FeedbackAllocator() { machine_.SetMigrationHook(nullptr); }

void FeedbackAllocator::WireScheduler(RbsScheduler& rbs) {
  rbs.SetDeadlineMissFn([this](SimThread* t, Cycles shortfall, TimePoint now) {
    OnDeadlineMiss(t, shortfall, now);
  });
  schedulers_.push_back(&rbs);
}

RbsScheduler& FeedbackAllocator::SchedulerFor(const SimThread* thread) {
  return SchedulerForCore(thread->cpu());
}

RbsScheduler& FeedbackAllocator::SchedulerForCore(CpuId core) {
  const auto index = static_cast<size_t>(core);
  return index < schedulers_.size() ? *schedulers_[index] : rbs_;
}

void FeedbackAllocator::Start() {
  RR_EXPECTS(!started_);
  started_ = true;
  ScheduleNext();
}

// Reschedules from inside each invocation so interval changes take effect; the
// recursion is flattened by the event queue.
void FeedbackAllocator::ScheduleNext() {
  machine_.sim().ScheduleAfter(config_.interval, [this] {
    RunOnce(machine_.sim().Now());
    ScheduleNext();
  });
}

FeedbackAllocator::Controlled* FeedbackAllocator::Find(ThreadId id) {
  const auto it = slot_of_.find(id);
  return it == slot_of_.end() ? nullptr : &controlled_[it->second];
}

const FeedbackAllocator::Controlled* FeedbackAllocator::Find(ThreadId id) const {
  const auto it = slot_of_.find(id);
  return it == slot_of_.end() ? nullptr : &controlled_[it->second];
}

void FeedbackAllocator::RegisterControlled(Controlled&& c) {
  // Cache the thread's slab slot (stable for its lifetime) so the per-tick sweeps
  // read columns without re-resolving; stays kNoSlot for slab-less registries.
  c.slab_slot = (slabs_ != nullptr && c.thread->bound_slabs() == slabs_)
                    ? c.thread->slab_slot()
                    : ThreadSlabs::kNoSlot;
  if (IsFixedClass(c.cls)) {
    ledger_.AddFixed(c.thread->cpu(), c.fixed_ppt);
  }
  controlled_.push_back(std::move(c));
  slot_of_[controlled_.back().thread->id()] = controlled_.size() - 1;
}

void FeedbackAllocator::RemoveSlot(size_t slot) {
  RR_EXPECTS(slot < controlled_.size());
  Controlled& victim = controlled_[slot];
  if (IsFixedClass(victim.cls)) {
    ledger_.RemoveFixed(victim.thread->cpu(), victim.fixed_ppt);
  }
  slot_of_.erase(victim.thread->id());
  const size_t last = controlled_.size() - 1;
  if (slot != last) {
    controlled_[slot] = std::move(controlled_[last]);
    slot_of_[controlled_[slot].thread->id()] = slot;
  }
  controlled_.pop_back();
}

void FeedbackAllocator::RebuildSlotIndex() {
  slot_of_.clear();
  for (size_t i = 0; i < controlled_.size(); ++i) {
    slot_of_[controlled_[i].thread->id()] = i;
  }
}

bool FeedbackAllocator::ExitedOf(const Controlled& c) const {
  // state(kExited) ⇔ SimThread::HasExited(): the state column is a write-through
  // mirror of the object's run state.
  return c.slab_slot != ThreadSlabs::kNoSlot
             ? slabs_->state(c.slab_slot) == ThreadState::kExited
             : c.thread->HasExited();
}

CpuId FeedbackAllocator::CpuOf(const Controlled& c) const {
  return c.slab_slot != ThreadSlabs::kNoSlot ? slabs_->cpu(c.slab_slot) : c.thread->cpu();
}

double FeedbackAllocator::ImportanceOf(const Controlled& c) const {
  return c.slab_slot != ThreadSlabs::kNoSlot ? slabs_->importance(c.slab_slot)
                                             : c.thread->importance();
}

void FeedbackAllocator::MirrorPressure(const Controlled& c) {
  if (c.slab_slot != ThreadSlabs::kNoSlot) {
    slabs_->set_pressure(c.slab_slot, c.last_pressure);
  }
}

// Order-preserving, unlike Remove's last-slot swap: within one run the surviving
// threads keep their squish enumeration order, exactly as the original erase did.
void FeedbackAllocator::DropExited() {
  bool any = false;
  for (const Controlled& c : controlled_) {
    if (ExitedOf(c)) {
      any = true;
      break;
    }
  }
  if (!any) {
    return;
  }
  for (const Controlled& c : controlled_) {
    if (ExitedOf(c) && IsFixedClass(c.cls)) {
      ledger_.RemoveFixed(CpuOf(c), c.fixed_ppt);
    }
  }
  controlled_.erase(std::remove_if(controlled_.begin(), controlled_.end(),
                                   [this](const Controlled& c) { return ExitedOf(c); }),
                    controlled_.end());
  RebuildSlotIndex();
}

double FeedbackAllocator::FixedReservedSum() const { return ledger_.FixedFractionTotal(); }

double FeedbackAllocator::FixedReservedSumOnCore(CpuId core) const {
  return ledger_.FixedFractionOn(core);
}

int64_t FeedbackAllocator::FixedPptOnCoreScan(CpuId core) const {
  int64_t sum = 0;
  for (const Controlled& c : controlled_) {
    if (IsFixedClass(c.cls) && CpuOf(c) == core) {
      sum += c.fixed_ppt;
    }
  }
  return sum;
}

// Real-time admission on an SMP machine: admit against the thread's own core's fixed
// budget; only when that core would reject the request and the core with the most
// unreserved fixed capacity would accept it is the thread migrated there first — a
// reservation that fits where the thread already sits never moves. On one core this
// is the paper's admission test unchanged. O(cores): the per-core sums are ledger
// reads, not sweeps over the controlled set.
bool FeedbackAllocator::PlaceAndAdmit(SimThread* thread, double request) {
  if (machine_.num_cpus() > 1) {
    CpuId best = thread->cpu();
    double best_fixed = ledger_.FixedFractionOn(best);
    for (CpuId c = 0; c < machine_.num_cpus(); ++c) {
      const double fixed = ledger_.FixedFractionOn(c);
      if (fixed < best_fixed - 1e-12) {
        best = c;
        best_fixed = fixed;
      }
    }
    if (best != thread->cpu() && AdmitRealTime(best_fixed, request, overload_threshold_) &&
        !AdmitRealTime(ledger_.FixedFractionOn(thread->cpu()), request, overload_threshold_)) {
      machine_.Migrate(thread, best);
    }
  }
  return AdmitRealTime(ledger_.FixedFractionOn(thread->cpu()), request, overload_threshold_);
}

bool FeedbackAllocator::AddRealTime(SimThread* thread, Proportion proportion, Duration period) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(Find(thread->id()) == nullptr);
  const double request = proportion.ToFraction();
  if (!PlaceAndAdmit(thread, request)) {
    machine_.sim().trace().Record(machine_.sim().Now(), TraceKind::kRejected, thread->id(),
                                  proportion.ppt());
    return false;
  }
  Controlled c;
  c.thread = thread;
  c.cls = ThreadClass::kRealTime;
  c.period = period;
  c.fixed_ppt = proportion.ppt();
  c.desired = c.granted = request;
  thread->set_thread_class(ThreadClass::kRealTime);
  SchedulerFor(thread).SetReservation(thread, proportion, period, machine_.sim().Now());
  machine_.sim().trace().Record(machine_.sim().Now(), TraceKind::kAdmitted, thread->id(),
                                proportion.ppt());
  RegisterControlled(std::move(c));
  return true;
}

bool FeedbackAllocator::AddAperiodicRealTime(SimThread* thread, Proportion proportion) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(Find(thread->id()) == nullptr);
  const double request = proportion.ToFraction();
  if (!PlaceAndAdmit(thread, request)) {
    machine_.sim().trace().Record(machine_.sim().Now(), TraceKind::kRejected, thread->id(),
                                  proportion.ppt());
    return false;
  }
  Controlled c;
  c.thread = thread;
  c.cls = ThreadClass::kAperiodicRealTime;
  // "Without a progress metric with which to assess the application's needs, our
  // prototype uses a default value of 30 milliseconds."
  c.period = config_.default_period;
  c.fixed_ppt = proportion.ppt();
  c.desired = c.granted = request;
  thread->set_thread_class(ThreadClass::kAperiodicRealTime);
  SchedulerFor(thread).SetReservation(thread, proportion, c.period, machine_.sim().Now());
  machine_.sim().trace().Record(machine_.sim().Now(), TraceKind::kAdmitted, thread->id(),
                                proportion.ppt());
  RegisterControlled(std::move(c));
  return true;
}

void FeedbackAllocator::AddRealRate(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(Find(thread->id()) == nullptr);
  // A real-rate thread without a registered progress metric is a contract violation:
  // the caller should have used AddMiscellaneous.
  RR_EXPECTS(queues_.HasMetrics(thread->id()));
  Controlled c;
  c.thread = thread;
  c.cls = ThreadClass::kRealRate;
  c.period = config_.default_period;
  c.estimator = std::make_unique<ProportionEstimator>(config_.estimator);
  if (config_.enable_period_estimation) {
    c.period_estimator = std::make_unique<PeriodEstimator>(config_.period_estimator);
    const size_t window =
        std::max<size_t>(2, static_cast<size_t>(c.period / config_.interval));
    c.fill_window = std::make_unique<RingBuffer<double>>(window);
    c.last_period_mark = machine_.sim().Now();
  }
  c.desired = c.granted = config_.estimator.min_fraction;
  thread->set_thread_class(ThreadClass::kRealRate);
  Actuate(c, c.granted, machine_.sim().Now());
  RegisterControlled(std::move(c));
}

void FeedbackAllocator::AddMiscellaneous(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(Find(thread->id()) == nullptr);
  Controlled c;
  c.thread = thread;
  c.cls = ThreadClass::kMiscellaneous;
  c.period = config_.default_period;
  c.estimator = std::make_unique<ProportionEstimator>(config_.estimator);
  c.desired = c.granted = config_.estimator.min_fraction;
  thread->set_thread_class(ThreadClass::kMiscellaneous);
  Actuate(c, c.granted, machine_.sim().Now());
  RegisterControlled(std::move(c));
}

void FeedbackAllocator::AddInteractive(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(Find(thread->id()) == nullptr);
  Controlled c;
  c.thread = thread;
  c.cls = ThreadClass::kInteractive;
  // "Interactive jobs have specific requirements (periods relative to human
  // perception)": a small fixed period; the proportion floats with measured bursts.
  c.period = config_.interactive_period;
  c.desired = c.granted = config_.estimator.min_fraction;
  thread->set_thread_class(ThreadClass::kInteractive);
  Actuate(c, c.granted, machine_.sim().Now());
  RegisterControlled(std::move(c));
}

void FeedbackAllocator::Remove(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  const auto it = slot_of_.find(thread->id());
  if (it == slot_of_.end()) {
    return;
  }
  RemoveSlot(it->second);
}

void FeedbackAllocator::EnsureQualityWindow(Controlled& c) {
  if (c.quality_window == nullptr) {
    c.quality_window = std::make_unique<SaturationWindow>(
        static_cast<size_t>(10 * config_.quality_patience));
  }
}

// ---------------------------------------------------------------------------
// The staged pipeline.
// ---------------------------------------------------------------------------

void FeedbackAllocator::RunOnce(TimePoint now) {
  if (config_.use_pipeline) {
    RunOncePipeline(now);
  } else {
    RunOnceReference(now);
  }
}

void FeedbackAllocator::RunOncePipeline(TimePoint now) {
  ++invocations_;
  // If the machine's dispatch clocks are idle-suspended, settle the elided ticks
  // before sampling or actuating: budgets and period phases must read exactly as a
  // continuously ticking machine would present them at this instant.
  machine_.SyncSkippedTicks(now);
  const double dt = config_.interval.ToSeconds();

  DropExited();
  SampleStage();
  EstimateStage(dt, now);
  ResolveStage();
  ActuateStage(now);

  // Slab shadow: after actuation every hot-field column must agree with the
  // object state of every controlled thread, and the pressure column must hold
  // exactly the pressure this tick estimated from.
  if (config_.shadow_check && slabs_ != nullptr) {
    for (const Controlled& c : controlled_) {
      if (c.slab_slot == ThreadSlabs::kNoSlot) {
        continue;
      }
      RR_CHECK(slabs_->MatchesObject(*c.thread));
      RR_CHECK(slabs_->pressure(c.slab_slot) == c.last_pressure);
      ++shadow_checks_;
    }
  }

  // The controller's own cost (Fig. 5): fixed + per-controlled-thread.
  if (config_.charge_overhead) {
    machine_.StealCycles(CpuUse::kController,
                         machine_.sim().cpu().ControllerCost(static_cast<int>(controlled_.size())));
  }

  if (post_run_hook_) {
    post_run_hook_(now);
  }
}

void FeedbackAllocator::SampleStage() {
  // CPU each thread actually used last interval, as a fraction of the interval.
  const auto interval_cycles =
      static_cast<double>(machine_.sim().cpu().DurationToCycles(config_.interval));
  for (Controlled& c : controlled_) {
    c.tick_used_fraction = static_cast<double>(c.thread->TakeWindowCycles()) / interval_cycles;
    c.tick_clean = false;
    if (c.cls != ThreadClass::kRealRate) {
      continue;
    }
    // Dirty-set check: if the linkage list and every linked queue kept their change
    // epochs since the previous tick, the pressure (a pure function of queue fills)
    // is provably the cached value — skip the sweep.
    if (c.linkage_cache.IsClean(queues_, c.thread->id())) {
      c.tick_clean = true;
      ++clean_samples_;
      c.last_pressure = c.linkage_cache.pressure;
      if (config_.shadow_check) {
        RR_CHECK(c.last_pressure == RawPressure(queues_, c.thread->id()));
        ++shadow_checks_;
      }
    } else {
      ++dirty_samples_;
      const auto& linkages = c.linkage_cache.Refresh(queues_, c.thread->id());
      c.last_pressure = RawPressure(linkages);
      c.linkage_cache.pressure = c.last_pressure;
    }
  }
}

void FeedbackAllocator::EstimateStage(double dt, TimePoint now) {
  for (Controlled& c : controlled_) {
    switch (c.cls) {
      case ThreadClass::kRealTime:
      case ThreadClass::kAperiodicRealTime:
        // Reservations are not adapted: "the controller sets the thread proportion
        // and period to the specified amount and does not modify them in practice."
        c.desired = c.FixedFraction();
        c.last_pressure = 0.0;
        MirrorPressure(c);
        continue;
      case ThreadClass::kRealRate:
        break;  // Pressure sampled by SampleStage.
      case ThreadClass::kMiscellaneous:
        // Constant pressure "to allocate more CPU to a miscellaneous thread, until it
        // is either satisfied or the CPU becomes oversubscribed." Satisfaction shows
        // up as under-use, which the estimator's reclaim branch converts into a
        // reduction.
        c.last_pressure = config_.misc_pressure;
        break;
      case ThreadClass::kInteractive: {
        // Proportion from the measured run-before-block burst: enough allocation to
        // serve one typical burst within one (small) period, plus headroom. A thread
        // saturating its grant (backlogged, never blocking) has no measurable burst
        // yet, so its allocation doubles until it starts blocking between events —
        // the bootstrap of the "time they typically run before blocking" measurement.
        const auto period_cycles =
            static_cast<double>(machine_.sim().cpu().DurationToCycles(c.period));
        double need =
            config_.interactive_headroom * c.thread->burst_ewma_cycles() / period_cycles;
        const bool saturated =
            c.granted > 0 && c.tick_used_fraction >= 0.9 * c.granted;
        if (saturated) {
          need = std::max(need, c.granted * 2.0);
        }
        c.desired = std::clamp(need, config_.estimator.min_fraction,
                               config_.estimator.max_fraction);
        c.last_pressure = 0.0;
        MirrorPressure(c);
        continue;
      }
    }
    c.desired = c.estimator->Step(c.last_pressure, c.tick_used_fraction, c.granted, dt);
    MirrorPressure(c);

    if (c.cls == ThreadClass::kRealRate && config_.enable_period_estimation) {
      // SampleStage validated (or refreshed) the cache this tick; no need to
      // re-resolve the registry's per-thread index.
      const auto& linkages = *c.linkage_cache.linkages;
      if (!linkages.empty()) {
        c.fill_window->Push(linkages.front().queue->FillFraction());
      }
      if (now - c.last_period_mark >= c.period) {
        ApplyPeriodEstimation(c, now);
        c.last_period_mark = now;
      }
    }
  }
}

void FeedbackAllocator::ResolveStage() {
  // One pass buckets every adaptive thread's request under its core, preserving the
  // controlled-set enumeration order within each core — the order the reference
  // sweep's per-core filter scan produces, which the squish arithmetic depends on.
  const int cores = machine_.num_cpus();
  for (int core = 0; core < cores; ++core) {
    core_requests_[static_cast<size_t>(core)].clear();
    core_slots_[static_cast<size_t>(core)].clear();
    core_grants_[static_cast<size_t>(core)].clear();
    ledger_.SetGranted(core, 0.0);
  }
  for (size_t slot = 0; slot < controlled_.size(); ++slot) {
    Controlled& c = controlled_[slot];
    if (!IsAdaptiveClass(c.cls)) {
      continue;
    }
    // Column reads: cpu and importance stream from the slabs across the whole
    // controlled set instead of touching each SimThread.
    const auto core = static_cast<size_t>(CpuOf(c));
    core_requests_[core].push_back(
        {c.thread->id(), c.desired, ImportanceOf(c), config_.estimator.min_fraction});
    core_slots_[core].push_back(slot);
  }

  // Fixed reservations are untouchable; the adaptive classes on each core share what
  // remains of that core's budget. The squish math is the paper's uniprocessor logic
  // applied within one core's overload threshold; cross-core balancing is the
  // Machine's rebalancer's job, not the squisher's.
  bool any_overload = false;
  for (CpuId core = 0; core < cores; ++core) {
    const auto& requests = core_requests_[static_cast<size_t>(core)];
    if (requests.empty()) {
      continue;
    }
    if (config_.shadow_check) {
      RR_CHECK(ledger_.fixed_ppt_on(core) == FixedPptOnCoreScan(core));
      ++shadow_checks_;
    }
    const double available = overload_threshold_ - ledger_.FixedFractionOn(core);
    double desired_sum = 0.0;
    for (const SquishRequest& r : requests) {
      desired_sum += r.desired;
    }
    const std::vector<SquishResult> grants = Squish(requests, std::max(0.0, available));
    if (desired_sum > available) {
      any_overload = true;
    }
    RR_CHECK(grants.size() == core_slots_[static_cast<size_t>(core)].size());
    double granted_sum = 0.0;
    for (const SquishResult& g : grants) {
      core_grants_[static_cast<size_t>(core)].push_back(g.granted);
      granted_sum += g.granted;
    }
    ledger_.SetGranted(core, granted_sum);
  }
  if (any_overload) {
    ++squish_events_;
  }
}

void FeedbackAllocator::ActuateStage(TimePoint now) {
  const int cores = machine_.num_cpus();
  for (CpuId core = 0; core < cores; ++core) {
    const auto& slots = core_slots_[static_cast<size_t>(core)];
    if (slots.empty()) {
      continue;
    }
    const auto& grants = core_grants_[static_cast<size_t>(core)];
    batch_.clear();
    for (size_t i = 0; i < slots.size(); ++i) {
      Controlled& c = controlled_[slots[i]];
      const double fraction = grants[i];
      const Proportion p = Proportion::FromFraction(fraction);
      c.granted = fraction;
      if (c.thread->policy() == SchedPolicy::kReservation && c.thread->proportion() == p &&
          c.thread->period() == c.period) {
        continue;  // No change; avoid perturbing the budget.
      }
      batch_.push_back({c.thread, p, c.period});
    }
    if (batch_.empty()) {
      continue;
    }
    // One batched call per core instead of one scheduler call per changed thread
    // (each update still pays its own O(log n) index maintenance inside).
    SchedulerForCore(core).ApplyReservations(batch_, now);
    for (const ReservationUpdate& u : batch_) {
      machine_.sim().trace().Record(now, TraceKind::kAllocationSet, u.thread->id(),
                                    u.proportion.ppt(), u.period.nanos());
      // A thread sleeping out an exhausted budget deserves to run again if the
      // controller just raised its allocation.
      if (u.thread->state() == ThreadState::kSleeping && u.thread->budget_remaining() > 0) {
        machine_.CancelSleep(u.thread);
      }
    }
  }

  // Post-grant quality audit: saturation evidence is judged against this tick's
  // resolved grants, exactly where the reference sweep's quality phase sits.
  for (Controlled& c : controlled_) {
    QualityAudit(c, now);
  }
}

BoundedBuffer* FeedbackAllocator::GatherSaturation(Controlled& c) {
  // Only reached on dirty ticks, where SampleStage just refreshed the cache:
  // reuse its validated linkage reference instead of re-resolving the registry.
  const auto& linkages = *c.linkage_cache.linkages;
  c.last_full_hits.resize(linkages.size(), 0);
  c.last_empty_hits.resize(linkages.size(), 0);
  BoundedBuffer* saturated = nullptr;
  BoundedBuffer* static_saturated = nullptr;
  for (size_t i = 0; i < linkages.size(); ++i) {
    const QueueLinkage& l = linkages[i];
    const bool full_hit = l.queue->full_hits() > c.last_full_hits[i];
    const bool empty_hit = l.queue->empty_hits() > c.last_empty_hits[i];
    c.last_full_hits[i] = l.queue->full_hits();
    c.last_empty_hits[i] = l.queue->empty_hits();
    // A consumer that cannot keep up sees its input pinned full (or its upstream
    // producer bouncing off a full queue); a producer that cannot keep up sees its
    // output pinned empty (or its downstream consumer finding nothing).
    const bool fill_starved = FillStarved(l, config_.quality_fill_extreme);
    const bool starved =
        fill_starved || (l.role == QueueRole::kConsumer ? full_hit : empty_hit);
    if (starved && saturated == nullptr) {
      saturated = l.queue;
    }
    if (fill_starved && static_saturated == nullptr) {
      static_saturated = l.queue;
    }
  }
  // Cache the fill-only verdict: on a clean tick the hit deltas are zero by
  // definition, so this is exactly what the full sweep would conclude.
  c.linkage_cache.static_saturated = static_saturated;
  return saturated;
}

void FeedbackAllocator::QualityAudit(Controlled& c, TimePoint now) {
  if (c.cls != ThreadClass::kRealRate) {
    return;
  }
  EnsureQualityWindow(c);

  BoundedBuffer* saturated = nullptr;
  if (c.tick_clean) {
    saturated = c.linkage_cache.static_saturated;
    if (config_.shadow_check) {
      RR_CHECK(saturated == StaticSaturatedQueue(queues_.LinkagesFor(c.thread->id()),
                                                 config_.quality_fill_extreme));
      ++shadow_checks_;
    }
  } else {
    saturated = GatherSaturation(c);
  }

  // A thread can only be starved by the CPU if its allocation is the limiting factor:
  // it was squished below its desire, or its desire is pinned at the ceiling. Without
  // this gate, routine queue-drain events in healthy pipelines would look like
  // starvation.
  const bool allocation_limited = c.granted < c.desired - 1e-9 ||
                                  c.desired >= config_.estimator.max_fraction - 1e-9;
  c.quality_window->Push((allocation_limited && saturated != nullptr) ? 1 : 0);

  const int evidence = c.quality_window->evidence();
  if (config_.shadow_check) {
    RR_CHECK(evidence == c.quality_window->ScanEvidence());
    ++shadow_checks_;
  }
  if (evidence >= config_.quality_patience && saturated != nullptr) {
    c.quality_window->Clear();
    ++quality_exceptions_;
    machine_.sim().trace().Record(now, TraceKind::kQualityException, c.thread->id(),
                                  saturated->id());
    if (quality_fn_) {
      quality_fn_(QualityException{now, c.thread, saturated});
    }
  }
}

// ---------------------------------------------------------------------------
// The reference sweep: the original monolithic RunOnce, kept as the oracle and the
// bench_controller_scale comparison baseline. Schedules bit-identically to the
// pipeline; differs only in cost (per-call budget scans, full linkage sweeps every
// tick, full-window evidence rescans, per-thread actuation calls).
// ---------------------------------------------------------------------------

void FeedbackAllocator::SampleAndEstimate(Controlled& c, double dt, TimePoint now) {
  // CPU the thread actually used last interval, as a fraction of the interval.
  const Cycles interval_cycles = machine_.sim().cpu().DurationToCycles(config_.interval);
  const double used_fraction =
      static_cast<double>(c.thread->TakeWindowCycles()) / static_cast<double>(interval_cycles);

  switch (c.cls) {
    case ThreadClass::kRealTime:
    case ThreadClass::kAperiodicRealTime:
      c.desired = c.FixedFraction();
      c.last_pressure = 0.0;
      return;
    case ThreadClass::kRealRate:
      c.last_pressure = RawPressure(queues_, c.thread->id());
      break;
    case ThreadClass::kMiscellaneous:
      c.last_pressure = config_.misc_pressure;
      break;
    case ThreadClass::kInteractive: {
      const auto period_cycles =
          static_cast<double>(machine_.sim().cpu().DurationToCycles(c.period));
      double need =
          config_.interactive_headroom * c.thread->burst_ewma_cycles() / period_cycles;
      const bool saturated = c.granted > 0 && used_fraction >= 0.9 * c.granted;
      if (saturated) {
        need = std::max(need, c.granted * 2.0);
      }
      c.desired = std::clamp(need, config_.estimator.min_fraction,
                             config_.estimator.max_fraction);
      c.last_pressure = 0.0;
      return;
    }
  }
  c.desired = c.estimator->Step(c.last_pressure, used_fraction, c.granted, dt);

  if (c.cls == ThreadClass::kRealRate && config_.enable_period_estimation) {
    const auto& linkages = queues_.LinkagesFor(c.thread->id());
    if (!linkages.empty()) {
      c.fill_window->Push(linkages.front().queue->FillFraction());
    }
    if (now - c.last_period_mark >= c.period) {
      ApplyPeriodEstimation(c, now);
      c.last_period_mark = now;
    }
  }
}

void FeedbackAllocator::ApplyPeriodEstimation(Controlled& c, TimePoint now) {
  // Fill swing over the last period's worth of samples.
  double lo = 1.0;
  double hi = 0.0;
  for (size_t i = 0; i < c.fill_window->size(); ++i) {
    lo = std::min(lo, (*c.fill_window)[i]);
    hi = std::max(hi, (*c.fill_window)[i]);
  }
  if (c.fill_window->size() >= 2) {
    c.period_estimator->ObserveFillSwing(std::max(0.0, hi - lo));
  }
  const Duration proposed = c.period_estimator->Propose(c.period, c.granted);
  if (proposed != c.period) {
    c.period = proposed;
    const size_t window =
        std::max<size_t>(2, static_cast<size_t>(c.period / config_.interval));
    c.fill_window = std::make_unique<RingBuffer<double>>(window);
    Actuate(c, c.granted, now);
  }
}

void FeedbackAllocator::CheckQuality(Controlled& c, TimePoint now) {
  if (c.cls != ThreadClass::kRealRate) {
    return;
  }
  EnsureQualityWindow(c);

  // Gather this interval's saturation evidence regardless of gating so the hit
  // counters stay current.
  const auto& linkages = queues_.LinkagesFor(c.thread->id());
  c.last_full_hits.resize(linkages.size(), 0);
  c.last_empty_hits.resize(linkages.size(), 0);
  BoundedBuffer* saturated = nullptr;
  for (size_t i = 0; i < linkages.size(); ++i) {
    const QueueLinkage& l = linkages[i];
    const double fill = l.queue->FillFraction();
    const bool full_hit = l.queue->full_hits() > c.last_full_hits[i];
    const bool empty_hit = l.queue->empty_hits() > c.last_empty_hits[i];
    c.last_full_hits[i] = l.queue->full_hits();
    c.last_empty_hits[i] = l.queue->empty_hits();
    const bool starved = (l.role == QueueRole::kConsumer)
                             ? (fill >= config_.quality_fill_extreme || full_hit)
                             : (fill <= 1.0 - config_.quality_fill_extreme || empty_hit);
    if (starved && saturated == nullptr) {
      saturated = l.queue;
    }
  }

  const bool allocation_limited = c.granted < c.desired - 1e-9 ||
                                  c.desired >= config_.estimator.max_fraction - 1e-9;
  c.quality_window->Push((allocation_limited && saturated != nullptr) ? 1 : 0);

  // The reference recount scans the whole window, as the monolithic sweep did.
  const int evidence = c.quality_window->ScanEvidence();
  if (evidence >= config_.quality_patience && saturated != nullptr) {
    c.quality_window->Clear();
    ++quality_exceptions_;
    machine_.sim().trace().Record(now, TraceKind::kQualityException, c.thread->id(),
                                  saturated->id());
    if (quality_fn_) {
      quality_fn_(QualityException{now, c.thread, saturated});
    }
  }
}

void FeedbackAllocator::Actuate(Controlled& c, double fraction, TimePoint now) {
  const Proportion p = Proportion::FromFraction(fraction);
  c.granted = fraction;
  if (c.thread->policy() == SchedPolicy::kReservation && c.thread->proportion() == p &&
      c.thread->period() == c.period) {
    return;  // No change; avoid perturbing the budget.
  }
  SchedulerFor(c.thread).SetReservation(c.thread, p, c.period, now);
  machine_.sim().trace().Record(now, TraceKind::kAllocationSet, c.thread->id(), p.ppt(),
                                c.period.nanos());
  // A thread sleeping out an exhausted budget deserves to run again if the controller
  // just raised its allocation.
  if (c.thread->state() == ThreadState::kSleeping && c.thread->budget_remaining() > 0) {
    machine_.CancelSleep(c.thread);
  }
}

void FeedbackAllocator::RunOnceReference(TimePoint now) {
  ++invocations_;
  // If the machine's dispatch clocks are idle-suspended, settle the elided ticks
  // before sampling or actuating: budgets and period phases must read exactly as a
  // continuously ticking machine would present them at this instant.
  machine_.SyncSkippedTicks(now);
  const double dt = config_.interval.ToSeconds();

  // Drop exited threads.
  DropExited();

  // Phase 1: estimate desired allocations.
  for (Controlled& c : controlled_) {
    SampleAndEstimate(c, dt, now);
  }

  // Phase 2 + 3: overload resolution and actuation, per core. One core → identical
  // to the pre-SMP controller. The per-core fixed budget is re-derived by a fresh
  // sweep over the controlled set on every query — the cost profile the pipeline's
  // BudgetLedger replaces.
  bool any_overload = false;
  std::vector<SquishRequest> requests;
  std::vector<Controlled*> adaptive;
  for (CpuId core = 0; core < machine_.num_cpus(); ++core) {
    requests.clear();
    adaptive.clear();
    for (Controlled& c : controlled_) {
      if (IsAdaptiveClass(c.cls) && c.thread->cpu() == core) {
        requests.push_back({c.thread->id(), c.desired, c.thread->importance(),
                            config_.estimator.min_fraction});
        adaptive.push_back(&c);
      }
    }
    if (adaptive.empty()) {
      continue;
    }
    const double available =
        overload_threshold_ - static_cast<double>(FixedPptOnCoreScan(core)) / 1000.0;
    double desired_sum = 0.0;
    for (const SquishRequest& r : requests) {
      desired_sum += r.desired;
    }
    const std::vector<SquishResult> grants = Squish(requests, std::max(0.0, available));
    if (desired_sum > available) {
      any_overload = true;
    }
    RR_CHECK(grants.size() == adaptive.size());
    for (size_t i = 0; i < grants.size(); ++i) {
      Actuate(*adaptive[i], grants[i].granted, now);
    }
  }
  if (any_overload) {
    ++squish_events_;
  }

  // Phase 4: quality exceptions.
  for (Controlled& c : controlled_) {
    CheckQuality(c, now);
  }

  // Phase 5: the controller's own cost (Fig. 5): fixed + per-controlled-thread.
  if (config_.charge_overhead) {
    machine_.StealCycles(CpuUse::kController,
                         machine_.sim().cpu().ControllerCost(static_cast<int>(controlled_.size())));
  }

  if (post_run_hook_) {
    post_run_hook_(now);
  }
}

double FeedbackAllocator::DesiredFraction(ThreadId id) const {
  const Controlled* c = Find(id);
  return c != nullptr ? c->desired : 0.0;
}

double FeedbackAllocator::GrantedFraction(ThreadId id) const {
  const Controlled* c = Find(id);
  return c != nullptr ? c->granted : 0.0;
}

double FeedbackAllocator::LastPressure(ThreadId id) const {
  const Controlled* c = Find(id);
  return c != nullptr ? c->last_pressure : 0.0;
}

Duration FeedbackAllocator::PeriodOf(ThreadId id) const {
  const Controlled* c = Find(id);
  return c != nullptr ? c->period : Duration::Zero();
}

std::optional<ThreadClass> FeedbackAllocator::ClassOf(ThreadId id) const {
  const Controlled* c = Find(id);
  if (c == nullptr) {
    return std::nullopt;
  }
  return c->cls;
}

void FeedbackAllocator::OnDeadlineMiss(SimThread* thread, Cycles shortfall, TimePoint now) {
  machine_.sim().trace().Record(now, TraceKind::kDeadlineMiss, thread->id(), shortfall);
  if (config_.adaptive_admission) {
    // "If the RBS is missing deadlines, it notifies the controller which can increase
    // the amount of spare capacity by reducing the admission threshold."
    overload_threshold_ =
        std::max(config_.min_overload_threshold, overload_threshold_ - config_.admission_backoff);
    // Keep the ledger's spare aggregate defined against the post-backoff ceiling:
    // the cluster router reads head-room through the ledger, and routing new load
    // at a machine that is shedding admissions would fight the backoff.
    ledger_.SetThresholdPpt(Proportion::FromFraction(overload_threshold_).ppt());
  }
}

}  // namespace realrate
