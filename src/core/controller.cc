#include "core/controller.h"

#include <algorithm>
#include <cmath>

#include "core/overload.h"
#include "core/pressure.h"
#include "util/assert.h"
#include "util/log.h"

namespace realrate {

FeedbackAllocator::FeedbackAllocator(Machine& machine, RbsScheduler& rbs, QueueRegistry& queues,
                                     const ControllerConfig& config)
    : machine_(machine),
      rbs_(rbs),
      queues_(queues),
      config_(config),
      overload_threshold_(config.overload_threshold) {
  RR_EXPECTS(config.interval.IsPositive());
  RR_EXPECTS(config.overload_threshold > 0 && config.overload_threshold <= 1.0);
  WireScheduler(rbs_);
}

void FeedbackAllocator::WireScheduler(RbsScheduler& rbs) {
  rbs.SetDeadlineMissFn([this](SimThread* t, Cycles shortfall, TimePoint now) {
    OnDeadlineMiss(t, shortfall, now);
  });
  schedulers_.push_back(&rbs);
}

RbsScheduler& FeedbackAllocator::SchedulerFor(const SimThread* thread) {
  const auto core = static_cast<size_t>(thread->cpu());
  return core < schedulers_.size() ? *schedulers_[core] : rbs_;
}

void FeedbackAllocator::Start() {
  RR_EXPECTS(!started_);
  started_ = true;
  ScheduleNext();
}

// Reschedules from inside each invocation so interval changes take effect; the
// recursion is flattened by the event queue.
void FeedbackAllocator::ScheduleNext() {
  machine_.sim().ScheduleAfter(config_.interval, [this] {
    RunOnce(machine_.sim().Now());
    ScheduleNext();
  });
}

FeedbackAllocator::Controlled* FeedbackAllocator::Find(ThreadId id) {
  for (Controlled& c : controlled_) {
    if (c.thread->id() == id) {
      return &c;
    }
  }
  return nullptr;
}

const FeedbackAllocator::Controlled* FeedbackAllocator::Find(ThreadId id) const {
  for (const Controlled& c : controlled_) {
    if (c.thread->id() == id) {
      return &c;
    }
  }
  return nullptr;
}

double FeedbackAllocator::FixedReservedSum() const {
  double sum = 0.0;
  for (const Controlled& c : controlled_) {
    if (c.cls == ThreadClass::kRealTime || c.cls == ThreadClass::kAperiodicRealTime) {
      sum += c.fixed_fraction;
    }
  }
  return sum;
}

double FeedbackAllocator::FixedReservedSumOnCore(CpuId core) const {
  double sum = 0.0;
  for (const Controlled& c : controlled_) {
    if ((c.cls == ThreadClass::kRealTime || c.cls == ThreadClass::kAperiodicRealTime) &&
        c.thread->cpu() == core) {
      sum += c.fixed_fraction;
    }
  }
  return sum;
}

// Real-time admission on an SMP machine: admit against the thread's own core's fixed
// budget; only when that core would reject the request and the core with the most
// unreserved fixed capacity would accept it is the thread migrated there first — a
// reservation that fits where the thread already sits never moves. On one core this
// is the paper's admission test unchanged.
bool FeedbackAllocator::PlaceAndAdmit(SimThread* thread, double request) {
  if (machine_.num_cpus() > 1) {
    CpuId best = thread->cpu();
    double best_fixed = FixedReservedSumOnCore(best);
    for (CpuId c = 0; c < machine_.num_cpus(); ++c) {
      const double fixed = FixedReservedSumOnCore(c);
      if (fixed < best_fixed - 1e-12) {
        best = c;
        best_fixed = fixed;
      }
    }
    if (best != thread->cpu() && AdmitRealTime(best_fixed, request, overload_threshold_) &&
        !AdmitRealTime(FixedReservedSumOnCore(thread->cpu()), request, overload_threshold_)) {
      machine_.Migrate(thread, best);
    }
  }
  return AdmitRealTime(FixedReservedSumOnCore(thread->cpu()), request, overload_threshold_);
}

bool FeedbackAllocator::AddRealTime(SimThread* thread, Proportion proportion, Duration period) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(Find(thread->id()) == nullptr);
  const double request = proportion.ToFraction();
  if (!PlaceAndAdmit(thread, request)) {
    machine_.sim().trace().Record(machine_.sim().Now(), TraceKind::kRejected, thread->id(),
                                  proportion.ppt());
    return false;
  }
  Controlled c;
  c.thread = thread;
  c.cls = ThreadClass::kRealTime;
  c.period = period;
  c.fixed_fraction = request;
  c.desired = c.granted = request;
  thread->set_thread_class(ThreadClass::kRealTime);
  SchedulerFor(thread).SetReservation(thread, proportion, period, machine_.sim().Now());
  machine_.sim().trace().Record(machine_.sim().Now(), TraceKind::kAdmitted, thread->id(),
                                proportion.ppt());
  controlled_.push_back(std::move(c));
  return true;
}

bool FeedbackAllocator::AddAperiodicRealTime(SimThread* thread, Proportion proportion) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(Find(thread->id()) == nullptr);
  const double request = proportion.ToFraction();
  if (!PlaceAndAdmit(thread, request)) {
    machine_.sim().trace().Record(machine_.sim().Now(), TraceKind::kRejected, thread->id(),
                                  proportion.ppt());
    return false;
  }
  Controlled c;
  c.thread = thread;
  c.cls = ThreadClass::kAperiodicRealTime;
  // "Without a progress metric with which to assess the application's needs, our
  // prototype uses a default value of 30 milliseconds."
  c.period = config_.default_period;
  c.fixed_fraction = request;
  c.desired = c.granted = request;
  thread->set_thread_class(ThreadClass::kAperiodicRealTime);
  SchedulerFor(thread).SetReservation(thread, proportion, c.period, machine_.sim().Now());
  machine_.sim().trace().Record(machine_.sim().Now(), TraceKind::kAdmitted, thread->id(),
                                proportion.ppt());
  controlled_.push_back(std::move(c));
  return true;
}

void FeedbackAllocator::AddRealRate(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(Find(thread->id()) == nullptr);
  // A real-rate thread without a registered progress metric is a contract violation:
  // the caller should have used AddMiscellaneous.
  RR_EXPECTS(queues_.HasMetrics(thread->id()));
  Controlled c;
  c.thread = thread;
  c.cls = ThreadClass::kRealRate;
  c.period = config_.default_period;
  c.estimator = std::make_unique<ProportionEstimator>(config_.estimator);
  if (config_.enable_period_estimation) {
    c.period_estimator = std::make_unique<PeriodEstimator>(config_.period_estimator);
    const size_t window =
        std::max<size_t>(2, static_cast<size_t>(c.period / config_.interval));
    c.fill_window = std::make_unique<RingBuffer<double>>(window);
    c.last_period_mark = machine_.sim().Now();
  }
  c.desired = c.granted = config_.estimator.min_fraction;
  thread->set_thread_class(ThreadClass::kRealRate);
  Actuate(c, c.granted, machine_.sim().Now());
  controlled_.push_back(std::move(c));
}

void FeedbackAllocator::AddMiscellaneous(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(Find(thread->id()) == nullptr);
  Controlled c;
  c.thread = thread;
  c.cls = ThreadClass::kMiscellaneous;
  c.period = config_.default_period;
  c.estimator = std::make_unique<ProportionEstimator>(config_.estimator);
  c.desired = c.granted = config_.estimator.min_fraction;
  thread->set_thread_class(ThreadClass::kMiscellaneous);
  Actuate(c, c.granted, machine_.sim().Now());
  controlled_.push_back(std::move(c));
}

void FeedbackAllocator::AddInteractive(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(Find(thread->id()) == nullptr);
  Controlled c;
  c.thread = thread;
  c.cls = ThreadClass::kInteractive;
  // "Interactive jobs have specific requirements (periods relative to human
  // perception)": a small fixed period; the proportion floats with measured bursts.
  c.period = config_.interactive_period;
  c.desired = c.granted = config_.estimator.min_fraction;
  thread->set_thread_class(ThreadClass::kInteractive);
  Actuate(c, c.granted, machine_.sim().Now());
  controlled_.push_back(std::move(c));
}

void FeedbackAllocator::Remove(SimThread* thread) {
  RR_EXPECTS(thread != nullptr);
  controlled_.erase(std::remove_if(controlled_.begin(), controlled_.end(),
                                   [thread](const Controlled& c) { return c.thread == thread; }),
                    controlled_.end());
}

void FeedbackAllocator::SampleAndEstimate(Controlled& c, double dt, TimePoint now) {
  // CPU the thread actually used last interval, as a fraction of the interval.
  const Cycles interval_cycles = machine_.sim().cpu().DurationToCycles(config_.interval);
  const double used_fraction =
      static_cast<double>(c.thread->TakeWindowCycles()) / static_cast<double>(interval_cycles);

  switch (c.cls) {
    case ThreadClass::kRealTime:
    case ThreadClass::kAperiodicRealTime:
      // Reservations are not adapted: "the controller sets the thread proportion and
      // period to the specified amount and does not modify them in practice."
      c.desired = c.fixed_fraction;
      c.last_pressure = 0.0;
      return;
    case ThreadClass::kRealRate:
      c.last_pressure = RawPressure(queues_, c.thread->id());
      break;
    case ThreadClass::kMiscellaneous:
      // Constant pressure "to allocate more CPU to a miscellaneous thread, until it is
      // either satisfied or the CPU becomes oversubscribed." Satisfaction shows up as
      // under-use, which the estimator's reclaim branch converts into a reduction.
      c.last_pressure = config_.misc_pressure;
      break;
    case ThreadClass::kInteractive: {
      // Proportion from the measured run-before-block burst: enough allocation to
      // serve one typical burst within one (small) period, plus headroom. A thread
      // saturating its grant (backlogged, never blocking) has no measurable burst yet,
      // so its allocation doubles until it starts blocking between events — the
      // bootstrap of the "time they typically run before blocking" measurement.
      const auto period_cycles =
          static_cast<double>(machine_.sim().cpu().DurationToCycles(c.period));
      double need =
          config_.interactive_headroom * c.thread->burst_ewma_cycles() / period_cycles;
      const bool saturated = c.granted > 0 && used_fraction >= 0.9 * c.granted;
      if (saturated) {
        need = std::max(need, c.granted * 2.0);
      }
      c.desired = std::clamp(need, config_.estimator.min_fraction,
                             config_.estimator.max_fraction);
      c.last_pressure = 0.0;
      return;
    }
  }
  c.desired = c.estimator->Step(c.last_pressure, used_fraction, c.granted, dt);

  if (c.cls == ThreadClass::kRealRate && config_.enable_period_estimation) {
    const auto& linkages = queues_.LinkagesFor(c.thread->id());
    if (!linkages.empty()) {
      c.fill_window->Push(linkages.front().queue->FillFraction());
    }
    if (now - c.last_period_mark >= c.period) {
      ApplyPeriodEstimation(c, now);
      c.last_period_mark = now;
    }
  }
}

void FeedbackAllocator::ApplyPeriodEstimation(Controlled& c, TimePoint now) {
  // Fill swing over the last period's worth of samples.
  double lo = 1.0;
  double hi = 0.0;
  for (size_t i = 0; i < c.fill_window->size(); ++i) {
    lo = std::min(lo, (*c.fill_window)[i]);
    hi = std::max(hi, (*c.fill_window)[i]);
  }
  if (c.fill_window->size() >= 2) {
    c.period_estimator->ObserveFillSwing(std::max(0.0, hi - lo));
  }
  const Duration proposed = c.period_estimator->Propose(c.period, c.granted);
  if (proposed != c.period) {
    c.period = proposed;
    const size_t window =
        std::max<size_t>(2, static_cast<size_t>(c.period / config_.interval));
    c.fill_window = std::make_unique<RingBuffer<double>>(window);
    Actuate(c, c.granted, now);
  }
}

void FeedbackAllocator::CheckQuality(Controlled& c, TimePoint now) {
  if (c.cls != ThreadClass::kRealRate) {
    return;
  }
  if (c.quality_window == nullptr) {
    c.quality_window = std::make_unique<RingBuffer<uint8_t>>(
        static_cast<size_t>(10 * config_.quality_patience));
  }

  // Gather this interval's saturation evidence regardless of gating so the hit
  // counters stay current.
  const auto& linkages = queues_.LinkagesFor(c.thread->id());
  c.last_full_hits.resize(linkages.size(), 0);
  c.last_empty_hits.resize(linkages.size(), 0);
  BoundedBuffer* saturated = nullptr;
  for (size_t i = 0; i < linkages.size(); ++i) {
    const QueueLinkage& l = linkages[i];
    const double fill = l.queue->FillFraction();
    const bool full_hit = l.queue->full_hits() > c.last_full_hits[i];
    const bool empty_hit = l.queue->empty_hits() > c.last_empty_hits[i];
    c.last_full_hits[i] = l.queue->full_hits();
    c.last_empty_hits[i] = l.queue->empty_hits();
    // A consumer that cannot keep up sees its input pinned full (or its upstream
    // producer bouncing off a full queue); a producer that cannot keep up sees its
    // output pinned empty (or its downstream consumer finding nothing).
    const bool starved = (l.role == QueueRole::kConsumer)
                             ? (fill >= config_.quality_fill_extreme || full_hit)
                             : (fill <= 1.0 - config_.quality_fill_extreme || empty_hit);
    if (starved && saturated == nullptr) {
      saturated = l.queue;
    }
  }

  // A thread can only be starved by the CPU if its allocation is the limiting factor:
  // it was squished below its desire, or its desire is pinned at the ceiling. Without
  // this gate, routine queue-drain events in healthy pipelines would look like
  // starvation.
  const bool allocation_limited = c.granted < c.desired - 1e-9 ||
                                  c.desired >= config_.estimator.max_fraction - 1e-9;
  c.quality_window->Push((allocation_limited && saturated != nullptr) ? 1 : 0);

  int evidence = 0;
  for (size_t i = 0; i < c.quality_window->size(); ++i) {
    evidence += (*c.quality_window)[i];
  }
  if (evidence >= config_.quality_patience && saturated != nullptr) {
    c.quality_window->Clear();
    ++quality_exceptions_;
    machine_.sim().trace().Record(now, TraceKind::kQualityException, c.thread->id(),
                                  saturated->id());
    if (quality_fn_) {
      quality_fn_(QualityException{now, c.thread, saturated});
    }
  }
}

void FeedbackAllocator::Actuate(Controlled& c, double fraction, TimePoint now) {
  const Proportion p = Proportion::FromFraction(fraction);
  c.granted = fraction;
  if (c.thread->policy() == SchedPolicy::kReservation && c.thread->proportion() == p &&
      c.thread->period() == c.period) {
    return;  // No change; avoid perturbing the budget.
  }
  SchedulerFor(c.thread).SetReservation(c.thread, p, c.period, now);
  machine_.sim().trace().Record(now, TraceKind::kAllocationSet, c.thread->id(), p.ppt(),
                                c.period.nanos());
  // A thread sleeping out an exhausted budget deserves to run again if the controller
  // just raised its allocation.
  if (c.thread->state() == ThreadState::kSleeping && c.thread->budget_remaining() > 0) {
    machine_.CancelSleep(c.thread);
  }
}

void FeedbackAllocator::RunOnce(TimePoint now) {
  ++invocations_;
  // If the machine's dispatch clocks are idle-suspended, settle the elided ticks
  // before sampling or actuating: budgets and period phases must read exactly as a
  // continuously ticking machine would present them at this instant.
  machine_.SyncSkippedTicks(now);
  const double dt = config_.interval.ToSeconds();

  // Drop exited threads.
  controlled_.erase(std::remove_if(controlled_.begin(), controlled_.end(),
                                   [](const Controlled& c) { return c.thread->HasExited(); }),
                    controlled_.end());

  // Phase 1: estimate desired allocations.
  for (Controlled& c : controlled_) {
    SampleAndEstimate(c, dt, now);
  }

  // Phase 2 + 3: overload resolution and actuation, per core. Fixed reservations are
  // untouchable; the adaptive classes on each core share what remains of that core's
  // budget. The squish math is the paper's uniprocessor logic applied within one
  // core's overload threshold; cross-core balancing is the Machine's rebalancer's
  // job, not the squisher's. One core → identical to the pre-SMP controller.
  bool any_overload = false;
  std::vector<SquishRequest> requests;
  std::vector<Controlled*> adaptive;
  for (CpuId core = 0; core < machine_.num_cpus(); ++core) {
    requests.clear();
    adaptive.clear();
    for (Controlled& c : controlled_) {
      if ((c.cls == ThreadClass::kRealRate || c.cls == ThreadClass::kMiscellaneous ||
           c.cls == ThreadClass::kInteractive) &&
          c.thread->cpu() == core) {
        requests.push_back({c.thread->id(), c.desired, c.thread->importance(),
                            config_.estimator.min_fraction});
        adaptive.push_back(&c);
      }
    }
    if (adaptive.empty()) {
      continue;
    }
    const double available = overload_threshold_ - FixedReservedSumOnCore(core);
    double desired_sum = 0.0;
    for (const SquishRequest& r : requests) {
      desired_sum += r.desired;
    }
    const std::vector<SquishResult> grants = Squish(requests, std::max(0.0, available));
    if (desired_sum > available) {
      any_overload = true;
    }
    RR_CHECK(grants.size() == adaptive.size());
    for (size_t i = 0; i < grants.size(); ++i) {
      Actuate(*adaptive[i], grants[i].granted, now);
    }
  }
  if (any_overload) {
    ++squish_events_;
  }

  // Phase 4: quality exceptions.
  for (Controlled& c : controlled_) {
    CheckQuality(c, now);
  }

  // Phase 5: the controller's own cost (Fig. 5): fixed + per-controlled-thread.
  if (config_.charge_overhead) {
    machine_.StealCycles(CpuUse::kController,
                         machine_.sim().cpu().ControllerCost(static_cast<int>(controlled_.size())));
  }

  if (post_run_hook_) {
    post_run_hook_(now);
  }
}

double FeedbackAllocator::DesiredFraction(ThreadId id) const {
  const Controlled* c = Find(id);
  return c != nullptr ? c->desired : 0.0;
}

double FeedbackAllocator::GrantedFraction(ThreadId id) const {
  const Controlled* c = Find(id);
  return c != nullptr ? c->granted : 0.0;
}

double FeedbackAllocator::LastPressure(ThreadId id) const {
  const Controlled* c = Find(id);
  return c != nullptr ? c->last_pressure : 0.0;
}

Duration FeedbackAllocator::PeriodOf(ThreadId id) const {
  const Controlled* c = Find(id);
  return c != nullptr ? c->period : Duration::Zero();
}

std::optional<ThreadClass> FeedbackAllocator::ClassOf(ThreadId id) const {
  const Controlled* c = Find(id);
  if (c == nullptr) {
    return std::nullopt;
  }
  return c->cls;
}

void FeedbackAllocator::OnDeadlineMiss(SimThread* thread, Cycles shortfall, TimePoint now) {
  machine_.sim().trace().Record(now, TraceKind::kDeadlineMiss, thread->id(), shortfall);
  if (config_.adaptive_admission) {
    // "If the RBS is missing deadlines, it notifies the controller which can increase
    // the amount of spare capacity by reducing the admission threshold."
    overload_threshold_ =
        std::max(config_.min_overload_threshold, overload_threshold_ - config_.admission_backoff);
  }
}

}  // namespace realrate
