// Overload response (§3.3 "Responding to Overload"): when the sum of desired
// allocations exceeds the overload threshold, the controller "squishes" each
// miscellaneous or real-rate job's proposed allocation by an amount proportional to the
// allocation — extended to a weighted fair share where each thread's importance is the
// weighting factor. Real-time reservations are never squished; admission control keeps
// their sum under the threshold instead.
#ifndef REALRATE_CORE_OVERLOAD_H_
#define REALRATE_CORE_OVERLOAD_H_

#include <vector>

#include "util/types.h"

namespace realrate {

struct SquishRequest {
  ThreadId thread = kInvalidThreadId;
  double desired = 0.0;     // Desired CPU fraction (already >= floor).
  double importance = 1.0;  // Weight; higher => keeps more of its desired share.
  double floor = 0.0;       // Starvation floor; squish never goes below this.
};

struct SquishResult {
  ThreadId thread = kInvalidThreadId;
  double granted = 0.0;
};

// Distributes `available` (CPU fraction) across the requests.
//  - If sum(desired) <= available, everyone gets their desire.
//  - Otherwise allocations are squished proportionally to desired/importance, floored
//    at each thread's floor, iterating so freed floor-excess is redistributed.
// Invariants (tested): sum(granted) <= max(available, sum(floors)); granted >= floor;
// granted <= desired; among unfloored threads the *reduction* is proportional to
// desired/importance.
std::vector<SquishResult> Squish(const std::vector<SquishRequest>& requests, double available);

// Admission control for real-time reservations: accept iff the already-reserved sum
// plus the request stays within `threshold`.
bool AdmitRealTime(double reserved_sum, double request, double threshold);

}  // namespace realrate

#endif  // REALRATE_CORE_OVERLOAD_H_
