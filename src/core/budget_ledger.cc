#include "core/budget_ledger.h"

#include "util/assert.h"

namespace realrate {

BudgetLedger::BudgetLedger(int num_cores)
    : fixed_ppt_(static_cast<size_t>(num_cores), 0),
      granted_(static_cast<size_t>(num_cores), 0.0) {
  RR_EXPECTS(num_cores >= 1);
}

size_t BudgetLedger::Index(CpuId core) const {
  RR_EXPECTS(core >= 0 && static_cast<size_t>(core) < fixed_ppt_.size());
  return static_cast<size_t>(core);
}

void BudgetLedger::AddFixed(CpuId core, int32_t ppt) {
  RR_EXPECTS(ppt >= 0);
  fixed_ppt_[Index(core)] += ppt;
  fixed_ppt_total_ += ppt;
}

void BudgetLedger::RemoveFixed(CpuId core, int32_t ppt) {
  RR_EXPECTS(ppt >= 0);
  fixed_ppt_[Index(core)] -= ppt;
  fixed_ppt_total_ -= ppt;
  RR_ENSURES(fixed_ppt_[Index(core)] >= 0);
}

void BudgetLedger::MoveFixed(CpuId from, CpuId to, int32_t ppt) {
  if (from == to) {
    return;
  }
  RemoveFixed(from, ppt);
  AddFixed(to, ppt);
}

void BudgetLedger::SetGranted(CpuId core, double fraction) {
  granted_[Index(core)] = fraction;
}

}  // namespace realrate
