#include "core/budget_ledger.h"

#include "util/assert.h"

namespace realrate {

BudgetLedger::BudgetLedger(int num_cores)
    : fixed_ppt_(static_cast<size_t>(num_cores), 0),
      granted_(static_cast<size_t>(num_cores), 0.0),
      granted_ppt_(static_cast<size_t>(num_cores), 0) {
  RR_EXPECTS(num_cores >= 1);
  RecomputeSpareTotal();
}

size_t BudgetLedger::Index(CpuId core) const {
  RR_EXPECTS(core >= 0 && static_cast<size_t>(core) < fixed_ppt_.size());
  return static_cast<size_t>(core);
}

void BudgetLedger::SetThresholdPpt(int32_t ppt) {
  RR_EXPECTS(ppt >= 0 && ppt <= Proportion::kFull);
  threshold_ppt_ = ppt;
  RecomputeSpareTotal();
}

void BudgetLedger::RecomputeSpareTotal() {
  spare_ppt_total_ = 0;
  for (size_t i = 0; i < fixed_ppt_.size(); ++i) {
    spare_ppt_total_ += SpareContribution(i);
  }
}

void BudgetLedger::AddFixed(CpuId core, int32_t ppt) {
  RR_EXPECTS(ppt >= 0);
  const size_t i = Index(core);
  spare_ppt_total_ -= SpareContribution(i);
  fixed_ppt_[i] += ppt;
  fixed_ppt_total_ += ppt;
  spare_ppt_total_ += SpareContribution(i);
}

void BudgetLedger::RemoveFixed(CpuId core, int32_t ppt) {
  RR_EXPECTS(ppt >= 0);
  const size_t i = Index(core);
  spare_ppt_total_ -= SpareContribution(i);
  fixed_ppt_[i] -= ppt;
  fixed_ppt_total_ -= ppt;
  spare_ppt_total_ += SpareContribution(i);
  RR_ENSURES(fixed_ppt_[i] >= 0);
}

void BudgetLedger::MoveFixed(CpuId from, CpuId to, int32_t ppt) {
  if (from == to) {
    return;
  }
  RemoveFixed(from, ppt);
  AddFixed(to, ppt);
}

void BudgetLedger::SetGranted(CpuId core, double fraction) {
  const size_t i = Index(core);
  spare_ppt_total_ -= SpareContribution(i);
  granted_[i] = fraction;
  granted_ppt_[i] = Proportion::FromFraction(fraction).ppt();
  spare_ppt_total_ += SpareContribution(i);
}

}  // namespace realrate
