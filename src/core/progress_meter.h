// Pseudo-progress metrics (§4.5): "We suggest the right solution for these
// applications is to add a pseudo-progress metric which maps their notion of progress
// into our queue-based meta-interface. For example, a pure computation (finding digits
// of pi or cracking passwords) could use a metric such as the number of keys it has
// attempted."
//
// ProgressMeter turns any thread's progress counter into a virtual bounded buffer the
// controller can monitor: the thread "produces" its progress units into the buffer
// while a kernel drain consumes them at the declared target rate. If the thread runs
// ahead of its target, the buffer fills and the producer-side pressure turns negative;
// if it falls behind, the buffer drains and pressure demands more CPU. The thread can
// then be registered real-rate instead of miscellaneous.
#ifndef REALRATE_CORE_PROGRESS_METER_H_
#define REALRATE_CORE_PROGRESS_METER_H_

#include <string>

#include "queue/registry.h"
#include "sim/simulator.h"
#include "task/thread.h"

namespace realrate {

class ProgressMeter {
 public:
  struct Config {
    // The real-world rate the computation should sustain, in progress units/sec.
    double target_rate = 1'000.0;
    // Virtual buffer capacity in progress units; the half-full set point gives the
    // thread capacity_units/2 of slack in both directions.
    int64_t capacity_units = 2'000;
    // How often the meter reconciles the progress counter with the virtual queue.
    Duration update_period = Duration::Millis(10);
  };

  // Creates the virtual queue inside `registry` and registers `thread` as its
  // producer. Call Start() once to begin metering.
  ProgressMeter(Simulator& sim, QueueRegistry& registry, SimThread* thread,
                std::string name, const Config& config);

  void Start();
  void Stop() { running_ = false; }

  BoundedBuffer* queue() { return queue_; }
  // Units the drain consumed so far (the target-rate clock).
  int64_t drained_units() const { return drained_; }
  // Units of progress that overflowed the virtual buffer (thread persistently faster
  // than the target).
  int64_t overflow_units() const { return overflow_; }

 private:
  void ScheduleNext();
  void Update();

  Simulator& sim_;
  SimThread* const thread_;
  BoundedBuffer* queue_;
  Config config_;
  bool running_ = false;
  bool started_ = false;
  int64_t last_progress_ = 0;
  double drain_carry_ = 0.0;
  int64_t drained_ = 0;
  int64_t overflow_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_CORE_PROGRESS_METER_H_
