#include "core/overload.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace realrate {

std::vector<SquishResult> Squish(const std::vector<SquishRequest>& requests, double available) {
  RR_EXPECTS(available >= 0.0);
  std::vector<SquishResult> out;
  out.reserve(requests.size());

  double total_desired = 0.0;
  double total_floor = 0.0;
  for (const SquishRequest& r : requests) {
    RR_EXPECTS(r.desired >= r.floor);
    RR_EXPECTS(r.importance > 0.0);
    total_desired += r.desired;
    total_floor += r.floor;
  }

  if (total_desired <= available) {
    for (const SquishRequest& r : requests) {
      out.push_back({r.thread, r.desired});
    }
    return out;
  }

  // Floors may themselves exceed availability (pathological admission); floors win —
  // the no-starvation guarantee outranks the overload threshold, and the threshold
  // already holds spare capacity in normal configurations.
  const double budget = std::max(available, total_floor);

  // Iterative weighted squish: reduce each thread in proportion to desired/importance;
  // threads pinned at their floor drop out and the remaining excess is redistributed.
  std::vector<double> granted(requests.size());
  std::vector<bool> pinned(requests.size(), false);
  for (size_t i = 0; i < requests.size(); ++i) {
    granted[i] = requests[i].desired;
  }

  for (int iter = 0; iter < 64; ++iter) {
    double sum = 0.0;
    for (double g : granted) {
      sum += g;
    }
    double excess = sum - budget;
    if (excess <= 1e-12) {
      break;
    }
    double weight_total = 0.0;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (!pinned[i]) {
        weight_total += granted[i] / requests[i].importance;
      }
    }
    if (weight_total <= 0.0) {
      break;  // Everyone pinned at floor; cannot reduce further.
    }
    bool newly_pinned = false;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (pinned[i]) {
        continue;
      }
      const double share = (granted[i] / requests[i].importance) / weight_total;
      const double reduced = granted[i] - excess * share;
      if (reduced <= requests[i].floor) {
        granted[i] = requests[i].floor;
        pinned[i] = true;
        newly_pinned = true;
      } else {
        granted[i] = reduced;
      }
    }
    if (!newly_pinned) {
      break;  // Exact proportional reduction applied; sum now equals budget.
    }
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    out.push_back({requests[i].thread, granted[i]});
  }
  return out;
}

bool AdmitRealTime(double reserved_sum, double request, double threshold) {
  RR_EXPECTS(request >= 0.0);
  return reserved_sum + request <= threshold + 1e-12;
}

}  // namespace realrate
