#include "core/period_estimator.h"

#include <algorithm>

#include "util/assert.h"

namespace realrate {

PeriodEstimator::PeriodEstimator(const PeriodEstimatorConfig& config)
    : config_(config), swings_(static_cast<size_t>(config.window)) {
  RR_EXPECTS(config.window >= 1);
  RR_EXPECTS(config.min_period <= config.max_period);
}

void PeriodEstimator::ObserveFillSwing(double swing) {
  RR_EXPECTS(swing >= 0.0 && swing <= 1.0);
  swings_.Push(swing);
}

double PeriodEstimator::MeanSwing() const {
  if (swings_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (size_t i = 0; i < swings_.size(); ++i) {
    sum += swings_[i];
  }
  return sum / static_cast<double>(swings_.size());
}

Duration PeriodEstimator::Propose(Duration current, double allocation_fraction) {
  RR_EXPECTS(current.IsPositive());
  // Jitter first: halve the period when fill level oscillates too widely.
  if (swings_.full() && MeanSwing() > config_.jitter_threshold) {
    return std::max(config_.min_period, current / 2);
  }
  // Quantization: double the period while the proportion is small.
  if (allocation_fraction < config_.small_fraction) {
    return std::min(config_.max_period, current * 2);
  }
  return current;
}

}  // namespace realrate
