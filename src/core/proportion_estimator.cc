#include "core/proportion_estimator.h"

#include <algorithm>

#include "util/assert.h"

namespace realrate {

ProportionEstimator::ProportionEstimator(const ProportionEstimatorConfig& config)
    : config_(config),
      pid_(config.gains),
      pressure_filter_(config.pressure_filter_tau),
      desired_(config.min_fraction) {
  RR_EXPECTS(config.min_fraction >= 0 && config.min_fraction <= config.max_fraction);
  RR_EXPECTS(config.max_fraction <= 1.0);
  RR_EXPECTS(config.reclaim_patience >= 1);
}

double ProportionEstimator::Step(double pressure, double used_fraction,
                                 double granted_fraction, double dt) {
  RR_EXPECTS(dt > 0);
  reclaimed_ = false;

  // "Too generous" check first: the thread left more than `reclaim_headroom` of the
  // allocation it was actually granted unused. A squished thread that consumes its
  // whole (small) grant is not over-provisioned, however large its desire. Requiring
  // a streak avoids reacting to a single interval where the thread happened to block
  // briefly (e.g. a momentarily empty input queue).
  const bool underused = granted_fraction > config_.min_fraction &&
                         used_fraction < granted_fraction * (1.0 - config_.reclaim_headroom);
  if (underused) {
    ++underuse_streak_;
  } else {
    underuse_streak_ = 0;
  }

  if (underuse_streak_ >= config_.reclaim_patience) {
    // P'_t = P_t - C, where P_t is the allocation actually in force. Also rebase the
    // PID so its integral agrees with the reduced allocation (bumpless transfer);
    // otherwise the integral would immediately push the allocation back up.
    desired_ = std::max(config_.min_fraction,
                        std::min(desired_, granted_fraction) - config_.reclaim_step);
    pid_.SetOutputState(desired_ / config_.scale_k);
    underuse_streak_ = 0;
    reclaimed_ = true;
    return desired_;
  }

  // P'_t = k * Q_t, the "on target" branch, with the pressure smoothed first.
  const double q = pid_.Step(pressure_filter_.Step(pressure, dt), dt);
  desired_ = std::clamp(config_.scale_k * q, config_.min_fraction, config_.max_fraction);
  return desired_;
}

void ProportionEstimator::Reset() {
  pid_.Reset();
  pressure_filter_.Reset();
  desired_ = config_.min_fraction;
  underuse_streak_ = 0;
  reclaimed_ = false;
}

}  // namespace realrate
