// The proportion-estimation law (paper Figure 4):
//
//   P'_t = k * Q_t        when P_t is on target
//        = P_t - C        when P_t is too generous
//
// "Normally, the controller multiplies the progress pressure by a constant scaling
// factor to determine the new desired allocation. If the previous allocation
// overestimated the application's needs, the controller reduces the allocation by a
// constant factor." Over-estimation is detected by comparing the CPU a thread used
// against the amount allocated to it (§3.3 "Estimating Proportion").
#ifndef REALRATE_CORE_PROPORTION_ESTIMATOR_H_
#define REALRATE_CORE_PROPORTION_ESTIMATOR_H_

#include "swift/pid.h"
#include "util/types.h"

namespace realrate {

struct ProportionEstimatorConfig {
  // PID gains for G in the pressure equation. Tuned (see DESIGN.md) so the canonical
  // producer/consumer pipeline responds to a rate doubling in roughly 1/3 s, matching
  // the paper's measured responsiveness.
  swift::PidGains gains{.kp = 0.3, .ki = 2.0, .kd = 0.0, .integral_limit = 0.5,
                        .derivative_filter_tau = 0.05};
  // The constant scaling factor k mapping PID output to a CPU fraction.
  double scale_k = 1.0;
  // Low-pass time constant (seconds) applied to the sampled pressure before the PID.
  // The controller samples fill levels asynchronously to thread periods; threads drain
  // their per-period budgets in bursts, so raw samples alias at the beat frequency.
  // "Using a suitable low-pass filter, we can schedule jobs with reasonable
  // responsiveness and low overhead while keeping the sampling rate reasonably high."
  double pressure_filter_tau = 0.04;
  // Allocation floor: "avoids starvation by ensuring that every job in the system is
  // assigned a non-zero percentage of the CPU."
  double min_fraction = 0.005;  // 5 ppt
  double max_fraction = 0.95;
  // "Too generous" detection: if the thread used less than (1 - reclaim_headroom) of
  // the allocation it was actually granted for reclaim_patience consecutive samples,
  // reduce by reclaim_step. The step must out-pace the miscellaneous constant-pressure
  // growth (scale_k * ki * misc_pressure per second) or an idle important thread would
  // hold an inflated allocation forever.
  double reclaim_headroom = 0.25;
  int reclaim_patience = 3;
  double reclaim_step = 0.05;  // The constant C, as a CPU fraction (50 ppt).
};

// Per-thread estimator state: one PID plus reclaim bookkeeping.
class ProportionEstimator {
 public:
  explicit ProportionEstimator(const ProportionEstimatorConfig& config);

  // One controller interval for this thread.
  //   pressure:         summed signed progress pressure (Figure 3 input).
  //   used_fraction:    CPU fraction the thread actually consumed last interval.
  //   granted_fraction: CPU fraction actuated for it last interval (post-squish) —
  //                     the "amount allocated to it" of the paper's reclaim test.
  //   dt:               controller interval in seconds.
  // Returns the new desired allocation as a CPU fraction (clamped to [min, max]).
  double Step(double pressure, double used_fraction, double granted_fraction, double dt);

  // Desired allocation from the previous Step.
  double desired() const { return desired_; }
  // True if the last Step took the "too generous" branch.
  bool reclaimed_last_step() const { return reclaimed_; }

  void Reset();

  const ProportionEstimatorConfig& config() const { return config_; }

 private:
  ProportionEstimatorConfig config_;
  swift::PidController pid_;
  swift::LowPassFilter pressure_filter_;
  double desired_;
  int underuse_streak_ = 0;
  bool reclaimed_ = false;
};

}  // namespace realrate

#endif  // REALRATE_CORE_PROPORTION_ESTIMATOR_H_
