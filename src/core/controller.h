// FeedbackAllocator: the paper's adaptive controller (§3.3). Runs periodically
// (user-level, 100 Hz in the prototype), samples each controlled thread's progress,
// derives a desired proportion through the Figure 3/Figure 4 control laws, resolves
// overload by admission control and (weighted fair-share) squishing, and actuates the
// reservation scheduler.
//
// Control plane (see docs/ARCHITECTURE.md, "The control plane"): RunOnce executes an
// explicit four-stage pipeline — Sample → Estimate → Resolve → Actuate — backed by
// incrementally maintained state:
//   - a per-core BudgetLedger (core/budget_ledger.h) keeps fixed-reservation sums
//     registered, so admission, squish head-room, and FixedReservedSum* are O(1)
//     reads instead of per-call sweeps over every controlled thread;
//   - a dirty-set sampler (core/control_pipeline.h) skips the pressure and
//     saturation sweeps for real-rate threads whose queue linkages kept their change
//     epochs since the previous tick;
//   - quality-exception evidence is a SaturationWindow with an O(1) running count
//     instead of a 10×patience-entry rescan per thread per tick;
//   - thread lookup is an id→slot index (O(1) Find/Remove, mirroring
//     SimThread::sched_slot in the dispatch layer), and actuation batches per-core
//     through the owning RbsScheduler — one ApplyReservations call per core per
//     tick (per-update index maintenance unchanged);
//   - per-thread hot fields (exit state, cpu, importance) are read from the
//     registry's SoA slab columns (task/thread_slabs.h) instead of chasing each
//     SimThread pointer, and each tick's progress pressure is published back into
//     the slab's pressure column (this controller is that column's sole writer;
//     shadow mode re-checks every column against the object state each tick).
// The original monolithic sweep survives as RunOnceReference();
// ControllerConfig::use_pipeline = false falls back to it wholesale (the
// bench_controller_scale comparison baseline), and ControllerConfig::shadow_check
// makes every pipeline iteration re-derive each incremental quantity the reference
// way and assert equality — the fuzz harness additionally demands bit-identical
// whole-run traces between the two modes (harness/differential.cc).
//
// Multi-CPU: proportions are allocated per core. Admission control and the
// squish/overload resolution each operate within the 100% (well, overload_threshold)
// budget of one core, exactly as the paper's uniprocessor controller does — the
// Machine's placement/rebalance policy decides which core a thread's proportion is
// drawn from, and a real-time reservation that would be rejected on its own core is
// steered to the core with the most unreserved fixed capacity before admission. On a
// 1-core machine all of this degenerates to the paper's controller, bit for bit.
//
// Ownership: borrows the Machine, the core-0 RbsScheduler (its actuation interface —
// reservation state lives on the threads, so one instance can actuate any thread),
// and the QueueRegistry; all must outlive it. Owns the per-thread estimator state and
// the budget ledger, and holds the Machine's migration hook for its own lifetime.
//
// Units: proportions are dimensionless fractions of ONE core in [0, 1] (Proportion is
// parts-per-thousand); periods and the controller interval are virtual-time
// Durations; sampled usage is in simulated Cycles.
//
// Thread-safety: none — runs inside single-threaded simulator events like every
// layer above the Simulator.
#ifndef REALRATE_CORE_CONTROLLER_H_
#define REALRATE_CORE_CONTROLLER_H_

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/budget_ledger.h"
#include "core/control_pipeline.h"
#include "core/overload.h"
#include "core/period_estimator.h"
#include "core/proportion_estimator.h"
#include "core/quality.h"
#include "queue/registry.h"
#include "sched/machine.h"
#include "sched/rbs.h"
#include "util/ring_buffer.h"
#include "util/types.h"

namespace realrate {

struct ControllerConfig {
  // Controller execution period: "100 Hz in our prototype".
  Duration interval = Duration::Millis(10);
  ProportionEstimatorConfig estimator;
  PeriodEstimatorConfig period_estimator;
  // The paper's experiments all disable period estimation; so do we by default.
  bool enable_period_estimation = false;
  // Default period for aperiodic and miscellaneous threads: "our prototype uses a
  // default value of 30 milliseconds."
  Duration default_period = Duration::Millis(30);
  // Overload threshold < 1: "reserve some capacity to cover the overhead of scheduling
  // and interrupt handling."
  double overload_threshold = 0.95;
  // Constant progress-pressure applied to miscellaneous threads: "the controller
  // approximates the thread's progress with a positive constant." Sized so an
  // unopposed miscellaneous job ramps to the ceiling within a couple of seconds.
  double misc_pressure = 0.1;
  // Whether the controller's own computation is charged to the CPU (Fig. 5 overhead).
  bool charge_overhead = true;
  // Quality exception: fires when at least `quality_patience` of the last
  // `10 * quality_patience` controller intervals showed saturation evidence (queue
  // pinned beyond the fill extreme, or saturation hits — failed pushes/pops — since
  // the previous check). A windowed count rather than a consecutive streak: bursty
  // consumers dip below the extreme between drain bursts even while data is being
  // dropped at a steady rate.
  int quality_patience = 25;  // Evidence intervals within the last 10x window.
  double quality_fill_extreme = 0.95;
  // Deadline-miss feedback (paper footnote 3): each miss notification shrinks the
  // admission threshold by this amount, increasing spare capacity.
  bool adaptive_admission = true;
  double admission_backoff = 0.002;
  double min_overload_threshold = 0.5;
  // Interactive heuristic: period small enough for human perception, and enough
  // allocation headroom for one measured burst per period.
  Duration interactive_period = Duration::Millis(10);
  double interactive_headroom = 1.5;
  // --- Control-plane execution strategy ---
  // If true (default), RunOnce executes the staged pipeline with incrementally
  // maintained state. If false, RunOnce falls back to RunOnceReference — the
  // original monolithic sweep (O(cores·n) budget scans, full-window evidence
  // rescans, per-thread actuation) kept as the comparison baseline and oracle.
  // Both modes schedule bit-identically.
  bool use_pipeline = true;
  // Shadow mode (pipeline only): every iteration re-derives each incrementally
  // maintained quantity — ledger sums, cached pressures, cached saturation
  // verdicts, windowed evidence counts — the reference way and asserts equality.
  // The fuzz harness runs this on every seed.
  bool shadow_check = false;
};

class FeedbackAllocator {
 public:
  FeedbackAllocator(Machine& machine, RbsScheduler& rbs, QueueRegistry& queues,
                    const ControllerConfig& config = ControllerConfig{});
  ~FeedbackAllocator();  // Releases the Machine's migration hook.

  // Schedules the periodic controller invocation. Call once.
  void Start();

  // Wires deadline-miss feedback from an additional per-core RbsScheduler to this
  // controller (the constructor wires the primary one) and registers it as the next
  // core's actuation target. System calls this for cores 1..N-1, in core order, when
  // building an SMP machine — actuation must go through the scheduler that owns the
  // thread's run queue, because the indexed dispatch structures (sched/rbs.h) are
  // maintained by the owning instance's hooks.
  void WireScheduler(RbsScheduler& rbs);

  // --- Registration: the Figure 2 taxonomy ---
  // Real-time: proportion and period specified. Subject to admission control; returns
  // false (and leaves the thread unmanaged) when rejected.
  bool AddRealTime(SimThread* thread, Proportion proportion, Duration period);
  // Aperiodic real-time: proportion specified, controller assigns the default period.
  bool AddAperiodicRealTime(SimThread* thread, Proportion proportion);
  // Real-rate: progress metric(s) must already be registered in the queue registry.
  void AddRealRate(SimThread* thread);
  // Miscellaneous: no information; constant-pressure heuristic.
  void AddMiscellaneous(SimThread* thread);
  // Interactive (§3.2): "the scheduler only needs to know that the job is interactive"
  // — a small period for human-perception latency, proportion estimated "by measuring
  // the amount of time they typically run before blocking".
  void AddInteractive(SimThread* thread);
  // O(1) via the id→slot index (last-slot swap); no-op for unmanaged threads.
  // The swap reorders the controlled set, and enumeration order is
  // schedule-visible through the squish arithmetic — so an explicit mid-run
  // Remove may perturb later grants relative to an order-preserving erase. That
  // is deliberate (removal is an API event, deterministically replayed, and both
  // controller modes see the same order); only the implicit exited-thread drop
  // stays order-preserving, because threads exit without any API call to anchor
  // the perturbation to.
  void Remove(SimThread* thread);

  void SetQualityExceptionFn(QualityExceptionFn fn) { quality_fn_ = std::move(fn); }

  // Invoked at the end of every controller iteration, after overload resolution and
  // actuation — the invariant oracle's controller-tick observation point. The hook
  // must be a read-only observer (see MachineChecker).
  using PostRunHook = std::function<void(TimePoint)>;
  void SetPostRunHook(PostRunHook hook) { post_run_hook_ = std::move(hook); }

  // One controller iteration (dispatches to the pipeline or the reference sweep per
  // config().use_pipeline). Public so the wall-clock overhead bench can drive it
  // directly; normal use goes through Start().
  void RunOnce(TimePoint now);
  // The original monolithic sweep, preserved verbatim as the reference
  // implementation the pipeline is validated against (shadow mode, the fuzz
  // harness's whole-run trace-equality pass) and the baseline
  // bench_controller_scale measures. RunOnce routes here when !use_pipeline.
  void RunOnceReference(TimePoint now);

  // --- Introspection (tests, experiment harness) ---
  double DesiredFraction(ThreadId id) const;
  double GrantedFraction(ThreadId id) const;
  double LastPressure(ThreadId id) const;
  Duration PeriodOf(ThreadId id) const;
  std::optional<ThreadClass> ClassOf(ThreadId id) const;
  double overload_threshold() const { return overload_threshold_; }
  // Fixed (real-time / aperiodic real-time) reservations: machine-wide sum, and the
  // sum drawn from one core's budget. O(1), served from the budget ledger.
  double FixedReservedSum() const;
  double FixedReservedSumOnCore(CpuId core) const;
  const BudgetLedger& ledger() const { return ledger_; }
  int64_t invocations() const { return invocations_; }
  int64_t quality_exceptions() const { return quality_exceptions_; }
  int64_t squish_events() const { return squish_events_; }
  size_t controlled_count() const { return controlled_.size(); }
  // Shadow-mode observability: incremental quantities re-derived the reference way
  // and found equal.
  int64_t shadow_checks() const { return shadow_checks_; }
  // Dirty-set sampler observability: real-rate sample/saturation sweeps skipped
  // (clean) vs executed (dirty).
  int64_t clean_samples() const { return clean_samples_; }
  int64_t dirty_samples() const { return dirty_samples_; }

  const ControllerConfig& config() const { return config_; }

 private:
  struct Controlled {
    // Hot scalars first: the Sample/Estimate/Resolve sweeps stream these every tick,
    // so they pack into the leading cachelines ahead of the cold estimator state.
    SimThread* thread = nullptr;
    ThreadClass cls = ThreadClass::kMiscellaneous;
    // Per-tick scratch: written by the Sample stage, consumed by Estimate/Actuate.
    bool tick_clean = false;
    // The thread's slot in the registry's hot-field slabs (task/thread_slabs.h),
    // cached at registration; kNoSlot when the registry runs slab-less. Stable for
    // the thread's lifetime, so the pipeline reads columns without re-resolving.
    int32_t slab_slot = ThreadSlabs::kNoSlot;
    // Real-time / aperiodic real-time reservation, in exact integer ppt (the
    // ledger's currency). The fraction view is derived, never stored separately.
    int32_t fixed_ppt = 0;
    double FixedFraction() const { return static_cast<double>(fixed_ppt) / 1000.0; }
    Duration period;
    double desired = 0.0;
    double granted = 0.0;
    double last_pressure = 0.0;
    double tick_used_fraction = 0.0;
    // --- Cold per-thread state (touched off the per-tick hot path) ---
    std::unique_ptr<ProportionEstimator> estimator;   // Real-rate / miscellaneous only.
    std::unique_ptr<PeriodEstimator> period_estimator;  // Real-rate only.
    // Sliding window of per-interval saturation evidence (O(1) running count).
    std::unique_ptr<SaturationWindow> quality_window;
    // Saturation counters seen at the previous quality check, per linkage.
    std::vector<int64_t> last_full_hits;
    std::vector<int64_t> last_empty_hits;
    // Dirty-set sampler state: linkage snapshot, cached pressure, cached fill-based
    // saturation verdict (real-rate only).
    LinkageCache linkage_cache;
    // Fill samples for period estimation, sized to cover one period of intervals.
    std::unique_ptr<RingBuffer<double>> fill_window;
    TimePoint last_period_mark;
  };

  static bool IsFixedClass(ThreadClass cls) {
    return cls == ThreadClass::kRealTime || cls == ThreadClass::kAperiodicRealTime;
  }
  static bool IsAdaptiveClass(ThreadClass cls) {
    return cls == ThreadClass::kRealRate || cls == ThreadClass::kMiscellaneous ||
           cls == ThreadClass::kInteractive;
  }

  void ScheduleNext();
  // The scheduler owning `thread`'s run queue (by core affinity). Falls back to the
  // primary scheduler when the thread's core was never wired — the single-scheduler
  // rigs some unit tests build.
  RbsScheduler& SchedulerFor(const SimThread* thread);
  RbsScheduler& SchedulerForCore(CpuId core);
  // The paper's admission test against the thread's core's fixed budget; if that
  // core would reject but the least fixed-loaded core would accept (SMP only), the
  // thread migrates there first.
  bool PlaceAndAdmit(SimThread* thread, double request);
  Controlled* Find(ThreadId id);
  const Controlled* Find(ThreadId id) const;
  // Registration/removal through the id→slot index and the budget ledger.
  void RegisterControlled(Controlled&& c);
  void RemoveSlot(size_t slot);
  void RebuildSlotIndex();
  // Drops threads that exited since the last tick (order-preserving, like the
  // original sweep — removal order is schedule-visible through the squish).
  void DropExited();
  void EnsureQualityWindow(Controlled& c);
  // Slab-column reads for the per-tick sweeps: threads bound to the registry's SoA
  // slabs are read through their column (one contiguous stream across the controlled
  // set) instead of a SimThread pointer chase; slab-less threads fall back to the
  // object. Both sides are write-through mirrors of the same state, so the values
  // are identical by construction (and shadow mode asserts it every tick).
  bool ExitedOf(const Controlled& c) const;
  CpuId CpuOf(const Controlled& c) const;
  double ImportanceOf(const Controlled& c) const;
  // Publishes the tick's progress pressure into the slab's pressure column — this
  // controller is that column's sole writer.
  void MirrorPressure(const Controlled& c);

  // --- The staged pipeline (use_pipeline) ---
  void RunOncePipeline(TimePoint now);
  // Sample: drain usage windows and refresh progress pressure, skipping linkage
  // sweeps for threads whose queues kept their change epochs (the dirty set).
  void SampleStage();
  // Estimate: the Figure 3/4 control laws per thread, on the sampled inputs.
  void EstimateStage(double dt, TimePoint now);
  // Resolve: bucket adaptive desires per core (one pass), read each core's fixed
  // budget from the ledger, squish.
  void ResolveStage();
  // Actuate: apply each core's resolved grants as one batch through the owning
  // scheduler, then run the post-grant quality audit and charge overhead.
  void ActuateStage(TimePoint now);
  void QualityAudit(Controlled& c, TimePoint now);
  // Full linkage sweep with saturation-hit deltas (dirty ticks); refreshes the
  // cached fill-based verdict and returns this tick's saturated queue, if any.
  BoundedBuffer* GatherSaturation(Controlled& c);

  // --- The reference sweep (RunOnceReference) ---
  void SampleAndEstimate(Controlled& c, double dt, TimePoint now);
  void ApplyPeriodEstimation(Controlled& c, TimePoint now);
  void CheckQuality(Controlled& c, TimePoint now);
  // Per-thread actuation (the reference path and period-estimation re-actuations).
  void Actuate(Controlled& c, double fraction, TimePoint now);
  // Reference recomputation of the ledger's per-core fixed sum (shadow oracle).
  int64_t FixedPptOnCoreScan(CpuId core) const;

  void OnDeadlineMiss(SimThread* thread, Cycles shortfall, TimePoint now);

  Machine& machine_;
  RbsScheduler& rbs_;
  // Actuation targets in core order (schedulers_[core] serves core `core`): the
  // constructor registers `rbs_` as core 0, WireScheduler appends the rest.
  std::vector<RbsScheduler*> schedulers_;
  QueueRegistry& queues_;
  ControllerConfig config_;
  double overload_threshold_;
  std::vector<Controlled> controlled_;
  // id→slot index into controlled_ (the dispatch layer's sched_slot idiom): O(1)
  // Find, O(1) Remove by last-slot swap.
  std::unordered_map<ThreadId, size_t> slot_of_;
  BudgetLedger ledger_;
  // The registry's hot-field slabs (null when the registry runs slab-less); the
  // source the column helpers above read and the pressure column's write target.
  ThreadSlabs* slabs_ = nullptr;
  // Per-core scratch reused across ticks by Resolve/Actuate.
  std::vector<std::vector<SquishRequest>> core_requests_;
  std::vector<std::vector<size_t>> core_slots_;
  std::vector<std::vector<double>> core_grants_;
  std::vector<ReservationUpdate> batch_;
  QualityExceptionFn quality_fn_;
  PostRunHook post_run_hook_;
  int64_t invocations_ = 0;
  int64_t quality_exceptions_ = 0;
  int64_t squish_events_ = 0;
  int64_t shadow_checks_ = 0;
  int64_t clean_samples_ = 0;
  int64_t dirty_samples_ = 0;
  bool started_ = false;
};

}  // namespace realrate

#endif  // REALRATE_CORE_CONTROLLER_H_
