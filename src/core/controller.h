// FeedbackAllocator: the paper's adaptive controller (§3.3). Runs periodically
// (user-level, 100 Hz in the prototype), samples each controlled thread's progress,
// derives a desired proportion through the Figure 3/Figure 4 control laws, resolves
// overload by admission control and (weighted fair-share) squishing, and actuates the
// reservation scheduler.
//
// Multi-CPU: proportions are allocated per core. Admission control and the
// squish/overload resolution each operate within the 100% (well, overload_threshold)
// budget of one core, exactly as the paper's uniprocessor controller does — the
// Machine's placement/rebalance policy decides which core a thread's proportion is
// drawn from, and a real-time reservation that would be rejected on its own core is
// steered to the core with the most unreserved fixed capacity before admission. On a
// 1-core machine all of this degenerates to the paper's controller, bit for bit.
//
// Ownership: borrows the Machine, the core-0 RbsScheduler (its actuation interface —
// reservation state lives on the threads, so one instance can actuate any thread),
// and the QueueRegistry; all must outlive it. Owns the per-thread estimator state.
//
// Units: proportions are dimensionless fractions of ONE core in [0, 1] (Proportion is
// parts-per-thousand); periods and the controller interval are virtual-time
// Durations; sampled usage is in simulated Cycles.
//
// Thread-safety: none — runs inside single-threaded simulator events like every
// layer above the Simulator.
#ifndef REALRATE_CORE_CONTROLLER_H_
#define REALRATE_CORE_CONTROLLER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/period_estimator.h"
#include "core/proportion_estimator.h"
#include "core/quality.h"
#include "queue/registry.h"
#include "sched/machine.h"
#include "sched/rbs.h"
#include "util/ring_buffer.h"
#include "util/types.h"

namespace realrate {

struct ControllerConfig {
  // Controller execution period: "100 Hz in our prototype".
  Duration interval = Duration::Millis(10);
  ProportionEstimatorConfig estimator;
  PeriodEstimatorConfig period_estimator;
  // The paper's experiments all disable period estimation; so do we by default.
  bool enable_period_estimation = false;
  // Default period for aperiodic and miscellaneous threads: "our prototype uses a
  // default value of 30 milliseconds."
  Duration default_period = Duration::Millis(30);
  // Overload threshold < 1: "reserve some capacity to cover the overhead of scheduling
  // and interrupt handling."
  double overload_threshold = 0.95;
  // Constant progress-pressure applied to miscellaneous threads: "the controller
  // approximates the thread's progress with a positive constant." Sized so an
  // unopposed miscellaneous job ramps to the ceiling within a couple of seconds.
  double misc_pressure = 0.1;
  // Whether the controller's own computation is charged to the CPU (Fig. 5 overhead).
  bool charge_overhead = true;
  // Quality exception: fires when at least `quality_patience` of the last
  // `10 * quality_patience` controller intervals showed saturation evidence (queue
  // pinned beyond the fill extreme, or saturation hits — failed pushes/pops — since
  // the previous check). A windowed count rather than a consecutive streak: bursty
  // consumers dip below the extreme between drain bursts even while data is being
  // dropped at a steady rate.
  int quality_patience = 25;  // Evidence intervals within the last 10x window.
  double quality_fill_extreme = 0.95;
  // Deadline-miss feedback (paper footnote 3): each miss notification shrinks the
  // admission threshold by this amount, increasing spare capacity.
  bool adaptive_admission = true;
  double admission_backoff = 0.002;
  double min_overload_threshold = 0.5;
  // Interactive heuristic: period small enough for human perception, and enough
  // allocation headroom for one measured burst per period.
  Duration interactive_period = Duration::Millis(10);
  double interactive_headroom = 1.5;
};

class FeedbackAllocator {
 public:
  FeedbackAllocator(Machine& machine, RbsScheduler& rbs, QueueRegistry& queues,
                    const ControllerConfig& config = ControllerConfig{});

  // Schedules the periodic controller invocation. Call once.
  void Start();

  // Wires deadline-miss feedback from an additional per-core RbsScheduler to this
  // controller (the constructor wires the primary one) and registers it as the next
  // core's actuation target. System calls this for cores 1..N-1, in core order, when
  // building an SMP machine — actuation must go through the scheduler that owns the
  // thread's run queue, because the indexed dispatch structures (sched/rbs.h) are
  // maintained by the owning instance's hooks.
  void WireScheduler(RbsScheduler& rbs);

  // --- Registration: the Figure 2 taxonomy ---
  // Real-time: proportion and period specified. Subject to admission control; returns
  // false (and leaves the thread unmanaged) when rejected.
  bool AddRealTime(SimThread* thread, Proportion proportion, Duration period);
  // Aperiodic real-time: proportion specified, controller assigns the default period.
  bool AddAperiodicRealTime(SimThread* thread, Proportion proportion);
  // Real-rate: progress metric(s) must already be registered in the queue registry.
  void AddRealRate(SimThread* thread);
  // Miscellaneous: no information; constant-pressure heuristic.
  void AddMiscellaneous(SimThread* thread);
  // Interactive (§3.2): "the scheduler only needs to know that the job is interactive"
  // — a small period for human-perception latency, proportion estimated "by measuring
  // the amount of time they typically run before blocking".
  void AddInteractive(SimThread* thread);
  void Remove(SimThread* thread);

  void SetQualityExceptionFn(QualityExceptionFn fn) { quality_fn_ = std::move(fn); }

  // Invoked at the end of every controller iteration, after overload resolution and
  // actuation — the invariant oracle's controller-tick observation point. The hook
  // must be a read-only observer (see MachineChecker).
  using PostRunHook = std::function<void(TimePoint)>;
  void SetPostRunHook(PostRunHook hook) { post_run_hook_ = std::move(hook); }

  // One controller iteration. Public so the wall-clock overhead bench can drive it
  // directly; normal use goes through Start().
  void RunOnce(TimePoint now);

  // --- Introspection (tests, experiment harness) ---
  double DesiredFraction(ThreadId id) const;
  double GrantedFraction(ThreadId id) const;
  double LastPressure(ThreadId id) const;
  Duration PeriodOf(ThreadId id) const;
  std::optional<ThreadClass> ClassOf(ThreadId id) const;
  double overload_threshold() const { return overload_threshold_; }
  // Fixed (real-time / aperiodic real-time) reservations: machine-wide sum, and the
  // sum drawn from one core's budget.
  double FixedReservedSum() const;
  double FixedReservedSumOnCore(CpuId core) const;
  int64_t invocations() const { return invocations_; }
  int64_t quality_exceptions() const { return quality_exceptions_; }
  int64_t squish_events() const { return squish_events_; }
  size_t controlled_count() const { return controlled_.size(); }

  const ControllerConfig& config() const { return config_; }

 private:
  struct Controlled {
    SimThread* thread = nullptr;
    ThreadClass cls = ThreadClass::kMiscellaneous;
    std::unique_ptr<ProportionEstimator> estimator;   // Real-rate / miscellaneous only.
    std::unique_ptr<PeriodEstimator> period_estimator;  // Real-rate only.
    Duration period;
    double fixed_fraction = 0.0;  // Real-time / aperiodic real-time reservations.
    double desired = 0.0;
    double granted = 0.0;
    double last_pressure = 0.0;
    // Sliding window of per-interval saturation evidence.
    std::unique_ptr<RingBuffer<uint8_t>> quality_window;
    // Saturation counters seen at the previous quality check, per linkage.
    std::vector<int64_t> last_full_hits;
    std::vector<int64_t> last_empty_hits;
    // Fill samples for period estimation, sized to cover one period of intervals.
    std::unique_ptr<RingBuffer<double>> fill_window;
    TimePoint last_period_mark;
  };

  void ScheduleNext();
  // The scheduler owning `thread`'s run queue (by core affinity). Falls back to the
  // primary scheduler when the thread's core was never wired — the single-scheduler
  // rigs some unit tests build.
  RbsScheduler& SchedulerFor(const SimThread* thread);
  // The paper's admission test against the thread's core's fixed budget; if that
  // core would reject but the least fixed-loaded core would accept (SMP only), the
  // thread migrates there first.
  bool PlaceAndAdmit(SimThread* thread, double request);
  Controlled* Find(ThreadId id);
  const Controlled* Find(ThreadId id) const;
  void Admit(Controlled&& c, Proportion proportion);
  void SampleAndEstimate(Controlled& c, double dt, TimePoint now);
  void ApplyPeriodEstimation(Controlled& c, TimePoint now);
  void CheckQuality(Controlled& c, TimePoint now);
  void Actuate(Controlled& c, double fraction, TimePoint now);
  void OnDeadlineMiss(SimThread* thread, Cycles shortfall, TimePoint now);

  Machine& machine_;
  RbsScheduler& rbs_;
  // Actuation targets in core order (schedulers_[core] serves core `core`): the
  // constructor registers `rbs_` as core 0, WireScheduler appends the rest.
  std::vector<RbsScheduler*> schedulers_;
  QueueRegistry& queues_;
  ControllerConfig config_;
  double overload_threshold_;
  std::vector<Controlled> controlled_;
  QualityExceptionFn quality_fn_;
  PostRunHook post_run_hook_;
  int64_t invocations_ = 0;
  int64_t quality_exceptions_ = 0;
  int64_t squish_events_ = 0;
  bool started_ = false;
};

}  // namespace realrate

#endif  // REALRATE_CORE_CONTROLLER_H_
