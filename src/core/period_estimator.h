// Period-estimation heuristic for aperiodic real-rate threads (§3.3): "a simple
// heuristic which increases the period to reduce quantization error when the proportion
// is small ... The controller decreases the period to reduce jitter, which we detect
// via large oscillations relative to the buffer size. The controller determines the
// magnitude of oscillation by monitoring the amount of change in fill-level over the
// course of a period, averaged over several periods."
//
// The paper disabled this mechanism in all its experiments; it is implemented here,
// off by default, and exercised by tests and the A3 ablation bench.
#ifndef REALRATE_CORE_PERIOD_ESTIMATOR_H_
#define REALRATE_CORE_PERIOD_ESTIMATOR_H_

#include "util/ring_buffer.h"
#include "util/time.h"
#include "util/types.h"

namespace realrate {

struct PeriodEstimatorConfig {
  Duration min_period = Duration::Millis(5);
  Duration max_period = Duration::Millis(240);
  // Proportion below which quantization error dominates: with a 1 ms dispatch quantum,
  // a thread with a 10 ms period and a 2% share is due 0.2 quanta per period — it
  // either gets one quantum (5x too much) or none. Growing the period amortizes this.
  double small_fraction = 0.02;
  // Fill-level swing (fraction of buffer size, averaged over the window) above which
  // the period shrinks to cut jitter.
  double jitter_threshold = 0.25;
  // Number of recent fill-swing observations averaged.
  int window = 8;
};

class PeriodEstimator {
 public:
  explicit PeriodEstimator(const PeriodEstimatorConfig& config);

  // Records the fill-level swing (max-min fill fraction) observed over the last period.
  void ObserveFillSwing(double swing);

  // Proposes a period given the current one and the thread's current allocation.
  // Doubles on quantization pressure, halves on jitter pressure, otherwise returns
  // `current` unchanged. Jitter takes precedence (a jittery thread must not also grow
  // its period).
  Duration Propose(Duration current, double allocation_fraction);

  double MeanSwing() const;

 private:
  PeriodEstimatorConfig config_;
  RingBuffer<double> swings_;
};

}  // namespace realrate

#endif  // REALRATE_CORE_PERIOD_ESTIMATOR_H_
