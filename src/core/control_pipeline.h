// Building blocks of the controller's staged Sample → Estimate → Resolve → Actuate
// pipeline (see docs/ARCHITECTURE.md, "The control plane"). Each is a separately
// testable unit with a cheap incremental fast path and an O(n) reference computation
// the controller's shadow mode asserts it against:
//
//   - SaturationWindow: the quality-exception evidence window with an O(1) running
//     evidence count (the original controller re-summed the whole 10×patience-entry
//     ring on every tick for every real-rate thread — the single largest term of the
//     monolithic sweep at scale).
//   - LinkageCache: the dirty-set sampler's per-thread snapshot of its queue
//     linkages. Cleanliness is decided by epoch counters — QueueRegistry's
//     per-thread registration epoch and each BoundedBuffer's change epoch (bumped on
//     every push/pop/saturation hit) — so a tick skips the pressure and saturation
//     sweeps entirely for threads whose queues did not move since the last tick.
//
// Both fast paths are semantics-preserving: a clean thread's cached pressure and
// saturation verdict are exactly what the reference recomputation would produce,
// which is why pipeline and reference controllers schedule bit-identically.
#ifndef REALRATE_CORE_CONTROL_PIPELINE_H_
#define REALRATE_CORE_CONTROL_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "queue/registry.h"
#include "util/ring_buffer.h"
#include "util/types.h"

namespace realrate {

// Sliding window of per-interval saturation evidence with an O(1) running count.
// Push maintains the sum incrementally; ScanEvidence() is the O(window) reference
// computation (what the monolithic controller did every tick) kept for the reference
// sweep and for shadow-mode equality checks.
class SaturationWindow {
 public:
  explicit SaturationWindow(size_t capacity) : window_(capacity) {}

  void Push(uint8_t evidence) {
    if (window_.full()) {
      sum_ -= window_.Front();
    }
    window_.Push(evidence);
    sum_ += evidence;
  }

  // Evidence count over the retained window; O(1).
  int evidence() const { return sum_; }
  // Reference recomputation by full scan; O(window).
  int ScanEvidence() const {
    int total = 0;
    for (size_t i = 0; i < window_.size(); ++i) {
      total += window_[i];
    }
    return total;
  }

  void Clear() {
    window_.Clear();
    sum_ = 0;
  }

  size_t size() const { return window_.size(); }
  size_t capacity() const { return window_.capacity(); }

 private:
  RingBuffer<uint8_t> window_;
  int sum_ = 0;
};

// Whether one linkage's fill level alone satisfies the §3.3 saturation criterion: a
// consumer that cannot keep up sees its input pinned full; a producer that cannot
// keep up sees its output pinned empty. The hit-counter half of the criterion
// (failed pushes/pops since the last check) is delta-based and therefore false by
// definition on a clean tick — which is what makes the fill half cacheable.
inline bool FillStarved(const QueueLinkage& linkage, double fill_extreme) {
  const double fill = linkage.queue->FillFraction();
  return linkage.role == QueueRole::kConsumer ? fill >= fill_extreme
                                              : fill <= 1.0 - fill_extreme;
}

// First linkage queue (registration order) whose fill level is starved — the
// reference recomputation of LinkageCache::static_saturated.
BoundedBuffer* StaticSaturatedQueue(const std::vector<QueueLinkage>& linkages,
                                    double fill_extreme);

// Per-thread dirty-set snapshot: the linkage list plus the epochs it was taken at,
// the progress pressure computed from it, and the fill-based saturation verdict.
// IsClean() compares epochs without touching any cached pointer until the
// registration epoch proves the linkage list itself is unchanged.
struct LinkageCache {
  bool primed = false;
  uint64_t registration_epoch = 0;
  // Borrowed from the registry; revalidated through registration_epoch before every
  // dereference (Register/Unregister bump the epoch, so a stale pointer is never
  // followed).
  const std::vector<QueueLinkage>* linkages = nullptr;
  std::vector<uint64_t> queue_epochs;
  double pressure = 0.0;
  BoundedBuffer* static_saturated = nullptr;

  // True iff the linkage list and every linked queue are untouched since Refresh:
  // the thread's pressure and fill-saturation verdict are provably unchanged.
  bool IsClean(const QueueRegistry& queues, ThreadId thread) const {
    if (!primed || registration_epoch != queues.linkage_epoch(thread)) {
      return false;
    }
    const std::vector<QueueLinkage>& links = *linkages;
    for (size_t i = 0; i < links.size(); ++i) {
      if (queue_epochs[i] != links[i].queue->change_epoch()) {
        return false;
      }
    }
    return true;
  }

  // Re-snapshots the linkage list and its epochs; returns the (fresh) linkages.
  const std::vector<QueueLinkage>& Refresh(const QueueRegistry& queues, ThreadId thread) {
    linkages = &queues.LinkagesFor(thread);
    registration_epoch = queues.linkage_epoch(thread);
    queue_epochs.resize(linkages->size());
    for (size_t i = 0; i < linkages->size(); ++i) {
      queue_epochs[i] = (*linkages)[i].queue->change_epoch();
    }
    primed = true;
    return *linkages;
  }
};

}  // namespace realrate

#endif  // REALRATE_CORE_CONTROL_PIPELINE_H_
