#include "core/progress_meter.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace realrate {

ProgressMeter::ProgressMeter(Simulator& sim, QueueRegistry& registry, SimThread* thread,
                             std::string name, const Config& config)
    : sim_(sim), thread_(thread), config_(config) {
  RR_EXPECTS(thread != nullptr);
  RR_EXPECTS(config.target_rate > 0);
  RR_EXPECTS(config.capacity_units > 0);
  RR_EXPECTS(config.update_period.IsPositive());
  queue_ = registry.CreateQueue(std::move(name), config.capacity_units);
  // Start half-full: the thread begins exactly on target, with symmetric slack.
  queue_->TryPush(config.capacity_units / 2);
  registry.Register(queue_, thread->id(), QueueRole::kProducer);
}

void ProgressMeter::Start() {
  RR_EXPECTS(!started_);
  started_ = true;
  running_ = true;
  last_progress_ = thread_->progress_units();
  ScheduleNext();
}

void ProgressMeter::ScheduleNext() {
  sim_.ScheduleAfter(config_.update_period, [this] {
    if (!running_) {
      return;
    }
    Update();
    ScheduleNext();
  });
}

void ProgressMeter::Update() {
  // Produce: the thread's progress since the last reconciliation.
  const int64_t progress = thread_->progress_units();
  const int64_t delta = progress - last_progress_;
  last_progress_ = progress;
  if (delta > 0) {
    const int64_t room = queue_->capacity() - queue_->fill();
    const int64_t pushed = std::min(delta, room);
    if (pushed > 0) {
      queue_->TryPush(pushed);
    }
    // Progress beyond the buffer means the thread ran persistently ahead of target;
    // the saturated (full) queue already exerts maximal negative pressure.
    overflow_ += delta - pushed;
  }
  // Drain: the target rate's share of this period, with fractional carry.
  drain_carry_ += config_.target_rate * config_.update_period.ToSeconds();
  const auto whole = static_cast<int64_t>(drain_carry_);
  if (whole > 0) {
    drain_carry_ -= static_cast<double>(whole);
    drained_ += queue_->TryPop(whole);
  }
}

}  // namespace realrate
