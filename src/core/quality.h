// Quality exceptions: the controller's overload escalation path. "If it were the case
// that there was not sufficient CPU to satisfy all the jobs, the queue would eventually
// become full and trigger a quality exception, allowing the application to adapt by
// lowering its resource requirements."
#ifndef REALRATE_CORE_QUALITY_H_
#define REALRATE_CORE_QUALITY_H_

#include <functional>

#include "queue/bounded_buffer.h"
#include "task/thread.h"
#include "util/time.h"

namespace realrate {

struct QualityException {
  TimePoint when;
  SimThread* thread = nullptr;
  // The saturated queue that evidences the starvation (full for a consumer that cannot
  // keep up, empty for a producer that cannot fill).
  BoundedBuffer* queue = nullptr;
};

// Applications register a handler to renegotiate (lower their rate, drop quality...).
using QualityExceptionFn = std::function<void(const QualityException&)>;

}  // namespace realrate

#endif  // REALRATE_CORE_QUALITY_H_
