#include "core/pressure.h"

#include "util/assert.h"

namespace realrate {

double LinkagePressure(const QueueLinkage& linkage) {
  RR_EXPECTS(linkage.queue != nullptr);
  const double f = linkage.queue->PressureMetric();  // fill/size - 1/2, in [-1/2, 1/2].
  return RoleSign(linkage.role) * f;
}

double RawPressure(const QueueRegistry& registry, ThreadId thread) {
  return RawPressure(registry.LinkagesFor(thread));
}

double RawPressure(const std::vector<QueueLinkage>& linkages) {
  double sum = 0.0;
  for (const QueueLinkage& l : linkages) {
    sum += LinkagePressure(l);
  }
  return sum;
}

}  // namespace realrate
