// Progress-pressure computation (paper Figure 3):
//   Q_t = G( sum_i R_t,i * F_t,i )
// where F_t,i = fill/size - 1/2 for each queue the thread is registered on, R flips the
// sign for producers, and G is a PID control function.
#ifndef REALRATE_CORE_PRESSURE_H_
#define REALRATE_CORE_PRESSURE_H_

#include "queue/registry.h"
#include "util/types.h"

namespace realrate {

// Raw summed pressure for one thread over its registered queues; in
// [-n/2, +n/2] for n linkages. Positive = falling behind (needs more CPU).
double RawPressure(const QueueRegistry& registry, ThreadId thread);

// Same sum over an already-resolved linkage list (the controller's dirty-set
// sampler holds one; avoids re-resolving the registry's per-thread index).
double RawPressure(const std::vector<QueueLinkage>& linkages);

// Pressure contributed by a single linkage, in [-1/2, +1/2].
double LinkagePressure(const QueueLinkage& linkage);

}  // namespace realrate

#endif  // REALRATE_CORE_PRESSURE_H_
