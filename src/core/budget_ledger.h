// BudgetLedger: incrementally maintained per-core budget sums for the feedback
// controller's control plane (see docs/ARCHITECTURE.md, "The control plane").
//
// The paper's admission test and squish both need "how much of this core's budget is
// pinned by fixed (real-time / aperiodic real-time) reservations". The original
// controller answered with an O(n) sweep over every controlled thread per query —
// per admission call and once per core per 100 Hz tick. The ledger keeps the sums
// registered: Add/Remove/Move on the controller's registration and migration events,
// O(1) reads everywhere else.
//
// Units: fixed reservations are summed in integer parts-per-thousand (the exact
// representation of Proportion), so the sums are order-independent and bit-identical
// between the incremental ledger and a fresh reference scan — the property the
// controller's shadow mode asserts every tick. Fractions are derived on read as
// ppt / 1000.0. Granted sums (the adaptive classes' post-squish grants) are per-tick
// aggregates refreshed by the Resolve stage, kept as doubles for introspection only.
//
// The ledger's reference oracle (FixedPptOnCoreScan) reads each thread's core through
// the registry's hot-field slab columns (task/thread_slabs.h) when present — the
// same write-through mirror the dispatch layer scans, so ledger and slabs can never
// silently disagree about which core a fixed reservation is drawn from.
//
// Thread-safety: none — lives inside the single-threaded simulator like its owner.
#ifndef REALRATE_CORE_BUDGET_LEDGER_H_
#define REALRATE_CORE_BUDGET_LEDGER_H_

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace realrate {

class BudgetLedger {
 public:
  explicit BudgetLedger(int num_cores);

  int num_cores() const { return static_cast<int>(fixed_ppt_.size()); }

  // --- Admission threshold (mirrors the controller's overload_threshold) ---
  // The spare aggregates below are defined against this ceiling. The owning
  // controller re-mirrors it whenever adaptive admission backoff moves the
  // threshold, so cluster-level readers always see post-backoff head-room.
  void SetThresholdPpt(int32_t ppt);
  int32_t threshold_ppt() const { return threshold_ppt_; }

  // --- Fixed reservations (event-maintained; exact integer ppt) ---
  void AddFixed(CpuId core, int32_t ppt);
  void RemoveFixed(CpuId core, int32_t ppt);
  // Re-homes one reservation (a controller-steered placement or a rebalancer
  // migration). Equivalent to Remove(from) + Add(to).
  void MoveFixed(CpuId from, CpuId to, int32_t ppt);

  int64_t fixed_ppt_on(CpuId core) const { return fixed_ppt_[Index(core)]; }
  int64_t fixed_ppt_total() const { return fixed_ppt_total_; }
  double FixedFractionOn(CpuId core) const {
    return static_cast<double>(fixed_ppt_on(core)) / 1000.0;
  }
  double FixedFractionTotal() const { return static_cast<double>(fixed_ppt_total_) / 1000.0; }

  // --- Granted sums (per-tick aggregates written by the Resolve stage) ---
  void SetGranted(CpuId core, double fraction);
  double GrantedFractionOn(CpuId core) const { return granted_[Index(core)]; }
  // Budget head-room left on `core` under `threshold` after fixed reservations and
  // the adaptive grants of the last resolved tick. Clamped at zero: mid-squish (or
  // after an admission-threshold backoff) fixed + granted can transiently exceed
  // the threshold, and "negative spare" is not a meaningful routing signal — an
  // over-subscribed core simply has nothing to give. Callers that need the signed
  // overshoot can compute it from FixedFractionOn/GrantedFractionOn directly.
  double SpareFractionOn(CpuId core, double threshold) const {
    const double spare = threshold - FixedFractionOn(core) - GrantedFractionOn(core);
    return spare > 0.0 ? spare : 0.0;
  }

  // --- Spare aggregate (the cluster router's progress signal) ---
  // Exact integer ppt, clamped at zero per core, maintained incrementally on every
  // mutation so the cluster-level reader is O(1) regardless of core count. Grants
  // are quantized through Proportion's rounding (the same quantization actuation
  // applies), keeping the sum order-independent and bit-identical across replays.
  int64_t spare_ppt_on(CpuId core) const { return SpareContribution(Index(core)); }
  int64_t spare_ppt_total() const { return spare_ppt_total_; }

 private:
  size_t Index(CpuId core) const;
  // Clamped head-room of one core in ppt under the stored threshold.
  int64_t SpareContribution(size_t i) const {
    const int64_t spare = threshold_ppt_ - fixed_ppt_[i] - granted_ppt_[i];
    return spare > 0 ? spare : 0;
  }
  void RecomputeSpareTotal();

  std::vector<int64_t> fixed_ppt_;
  std::vector<double> granted_;
  std::vector<int64_t> granted_ppt_;
  int64_t fixed_ppt_total_ = 0;
  int32_t threshold_ppt_ = 950;  // ControllerConfig::overload_threshold default.
  int64_t spare_ppt_total_ = 0;
};

}  // namespace realrate

#endif  // REALRATE_CORE_BUDGET_LEDGER_H_
