#include "core/control_pipeline.h"

namespace realrate {

BoundedBuffer* StaticSaturatedQueue(const std::vector<QueueLinkage>& linkages,
                                    double fill_extreme) {
  for (const QueueLinkage& l : linkages) {
    if (FillStarved(l, fill_extreme)) {
      return l.queue;
    }
  }
  return nullptr;
}

}  // namespace realrate
