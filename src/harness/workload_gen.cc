#include "harness/workload_gen.h"

#include <algorithm>
#include <cstdio>

#include "util/assert.h"
#include "util/rng.h"

namespace realrate {

namespace {

// Draws a rate program for a pipeline whose base item size is `base` bytes. Values
// stay within [lo, hi] so items always fit their queue.
std::vector<RateSegmentSpec> DrawSegments(Rng& rng, double base, double lo, double hi,
                                          Duration run_for) {
  std::vector<RateSegmentSpec> segments;
  const auto horizon_ms = run_for.millis();
  const int kind = static_cast<int>(rng.NextBounded(4));
  switch (kind) {
    case 0:  // Constant.
      break;
    case 1: {  // Bursty: a few random overrides.
      const int n = 1 + static_cast<int>(rng.NextBounded(3));
      for (int i = 0; i < n; ++i) {
        RateSegmentSpec s;
        s.start = Duration::Millis(static_cast<int64_t>(rng.NextBounded(
            static_cast<uint64_t>(std::max<int64_t>(1, horizon_ms)))));
        s.width = Duration::Millis(20 + static_cast<int64_t>(rng.NextBounded(180)));
        s.bytes_per_item = rng.NextDouble(lo, hi);
        segments.push_back(s);
      }
      break;
    }
    case 2: {  // Pulsed: a regular square wave doubling (clamped) the base.
      const Duration width = Duration::Millis(30 + static_cast<int64_t>(rng.NextBounded(120)));
      const Duration gap = Duration::Millis(30 + static_cast<int64_t>(rng.NextBounded(120)));
      const double high = std::min(hi, 2.0 * base);
      for (Duration at = Duration::Millis(50); at < run_for; at += width + gap) {
        segments.push_back({at, width, high});
      }
      break;
    }
    case 3: {  // Phase-shifting: pulse width drifts each cycle.
      Duration width = Duration::Millis(40 + static_cast<int64_t>(rng.NextBounded(80)));
      const Duration gap = Duration::Millis(40 + static_cast<int64_t>(rng.NextBounded(80)));
      const int64_t drift_ms = 5 + static_cast<int64_t>(rng.NextBounded(25));
      const double high = std::min(hi, 2.0 * base);
      for (Duration at = Duration::Millis(50); at < run_for; at += width + gap) {
        segments.push_back({at, width, high});
        width += Duration::Millis(drift_ms);
      }
      break;
    }
  }
  return segments;
}

}  // namespace

uint64_t DeriveSeed(uint64_t seed, uint64_t salt) {
  // SplitMix64-style mix of (seed, salt); any stable bijective-ish scramble works.
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

RateSchedule BuildRateSchedule(const PipelineSpec& spec) {
  RateSchedule schedule(spec.bytes_per_item);
  for (const RateSegmentSpec& s : spec.segments) {
    schedule.AddSegment(TimePoint::Origin() + s.start, s.width, s.bytes_per_item);
  }
  return schedule;
}

WorkloadSpec GenerateWorkload(uint64_t seed) {
  Rng rng(DeriveSeed(seed, 0));
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_cpus = 1 + static_cast<int>(rng.NextBounded(8));
  spec.clock_hz = 400e6;
  spec.run_for = Duration::Millis(300 + static_cast<int64_t>(rng.NextBounded(500)));

  // Cluster bucket (~1 seed in 16): one cluster-wide open-loop request stream
  // routed across 2-4 small machines by the front-end router (src/cluster), at
  // an offered load from deep underload to 1.6x the whole cluster's capacity.
  // Half the seeds also run the cross-machine rebalancer, and a quarter fall
  // back to the round-robin router baseline. These specs take the cluster
  // differential battery (harness/differential.cc): M=1 pinned bit-identical to
  // a bare machine, per-machine trace hashes invariant across host-thread
  // widths, and rerun stability.
  if (rng.NextBool(0.0625)) {
    spec.num_cpus = 2 + static_cast<int>(rng.NextBounded(2));  // Cores per NODE.
    spec.run_for = Duration::Millis(120 + static_cast<int64_t>(rng.NextBounded(130)));
    spec.cluster.num_machines = 2 + static_cast<int>(rng.NextBounded(3));  // 2-4.
    spec.cluster.epoch = Duration::Millis(5 + static_cast<int64_t>(rng.NextBounded(10)));
    spec.cluster.feedback_router = !rng.NextBool(0.25);
    spec.cluster.pressure_damping = rng.NextDouble() * 0.9;
    if (rng.NextBool(0.5)) {
      spec.cluster.rebalance_interval =
          Duration::Millis(20 + static_cast<int64_t>(rng.NextBounded(80)));
      spec.cluster.rebalance_threshold = 1.2 + rng.NextDouble();
      spec.cluster.rebalance_max_moves = 16 + static_cast<int>(rng.NextBounded(48));
    }
    OpenLoopSpec ol;
    ol.num_workers = 2 + static_cast<int>(rng.NextBounded(4));  // Per node.
    ol.num_acceptors = 1;
    ol.accept_cycles = 5'000 + static_cast<Cycles>(rng.NextBounded(15'000));
    ol.arrivals.seed = DeriveSeed(seed, 0xC105);
    ol.arrivals.service_cycles = 60'000 + static_cast<Cycles>(rng.NextBounded(180'000));
    if (rng.NextBool(0.3)) {  // Heavy-tailed service demand.
      ol.arrivals.service_alpha = 1.3 + rng.NextDouble() * 1.2;
      ol.arrivals.max_service_cycles = ol.arrivals.service_cycles * 50;
    }
    ol.arrivals.request_bytes = 64 + static_cast<int64_t>(rng.NextBounded(192));
    ol.arrivals.max_request_bytes = ol.arrivals.request_bytes * 16;
    ol.worker_queue_bytes = ol.arrivals.max_request_bytes * 16;
    ol.listen_queue_bytes = ol.arrivals.max_request_bytes * 64;
    // Offered load as a ratio of the CLUSTER's saturation rate.
    const double node_capacity_rps =
        spec.num_cpus * spec.clock_hz /
        (MeanServiceCycles(ol.arrivals) + static_cast<double>(ol.accept_cycles));
    ol.arrivals.requests_per_sec =
        (0.3 + rng.NextDouble() * 1.3) * spec.cluster.num_machines * node_capacity_rps;
    spec.open_loops.push_back(std::move(ol));
    return spec;
  }

  // High-thread-count bucket (~1 seed in 10): a server-farm style machine with 512+
  // threads of short two-stage pipelines, so fuzzing exercises the indexed dispatch
  // path (many reserved threads, diverse period ranks) at scale. Short horizon keeps
  // the differential battery affordable. Reservations stay tiny so the machine-wide
  // 45% fixed budget holds: ≤ 360 producers × ≤ 4 ppt = 1.44 < 0.45 × 4 cores.
  if (rng.NextBool(0.1)) {
    spec.num_cpus = 4 + static_cast<int>(rng.NextBounded(5));  // 4-8 cores.
    spec.run_for = Duration::Millis(60 + static_cast<int64_t>(rng.NextBounded(80)));
    const int farm_pipelines = 256 + static_cast<int>(rng.NextBounded(104));
    for (int i = 0; i < farm_pipelines; ++i) {
      PipelineSpec p;
      p.producer_cycles_per_item = 50'000 + static_cast<Cycles>(rng.NextBounded(150'000));
      p.bytes_per_item = 40.0 + rng.NextDouble() * 80.0;
      p.consumer_cycles_per_byte = 200 + static_cast<Cycles>(rng.NextBounded(800));
      p.producer_proportion = Proportion::Ppt(2 + static_cast<int>(rng.NextBounded(3)));
      // Deterministic period variety (no extra draws): 28 distinct rate-monotonic
      // ranks cycling across the farm.
      p.producer_period = Duration::Millis(5 + i % 28);
      p.source_queue_bytes = static_cast<int64_t>(2.0 * p.bytes_per_item) * 8;
      p.priority = 3 + i % 5;
      p.tickets = 50 + (i % 7) * 37;
      spec.pipelines.push_back(std::move(p));
    }
    return spec;
  }

  // Control-plane bucket (~1 seed in 20): 1000+ controlled threads spanning all five
  // paper classes — real-time (pipeline producers), real-rate (pipeline consumers),
  // miscellaneous (hogs), aperiodic real-time, and interactive (tty editors) — so
  // fuzzing exercises the controller's staged pipeline (BudgetLedger, dirty-set
  // sampler, batched actuation, and the shadow/trace-equality oracles against
  // RunOnceReference) at production thread counts. Short horizon keeps the battery
  // affordable. Feasibility by construction needs both budgets to hold on the
  // smallest (6-core) machine: fixed reservations ≤ 479 producers × 3 ppt + 96
  // aperiodics × 3 ppt = 1.73 < 0.45 × 6 cores, and the adaptive allocation floors
  // (≤ 655 adaptive threads × 5 ppt = 3.28) plus fixed stay within the 6 × 0.95
  // admission ceiling, so per-core squish never has to overflow a core.
  if (rng.NextBool(0.05)) {
    spec.num_cpus = 6 + static_cast<int>(rng.NextBounded(3));  // 6-8 cores.
    spec.run_for = Duration::Millis(40 + static_cast<int64_t>(rng.NextBounded(40)));
    const int mega_pipelines = 416 + static_cast<int>(rng.NextBounded(64));
    for (int i = 0; i < mega_pipelines; ++i) {
      PipelineSpec p;
      p.producer_cycles_per_item = 60'000 + static_cast<Cycles>(rng.NextBounded(120'000));
      p.bytes_per_item = 40.0 + rng.NextDouble() * 60.0;
      p.consumer_cycles_per_byte = 200 + static_cast<Cycles>(rng.NextBounded(600));
      p.producer_proportion = Proportion::Ppt(1 + static_cast<int>(rng.NextBounded(3)));
      p.producer_period = Duration::Millis(5 + i % 28);
      p.source_queue_bytes = static_cast<int64_t>(2.0 * p.bytes_per_item) * 8;
      p.priority = 3 + i % 5;
      p.tickets = 50 + (i % 7) * 37;
      spec.pipelines.push_back(std::move(p));
    }
    const int mega_hogs = 96 + static_cast<int>(rng.NextBounded(32));
    for (int i = 0; i < mega_hogs; ++i) {
      HogSpec h;
      h.cycles_per_key = 500 + static_cast<Cycles>(rng.NextBounded(4'500));
      h.importance = 1.0 + rng.NextDouble() * 7.0;
      h.priority = 1 + i % 10;
      h.tickets = 10 + (i % 13) * 30;
      spec.hogs.push_back(h);
    }
    const int mega_aperiodics = 64 + static_cast<int>(rng.NextBounded(32));
    for (int i = 0; i < mega_aperiodics; ++i) {
      AperiodicSpec a;
      a.proportion = Proportion::Ppt(1 + static_cast<int>(rng.NextBounded(3)));
      a.priority = 2 + i % 8;
      a.tickets = 20 + (i % 11) * 25;
      spec.aperiodics.push_back(a);
    }
    const int mega_interactives = 32 + static_cast<int>(rng.NextBounded(16));
    for (int i = 0; i < mega_interactives; ++i) {
      InteractiveSpec e;
      e.cycles_per_event = 100'000 + static_cast<Cycles>(rng.NextBounded(400'000));
      e.mean_think = Duration::Millis(50 + static_cast<int64_t>(rng.NextBounded(250)));
      e.priority = 4 + i % 6;
      e.tickets = 100 + (i % 5) * 60;
      spec.interactives.push_back(e);
    }
    return spec;
  }

  // Open-loop bucket (~1 seed in 12): a Flash-style web farm driven by a seeded
  // arrival process (workloads/arrivals.h) at an offered load drawn from deep
  // underload to 2.2x the farm's CPU capacity, so fuzzing covers the regimes the
  // closed-loop buckets cannot express — sustained over-subscription, flash
  // crowds, admission drops. A couple of hogs ride along so the metamorphic
  // variants that strip wall-clock sources (clock scaling, core monotonicity)
  // still have work to measure. All farm threads are adaptive (real-rate), so
  // the fixed-reservation budget is untouched by construction.
  if (rng.NextBool(0.08)) {
    spec.num_cpus = 2 + static_cast<int>(rng.NextBounded(3));  // 2-4 cores.
    spec.run_for = Duration::Millis(120 + static_cast<int64_t>(rng.NextBounded(130)));
    OpenLoopSpec ol;
    ol.num_workers = 2 + static_cast<int>(rng.NextBounded(5));  // 2-6.
    ol.num_acceptors = 1;
    ol.accept_cycles = 5'000 + static_cast<Cycles>(rng.NextBounded(15'000));
    ol.arrivals.seed = DeriveSeed(seed, 0xA221);
    ol.arrivals.service_cycles = 60'000 + static_cast<Cycles>(rng.NextBounded(240'000));
    if (rng.NextBool(0.35)) {  // Heavy-tailed service demand.
      ol.arrivals.service_alpha = 1.3 + rng.NextDouble() * 1.2;
      ol.arrivals.max_service_cycles = ol.arrivals.service_cycles * 50;
    }
    ol.arrivals.request_bytes = 64 + static_cast<int64_t>(rng.NextBounded(192));
    if (rng.NextBool(0.4)) {  // Heavy-tailed response sizes.
      ol.arrivals.bytes_alpha = 1.2 + rng.NextDouble() * 1.3;
    }
    ol.arrivals.max_request_bytes = ol.arrivals.request_bytes * 16;
    ol.worker_queue_bytes = ol.arrivals.max_request_bytes * 16;
    ol.listen_queue_bytes = ol.arrivals.max_request_bytes * 64;
    // Offered load as a ratio of the farm's saturation rate.
    const double capacity_rps =
        spec.num_cpus * spec.clock_hz /
        (MeanServiceCycles(ol.arrivals) + static_cast<double>(ol.accept_cycles));
    const double target_rps = (0.4 + rng.NextDouble() * 1.8) * capacity_rps;
    if (rng.NextBool(0.4)) {  // Session churn instead of memoryless arrivals.
      ol.arrivals.kind = ArrivalConfig::Kind::kParetoSessions;
      ol.arrivals.session_alpha = 1.3 + rng.NextDouble() * 1.2;
      ol.arrivals.session_min_requests = 2.0;
      ol.arrivals.mean_think = Duration::Millis(2 + static_cast<int64_t>(rng.NextBounded(6)));
      const double mean_session_requests = ol.arrivals.session_min_requests *
                                           ol.arrivals.session_alpha /
                                           (ol.arrivals.session_alpha - 1.0);
      ol.arrivals.sessions_per_sec = target_rps / mean_session_requests;
    } else {
      ol.arrivals.requests_per_sec = target_rps;
    }
    if (rng.NextBool(0.5)) {  // Flash crowd: a 2-4x spike mid-run, then back to 1x.
      const int64_t horizon_ms = spec.run_for.millis();
      const auto t0_ms = static_cast<int64_t>(rng.NextBounded(
          static_cast<uint64_t>(std::max<int64_t>(1, horizon_ms / 2))));
      const int64_t width_ms =
          horizon_ms / 5 + static_cast<int64_t>(rng.NextBounded(
                               static_cast<uint64_t>(std::max<int64_t>(1, horizon_ms / 5))));
      const double spike = 2.0 + rng.NextDouble() * 2.0;
      ol.arrivals.load_curve.push_back({Duration::Millis(t0_ms), spike});
      ol.arrivals.load_curve.push_back({Duration::Millis(t0_ms + width_ms), 1.0});
    }
    ol.priority = 3 + static_cast<int>(rng.NextBounded(5));
    ol.tickets = 50 + static_cast<int64_t>(rng.NextBounded(250));
    spec.open_loops.push_back(std::move(ol));
    const int ol_hogs = 1 + static_cast<int>(rng.NextBounded(2));
    for (int i = 0; i < ol_hogs; ++i) {
      HogSpec h;
      h.cycles_per_key = 500 + static_cast<Cycles>(rng.NextBounded(4'500));
      h.importance = 1.0 + rng.NextDouble() * 7.0;
      h.priority = 1 + static_cast<int>(rng.NextBounded(10));
      h.tickets = 10 + static_cast<int64_t>(rng.NextBounded(390));
      spec.hogs.push_back(h);
    }
    return spec;
  }

  // Mailbox-regime bucket (~1 seed in 8): matched-rate unpaced pipelines sized so
  // queue-driven rounds pass the per-core epoch mailbox gate — per-tick staked
  // traffic (a few hundred bytes each way at 40 ppt / 400 MHz) is small against
  // the 64 KB queues, and the feedback controller's half-full steering keeps every
  // queue with both a fill cushion (pops never drain it) and headroom (pushes
  // never fill it). The host-thread equivalence pass (differential.cc pass 1e)
  // then fans real staked rounds out instead of only hog rounds; realrate_check
  // aggregates the staked-round counts so that pass can never go vacuous silently.
  // Half the pipelines carry one chunked stage so PipelineStageWork's round plan
  // is fuzzed too. Reservations total ≤ 8 × 40 ppt = 0.32 < 0.45 × 4 cores.
  if (rng.NextBool(0.125)) {
    spec.mailbox_regime = true;
    spec.num_cpus = 4;
    spec.run_for = Duration::Millis(200 + static_cast<int64_t>(rng.NextBounded(100)));
    const int mailbox_pipelines = 6 + static_cast<int>(rng.NextBounded(3));  // 6-8.
    for (int i = 0; i < mailbox_pipelines; ++i) {
      PipelineSpec p;
      p.producer_cycles_per_item = 3'000 + static_cast<Cycles>(rng.NextBounded(3'000));
      p.bytes_per_item = 48.0 + rng.NextDouble() * 32.0;
      p.consumer_cycles_per_byte = 300 + static_cast<Cycles>(rng.NextBounded(300));
      p.producer_proportion = Proportion::Ppt(40);
      p.producer_period = Duration::Millis(5 + i % 9);
      p.source_queue_bytes = 64 * 1024;
      if (i % 2 == 0) {
        StageSpec stage;
        stage.cycles_per_byte = 200 + static_cast<Cycles>(rng.NextBounded(400));
        stage.chunk_bytes = 96 + static_cast<int64_t>(rng.NextBounded(64));
        stage.queue_bytes = 64 * 1024;
        p.stages.push_back(stage);
      }
      p.priority = 3 + i % 5;
      p.tickets = 50 + (i % 7) * 37;
      spec.pipelines.push_back(std::move(p));
    }
    return spec;
  }

  // Fixed-reservation budget: at most 45% of the machine, each reservation at most
  // 45% of one core. The controller's least-fixed-loaded-core admission then always
  // finds a core below 50%, so every generated reservation is admitted (see
  // FeedbackAllocator::PlaceAndAdmit).
  double fixed_budget = 0.45 * spec.num_cpus;

  const int num_pipelines = static_cast<int>(rng.NextBounded(4));  // 0-3.
  for (int i = 0; i < num_pipelines; ++i) {
    PipelineSpec p;
    p.paced = rng.NextBool(0.25);
    p.producer_cycles_per_item = 100'000 + static_cast<Cycles>(rng.NextBounded(700'000));
    p.bytes_per_item = 50.0 + rng.NextDouble() * 350.0;
    p.consumer_cycles_per_byte = 500 + static_cast<Cycles>(rng.NextBounded(3'500));
    p.paced_interval = Duration::Millis(2 + static_cast<int64_t>(rng.NextBounded(18)));
    const double request = 0.03 + rng.NextDouble() * 0.09;  // 3-12% of one core.
    p.producer_proportion = Proportion::FromFraction(std::min(request, fixed_budget));
    p.producer_period = Duration::Millis(5 + static_cast<int64_t>(rng.NextBounded(15)));
    // Paced producers run unreserved, but their proportion still counts against the
    // budget: metamorphic variants (harness/differential.cc) may flip paced to
    // reserved and must stay admissible.
    fixed_budget -= p.producer_proportion.ToFraction();
    // Queues hold at least a handful of the largest possible items.
    const double max_bytes = 2.0 * p.bytes_per_item;
    p.source_queue_bytes =
        static_cast<int64_t>(max_bytes) * (4 + static_cast<int64_t>(rng.NextBounded(16)));
    p.segments = DrawSegments(rng, p.bytes_per_item, 0.5 * p.bytes_per_item, max_bytes,
                              spec.run_for);
    const int num_stages = static_cast<int>(rng.NextBounded(3));  // 0-2.
    for (int s = 0; s < num_stages; ++s) {
      StageSpec stage;
      stage.cycles_per_byte = 100 + static_cast<Cycles>(rng.NextBounded(1'900));
      stage.chunk_bytes = 100 + static_cast<int64_t>(rng.NextBounded(300));
      stage.queue_bytes = stage.chunk_bytes * (4 + static_cast<int64_t>(rng.NextBounded(16)));
      p.stages.push_back(stage);
    }
    p.priority = 3 + static_cast<int>(rng.NextBounded(5));
    p.tickets = 50 + static_cast<int64_t>(rng.NextBounded(250));
    spec.pipelines.push_back(std::move(p));
  }

  const int num_hogs = static_cast<int>(rng.NextBounded(4));  // 0-3.
  for (int i = 0; i < num_hogs; ++i) {
    HogSpec h;
    h.cycles_per_key = 500 + static_cast<Cycles>(rng.NextBounded(4'500));
    h.importance = 1.0 + rng.NextDouble() * 7.0;
    h.priority = 1 + static_cast<int>(rng.NextBounded(10));
    h.tickets = 10 + static_cast<int64_t>(rng.NextBounded(390));
    spec.hogs.push_back(h);
  }

  const int num_reservations = static_cast<int>(rng.NextBounded(3));  // 0-2.
  for (int i = 0; i < num_reservations; ++i) {
    const double request = 0.05 + rng.NextDouble() * 0.25;  // 5-30% of one core.
    if (request > fixed_budget) {
      continue;  // Budget exhausted; keep the draw sequence stable regardless.
    }
    ReservationSpec r;
    r.proportion = Proportion::FromFraction(request);
    r.period = Duration::Millis(5 + static_cast<int64_t>(rng.NextBounded(25)));
    r.priority = 1 + static_cast<int>(rng.NextBounded(10));
    r.tickets = 10 + static_cast<int64_t>(rng.NextBounded(390));
    // Deduct the ppt-quantized value actually stored (not the raw draw), so the
    // spec's summed fixed fraction respects the budget bit-exactly.
    fixed_budget -= r.proportion.ToFraction();
    spec.reservations.push_back(r);
  }

  if (spec.pipelines.empty() && spec.hogs.empty() && spec.reservations.empty()) {
    // Never generate an empty machine; a lone hog still exercises dispatch/squish.
    spec.hogs.push_back({1'000, 1.0, 5, 100});
  }
  return spec;
}

std::string WorkloadSpec::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "workload seed=%llu cpus=%d clock=%.0fMHz run_for=%lldms%s\n",
                static_cast<unsigned long long>(seed), num_cpus, clock_hz / 1e6,
                static_cast<long long>(run_for.millis()),
                mailbox_regime ? " (mailbox-regime)" : "");
  out += line;
  if (cluster.num_machines > 0) {
    std::snprintf(line, sizeof(line),
                  "  cluster: machines=%d epoch=%lldms router=%s damping=%.2f "
                  "rebalance=%lldms/%.2fx/max%d\n",
                  cluster.num_machines, static_cast<long long>(cluster.epoch.millis()),
                  cluster.feedback_router ? "feedback" : "round-robin",
                  cluster.pressure_damping,
                  static_cast<long long>(cluster.rebalance_interval.millis()),
                  cluster.rebalance_threshold, cluster.rebalance_max_moves);
    out += line;
  }
  for (size_t i = 0; i < pipelines.size(); ++i) {
    const PipelineSpec& p = pipelines[i];
    std::snprintf(line, sizeof(line),
                  "  pipeline[%zu]: %s cycles/item=%lld bytes/item=%.1f (%zu segments) "
                  "queue=%lldB stages=%zu consumer=%lldcyc/B prio=%d tickets=%lld\n",
                  i, p.paced ? "paced" : "reserved",
                  static_cast<long long>(p.producer_cycles_per_item), p.bytes_per_item,
                  p.segments.size(), static_cast<long long>(p.source_queue_bytes),
                  p.stages.size(), static_cast<long long>(p.consumer_cycles_per_byte),
                  p.priority, static_cast<long long>(p.tickets));
    out += line;
    if (!p.paced) {
      std::snprintf(line, sizeof(line), "    reservation %dppt / %lldms\n",
                    p.producer_proportion.ppt(),
                    static_cast<long long>(p.producer_period.millis()));
      out += line;
    }
  }
  for (size_t i = 0; i < hogs.size(); ++i) {
    const HogSpec& h = hogs[i];
    std::snprintf(line, sizeof(line),
                  "  hog[%zu]: %lldcyc/key importance=%.2f prio=%d tickets=%lld\n", i,
                  static_cast<long long>(h.cycles_per_key), h.importance, h.priority,
                  static_cast<long long>(h.tickets));
    out += line;
  }
  for (size_t i = 0; i < reservations.size(); ++i) {
    const ReservationSpec& r = reservations[i];
    std::snprintf(line, sizeof(line),
                  "  reservation[%zu]: %dppt / %lldms prio=%d tickets=%lld\n", i,
                  r.proportion.ppt(), static_cast<long long>(r.period.millis()),
                  r.priority, static_cast<long long>(r.tickets));
    out += line;
  }
  for (size_t i = 0; i < aperiodics.size(); ++i) {
    const AperiodicSpec& a = aperiodics[i];
    std::snprintf(line, sizeof(line), "  aperiodic[%zu]: %dppt prio=%d tickets=%lld\n", i,
                  a.proportion.ppt(), a.priority, static_cast<long long>(a.tickets));
    out += line;
  }
  for (size_t i = 0; i < open_loops.size(); ++i) {
    const OpenLoopSpec& ol = open_loops[i];
    const char* kind =
        ol.arrivals.kind == ArrivalConfig::Kind::kPoisson ? "poisson" : "sessions";
    const double rate = ol.arrivals.kind == ArrivalConfig::Kind::kPoisson
                            ? ol.arrivals.requests_per_sec
                            : ol.arrivals.sessions_per_sec;
    std::snprintf(line, sizeof(line),
                  "  open_loop[%zu]: %s rate=%.0f/s workers=%d acceptors=%d "
                  "accept=%lldcyc service=%lldcyc(a=%.2f) bytes=%lld(a=%.2f) "
                  "curve=%zu prio=%d tickets=%lld\n",
                  i, kind, rate, ol.num_workers, ol.num_acceptors,
                  static_cast<long long>(ol.accept_cycles),
                  static_cast<long long>(ol.arrivals.service_cycles),
                  ol.arrivals.service_alpha, static_cast<long long>(ol.arrivals.request_bytes),
                  ol.arrivals.bytes_alpha, ol.arrivals.load_curve.size(), ol.priority,
                  static_cast<long long>(ol.tickets));
    out += line;
  }
  for (size_t i = 0; i < interactives.size(); ++i) {
    const InteractiveSpec& e = interactives[i];
    std::snprintf(line, sizeof(line),
                  "  interactive[%zu]: %lldcyc/event think=%lldms prio=%d tickets=%lld\n",
                  i, static_cast<long long>(e.cycles_per_event),
                  static_cast<long long>(e.mean_think.millis()), e.priority,
                  static_cast<long long>(e.tickets));
    out += line;
  }
  return out;
}

}  // namespace realrate
