#include "harness/differential.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cluster_farm.h"
#include "exp/system.h"
#include "queue/registry.h"
#include "queue/tty.h"
#include "sched/machine.h"
#include "sim/simulator.h"
#include "task/registry.h"
#include "util/assert.h"
#include "workloads/misc_work.h"
#include "workloads/producer_consumer.h"
#include "workloads/server.h"
#include "workloads/web_farm.h"

namespace realrate {

namespace {

// Objects a built workload needs alive for the duration of the run but which no
// registry owns: the interactive editors' ttys and their typing processes, and the
// open-loop web farms' streams/injectors/latency samples.
struct WorkloadRuntime {
  std::vector<std::unique_ptr<TtyPort>> ttys;
  std::vector<std::unique_ptr<TypingProcess>> typists;
  std::vector<std::unique_ptr<WebFarmInstance>> farms;
};

// Instantiates the spec's queues and threads into an already-built machine. When
// `controller` is non-null (the RBS+feedback rig) every thread is also registered
// with the controller under its paper taxonomy class; admission rejections are
// tolerated (the thread then runs unreserved), which can only happen in metamorphic
// variants that force fewer cores than the spec was generated for.
void BuildWorkload(const WorkloadSpec& spec, ThreadRegistry& threads, QueueRegistry& queues,
                   Machine& machine, FeedbackAllocator* controller,
                   WorkloadRuntime& runtime) {
  for (size_t i = 0; i < spec.pipelines.size(); ++i) {
    const PipelineSpec& p = spec.pipelines[i];
    const std::string tag = std::to_string(i);

    // Queues: q[0] is the source queue, q[j + 1] sits behind stage j.
    std::vector<BoundedBuffer*> q;
    q.push_back(queues.CreateQueue("pipe" + tag + ".q0", p.source_queue_bytes));
    for (size_t j = 0; j < p.stages.size(); ++j) {
      q.push_back(queues.CreateQueue("pipe" + tag + ".q" + std::to_string(j + 1),
                                     p.stages[j].queue_bytes));
    }
    for (BoundedBuffer* buffer : q) {
      machine.Attach(buffer);
    }

    SimThread* producer;
    if (p.paced) {
      producer = threads.Create(
          "producer" + tag,
          std::make_unique<PacedProducerWork>(q[0],
                                              std::max<int64_t>(1, static_cast<int64_t>(
                                                                       p.bytes_per_item)),
                                              p.paced_interval, p.producer_cycles_per_item));
    } else {
      producer = threads.Create(
          "producer" + tag, std::make_unique<ProducerWork>(q[0], p.producer_cycles_per_item,
                                                           BuildRateSchedule(p)));
    }
    std::vector<SimThread*> chain;
    chain.push_back(producer);
    queues.Register(q[0], producer->id(), QueueRole::kProducer);

    for (size_t j = 0; j < p.stages.size(); ++j) {
      const StageSpec& s = p.stages[j];
      SimThread* stage = threads.Create(
          "stage" + tag + "." + std::to_string(j),
          std::make_unique<PipelineStageWork>(q[j], q[j + 1], s.cycles_per_byte,
                                              /*amplification=*/1.0, s.chunk_bytes));
      queues.Register(q[j], stage->id(), QueueRole::kConsumer);
      queues.Register(q[j + 1], stage->id(), QueueRole::kProducer);
      chain.push_back(stage);
    }

    SimThread* consumer = threads.Create(
        "consumer" + tag,
        std::make_unique<ConsumerWork>(q.back(), p.consumer_cycles_per_byte));
    queues.Register(q.back(), consumer->id(), QueueRole::kConsumer);
    chain.push_back(consumer);

    for (SimThread* t : chain) {
      t->set_priority(p.priority);
      t->set_tickets(p.tickets);
      machine.Attach(t);
    }
    if (controller != nullptr) {
      if (p.paced) {
        controller->AddMiscellaneous(producer);
      } else {
        controller->AddRealTime(producer, p.producer_proportion, p.producer_period);
      }
      for (size_t j = 1; j < chain.size(); ++j) {
        controller->AddRealRate(chain[j]);
      }
    }
  }

  for (size_t i = 0; i < spec.hogs.size(); ++i) {
    const HogSpec& h = spec.hogs[i];
    SimThread* hog = threads.Create("hog" + std::to_string(i),
                                    std::make_unique<CpuHogWork>(h.cycles_per_key));
    hog->set_importance(h.importance);
    hog->set_priority(h.priority);
    hog->set_tickets(h.tickets);
    machine.Attach(hog);
    if (controller != nullptr) {
      controller->AddMiscellaneous(hog);
    }
  }

  for (size_t i = 0; i < spec.reservations.size(); ++i) {
    const ReservationSpec& r = spec.reservations[i];
    SimThread* rt = threads.Create("rt" + std::to_string(i), std::make_unique<CpuHogWork>());
    rt->set_priority(r.priority);
    rt->set_tickets(r.tickets);
    machine.Attach(rt);
    if (controller != nullptr) {
      controller->AddRealTime(rt, r.proportion, r.period);
    }
  }

  for (size_t i = 0; i < spec.aperiodics.size(); ++i) {
    const AperiodicSpec& a = spec.aperiodics[i];
    SimThread* art = threads.Create("art" + std::to_string(i), std::make_unique<CpuHogWork>());
    art->set_priority(a.priority);
    art->set_tickets(a.tickets);
    machine.Attach(art);
    if (controller != nullptr) {
      controller->AddAperiodicRealTime(art, a.proportion);
    }
  }

  for (size_t i = 0; i < spec.interactives.size(); ++i) {
    const InteractiveSpec& e = spec.interactives[i];
    runtime.ttys.push_back(std::make_unique<TtyPort>("tty" + std::to_string(i)));
    TtyPort* tty = runtime.ttys.back().get();
    machine.Attach(tty);
    SimThread* editor = threads.Create("editor" + std::to_string(i),
                                       std::make_unique<InteractiveWork>(tty, e.cycles_per_event));
    editor->set_priority(e.priority);
    editor->set_tickets(e.tickets);
    machine.Attach(editor);
    if (controller != nullptr) {
      controller->AddInteractive(editor);
    }
    runtime.typists.push_back(std::make_unique<TypingProcess>(
        machine.sim(), tty,
        TypingProcess::Config{.mean_think = e.mean_think,
                              .seed = DeriveSeed(spec.seed, 0x7777 + i)}));
    runtime.typists.back()->Start();
  }

  for (size_t i = 0; i < spec.open_loops.size(); ++i) {
    const OpenLoopSpec& ol = spec.open_loops[i];
    WebFarmBuild build;
    build.tag = "web" + std::to_string(i);
    build.num_workers = ol.num_workers;
    build.num_acceptors = ol.num_acceptors;
    build.accept_cycles = ol.accept_cycles;
    build.listen_queue_bytes = ol.listen_queue_bytes;
    build.worker_queue_bytes = ol.worker_queue_bytes;
    build.clock_hz = spec.clock_hz;
    build.priority = ol.priority;
    build.tickets = ol.tickets;
    // Always the spec's own horizon, never a per-run override: every metamorphic
    // variant must replay the identical request stream.
    build.records = GenerateRequests(ol.arrivals, spec.run_for);
    runtime.farms.push_back(BuildWebFarm(build, machine.sim(), threads, queues, machine,
                                         controller));
  }
}

void FillOutcome(RunOutcome& outcome, const Simulator& sim, const Machine& machine,
                 const ThreadRegistry& threads, const InvariantOracle& oracle,
                 const WorkloadSpec& spec, const RunOptions& options) {
  outcome.num_cpus = sim.num_cpus();
  outcome.trace_hash = sim.trace().Hash();
  outcome.user_cycles = sim.UsedAllCpus(CpuUse::kUser);
  outcome.cycles_per_tick = machine.cycles_per_tick();
  outcome.dispatches = machine.dispatches();
  outcome.parallel_rounds = machine.parallel_rounds();
  outcome.mailbox_rounds = machine.mailbox_rounds();
  for (const SimThread* t : threads.All()) {
    outcome.total_progress += t->progress_units();
  }
  outcome.violation_count = oracle.violation_count();
  for (const InvariantViolation& v : oracle.violations()) {
    outcome.violations.push_back(v.message);
  }
  if (options.collect_trace_dump && outcome.violation_count > 0) {
    outcome.trace_dump = spec.ToString() + oracle.Summary() + sim.trace().ToString(500);
  }
}

Duration EffectiveRunFor(const WorkloadSpec& spec, const RunOptions& options) {
  return options.run_for_override.IsPositive() ? options.run_for_override : spec.run_for;
}

}  // namespace

RunOutcome RunWorkload(const WorkloadSpec& spec, const RunOptions& options) {
  RR_EXPECTS(options.clock_multiplier > 0);
  const int num_cpus = options.num_cpus_override > 0 ? options.num_cpus_override
                                                     : spec.num_cpus;
  const Duration run_for = EffectiveRunFor(spec, options);
  RunOutcome outcome;
  outcome.kind = options.kind;
  InvariantOracle oracle(options.oracle);

  if (options.kind == SchedulerKind::kFeedbackRbs) {
    SystemConfig config;
    config.num_cpus = num_cpus;
    config.cpu.clock_hz = spec.clock_hz * options.clock_multiplier;
    config.rbs.work_conserving = options.rbs_work_conserving;
    config.rbs.shadow_check = options.rbs_shadow_check;
    if (options.rbs_force_indexed) {
      config.rbs.pick_mode = PickMode::kIndexed;
    }
    config.controller.use_pipeline = options.controller_use_pipeline;
    config.controller.shadow_check = options.controller_shadow_check;
    config.machine.idle_fast_forward = options.machine_idle_fast_forward;
    config.machine.host_threads = options.host_threads;
    config.thread_slabs = options.thread_slabs;
    System system(config);
    system.sim().trace().SetEnabled(true);
    if (options.attach_oracle) {
      oracle.Observe(system);
    }
    WorkloadRuntime runtime;
    BuildWorkload(spec, system.threads(), system.queues(), system.machine(),
                  &system.controller(), runtime);
    system.Start();
    system.RunFor(run_for);
    if (options.attach_oracle) {
      oracle.FinishRun(system.machine(), system.sim().Now());
    }
    FillOutcome(outcome, system.sim(), system.machine(), system.threads(), oracle, spec,
                options);
    for (CpuId core = 0; core < system.num_cpus(); ++core) {
      outcome.shadow_checks += system.rbs(core).shadow_checks();
    }
    outcome.controller_shadow_checks = system.controller().shadow_checks();
    outcome.controller_clean_samples = system.controller().clean_samples();
    return outcome;
  }

  // Baseline rig: one scheduler instance per core, no controller. Lottery run queues
  // draw from per-core engines seeded from the workload seed, so baseline runs are as
  // replayable as everything else.
  CpuConfig cpu_config;
  cpu_config.clock_hz = spec.clock_hz * options.clock_multiplier;
  Simulator sim(cpu_config, num_cpus);
  MachineConfig machine_config;
  machine_config.idle_fast_forward = options.machine_idle_fast_forward;
  machine_config.host_threads = options.host_threads;
  ThreadRegistry threads(options.thread_slabs);
  QueueRegistry queues;
  std::vector<std::unique_ptr<Scheduler>> schedulers;
  std::vector<Scheduler*> raw;
  for (CpuId core = 0; core < num_cpus; ++core) {
    schedulers.push_back(MakeBaselineScheduler(
        options.kind, sim.cpu(core),
        DeriveSeed(spec.seed, 0x10c0 + static_cast<uint64_t>(core))));
    raw.push_back(schedulers.back().get());
  }
  Machine machine(sim, std::move(raw), threads, machine_config);
  sim.trace().SetEnabled(true);
  if (options.attach_oracle) {
    oracle.Observe(machine, &queues);
  }
  WorkloadRuntime runtime;
  BuildWorkload(spec, threads, queues, machine, /*controller=*/nullptr, runtime);
  machine.Start();
  machine.RunFor(run_for);
  if (options.attach_oracle) {
    oracle.FinishRun(machine, sim.Now());
  }
  FillOutcome(outcome, sim, machine, threads, oracle, spec, options);
  return outcome;
}

namespace {

constexpr SchedulerKind kAllKinds[] = {SchedulerKind::kFeedbackRbs, SchedulerKind::kLottery,
                                       SchedulerKind::kMlfq, SchedulerKind::kFixedPriority};

std::string Label(const char* what, SchedulerKind kind) {
  return std::string(what) + " [" + ToString(kind) + "]";
}

// Maps a cluster-bucket spec onto the cluster scenario runner's parameters: the
// spec's machine shape becomes one node, open_loops[0] the cluster-wide stream.
ClusterFarmParams ClusterParamsFromSpec(const WorkloadSpec& spec) {
  RR_EXPECTS(!spec.open_loops.empty());
  const OpenLoopSpec& ol = spec.open_loops.front();
  ClusterFarmParams params;
  params.num_machines = spec.cluster.num_machines;
  params.farm.num_cpus = spec.num_cpus;
  params.farm.clock_hz = spec.clock_hz;
  params.farm.run_for = spec.run_for;
  params.farm.num_workers = ol.num_workers;
  params.farm.num_acceptors = ol.num_acceptors;
  params.farm.accept_cycles = ol.accept_cycles;
  params.farm.listen_queue_bytes = ol.listen_queue_bytes;
  params.farm.worker_queue_bytes = ol.worker_queue_bytes;
  params.farm.arrivals = ol.arrivals;
  params.epoch = spec.cluster.epoch;
  params.router.policy = spec.cluster.feedback_router ? RouterPolicy::kFeedback
                                                      : RouterPolicy::kRoundRobin;
  params.router.pressure_damping = spec.cluster.pressure_damping;
  params.rebalance_interval = spec.cluster.rebalance_interval;
  params.rebalance_threshold = spec.cluster.rebalance_threshold;
  params.rebalance_max_moves = spec.cluster.rebalance_max_moves;
  return params;
}

// The differential battery for cluster-bucket specs. The scheduler battery does
// not apply (a cluster is M independent machines behind a router, not one
// machine under interchangeable schedulers); what must hold instead is the
// cluster determinism contract.
void CheckClusterSeed(const WorkloadSpec& spec, SeedReport& report) {
  const ClusterFarmParams params = ClusterParamsFromSpec(spec);

  // (a) Degenerate-cluster equivalence: M = 1 must be bit-identical to a bare
  // machine running the identical farm — the cluster layer may add nothing but
  // epoch fences (which settle without trace effects) around a single node.
  {
    ClusterFarmParams one = params;
    one.num_machines = 1;
    const ClusterFarmResult c = RunClusterFarmScenario(one);
    const WebFarmResult bare = RunWebFarmScenario(one.farm);
    if (c.machine_trace_hashes.size() != 1 ||
        c.machine_trace_hashes[0] != bare.trace_hash || c.served != bare.served ||
        c.accepted != bare.accepted || c.injected != bare.injected) {
      report.failures.push_back(
          "cluster M=1 equivalence: degenerate cluster diverged from the bare machine "
          "(hash " +
          std::to_string(c.machine_trace_hashes.empty() ? 0 : c.machine_trace_hashes[0]) +
          " vs " + std::to_string(bare.trace_hash) + ", served " +
          std::to_string(c.served) + " vs " + std::to_string(bare.served) + ")");
    }
  }

  // (b) Host-thread invariance at the drawn width: fanning each node's dispatch
  // rounds over 4 OS threads must leave every per-machine trace hash (and the
  // routed/served outcome) bit-identical.
  const ClusterFarmResult base = RunClusterFarmScenario(params);
  {
    ClusterFarmParams fanned = params;
    fanned.farm.host_threads = 4;
    const ClusterFarmResult wide = RunClusterFarmScenario(fanned);
    if (wide.machine_trace_hashes != base.machine_trace_hashes ||
        wide.served != base.served || wide.rebalanced != base.rebalanced) {
      report.failures.push_back(
          "cluster host-thread equivalence: host_threads 1 and 4 diverged (cluster hash " +
          std::to_string(base.cluster_hash) + " vs " + std::to_string(wide.cluster_hash) +
          ", served " + std::to_string(base.served) + " vs " +
          std::to_string(wide.served) + ")");
    }
  }

  // (c) Rerun stability: the scenario is a pure function of its parameters.
  {
    const ClusterFarmResult again = RunClusterFarmScenario(params);
    if (again.cluster_hash != base.cluster_hash || again.served != base.served ||
        again.rebalanced != base.rebalanced) {
      report.failures.push_back(
          "cluster rerun stability: identical parameters produced different runs "
          "(cluster hash " +
          std::to_string(base.cluster_hash) + " vs " + std::to_string(again.cluster_hash) +
          ")");
    }
  }
}

}  // namespace

SeedReport CheckSeed(uint64_t seed, const SeedCheckOptions& options) {
  SeedReport report;
  report.seed = seed;
  report.spec = GenerateWorkload(seed);
  const WorkloadSpec& spec = report.spec;

  if (spec.cluster.num_machines > 0) {
    CheckClusterSeed(spec, report);
    return report;
  }

  auto note_violations = [&](const RunOutcome& outcome, const std::string& label) {
    if (outcome.violation_count == 0) {
      return;
    }
    report.failures.push_back(label + ": " + std::to_string(outcome.violation_count) +
                              " invariant violations; first: " +
                              (outcome.violations.empty() ? std::string("<unrecorded>")
                                                          : outcome.violations.front()));
    if (report.trace_dump.empty()) {
      report.trace_dump = outcome.trace_dump;
    }
  };

  // 1. Invariant battery: the spec as generated, under every scheduler. The feedback
  // run doubles as the shadow pass for both hot paths: every dispatch asserts the
  // indexed pick equals the reference O(n) scan pick, and every controller tick
  // asserts the pipeline's incremental state (ledger sums, cached pressures,
  // saturation verdicts, evidence counts) equals a fresh reference derivation (a
  // mismatch aborts, which the CTest harness reports against this seed).
  uint64_t feedback_trace_hash = 0;
  int64_t feedback_progress = 0;
  int64_t feedback_dispatches = 0;
  for (const SchedulerKind kind : kAllKinds) {
    RunOptions run;
    run.kind = kind;
    run.rbs_shadow_check = kind == SchedulerKind::kFeedbackRbs;
    run.controller_shadow_check = kind == SchedulerKind::kFeedbackRbs;
    run.collect_trace_dump = options.collect_trace_dump;
    const RunOutcome outcome = RunWorkload(spec, run);
    if (kind == SchedulerKind::kFeedbackRbs) {
      feedback_trace_hash = outcome.trace_hash;
      feedback_progress = outcome.total_progress;
      feedback_dispatches = outcome.dispatches;
    }
    note_violations(outcome, Label("invariants", kind));
  }

  // 1b. Controller-mode equivalence: the same spec through the monolithic
  // RunOnceReference sweep must schedule bit-identically to the staged pipeline —
  // the whole-run complement of the per-tick shadow asserts above.
  {
    RunOptions reference;
    reference.controller_use_pipeline = false;
    reference.collect_trace_dump = options.collect_trace_dump;
    const RunOutcome ref = RunWorkload(spec, reference);
    note_violations(ref, "invariants [controller reference]");
    if (ref.trace_hash != feedback_trace_hash || ref.total_progress != feedback_progress ||
        ref.dispatches != feedback_dispatches) {
      report.failures.push_back(
          "controller mode equivalence: pipeline and RunOnceReference runs diverged "
          "(hash " + std::to_string(feedback_trace_hash) + " vs " +
          std::to_string(ref.trace_hash) + ", dispatches " +
          std::to_string(feedback_dispatches) + " vs " + std::to_string(ref.dispatches) +
          ")");
    }
  }

  // 1c. Memory-layout equivalence: the same spec with the hot-field slabs disabled
  // — every layer back on the pre-slab SimThread pointer chase — must schedule
  // bit-identically. The slabs are a write-through mirror; only the memory layout
  // may differ, never a scheduling decision.
  {
    RunOptions slabless;
    slabless.thread_slabs = false;
    slabless.collect_trace_dump = options.collect_trace_dump;
    const RunOutcome off = RunWorkload(spec, slabless);
    note_violations(off, "invariants [slabs off]");
    if (off.trace_hash != feedback_trace_hash || off.total_progress != feedback_progress ||
        off.dispatches != feedback_dispatches) {
      report.failures.push_back(
          "slab equivalence: slabs-on and slabs-off runs diverged (hash " +
          std::to_string(feedback_trace_hash) + " vs " + std::to_string(off.trace_hash) +
          ", dispatches " + std::to_string(feedback_dispatches) + " vs " +
          std::to_string(off.dispatches) + ")");
    }
  }

  // 1d. Pick-mode equivalence: kIndexed from the first dispatch vs the kAuto
  // occupancy switch (the 1b reference run above is a pure kAuto run, already
  // pinned to the same hash) — activating or never activating the indexed
  // structures mid-run must be trace-invariant.
  {
    RunOptions forced;
    forced.rbs_force_indexed = true;
    forced.collect_trace_dump = options.collect_trace_dump;
    const RunOutcome indexed = RunWorkload(spec, forced);
    note_violations(indexed, "invariants [forced indexed]");
    if (indexed.trace_hash != feedback_trace_hash ||
        indexed.total_progress != feedback_progress ||
        indexed.dispatches != feedback_dispatches) {
      report.failures.push_back(
          "pick-mode equivalence: forced-indexed and auto runs diverged (hash " +
          std::to_string(feedback_trace_hash) + " vs " + std::to_string(indexed.trace_hash) +
          ", dispatches " + std::to_string(feedback_dispatches) + " vs " +
          std::to_string(indexed.dispatches) + ")");
    }
  }

  // 1e. Host-thread equivalence: the feedback machine with its dispatch rounds
  // fanned out over N OS threads must reproduce the single-threaded trace bit for
  // bit, at every N. Both sides run WITHOUT the oracle attached — an installed
  // checker pins the machine to the sequential path (its hooks observe mid-round
  // state), so the 1-thread base here is re-run oracle-free rather than reusing the
  // pass-1 hash. The widths are 2 (the smallest parallel engine) and the host's
  // hardware concurrency (or SeedCheckOptions::equivalence_host_threads).
  {
    RunOptions base;
    base.attach_oracle = false;
    base.collect_trace_dump = options.collect_trace_dump;
    const RunOutcome one = RunWorkload(spec, base);
    const int wide =
        options.equivalence_host_threads > 0
            ? options.equivalence_host_threads
            : static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
    const int widths[] = {2, wide};
    for (int i = 0; i < (wide > 2 ? 2 : 1); ++i) {
      const int host_threads = widths[i];
      RunOptions fanned = base;
      fanned.host_threads = host_threads;
      const RunOutcome many = RunWorkload(spec, fanned);
      report.equivalence_parallel_rounds += many.parallel_rounds;
      report.equivalence_mailbox_rounds += many.mailbox_rounds;
      if (many.trace_hash != one.trace_hash || many.total_progress != one.total_progress ||
          many.dispatches != one.dispatches) {
        report.failures.push_back(
            "host-thread equivalence: 1 and " + std::to_string(host_threads) +
            " host threads diverged (hash " + std::to_string(one.trace_hash) + " vs " +
            std::to_string(many.trace_hash) + ", dispatches " +
            std::to_string(one.dispatches) + " vs " + std::to_string(many.dispatches) +
            ")");
      }
    }
  }

  if (!options.run_metamorphic) {
    return report;
  }

  // 2. Clock scaling: doubling clock_hz must exactly double the dispatch interval's
  // cycle capacity, and must scale delivered user cycles close to proportionally.
  // The ratio check needs a machine whose busy-ness is clock-invariant, so it runs
  // (a) under fixed-priority — work-conserving, so the machine is busy whenever
  // anything is runnable, unlike the feedback machine whose non-work-conserving
  // allocation ramp makes short-run cycle totals a nonlinear function of the clock
  // by design; (b) on one core — cross-core wake latency is quantized by the 1 ms
  // dispatch tick, a constant of virtual time, so at higher clocks a small-queue
  // cross-core pipeline legitimately stalls for a larger share of its cycles, while
  // on a uniprocessor a block is rescheduled within the same tick's dispatch loop;
  // and (c) with every wall-clock-paced source made CPU-bound, since an isochronous
  // device produces the same items per virtual second at any clock.
  {
    WorkloadSpec unpaced = spec;
    for (PipelineSpec& p : unpaced.pipelines) {
      p.paced = false;
    }
    // Open-loop arrival streams are wall-clock sources too (requests land at fixed
    // virtual times regardless of the clock), so they are excluded like paced
    // producers rather than converted.
    unpaced.open_loops.clear();
    RunOptions at1x;
    at1x.kind = SchedulerKind::kFixedPriority;
    at1x.num_cpus_override = 1;
    at1x.collect_trace_dump = options.collect_trace_dump;
    RunOptions at2x = at1x;
    at2x.clock_multiplier = 2.0;
    const RunOutcome r1 = RunWorkload(unpaced, at1x);
    const RunOutcome r2 = RunWorkload(unpaced, at2x);
    note_violations(r1, "invariants [clock-scale 1x]");
    note_violations(r2, "invariants [clock-scale 2x]");
    if (r2.cycles_per_tick != 2 * r1.cycles_per_tick) {
      report.failures.push_back("clock scaling: cycles_per_tick did not double (" +
                                std::to_string(r1.cycles_per_tick) + " -> " +
                                std::to_string(r2.cycles_per_tick) + ")");
    }
    // Below ~1M user cycles the run is dominated by startup transients; the ratio
    // check would only measure noise.
    if (r1.user_cycles > 1'000'000) {
      const double ratio =
          static_cast<double>(r2.user_cycles) / static_cast<double>(r1.user_cycles);
      if (ratio < 1.6 || ratio > 2.4) {
        report.failures.push_back(
            "clock scaling: user cycles scaled by " + std::to_string(ratio) +
            " (expected ~2.0; " + std::to_string(r1.user_cycles) + " -> " +
            std::to_string(r2.user_cycles) + ")");
      }
    }
  }

  // 3a. One more core, full spec: the invariant oracle must stay clean on the
  // enlarged machine (placement, rebalancing, and per-core squish all reshuffle).
  {
    RunOptions more;
    more.num_cpus_override = spec.num_cpus + 1;
    more.collect_trace_dump = options.collect_trace_dump;
    note_violations(RunWorkload(spec, more), "invariants [+1 core]");
  }

  // 3b. Core monotonicity, on the spec's partitionable sub-load. "Adding cores never
  // reduces throughput" is only a theorem for loads whose units are independent —
  // the spec's hogs and periodic reservations. It is NOT one for the other
  // ingredients, each for a documented reason the harness must not flag as a bug:
  // cross-core pipelines couple stage capacities (Σ min(stage rates) is non-monotone
  // under placement reshuffles), the misc/real-rate allocation ramp settles at
  // placement- and phase-dependent equilibria by design, and the priority baselines
  // can starve a stage behind a higher-priority hog on any core count (the pathology
  // §4.4 holds against them). The pair runs the feedback machine in work-conserving
  // (background-mode) RBS so delivered cycles measure capacity × occupancy — every
  // core hosting a runnable CPU-bound thread saturates — which a placement or
  // accounting regression would break.
  {
    WorkloadSpec saturators = spec;
    saturators.pipelines.clear();
    // Open-loop farms are queue-coupled like pipelines (and their offered load is a
    // wall-clock constant, not a per-core saturator), so they are stripped too.
    saturators.open_loops.clear();
    if (saturators.hogs.empty() && saturators.reservations.empty()) {
      saturators.hogs.push_back({1'000, 1.0, 5, 100});
      saturators.hogs.push_back({2'000, 2.0, 6, 200});
    }
    RunOptions fewer;
    fewer.run_for_override = Duration::Millis(500);
    fewer.rbs_work_conserving = true;
    fewer.collect_trace_dump = options.collect_trace_dump;
    RunOptions more = fewer;
    more.num_cpus_override = spec.num_cpus + 1;
    const RunOutcome before = RunWorkload(saturators, fewer);
    const RunOutcome after = RunWorkload(saturators, more);
    note_violations(before, "invariants [saturators]");
    note_violations(after, "invariants [saturators, +1 core]");
    if (static_cast<double>(after.user_cycles) <
        0.98 * static_cast<double>(before.user_cycles)) {
      report.failures.push_back(
          "core monotonicity: " + std::to_string(spec.num_cpus) + " cores delivered " +
          std::to_string(before.user_cycles) + " user cycles but " +
          std::to_string(spec.num_cpus + 1) + " cores delivered " +
          std::to_string(after.user_cycles));
    }
  }

  // 4. Seed stability + idle fast-forward equivalence: on one core the whole
  // simulation is a deterministic function of the seed, and skipping empty dispatch
  // ticks is defined to be behavior-preserving — so a run with fast-forward on and a
  // run with it off must produce bit-identical traces, for every scheduler. (This
  // subsumes plain two-run determinism: RunsAreReplayableFromTheSeed covers the
  // identical-options pair in tests/harness_test.cc.)
  // The pair normally runs on one core (the historically pinned configuration), but
  // a high-thread-count spec cannot be squeezed onto one core without violating the
  // generator's feasibility guarantee: the controller's per-thread allocation floor
  // times hundreds of adaptive threads exceeds the core outright. Such specs run at
  // their own (deterministic all the same) width. The threshold derives from the
  // same controller defaults RunWorkload builds with: the floors must fit in half
  // the admission budget, leaving the other half for fixed reservations and growth.
  int adaptive_threads =
      static_cast<int>(spec.hogs.size()) + static_cast<int>(spec.interactives.size());
  for (const PipelineSpec& p : spec.pipelines) {
    adaptive_threads += 1 + static_cast<int>(p.stages.size());  // Stages + consumer.
  }
  for (const OpenLoopSpec& ol : spec.open_loops) {
    adaptive_threads += ol.num_workers + ol.num_acceptors;  // All real-rate.
  }
  const ControllerConfig controller_defaults;
  const double floor_sum =
      adaptive_threads * controller_defaults.estimator.min_fraction;
  const int stability_cpus =
      floor_sum > controller_defaults.overload_threshold / 2 ? spec.num_cpus : 1;
  for (const SchedulerKind kind : kAllKinds) {
    RunOptions uni;
    uni.kind = kind;
    uni.num_cpus_override = stability_cpus;
    uni.run_for_override = Duration::Millis(400);
    uni.collect_trace_dump = options.collect_trace_dump;
    RunOptions no_ff = uni;
    no_ff.machine_idle_fast_forward = false;
    const RunOutcome first = RunWorkload(spec, uni);
    const RunOutcome second = RunWorkload(spec, no_ff);
    // These runs double as the battery's only 1-CPU invariant coverage for specs
    // generated with more cores (both runs violate identically, so check one).
    note_violations(first, Label("invariants [stability width]", kind));
    if (first.trace_hash != second.trace_hash ||
        first.total_progress != second.total_progress ||
        first.dispatches != second.dispatches ||
        first.user_cycles != second.user_cycles) {
      report.failures.push_back(
          Label("fast-forward equivalence", kind) +
          ": runs with idle fast-forward on/off diverged (hash " +
          std::to_string(first.trace_hash) + " vs " + std::to_string(second.trace_hash) +
          ", dispatches " + std::to_string(first.dispatches) + " vs " +
          std::to_string(second.dispatches) + ")");
    }
  }

  return report;
}

}  // namespace realrate
