#include "harness/invariants.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "exp/system.h"
#include "queue/registry.h"
#include "sim/simulator.h"
#include "task/thread.h"

namespace realrate {

InvariantOracle::InvariantOracle(const OracleConfig& config) : config_(config) {}

void InvariantOracle::Observe(Machine& machine, QueueRegistry* queues) {
  queues_ = queues;
  // Per-machine progress state starts over; violation counters deliberately
  // accumulate across Observe calls so earlier findings cannot vanish silently.
  last_tick_.assign(static_cast<size_t>(machine.num_cpus()), TimePoint::Origin());
  trace_checked_ = 0;
  controller_ran_ = false;
  machine.SetChecker(this);
}

void InvariantOracle::Observe(System& system) {
  Observe(system.machine(), &system.queues());
  system.controller().SetPostRunHook(
      [this, &system](TimePoint now) { OnControllerRun(system.machine(), now); });
}

void InvariantOracle::Report(TimePoint now, std::string message) {
  ++violation_count_;
  if (config_.abort_on_violation) {
    std::fprintf(stderr, "invariant violation at %.6fs: %s\n", now.ToSeconds(),
                 message.c_str());
    std::abort();
  }
  if (violations_.size() < config_.max_recorded) {
    violations_.push_back({now, std::move(message)});
  }
}

void InvariantOracle::OnPicked(const Machine& /*machine*/, CpuId core,
                               const SimThread* pick, TimePoint now) {
  ++picks_observed_;
  if (pick->state() != ThreadState::kRunnable) {
    Report(now, "core " + std::to_string(core) + " dispatched thread " +
                    std::to_string(pick->id()) + " (" + pick->name() + ") in state " +
                    ToString(pick->state()));
  }
  if (pick->cpu() != core) {
    Report(now, "core " + std::to_string(core) + " dispatched thread " +
                    std::to_string(pick->id()) + " assigned to core " +
                    std::to_string(pick->cpu()));
  }
}

void InvariantOracle::OnTickComplete(const Machine& machine, CpuId core, TimePoint now) {
  ++ticks_observed_;
  const auto c = static_cast<size_t>(core);
  if (c >= last_tick_.size()) {
    // Grown here rather than only in Observe() so the monotonicity check also works
    // when the oracle is installed directly through Machine::SetChecker.
    last_tick_.resize(c + 1, TimePoint::Origin());
  }
  if (now < last_tick_[c]) {
    Report(now, "core " + std::to_string(core) + " ticked backwards in time");
  }
  last_tick_[c] = now;
  // Cores tick in lockstep at identical timestamps, so machine-wide sweeps (every
  // core's feasibility, every queue, the trace suffix) run once per timestamp rather
  // than num_cpus times with no added detection power. The sweep rides the last
  // core's tick — the final one of each timestamp's tick group, so it sees every
  // event the group recorded; the ticking core's own feasibility is always checked,
  // so a violation still surfaces within the tick that created it.
  CheckCoreFeasibility(machine, core, now);
  if (core == machine.num_cpus() - 1) {
    for (CpuId other = 0; other < machine.num_cpus() - 1; ++other) {
      CheckCoreFeasibility(machine, other, now);
    }
    CheckQueues(now);
    CheckTrace(machine, now);
  }
}

void InvariantOracle::FinishRun(const Machine& machine, TimePoint now) {
  for (CpuId core = 0; core < machine.num_cpus(); ++core) {
    CheckCoreFeasibility(machine, core, now);
  }
  CheckQueues(now);
  CheckTrace(machine, now);
}

void InvariantOracle::OnControllerRun(const Machine& machine, TimePoint now) {
  ++controller_runs_observed_;
  if (controller_ran_ && now < last_controller_run_) {
    Report(now, "controller iteration moved backwards in time");
  }
  controller_ran_ = true;
  last_controller_run_ = now;
  for (CpuId core = 0; core < machine.num_cpus(); ++core) {
    CheckCoreFeasibility(machine, core, now);
  }
}

void InvariantOracle::CheckCoreFeasibility(const Machine& machine, CpuId core,
                                           TimePoint now) {
  const double reserved = machine.ReservedFractionOn(core);
  if (reserved > config_.max_core_allocation + 1e-9) {
    Report(now, "core " + std::to_string(core) + " over-allocated: reserved " +
                    std::to_string(reserved) + " > " +
                    std::to_string(config_.max_core_allocation));
  }
}

void InvariantOracle::CheckQueues(TimePoint now) {
  if (queues_ == nullptr) {
    return;
  }
  for (const BoundedBuffer* q : queues_->AllQueues()) {
    if (q->fill() < 0 || q->fill() > q->capacity()) {
      Report(now, "queue " + q->name() + " occupancy " + std::to_string(q->fill()) +
                      " outside [0, " + std::to_string(q->capacity()) + "]");
    }
  }
}

void InvariantOracle::CheckTrace(const Machine& machine, TimePoint now) {
  const TraceRecorder& trace = machine.sim().trace();
  // WellFormedError compares the first event of the suffix against its predecessor,
  // so ordering across the incremental-sweep boundary is covered.
  std::string error = trace.WellFormedError(trace_checked_);
  if (!error.empty()) {
    Report(now, std::move(error));
  }
  trace_checked_ = trace.events().size();
}

std::string InvariantOracle::Summary() const {
  std::string out;
  char head[64];
  for (const InvariantViolation& v : violations_) {
    std::snprintf(head, sizeof(head), "[%.6fs] ", v.t.ToSeconds());
    out += head;
    out += v.message;
    out += '\n';
  }
  const auto extra = violation_count_ - static_cast<int64_t>(violations_.size());
  if (extra > 0) {
    out += "... and " + std::to_string(extra) + " more violations\n";
  }
  return out;
}

}  // namespace realrate
