// InvariantOracle: a runtime oracle that rides inside a simulated machine and
// validates machine-level invariants at every dispatch pick, every dispatch tick, and
// every controller iteration:
//
//   - per-core proportion feasibility: the reserved proportions drawn from one core
//     never sum above 100% of that core (the controller's admission + squish pipeline
//     and the Machine's rebalancer must jointly maintain this);
//   - dispatch legality: the scheduler never hands the CPU to a blocked, sleeping, or
//     exited thread, nor to a thread assigned to a different core;
//   - bounded-buffer occupancy: every registered queue's fill stays in [0, capacity];
//   - clock monotonicity: per-core tick times and controller iteration times never
//     move backwards;
//   - trace well-formedness: the structured trace suffix recorded since the previous
//     check passes TraceRecorder::WellFormedError.
//
// The oracle is a pure observer (see MachineChecker): attaching one leaves the
// schedule bit-identical, so a trace hash taken with the oracle installed pins the
// same behavior as one taken without. Violations are accumulated (bounded) rather
// than thrown, so a fuzzing run can report the first offending seed with context; set
// `abort_on_violation` to crash at the first violation instead (useful under ASan).
#ifndef REALRATE_HARNESS_INVARIANTS_H_
#define REALRATE_HARNESS_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sched/machine.h"
#include "util/time.h"
#include "util/types.h"

namespace realrate {

class QueueRegistry;
class System;

struct InvariantViolation {
  TimePoint t;
  std::string message;
};

struct OracleConfig {
  // Ceiling for one core's reserved-proportion sum. The controller actually enforces
  // its overload_threshold (0.95 by default); the oracle checks the weaker hard bound
  // Σ <= 1 so it stays valid for rigs that bypass the controller.
  double max_core_allocation = 1.0;
  // Violations recorded verbatim; beyond this they are only counted.
  size_t max_recorded = 16;
  // Abort the process at the first violation (with the message on stderr).
  bool abort_on_violation = false;
};

class InvariantOracle : public MachineChecker {
 public:
  explicit InvariantOracle(const OracleConfig& config = OracleConfig{});

  // Installs the oracle as `machine`'s checker. `queues` (may be null) adds the
  // occupancy check over every buffer in the registry. The observed machine (and,
  // for Observe(System&), the controller's hook) holds a raw reference to this
  // oracle, so the oracle must outlive it — or at least the simulation must never
  // run again after the oracle is destroyed; declare the oracle before the
  // machine/system it observes. Re-observing a fresh machine resets the per-machine
  // watermarks; violation counters accumulate across Observe calls.
  void Observe(Machine& machine, QueueRegistry* queues);
  // Convenience for fully wired systems: machine + queue registry + controller hook.
  void Observe(System& system);

  // MachineChecker:
  void OnPicked(const Machine& machine, CpuId core, const SimThread* pick,
                TimePoint now) override;
  void OnTickComplete(const Machine& machine, CpuId core, TimePoint now) override;

  // Controller-iteration observation (wired by Observe(System&) through
  // FeedbackAllocator::SetPostRunHook).
  void OnControllerRun(const Machine& machine, TimePoint now);

  // End-of-run flush: validates everything recorded after the last in-run sweep
  // (queue occupancy, trace suffix, per-core feasibility). Call once after the final
  // RunFor/RunUntil, before reading the verdict — the tick hooks cannot see events
  // from the closing partial interval.
  void FinishRun(const Machine& machine, TimePoint now);

  bool ok() const { return violation_count_ == 0; }
  int64_t violation_count() const { return violation_count_; }
  const std::vector<InvariantViolation>& violations() const { return violations_; }
  // Observation counters, so tests can prove the hooks actually fired.
  int64_t ticks_observed() const { return ticks_observed_; }
  int64_t picks_observed() const { return picks_observed_; }
  int64_t controller_runs_observed() const { return controller_runs_observed_; }

  // One line per recorded violation (plus a tail count when over max_recorded).
  std::string Summary() const;

 private:
  void CheckCoreFeasibility(const Machine& machine, CpuId core, TimePoint now);
  void CheckQueues(TimePoint now);
  void CheckTrace(const Machine& machine, TimePoint now);
  void Report(TimePoint now, std::string message);

  OracleConfig config_;
  QueueRegistry* queues_ = nullptr;
  std::vector<TimePoint> last_tick_;  // Per core; grown on each core's first tick.
  TimePoint last_controller_run_;
  bool controller_ran_ = false;
  size_t trace_checked_ = 0;  // Trace events validated so far.
  int64_t ticks_observed_ = 0;
  int64_t picks_observed_ = 0;
  int64_t controller_runs_observed_ = 0;
  int64_t violation_count_ = 0;
  std::vector<InvariantViolation> violations_;
};

}  // namespace realrate

#endif  // REALRATE_HARNESS_INVARIANTS_H_
