// Differential scheduler harness: executes one generated WorkloadSpec under
// RBS+feedback, lottery, MLFQ, and fixed-priority machines, with the invariant oracle
// riding along, and cross-checks metamorphic properties between runs:
//
//   - clock scaling: doubling clock_hz exactly doubles the dispatch tick's cycle
//     capacity and (for workloads without wall-clock-paced sources) scales delivered
//     user cycles proportionally;
//   - core monotonicity: adding a core to a partitionable load never reduces the user
//     cycles the machine delivers;
//   - seed stability: the same spec on a 1-CPU machine produces the identical trace
//     hash on every run, under every scheduler;
//   - mode equivalence: the feedback machine re-run with the controller's reference
//     sweep, with the hot-field slabs disabled (pre-slab memory layout), and with
//     the RBS pick mode pinned to kIndexed must each reproduce the production
//     run's trace bit for bit;
//   - host-thread equivalence: the feedback machine re-run with the dispatch rounds
//     fanned out over 2 and over hardware_concurrency() OS threads (sim/parallel.h)
//     must reproduce the single-threaded run's trace bit for bit.
//
// CheckSeed() is the unit the realrate_check CLI and the fuzz CTest batch iterate:
// generate the spec for a seed, run the differential battery, return every failure
// with enough context (spec dump + offending trace) to reproduce from the seed alone.
#ifndef REALRATE_HARNESS_DIFFERENTIAL_H_
#define REALRATE_HARNESS_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exp/scenarios.h"  // SchedulerKind.
#include "harness/invariants.h"
#include "harness/workload_gen.h"
#include "util/time.h"
#include "util/types.h"

namespace realrate {

struct RunOptions {
  SchedulerKind kind = SchedulerKind::kFeedbackRbs;
  // 0 means "use spec.num_cpus".
  int num_cpus_override = 0;
  double clock_multiplier = 1.0;
  // Zero means "use spec.run_for"; otherwise the run lasts exactly this long.
  Duration run_for_override = Duration::Zero();
  // Feedback machine only: run the RBS in work-conserving (background) mode, where
  // budget-exhausted threads may still soak otherwise-idle capacity. Used by the
  // core-monotonicity check, whose throughput claim is demand-bound, not
  // allocation-ramp-bound.
  bool rbs_work_conserving = false;
  // Feedback machine only: shadow-scheduler mode — every dispatch computes both the
  // indexed pick and the reference O(n) scan pick and asserts they agree (see
  // RbsConfig::shadow_check).
  bool rbs_shadow_check = false;
  // Feedback machine only: run the controller's staged Sample→Estimate→Resolve→
  // Actuate pipeline (default, the production configuration) or the monolithic
  // reference sweep (FeedbackAllocator::RunOnceReference). The fuzz battery runs
  // both and demands bit-identical traces.
  bool controller_use_pipeline = true;
  // Feedback machine only: controller shadow mode — every tick re-derives the
  // pipeline's incrementally maintained state (ledger sums, cached pressures,
  // saturation verdicts, evidence counts) the reference way and asserts equality
  // (see ControllerConfig::shadow_check).
  bool controller_shadow_check = false;
  // Machine idle fast-forward (skip runs of empty dispatch ticks). On by default,
  // like the production configuration; the metamorphic battery re-runs with it off
  // and demands a bit-identical trace.
  bool machine_idle_fast_forward = true;
  // Hot-field slabs (task/thread_slabs.h): the registry's SoA columns, scanned by
  // the dispatch and control layers. On by default (production memory layout); the
  // battery re-runs with them off — the pre-slab pointer-chase layout — and demands
  // a bit-identical trace.
  bool thread_slabs = true;
  // Feedback machine only: pin the RBS pick mode to kIndexed instead of the kAuto
  // occupancy switch, so the indexed structures run from the first dispatch. The
  // battery compares this against an auto run — crossing (or never reaching) the
  // activation threshold must be trace-invariant.
  bool rbs_force_indexed = false;
  // Host OS threads for the machine's dispatch rounds (MachineConfig::host_threads).
  // 1 — the default — is the sequential reference engine; >1 fans eligible rounds
  // out over a ParallelEngine. Any value must be trace-invariant.
  int host_threads = 1;
  // Attach the invariant oracle as the machine checker. On by default. The
  // host-thread equivalence pass turns it off for BOTH sides of the comparison: an
  // installed checker pins the machine to the sequential path (its per-tick hooks
  // observe mid-round state), which would make a 1-vs-N comparison vacuous.
  bool attach_oracle = true;
  // Fill RunOutcome::trace_dump when the oracle records violations.
  bool collect_trace_dump = false;
  OracleConfig oracle;
};

struct RunOutcome {
  SchedulerKind kind = SchedulerKind::kFeedbackRbs;
  int num_cpus = 1;
  uint64_t trace_hash = 0;
  Cycles user_cycles = 0;       // CpuUse::kUser summed over every core.
  Cycles cycles_per_tick = 0;   // One core's dispatch-interval capacity.
  int64_t total_progress = 0;   // Σ progress_units over every thread.
  int64_t dispatches = 0;
  // Dispatch rounds the machine fanned out over the parallel engine, and the
  // subset that staked queue ops through the per-core epoch mailboxes. Always
  // zero at host_threads == 1 (the sequential engine never fans out).
  int64_t parallel_rounds = 0;
  int64_t mailbox_rounds = 0;
  // Feedback runs only: dispatches that executed the shadow comparison (indexed pick
  // asserted equal to the reference scan pick), summed over cores. Zero unless
  // RunOptions::rbs_shadow_check.
  int64_t shadow_checks = 0;
  // Feedback runs only: controller-shadow equalities asserted (zero unless
  // RunOptions::controller_shadow_check) and dirty-set sampler activity.
  int64_t controller_shadow_checks = 0;
  int64_t controller_clean_samples = 0;
  int64_t violation_count = 0;
  std::vector<std::string> violations;  // Recorded subset (see OracleConfig).
  std::string trace_dump;               // Only when collect_trace_dump and violations.
};

// Builds the machine described by (spec, options) and runs it with the invariant
// oracle attached. Deterministic: identical inputs produce identical outcomes.
RunOutcome RunWorkload(const WorkloadSpec& spec, const RunOptions& options);

struct SeedCheckOptions {
  // Disables the metamorphic battery (clock scaling / core monotonicity / seed
  // stability), leaving the four per-scheduler invariant runs and the feedback
  // machine's mode-equivalence runs (controller reference, slabs off, forced
  // indexed).
  bool run_metamorphic = true;
  // Attach the first violating run's trace to the report.
  bool collect_trace_dump = true;
  // Widest host-thread count the host-thread equivalence pass runs at, alongside
  // the always-run width 2. 0 means "use std::thread::hardware_concurrency()".
  int equivalence_host_threads = 0;
};

struct SeedReport {
  uint64_t seed = 0;
  WorkloadSpec spec;
  std::vector<std::string> failures;  // Empty <=> the seed passed everything.
  std::string trace_dump;             // First violating run's trace (may be empty).
  // Rounds the host-thread equivalence pass fanned out, summed over its parallel
  // runs — and the subset that staked queue ops through the per-core epoch
  // mailboxes. realrate_check aggregates these across the battery and fails if
  // mailbox-regime seeds were generated but no round ever staked: that would mean
  // the 1-vs-N comparison quietly stopped exercising parallel queue rounds.
  int64_t equivalence_parallel_rounds = 0;
  int64_t equivalence_mailbox_rounds = 0;
  bool ok() const { return failures.empty(); }
};

// The full battery for one seed. All schedulers, all metamorphic properties.
SeedReport CheckSeed(uint64_t seed, const SeedCheckOptions& options = SeedCheckOptions{});

}  // namespace realrate

#endif  // REALRATE_HARNESS_DIFFERENTIAL_H_
