// Seeded scenario generator: composes random machines (1-8 cores) running random
// mixtures of the paper's building blocks — producer→[stage...]→consumer pipelines,
// CPU hogs, and periodic real-time reservations — with rate programs (constant,
// bursty, pulsed, phase-shifting) driving each pipeline's production rate. Everything
// is derived from a single uint64 seed through util/rng, so any generated scenario is
// replayable bit-for-bit from its seed alone.
//
// A WorkloadSpec is plain data: it describes the scenario without reference to a
// scheduler, so the differential runner (harness/differential.h) can execute the same
// spec under RBS+feedback and under each baseline scheduler and cross-check them.
#ifndef REALRATE_HARNESS_WORKLOAD_GEN_H_
#define REALRATE_HARNESS_WORKLOAD_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"
#include "util/types.h"
#include "workloads/arrivals.h"
#include "workloads/rate_schedule.h"

namespace realrate {

// One override segment of a pipeline's production-rate program (bytes per item during
// [start, start + width)). Generated programs are one of: constant (no segments),
// bursty (a few random segments), pulsed (a regular square wave), or phase-shifting
// (a square wave whose pulse width drifts each cycle).
struct RateSegmentSpec {
  Duration start = Duration::Zero();  // Offset from simulation start.
  Duration width = Duration::Zero();
  double bytes_per_item = 0.0;
};

// An intermediate pipeline stage (PipelineStageWork) between source and sink.
struct StageSpec {
  Cycles cycles_per_byte = 0;
  int64_t chunk_bytes = 0;
  int64_t queue_bytes = 0;  // Capacity of the queue feeding this stage's consumer side.
};

// One producer → [stages...] → consumer chain.
struct PipelineSpec {
  // Source: either a reservation-backed ProducerWork (proportion/period below) or an
  // isochronous PacedProducerWork (wall-clock interval; drops when the queue is full).
  bool paced = false;
  Proportion producer_proportion = Proportion::Zero();
  Duration producer_period = Duration::Zero();
  Cycles producer_cycles_per_item = 0;
  double bytes_per_item = 0.0;  // Base rate; segments override it over time.
  std::vector<RateSegmentSpec> segments;
  Duration paced_interval = Duration::Zero();
  int64_t source_queue_bytes = 0;
  std::vector<StageSpec> stages;
  Cycles consumer_cycles_per_byte = 0;
  // Baseline-scheduler attributes (every thread in the chain shares them).
  int priority = 0;
  int64_t tickets = 0;
};

// A miscellaneous CPU hog (never blocks; squished by the feedback controller,
// prioritized/ticketed under the baselines).
struct HogSpec {
  Cycles cycles_per_key = 0;
  double importance = 1.0;
  int priority = 0;
  int64_t tickets = 0;
};

// A periodic real-time reservation around a CPU-bound body: under RBS+feedback this
// is an admitted fixed reservation (budget-throttled each period); under baselines it
// is just another prioritized hog.
struct ReservationSpec {
  Proportion proportion = Proportion::Zero();
  Duration period = Duration::Zero();
  int priority = 0;
  int64_t tickets = 0;
};

// An aperiodic real-time reservation (paper Figure 2: proportion specified, period
// assigned by the controller) around a CPU-bound body. Baselines treat it as a
// prioritized hog.
struct AperiodicSpec {
  Proportion proportion = Proportion::Zero();
  int priority = 0;
  int64_t tickets = 0;
};

// An interactive editor (§3.2): InteractiveWork listening on a tty, driven by a
// seeded TypingProcess with the given think time. Under RBS+feedback it is
// registered AddInteractive; baselines schedule it like any blocked-mostly thread.
struct InteractiveSpec {
  Cycles cycles_per_event = 0;
  Duration mean_think = Duration::Millis(200);
  int priority = 0;
  int64_t tickets = 0;
};

// An open-loop web farm (workloads/web_farm.h): a seeded arrival stream feeding a
// listen queue, acceptor threads round-robin dispatching into per-worker queues,
// workers registered real-rate. The arrival stream is wall-clock-driven (requests
// come when the outside world sends them), so — like a paced pipeline — it is
// excluded from the clock-scaling metamorphic variant. The stream is materialized
// over [0, spec.run_for) regardless of any per-run horizon override, so every
// metamorphic variant replays the identical request sequence.
struct OpenLoopSpec {
  ArrivalConfig arrivals;
  int num_workers = 4;
  int num_acceptors = 1;
  Cycles accept_cycles = 10'000;
  int64_t listen_queue_bytes = 0;
  int64_t worker_queue_bytes = 0;
  int priority = 0;
  int64_t tickets = 0;
};

// A cluster scenario (src/cluster): `open_loops[0]` describes one cluster-wide
// arrival stream and the per-node farm shape; `num_machines` nodes of
// `WorkloadSpec::num_cpus` cores each run it behind the front-end router. Specs
// with num_machines > 0 take the cluster differential battery (M=1 pinned
// bit-identical to a bare machine, per-machine trace hashes invariant across
// host-thread widths, rerun stability) instead of the scheduler battery.
struct ClusterSpec {
  int num_machines = 0;  // 0 = not a cluster scenario (the default).
  Duration epoch = Duration::Millis(10);
  bool feedback_router = true;  // false = round-robin baseline.
  double pressure_damping = 0.5;
  Duration rebalance_interval = Duration::Zero();  // Zero disables.
  double rebalance_threshold = 2.0;
  int rebalance_max_moves = 64;
};

struct WorkloadSpec {
  uint64_t seed = 0;
  int num_cpus = 1;
  double clock_hz = 400e6;
  Duration run_for = Duration::Zero();
  // Generator marker: this spec was drawn from the mailbox-regime bucket —
  // matched-rate unpaced pipelines whose per-tick queue traffic is small against
  // large queues, so the parallel engine's per-core epoch mailboxes should stake
  // some rounds. The host-thread equivalence pass counts staked rounds across the
  // battery (realrate_check's vacuity line) to prove the 1-vs-N comparison
  // actually exercises parallel queue rounds.
  bool mailbox_regime = false;
  std::vector<PipelineSpec> pipelines;
  std::vector<HogSpec> hogs;
  std::vector<ReservationSpec> reservations;
  std::vector<AperiodicSpec> aperiodics;
  std::vector<InteractiveSpec> interactives;
  std::vector<OpenLoopSpec> open_loops;
  ClusterSpec cluster;

  // Human-readable dump (the repro artifact realrate_check prints for a failing seed).
  std::string ToString() const;
};

// Derives the complete scenario from `seed`. Deterministic and platform-stable: the
// same seed always yields the same spec. Generated specs are feasible by
// construction — fixed reservations total at most 45% of the machine so per-core
// admission always succeeds, and item/chunk sizes never exceed their queue's capacity.
WorkloadSpec GenerateWorkload(uint64_t seed);

// The rate program described by `spec` (base value plus override segments).
RateSchedule BuildRateSchedule(const PipelineSpec& spec);

// Stable per-component sub-seed (e.g. one per lottery run queue) derived from the
// workload seed, so components never share or reuse raw seeds.
uint64_t DeriveSeed(uint64_t seed, uint64_t salt);

}  // namespace realrate

#endif  // REALRATE_HARNESS_WORKLOAD_GEN_H_
