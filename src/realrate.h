// Umbrella header: the public API of the realrate library — a reproduction of
// "A Feedback-driven Proportion Allocator for Real-Rate Scheduling" (Steere et al.,
// OSDI 1999 / OGI TR 98-014), extended to an N-core SMP machine with per-core
// dispatch and cross-core proportion allocation. docs/ARCHITECTURE.md is the
// narrative version of this map; docs/TUNING.md documents every knob.
//
// Layering (bottom to top):
//   util      — time, stats, rng, series
//   sim       — discrete-event simulator, per-core CPU cost model, trace
//   task      — threads and work models
//   queue     — bounded buffers (symbiotic interfaces), meta-interface registry
//   swift     — feedback-circuit toolkit (PID et al.)
//   sched     — per-core dispatch machine + placement/rebalance; RBS + baselines
//   core      — the feedback proportion allocator (the paper's contribution)
//   workloads — producer/consumer, hogs, servers, interactive jobs
//   exp       — wired System, Sampler, and the paper's experiment scenarios
//   cluster   — M machines, front-end feedback router, cross-machine rebalancer
//   harness   — invariant oracle, seeded workload generator, differential runner
//
// Ownership: a System (exp/system.h) owns one machine's worth of everything; when
// wiring by hand, construct Simulator → registries → schedulers → Machine →
// FeedbackAllocator and keep each alive for the lifetime of the layers above it.
//
// Units: virtual time is integral nanoseconds (util/time.h); work is simulated
// Cycles; allocations are Proportion (parts-per-thousand of ONE core).
//
// Thread-safety: none anywhere — the simulation is single-(host-)threaded and
// deterministic by construction; simulated SMP cores interleave on one event queue.
#ifndef REALRATE_REALRATE_H_
#define REALRATE_REALRATE_H_

#include "cluster/cluster.h"
#include "cluster/cluster_farm.h"
#include "cluster/router.h"
#include "core/controller.h"
#include "core/overload.h"
#include "core/period_estimator.h"
#include "core/pressure.h"
#include "core/progress_meter.h"
#include "core/proportion_estimator.h"
#include "core/quality.h"
#include "exp/sampler.h"
#include "exp/scenarios.h"
#include "exp/system.h"
#include "harness/differential.h"
#include "harness/invariants.h"
#include "harness/workload_gen.h"
#include "queue/bounded_buffer.h"
#include "queue/pipe.h"
#include "queue/registry.h"
#include "queue/sim_mutex.h"
#include "queue/tty.h"
#include "sched/fixed_priority.h"
#include "sched/lottery.h"
#include "sched/machine.h"
#include "sched/mlfq.h"
#include "sched/rbs.h"
#include "sched/scheduler.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "swift/analysis.h"
#include "swift/circuit.h"
#include "swift/components.h"
#include "swift/pid.h"
#include "task/registry.h"
#include "task/thread.h"
#include "task/work_model.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/time_series.h"
#include "util/types.h"
#include "workloads/adaptive_source.h"
#include "workloads/misc_work.h"
#include "workloads/producer_consumer.h"
#include "workloads/rate_schedule.h"
#include "workloads/server.h"

#endif  // REALRATE_REALRATE_H_
