// trace_replay: the request-log workflow for the open-loop web farm
// (workloads/web_farm.h). Three modes:
//
//   trace_replay --generate FILE [--seed N] [--horizon-ms M] [--ratio X]
//                [--kind poisson|sessions]
//       Materializes a seeded arrival stream (offered load = ratio x farm
//       capacity) and writes it as a request log ("-" = stdout).
//
//   trace_replay --replay FILE [--cpus N] [--workers N] [--host-threads N]
//                [--horizon-ms M]
//       Runs the log through the farm and prints the latency columns, drop
//       counts, and the trace hash. The run is a pure function of (log, flags):
//       the same log replays to a bit-identical trace, at any host-thread count.
//
//   trace_replay --selfcheck [--seed N]
//       The determinism contract, end to end: generate -> serialize -> parse ->
//       replay, asserting the parsed stream round-trips exactly and that the
//       seed-driven run, the replayed run, and a host_threads=4 replayed run all
//       produce the same trace hash. Registered as a CTest smoke in every matrix.
//
// Log format: see workloads/request_log.h (one `arrival_ns bytes service_cycles`
// line per request; `#` comments).
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "workloads/arrivals.h"
#include "workloads/request_log.h"
#include "workloads/web_farm.h"

namespace {

using realrate::ArrivalConfig;
using realrate::Duration;
using realrate::GenerateRequests;
using realrate::ParseRequestLog;
using realrate::RequestRecord;
using realrate::RunWebFarmScenario;
using realrate::SerializeRequestLog;
using realrate::WebFarmCapacityRps;
using realrate::WebFarmParams;
using realrate::WebFarmResult;

struct Args {
  enum class Mode { kNone, kGenerate, kReplay, kSelfcheck };
  Mode mode = Mode::kNone;
  std::string file;
  uint64_t seed = 1;
  int64_t horizon_ms = 0;  // 0 = mode-specific default.
  double ratio = 1.2;
  ArrivalConfig::Kind kind = ArrivalConfig::Kind::kPoisson;
  int64_t cpus = 4;
  int64_t workers = 8;
  int64_t host_threads = 1;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --generate FILE [--seed N] [--horizon-ms M] [--ratio X]\n"
               "          [--kind poisson|sessions]\n"
               "       %s --replay FILE [--cpus N] [--workers N] [--host-threads N]\n"
               "          [--horizon-ms M]\n"
               "       %s --selfcheck [--seed N]\n",
               argv0, argv0, argv0);
}

bool Parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_text = [&](std::string& out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], arg.c_str());
        return false;
      }
      out = argv[++i];
      return true;
    };
    // Strict unsigned decimal, like realrate_check: signs, garbage, and overflow
    // are usage errors, never wrapped or clamped.
    auto next_u64 = [&](uint64_t& out) {
      std::string text;
      if (!next_text(text)) {
        return false;
      }
      if (text.empty() || text[0] < '0' || text[0] > '9') {
        std::fprintf(stderr, "%s: invalid number '%s' for %s\n", argv[0], text.c_str(),
                     arg.c_str());
        return false;
      }
      errno = 0;
      char* end = nullptr;
      out = std::strtoull(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "%s: invalid number '%s' for %s\n", argv[0], text.c_str(),
                     arg.c_str());
        return false;
      }
      return true;
    };
    uint64_t value = 0;
    if (arg == "--generate") {
      args.mode = Args::Mode::kGenerate;
      if (!next_text(args.file)) {
        return false;
      }
    } else if (arg == "--replay") {
      args.mode = Args::Mode::kReplay;
      if (!next_text(args.file)) {
        return false;
      }
    } else if (arg == "--selfcheck") {
      args.mode = Args::Mode::kSelfcheck;
    } else if (arg == "--seed") {
      if (!next_u64(value)) {
        return false;
      }
      args.seed = value;
    } else if (arg == "--horizon-ms") {
      if (!next_u64(value)) {
        return false;
      }
      args.horizon_ms = static_cast<int64_t>(value);
    } else if (arg == "--ratio") {
      std::string text;
      if (!next_text(text)) {
        return false;
      }
      char* end = nullptr;
      args.ratio = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0' || args.ratio <= 0.0) {
        std::fprintf(stderr, "%s: invalid ratio '%s'\n", argv[0], text.c_str());
        return false;
      }
    } else if (arg == "--kind") {
      std::string text;
      if (!next_text(text)) {
        return false;
      }
      if (text == "poisson") {
        args.kind = ArrivalConfig::Kind::kPoisson;
      } else if (text == "sessions") {
        args.kind = ArrivalConfig::Kind::kParetoSessions;
      } else {
        std::fprintf(stderr, "%s: --kind must be poisson or sessions\n", argv[0]);
        return false;
      }
    } else if (arg == "--cpus") {
      if (!next_u64(value) || value < 1 || value > 64) {
        std::fprintf(stderr, "%s: --cpus must be in [1, 64]\n", argv[0]);
        return false;
      }
      args.cpus = static_cast<int64_t>(value);
    } else if (arg == "--workers") {
      if (!next_u64(value) || value < 1 || value > 1024) {
        std::fprintf(stderr, "%s: --workers must be in [1, 1024]\n", argv[0]);
        return false;
      }
      args.workers = static_cast<int64_t>(value);
    } else if (arg == "--host-threads") {
      if (!next_u64(value) || value < 1) {
        std::fprintf(stderr, "%s: --host-threads must be >= 1\n", argv[0]);
        return false;
      }
      args.host_threads = static_cast<int64_t>(value);
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  if (args.mode == Args::Mode::kNone) {
    Usage(argv[0]);
    return false;
  }
  return true;
}

// The farm every mode runs: WebFarmParams defaults with the CLI's machine shape.
// The selfcheck and the golden test in tests/web_farm_test.cc depend on these
// staying in sync with WebFarmParams' defaults.
WebFarmParams FarmParams(const Args& args, Duration run_for) {
  WebFarmParams params;
  params.num_cpus = static_cast<int>(args.cpus);
  params.num_workers = static_cast<int>(args.workers);
  params.host_threads = static_cast<int>(args.host_threads);
  params.run_for = run_for;
  return params;
}

ArrivalConfig StreamConfig(const Args& args) {
  WebFarmParams sizing;
  sizing.num_cpus = static_cast<int>(args.cpus);
  ArrivalConfig config;
  config.kind = args.kind;
  config.seed = args.seed;
  const double target_rps = args.ratio * WebFarmCapacityRps(sizing);
  if (args.kind == ArrivalConfig::Kind::kPoisson) {
    config.requests_per_sec = target_rps;
  } else {
    const double mean_session_requests = config.session_min_requests *
                                         config.session_alpha /
                                         (config.session_alpha - 1.0);
    config.sessions_per_sec = target_rps / mean_session_requests;
  }
  return config;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

void PrintResult(const WebFarmResult& r) {
  std::printf("cpus=%d workers=%d\n", r.num_cpus, r.num_workers);
  std::printf("offered=%lld injected=%lld listen_drops=%lld accepted=%lld "
              "dispatch_drops=%lld served=%lld\n",
              static_cast<long long>(r.offered), static_cast<long long>(r.injected),
              static_cast<long long>(r.listen_drops), static_cast<long long>(r.accepted),
              static_cast<long long>(r.dispatch_drops), static_cast<long long>(r.served));
  std::printf("latency_ms p50=%.3f p99=%.3f p999=%.3f mean=%.3f max=%.3f\n", r.p50_ms,
              r.p99_ms, r.p999_ms, r.mean_ms, r.max_ms);
  std::printf("user_fraction=%.3f squishes=%lld quality_exceptions=%lld\n",
              r.aggregate_user_fraction, static_cast<long long>(r.squish_events),
              static_cast<long long>(r.quality_exceptions));
  std::printf("trace_hash=%llu\n", static_cast<unsigned long long>(r.trace_hash));
}

int Generate(const Args& args) {
  const Duration horizon =
      Duration::Millis(args.horizon_ms > 0 ? args.horizon_ms : 2000);
  const std::vector<RequestRecord> records = GenerateRequests(StreamConfig(args), horizon);
  const std::string text = SerializeRequestLog(records);
  if (args.file == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(args.file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.file.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %zu requests to %s\n", records.size(), args.file.c_str());
  return 0;
}

int Replay(const Args& args) {
  std::string text;
  if (!ReadFile(args.file, text)) {
    std::fprintf(stderr, "cannot read %s\n", args.file.c_str());
    return 1;
  }
  std::vector<RequestRecord> records;
  std::string error;
  if (!ParseRequestLog(text, &records, &error)) {
    std::fprintf(stderr, "%s: %s\n", args.file.c_str(), error.c_str());
    return 1;
  }
  // An empty (or comment/whitespace-only) log parses successfully but replaying
  // zero requests is never what the caller meant — the usual cause is a wrong
  // path or a generate step that wrote nothing. Loud error over silent no-op,
  // matching the strict-flag precedent.
  if (records.empty()) {
    std::fprintf(stderr, "%s: request log contains no requests; nothing to replay\n",
                 args.file.c_str());
    return 1;
  }
  // Default horizon: the last arrival plus settling time, so the tail of the log
  // actually gets served.
  Duration run_for = Duration::Millis(args.horizon_ms);
  if (!run_for.IsPositive()) {
    const Duration last = records.empty() ? Duration::Zero() : records.back().arrival;
    run_for = last + Duration::Millis(500);
  }
  WebFarmParams params = FarmParams(args, run_for);
  params.replay = std::move(records);
  PrintResult(RunWebFarmScenario(params));
  return 0;
}

int Selfcheck(const Args& args) {
  // A short overloaded farm: drops and deep queues exercise every code path the
  // determinism contract has to cover.
  Args shaped = args;
  shaped.ratio = 1.5;
  const Duration horizon = Duration::Millis(400);
  const ArrivalConfig config = StreamConfig(shaped);
  const std::vector<RequestRecord> records = GenerateRequests(config, horizon);
  if (records.empty()) {
    std::fprintf(stderr, "selfcheck: generated an empty stream\n");
    return 1;
  }

  // 1. The log round-trips bit-exactly.
  std::vector<RequestRecord> reparsed;
  std::string error;
  if (!ParseRequestLog(SerializeRequestLog(records), &reparsed, &error)) {
    std::fprintf(stderr, "selfcheck: reparse failed: %s\n", error.c_str());
    return 1;
  }
  if (reparsed != records) {
    std::fprintf(stderr, "selfcheck: serialize/parse round trip diverged (%zu vs %zu)\n",
                 records.size(), reparsed.size());
    return 1;
  }

  // 2. Seed-driven and replayed runs are bit-identical, at 1 and 4 host threads.
  WebFarmParams seeded = FarmParams(shaped, horizon);
  seeded.arrivals = config;
  const WebFarmResult from_seed = RunWebFarmScenario(seeded);

  WebFarmParams replayed = FarmParams(shaped, horizon);
  replayed.replay = reparsed;
  const WebFarmResult from_log = RunWebFarmScenario(replayed);

  WebFarmParams fanned = replayed;
  fanned.host_threads = 4;
  const WebFarmResult from_log_mt = RunWebFarmScenario(fanned);

  if (from_seed.trace_hash != from_log.trace_hash ||
      from_seed.served != from_log.served) {
    std::fprintf(stderr, "selfcheck: seed run and replay diverged (hash %llu vs %llu)\n",
                 static_cast<unsigned long long>(from_seed.trace_hash),
                 static_cast<unsigned long long>(from_log.trace_hash));
    return 1;
  }
  if (from_log.trace_hash != from_log_mt.trace_hash ||
      from_log.served != from_log_mt.served) {
    std::fprintf(stderr,
                 "selfcheck: host_threads 1 and 4 diverged (hash %llu vs %llu)\n",
                 static_cast<unsigned long long>(from_log.trace_hash),
                 static_cast<unsigned long long>(from_log_mt.trace_hash));
    return 1;
  }
  if (from_seed.served == 0) {
    std::fprintf(stderr, "selfcheck: nothing served\n");
    return 1;
  }

  // 3. A mailbox-eligible farm: at 85% of capacity (no sustained overload, so
  // queues keep both a fill cushion and headroom) the acceptor's scatter and the
  // workers' drains stay within the per-core epoch mailbox gate's bounds. The
  // 4-host-thread replay must actually stake rounds — otherwise the host-thread
  // equality above is vacuous for queue-driven rounds — and still reproduce the
  // sequential trace bit for bit.
  Args steady = args;
  steady.ratio = 0.85;
  const std::vector<RequestRecord> steady_records =
      GenerateRequests(StreamConfig(steady), horizon);
  WebFarmParams steady_seq = FarmParams(steady, horizon);
  steady_seq.replay = steady_records;
  const WebFarmResult steady_one = RunWebFarmScenario(steady_seq);
  WebFarmParams steady_par = FarmParams(steady, horizon);
  steady_par.replay = steady_records;
  steady_par.host_threads = 4;
  const WebFarmResult steady_four = RunWebFarmScenario(steady_par);
  if (steady_four.mailbox_rounds <= 0 || steady_four.parallel_rounds <= 0) {
    std::fprintf(stderr,
                 "selfcheck: the 85%%-capacity replay staked no mailbox rounds "
                 "(parallel=%lld mailbox=%lld) — the host-thread equality is "
                 "vacuous for queue-driven rounds\n",
                 static_cast<long long>(steady_four.parallel_rounds),
                 static_cast<long long>(steady_four.mailbox_rounds));
    return 1;
  }
  if (steady_one.trace_hash != steady_four.trace_hash ||
      steady_one.served != steady_four.served) {
    std::fprintf(stderr,
                 "selfcheck: mailbox replay diverged at host_threads 4 (hash %llu "
                 "vs %llu)\n",
                 static_cast<unsigned long long>(steady_one.trace_hash),
                 static_cast<unsigned long long>(steady_four.trace_hash));
    return 1;
  }

  std::printf("selfcheck ok: %zu requests, served=%lld, trace_hash=%llu, "
              "mailbox_rounds=%lld\n",
              records.size(), static_cast<long long>(from_seed.served),
              static_cast<unsigned long long>(from_seed.trace_hash),
              static_cast<long long>(steady_four.mailbox_rounds));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) {
    return 2;
  }
  switch (args.mode) {
    case Args::Mode::kGenerate:
      return Generate(args);
    case Args::Mode::kReplay:
      return Replay(args);
    case Args::Mode::kSelfcheck:
      return Selfcheck(args);
    case Args::Mode::kNone:
      break;
  }
  return 2;
}
