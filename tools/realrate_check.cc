// realrate_check: seeded fuzzing driver for the invariant oracle and the
// differential scheduler harness (src/harness). Runs N generated workloads — each
// derived entirely from a uint64 seed — under RBS+feedback, lottery, MLFQ, and
// fixed-priority machines, validating runtime invariants and metamorphic properties.
// On the first violating seed it prints the seed, the generated workload, every
// failure, a ready-to-paste repro command, and writes the offending trace dump to
// --dump-dir. See docs/TESTING.md.
//
// Usage:
//   realrate_check [--iterations N] [--seed-base S] [--dump-dir DIR]
//                  [--no-metamorphic] [--host-threads N] [--quiet]
//   realrate_check --seed S          # one seed, verbose (the repro mode)
//
// Every numeric flag is validated strictly: negative values, garbage, overflow, and
// out-of-range widths (--host-threads needs >= 2; omit the flag for the hardware
// default) are usage errors with a non-zero exit, never silently reinterpreted.
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/differential.h"
#include "harness/workload_gen.h"

namespace {

struct Args {
  int64_t iterations = 50;
  uint64_t seed_base = 1;
  uint64_t single_seed = 0;
  bool single = false;
  bool metamorphic = true;
  bool quiet = false;
  // Widest host-thread count for the host-thread equivalence pass; 0 means "use
  // the host's hardware concurrency" (SeedCheckOptions::equivalence_host_threads).
  int64_t host_threads = 0;
  bool host_threads_set = false;
  std::string dump_dir = ".";
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iterations N] [--seed-base S] [--seed S] [--dump-dir DIR]\n"
               "          [--no-metamorphic] [--host-threads N] [--quiet]\n",
               argv0);
}

bool Parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // A malformed number must fail loudly: silently running seed 0 instead of the
    // one pasted from a CI log would "reproduce" the wrong scenario. strtoull alone
    // is not enough — it wraps negative input ("-5" becomes 2^64-5) and clamps
    // overflow with errno, so both are rejected explicitly.
    auto next = [&](uint64_t& out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], arg.c_str());
        return false;
      }
      const char* text = argv[++i];
      auto invalid = [&] {
        std::fprintf(stderr, "%s: invalid number '%s' for %s\n", argv[0], text,
                     arg.c_str());
        return false;
      };
      if (text[0] < '0' || text[0] > '9') {
        return invalid();  // Signs, whitespace, empty: the flags take unsigned decimal.
      }
      errno = 0;
      char* end = nullptr;
      out = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE) {
        return invalid();
      }
      return true;
    };
    uint64_t value = 0;
    if (arg == "--iterations") {
      if (!next(value)) {
        return false;
      }
      args.iterations = static_cast<int64_t>(value);
    } else if (arg == "--seed-base") {
      if (!next(value)) {
        return false;
      }
      args.seed_base = value;
    } else if (arg == "--seed") {
      if (!next(value)) {
        return false;
      }
      args.single_seed = value;
      args.single = true;
    } else if (arg == "--host-threads") {
      if (!next(value)) {
        return false;
      }
      args.host_threads = static_cast<int64_t>(value);
      args.host_threads_set = true;
    } else if (arg == "--dump-dir" && i + 1 < argc) {
      args.dump_dir = argv[++i];
    } else if (arg == "--no-metamorphic") {
      args.metamorphic = false;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  if (args.iterations <= 0) {
    std::fprintf(stderr, "%s: --iterations must be positive\n", argv[0]);
    return false;
  }
  // 0 stays the internal "hardware concurrency" default, but only by omitting the
  // flag: an explicit --host-threads 0 (or 1) asks for a fan-out width that cannot
  // exercise the parallel engine, which is operator error, not a configuration.
  if (args.host_threads_set && args.host_threads < 2) {
    std::fprintf(stderr, "%s: --host-threads must be >= 2 (omit for the hardware default)\n",
                 argv[0]);
    return false;
  }
  return true;
}

// Writes the failing seed's artifact (spec + failures + trace) for CI upload.
// Returns the path, or "" if the directory was unwritable.
std::string WriteArtifact(const Args& args, const realrate::SeedReport& report) {
  const std::string path =
      args.dump_dir + "/realrate_check_seed_" + std::to_string(report.seed) + ".txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return "";
  }
  std::fprintf(f, "%s\nfailures:\n", report.spec.ToString().c_str());
  for (const std::string& failure : report.failures) {
    std::fprintf(f, "  %s\n", failure.c_str());
  }
  if (!report.trace_dump.empty()) {
    std::fprintf(f, "\noffending trace:\n%s", report.trace_dump.c_str());
  }
  std::fclose(f);
  return path;
}

int ReportFailure(const Args& args, const realrate::SeedReport& report) {
  std::fprintf(stderr, "FAIL seed %llu\n%s",
               static_cast<unsigned long long>(report.seed),
               report.spec.ToString().c_str());
  for (const std::string& failure : report.failures) {
    std::fprintf(stderr, "  %s\n", failure.c_str());
  }
  const std::string artifact = WriteArtifact(args, report);
  if (!artifact.empty()) {
    std::fprintf(stderr, "trace dump written to %s\n", artifact.c_str());
  }
  std::fprintf(stderr, "reproduce with: realrate_check --seed %llu\n",
               static_cast<unsigned long long>(report.seed));
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) {
    return 2;
  }
  realrate::SeedCheckOptions options;
  options.run_metamorphic = args.metamorphic;
  options.equivalence_host_threads = static_cast<int>(args.host_threads);

  if (args.single) {
    const realrate::SeedReport report = realrate::CheckSeed(args.single_seed, options);
    if (!report.ok()) {
      return ReportFailure(args, report);  // Prints the spec with the failures.
    }
    std::printf("%s", report.spec.ToString().c_str());
    std::printf("seed %llu: all invariants and metamorphic properties hold\n",
                static_cast<unsigned long long>(args.single_seed));
    return 0;
  }

  // Vacuity accounting for the host-thread equivalence pass: across the battery,
  // how many rounds actually fanned out, how many staked queue ops through the
  // per-core epoch mailboxes, and how many seeds came from the generator's
  // mailbox-regime bucket. If bucket seeds were generated but not one round
  // staked, the 1-vs-N equality quietly stopped testing parallel queue rounds —
  // that is a harness regression, failed as loudly as a trace divergence.
  int64_t total_parallel_rounds = 0;
  int64_t total_mailbox_rounds = 0;
  int64_t mailbox_regime_seeds = 0;
  for (int64_t i = 0; i < args.iterations; ++i) {
    const uint64_t seed = args.seed_base + static_cast<uint64_t>(i);
    const realrate::SeedReport report = realrate::CheckSeed(seed, options);
    if (!report.ok()) {
      return ReportFailure(args, report);
    }
    total_parallel_rounds += report.equivalence_parallel_rounds;
    total_mailbox_rounds += report.equivalence_mailbox_rounds;
    mailbox_regime_seeds += report.spec.mailbox_regime ? 1 : 0;
    if (!args.quiet && (i + 1) % 25 == 0) {
      std::printf("%lld/%lld seeds ok (last: %llu)\n", static_cast<long long>(i + 1),
                  static_cast<long long>(args.iterations),
                  static_cast<unsigned long long>(seed));
      std::fflush(stdout);
    }
  }
  if (!args.quiet) {
    std::printf("all %lld seeds passed (seeds %llu..%llu)\n",
                static_cast<long long>(args.iterations),
                static_cast<unsigned long long>(args.seed_base),
                static_cast<unsigned long long>(args.seed_base +
                                                static_cast<uint64_t>(args.iterations) - 1));
    std::printf("host-thread equivalence: %lld rounds fanned out, %lld staked queue "
                "ops via mailboxes (%lld mailbox-regime seeds)\n",
                static_cast<long long>(total_parallel_rounds),
                static_cast<long long>(total_mailbox_rounds),
                static_cast<long long>(mailbox_regime_seeds));
  }
  if (mailbox_regime_seeds > 0 && total_mailbox_rounds == 0) {
    std::fprintf(stderr,
                 "FAIL vacuity: %lld mailbox-regime seeds ran the host-thread "
                 "equivalence pass but zero rounds staked queue ops through the "
                 "mailboxes — the 1-vs-N comparison no longer exercises parallel "
                 "queue rounds\n",
                 static_cast<long long>(mailbox_regime_seeds));
    return 1;
  }
  return 0;
}
