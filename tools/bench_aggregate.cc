// Aggregates per-bench google-benchmark JSON files into one JSON document:
//
//   bench_aggregate OUT NAME=FILE [NAME=FILE ...]
//
// Each FILE must already contain valid JSON (the output of
// --benchmark_out=FILE --benchmark_out_format=json); it is embedded verbatim
// as the value of "NAME" inside the top-level "benchmarks" object, so no JSON
// parsing is needed here. Missing or empty files fail the run — a silent gap
// in BENCH_*.json would read as "all benches covered" when they were not.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Entry {
  std::string name;
  std::string json;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s OUT NAME=FILE [NAME=FILE ...]\n", argv[0]);
    return 2;
  }
  std::vector<Entry> entries;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
      std::fprintf(stderr, "bench_aggregate: bad argument '%s' (want NAME=FILE)\n",
                   arg.c_str());
      return 2;
    }
    Entry entry;
    entry.name = arg.substr(0, eq);
    const std::string path = arg.substr(eq + 1);
    if (!ReadFile(path, &entry.json)) {
      std::fprintf(stderr, "bench_aggregate: cannot read '%s'\n", path.c_str());
      return 1;
    }
    if (entry.json.find_first_not_of(" \t\r\n") == std::string::npos) {
      std::fprintf(stderr, "bench_aggregate: '%s' is empty\n", path.c_str());
      return 1;
    }
    entries.push_back(std::move(entry));
  }

  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "bench_aggregate: cannot write '%s'\n", argv[1]);
    return 1;
  }
  out << "{\n  \"bench_count\": " << entries.size() << ",\n  \"benchmarks\": {\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    out << "    \"" << entries[i].name << "\": " << entries[i].json;
    out << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
  return out.good() ? 0 : 1;
}
