#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/stats.h"

namespace realrate {
namespace {

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // Known population variance of this set.
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-5, 5);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.Add(3.0);
  a.Merge(b);  // Empty.Merge(nonempty).
  EXPECT_EQ(a.count(), 1);
  RunningStats c;
  a.Merge(c);  // nonempty.Merge(empty).
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(SampleSetTest, PercentilesInterpolate) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.Median(), 25.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 17.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 25.0);
}

TEST(SampleSetTest, SingleSample) {
  SampleSet s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 42.0);
}

TEST(SampleSetTest, BoundaryPercentilesAreExtremes) {
  // p=0 and p=100 must be exactly min/max (rank 0 and rank n-1, no interpolation
  // step beyond the array), regardless of insertion order.
  SampleSet s;
  for (double x : {7.0, -3.0, 99.5, 0.0, 12.25}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), -3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 99.5);
}

TEST(SampleSetTest, TwoSampleTailInterpolation) {
  // With two samples the p99.9 rank is 0.999: a high percentile interpolates
  // between them instead of snapping to the max.
  SampleSet s;
  s.Add(10.0);
  s.Add(20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99.9), 10.0 + 0.999 * 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.1), 10.0 + 0.001 * 10.0);
}

TEST(SampleSetTest, AddAfterPercentileResorts) {
  // Interleaving Add and Percentile must re-sort: the memoized sort is
  // invalidated by every Add, so a new minimum shows up at p=0 and shifts the
  // median. (Regression test: Add used to leave the stale memo in place, and
  // percentiles silently ignored everything added after the first query.)
  SampleSet s;
  s.Add(30.0);
  s.Add(10.0);
  s.Add(20.0);
  EXPECT_DOUBLE_EQ(s.Median(), 20.0);  // Sorts {10, 20, 30}.
  s.Add(0.0);                          // Must invalidate the sorted memo.
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.Median(), 15.0);  // {0, 10, 20, 30} -> (10+20)/2.
  s.Add(40.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.Median(), 20.0);  // {0, 10, 20, 30, 40}.
}

TEST(FitLineTest, ExactLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 40; i += 5) {
    xs.push_back(i);
    ys.push_back(0.00066 * i + 0.00057);  // The paper's Fig. 5 fit.
  }
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 0.00066, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.00057, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineHasHighButImperfectR2) {
  Rng rng(7);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 1.0 + rng.NextNormal(0, 3.0));
  }
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(FitLineTest, ConstantYIsPerfectFlatFit) {
  const LinearFit fit = FitLine({1, 2, 3}, {5, 5, 5});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(RingBufferTest, EvictsOldest) {
  RingBuffer<int> rb(3);
  rb.Push(1);
  rb.Push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_FALSE(rb.full());
  rb.Push(3);
  rb.Push(4);  // Evicts 1.
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.Front(), 2);
  EXPECT_EQ(rb.Back(), 4);
  EXPECT_EQ(rb[0], 2);
  EXPECT_EQ(rb[1], 3);
  EXPECT_EQ(rb[2], 4);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> rb(2);
  rb.Push(1);
  rb.Push(2);
  rb.Clear();
  EXPECT_TRUE(rb.empty());
  rb.Push(9);
  EXPECT_EQ(rb.Front(), 9);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(8);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) {
    s.Add(rng.NextExponential(3.0));
  }
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_GE(s.min(), 0.0);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) {
    s.Add(rng.NextNormal(10.0, 2.0));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace realrate
