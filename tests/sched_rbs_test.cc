// RBS scheduler + Machine behaviour: proportion enforcement, rate-monotonic goodness,
// budget exhaustion/replenishment, reservation updates, deadline misses.
#include <memory>

#include <gtest/gtest.h>

#include "sched/machine.h"
#include "sched/rbs.h"
#include "sim/simulator.h"
#include "task/registry.h"
#include "workloads/misc_work.h"

namespace realrate {
namespace {

class RbsRig {
 public:
  explicit RbsRig(RbsConfig rbs_config = RbsConfig{}, bool charge_overheads = false)
      : rbs_(sim_.cpu(), rbs_config),
        machine_(sim_, rbs_, threads_,
                 MachineConfig{.dispatch_interval = Duration::Millis(1),
                               .charge_overheads = charge_overheads}) {}

  SimThread* SpawnHog(const std::string& name) {
    SimThread* t = threads_.Create(name, std::make_unique<CpuHogWork>());
    machine_.Attach(t);
    return t;
  }

  void Reserve(SimThread* t, int ppt, Duration period) {
    rbs_.SetReservation(t, Proportion::Ppt(ppt), period, sim_.Now());
  }

  double CpuShare(SimThread* t, Duration elapsed) const {
    return static_cast<double>(t->total_cycles()) /
           static_cast<double>(sim_.cpu().DurationToCycles(elapsed));
  }

  Simulator sim_;
  ThreadRegistry threads_;
  RbsScheduler rbs_;
  Machine machine_;
};

TEST(RbsSchedulerTest, SingleReservationEnforcedNotWorkConserving) {
  RbsRig rig;
  SimThread* hog = rig.SpawnHog("hog");
  rig.Reserve(hog, 300, Duration::Millis(10));
  rig.machine_.Start();
  rig.sim_.RunFor(Duration::Seconds(1));
  // Non-work-conserving: even alone, the hog gets only its 30% reservation.
  EXPECT_NEAR(rig.CpuShare(hog, Duration::Seconds(1)), 0.30, 0.01);
}

TEST(RbsSchedulerTest, WorkConservingModeGivesIdleCapacityAway) {
  RbsRig rig(RbsConfig{.work_conserving = true});
  SimThread* hog = rig.SpawnHog("hog");
  rig.Reserve(hog, 200, Duration::Millis(10));
  rig.machine_.Start();
  rig.sim_.RunFor(Duration::Seconds(1));
  EXPECT_GT(rig.CpuShare(hog, Duration::Seconds(1)), 0.95);
}

TEST(RbsSchedulerTest, TwoReservationsSplitProportionally) {
  RbsRig rig;
  SimThread* a = rig.SpawnHog("a");
  SimThread* b = rig.SpawnHog("b");
  rig.Reserve(a, 300, Duration::Millis(10));
  rig.Reserve(b, 600, Duration::Millis(10));
  rig.machine_.Start();
  rig.sim_.RunFor(Duration::Seconds(1));
  EXPECT_NEAR(rig.CpuShare(a, Duration::Seconds(1)), 0.30, 0.01);
  EXPECT_NEAR(rig.CpuShare(b, Duration::Seconds(1)), 0.60, 0.01);
}

TEST(RbsSchedulerTest, FinerGrainControl60To40) {
  // The paper's fine-grain control example: "assigning 60% of the CPU to thread X and
  // 40% to thread Y."
  RbsRig rig;
  SimThread* x = rig.SpawnHog("x");
  SimThread* y = rig.SpawnHog("y");
  rig.Reserve(x, 600, Duration::Millis(20));
  rig.Reserve(y, 400, Duration::Millis(20));
  rig.machine_.Start();
  rig.sim_.RunFor(Duration::Seconds(2));
  EXPECT_NEAR(rig.CpuShare(x, Duration::Seconds(2)), 0.60, 0.01);
  EXPECT_NEAR(rig.CpuShare(y, Duration::Seconds(2)), 0.40, 0.01);
}

TEST(RbsSchedulerTest, UnreservedRunsOnlyInSlack) {
  RbsRig rig;
  SimThread* reserved = rig.SpawnHog("reserved");
  SimThread* background = rig.SpawnHog("background");
  rig.Reserve(reserved, 500, Duration::Millis(10));
  rig.machine_.Start();
  rig.sim_.RunFor(Duration::Seconds(1));
  EXPECT_NEAR(rig.CpuShare(reserved, Duration::Seconds(1)), 0.50, 0.01);
  EXPECT_NEAR(rig.CpuShare(background, Duration::Seconds(1)), 0.50, 0.01);
}

TEST(RbsSchedulerTest, GoodnessIsRateMonotonic) {
  RbsRig rig;
  SimThread* fast = rig.SpawnHog("fast");
  SimThread* slow = rig.SpawnHog("slow");
  rig.Reserve(fast, 100, Duration::Millis(5));
  rig.Reserve(slow, 100, Duration::Millis(50));
  EXPECT_GT(rig.rbs_.Goodness(fast), rig.rbs_.Goodness(slow));
  EXPECT_GT(rig.rbs_.Goodness(slow), 0);
}

TEST(RbsSchedulerTest, GoodnessZeroWhenBudgetExhausted) {
  RbsRig rig;
  SimThread* t = rig.SpawnHog("t");
  rig.Reserve(t, 100, Duration::Millis(10));
  t->set_budget_remaining(0);
  EXPECT_EQ(rig.rbs_.Goodness(t), 0);
}

TEST(RbsSchedulerTest, ReservedOutranksUnreserved) {
  RbsRig rig;
  SimThread* reserved = rig.SpawnHog("reserved");
  SimThread* plain = rig.SpawnHog("plain");
  rig.Reserve(reserved, 10, Duration::Millis(10));
  EXPECT_GT(rig.rbs_.Goodness(reserved), rig.rbs_.Goodness(plain));
}

TEST(RbsSchedulerTest, BudgetExhaustionTracedAndSleeps) {
  RbsRig rig;
  rig.sim_.trace().SetEnabled(true);
  SimThread* hog = rig.SpawnHog("hog");
  rig.Reserve(hog, 100, Duration::Millis(10));
  rig.machine_.Start();
  rig.sim_.RunFor(Duration::Millis(100));
  // 10 periods in 100 ms: the budget exhausts each period and the thread sleeps.
  EXPECT_GE(rig.sim_.trace().Count(TraceKind::kBudgetExhausted, hog->id()), 8);
  EXPECT_GE(rig.sim_.trace().Count(TraceKind::kWake, hog->id()), 8);
}

TEST(RbsSchedulerTest, PeriodBudgetComputation) {
  RbsRig rig;
  SimThread* t = rig.SpawnHog("t");
  rig.Reserve(t, 250, Duration::Millis(40));
  // 25% of 40 ms at 400 MHz = 4,000,000 cycles.
  EXPECT_EQ(rig.rbs_.PeriodBudget(t), 4'000'000);
}

TEST(RbsSchedulerTest, SetReservationProportionOnlyKeepsPeriodPhase) {
  RbsRig rig;
  SimThread* t = rig.SpawnHog("t");
  rig.Reserve(t, 200, Duration::Millis(10));
  const TimePoint phase = t->period_start();
  // Simulate consuming 700k of the 800k budget.
  t->OnRan(700'000);
  rig.rbs_.OnRan(t, 700'000, rig.sim_.Now());
  EXPECT_EQ(t->budget_remaining(), 100'000);
  // Raise proportion mid-period: phase must not restart; the remaining budget becomes
  // the full new budget (400 ppt of 10 ms = 1.6M cycles) minus the 700k consumed.
  rig.rbs_.SetReservation(t, Proportion::Ppt(400), Duration::Millis(10), rig.sim_.Now());
  EXPECT_EQ(t->period_start(), phase);
  EXPECT_EQ(t->budget_remaining(), 900'000);
}

TEST(RbsSchedulerTest, RepeatedReservationUpdatesAreBudgetNeutral) {
  // An oscillating controller flipping the proportion up and down within one period
  // must not mint extra budget.
  RbsRig rig;
  SimThread* t = rig.SpawnHog("t");
  rig.Reserve(t, 200, Duration::Millis(10));
  for (int i = 0; i < 100; ++i) {
    rig.rbs_.SetReservation(t, Proportion::Ppt(i % 2 == 0 ? 100 : 200), Duration::Millis(10),
                            rig.sim_.Now());
  }
  EXPECT_EQ(t->budget_remaining(), rig.rbs_.PeriodBudget(t));  // 200 ppt, nothing used.
}

TEST(RbsSchedulerTest, SetReservationPeriodChangeRestartsPhase) {
  RbsRig rig;
  SimThread* t = rig.SpawnHog("t");
  rig.Reserve(t, 200, Duration::Millis(10));
  rig.machine_.Start();
  rig.sim_.RunFor(Duration::Millis(5));
  rig.rbs_.SetReservation(t, Proportion::Ppt(200), Duration::Millis(20), rig.sim_.Now());
  EXPECT_EQ(t->period_start(), rig.sim_.Now());
  EXPECT_EQ(t->budget_remaining(), rig.rbs_.PeriodBudget(t));
}

TEST(RbsSchedulerTest, LoweringProportionClampsBudgetAtZero) {
  RbsRig rig;
  SimThread* t = rig.SpawnHog("t");
  rig.Reserve(t, 400, Duration::Millis(10));
  // Consume 500k cycles, more than the whole budget at the lowered proportion
  // (100 ppt of 10 ms = 400k): the remaining budget clamps to zero.
  t->OnRan(500'000);
  rig.rbs_.OnRan(t, 500'000, rig.sim_.Now());
  rig.rbs_.SetReservation(t, Proportion::Ppt(100), Duration::Millis(10), rig.sim_.Now());
  EXPECT_EQ(t->budget_remaining(), 0);
}

TEST(RbsSchedulerTest, TotalReservedSums) {
  RbsRig rig;
  SimThread* a = rig.SpawnHog("a");
  SimThread* b = rig.SpawnHog("b");
  rig.Reserve(a, 300, Duration::Millis(10));
  rig.Reserve(b, 150, Duration::Millis(20));
  EXPECT_EQ(rig.rbs_.TotalReserved().ppt(), 450);
}

TEST(RbsSchedulerTest, OversubscriptionCausesDeadlineMisses) {
  RbsRig rig;
  SimThread* a = rig.SpawnHog("a");
  SimThread* b = rig.SpawnHog("b");
  // 70% + 70% = 140%: someone must miss every period.
  rig.Reserve(a, 700, Duration::Millis(10));
  rig.Reserve(b, 700, Duration::Millis(10));
  int64_t miss_count = 0;
  rig.rbs_.SetDeadlineMissFn(
      [&](SimThread*, Cycles shortfall, TimePoint) {
        ++miss_count;
        EXPECT_GT(shortfall, 0);
      });
  rig.machine_.Start();
  rig.sim_.RunFor(Duration::Seconds(1));
  EXPECT_GT(miss_count, 50);
  EXPECT_GT(a->deadline_misses() + b->deadline_misses(), 50);
}

TEST(RbsSchedulerTest, NoMissesWhenFeasible) {
  RbsRig rig;
  SimThread* a = rig.SpawnHog("a");
  SimThread* b = rig.SpawnHog("b");
  rig.Reserve(a, 400, Duration::Millis(10));
  rig.Reserve(b, 400, Duration::Millis(10));
  rig.machine_.Start();
  rig.sim_.RunFor(Duration::Seconds(1));
  EXPECT_EQ(a->deadline_misses(), 0);
  EXPECT_EQ(b->deadline_misses(), 0);
}

TEST(RbsSchedulerTest, ShortPeriodThreadMeetsTightDeadlines) {
  // A 5 ms period isochronous-style reservation coexisting with a long-period one.
  RbsRig rig;
  SimThread* iso = rig.SpawnHog("iso");
  SimThread* bulk = rig.SpawnHog("bulk");
  rig.Reserve(iso, 200, Duration::Millis(5));
  rig.Reserve(bulk, 700, Duration::Millis(100));
  rig.machine_.Start();
  rig.sim_.RunFor(Duration::Seconds(1));
  EXPECT_EQ(iso->deadline_misses(), 0);
  EXPECT_NEAR(rig.CpuShare(iso, Duration::Seconds(1)), 0.20, 0.01);
  EXPECT_NEAR(rig.CpuShare(bulk, Duration::Seconds(1)), 0.70, 0.02);
}

}  // namespace
}  // namespace realrate
