// Work models: producers, consumers, pipeline stages, hogs, interactive jobs, lock
// workers, arrival/typing processes, rate schedules.
#include <memory>

#include <gtest/gtest.h>

#include "queue/bounded_buffer.h"
#include "queue/registry.h"
#include "sched/machine.h"
#include "sched/rbs.h"
#include "sim/simulator.h"
#include "task/registry.h"
#include "workloads/misc_work.h"
#include "workloads/producer_consumer.h"
#include "workloads/rate_schedule.h"
#include "workloads/server.h"

namespace realrate {
namespace {

TEST(RateScheduleTest, ConstantBase) {
  RateSchedule s(100.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(TimePoint::Origin()), 100.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(TimePoint::Origin() + Duration::Seconds(100)), 100.0);
}

TEST(RateScheduleTest, SegmentsOverrideWindow) {
  RateSchedule s(100.0);
  s.AddSegment(TimePoint::Origin() + Duration::Seconds(5), Duration::Seconds(2), 200.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(TimePoint::Origin() + Duration::Seconds(4)), 100.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(TimePoint::Origin() + Duration::Seconds(5)), 200.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(TimePoint::Origin() + Duration::Millis(6'999)), 200.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(TimePoint::Origin() + Duration::Seconds(7)), 100.0);
}

TEST(RateScheduleTest, LaterSegmentsWin) {
  RateSchedule s(1.0);
  s.AddSegment(TimePoint::Origin(), Duration::Seconds(10), 2.0);
  s.AddSegment(TimePoint::Origin() + Duration::Seconds(5), Duration::Seconds(1), 3.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(TimePoint::Origin() + Duration::Seconds(5)), 3.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(TimePoint::Origin() + Duration::Seconds(7)), 2.0);
}

TEST(RateScheduleTest, PaperPulsesShape) {
  const TimePoint start = TimePoint::Origin() + Duration::Seconds(5);
  RateSchedule s = RateSchedule::PaperPulses(
      100.0, 200.0, start, {Duration::Seconds(4), Duration::Seconds(2), Duration::Seconds(1)},
      Duration::Seconds(3), {Duration::Seconds(4), Duration::Seconds(2), Duration::Seconds(1)});
  auto at = [](double sec) { return TimePoint::Origin() + Duration::FromSeconds(sec); };
  EXPECT_DOUBLE_EQ(s.ValueAt(at(1)), 100.0);     // Before the program.
  EXPECT_DOUBLE_EQ(s.ValueAt(at(6)), 200.0);     // First rising pulse (5..9).
  EXPECT_DOUBLE_EQ(s.ValueAt(at(10)), 100.0);    // Gap (9..12).
  EXPECT_DOUBLE_EQ(s.ValueAt(at(13)), 200.0);    // Second pulse (12..14).
  EXPECT_DOUBLE_EQ(s.ValueAt(at(17.5)), 200.0);  // Third pulse (17..18).
  EXPECT_DOUBLE_EQ(s.ValueAt(at(20)), 200.0);    // Plateau: rate stays high.
  EXPECT_DOUBLE_EQ(s.ValueAt(at(22)), 100.0);    // First falling pulse (21..25).
  EXPECT_DOUBLE_EQ(s.ValueAt(at(26)), 200.0);    // Back at plateau.
}

struct WorkRig {
  Simulator sim;
  ThreadRegistry threads;
  RbsScheduler rbs{sim.cpu()};
  QueueRegistry queues;
  Machine machine{sim, rbs, threads,
                  MachineConfig{.dispatch_interval = Duration::Millis(1),
                                .charge_overheads = false}};
};

TEST(ProducerWorkTest, ProducesAtConfiguredRate) {
  WorkRig rig;
  BoundedBuffer* q = rig.queues.CreateQueue("q", 1'000'000);
  rig.machine.Attach(q);
  SimThread* p = rig.threads.Create(
      "p", std::make_unique<ProducerWork>(q, /*cycles_per_item=*/400'000, RateSchedule(100.0)));
  rig.machine.Attach(p);
  rig.rbs.SetReservation(p, Proportion::Ppt(50), Duration::Millis(10), rig.sim.Now());
  rig.machine.Start();
  rig.sim.RunFor(Duration::Seconds(2));
  // 5% of 400 MHz = 20 Mcyc/s / 400k = 50 items/s -> 100 items, 10,000 bytes.
  const auto& work = static_cast<const ProducerWork&>(p->work());
  EXPECT_NEAR(work.items_produced(), 100, 3);
  EXPECT_NEAR(q->total_pushed(), 10'000, 300);
  EXPECT_EQ(p->progress_units(), q->total_pushed());
}

TEST(ProducerWorkTest, BlocksWhenQueueFullAndResumesCleanly) {
  WorkRig rig;
  rig.sim.trace().SetEnabled(true);
  BoundedBuffer* q = rig.queues.CreateQueue("q", 300);
  rig.machine.Attach(q);
  SimThread* p = rig.threads.Create(
      "p", std::make_unique<ProducerWork>(q, 10'000, RateSchedule(100.0)));
  rig.machine.Attach(p);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Millis(50));
  EXPECT_EQ(p->state(), ThreadState::kBlocked);
  EXPECT_EQ(q->fill(), 300);
  // Drain one item's worth; the producer resumes and pushes exactly one more item (the
  // one already built before blocking) without re-spending its cycles.
  const Cycles cycles_before = p->total_cycles();
  q->TryPop(100);
  rig.sim.RunFor(Duration::Millis(2));
  EXPECT_EQ(q->fill(), 300);
  EXPECT_GE(p->total_cycles(), cycles_before);  // It ran again...
  const auto& work = static_cast<const ProducerWork&>(p->work());
  EXPECT_EQ(work.items_produced(), 3 + 1);  // 3 before blocking + the pending one...
}

TEST(ConsumerWorkTest, ConsumesAtCyclesPerByte) {
  WorkRig rig;
  BoundedBuffer* q = rig.queues.CreateQueue("q", 1'000'000);
  rig.machine.Attach(q);
  q->TryPush(500'000);
  SimThread* c = rig.threads.Create("c", std::make_unique<ConsumerWork>(q, 1'000));
  rig.machine.Attach(c);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Seconds(1));
  // Unreserved thread gets the whole CPU: 400 Mcyc / 1000 cyc/B = 400,000 bytes.
  const auto& work = static_cast<const ConsumerWork&>(c->work());
  EXPECT_NEAR(work.bytes_consumed(), 400'000, 2'000);
}

TEST(PipelineStageWorkTest, ConservesBytesEndToEnd) {
  WorkRig rig;
  BoundedBuffer* in = rig.queues.CreateQueue("in", 10'000);
  BoundedBuffer* out = rig.queues.CreateQueue("out", 1'000'000);
  rig.machine.Attach(in);
  rig.machine.Attach(out);
  in->TryPush(5'000);
  SimThread* stage = rig.threads.Create(
      "stage", std::make_unique<PipelineStageWork>(in, out, /*cycles_per_byte=*/100,
                                                   /*amplification=*/1.0, /*chunk=*/500));
  rig.machine.Attach(stage);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Seconds(1));
  EXPECT_EQ(out->total_pushed(), 5'000);
  EXPECT_EQ(stage->state(), ThreadState::kBlocked);  // Waiting for more input.
}

TEST(PipelineStageWorkTest, AmplificationScalesOutput) {
  WorkRig rig;
  BoundedBuffer* in = rig.queues.CreateQueue("in", 10'000);
  BoundedBuffer* out = rig.queues.CreateQueue("out", 1'000'000);
  rig.machine.Attach(in);
  rig.machine.Attach(out);
  in->TryPush(1'000);
  SimThread* stage = rig.threads.Create(
      "stage", std::make_unique<PipelineStageWork>(in, out, 100, /*amplification=*/3.0,
                                                   /*chunk=*/500));
  rig.machine.Attach(stage);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Millis(100));
  EXPECT_EQ(out->total_pushed(), 3'000);
}

TEST(PipelineStageWorkTest, BlocksOnFullOutput) {
  WorkRig rig;
  BoundedBuffer* in = rig.queues.CreateQueue("in", 10'000);
  BoundedBuffer* out = rig.queues.CreateQueue("out", 400);
  rig.machine.Attach(in);
  rig.machine.Attach(out);
  in->TryPush(5'000);
  SimThread* stage = rig.threads.Create(
      "stage",
      std::make_unique<PipelineStageWork>(in, out, 100, 1.0, /*chunk=*/400));
  rig.machine.Attach(stage);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Millis(100));
  EXPECT_EQ(stage->state(), ThreadState::kBlocked);
  EXPECT_EQ(out->fill(), 400);
}

TEST(CpuHogWorkTest, CountsKeysAttempted) {
  WorkRig rig;
  SimThread* hog = rig.threads.Create("hog", std::make_unique<CpuHogWork>(1'000));
  rig.machine.Attach(hog);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Millis(10));
  // 4 Mcyc / 1000 cyc per key.
  EXPECT_EQ(hog->progress_units(), 4'000);
}

TEST(InteractiveWorkTest, ServicesKeystrokesAndBlocksBetween) {
  WorkRig rig;
  TtyPort tty("console");
  rig.machine.Attach(&tty);
  SimThread* job =
      rig.threads.Create("editor", std::make_unique<InteractiveWork>(&tty, 100'000));
  rig.machine.Attach(job);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Millis(5));
  EXPECT_EQ(job->state(), ThreadState::kBlocked);
  tty.PushInput(rig.sim.Now());
  rig.sim.RunFor(Duration::Millis(5));
  const auto& work = static_cast<const InteractiveWork&>(job->work());
  EXPECT_EQ(work.events_serviced(), 1);
  EXPECT_EQ(job->state(), ThreadState::kBlocked);
  ASSERT_EQ(tty.latencies().size(), 1u);
  EXPECT_LT(tty.latencies()[0], 0.002);  // Serviced within two ticks.
}

TEST(LockWorkTest, AlternatesWithoutContention) {
  WorkRig rig;
  SimMutex mutex("m");
  rig.machine.Attach(&mutex);
  SimThread* t = rig.threads.Create(
      "t", std::make_unique<LockWork>(&mutex, /*hold=*/400'000, Duration::Millis(4)));
  rig.machine.Attach(t);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Millis(100));
  const auto& work = static_cast<const LockWork&>(t->work());
  // Each round = 1 ms hold + 4 ms sleep (rounded to tick) => ~16-20 rounds in 100 ms.
  EXPECT_GE(work.acquisitions(), 14);
  EXPECT_DOUBLE_EQ(work.MaxWaitSeconds(), 0.0);
  EXPECT_FALSE(mutex.IsHeld());
}

TEST(LockWorkTest, ContendersHandOffFifo) {
  WorkRig rig;
  SimMutex mutex("m");
  rig.machine.Attach(&mutex);
  SimThread* a = rig.threads.Create(
      "a", std::make_unique<LockWork>(&mutex, 400'000, Duration::Millis(1)));
  SimThread* b = rig.threads.Create(
      "b", std::make_unique<LockWork>(&mutex, 400'000, Duration::Millis(1)));
  rig.machine.Attach(a);
  rig.machine.Attach(b);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Seconds(1));
  const auto& wa = static_cast<const LockWork&>(a->work());
  const auto& wb = static_cast<const LockWork&>(b->work());
  EXPECT_GT(wa.acquisitions(), 50);
  EXPECT_GT(wb.acquisitions(), 50);
  // Nobody waits pathologically long when both run freely.
  EXPECT_LT(wa.MaxWaitSeconds(), 0.05);
  EXPECT_LT(wb.MaxWaitSeconds(), 0.05);
}

TEST(RequestServerWorkTest, ServesBufferedRequests) {
  WorkRig rig;
  BoundedBuffer* sock = rig.queues.CreateQueue("sock", 100'000);
  rig.machine.Attach(sock);
  sock->TryPush(512 * 10);  // Ten requests.
  SimThread* server = rig.threads.Create(
      "server", std::make_unique<RequestServerWork>(sock, 512, /*cycles=*/1'000'000));
  rig.machine.Attach(server);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Millis(100));
  const auto& work = static_cast<const RequestServerWork&>(server->work());
  EXPECT_EQ(work.requests_served(), 10);
  EXPECT_EQ(server->state(), ThreadState::kBlocked);
}

TEST(ArrivalProcessTest, DeterministicSpacingDeliversExpectedBytes) {
  WorkRig rig;
  BoundedBuffer* q = rig.queues.CreateQueue("rx", 1'000'000);
  rig.machine.Attach(q);
  ArrivalProcess::Config config;
  config.poisson = false;
  config.mean_interarrival = Duration::Millis(10);
  config.bytes_per_arrival = 100;
  ArrivalProcess arrivals(rig.sim, q, config);
  arrivals.Start();
  rig.machine.Start();
  rig.sim.RunFor(Duration::Seconds(1));
  EXPECT_EQ(arrivals.arrivals(), 100);
  EXPECT_EQ(q->total_pushed(), 10'000);
  EXPECT_EQ(arrivals.dropped_bytes(), 0);
}

TEST(ArrivalProcessTest, DropsWhenRingOverflows) {
  WorkRig rig;
  BoundedBuffer* q = rig.queues.CreateQueue("rx", 250);
  rig.machine.Attach(q);
  ArrivalProcess::Config config;
  config.poisson = false;
  config.mean_interarrival = Duration::Millis(1);
  config.bytes_per_arrival = 100;
  ArrivalProcess arrivals(rig.sim, q, config);
  arrivals.Start();
  rig.machine.Start();
  rig.sim.RunFor(Duration::Millis(100));
  EXPECT_EQ(q->fill(), 200);  // Two arrivals fit.
  EXPECT_GT(arrivals.dropped_bytes(), 0);
}

TEST(ArrivalProcessTest, PoissonMeanRateApproximatelyCorrect) {
  WorkRig rig;
  BoundedBuffer* q = rig.queues.CreateQueue("rx", 100'000'000);
  rig.machine.Attach(q);
  ArrivalProcess::Config config;
  config.poisson = true;
  config.mean_interarrival = Duration::Millis(2);
  config.seed = 11;
  ArrivalProcess arrivals(rig.sim, q, config);
  arrivals.Start();
  rig.machine.Start();
  rig.sim.RunFor(Duration::Seconds(20));
  EXPECT_NEAR(arrivals.arrivals(), 10'000, 300);
}

TEST(TypingProcessTest, GeneratesKeystrokes) {
  WorkRig rig;
  TtyPort tty("console");
  rig.machine.Attach(&tty);
  TypingProcess::Config config;
  config.mean_think = Duration::Millis(100);
  TypingProcess typist(rig.sim, &tty, config);
  typist.Start();
  rig.machine.Start();
  rig.sim.RunFor(Duration::Seconds(10));
  EXPECT_NEAR(typist.keystrokes(), 100, 30);
  EXPECT_EQ(tty.total_events(), typist.keystrokes());
}

TEST(IdleWorkTest, SleepsForeverConsumingNothing) {
  WorkRig rig;
  SimThread* idle = rig.threads.Create("idle", std::make_unique<IdleWork>());
  rig.machine.Attach(idle);
  rig.machine.Start();
  rig.sim.RunFor(Duration::Seconds(1));
  EXPECT_EQ(idle->total_cycles(), 0);
  EXPECT_EQ(idle->state(), ThreadState::kSleeping);
}

}  // namespace
}  // namespace realrate
