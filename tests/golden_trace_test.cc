// Golden trace hashes for the paper's figure scenarios. tests/smp_test.cc pins the
// cpus=1 machine against the pre-SMP implementation; these pin the complete Fig. 6
// and Fig. 7 experiments — full 45 s pulse program, default parameters — so any
// refactor that changes the schedule of the paper's headline experiments is caught
// even when every behavioral assertion still happens to pass.
#include <gtest/gtest.h>

#include "exp/scenarios.h"

namespace realrate {
namespace {

// Recorded from the implementation at the commit that introduced this test (post-SMP
// machine, default PipelineParams). A mismatch means the figure experiments are no
// longer scheduling the way the validated implementation did — that is a behavior
// change to justify explicitly (and re-record via tools/realrate_check-style dump or
// a local print), not a baseline to refresh casually.
constexpr uint64_t kFig6TraceHash = 10620758159328637066ull;
constexpr uint64_t kFig7TraceHash = 1126479940020442005ull;

TEST(GoldenTraceTest, Fig6PulsePipelineScheduleIsPinned) {
  const PipelineResult result = RunPipelineScenario(PipelineParams{});
  EXPECT_EQ(result.trace_hash, kFig6TraceHash);
  // The paper's claim rides on the pinned schedule: response "roughly 1/3 second".
  EXPECT_GT(result.response_time_s, 0.0);
  EXPECT_LT(result.response_time_s, 0.5);
}

TEST(GoldenTraceTest, Fig7HogPipelineScheduleIsPinned) {
  PipelineParams params;
  params.with_hog = true;
  const PipelineResult result = RunPipelineScenario(params);
  EXPECT_EQ(result.trace_hash, kFig7TraceHash);
  // The hog soaks the spare capacity while the consumer keeps its real-rate share.
  EXPECT_GT(result.hog_final_alloc_ppt, result.consumer_final_alloc_ppt);
}

TEST(GoldenTraceTest, FigureScenariosAreRunToRunDeterministic) {
  // The pins above assert cross-commit stability; this asserts within-process
  // determinism, so a flaky divergence points at hidden state rather than a refactor.
  PipelineParams params;
  params.run_for = Duration::Seconds(6);
  const PipelineResult a = RunPipelineScenario(params);
  const PipelineResult b = RunPipelineScenario(params);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

}  // namespace
}  // namespace realrate
