// Golden trace hashes for the paper's figure scenarios. tests/smp_test.cc pins the
// cpus=1 machine against the pre-SMP implementation; these pin the complete Fig. 6
// and Fig. 7 experiments — full 45 s pulse program, default parameters — so any
// refactor that changes the schedule of the paper's headline experiments is caught
// even when every behavioral assertion still happens to pass.
#include <gtest/gtest.h>

#include "exp/scenarios.h"

namespace realrate {
namespace {

// Recorded from the implementation at the commit that introduced this test (post-SMP
// machine, default PipelineParams). A mismatch means the figure experiments are no
// longer scheduling the way the validated implementation did — that is a behavior
// change to justify explicitly (and re-record via tools/realrate_check-style dump or
// a local print), not a baseline to refresh casually.
constexpr uint64_t kFig6TraceHash = 10620758159328637066ull;
constexpr uint64_t kFig7TraceHash = 1126479940020442005ull;

// Server-farm pins (recorded at the commit that introduced the indexed dispatch hot
// path): the same configurations produced identical hashes with idle fast-forward
// on/off and with the indexed versus reference pick, so a mismatch here means the
// farm's schedule drifted, not that one of those modes diverged — the per-test
// asserts below keep the mode-equivalence claims pinned separately.
constexpr uint64_t kFarm1CpuTraceHash = 6358072633097906862ull;
constexpr uint64_t kFarm4CpuTraceHash = 18166534192866868973ull;

ServerFarmParams FarmPinParams(int cpus) {
  ServerFarmParams params;
  params.num_cpus = cpus;
  params.num_pipelines = cpus == 1 ? 48 : 192;
  params.num_hogs = cpus;
  params.run_for = Duration::Millis(250);
  return params;
}

TEST(GoldenTraceTest, Fig6PulsePipelineScheduleIsPinned) {
  const PipelineResult result = RunPipelineScenario(PipelineParams{});
  EXPECT_EQ(result.trace_hash, kFig6TraceHash);
  // The paper's claim rides on the pinned schedule: response "roughly 1/3 second".
  EXPECT_GT(result.response_time_s, 0.0);
  EXPECT_LT(result.response_time_s, 0.5);
}

TEST(GoldenTraceTest, Fig7HogPipelineScheduleIsPinned) {
  PipelineParams params;
  params.with_hog = true;
  const PipelineResult result = RunPipelineScenario(params);
  EXPECT_EQ(result.trace_hash, kFig7TraceHash);
  // The hog soaks the spare capacity while the consumer keeps its real-rate share.
  EXPECT_GT(result.hog_final_alloc_ppt, result.consumer_final_alloc_ppt);
}

TEST(GoldenTraceTest, ServerFarmSingleCpuScheduleIsPinned) {
  const ServerFarmResult result = RunServerFarmScenario(FarmPinParams(1));
  EXPECT_EQ(result.trace_hash, kFarm1CpuTraceHash);
  EXPECT_EQ(result.num_threads, 97);
  // The farm actually flows: every pipeline's consumer made progress.
  EXPECT_GT(result.total_consumed_bytes, 0);
  // And the fast-forward machinery engaged (the pin covers its catch-up path, not
  // just the always-busy schedule).
  EXPECT_GT(result.idle_suspensions, 0);
}

TEST(GoldenTraceTest, ServerFarmFourCpuScheduleIsPinned) {
  const ServerFarmResult result = RunServerFarmScenario(FarmPinParams(4));
  EXPECT_EQ(result.trace_hash, kFarm4CpuTraceHash);
  EXPECT_EQ(result.num_threads, 388);
  EXPECT_GT(result.total_consumed_bytes, 0);
  EXPECT_GT(result.idle_suspensions, 0);
}

TEST(GoldenTraceTest, ServerFarmHotPathModesAreTraceEquivalent) {
  // The tentpole guarantee, pinned at scenario level: indexed pick vs reference scan
  // and idle fast-forward on vs off schedule the farm bit-identically.
  ServerFarmParams params = FarmPinParams(4);
  params.run_for = Duration::Millis(120);
  const ServerFarmResult indexed = RunServerFarmScenario(params);

  ServerFarmParams reference = params;
  reference.rbs.use_indexed_pick = false;
  const ServerFarmResult ref = RunServerFarmScenario(reference);
  EXPECT_EQ(indexed.trace_hash, ref.trace_hash);
  EXPECT_EQ(indexed.total_dispatches, ref.total_dispatches);

  ServerFarmParams no_ff = params;
  no_ff.idle_fast_forward = false;
  const ServerFarmResult eager = RunServerFarmScenario(no_ff);
  EXPECT_EQ(indexed.trace_hash, eager.trace_hash);
  EXPECT_EQ(indexed.total_dispatches, eager.total_dispatches);
  EXPECT_EQ(indexed.total_consumed_bytes, eager.total_consumed_bytes);
  EXPECT_EQ(eager.idle_suspensions, 0);  // The knob actually disables the machinery.
}

TEST(GoldenTraceTest, ServerFarmSlabModesAreTraceEquivalent) {
  // The memory-layout tentpole guarantee, pinned at scenario level: the hot-field
  // slab columns (plus the column sweeps and kAuto pick they enable) versus the
  // pre-slab AoS build schedule the farm bit-identically — the slabs are a layout,
  // not a policy.
  ServerFarmParams params = FarmPinParams(4);
  params.run_for = Duration::Millis(120);
  const ServerFarmResult slabs_on = RunServerFarmScenario(params);

  ServerFarmParams no_slabs = params;
  no_slabs.thread_slabs = false;
  const ServerFarmResult slabs_off = RunServerFarmScenario(no_slabs);
  EXPECT_EQ(slabs_on.trace_hash, slabs_off.trace_hash);
  EXPECT_EQ(slabs_on.total_dispatches, slabs_off.total_dispatches);
  EXPECT_EQ(slabs_on.total_consumed_bytes, slabs_off.total_consumed_bytes);
}

TEST(GoldenTraceTest, ServerFarmControllerModesAreTraceEquivalent) {
  // The control-plane tentpole guarantee, pinned at scenario level: the staged
  // Sample→Estimate→Resolve→Actuate pipeline (with shadow asserts live) and the
  // monolithic RunOnceReference sweep schedule the farm bit-identically.
  ServerFarmParams params = FarmPinParams(4);
  params.run_for = Duration::Millis(120);
  params.controller.shadow_check = true;
  const ServerFarmResult pipeline = RunServerFarmScenario(params);

  ServerFarmParams reference = params;
  reference.controller.shadow_check = false;
  reference.controller.use_pipeline = false;
  const ServerFarmResult ref = RunServerFarmScenario(reference);
  EXPECT_EQ(pipeline.trace_hash, ref.trace_hash);
  EXPECT_EQ(pipeline.total_dispatches, ref.total_dispatches);
  EXPECT_EQ(pipeline.total_consumed_bytes, ref.total_consumed_bytes);
  EXPECT_EQ(pipeline.squish_events, ref.squish_events);
  EXPECT_EQ(pipeline.quality_exceptions, ref.quality_exceptions);
}

TEST(GoldenTraceTest, FigureScenariosAreRunToRunDeterministic) {
  // The pins above assert cross-commit stability; this asserts within-process
  // determinism, so a flaky divergence points at hidden state rather than a refactor.
  PipelineParams params;
  params.run_for = Duration::Seconds(6);
  const PipelineResult a = RunPipelineScenario(params);
  const PipelineResult b = RunPipelineScenario(params);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

}  // namespace
}  // namespace realrate
