// Machine: dispatch loop, blocking/waking through queues, sleep timers, overhead
// charging, context-switch accounting.
#include <memory>

#include <gtest/gtest.h>

#include "queue/bounded_buffer.h"
#include "queue/registry.h"
#include "sched/machine.h"
#include "sched/rbs.h"
#include "sim/simulator.h"
#include "task/registry.h"
#include "workloads/misc_work.h"
#include "workloads/producer_consumer.h"
#include "workloads/rate_schedule.h"

namespace realrate {
namespace {

struct MachineRig {
  Simulator sim;
  ThreadRegistry threads;
  RbsScheduler rbs{sim.cpu()};
  QueueRegistry queues;
  std::unique_ptr<Machine> machine;

  explicit MachineRig(bool charge_overheads = false) {
    machine = std::make_unique<Machine>(
        sim, rbs, threads,
        MachineConfig{.dispatch_interval = Duration::Millis(1),
                      .charge_overheads = charge_overheads});
  }
};

TEST(MachineTest, TicksAtDispatchInterval) {
  MachineRig rig;
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(100));
  EXPECT_EQ(rig.machine->ticks(), 100);
}

TEST(MachineTest, IdleCpuChargedWhenNothingRunnable) {
  MachineRig rig;
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(10));
  EXPECT_EQ(rig.sim.cpu().Used(CpuUse::kIdle), rig.sim.cpu().DurationToCycles(Duration::Millis(10)));
  EXPECT_EQ(rig.sim.cpu().Used(CpuUse::kUser), 0);
}

TEST(MachineTest, HogConsumesFullCapacityWithoutOverheads) {
  MachineRig rig;
  SimThread* hog = rig.threads.Create("hog", std::make_unique<CpuHogWork>());
  rig.machine->Attach(hog);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(50));
  EXPECT_EQ(hog->total_cycles(), rig.sim.cpu().DurationToCycles(Duration::Millis(50)));
}

TEST(MachineTest, OverheadsReduceUserCapacity) {
  MachineRig rig(/*charge_overheads=*/true);
  SimThread* hog = rig.threads.Create("hog", std::make_unique<CpuHogWork>());
  rig.machine->Attach(hog);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Seconds(1));
  const Cycles total = rig.sim.cpu().DurationToCycles(Duration::Seconds(1));
  EXPECT_LT(hog->total_cycles(), total);
  EXPECT_GT(hog->total_cycles(), total * 9 / 10);  // Overhead is small at 1 kHz.
  EXPECT_GT(rig.sim.cpu().Used(CpuUse::kDispatch), 0);
  EXPECT_GT(rig.sim.cpu().Used(CpuUse::kTimer), 0);
}

TEST(MachineTest, StealCyclesTaxesFollowingTicks) {
  MachineRig rig(/*charge_overheads=*/true);
  SimThread* hog = rig.threads.Create("hog", std::make_unique<CpuHogWork>());
  rig.machine->Attach(hog);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(10));
  const Cycles before = hog->total_cycles();
  // Steal two full ticks' worth of cycles for the "controller".
  rig.machine->StealCycles(CpuUse::kController, 800'000);
  rig.sim.RunFor(Duration::Millis(10));
  const Cycles gained = hog->total_cycles() - before;
  const Cycles ten_ms = rig.sim.cpu().DurationToCycles(Duration::Millis(10));
  EXPECT_LT(gained, ten_ms - 700'000);
  EXPECT_EQ(rig.sim.cpu().Used(CpuUse::kController), 800'000);
}

TEST(MachineTest, ProducerConsumerBlockAndWake) {
  MachineRig rig;
  rig.sim.trace().SetEnabled(true);
  BoundedBuffer* q = rig.queues.CreateQueue("q", 1'000);
  rig.machine->Attach(q);

  // Fast producer (fills the queue quickly), slow consumer.
  SimThread* producer = rig.threads.Create(
      "producer", std::make_unique<ProducerWork>(q, /*cycles_per_item=*/10'000,
                                                 RateSchedule(100.0)));
  SimThread* consumer = rig.threads.Create(
      "consumer", std::make_unique<ConsumerWork>(q, /*cycles_per_byte=*/1'000));
  rig.machine->Attach(producer);
  rig.machine->Attach(consumer);
  rig.rbs.SetReservation(producer, Proportion::Ppt(300), Duration::Millis(10), rig.sim.Now());
  rig.rbs.SetReservation(consumer, Proportion::Ppt(300), Duration::Millis(10), rig.sim.Now());

  rig.machine->Start();
  rig.sim.RunFor(Duration::Seconds(1));

  // The producer must have blocked on the full queue and been woken at least once.
  EXPECT_GT(rig.sim.trace().Count(TraceKind::kBlock, producer->id()), 0);
  EXPECT_GT(rig.sim.trace().Count(TraceKind::kWake, producer->id()), 0);
  // Data flowed end to end and is conserved.
  EXPECT_GT(q->total_popped(), 0);
  EXPECT_EQ(q->total_pushed() - q->total_popped(), q->fill());
}

TEST(MachineTest, ConsumerBlocksOnEmptyQueue) {
  MachineRig rig;
  rig.sim.trace().SetEnabled(true);
  BoundedBuffer* q = rig.queues.CreateQueue("q", 1'000);
  rig.machine->Attach(q);
  SimThread* consumer =
      rig.threads.Create("consumer", std::make_unique<ConsumerWork>(q, 1'000));
  rig.machine->Attach(consumer);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(20));
  EXPECT_EQ(consumer->state(), ThreadState::kBlocked);
  EXPECT_EQ(rig.sim.trace().Count(TraceKind::kBlock, consumer->id()), 1);
  // An external push wakes it.
  q->TryPush(100);
  rig.sim.RunFor(Duration::Millis(5));
  EXPECT_GT(consumer->total_cycles(), 0);
}

TEST(MachineTest, SleepUntilWakesAtRequestedTick) {
  MachineRig rig;
  SimThread* t = rig.threads.Create("sleeper", std::make_unique<CpuHogWork>());
  rig.machine->Attach(t);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(2));
  t->set_state(ThreadState::kRunnable);
  rig.machine->SleepUntil(t, rig.sim.Now() + Duration::Millis(10));
  EXPECT_EQ(t->state(), ThreadState::kSleeping);
  const Cycles before = t->total_cycles();
  rig.sim.RunFor(Duration::Millis(5));
  EXPECT_EQ(t->total_cycles(), before);  // Still asleep.
  rig.sim.RunFor(Duration::Millis(10));
  EXPECT_GT(t->total_cycles(), before);  // Woke and ran.
}

TEST(MachineTest, CancelSleepWakesEarly) {
  MachineRig rig;
  SimThread* t = rig.threads.Create("sleeper", std::make_unique<CpuHogWork>());
  rig.machine->Attach(t);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(1));
  t->set_state(ThreadState::kRunnable);
  rig.machine->SleepUntil(t, rig.sim.Now() + Duration::Seconds(100));
  rig.machine->CancelSleep(t);
  EXPECT_EQ(t->state(), ThreadState::kRunnable);
  rig.sim.RunFor(Duration::Millis(5));
  EXPECT_GT(t->total_cycles(), 0);
}

TEST(MachineTest, CancelSleepOnRunnableIsNoOp) {
  MachineRig rig;
  SimThread* t = rig.threads.Create("t", std::make_unique<CpuHogWork>());
  rig.machine->Attach(t);
  rig.machine->CancelSleep(t);
  EXPECT_EQ(t->state(), ThreadState::kRunnable);
}

TEST(MachineTest, WakeOnNonBlockedIsSpurious) {
  MachineRig rig;
  SimThread* t = rig.threads.Create("t", std::make_unique<CpuHogWork>());
  rig.machine->Attach(t);
  rig.machine->Wake(t->id());  // Runnable already: no-op.
  EXPECT_EQ(t->state(), ThreadState::kRunnable);
  rig.machine->Wake(999);  // Unknown id: no-op.
}

TEST(MachineTest, ContextSwitchesCountedBetweenThreads) {
  MachineRig rig;
  SimThread* a = rig.threads.Create("a", std::make_unique<CpuHogWork>());
  SimThread* b = rig.threads.Create("b", std::make_unique<CpuHogWork>());
  rig.machine->Attach(a);
  rig.machine->Attach(b);
  rig.rbs.SetReservation(a, Proportion::Ppt(450), Duration::Millis(2), rig.sim.Now());
  rig.rbs.SetReservation(b, Proportion::Ppt(450), Duration::Millis(2), rig.sim.Now());
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(100));
  EXPECT_GT(rig.machine->context_switches(), 20);
  EXPECT_GT(rig.machine->dispatches(), rig.machine->context_switches());
}

TEST(MachineTest, ExitedThreadLeavesScheduler) {
  // A work model that runs once then exits.
  class OneShotWork : public WorkModel {
   public:
    RunResult Run(TimePoint, Cycles granted) override { return RunResult::Exited(granted); }
  };
  MachineRig rig;
  rig.sim.trace().SetEnabled(true);
  SimThread* t = rig.threads.Create("oneshot", std::make_unique<OneShotWork>());
  rig.machine->Attach(t);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(10));
  EXPECT_TRUE(t->HasExited());
  EXPECT_EQ(rig.sim.trace().Count(TraceKind::kExit, t->id()), 1);
  // Only the first tick's cycles were consumed.
  EXPECT_EQ(t->total_cycles(), rig.sim.cpu().DurationToCycles(Duration::Millis(1)));
}

}  // namespace
}  // namespace realrate
