// Machine: dispatch loop, blocking/waking through queues, sleep timers, overhead
// charging, context-switch accounting.
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "queue/bounded_buffer.h"
#include "queue/registry.h"
#include "sched/machine.h"
#include "sched/rbs.h"
#include "sim/simulator.h"
#include "task/registry.h"
#include "workloads/misc_work.h"
#include "workloads/producer_consumer.h"
#include "workloads/rate_schedule.h"

namespace realrate {
namespace {

struct MachineRig {
  Simulator sim;
  ThreadRegistry threads;
  RbsScheduler rbs{sim.cpu()};
  QueueRegistry queues;
  std::unique_ptr<Machine> machine;

  explicit MachineRig(bool charge_overheads = false) {
    machine = std::make_unique<Machine>(
        sim, rbs, threads,
        MachineConfig{.dispatch_interval = Duration::Millis(1),
                      .charge_overheads = charge_overheads});
  }
};

TEST(MachineTest, TicksAtDispatchInterval) {
  // Machine::RunFor (not raw Simulator::RunFor) so idle fast-forward settles its
  // catch-up before the counters are read.
  MachineRig rig;
  rig.machine->Start();
  rig.machine->RunFor(Duration::Millis(100));
  EXPECT_EQ(rig.machine->ticks(), 100);
}

TEST(MachineTest, IdleCpuChargedWhenNothingRunnable) {
  MachineRig rig;
  rig.machine->Start();
  rig.machine->RunFor(Duration::Millis(10));
  EXPECT_EQ(rig.sim.cpu().Used(CpuUse::kIdle), rig.sim.cpu().DurationToCycles(Duration::Millis(10)));
  EXPECT_EQ(rig.sim.cpu().Used(CpuUse::kUser), 0);
}

TEST(MachineTest, HogConsumesFullCapacityWithoutOverheads) {
  MachineRig rig;
  SimThread* hog = rig.threads.Create("hog", std::make_unique<CpuHogWork>());
  rig.machine->Attach(hog);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(50));
  EXPECT_EQ(hog->total_cycles(), rig.sim.cpu().DurationToCycles(Duration::Millis(50)));
}

TEST(MachineTest, OverheadsReduceUserCapacity) {
  MachineRig rig(/*charge_overheads=*/true);
  SimThread* hog = rig.threads.Create("hog", std::make_unique<CpuHogWork>());
  rig.machine->Attach(hog);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Seconds(1));
  const Cycles total = rig.sim.cpu().DurationToCycles(Duration::Seconds(1));
  EXPECT_LT(hog->total_cycles(), total);
  EXPECT_GT(hog->total_cycles(), total * 9 / 10);  // Overhead is small at 1 kHz.
  EXPECT_GT(rig.sim.cpu().Used(CpuUse::kDispatch), 0);
  EXPECT_GT(rig.sim.cpu().Used(CpuUse::kTimer), 0);
}

TEST(MachineTest, StealCyclesTaxesFollowingTicks) {
  MachineRig rig(/*charge_overheads=*/true);
  SimThread* hog = rig.threads.Create("hog", std::make_unique<CpuHogWork>());
  rig.machine->Attach(hog);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(10));
  const Cycles before = hog->total_cycles();
  // Steal two full ticks' worth of cycles for the "controller".
  rig.machine->StealCycles(CpuUse::kController, 800'000);
  rig.sim.RunFor(Duration::Millis(10));
  const Cycles gained = hog->total_cycles() - before;
  const Cycles ten_ms = rig.sim.cpu().DurationToCycles(Duration::Millis(10));
  EXPECT_LT(gained, ten_ms - 700'000);
  EXPECT_EQ(rig.sim.cpu().Used(CpuUse::kController), 800'000);
}

TEST(MachineTest, ProducerConsumerBlockAndWake) {
  MachineRig rig;
  rig.sim.trace().SetEnabled(true);
  BoundedBuffer* q = rig.queues.CreateQueue("q", 1'000);
  rig.machine->Attach(q);

  // Fast producer (fills the queue quickly), slow consumer.
  SimThread* producer = rig.threads.Create(
      "producer", std::make_unique<ProducerWork>(q, /*cycles_per_item=*/10'000,
                                                 RateSchedule(100.0)));
  SimThread* consumer = rig.threads.Create(
      "consumer", std::make_unique<ConsumerWork>(q, /*cycles_per_byte=*/1'000));
  rig.machine->Attach(producer);
  rig.machine->Attach(consumer);
  rig.rbs.SetReservation(producer, Proportion::Ppt(300), Duration::Millis(10), rig.sim.Now());
  rig.rbs.SetReservation(consumer, Proportion::Ppt(300), Duration::Millis(10), rig.sim.Now());

  rig.machine->Start();
  rig.sim.RunFor(Duration::Seconds(1));

  // The producer must have blocked on the full queue and been woken at least once.
  EXPECT_GT(rig.sim.trace().Count(TraceKind::kBlock, producer->id()), 0);
  EXPECT_GT(rig.sim.trace().Count(TraceKind::kWake, producer->id()), 0);
  // Data flowed end to end and is conserved.
  EXPECT_GT(q->total_popped(), 0);
  EXPECT_EQ(q->total_pushed() - q->total_popped(), q->fill());
}

TEST(MachineTest, ConsumerBlocksOnEmptyQueue) {
  MachineRig rig;
  rig.sim.trace().SetEnabled(true);
  BoundedBuffer* q = rig.queues.CreateQueue("q", 1'000);
  rig.machine->Attach(q);
  SimThread* consumer =
      rig.threads.Create("consumer", std::make_unique<ConsumerWork>(q, 1'000));
  rig.machine->Attach(consumer);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(20));
  EXPECT_EQ(consumer->state(), ThreadState::kBlocked);
  EXPECT_EQ(rig.sim.trace().Count(TraceKind::kBlock, consumer->id()), 1);
  // An external push wakes it.
  q->TryPush(100);
  rig.sim.RunFor(Duration::Millis(5));
  EXPECT_GT(consumer->total_cycles(), 0);
}

TEST(MachineTest, SleepUntilWakesAtRequestedTick) {
  MachineRig rig;
  SimThread* t = rig.threads.Create("sleeper", std::make_unique<CpuHogWork>());
  rig.machine->Attach(t);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(2));
  t->set_state(ThreadState::kRunnable);
  rig.machine->SleepUntil(t, rig.sim.Now() + Duration::Millis(10));
  EXPECT_EQ(t->state(), ThreadState::kSleeping);
  const Cycles before = t->total_cycles();
  rig.sim.RunFor(Duration::Millis(5));
  EXPECT_EQ(t->total_cycles(), before);  // Still asleep.
  rig.sim.RunFor(Duration::Millis(10));
  EXPECT_GT(t->total_cycles(), before);  // Woke and ran.
}

TEST(MachineTest, CancelSleepWakesEarly) {
  MachineRig rig;
  SimThread* t = rig.threads.Create("sleeper", std::make_unique<CpuHogWork>());
  rig.machine->Attach(t);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(1));
  t->set_state(ThreadState::kRunnable);
  rig.machine->SleepUntil(t, rig.sim.Now() + Duration::Seconds(100));
  rig.machine->CancelSleep(t);
  EXPECT_EQ(t->state(), ThreadState::kRunnable);
  rig.sim.RunFor(Duration::Millis(5));
  EXPECT_GT(t->total_cycles(), 0);
}

TEST(MachineTest, CancelSleepOnRunnableIsNoOp) {
  MachineRig rig;
  SimThread* t = rig.threads.Create("t", std::make_unique<CpuHogWork>());
  rig.machine->Attach(t);
  rig.machine->CancelSleep(t);
  EXPECT_EQ(t->state(), ThreadState::kRunnable);
}

TEST(MachineTest, WakeOnNonBlockedIsSpurious) {
  MachineRig rig;
  SimThread* t = rig.threads.Create("t", std::make_unique<CpuHogWork>());
  rig.machine->Attach(t);
  rig.machine->Wake(t->id());  // Runnable already: no-op.
  EXPECT_EQ(t->state(), ThreadState::kRunnable);
  rig.machine->Wake(999);  // Unknown id: no-op.
}

TEST(MachineTest, ContextSwitchesCountedBetweenThreads) {
  MachineRig rig;
  SimThread* a = rig.threads.Create("a", std::make_unique<CpuHogWork>());
  SimThread* b = rig.threads.Create("b", std::make_unique<CpuHogWork>());
  rig.machine->Attach(a);
  rig.machine->Attach(b);
  rig.rbs.SetReservation(a, Proportion::Ppt(450), Duration::Millis(2), rig.sim.Now());
  rig.rbs.SetReservation(b, Proportion::Ppt(450), Duration::Millis(2), rig.sim.Now());
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(100));
  EXPECT_GT(rig.machine->context_switches(), 20);
  EXPECT_GT(rig.machine->dispatches(), rig.machine->context_switches());
}

TEST(MachineTest, ExitedThreadLeavesScheduler) {
  // A work model that runs once then exits.
  class OneShotWork : public WorkModel {
   public:
    RunResult Run(TimePoint, Cycles granted) override { return RunResult::Exited(granted); }
  };
  MachineRig rig;
  rig.sim.trace().SetEnabled(true);
  SimThread* t = rig.threads.Create("oneshot", std::make_unique<OneShotWork>());
  rig.machine->Attach(t);
  rig.machine->Start();
  rig.sim.RunFor(Duration::Millis(10));
  EXPECT_TRUE(t->HasExited());
  EXPECT_EQ(rig.sim.trace().Count(TraceKind::kExit, t->id()), 1);
  // Only the first tick's cycles were consumed.
  EXPECT_EQ(t->total_cycles(), rig.sim.cpu().DurationToCycles(Duration::Millis(1)));
}

TEST(MachineIdleFastForwardTest, SuspendsWhenNothingRunnableAndCatchUpIsExact) {
  // An empty machine suspends its dispatch clocks after the first idle round; the
  // end-of-run catch-up must reproduce every counter and charge a continuously
  // ticking machine would show.
  MachineRig eager;
  eager.machine = std::make_unique<Machine>(
      eager.sim, eager.rbs, eager.threads,
      MachineConfig{.dispatch_interval = Duration::Millis(1),
                    .charge_overheads = true,
                    .idle_fast_forward = false});
  MachineRig fast(/*charge_overheads=*/true);

  for (MachineRig* rig : {&eager, &fast}) {
    rig->machine->Start();
    rig->machine->RunFor(Duration::Millis(500));
  }
  EXPECT_EQ(fast.machine->idle_suspended(), true);
  EXPECT_GT(fast.machine->idle_suspensions(), 0);
  EXPECT_EQ(eager.machine->idle_suspensions(), 0);
  // Identical introspection...
  EXPECT_EQ(fast.machine->ticks(), eager.machine->ticks());
  EXPECT_EQ(fast.machine->dispatches(), eager.machine->dispatches());
  // ...and identical accounting, category by category.
  for (const CpuUse use : {CpuUse::kIdle, CpuUse::kDispatch, CpuUse::kTimer, CpuUse::kUser}) {
    EXPECT_EQ(fast.sim.cpu().Used(use), eager.sim.cpu().Used(use))
        << "category " << static_cast<int>(use);
  }
  // But the suspended machine did it with a fraction of the simulator events.
  EXPECT_LT(fast.sim.events_processed(), eager.sim.events_processed() / 10);
}

TEST(MachineIdleFastForwardTest, SleeperHorizonWakesOnTimeAcrossSuspension) {
  // A reserved thread throttled to sleep is the idle-fast-forward steady state: the
  // machine must wake it at exactly the tick its period begins, via the horizon
  // event, with the same schedule as an eagerly ticking machine.
  auto run = [](bool ff) {
    MachineRig rig;
    rig.machine = std::make_unique<Machine>(
        rig.sim, rig.rbs, rig.threads,
        MachineConfig{.dispatch_interval = Duration::Millis(1),
                      .charge_overheads = false,
                      .idle_fast_forward = ff});
    rig.sim.trace().SetEnabled(true);
    SimThread* hog = rig.threads.Create("hog", std::make_unique<CpuHogWork>());
    rig.machine->Attach(hog);
    rig.rbs.SetReservation(hog, Proportion::Ppt(100), Duration::Millis(10), rig.sim.Now());
    rig.machine->Start();
    rig.machine->RunFor(Duration::Seconds(1));
    return std::pair<uint64_t, Cycles>(rig.sim.trace().Hash(), hog->total_cycles());
  };
  const auto fast = run(true);
  const auto eager = run(false);
  EXPECT_EQ(fast.first, eager.first);
  EXPECT_EQ(fast.second, eager.second);
}

TEST(MachineIdleFastForwardTest, OffGridStartKeepsSleeperWakesAligned) {
  // Regression: the horizon event used to round sleeper wake times up to a multiple
  // of the dispatch interval from simulator time zero, but the tick grid is anchored
  // at Machine::Start — a machine started off-grid (t = 0.5 ms here, ticks at
  // 0.5 + k ms) woke sleepers one interval late under fast-forward.
  auto run = [](bool ff) {
    MachineRig rig;
    rig.machine = std::make_unique<Machine>(
        rig.sim, rig.rbs, rig.threads,
        MachineConfig{.dispatch_interval = Duration::Millis(1),
                      .charge_overheads = false,
                      .idle_fast_forward = ff});
    SimThread* t = rig.threads.Create("sleeper", std::make_unique<CpuHogWork>());
    rig.machine->Attach(t);
    rig.sim.RunFor(Duration::Micros(500));  // Start off the ms grid.
    rig.machine->Start();
    rig.sim.RunFor(Duration::Micros(1800));  // Let a tick run, then sleep the thread.
    rig.machine->SleepUntil(t, TimePoint::FromNanos(10'300'000));
    rig.machine->RunFor(Duration::Millis(20));
    return t->last_wake_time();
  };
  const TimePoint fast = run(true);
  const TimePoint eager = run(false);
  EXPECT_EQ(fast, eager);
  // The servicing tick is the machine's own grid point at/after the wake time.
  EXPECT_EQ(eager, TimePoint::FromNanos(10'500'000));
}

TEST(MachineIdleFastForwardTest, ExternalWakeResumesSuspendedMachine) {
  // Fully quiescent suspension (no sleepers, no horizon event): an external queue
  // push must restart the dispatch clocks at the next tick boundary.
  MachineRig rig;
  rig.sim.trace().SetEnabled(true);
  BoundedBuffer* q = rig.queues.CreateQueue("q", 1'000);
  rig.machine->Attach(q);
  SimThread* consumer =
      rig.threads.Create("consumer", std::make_unique<ConsumerWork>(q, 1'000));
  rig.machine->Attach(consumer);
  rig.machine->Start();
  rig.machine->RunFor(Duration::Millis(20));
  EXPECT_EQ(consumer->state(), ThreadState::kBlocked);
  EXPECT_TRUE(rig.machine->idle_suspended());
  EXPECT_EQ(rig.sim.pending_events(), 0u);  // No per-tick callbacks burning events.
  q->TryPush(100);
  EXPECT_FALSE(rig.machine->idle_suspended());
  rig.machine->RunFor(Duration::Millis(5));
  EXPECT_GT(consumer->total_cycles(), 0);
}

}  // namespace
}  // namespace realrate
