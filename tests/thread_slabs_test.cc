// Hot-field slabs and thread arena (task/thread_slabs.h): Bind/Release slot
// lifecycle, write-through mirroring, migration slot stability, scheduler removal
// mid-run, kAuto index activation, and the trace recorder's hash-only mode the
// farm scenarios lean on.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sched/machine.h"
#include "sched/rbs.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "task/registry.h"
#include "task/thread.h"
#include "task/thread_slabs.h"
#include "workloads/misc_work.h"

namespace realrate {
namespace {

// Arena-backed threads bound to a standalone slab set (no registry), so the tests
// can exercise Release — the registry itself never releases slots.
struct SlabRig {
  ThreadArena arena;
  ThreadSlabs slabs;
  std::vector<SimThread*> threads;

  SimThread* Spawn() {
    const auto id = static_cast<ThreadId>(arena.size());
    SimThread* t = arena.Create(id, "t" + std::to_string(id),
                                std::make_unique<CpuHogWork>());
    slabs.Bind(t);
    threads.push_back(t);
    return t;
  }
};

TEST(ThreadSlabsTest, BindSeedsColumnsFromObject) {
  SlabRig rig;
  SimThread* t = rig.arena.Create(0, "seeded", std::make_unique<CpuHogWork>());
  t->set_policy(SchedPolicy::kReservation);
  t->SetReservation(Proportion::Ppt(250), Duration::Millis(20));
  t->set_cpu(3);
  t->set_state(ThreadState::kRunnable);

  const int32_t slot = rig.slabs.Bind(t);
  EXPECT_EQ(slot, t->slab_slot());
  EXPECT_EQ(t->bound_slabs(), &rig.slabs);
  EXPECT_EQ(rig.slabs.thread_at(slot), t);
  EXPECT_EQ(rig.slabs.slot_of(t->id()), slot);
  EXPECT_EQ(rig.slabs.state(slot), ThreadState::kRunnable);
  EXPECT_EQ(rig.slabs.policy(slot), SchedPolicy::kReservation);
  EXPECT_EQ(rig.slabs.cpu(slot), 3);
  EXPECT_EQ(rig.slabs.granted_ppt(slot), 250);
  EXPECT_EQ(rig.slabs.rm_rank(slot), PeriodRank(Duration::Millis(20)));
  EXPECT_EQ(rig.slabs.deadline_nanos(slot), (t->period_start() + t->period()).nanos());
  EXPECT_TRUE(rig.slabs.MatchesObject(*t));
}

TEST(ThreadSlabsTest, SettersWriteThroughToColumns) {
  SlabRig rig;
  SimThread* t = rig.Spawn();
  const int32_t slot = t->slab_slot();

  t->set_state(ThreadState::kSleeping);
  EXPECT_EQ(rig.slabs.state(slot), ThreadState::kSleeping);
  t->set_cpu(5);
  EXPECT_EQ(rig.slabs.cpu(slot), 5);
  t->set_policy(SchedPolicy::kReservation);
  t->SetReservation(Proportion::Ppt(77), Duration::Millis(7));
  EXPECT_EQ(rig.slabs.granted_ppt(slot), 77);
  EXPECT_EQ(rig.slabs.rm_rank(slot), PeriodRank(Duration::Millis(7)));
  t->set_importance(4.5);
  EXPECT_EQ(rig.slabs.importance(slot), 4.5);
  EXPECT_TRUE(rig.slabs.MatchesObject(*t));
}

TEST(ThreadSlabsTest, RunnableCountTracksStateColumn) {
  SlabRig rig;
  SimThread* a = rig.Spawn();
  SimThread* b = rig.Spawn();
  a->set_state(ThreadState::kRunnable);
  b->set_state(ThreadState::kRunnable);
  EXPECT_EQ(rig.slabs.runnable_count(), 2);
  a->set_state(ThreadState::kBlocked);
  EXPECT_EQ(rig.slabs.runnable_count(), 1);
  rig.slabs.Release(b);
  EXPECT_EQ(rig.slabs.runnable_count(), 0);
}

TEST(ThreadSlabsTest, ReleaseRecyclesSlotsLifoAndLeavesOthersIntact) {
  SlabRig rig;
  for (int i = 0; i < 4; ++i) {
    SimThread* t = rig.Spawn();
    t->set_policy(SchedPolicy::kReservation);
    t->SetReservation(Proportion::Ppt(10 + i), Duration::Millis(10));
  }
  const int32_t slot1 = rig.threads[1]->slab_slot();
  const int32_t slot2 = rig.threads[2]->slab_slot();

  rig.slabs.Release(rig.threads[1]);
  rig.slabs.Release(rig.threads[2]);
  EXPECT_EQ(rig.threads[1]->bound_slabs(), nullptr);
  EXPECT_EQ(rig.threads[1]->slab_slot(), ThreadSlabs::kNoSlot);
  // Freed slots read inert, so sweeps skip them by predicate.
  EXPECT_EQ(rig.slabs.state(slot1), ThreadState::kExited);
  EXPECT_EQ(rig.slabs.granted_ppt(slot1), 0);
  EXPECT_EQ(rig.slabs.thread_at(slot1), nullptr);
  // Survivors' slots and columns are untouched.
  EXPECT_EQ(rig.threads[0]->slab_slot(), 0);
  EXPECT_EQ(rig.threads[3]->slab_slot(), 3);
  EXPECT_EQ(rig.slabs.granted_ppt(rig.threads[3]->slab_slot()), 13);
  EXPECT_EQ(rig.slabs.live_count(), 2);

  // LIFO recycling: the most recently freed slot is handed out first, and the
  // slab does not grow while free slots exist.
  const int32_t before = rig.slabs.slot_count();
  SimThread* x = rig.Spawn();
  SimThread* y = rig.Spawn();
  EXPECT_EQ(x->slab_slot(), slot2);
  EXPECT_EQ(y->slab_slot(), slot1);
  EXPECT_EQ(rig.slabs.slot_count(), before);
}

TEST(ThreadSlabsTest, FourThousandThreadChurnKeepsBindingsCoherent) {
  SlabRig rig;
  constexpr int kTotal = 4096;
  for (int i = 0; i < kTotal; ++i) {
    SimThread* t = rig.Spawn();
    t->set_state(i % 2 == 0 ? ThreadState::kRunnable : ThreadState::kBlocked);
  }
  EXPECT_EQ(rig.slabs.live_count(), kTotal);

  // Release every third thread, then bind the same number of fresh ones: the slab
  // must recycle every hole before growing, and every binding must stay coherent.
  int released = 0;
  for (int i = 0; i < kTotal; i += 3) {
    rig.slabs.Release(rig.threads[static_cast<size_t>(i)]);
    ++released;
  }
  EXPECT_EQ(rig.slabs.live_count(), kTotal - released);
  const int32_t peak = rig.slabs.slot_count();
  for (int i = 0; i < released; ++i) {
    rig.Spawn();
  }
  EXPECT_EQ(rig.slabs.slot_count(), peak);
  EXPECT_EQ(rig.slabs.live_count(), kTotal);

  int32_t live_by_scan = 0;
  for (int32_t s = 0; s < rig.slabs.slot_count(); ++s) {
    SimThread* t = rig.slabs.thread_at(s);
    if (t == nullptr) {
      continue;
    }
    ++live_by_scan;
    ASSERT_EQ(t->slab_slot(), s);
    ASSERT_EQ(rig.slabs.slot_of(t->id()), s);
    ASSERT_TRUE(rig.slabs.MatchesObject(*t));
  }
  EXPECT_EQ(live_by_scan, kTotal);
}

TEST(ThreadSlabsTest, MigrationRewritesCpuColumnWithoutMovingSlot) {
  // The Machine moves slots between cores by rewriting the cpu column; the slot
  // (and everything else in it) must not move.
  Simulator sim(CpuConfig{}, 2);
  ThreadRegistry threads;
  std::vector<std::unique_ptr<RbsScheduler>> schedulers;
  std::vector<Scheduler*> raw;
  for (CpuId c = 0; c < 2; ++c) {
    schedulers.push_back(std::make_unique<RbsScheduler>(sim.cpu(c)));
    raw.push_back(schedulers.back().get());
  }
  Machine machine(sim, raw, threads, MachineConfig{});
  SimThread* t = threads.Create("mover", std::make_unique<CpuHogWork>());
  machine.Attach(t);

  ThreadSlabs* slabs = threads.slabs();
  ASSERT_NE(slabs, nullptr);
  const int32_t slot = t->slab_slot();
  const CpuId from = t->cpu();
  const CpuId to = from == 0 ? 1 : 0;
  machine.Migrate(t, to);
  EXPECT_EQ(t->slab_slot(), slot);
  EXPECT_EQ(slabs->cpu(slot), to);
  EXPECT_EQ(slabs->thread_at(slot), t);
  EXPECT_TRUE(slabs->MatchesObject(*t));
}

TEST(ThreadSlabsTest, SchedulerRemoveMidRunKeepsSlabBindingAndReindexes) {
  // RemoveThread takes a thread out of the run queue mid-run; the registry keeps
  // the slab binding (slot == id is the registry's contract), and a later pick
  // must not return the removed thread.
  Simulator sim;
  ThreadRegistry threads;
  RbsConfig config;
  config.pick_mode = PickMode::kIndexed;
  RbsScheduler rbs(sim.cpu(), config);
  std::vector<SimThread*> all;
  for (int i = 0; i < 8; ++i) {
    SimThread* t = threads.Create("t" + std::to_string(i), std::make_unique<CpuHogWork>());
    rbs.AddThread(t);
    rbs.SetReservation(t, Proportion::Ppt(10), Duration::Millis(10 + i), sim.Now());
    all.push_back(t);
  }
  SimThread* victim = rbs.PickNext(sim.Now());
  ASSERT_NE(victim, nullptr);
  rbs.RemoveThread(victim);
  EXPECT_EQ(victim->slab_slot(), static_cast<int32_t>(victim->id()));
  for (int i = 0; i < 8; ++i) {
    SimThread* pick = rbs.PickNext(sim.Now());
    ASSERT_NE(pick, nullptr);
    EXPECT_NE(pick, victim);
  }
}

TEST(ThreadSlabsTest, AutoPickModeActivatesAndDeactivatesWithHysteresis) {
  Simulator sim;
  ThreadRegistry threads;
  RbsConfig config;
  config.pick_mode = PickMode::kAuto;
  config.auto_index_threshold = 16;
  RbsScheduler rbs(sim.cpu(), config);
  std::vector<SimThread*> all;
  for (int i = 0; i < 15; ++i) {
    SimThread* t = threads.Create("t" + std::to_string(i), std::make_unique<CpuHogWork>());
    rbs.AddThread(t);
    all.push_back(t);
  }
  EXPECT_FALSE(rbs.indexing_active());  // Below threshold: reference scan.
  SimThread* extra = threads.Create("extra", std::make_unique<CpuHogWork>());
  rbs.AddThread(extra);
  all.push_back(extra);
  EXPECT_TRUE(rbs.indexing_active());  // Crossed the threshold.

  // Hysteresis: stays on until the population falls below threshold / 2.
  while (all.size() > 8) {
    rbs.RemoveThread(all.back());
    all.pop_back();
  }
  EXPECT_TRUE(rbs.indexing_active());
  rbs.RemoveThread(all.back());
  all.pop_back();
  EXPECT_FALSE(rbs.indexing_active());
}

TEST(ThreadSlabsTest, TraceHashOnlyModeFoldsTheIdenticalHash) {
  // The farm scenarios run the recorder in hash-only mode; the pinned golden
  // hashes are only meaningful if that fold is bit-identical to full mode.
  TraceRecorder full;
  TraceRecorder hash_only;
  full.SetEnabled(true);
  hash_only.SetEnabled(true);
  hash_only.SetHashOnly(true);
  for (int i = 0; i < 100; ++i) {
    const TimePoint t = TimePoint{} + Duration::Millis(i);
    full.Record(t, TraceKind::kDispatch, i % 7, i, i * 2);
    hash_only.Record(t, TraceKind::kDispatch, i % 7, i, i * 2);
  }
  EXPECT_EQ(full.events().size(), 100u);
  EXPECT_TRUE(hash_only.events().empty());
  EXPECT_EQ(full.Hash(), hash_only.Hash());
  EXPECT_EQ(full.Hash(), full.HashScan());  // The incremental fold vs the oracle.
}

}  // namespace
}  // namespace realrate
