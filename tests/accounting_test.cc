// CPU accounting identities: every cycle of simulated time lands in exactly one
// accounting category, across scheduler types and load mixes.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "exp/system.h"
#include "workloads/misc_work.h"
#include "workloads/producer_consumer.h"
#include "workloads/rate_schedule.h"

namespace realrate {
namespace {

Cycles TotalAccounted(const Cpu& cpu) {
  return cpu.Used(CpuUse::kUser) + cpu.Used(CpuUse::kDispatch) + cpu.Used(CpuUse::kTimer) +
         cpu.Used(CpuUse::kController) + cpu.Used(CpuUse::kIdle);
}

class AccountingIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(AccountingIdentityTest, EveryCycleAccountedOnce) {
  // Parameter selects the load mix.
  const int mix = GetParam();
  System system;
  switch (mix) {
    case 0:
      break;  // Idle machine.
    case 1:
      system.controller().AddMiscellaneous(
          system.Spawn("hog", std::make_unique<CpuHogWork>()));
      break;
    case 2: {
      for (int i = 0; i < 3; ++i) {
        system.controller().AddMiscellaneous(
            system.Spawn("hog" + std::to_string(i), std::make_unique<CpuHogWork>()));
      }
      break;
    }
    case 3: {
      BoundedBuffer* q = system.CreateQueue("q", 4'000);
      SimThread* p = system.Spawn(
          "p", std::make_unique<ProducerWork>(q, 400'000, RateSchedule(100.0)));
      SimThread* c = system.Spawn("c", std::make_unique<ConsumerWork>(q, 2'000));
      system.queues().Register(q, p->id(), QueueRole::kProducer);
      system.queues().Register(q, c->id(), QueueRole::kConsumer);
      system.controller().AddRealTime(p, Proportion::Ppt(50), Duration::Millis(10));
      system.controller().AddRealRate(c);
      break;
    }
    default:
      FAIL();
  }

  const Duration run = Duration::Seconds(2);
  system.Start();
  system.RunFor(run);

  // Identity: every cycle of wall time appears in exactly one category. The controller
  // charges through StealCycles, which defers consumption into subsequent ticks, so
  // allow one tick of in-flight backlog.
  const Cycles wall = system.sim().cpu().DurationToCycles(run);
  const Cycles accounted = TotalAccounted(system.sim().cpu());
  EXPECT_GE(accounted, wall - system.machine().cycles_per_tick());
  // Over-accounting can only come from the same in-flight backlog.
  EXPECT_LE(accounted, wall + system.machine().cycles_per_tick() +
                           system.sim().cpu().ControllerCost(4));
}

INSTANTIATE_TEST_SUITE_P(Mixes, AccountingIdentityTest, ::testing::Values(0, 1, 2, 3));

TEST(AccountingTest, IdleMachineIsAllIdlePlusOverheads) {
  System system;
  system.Start();
  system.RunFor(Duration::Seconds(1));
  const Cpu& cpu = system.sim().cpu();
  EXPECT_EQ(cpu.Used(CpuUse::kUser), 0);
  EXPECT_GT(cpu.Used(CpuUse::kIdle), 0);
  EXPECT_GT(cpu.Used(CpuUse::kController), 0);  // The controller still runs.
  EXPECT_GT(cpu.Used(CpuUse::kTimer), 0);
  EXPECT_GT(cpu.Used(CpuUse::kDispatch), 0);
}

TEST(AccountingTest, BusyMachineHasLittleIdleOnceRamped) {
  System system;
  SimThread* hog = system.Spawn("hog", std::make_unique<CpuHogWork>());
  system.controller().AddMiscellaneous(hog);
  system.Start();
  system.RunFor(Duration::Seconds(8));  // Let the constant-pressure ramp finish.
  const Cycles user_before = system.sim().cpu().Used(CpuUse::kUser);
  system.RunFor(Duration::Seconds(1));
  // Once the hog's allocation has ramped to the ceiling (0.95), it consumes most of
  // every second; the rest is the reserved spare capacity plus overheads.
  const Cycles user_gained = system.sim().cpu().Used(CpuUse::kUser) - user_before;
  const Cycles wall = system.sim().cpu().DurationToCycles(Duration::Seconds(1));
  EXPECT_GT(user_gained, wall * 85 / 100);
}

TEST(AccountingTest, OverheadCategoriesScaleWithLoad) {
  // More threads blocking/waking => more timer and dispatch work.
  auto run = [](int pairs) {
    System system;
    for (int i = 0; i < pairs; ++i) {
      BoundedBuffer* q = system.CreateQueue("q" + std::to_string(i), 2'000);
      SimThread* p = system.Spawn(
          "p" + std::to_string(i),
          std::make_unique<ProducerWork>(q, 100'000, RateSchedule(100.0)));
      SimThread* c =
          system.Spawn("c" + std::to_string(i), std::make_unique<ConsumerWork>(q, 500));
      system.queues().Register(q, p->id(), QueueRole::kProducer);
      system.queues().Register(q, c->id(), QueueRole::kConsumer);
      system.controller().AddRealTime(p, Proportion::Ppt(50), Duration::Millis(10));
      system.controller().AddRealRate(c);
    }
    system.Start();
    system.RunFor(Duration::Seconds(1));
    return system.sim().cpu().Used(CpuUse::kTimer) +
           system.sim().cpu().Used(CpuUse::kDispatch);
  };
  EXPECT_GT(run(4), run(1));
}

}  // namespace
}  // namespace realrate
