// Unit tests for the control laws: pressure computation (Fig. 3), proportion
// estimation (Fig. 4), period-estimation heuristic, and the squish policy.
#include <gtest/gtest.h>

#include "core/overload.h"
#include "core/period_estimator.h"
#include "core/pressure.h"
#include "core/proportion_estimator.h"
#include "queue/registry.h"

namespace realrate {
namespace {

constexpr double kDt = 0.01;

// --- Pressure (Figure 3) ---

TEST(PressureTest, ConsumerOfFullQueueHasMaxPositivePressure) {
  QueueRegistry reg;
  BoundedBuffer* q = reg.CreateQueue("q", 100);
  q->TryPush(100);
  reg.Register(q, 1, QueueRole::kConsumer);
  EXPECT_DOUBLE_EQ(RawPressure(reg, 1), 0.5);
}

TEST(PressureTest, ProducerOfFullQueueHasMaxNegativePressure) {
  QueueRegistry reg;
  BoundedBuffer* q = reg.CreateQueue("q", 100);
  q->TryPush(100);
  reg.Register(q, 1, QueueRole::kProducer);
  EXPECT_DOUBLE_EQ(RawPressure(reg, 1), -0.5);
}

TEST(PressureTest, HalfFullIsZeroForBothRoles) {
  QueueRegistry reg;
  BoundedBuffer* q = reg.CreateQueue("q", 100);
  q->TryPush(50);
  reg.Register(q, 1, QueueRole::kConsumer);
  reg.Register(q, 2, QueueRole::kProducer);
  EXPECT_DOUBLE_EQ(RawPressure(reg, 1), 0.0);
  EXPECT_DOUBLE_EQ(RawPressure(reg, 2), 0.0);
}

TEST(PressureTest, EmptyQueuePushesProducerForward) {
  QueueRegistry reg;
  BoundedBuffer* q = reg.CreateQueue("q", 100);
  reg.Register(q, 1, QueueRole::kProducer);
  reg.Register(q, 2, QueueRole::kConsumer);
  EXPECT_DOUBLE_EQ(RawPressure(reg, 1), 0.5);   // Producer should speed up.
  EXPECT_DOUBLE_EQ(RawPressure(reg, 2), -0.5);  // Consumer should slow down.
}

TEST(PressureTest, PipelineStageSumsBothQueues) {
  QueueRegistry reg;
  BoundedBuffer* in = reg.CreateQueue("in", 100);
  BoundedBuffer* out = reg.CreateQueue("out", 100);
  in->TryPush(100);  // Input full: +1/2 as consumer.
  // Output empty: +1/2 as producer.
  reg.Register(in, 1, QueueRole::kConsumer);
  reg.Register(out, 1, QueueRole::kProducer);
  EXPECT_DOUBLE_EQ(RawPressure(reg, 1), 1.0);
}

TEST(PressureTest, UnregisteredThreadHasZeroPressure) {
  QueueRegistry reg;
  EXPECT_DOUBLE_EQ(RawPressure(reg, 42), 0.0);
}

// --- Proportion estimation (Figure 4) ---

ProportionEstimatorConfig TestConfig() {
  ProportionEstimatorConfig config;
  config.min_fraction = 0.005;
  config.max_fraction = 0.95;
  return config;
}

TEST(ProportionEstimatorTest, PositivePressureGrowsAllocation) {
  ProportionEstimator est(TestConfig());
  double desired = 0.0;
  for (int i = 0; i < 50; ++i) {
    desired = est.Step(/*pressure=*/0.4, /*used_fraction=*/desired, /*granted=*/desired, kDt);
  }
  EXPECT_GT(desired, 0.1);
}

TEST(ProportionEstimatorTest, NegativePressureShrinksAllocation) {
  ProportionEstimator est(TestConfig());
  for (int i = 0; i < 50; ++i) {
    est.Step(0.4, est.desired(), est.desired(), kDt);
  }
  const double high = est.desired();
  for (int i = 0; i < 50; ++i) {
    est.Step(-0.4, est.desired(), est.desired(), kDt);
  }
  EXPECT_LT(est.desired(), high);
}

TEST(ProportionEstimatorTest, ClampsToFloorAndCeiling) {
  ProportionEstimator est(TestConfig());
  for (int i = 0; i < 2000; ++i) {
    est.Step(0.5, est.desired(), est.desired(), kDt);
  }
  EXPECT_LE(est.desired(), 0.95);
  ProportionEstimator shrink(TestConfig());
  for (int i = 0; i < 2000; ++i) {
    shrink.Step(-0.5, shrink.desired(), shrink.desired(), kDt);
  }
  EXPECT_GE(shrink.desired(), 0.005);
}

TEST(ProportionEstimatorTest, ReclaimTriggersAfterPatience) {
  ProportionEstimatorConfig config = TestConfig();
  config.reclaim_patience = 3;
  config.reclaim_step = 0.01;
  ProportionEstimator est(config);
  // Pump the allocation up.
  for (int i = 0; i < 100; ++i) {
    est.Step(0.4, est.desired(), est.desired(), kDt);
  }
  const double inflated = est.desired();
  ASSERT_GT(inflated, 0.1);
  // Now the thread uses almost nothing (a bottleneck elsewhere). Zero pressure keeps
  // the PID from changing its mind; the usage comparison must claw back allocation.
  int reclaims = 0;
  for (int i = 0; i < 30; ++i) {
    est.Step(0.0, /*used_fraction=*/0.0, /*granted=*/inflated, kDt);
    reclaims += est.reclaimed_last_step() ? 1 : 0;
  }
  EXPECT_GE(reclaims, 5);  // Every `patience` steps.
  EXPECT_LT(est.desired(), inflated);
}

TEST(ProportionEstimatorTest, NoReclaimWhenAllocationIsUsed) {
  ProportionEstimatorConfig config = TestConfig();
  ProportionEstimator est(config);
  for (int i = 0; i < 100; ++i) {
    // Fully used allocation: never "too generous".
    est.Step(0.1, /*used_fraction=*/est.desired(), /*granted=*/est.desired(), kDt);
    EXPECT_FALSE(est.reclaimed_last_step());
  }
}

TEST(ProportionEstimatorTest, ReclaimIsBumpless) {
  ProportionEstimatorConfig config = TestConfig();
  config.reclaim_patience = 1;
  ProportionEstimator est(config);
  for (int i = 0; i < 100; ++i) {
    est.Step(0.4, est.desired(), est.desired(), kDt);
  }
  // Let the input low-pass filter drain at zero pressure (full use, so no reclaim yet)
  // so the continuity check below isn't confounded by filter memory.
  for (int i = 0; i < 50; ++i) {
    est.Step(0.0, est.desired(), est.desired(), kDt);
  }
  est.Step(0.0, 0.0, est.desired(), kDt);  // Forces the reclaim branch.
  const double after_reclaim = est.desired();
  // The next on-target step must continue from the reduced value (modulo a small
  // derivative transient), not bounce back to the inflated one.
  est.Step(0.0, after_reclaim, after_reclaim, kDt);
  EXPECT_LE(est.desired(), after_reclaim + 0.02);
  EXPECT_GE(est.desired(), after_reclaim - 0.1);
}

TEST(ProportionEstimatorTest, ResetRestoresFloor) {
  ProportionEstimator est(TestConfig());
  for (int i = 0; i < 100; ++i) {
    est.Step(0.4, est.desired(), est.desired(), kDt);
  }
  est.Reset();
  EXPECT_DOUBLE_EQ(est.desired(), 0.005);
}

// --- Period estimation (§3.3) ---

TEST(PeriodEstimatorTest, SmallProportionDoublesPeriod) {
  PeriodEstimator est(PeriodEstimatorConfig{});
  const Duration proposed = est.Propose(Duration::Millis(30), /*allocation=*/0.01);
  EXPECT_EQ(proposed, Duration::Millis(60));
}

TEST(PeriodEstimatorTest, PeriodCappedAtMax) {
  PeriodEstimatorConfig config;
  config.max_period = Duration::Millis(100);
  PeriodEstimator est(config);
  EXPECT_EQ(est.Propose(Duration::Millis(80), 0.01), Duration::Millis(100));
}

TEST(PeriodEstimatorTest, JitterHalvesPeriod) {
  PeriodEstimatorConfig config;
  config.window = 4;
  config.jitter_threshold = 0.25;
  PeriodEstimator est(config);
  for (int i = 0; i < 4; ++i) {
    est.ObserveFillSwing(0.6);
  }
  EXPECT_EQ(est.Propose(Duration::Millis(40), 0.2), Duration::Millis(20));
}

TEST(PeriodEstimatorTest, JitterTakesPrecedenceOverQuantization) {
  PeriodEstimatorConfig config;
  config.window = 2;
  PeriodEstimator est(config);
  est.ObserveFillSwing(0.9);
  est.ObserveFillSwing(0.9);
  // Small allocation would double, but jitter wins and halves.
  EXPECT_EQ(est.Propose(Duration::Millis(40), 0.01), Duration::Millis(20));
}

TEST(PeriodEstimatorTest, SteadyAdequateThreadKeepsPeriod) {
  PeriodEstimator est(PeriodEstimatorConfig{});
  est.ObserveFillSwing(0.05);
  EXPECT_EQ(est.Propose(Duration::Millis(30), 0.2), Duration::Millis(30));
}

TEST(PeriodEstimatorTest, PeriodFlooredAtMin) {
  PeriodEstimatorConfig config;
  config.window = 1;
  config.min_period = Duration::Millis(10);
  PeriodEstimator est(config);
  est.ObserveFillSwing(0.9);
  EXPECT_EQ(est.Propose(Duration::Millis(15), 0.5), Duration::Millis(10));
}

// --- Squish (overload policy) ---

TEST(SquishTest, UnderCapacityGrantsEverything) {
  const auto grants = Squish({{1, 0.3, 1.0, 0.01}, {2, 0.4, 1.0, 0.01}}, 0.9);
  EXPECT_DOUBLE_EQ(grants[0].granted, 0.3);
  EXPECT_DOUBLE_EQ(grants[1].granted, 0.4);
}

TEST(SquishTest, ProportionalSquishWithEqualImportance) {
  // Two equal threads wanting 0.6 each into 0.9: each gets 0.45.
  const auto grants = Squish({{1, 0.6, 1.0, 0.01}, {2, 0.6, 1.0, 0.01}}, 0.9);
  EXPECT_NEAR(grants[0].granted, 0.45, 1e-9);
  EXPECT_NEAR(grants[1].granted, 0.45, 1e-9);
}

TEST(SquishTest, SumNeverExceedsAvailable) {
  const auto grants =
      Squish({{1, 0.9, 1.0, 0.005}, {2, 0.8, 2.0, 0.005}, {3, 0.7, 0.5, 0.005}}, 0.9);
  double sum = 0.0;
  for (const auto& g : grants) {
    sum += g.granted;
  }
  EXPECT_LE(sum, 0.9 + 1e-9);
}

TEST(SquishTest, ImportanceWeightsTheReduction) {
  // "For two jobs that both desire more than the available CPU, the more important job
  // will end up with the higher percentage."
  const auto grants = Squish({{1, 0.9, 4.0, 0.005}, {2, 0.9, 1.0, 0.005}}, 0.9);
  EXPECT_GT(grants[0].granted, grants[1].granted);
  // Reductions are proportional to desired/importance: r1/r2 == (1/4).
  const double r1 = 0.9 - grants[0].granted;
  const double r2 = 0.9 - grants[1].granted;
  EXPECT_NEAR(r1 / r2, 0.25, 1e-6);
}

TEST(SquishTest, MoreImportantCannotStarveLesser) {
  // Importance is not priority: the lesser job keeps at least its floor.
  const auto grants = Squish({{1, 0.9, 100.0, 0.01}, {2, 0.9, 1.0, 0.01}}, 0.5);
  EXPECT_GE(grants[1].granted, 0.01 - 1e-12);
  EXPECT_GT(grants[0].granted, grants[1].granted);
}

TEST(SquishTest, FloorExcessRedistributes) {
  // Thread 1 pinned at its floor; thread 2 absorbs the rest of the reduction but the
  // sum still lands on the budget.
  const auto grants = Squish({{1, 0.1, 1.0, 0.09}, {2, 0.9, 1.0, 0.005}}, 0.5);
  double sum = 0.0;
  for (const auto& g : grants) {
    sum += g.granted;
  }
  EXPECT_NEAR(sum, 0.5, 1e-6);
  EXPECT_GE(grants[0].granted, 0.09 - 1e-12);
}

TEST(SquishTest, GrantedNeverExceedsDesired) {
  const auto grants = Squish({{1, 0.2, 1.0, 0.01}, {2, 0.9, 1.0, 0.01}}, 0.5);
  EXPECT_LE(grants[0].granted, 0.2 + 1e-12);
  EXPECT_LE(grants[1].granted, 0.9 + 1e-12);
}

TEST(SquishTest, EmptyRequestsOk) {
  EXPECT_TRUE(Squish({}, 0.9).empty());
}

TEST(AdmissionTest, AcceptsWithinThresholdRejectsBeyond) {
  EXPECT_TRUE(AdmitRealTime(0.5, 0.4, 0.95));
  EXPECT_TRUE(AdmitRealTime(0.5, 0.45, 0.95));
  EXPECT_FALSE(AdmitRealTime(0.5, 0.46, 0.95));
  EXPECT_TRUE(AdmitRealTime(0.0, 0.0, 0.95));
}

}  // namespace
}  // namespace realrate
