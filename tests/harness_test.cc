// The src/harness subsystem: invariant oracle (catches injected violations, stays
// silent on healthy machines, perturbs nothing), seeded workload generator
// (replayable, feasible by construction), and the differential runner.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/system.h"
#include "harness/differential.h"
#include "harness/invariants.h"
#include "harness/workload_gen.h"
#include "sched/lottery.h"
#include "sched/rbs.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "task/registry.h"
#include "workloads/misc_work.h"
#include "workloads/producer_consumer.h"

namespace realrate {
namespace {

// ---------------------------------------------------------------------------
// Invariant oracle.
// ---------------------------------------------------------------------------

TEST(InvariantOracleTest, CatchesInjectedProportionOverAllocation) {
  // Two 60% reservations forced onto the one core through the scheduler's raw
  // actuation interface, bypassing the controller's admission control — the oracle
  // must flag the infeasible 120% sum at the next tick.
  Simulator sim;
  ThreadRegistry threads;
  RbsScheduler rbs{sim.cpu()};
  Machine machine(sim, rbs, threads);
  InvariantOracle oracle;
  oracle.Observe(machine, /*queues=*/nullptr);

  SimThread* a = threads.Create("a", std::make_unique<CpuHogWork>());
  SimThread* b = threads.Create("b", std::make_unique<CpuHogWork>());
  machine.Attach(a);
  machine.Attach(b);
  rbs.SetReservation(a, Proportion::Ppt(600), Duration::Millis(10), sim.Now());
  rbs.SetReservation(b, Proportion::Ppt(600), Duration::Millis(10), sim.Now());

  machine.Start();
  sim.RunFor(Duration::Millis(50));

  EXPECT_FALSE(oracle.ok());
  EXPECT_GT(oracle.violation_count(), 0);
  ASSERT_FALSE(oracle.violations().empty());
  EXPECT_NE(oracle.violations().front().message.find("over-allocated"), std::string::npos);
  EXPECT_NE(oracle.Summary().find("over-allocated"), std::string::npos);
}

// A scheduler that hands the machine a thread it just marked blocked — the
// "dispatching a non-runnable thread" bug class the oracle must catch.
class LyingScheduler : public Scheduler {
 public:
  const char* name() const override { return "lying"; }
  void AddThread(SimThread* thread) override { threads_.push_back(thread); }
  void RemoveThread(SimThread* /*thread*/) override {}
  void OnTick(TimePoint /*now*/) override {}
  SimThread* PickNext(TimePoint /*now*/) override {
    for (SimThread* t : threads_) {
      if (t->IsRunnable() || t->state() == ThreadState::kBlocked) {
        t->set_state(ThreadState::kBlocked);
        return t;
      }
    }
    return nullptr;
  }
  Cycles MaxGrant(SimThread* /*thread*/, Cycles tick_remaining) override {
    return tick_remaining;
  }
  void OnRan(SimThread* /*thread*/, Cycles /*used*/, TimePoint /*now*/) override {}
  std::optional<TimePoint> ThrottleUntil(SimThread* /*thread*/, TimePoint /*now*/) override {
    return std::nullopt;
  }

 private:
  std::vector<SimThread*> threads_;
};

TEST(InvariantOracleTest, CatchesDispatchOfBlockedThread) {
  Simulator sim;
  ThreadRegistry threads;
  LyingScheduler liar;
  Machine machine(sim, liar, threads);
  InvariantOracle oracle;
  oracle.Observe(machine, /*queues=*/nullptr);

  SimThread* hog = threads.Create("hog", std::make_unique<CpuHogWork>());
  machine.Attach(hog);
  machine.Start();
  sim.RunFor(Duration::Millis(20));

  EXPECT_GT(oracle.violation_count(), 0);
  ASSERT_FALSE(oracle.violations().empty());
  EXPECT_NE(oracle.violations().front().message.find("state"), std::string::npos);
}

TEST(InvariantOracleTest, CleanOnHealthySystemAndAllHooksFire) {
  // Declared before the system it observes: the system holds raw references to the
  // oracle, so the oracle must be destroyed last (see Observe's contract).
  InvariantOracle oracle;
  System system;
  system.sim().trace().SetEnabled(true);
  oracle.Observe(system);

  BoundedBuffer* q = system.CreateQueue("q", 1'000);
  SimThread* producer = system.Spawn(
      "producer", std::make_unique<ProducerWork>(q, 100'000, RateSchedule(100.0)));
  SimThread* consumer =
      system.Spawn("consumer", std::make_unique<ConsumerWork>(q, 1'000));
  system.queues().Register(q, producer->id(), QueueRole::kProducer);
  system.queues().Register(q, consumer->id(), QueueRole::kConsumer);
  ASSERT_TRUE(system.controller().AddRealTime(producer, Proportion::Ppt(100),
                                              Duration::Millis(10)));
  system.controller().AddRealRate(consumer);

  system.Start();
  system.RunFor(Duration::Millis(500));

  EXPECT_TRUE(oracle.ok()) << oracle.Summary();
  EXPECT_GT(oracle.ticks_observed(), 0);
  EXPECT_GT(oracle.picks_observed(), 0);
  EXPECT_GT(oracle.controller_runs_observed(), 0);
}

TEST(InvariantOracleTest, ObserverDoesNotPerturbTheSchedule) {
  auto run = [](bool with_oracle) {
    InvariantOracle oracle;  // Outlives the system it observes.
    System system;
    system.sim().trace().SetEnabled(true);
    if (with_oracle) {
      oracle.Observe(system);
    }
    SimThread* hog = system.Spawn("hog", std::make_unique<CpuHogWork>());
    system.controller().AddMiscellaneous(hog);
    system.Start();
    system.RunFor(Duration::Millis(300));
    return system.sim().trace().Hash();
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Trace well-formedness.
// ---------------------------------------------------------------------------

TEST(TraceWellFormednessTest, AcceptsHealthyAndRejectsMalformedStreams) {
  TraceRecorder trace;
  trace.SetEnabled(true);
  trace.Record(TimePoint::FromNanos(10), TraceKind::kDispatch, 1, 500);
  trace.Record(TimePoint::FromNanos(10), TraceKind::kDispatch, 2, 0);  // Zero is legal.
  trace.Record(TimePoint::FromNanos(20), TraceKind::kBlock, 1, 0);
  EXPECT_EQ(trace.WellFormedError(), "");

  trace.Record(TimePoint::FromNanos(5), TraceKind::kWake, 1);  // Time went backwards.
  EXPECT_NE(trace.WellFormedError(), "");
  // Incremental validation from the malformed suffix also sees it (the boundary
  // event is compared against its predecessor).
  EXPECT_NE(trace.WellFormedError(3), "");
}

TEST(TraceWellFormednessTest, RejectsOutOfRangeArguments) {
  {
    TraceRecorder trace;
    trace.SetEnabled(true);
    trace.Record(TimePoint::FromNanos(1), TraceKind::kDispatch, 1, -5);
    EXPECT_NE(trace.WellFormedError(), "");
  }
  {
    TraceRecorder trace;
    trace.SetEnabled(true);
    trace.Record(TimePoint::FromNanos(1), TraceKind::kAllocationSet, 1, 1'500, 1'000);
    EXPECT_NE(trace.WellFormedError(), "");
  }
  {
    TraceRecorder trace;
    trace.SetEnabled(true);
    trace.Record(TimePoint::FromNanos(1), TraceKind::kMigrate, 1, 2, 2);  // from == to.
    EXPECT_NE(trace.WellFormedError(), "");
  }
  {
    TraceRecorder trace;
    trace.SetEnabled(true);
    trace.Record(TimePoint::FromNanos(1), TraceKind::kExit, kInvalidThreadId);
    EXPECT_NE(trace.WellFormedError(), "");
  }
}

// ---------------------------------------------------------------------------
// Workload generator.
// ---------------------------------------------------------------------------

TEST(WorkloadGeneratorTest, SameSeedSameSpecDifferentSeedDifferentSpec) {
  const WorkloadSpec a = GenerateWorkload(12345);
  const WorkloadSpec b = GenerateWorkload(12345);
  EXPECT_EQ(a.ToString(), b.ToString());
  const WorkloadSpec c = GenerateWorkload(12346);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(WorkloadGeneratorTest, GeneratedSpecsAreFeasibleByConstruction) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const WorkloadSpec spec = GenerateWorkload(seed);
    EXPECT_GE(spec.num_cpus, 1) << seed;
    EXPECT_LE(spec.num_cpus, 8) << seed;
    EXPECT_TRUE(spec.run_for.IsPositive()) << seed;
    if (spec.cluster.num_machines > 0) {
      // Cluster-bucket specs carry their whole load in the cluster-wide stream;
      // no closed-loop threads are required (or generated).
      EXPECT_FALSE(spec.open_loops.empty()) << seed;
    } else {
      EXPECT_FALSE(spec.pipelines.empty() && spec.hogs.empty() && spec.reservations.empty())
          << seed;
    }
    double fixed = 0.0;
    for (const PipelineSpec& p : spec.pipelines) {
      // Largest possible item (segments may double the base) must fit its queue, or a
      // producer could block forever on space that cannot exist.
      double max_item = p.bytes_per_item;
      for (const RateSegmentSpec& s : p.segments) {
        max_item = std::max(max_item, s.bytes_per_item);
      }
      EXPECT_LE(static_cast<int64_t>(max_item), p.source_queue_bytes) << seed;
      for (const StageSpec& s : p.stages) {
        EXPECT_LE(s.chunk_bytes, s.queue_bytes) << seed;
        EXPECT_GT(s.cycles_per_byte, 0) << seed;
      }
      EXPECT_GT(p.producer_cycles_per_item, 0) << seed;
      EXPECT_GT(p.consumer_cycles_per_byte, 0) << seed;
      fixed += p.producer_proportion.ToFraction();
    }
    for (const ReservationSpec& r : spec.reservations) {
      fixed += r.proportion.ToFraction();
      EXPECT_TRUE(r.period.IsPositive()) << seed;
    }
    // The generator's admission guarantee: fixed reservations never exceed 45% of
    // the machine, so the controller's least-loaded-core admission cannot reject.
    EXPECT_LE(fixed, 0.45 * spec.num_cpus + 1e-9) << seed;
  }
}

TEST(WorkloadGeneratorTest, ControlPlaneBucketCoversAllFiveClassesAtScale) {
  // The ~1-in-20 control-plane bucket must produce 1000+ controlled threads spanning
  // every paper class (real-time producers, real-rate consumers, miscellaneous hogs,
  // aperiodic real-time, interactive editors).
  int found = 0;
  for (uint64_t seed = 1; seed <= 200 && found < 3; ++seed) {
    const WorkloadSpec spec = GenerateWorkload(seed);
    if (spec.interactives.empty()) {
      continue;
    }
    ++found;
    EXPECT_FALSE(spec.pipelines.empty()) << seed;
    EXPECT_FALSE(spec.hogs.empty()) << seed;
    EXPECT_FALSE(spec.aperiodics.empty()) << seed;
    const size_t controlled = 2 * spec.pipelines.size() + spec.hogs.size() +
                              spec.aperiodics.size() + spec.interactives.size();
    EXPECT_GE(controlled, 1000u) << seed;
    EXPECT_GE(spec.num_cpus, 6) << seed;  // Feasibility floor for the class mix.
    for (const AperiodicSpec& a : spec.aperiodics) {
      EXPECT_GT(a.proportion.ppt(), 0) << seed;
    }
    for (const InteractiveSpec& e : spec.interactives) {
      EXPECT_GT(e.cycles_per_event, 0) << seed;
      EXPECT_TRUE(e.mean_think.IsPositive()) << seed;
    }
  }
  EXPECT_GE(found, 1) << "no control-plane bucket seed in 1..200";
}

TEST(DifferentialRunnerTest, ControllerShadowEngagesOnAControlPlaneBucketSeed) {
  // On a 1000+-thread all-classes spec, the feedback run with controller shadow mode
  // must execute shadow equalities every tick, exercise the dirty-set sampler in
  // both directions, and stay violation-free.
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const WorkloadSpec spec = GenerateWorkload(seed);
    if (spec.interactives.empty()) {
      continue;
    }
    RunOptions options;
    options.controller_shadow_check = true;
    const RunOutcome outcome = RunWorkload(spec, options);
    EXPECT_EQ(outcome.violation_count, 0) << "seed " << seed;
    EXPECT_GT(outcome.controller_shadow_checks, 0) << "seed " << seed;
    EXPECT_GT(outcome.controller_clean_samples, 0) << "seed " << seed;
    return;
  }
  FAIL() << "no control-plane bucket seed in 1..200";
}

TEST(WorkloadGeneratorTest, ClusterBucketSpecsDescribeRoutableFarms) {
  // The ~1-in-16 cluster bucket: 2-4 machines, a positive epoch, and exactly one
  // cluster-wide open-loop stream whose largest request fits the per-node queues.
  int found = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const WorkloadSpec spec = GenerateWorkload(seed);
    if (spec.cluster.num_machines == 0) {
      continue;
    }
    ++found;
    EXPECT_GE(spec.cluster.num_machines, 2) << seed;
    EXPECT_LE(spec.cluster.num_machines, 4) << seed;
    EXPECT_TRUE(spec.cluster.epoch.IsPositive()) << seed;
    EXPECT_GE(spec.cluster.pressure_damping, 0.0) << seed;
    EXPECT_LT(spec.cluster.pressure_damping, 1.0) << seed;
    ASSERT_EQ(spec.open_loops.size(), 1u) << seed;
    const OpenLoopSpec& ol = spec.open_loops.front();
    EXPECT_GT(ol.num_workers, 0) << seed;
    EXPECT_LE(ol.arrivals.max_request_bytes, ol.worker_queue_bytes) << seed;
    EXPECT_LE(ol.arrivals.max_request_bytes, ol.listen_queue_bytes) << seed;
    EXPECT_GT(ol.arrivals.requests_per_sec, 0.0) << seed;
  }
  EXPECT_GE(found, 1) << "no cluster bucket seed in 1..200";
}

TEST(DifferentialRunnerTest, ClusterBucketSeedPassesItsBattery) {
  // The first cluster-bucket seed must pass the cluster differential battery:
  // M=1 pinned to a bare machine, host-thread invariance, rerun stability.
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    if (GenerateWorkload(seed).cluster.num_machines == 0) {
      continue;
    }
    const SeedReport report = CheckSeed(seed);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                             << (report.failures.empty() ? "" : report.failures.front());
    return;
  }
  FAIL() << "no cluster bucket seed in 1..200";
}

TEST(DifferentialRunnerTest, MailboxBucketSeedStakesRoundsInTheEquivalencePass) {
  // The first mailbox-regime bucket seed must (a) pass its battery and (b) stake
  // queue ops through the per-core epoch mailboxes during the host-thread
  // equivalence pass — otherwise that pass's 1-vs-N equality is vacuous for
  // queue-driven rounds (only hog rounds would ever fan out).
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    if (!GenerateWorkload(seed).mailbox_regime) {
      continue;
    }
    SeedCheckOptions options;
    options.run_metamorphic = false;  // The pinned pass is 1e; keep the test cheap.
    options.equivalence_host_threads = 4;
    const SeedReport report = CheckSeed(seed, options);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                             << (report.failures.empty() ? "" : report.failures.front());
    EXPECT_GT(report.equivalence_parallel_rounds, 0) << "seed " << seed;
    EXPECT_GT(report.equivalence_mailbox_rounds, 0) << "seed " << seed;
    return;
  }
  FAIL() << "no mailbox-regime bucket seed in 1..200";
}

TEST(WorkloadGeneratorTest, DeriveSeedSeparatesComponents) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(1, 1));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  EXPECT_EQ(DeriveSeed(99, 7), DeriveSeed(99, 7));
}

// ---------------------------------------------------------------------------
// Differential runner.
// ---------------------------------------------------------------------------

TEST(DifferentialRunnerTest, RunsAreReplayableFromTheSeed) {
  const WorkloadSpec spec = GenerateWorkload(77);
  for (const SchedulerKind kind :
       {SchedulerKind::kFeedbackRbs, SchedulerKind::kLottery, SchedulerKind::kMlfq,
        SchedulerKind::kFixedPriority}) {
    RunOptions options;
    options.kind = kind;
    options.run_for_override = Duration::Millis(200);
    const RunOutcome a = RunWorkload(spec, options);
    const RunOutcome b = RunWorkload(spec, options);
    EXPECT_EQ(a.trace_hash, b.trace_hash) << ToString(kind);
    EXPECT_EQ(a.total_progress, b.total_progress) << ToString(kind);
    EXPECT_EQ(a.violation_count, 0) << ToString(kind);
  }
}

TEST(DifferentialRunnerTest, LotteryDrawsFromTheInjectedSeedOnly) {
  // Identical seeds replay bit-for-bit; a different workload seed changes the derived
  // lottery engine seeds and (with several runnable ticket-holders) the schedule.
  WorkloadSpec spec = GenerateWorkload(501);
  spec.pipelines.clear();
  spec.reservations.clear();
  spec.hogs = {{1'000, 1.0, 5, 100}, {1'000, 1.0, 5, 300}, {1'000, 1.0, 5, 200}};
  spec.num_cpus = 1;
  RunOptions options;
  options.kind = SchedulerKind::kLottery;
  options.run_for_override = Duration::Millis(100);
  const uint64_t hash_a = RunWorkload(spec, options).trace_hash;
  const uint64_t hash_a2 = RunWorkload(spec, options).trace_hash;
  EXPECT_EQ(hash_a, hash_a2);
  spec.seed = 502;  // Only the seed changes; the spec is otherwise identical.
  const uint64_t hash_b = RunWorkload(spec, options).trace_hash;
  EXPECT_NE(hash_a, hash_b);
}

TEST(DifferentialRunnerTest, ShadowSchedulerAgreesOnOneHundredSeeds) {
  // The shadow-scheduler pin for the indexed dispatch hot path: across 100 generated
  // workloads (including the high-thread-count farm buckets), every RBS dispatch
  // computes both the indexed pick and the reference O(n) scan pick and asserts they
  // are identical — a mismatch aborts the process. The counters prove the shadow
  // comparison actually ran, and ran on every core.
  int64_t total_checks = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const WorkloadSpec spec = GenerateWorkload(seed);
    RunOptions options;
    options.kind = SchedulerKind::kFeedbackRbs;
    options.rbs_shadow_check = true;
    options.run_for_override = Duration::Millis(120);
    const RunOutcome outcome = RunWorkload(spec, options);
    EXPECT_GT(outcome.shadow_checks, 0) << "seed " << seed;
    EXPECT_EQ(outcome.violation_count, 0) << "seed " << seed;
    total_checks += outcome.shadow_checks;
  }
  EXPECT_GT(total_checks, 10'000);  // The pin has teeth: tens of thousands of picks.
}

TEST(DifferentialRunnerTest, HostThreadsAreTraceInvariantOnOneHundredSeeds) {
  // The parallel-engine pin: across 100 generated workloads — every scheduler-
  // relevant bucket the generator produces, including the high-thread-count farms —
  // the feedback machine fanned out over 2 host threads reproduces the
  // single-threaded run exactly. Both sides run oracle-free: an installed checker
  // pins the machine to the sequential path, which would make the comparison
  // vacuous. The bounded run keeps 200 full-stack runs inside the suite budget.
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const WorkloadSpec spec = GenerateWorkload(seed);
    RunOptions base;
    base.attach_oracle = false;
    base.run_for_override = Duration::Millis(120);
    RunOptions fanned = base;
    fanned.host_threads = 2;
    const RunOutcome one = RunWorkload(spec, base);
    const RunOutcome two = RunWorkload(spec, fanned);
    ASSERT_EQ(one.trace_hash, two.trace_hash) << "seed " << seed;
    ASSERT_EQ(one.total_progress, two.total_progress) << "seed " << seed;
    ASSERT_EQ(one.dispatches, two.dispatches) << "seed " << seed;
  }
}

TEST(DifferentialRunnerTest, ShadowModeDoesNotPerturbTheSchedule) {
  // shadow_check must be a pure observer: the same spec with and without it produces
  // the identical trace (it shares the run with the invariant battery, so any
  // perturbation would silently weaken both).
  const WorkloadSpec spec = GenerateWorkload(321);
  RunOptions plain;
  plain.run_for_override = Duration::Millis(200);
  RunOptions shadowed = plain;
  shadowed.rbs_shadow_check = true;
  EXPECT_EQ(RunWorkload(spec, plain).trace_hash, RunWorkload(spec, shadowed).trace_hash);
}

TEST(DifferentialRunnerTest, CheckSeedPassesOnHealthySeeds) {
  for (const uint64_t seed : {7ull, 99ull, 1234ull}) {
    const SeedReport report = CheckSeed(seed);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n"
                             << (report.failures.empty() ? "" : report.failures.front());
  }
}

// ---------------------------------------------------------------------------
// Scenario-level lottery seeding (the unseeded-randomness sweep).
// ---------------------------------------------------------------------------

TEST(LotterySeedingTest, ScenarioReplaysFromExplicitSeed) {
  const StarvationResult a =
      RunStarvationScenario(SchedulerKind::kLottery, 4.0, Duration::Millis(500), 42);
  const StarvationResult b =
      RunStarvationScenario(SchedulerKind::kLottery, 4.0, Duration::Millis(500), 42);
  EXPECT_DOUBLE_EQ(a.favored_cpu, b.favored_cpu);
  EXPECT_DOUBLE_EQ(a.lesser_cpu, b.lesser_cpu);
}

}  // namespace
}  // namespace realrate
